// Integration tests: Algorithm 4 (EC from Omega) against the EC
// specification, in environments with and without a correct majority —
// the sufficiency half of Theorem 2.
#include <gtest/gtest.h>

#include <memory>

#include "checkers/ec_checker.h"
#include "ec/ec_driver.h"
#include "ec/omega_ec.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

using Driver = EcDriverAutomaton<OmegaEcAutomaton>;

SimConfig ecConfig(std::size_t n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 60000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 15;
  cfg.maxDelay = 30;
  return cfg;
}

Simulator makeEcSim(SimConfig cfg, FailurePattern fp, Time tauOmega,
                    OmegaPreStabilization mode, Instance maxInstances,
                    std::uint64_t salt = 5) {
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega, mode);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, std::make_unique<Driver>(OmegaEcAutomaton{},
                                               binaryProposals(salt),
                                               maxInstances));
  }
  return sim;
}

bool allDecided(const Simulator& sim, Instance upTo) {
  const auto report = checkEcRun(sim.trace(), sim.failurePattern());
  return report.decidedByAllCorrect >= upTo;
}

TEST(OmegaEcTest, StableLeaderAgreesFromFirstInstance) {
  auto cfg = ecConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeEcSim(cfg, fp, 0, OmegaPreStabilization::kStable, 10);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 10); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(10));
  EXPECT_EQ(report.agreementFromK, 1u) << "stable Omega: no disagreement ever";
}

TEST(OmegaEcTest, SplitBrainDisagreesThenAgrees) {
  auto cfg = ecConfig(3);
  auto fp = FailurePattern::noFailures(3);
  // Split-brain phase long enough that early instances can disagree but
  // short enough that later instances run under the stable leader.
  auto sim = makeEcSim(cfg, fp, 300, OmegaPreStabilization::kSplitBrain, 40);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 40); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(40));
  // Agreement holds from SOME finite instance (the EC contract). With a
  // 300-tick split-brain phase there should be early disagreement, which
  // is what distinguishes EC from consensus.
  EXPECT_GT(report.agreementFromK, 1u);
  EXPECT_LE(report.agreementFromK, 40u);
}

TEST(OmegaEcTest, TerminatesWithoutCorrectMajority) {
  // 3 of 5 crash — Algorithm 4 needs no quorum (unlike Paxos).
  auto cfg = ecConfig(5);
  auto fp = Environments::staggeredCrashes(5, 3, 400, 50);
  auto sim = makeEcSim(cfg, fp, 600, OmegaPreStabilization::kSplitBrain, 20);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 20); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(20));
  EXPECT_LE(report.agreementFromK, 20u);
}

TEST(OmegaEcTest, LeaderCrashStillTerminates) {
  auto cfg = ecConfig(3);
  auto fp = FailurePattern::crashesAt(3, {{0, 1000}});
  // Rotating leaders before stabilization on p1 (lowest correct).
  auto sim = makeEcSim(cfg, fp, 2000, OmegaPreStabilization::kRotating, 12);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 12); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.terminationOk(12));
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
}

TEST(OmegaEcTest, DecisionValueComesFromTrustedLeader) {
  // Unit-level: feed promotes from two processes; decide only the
  // leader's value.
  OmegaEcAutomaton ec;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 3;
  ctx.fd.leader = 2;
  Effects fx;
  ec.onInput(ctx, Payload::of(ProposeInput{1, Value{0}}), fx);
  ec.onMessage(ctx, 1, Payload::of(EcPromoteMsg{Value{0}, 1}), fx);
  fx.clear();
  ec.onTimeout(ctx, fx);
  EXPECT_TRUE(fx.outputs().empty()) << "p1 is not the leader";
  ec.onMessage(ctx, 2, Payload::of(EcPromoteMsg{Value{1}, 1}), fx);
  fx.clear();
  ec.onTimeout(ctx, fx);
  ASSERT_EQ(fx.outputs().size(), 1u);
  const auto* d = fx.outputs()[0].as<EcDecision>();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->instance, 1u);
  EXPECT_EQ(d->value, Value{1});
}

TEST(OmegaEcTest, DecidesAtMostOncePerInstance) {
  OmegaEcAutomaton ec;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 2;
  ctx.fd.leader = 1;
  Effects fx;
  ec.onInput(ctx, Payload::of(ProposeInput{1, Value{0}}), fx);
  ec.onMessage(ctx, 1, Payload::of(EcPromoteMsg{Value{1}, 1}), fx);
  fx.clear();
  ec.onTimeout(ctx, fx);
  EXPECT_EQ(fx.outputs().size(), 1u);
  fx.clear();
  ec.onTimeout(ctx, fx);
  EXPECT_TRUE(fx.outputs().empty()) << "EC-Integrity: one response";
}

// Property sweep: the EC contract across seeds, n, tau and environment.
struct EcSweepParam {
  std::uint64_t seed;
  std::size_t n;
  Time tau;
  std::size_t crashes;
};

class EcSweepTest : public ::testing::TestWithParam<EcSweepParam> {};

TEST_P(EcSweepTest, EcContractHolds) {
  const auto p = GetParam();
  auto cfg = ecConfig(p.n, p.seed);
  auto fp = p.crashes == 0
                ? FailurePattern::noFailures(p.n)
                : Environments::staggeredCrashes(p.n, p.crashes, 700, 40);
  const Instance maxInstances = 16;
  auto sim = makeEcSim(cfg, fp, p.tau, OmegaPreStabilization::kSplitBrain,
                       maxInstances, p.seed);
  ASSERT_TRUE(sim.runUntil(
      [&](const Simulator& s) { return allDecided(s, maxInstances); }))
      << "termination within budget";
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
  EXPECT_LE(report.agreementFromK, maxInstances)
      << "agreement must start within the run";
}

std::vector<EcSweepParam> ecSweep() {
  std::vector<EcSweepParam> out;
  for (std::uint64_t seed : {2u, 11u, 31u}) {
    for (std::size_t n : {2u, 3u, 5u}) {
      for (Time tau : {0u, 400u}) {
        out.push_back({seed, n, tau, 0});
        if (n == 5) out.push_back({seed, n, tau, 3});  // minority correct
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EcSweepTest, ::testing::ValuesIn(ecSweep()));

}  // namespace
}  // namespace wfd
