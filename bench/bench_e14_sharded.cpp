// E14 — Sharded serving: aggregate throughput and routing-to-commit
// latency vs shard count, under uniform and Zipfian(0.99) keys.
//
// Claim (PR-10): sharding the commit-eTOB KV service over a consistent
// hash ring gives near-linear strong scaling IN TOTAL ORDERING WORK,
// not just in parallel hardware. The whole benchmark is single-threaded
// — S shards step interleaved on one core — so every speedup below is
// algorithmic: each §7 commit indication carries the full committed
// prefix, making a shard's cost superlinear (~quadratic) in the
// commands IT orders. Splitting a fixed N = 1024 ops across S
// independent shards cuts per-shard load to N/S and total work to
// ~N²/S, so S=8 clears 4x the S=1 aggregate ops/sec under uniform keys
// (the recorded BENCH_pr10-shard.json pins this). Zipfian(0.99) keys
// concentrate load on the hot shard, which caps the win — the gap
// between the two key distributions is the price of skew, the
// classical motivation for hot-key splitting.
//
// Method: per point, a ShardedService (S commit-eTOB shards x 3
// replicas, Δ_t=10, delays [20,40], stable Omega) driven by a
// ShardRouter. Issue S puts per 10-tick interval (fixed total N=1024,
// key space 256), polling each interval; then settle until every put
// is observed committed. Reported: aggregate committed-ops/sec of wall
// time, and p50/p99 of (commit-observed - issue) in ticks. Latency is
// quantized by the 10-tick poll cadence; that floor is shared by every
// point, so the cross-S comparison stands.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_util.h"
#include "shard/shard_router.h"
#include "shard/sharded_service.h"
#include "shard/zipf.h"

namespace wfd::bench {
namespace {

constexpr std::uint64_t kTotalOps = 1024;
constexpr std::uint64_t kKeySpace = 256;
constexpr Time kInterval = 10;

struct E14Run {
  double seconds = 0.0;
  std::uint64_t committed = 0;
  std::vector<Time> latencies;
};

E14Run runSharded(std::size_t shards, bool zipfian, std::uint64_t seed) {
  ShardedSpec spec;
  spec.shards = shards;
  spec.replicasPerShard = 3;
  spec.stack = AlgoStack::kCommitEtob;
  spec.config.maxTime = 200'000;
  spec.config.timeoutPeriod = 10;
  spec.config.minDelay = 20;
  spec.config.maxDelay = 40;
  spec.config.keepDeliverySnapshots = false;  // aggregates suffice
  spec.omegaMode = OmegaPreStabilization::kStable;
  ShardedService svc(spec, seed);
  ShardRouter router(svc);

  UniformKeyGenerator uniform(kKeySpace, splitmix64(seed ^ 0x653134ULL));
  ZipfianKeyGenerator zipf(kKeySpace, 0.99, splitmix64(seed ^ 0x653134ULL));

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t issued = 0;
  while (issued < kTotalOps) {
    svc.advanceBy(kInterval);
    for (std::size_t j = 0; j < shards && issued < kTotalOps; ++j) {
      const std::uint64_t key = zipfian ? zipf.next() : uniform.next();
      router.put(key, ++issued);
    }
    router.poll();
  }
  // Settle: keep stepping until every put is observed committed (or the
  // horizon cuts a straggler off — counted, not hidden).
  while (router.pendingPuts() > 0 && svc.advanceBy(kInterval)) {
    router.poll();
  }
  const auto end = std::chrono::steady_clock::now();

  E14Run r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  for (const RouterOp& op : router.ops()) {
    if (op.kind == RouterOp::Kind::kPut && op.committed) {
      ++r.committed;
      r.latencies.push_back(op.commitTime - op.time);
    }
  }
  return r;
}

Time percentile(std::vector<Time>& lat, double p) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const std::size_t idx = static_cast<std::size_t>(p * (lat.size() - 1));
  return lat[idx];
}

void BM_E14Point(benchmark::State& state, bool zipfian) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  double seconds = 0.0;
  std::uint64_t committed = 0;
  std::vector<Time> latencies;
  for (auto _ : state) {
    E14Run r = runSharded(shards, zipfian, seed++);
    benchmark::DoNotOptimize(r);
    seconds += r.seconds;
    committed += r.committed;
    latencies = std::move(r.latencies);
  }
  state.counters["ops_per_sec"] = static_cast<double>(committed) / seconds;
  state.counters["committed"] =
      static_cast<double>(committed) / static_cast<double>(state.iterations());
  state.counters["p50_ticks"] = static_cast<double>(percentile(latencies, 0.50));
  state.counters["p99_ticks"] = static_cast<double>(percentile(latencies, 0.99));
}

void BM_E14ShardedUniform(benchmark::State& state) {
  BM_E14Point(state, /*zipfian=*/false);
}
void BM_E14ShardedZipf(benchmark::State& state) {
  BM_E14Point(state, /*zipfian=*/true);
}

// The /S argument doubles as the CI smoke filter handle:
// --benchmark_filter='/(1|4)$' runs the S=1 and S=4 points only.
BENCHMARK(BM_E14ShardedUniform)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E14ShardedZipf)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

BENCHMARK_MAIN();
