#include "explore/plan_codec.h"

#include "common/strings.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

namespace wfd {

const char* stdlibTag() {
#if defined(_LIBCPP_VERSION)
  return "libc++";
#elif defined(__GLIBCXX__)
  return "libstdc++";
#else
  return "other";
#endif
}

namespace {

bool parseHex64(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

/// kNoProcess round-trips as the string "none" (the sentinel value
/// itself is not portable as a number).
Json encodeProcessOrNone(ProcessId p) {
  return p == kNoProcess ? Json::str("none")
                         : Json::number(static_cast<std::uint64_t>(p));
}

bool decodeProcessOrNone(const Json& j, ProcessId* out) {
  if (j.kind() == Json::Kind::kString) {
    if (j.asString() != "none") return false;
    *out = kNoProcess;
    return true;
  }
  if (j.kind() != Json::Kind::kUInt) return false;
  *out = static_cast<ProcessId>(j.asUInt());
  return true;
}

/// Rejects objects carrying keys outside the allowed set: a misspelled
/// section name ("slowlink", "skew") must be a loud decode error, not a
/// silently dropped fault layer in a hand-written plan.
bool onlyKnownKeys(const Json& obj, std::initializer_list<const char*> allowed,
                   const char* what, std::string* error) {
  for (const auto& [key, value] : obj.fields()) {
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) {
      if (error != nullptr && error->empty()) {
        *error = std::string(what) + ": unknown field '" + key + "'";
      }
      return false;
    }
  }
  return true;
}

/// Field extraction helpers: each returns false (and fills *error once)
/// on a missing or mis-typed field.
class Reader {
 public:
  Reader(const Json& j, std::string* error) : j_(j), error_(error) {}

  bool uintField(const char* key, std::uint64_t* out, bool required = true) {
    const Json* f = j_.find(key);
    if (f == nullptr) return required ? fail(key, "missing") : true;
    if (f->kind() != Json::Kind::kUInt) return fail(key, "not a number");
    *out = f->asUInt();
    return true;
  }

  bool boolField(const char* key, bool* out, bool required = true) {
    const Json* f = j_.find(key);
    if (f == nullptr) return required ? fail(key, "missing") : true;
    if (f->kind() != Json::Kind::kBool) return fail(key, "not a bool");
    *out = f->asBool();
    return true;
  }

  bool stringField(const char* key, std::string* out, bool required = true) {
    const Json* f = j_.find(key);
    if (f == nullptr) return required ? fail(key, "missing") : true;
    if (f->kind() != Json::Kind::kString) return fail(key, "not a string");
    *out = f->asString();
    return true;
  }

  bool processField(const char* key, ProcessId* out, bool required = true) {
    const Json* f = j_.find(key);
    if (f == nullptr) return required ? fail(key, "missing") : true;
    if (!decodeProcessOrNone(*f, out)) return fail(key, "not a process id");
    return true;
  }

  const Json* arrayField(const char* key) {
    const Json* f = j_.find(key);
    if (f != nullptr && f->kind() != Json::Kind::kArray) {
      fail(key, "not an array");
      return nullptr;
    }
    return f;
  }

  const Json* objectField(const char* key) {
    const Json* f = j_.find(key);
    if (f != nullptr && f->kind() != Json::Kind::kObject) {
      fail(key, "not an object");
      return nullptr;
    }
    return f;
  }

  bool fail(const char* key, const char* why) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string("field '") + key + "': " + why;
    }
    return false;
  }

 private:
  const Json& j_;
  std::string* error_;
};

}  // namespace

Json encodeFuzzPlan(const FuzzPlan& plan) {
  Json j = Json::object();
  j.set("schema", Json::str(kFuzzPlanSchema));
  j.set("stack", Json::str(algoStackName(plan.stack)));
  j.set("processes", Json::number(plan.processCount));
  j.set("sim_seed", Json::number(plan.simSeed));
  j.set("timeout_period", Json::number(plan.timeoutPeriod));
  j.set("min_delay", Json::number(plan.minDelay));
  j.set("max_delay", Json::number(plan.maxDelay));
  j.set("tau_omega", Json::number(plan.tauOmega));
  j.set("omega_mode", Json::str(omegaModeName(plan.omegaMode)));

  Json crashes = Json::array();
  for (const PlanCrash& c : plan.crashes) {
    Json one = Json::object();
    one.set("process", Json::number(c.process));
    one.set("time", Json::number(c.time));
    crashes.push(std::move(one));
  }
  j.set("crashes", std::move(crashes));

  Json partitions = Json::array();
  for (const PlanPartition& p : plan.partitions) {
    Json one = Json::object();
    one.set("start", Json::number(p.start));
    one.set("width", Json::number(p.width));
    one.set("period", Json::number(p.period));
    one.set("isolate", encodeProcessOrNone(p.isolate));
    partitions.push(std::move(one));
  }
  j.set("partitions", std::move(partitions));

  if (plan.chaos.dupNum > 0) {
    Json chaos = Json::object();
    chaos.set("dup_num", Json::number(plan.chaos.dupNum));
    chaos.set("dup_den", Json::number(plan.chaos.dupDen));
    chaos.set("max_extra_copies", Json::number(plan.chaos.maxExtraCopies));
    chaos.set("reorder_jitter", Json::number(plan.chaos.reorderJitter));
    chaos.set("only_touching", encodeProcessOrNone(plan.chaos.onlyTouching));
    j.set("chaos", std::move(chaos));
  }

  if (!plan.skews.empty()) {
    Json skews = Json::array();
    for (const PlanSkew& s : plan.skews) {
      Json one = Json::object();
      one.set("num", Json::number(s.num));
      one.set("den", Json::number(s.den));
      skews.push(std::move(one));
    }
    j.set("skews", std::move(skews));
  }

  if (plan.slowLink.process != kNoProcess) {
    Json slow = Json::object();
    slow.set("process", Json::number(plan.slowLink.process));
    slow.set("factor", Json::number(plan.slowLink.factor));
    j.set("slow_link", std::move(slow));
  }

  // Only emitted when the loss genome is active, so every pre-PR-9 plan
  // keeps its exact legacy encoding — and therefore its fingerprint.
  if (plan.loss.enabled()) {
    Json loss = Json::object();
    if (plan.loss.lossNum > 0) {
      loss.set("loss_num", Json::number(plan.loss.lossNum));
      loss.set("loss_den", Json::number(plan.loss.lossDen));
    }
    if (plan.loss.burstPeriod > 0) {
      loss.set("burst_period", Json::number(plan.loss.burstPeriod));
      loss.set("burst_len", Json::number(plan.loss.burstLen));
    }
    if (plan.loss.activeUntil > 0) {
      loss.set("active_until", Json::number(plan.loss.activeUntil));
    }
    if (plan.loss.oneWayFrom != kNoProcess) {
      loss.set("one_way_from", Json::number(plan.loss.oneWayFrom));
      loss.set("one_way_start", Json::number(plan.loss.oneWayStart));
      loss.set("one_way_width", Json::number(plan.loss.oneWayWidth));
      loss.set("one_way_period", Json::number(plan.loss.oneWayPeriod));
    }
    j.set("loss", std::move(loss));
  }

  Json workload = Json::object();
  workload.set("start", Json::number(plan.workload.start));
  workload.set("interval", Json::number(plan.workload.interval));
  workload.set("per_process", Json::number(plan.workload.perProcess));
  workload.set("causal_chain", Json::boolean(plan.workload.causalChain));
  workload.set("cross_deps", Json::boolean(plan.workload.crossDeps));
  // Only emitted when set, so legacy (all-write) plans keep their exact
  // pre-big-cluster encoding — and therefore their fingerprints.
  if (plan.workload.writers > 0) {
    workload.set("writers", Json::number(plan.workload.writers));
  }
  j.set("workload", std::move(workload));

  if (plan.ecInstances > 0) j.set("ec_instances", Json::number(plan.ecInstances));
  j.set("max_time", Json::number(plan.maxTime));
  return j;
}

std::optional<FuzzPlan> decodeFuzzPlan(const Json& j, std::string* error) {
  // The wrong-type detection for optional sections below inspects the
  // error buffer, so always decode against a real one — a nullptr caller
  // must not change what gets rejected.
  std::string localError;
  if (error == nullptr) error = &localError;
  error->clear();
  if (j.kind() != Json::Kind::kObject) {
    *error = "plan is not a JSON object";
    return std::nullopt;
  }
  if (!onlyKnownKeys(j,
                     {"schema", "stack", "processes", "sim_seed",
                      "timeout_period", "min_delay", "max_delay", "tau_omega",
                      "omega_mode", "crashes", "partitions", "chaos", "skews",
                      "slow_link", "loss", "workload", "ec_instances",
                      "max_time"},
                     "plan", error)) {
    return std::nullopt;
  }
  Reader r(j, error);
  FuzzPlan plan;

  std::string schema;
  if (!r.stringField("schema", &schema)) return std::nullopt;
  if (schema != kFuzzPlanSchema) {
    r.fail("schema", "unknown schema tag");
    return std::nullopt;
  }
  std::string stackName;
  if (!r.stringField("stack", &stackName)) return std::nullopt;
  if (!parseAlgoStack(stackName, &plan.stack)) {
    r.fail("stack", "unknown algorithm stack");
    return std::nullopt;
  }
  std::uint64_t processes = 0;
  if (!r.uintField("processes", &processes)) return std::nullopt;
  plan.processCount = static_cast<std::size_t>(processes);
  if (!r.uintField("sim_seed", &plan.simSeed)) return std::nullopt;
  if (!r.uintField("timeout_period", &plan.timeoutPeriod)) return std::nullopt;
  if (!r.uintField("min_delay", &plan.minDelay)) return std::nullopt;
  if (!r.uintField("max_delay", &plan.maxDelay)) return std::nullopt;
  if (!r.uintField("tau_omega", &plan.tauOmega)) return std::nullopt;
  std::string mode;
  if (!r.stringField("omega_mode", &mode)) return std::nullopt;
  if (!parseOmegaMode(mode, &plan.omegaMode)) {
    r.fail("omega_mode", "unknown omega mode");
    return std::nullopt;
  }

  if (const Json* crashes = r.arrayField("crashes")) {
    for (const Json& one : crashes->items()) {
      if (one.kind() != Json::Kind::kObject ||
          !onlyKnownKeys(one, {"process", "time"}, "crash", error)) {
        return std::nullopt;
      }
      Reader cr(one, error);
      PlanCrash c;
      std::uint64_t p = 0;
      if (!cr.uintField("process", &p) || !cr.uintField("time", &c.time)) {
        return std::nullopt;
      }
      c.process = static_cast<ProcessId>(p);
      plan.crashes.push_back(c);
    }
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }

  if (const Json* partitions = r.arrayField("partitions")) {
    for (const Json& one : partitions->items()) {
      if (one.kind() != Json::Kind::kObject ||
          !onlyKnownKeys(one, {"start", "width", "period", "isolate"},
                         "partition", error)) {
        return std::nullopt;
      }
      Reader pr(one, error);
      PlanPartition p;
      if (!pr.uintField("start", &p.start) || !pr.uintField("width", &p.width) ||
          !pr.uintField("period", &p.period) ||
          !pr.processField("isolate", &p.isolate)) {
        return std::nullopt;
      }
      plan.partitions.push_back(p);
    }
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }

  if (const Json* chaos = r.objectField("chaos")) {
    if (!onlyKnownKeys(*chaos,
                       {"dup_num", "dup_den", "max_extra_copies",
                        "reorder_jitter", "only_touching"},
                       "chaos", error)) {
      return std::nullopt;
    }
    Reader cr(*chaos, error);
    std::uint64_t dupNum = 0, dupDen = 1, maxExtra = 0;
    if (!cr.uintField("dup_num", &dupNum) || !cr.uintField("dup_den", &dupDen) ||
        !cr.uintField("max_extra_copies", &maxExtra) ||
        !cr.uintField("reorder_jitter", &plan.chaos.reorderJitter) ||
        !cr.processField("only_touching", &plan.chaos.onlyTouching)) {
      return std::nullopt;
    }
    plan.chaos.dupNum = static_cast<std::uint32_t>(dupNum);
    plan.chaos.dupDen = static_cast<std::uint32_t>(dupDen);
    plan.chaos.maxExtraCopies = static_cast<std::uint32_t>(maxExtra);
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }

  if (const Json* skews = r.arrayField("skews")) {
    for (const Json& one : skews->items()) {
      if (one.kind() != Json::Kind::kObject ||
          !onlyKnownKeys(one, {"num", "den"}, "skew", error)) {
        return std::nullopt;
      }
      Reader sr(one, error);
      PlanSkew s;
      if (!sr.uintField("num", &s.num) || !sr.uintField("den", &s.den)) {
        return std::nullopt;
      }
      plan.skews.push_back(s);
    }
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }

  if (const Json* slow = r.objectField("slow_link")) {
    if (!onlyKnownKeys(*slow, {"process", "factor"}, "slow_link", error)) {
      return std::nullopt;
    }
    Reader sr(*slow, error);
    std::uint64_t p = 0;
    if (!sr.uintField("process", &p) ||
        !sr.uintField("factor", &plan.slowLink.factor)) {
      return std::nullopt;
    }
    plan.slowLink.process = static_cast<ProcessId>(p);
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }

  if (const Json* loss = r.objectField("loss")) {
    if (!onlyKnownKeys(*loss,
                       {"loss_num", "loss_den", "burst_period", "burst_len",
                        "active_until", "one_way_from", "one_way_start",
                        "one_way_width", "one_way_period"},
                       "loss", error)) {
      return std::nullopt;
    }
    Reader lr(*loss, error);
    std::uint64_t lossNum = 0, lossDen = 1, oneWayFrom = 0;
    const bool hasOneWay = loss->find("one_way_from") != nullptr;
    if (!lr.uintField("loss_num", &lossNum, /*required=*/false) ||
        !lr.uintField("loss_den", &lossDen, /*required=*/false) ||
        !lr.uintField("burst_period", &plan.loss.burstPeriod,
                      /*required=*/false) ||
        !lr.uintField("burst_len", &plan.loss.burstLen, /*required=*/false) ||
        !lr.uintField("active_until", &plan.loss.activeUntil,
                      /*required=*/false) ||
        !lr.uintField("one_way_from", &oneWayFrom, /*required=*/false) ||
        !lr.uintField("one_way_start", &plan.loss.oneWayStart,
                      /*required=*/false) ||
        !lr.uintField("one_way_width", &plan.loss.oneWayWidth,
                      /*required=*/false) ||
        !lr.uintField("one_way_period", &plan.loss.oneWayPeriod,
                      /*required=*/false)) {
      return std::nullopt;
    }
    plan.loss.lossNum = static_cast<std::uint32_t>(lossNum);
    plan.loss.lossDen = static_cast<std::uint32_t>(lossDen);
    if (hasOneWay) plan.loss.oneWayFrom = static_cast<ProcessId>(oneWayFrom);
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }

  if (const Json* workload = r.objectField("workload")) {
    if (!onlyKnownKeys(*workload,
                       {"start", "interval", "per_process", "causal_chain",
                        "cross_deps", "writers"},
                       "workload", error)) {
      return std::nullopt;
    }
    Reader wr(*workload, error);
    std::uint64_t per = 0;
    std::uint64_t writers = 0;
    if (!wr.uintField("start", &plan.workload.start) ||
        !wr.uintField("interval", &plan.workload.interval) ||
        !wr.uintField("per_process", &per) ||
        !wr.boolField("causal_chain", &plan.workload.causalChain) ||
        !wr.boolField("cross_deps", &plan.workload.crossDeps) ||
        !wr.uintField("writers", &writers, /*required=*/false)) {
      return std::nullopt;
    }
    plan.workload.perProcess = static_cast<std::size_t>(per);
    plan.workload.writers = static_cast<std::size_t>(writers);
  } else {
    if (error != nullptr && !error->empty()) return std::nullopt;
    r.fail("workload", "missing");
    return std::nullopt;
  }

  if (!r.uintField("ec_instances", &plan.ecInstances, /*required=*/false)) {
    return std::nullopt;
  }
  if (!r.uintField("max_time", &plan.maxTime)) return std::nullopt;

  const std::vector<std::string> violations = planAdmissibilityViolations(plan);
  if (!violations.empty()) {
    if (error != nullptr) *error = "inadmissible plan: " + violations.front();
    return std::nullopt;
  }
  return plan;
}

Json encodeCorpusEntry(const CorpusEntry& entry) {
  Json j = Json::object();
  j.set("schema", Json::str(kFuzzPlanSchema));
  j.set("name", Json::str(entry.name));
  if (!entry.foundBy.empty()) j.set("found_by", Json::str(entry.foundBy));
  j.set("oracle", Json::str(entry.oracle));
  j.set("plan", encodeFuzzPlan(entry.plan));

  Json expect = Json::object();
  expect.set("pass", Json::boolean(entry.expect.pass));
  Json keys = Json::array();
  for (const std::string& k : entry.expect.failureKeys) keys.push(Json::str(k));
  expect.set("failure_keys", std::move(keys));
  if (!entry.expect.digests.empty()) {
    Json digests = Json::object();
    for (const auto& [tag, digest] : entry.expect.digests) {
      digests.set(tag, Json::str(hex64(digest)));
    }
    expect.set("digests", std::move(digests));
  }
  j.set("expect", std::move(expect));
  return j;
}

std::optional<CorpusEntry> decodeCorpusEntry(const Json& j, std::string* error) {
  std::string localError;
  if (error == nullptr) error = &localError;  // see decodeFuzzPlan
  error->clear();
  if (j.kind() != Json::Kind::kObject) {
    *error = "corpus entry is not a JSON object";
    return std::nullopt;
  }
  // A bare plan (top-level "stack" field) is accepted as a pass=true
  // entry, so `wfd_explore --replay` works on hand-written plans too.
  if (j.find("plan") == nullptr && j.find("stack") != nullptr) {
    std::optional<FuzzPlan> plan = decodeFuzzPlan(j, error);
    if (!plan) return std::nullopt;
    CorpusEntry entry;
    entry.name = "<bare plan>";
    entry.plan = std::move(*plan);
    entry.expect.pass = true;
    return entry;
  }

  if (!onlyKnownKeys(j, {"schema", "name", "found_by", "oracle", "plan",
                         "expect"},
                     "corpus entry", error)) {
    return std::nullopt;
  }
  Reader r(j, error);
  CorpusEntry entry;
  if (!r.stringField("name", &entry.name)) return std::nullopt;
  if (!r.stringField("found_by", &entry.foundBy, /*required=*/false)) {
    return std::nullopt;
  }
  if (!r.stringField("oracle", &entry.oracle, /*required=*/false)) {
    return std::nullopt;
  }
  if (entry.oracle != "spec" && entry.oracle != "strict-tob") {
    r.fail("oracle", "must be 'spec' or 'strict-tob'");
    return std::nullopt;
  }
  const Json* planJson = r.objectField("plan");
  if (planJson == nullptr) {
    if (error != nullptr && error->empty()) *error = "field 'plan': missing";
    return std::nullopt;
  }
  std::optional<FuzzPlan> plan = decodeFuzzPlan(*planJson, error);
  if (!plan) return std::nullopt;
  entry.plan = std::move(*plan);

  const Json* expect = r.objectField("expect");
  if (expect == nullptr) {
    if (error != nullptr && error->empty()) *error = "field 'expect': missing";
    return std::nullopt;
  }
  if (!onlyKnownKeys(*expect, {"pass", "failure_keys", "digests"}, "expect",
                     error)) {
    return std::nullopt;
  }
  Reader er(*expect, error);
  if (!er.boolField("pass", &entry.expect.pass)) return std::nullopt;
  if (const Json* keys = er.arrayField("failure_keys")) {
    for (const Json& k : keys->items()) {
      if (k.kind() != Json::Kind::kString) {
        er.fail("failure_keys", "non-string key");
        return std::nullopt;
      }
      entry.expect.failureKeys.push_back(k.asString());
    }
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }
  if (const Json* digests = er.objectField("digests")) {
    for (const auto& [tag, value] : digests->fields()) {
      if (value.kind() != Json::Kind::kString) {
        er.fail("digests", "digest is not a hex string");
        return std::nullopt;
      }
      std::uint64_t digest = 0;
      if (!parseHex64(value.asString(), &digest)) {
        er.fail("digests", "digest is not 16 hex chars");
        return std::nullopt;
      }
      entry.expect.digests.emplace_back(tag, digest);
    }
  } else if (error != nullptr && !error->empty()) {
    return std::nullopt;
  }
  return entry;
}

std::optional<CorpusEntry> loadCorpusFile(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parseError;
  std::optional<Json> j = Json::parse(buf.str(), &parseError);
  if (!j) {
    if (error != nullptr) *error = path + ": " + parseError;
    return std::nullopt;
  }
  std::string decodeError;
  std::optional<CorpusEntry> entry = decodeCorpusEntry(*j, &decodeError);
  if (!entry && error != nullptr) *error = path + ": " + decodeError;
  return entry;
}

bool saveCorpusFile(const std::string& path, const CorpusEntry& entry) {
  std::ofstream out(path);
  if (!out) return false;
  out << encodeCorpusEntry(entry).dump() << "\n";
  return static_cast<bool>(out);
}

std::optional<std::vector<std::string>> listCorpusFiles(const std::string& dir,
                                                        std::string* error) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (error != nullptr) *error = dir + ": " + ec.message();
    return std::nullopt;
  }
  std::vector<std::string> files;
  for (const std::filesystem::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace wfd
