#include "checkers/tob_checker.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace wfd {
namespace {

/// Index of each id in a sequence.
std::unordered_map<MsgId, std::size_t> indexOf(const std::vector<MsgId>& seq) {
  std::unordered_map<MsgId, std::size_t> idx;
  idx.reserve(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) idx.emplace(seq[i], i);
  return idx;
}

/// True iff the relative order of messages common to a and b agrees.
bool orderConsistent(const std::vector<MsgId>& a, const std::vector<MsgId>& b) {
  auto bIdx = indexOf(b);
  std::size_t lastB = 0;
  bool first = true;
  for (MsgId id : a) {
    auto it = bIdx.find(id);
    if (it == bIdx.end()) continue;
    if (!first && it->second <= lastB) return false;
    lastB = it->second;
    first = false;
  }
  return true;
}

/// Memoized transitive causal ancestors per message (declared deps only).
class CausalClosure {
 public:
  explicit CausalClosure(const BroadcastLog& log) : log_(log) {}

  const std::unordered_set<MsgId>& ancestors(MsgId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    std::unordered_set<MsgId> anc;
    const BroadcastRecord* rec = log_.find(id);
    if (rec != nullptr) {
      for (MsgId dep : rec->deps) {
        anc.insert(dep);
        const auto& up = ancestors(dep);
        anc.insert(up.begin(), up.end());
      }
    }
    return memo_.emplace(id, std::move(anc)).first->second;
  }

 private:
  const BroadcastLog& log_;
  std::unordered_map<MsgId, std::unordered_set<MsgId>> memo_;
};

}  // namespace

BroadcastCheckReport checkBroadcastRun(const Trace& trace, const BroadcastLog& log,
                                       const FailurePattern& pattern) {
  BroadcastCheckReport report;
  const std::vector<ProcessId> correct = pattern.correctSet();
  auto fail = [&report](bool& flag, const std::string& msg) {
    flag = false;
    report.errors.push_back(msg);
  };

  // TOB-Validity: every message broadcast by a correct process is in that
  // process's final delivery sequence.
  for (MsgId id : log.ids()) {
    const BroadcastRecord* rec = log.find(id);
    if (!pattern.correct(rec->origin)) continue;
    const auto& final = trace.currentDelivered(rec->origin);
    if (std::find(final.begin(), final.end(), id) == final.end()) {
      std::ostringstream os;
      os << "validity: message " << id << " broadcast by correct p" << rec->origin
         << " missing from its final d_i";
      fail(report.validityOk, os.str());
    }
  }

  // TOB-Agreement: a message in the final sequence of one correct process
  // must be in the final sequence of every correct process.
  for (ProcessId p : correct) {
    for (MsgId id : trace.currentDelivered(p)) {
      for (ProcessId q : correct) {
        const auto& fq = trace.currentDelivered(q);
        if (std::find(fq.begin(), fq.end(), id) == fq.end()) {
          std::ostringstream os;
          os << "agreement: message " << id << " delivered at p" << p
             << " but not at p" << q;
          fail(report.agreementOk, os.str());
        }
      }
    }
  }

  // TOB-No-creation / TOB-No-duplication over every observed snapshot.
  for (ProcessId p : correct) {
    for (const DeliverySnapshot& snap : trace.deliverySnapshots(p)) {
      std::unordered_set<MsgId> seen;
      for (MsgId id : snap.seq) {
        const BroadcastRecord* rec = log.find(id);
        if (rec == nullptr) {
          std::ostringstream os;
          os << "no-creation: unknown message " << id << " in d_" << p;
          fail(report.noCreationOk, os.str());
        } else if (rec->broadcastAt > snap.time) {
          std::ostringstream os;
          os << "no-creation: message " << id << " delivered at " << snap.time
             << " before its broadcast at " << rec->broadcastAt;
          fail(report.noCreationOk, os.str());
        }
        if (!seen.insert(id).second) {
          std::ostringstream os;
          os << "no-duplication: message " << id << " appears twice in d_" << p;
          fail(report.noDuplicationOk, os.str());
        }
      }
    }
  }

  // ETOB-Stability witness: last prefix violation over correct processes.
  Time lastStabilityViolation = 0;
  for (ProcessId p : correct) {
    lastStabilityViolation =
        std::max(lastStabilityViolation, trace.lastPrefixViolation(p));
  }
  report.tauStability = lastStabilityViolation == 0 ? 0 : lastStabilityViolation + 1;

  // ETOB-Total-order witness: replay the merged snapshot timeline and find
  // the last moment two correct processes ordered common messages
  // differently.
  struct TimedSnap {
    Time time;
    ProcessId p;
    const std::vector<MsgId>* seq;
  };
  std::vector<TimedSnap> timeline;
  for (ProcessId p : correct) {
    for (const DeliverySnapshot& snap : trace.deliverySnapshots(p)) {
      timeline.push_back(TimedSnap{snap.time, p, &snap.seq});
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimedSnap& a, const TimedSnap& b) { return a.time < b.time; });
  std::unordered_map<ProcessId, const std::vector<MsgId>*> current;
  Time lastOrderViolation = 0;
  for (const TimedSnap& snap : timeline) {
    current[snap.p] = snap.seq;
    for (const auto& [q, seq] : current) {
      if (q == snap.p) continue;
      if (!orderConsistent(*snap.seq, *seq)) {
        lastOrderViolation = std::max(lastOrderViolation, snap.time);
      }
    }
  }
  report.tauTotalOrder = lastOrderViolation == 0 ? 0 : lastOrderViolation + 1;
  report.tau = std::max(report.tauStability, report.tauTotalOrder);

  // TOB-Causal-Order: in every snapshot, every declared (transitive)
  // dependency present in the sequence appears before its dependent.
  CausalClosure closure(log);
  for (ProcessId p : correct) {
    for (const DeliverySnapshot& snap : trace.deliverySnapshots(p)) {
      auto idx = indexOf(snap.seq);
      for (std::size_t i = 0; i < snap.seq.size(); ++i) {
        for (MsgId dep : closure.ancestors(snap.seq[i])) {
          auto it = idx.find(dep);
          if (it != idx.end() && it->second > i) {
            std::ostringstream os;
            os << "causal-order: " << snap.seq[i] << " precedes its dependency "
               << dep << " in d_" << p << " at t=" << snap.time;
            fail(report.causalOrderOk, os.str());
          }
        }
      }
    }
  }

  return report;
}

}  // namespace wfd
