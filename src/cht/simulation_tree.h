// Simulated runs of the target EC algorithm A over DAG stimuli — the
// simulation tree Υ of Section 4, with per-instance k-tags and the
// bivalent-vertex / decision-gadget machinery of Algorithm 3 and
// Appendix B (Figures 3–6), made executable.
//
// The proof manipulates the infinite limit tree; the executable version
// works on bounded prefixes with two standard finitizations, both
// documented in DESIGN.md:
//  * k-tags are approximated by three deterministic "probe" completions
//    from a vertex — all-0 inputs, all-1 inputs, and mixed inputs. By
//    EC-Validity/Termination the forced probes realize the paper's
//    observation (*) (every vertex has descendants deciding 0 and
//    descendants deciding 1), and the mixed probe witnesses ⊥ exactly
//    when instance k can still disagree under the sampled FD history.
//  * The gadget search walks the canonical bivalent path (Figure 4) and
//    tests fork/hook patterns at each node (Figure 5) instead of
//    materializing the full subtree.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cht/fd_dag.h"
#include "common/types.h"
#include "sim/automaton.h"

namespace wfd {

/// Builds one fresh instance of the target algorithm A(p). A must be an
/// EC implementation: it consumes ProposeInput inputs and emits
/// EcDecision outputs, using ctx.fd as its failure-detector module.
using TargetFactory =
    std::function<std::unique_ptr<Automaton>(ProcessId self, std::size_t n)>;

/// Bounds for the finite exploration.
struct TreeLimits {
  Instance maxInstance = 4;       // explore instances 1..maxInstance
  std::size_t probeSteps = 400;   // step budget per probe completion
  std::size_t walkSteps = 64;     // gadget-walk budget (tree depth)
  std::size_t hookSteps = 64;     // frozen-walk budget for hook location
};

/// One simulated step (the schedule alphabet): process q performs an
/// action using DAG vertex `vertexIdx` as its failure-detector query.
enum class StepAction : std::uint8_t {
  kProposeZero,
  kProposeOne,
  kDeliverOldest,
  kLambda,
};

struct StepDescriptor {
  ProcessId proc = kNoProcess;
  std::size_t vertexIdx = 0;
  StepAction action = StepAction::kLambda;
  /// For kDeliverOldest: uid of the consumed message, for hook-step
  /// identity across configurations.
  std::uint64_t msgUid = 0;

  bool sameStepAs(const StepDescriptor& other) const {
    return proc == other.proc && vertexIdx == other.vertexIdx &&
           action == other.action && msgUid == other.msgUid;
  }
};

/// A configuration of the simulated system: automata states, in-flight
/// messages, per-process driver bookkeeping and the response history of
/// the schedule that produced it.
class SimConfigState {
 public:
  SimConfigState(const TargetFactory& factory, std::size_t processCount);
  SimConfigState(const SimConfigState& other);
  SimConfigState& operator=(const SimConfigState&) = delete;
  SimConfigState(SimConfigState&&) = default;
  SimConfigState& operator=(SimConfigState&&) = default;

  std::size_t processCount() const { return procs_.size(); }
  bool pendingPropose(ProcessId p) const { return procs_[p].pendingPropose; }
  Instance proposedUpTo(ProcessId p) const { return procs_[p].proposed; }
  std::uint64_t lastDagK(ProcessId p) const { return procs_[p].lastDagK; }
  bool hasPendingMessage(ProcessId p) const;
  std::uint64_t oldestMessageUid(ProcessId p) const;
  std::optional<std::size_t> lastVertex() const { return lastVertex_; }
  std::size_t depth() const { return depth_; }

  /// Values responded for instance k in this schedule (binary: 0/1).
  const std::set<std::uint64_t>& responses(Instance k) const;
  /// True iff two different values were returned for instance k.
  bool disagreement(Instance k) const;
  /// True iff every process in `procs` has responded to instance k.
  bool allResponded(Instance k, const std::vector<ProcessId>& procs) const;
  /// k-enabledness: k == 1, or some response to k-1 exists in the schedule.
  bool enabled(Instance k) const {
    return k == 1 || !responses(k - 1).empty();
  }

  /// Applies one step (must be eligible; see eligibleVertex). maxInstance
  /// stops the proposal ladder.
  void apply(const FdDag& dag, const StepDescriptor& step, Instance maxInstance);

  /// Advances q's query cursor so only vertices with k > minK remain
  /// eligible — the "skewed" probes use this to simulate schedules where
  /// q takes its steps late (paths may skip vertices).
  void advanceDagCursor(ProcessId q, std::uint64_t minK);

 private:
  struct Proc {
    std::unique_ptr<Automaton> automaton;
    Instance proposed = 0;      // last instance proposed by this process
    bool pendingPropose = true; // must propose (proposed+1) next
    std::uint64_t lastDagK = 0; // last DAG query index consumed
  };
  struct Pending {
    ProcessId to = kNoProcess;
    ProcessId from = kNoProcess;
    Payload payload;
    std::uint64_t uid = 0;
  };

  std::vector<Proc> procs_;
  std::vector<Pending> buffer_;
  std::uint64_t nextUid_ = 1;
  std::size_t depth_ = 0;
  std::optional<std::size_t> lastVertex_;
  std::map<Instance, std::set<std::uint64_t>> responses_;
  std::map<Instance, std::set<ProcessId>> respondedBy_;
  std::set<Instance> disagreement_;
};

/// k-tag of a vertex: which of {0, 1, ⊥} were observed in (probed)
/// descendants (Section 4's valency tags).
struct KTag {
  bool has0 = false;
  bool has1 = false;
  bool hasBot = false;

  bool bivalent() const { return has0 && has1 && !hasBot; }
  bool univalent() const { return (has0 != has1) && !hasBot; }
  std::uint64_t value() const { return has1 ? 1 : 0; }  // for univalent tags
  bool invalid() const { return hasBot; }
};

/// A located decision gadget (fork or hook, Figure 3).
struct DecisionGadget {
  enum class Kind { kFork, kHook } kind = Kind::kFork;
  ProcessId decidingProcess = kNoProcess;
  std::size_t pivotDepth = 0;
  Instance instance = 0;
};

/// The executable reduction core shared by every process: deterministic
/// functions of (DAG, limits), so processes with equal DAGs compute equal
/// results — the convergence the CHT proof needs.
class TreeAnalysis {
 public:
  TreeAnalysis(const FdDag& dag, TargetFactory factory, std::size_t processCount,
               TreeLimits limits);

  /// Processes that still have usable samples in the DAG (others have
  /// crashed or fallen silent; simulated fair paths ignore them).
  const std::vector<ProcessId>& activeProcs() const { return active_; }

  /// Probe-approximated k-tag of a configuration.
  KTag tag(const SimConfigState& config, Instance k) const;

  /// Algorithm 3 (executable form): advance the canonical schedule until
  /// an instance k <= maxInstance with a bivalent configuration is found.
  /// Returns the configuration and k, or nullopt within the bounds.
  std::optional<std::pair<SimConfigState, Instance>> findBivalent() const;

  /// Figures 4+5: from a k-bivalent configuration, walk the bivalent path
  /// and locate a fork or hook; returns its deciding process.
  std::optional<DecisionGadget> findGadget(const SimConfigState& start,
                                           Instance k) const;

  /// Full extraction: bivalent vertex, then gadget, then deciding process.
  std::optional<ProcessId> extractLeader() const;

 private:
  struct ProbeOutcome {
    std::set<std::uint64_t> values;
    bool disagreement = false;
  };

  /// Canonical next step for process q in `config` under an input policy
  /// (what value q proposes if a proposal is pending); nullopt if q has
  /// no eligible vertex left. `preferLambda` forces a λ-step over a
  /// delivery — the fair-completion policy alternates deliver/λ so a
  /// process can decide (Algorithm 4 decides on λ-steps) right after
  /// consuming the leader's promote, instead of draining its whole queue
  /// first and exhausting the finite DAG path budget.
  std::optional<StepDescriptor> canonicalStep(const SimConfigState& config,
                                              ProcessId q,
                                              std::uint64_t proposeValue,
                                              bool preferLambda = false) const;

  /// Smallest eligible vertex for q (canonical order), optionally
  /// skipping vertices whose FdValue equals `differentFrom`.
  std::optional<std::size_t> eligibleVertex(
      const SimConfigState& config, ProcessId q,
      const FdValue* differentFrom = nullptr) const;

  /// Runs the canonical fair completion from `config` until instance k is
  /// answered by all active processes (or budget). `inputOf(p)` chooses
  /// proposal values. If `lateProc` is a valid process, that process only
  /// consumes vertices with query index > lateMinK — the skewed
  /// completions that witness ⊥ when early and late failure-detector
  /// samples lead to different deciders (e.g. a leader that crashed
  /// mid-history).
  ProbeOutcome probe(const SimConfigState& config, Instance k,
                     const std::function<std::uint64_t(ProcessId)>& inputOf,
                     ProcessId lateProc = kNoProcess,
                     std::uint64_t lateMinK = 0) const;

  /// Child steps of a configuration in canonical order (the tree edges).
  std::vector<StepDescriptor> childSteps(const SimConfigState& config) const;

  const FdDag& dag_;
  DagReach reach_;
  TargetFactory factory_;
  std::size_t processCount_;
  TreeLimits limits_;
  std::vector<ProcessId> active_;
  /// Per-process vertex indices in canonical (k, q, d) order — the
  /// eligibility scans' fast path.
  std::vector<std::vector<std::size_t>> perProc_;
  /// Highest query index per process (skew probes start past the half).
  std::vector<std::uint64_t> maxK_;
};

}  // namespace wfd
