// Adapter that rewrites the failure-detector value seen by an inner
// automaton — e.g. deriving an Omega leader from an eventually-perfect
// suspect list so that Algorithm 4 can run over ◊P histories (used by the
// CHT necessity experiments: any D solving EC, not just Omega).
#pragma once

#include <algorithm>
#include <functional>
#include <utility>

#include "sim/automaton.h"

namespace wfd {

/// Maps an FdValue to the FdValue the inner automaton should see.
using FdValueMapper = std::function<FdValue(const FdValue&, const StepContext&)>;

/// The classical ◊P -> Omega reduction: trust the smallest non-suspected
/// process (falling back to self if everyone is suspected).
inline FdValueMapper leaderFromSuspects() {
  return [](const FdValue& in, const StepContext& ctx) {
    FdValue out = in;
    out.leader = ctx.self;
    for (ProcessId q = 0; q < ctx.processCount; ++q) {
      if (!std::binary_search(in.suspects.begin(), in.suspects.end(), q)) {
        out.leader = q;
        break;
      }
    }
    return out;
  };
}

template <typename Inner>
class FdAdaptedAutomaton final
    : public CloneableAutomaton<FdAdaptedAutomaton<Inner>> {
 public:
  FdAdaptedAutomaton(Inner inner, FdValueMapper mapper)
      : inner_(std::move(inner)), mapper_(std::move(mapper)) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    inner_.onInput(mapped(ctx), input, fx);
  }
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    inner_.onMessage(mapped(ctx), from, msg, fx);
  }
  void onTimeout(const StepContext& ctx, Effects& fx) override {
    inner_.onTimeout(mapped(ctx), fx);
  }

  const Inner& inner() const { return inner_; }

 private:
  StepContext mapped(const StepContext& ctx) const {
    StepContext out = ctx;
    out.fd = mapper_(ctx.fd, ctx);
    return out;
  }

  Inner inner_;
  FdValueMapper mapper_;
};

}  // namespace wfd
