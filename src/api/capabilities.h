// Service-level stack vocabulary and per-stack capability advertisement
// for the wfd::Cluster / wfd::Client facade.
//
// The facade exposes ONE uniform client surface over five very different
// protocol stacks. Capabilities is how a cluster advertises which parts
// of that surface are live for the stack it fronts, so callers can
// branch on flags instead of dynamic_casting automaton internals:
// unadvertised calls return the empty answer (committedPrefix() == {},
// kvGet() == nullopt) or are rejected as programming errors (submit on a
// stack with no client input surface).
#pragma once

#include <cstddef>
#include <iterator>
#include <string>

namespace wfd {

/// Which protocol stack a cluster installs on every process.
enum class AlgoStack {
  kEtob,             // Algorithm 5 (eTOB directly from Omega)
  kCommitEtob,       // the §7 committed-prefix extension of Algorithm 5
  kTobViaConsensus,  // strong TOB baseline over Multi-Paxos
  kGossipLww,        // Dynamo-style gossip/LWW strawman
  kOmegaEc,          // Algorithm 4 (EC from Omega) under the proposal driver
};

/// Every stack, in enum order — THE canonical list. Anything that
/// enumerates stacks (wfd_explore --stack all, wfd_scenarios --stack,
/// the fuzz sampler's name parser, bench E11, sweep tests) iterates
/// this, so adding an enum value above without extending this line is
/// impossible to miss.
inline constexpr AlgoStack kAllAlgoStacks[] = {
    AlgoStack::kEtob, AlgoStack::kCommitEtob, AlgoStack::kTobViaConsensus,
    AlgoStack::kGossipLww, AlgoStack::kOmegaEc};
// Tripwire: when adding an AlgoStack, extend kAllAlgoStacks AND bump this
// count (the -Wswitch warnings in algoStackName/stackCapabilities and the
// cluster lowering catch the switches; this catches the array).
static_assert(std::size(kAllAlgoStacks) == 5,
              "kAllAlgoStacks must cover every AlgoStack enumerator");

/// Stable stack name, shared by plans, scenarios and both CLIs.
const char* algoStackName(AlgoStack stack);

/// Inverse of algoStackName; false on unknown name.
bool parseAlgoStack(const std::string& name, AlgoStack* out);

/// What the uniform Client surface supports on a given cluster.
struct Capabilities {
  /// Client::submit / submitAt accept application broadcasts.
  bool submits = false;
  /// Client::delivered() exposes the evolving delivery sequence d_i.
  bool deliverySequence = false;
  /// Client::committedPrefix() can become non-empty (§7 commit-eTOB).
  bool committedPrefix = false;
  /// Client::put / kvGet: replicated key-value writes and reads.
  bool kv = false;
  /// The stack drives its own EC proposal stream; clients observe
  /// decisions() instead of submitting.
  bool selfProposing = false;
};

/// Capabilities of a bare stack. ClusterSpec::kvReplica additionally
/// turns on `kv` for the broadcast stacks (the cluster computes the
/// effective flags; see Cluster::capabilities()).
Capabilities stackCapabilities(AlgoStack stack);

}  // namespace wfd
