#include "checkers/ec_checker.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ec/ec_types.h"

namespace wfd {
namespace {

/// Per-instance proposal sets and per-(process, instance) response lists
/// extracted from trace outputs.
struct DecisionHistory {
  std::map<Instance, std::set<Value>> proposals;
  // responses[p][l] = responses of p to instance l, in output order.
  std::vector<std::map<Instance, std::vector<Value>>> responses;
};

template <typename DecisionT>
DecisionHistory extract(const Trace& trace) {
  DecisionHistory h;
  h.responses.resize(trace.processCount());
  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    for (const OutputEvent& ev : trace.outputs(p)) {
      if (const auto* prop = ev.value.as<ProposalMade>()) {
        h.proposals[prop->instance].insert(prop->value);
      } else if (const auto* dec = ev.value.as<DecisionT>()) {
        h.responses[p][dec->instance].push_back(dec->value);
      }
    }
  }
  return h;
}

/// Largest L such that every correct process has (at least) one response
/// for every instance in 1..L.
Instance contiguousDecided(const DecisionHistory& h, const FailurePattern& pattern) {
  Instance best = 0;
  for (Instance l = 1;; ++l) {
    for (ProcessId p = 0; p < h.responses.size(); ++p) {
      if (!pattern.correct(p)) continue;
      auto it = h.responses[p].find(l);
      if (it == h.responses[p].end() || it->second.empty()) return best;
    }
    best = l;
  }
}

}  // namespace

EcCheckReport checkEcRun(const Trace& trace, const FailurePattern& pattern) {
  EcCheckReport report;
  const DecisionHistory h = extract<EcDecision>(trace);

  Instance lastDisagreement = 0;
  std::map<Instance, std::pair<ProcessId, Value>> firstResponse;
  for (ProcessId p = 0; p < h.responses.size(); ++p) {
    for (const auto& [l, values] : h.responses[p]) {
      // EC-Integrity: at most one response per instance per process.
      if (values.size() > 1) {
        std::ostringstream os;
        os << "EC-integrity: p" << p << " responded " << values.size()
           << " times to instance " << l;
        report.integrityOk = false;
        report.errors.push_back(os.str());
      }
      for (const Value& v : values) {
        // EC-Validity: the value was proposed for this instance.
        auto props = h.proposals.find(l);
        if (props == h.proposals.end() || !props->second.contains(v)) {
          std::ostringstream os;
          os << "EC-validity: p" << p << " decided an unproposed value in instance "
             << l;
          report.validityOk = false;
          report.errors.push_back(os.str());
        }
        // EC-Agreement witness: track cross-process disagreement.
        auto [it, inserted] = firstResponse.try_emplace(l, p, v);
        if (!inserted && it->second.second != v) {
          lastDisagreement = std::max(lastDisagreement, l);
        }
      }
    }
  }
  report.agreementFromK = lastDisagreement + 1;
  report.decidedByAllCorrect = contiguousDecided(h, pattern);
  return report;
}

EicCheckReport checkEicRun(const Trace& trace, const FailurePattern& pattern) {
  EicCheckReport report;
  const DecisionHistory h = extract<EicDecision>(trace);

  Instance lastRevision = 0;
  for (ProcessId p = 0; p < h.responses.size(); ++p) {
    for (const auto& [l, values] : h.responses[p]) {
      if (values.size() > 1) lastRevision = std::max(lastRevision, l);
      for (const Value& v : values) {
        auto props = h.proposals.find(l);
        if (props == h.proposals.end() || !props->second.contains(v)) {
          std::ostringstream os;
          os << "EIC-validity: p" << p
             << " responded with an unproposed value in instance " << l;
          report.validityOk = false;
          report.errors.push_back(os.str());
        }
      }
    }
  }
  report.integrityFromK = lastRevision + 1;

  // Final-response agreement per instance across correct processes.
  std::map<Instance, std::pair<ProcessId, Value>> finals;
  for (ProcessId p = 0; p < h.responses.size(); ++p) {
    if (!pattern.correct(p)) continue;
    for (const auto& [l, values] : h.responses[p]) {
      if (values.empty()) continue;
      auto [it, inserted] = finals.try_emplace(l, p, values.back());
      if (!inserted && it->second.second != values.back()) {
        std::ostringstream os;
        os << "EIC-agreement: final responses of p" << it->second.first << " and p"
           << p << " differ in instance " << l;
        report.finalAgreementOk = false;
        report.errors.push_back(os.str());
      }
    }
  }
  report.decidedByAllCorrect = contiguousDecided(h, pattern);
  return report;
}

}  // namespace wfd
