#include "sim/network_model.h"

#include <algorithm>
#include <cstdint>

#include "common/ensure.h"

namespace wfd {

// ------------------------------------------------------------- NetworkModel

int NetworkModel::compositionRank() const { return kRankBase; }

void ensureCanonicalComposition(const NetworkModel& outermost) {
  const NetworkModel* layer = &outermost;
  int outerRank = layer->compositionRank();
  for (const NetworkModel* inner = layer->innerModel(); inner != nullptr;
       inner = inner->innerModel()) {
    const int innerRank = inner->compositionRank();
    WFD_ENSURE_MSG(innerRank <= outerRank,
                   "non-canonical network model composition: '" +
                       inner->name() + "' (rank " + std::to_string(innerRank) +
                       ") is wrapped by '" + layer->name() + "' (rank " +
                       std::to_string(outerRank) +
                       ") — decorators must be stacked partitions > lossy > "
                       "clock-skew > chaos > base, outermost first");
    layer = inner;
    outerRank = innerRank;
  }
}

// ---------------------------------------------------------- UniformDelayModel

UniformDelayModel::UniformDelayModel(Time minDelay, Time maxDelay, bool fixed)
    : minDelay_(minDelay), maxDelay_(maxDelay), fixed_(fixed) {
  WFD_ENSURE(minDelay_ >= 1 && minDelay_ <= maxDelay_);
}

void UniformDelayModel::schedule(const LinkSend& send, Rng& rng,
                                 std::vector<Time>& arrivals) const {
  // Exactly the legacy Simulator::deliveryTime draw sequence: one
  // rng.between per send (none when fixed), so default-model runs replay
  // pre-refactor traces bit-for-bit.
  const Time delay = fixed_ ? maxDelay_ : rng.between(minDelay_, maxDelay_);
  arrivals.push_back(send.sentAt + delay);
}

std::string UniformDelayModel::name() const {
  return fixed_ ? "uniform-delay(fixed=" + std::to_string(maxDelay_) + ")"
                : "uniform-delay(" + std::to_string(minDelay_) + ".." +
                      std::to_string(maxDelay_) + ")";
}

// -------------------------------------------------------- AsymmetricDelayModel

AsymmetricDelayModel::AsymmetricDelayModel(DelayFn delays)
    : delays_(std::move(delays)) {
  WFD_ENSURE(static_cast<bool>(delays_));
}

std::shared_ptr<AsymmetricDelayModel> AsymmetricDelayModel::slowProcess(
    Time minDelay, Time maxDelay, ProcessId slow, Time factor) {
  WFD_ENSURE(factor >= 1);
  return std::make_shared<AsymmetricDelayModel>(
      [minDelay, maxDelay, slow, factor](ProcessId from, ProcessId to) {
        LinkDelay d{minDelay, maxDelay};
        if (from == slow || to == slow) {
          d.minDelay *= factor;
          d.maxDelay *= factor;
        }
        return d;
      });
}

void AsymmetricDelayModel::schedule(const LinkSend& send, Rng& rng,
                                    std::vector<Time>& arrivals) const {
  const LinkDelay d = delays_(send.from, send.to);
  WFD_ENSURE(d.minDelay >= 1 && d.minDelay <= d.maxDelay);
  arrivals.push_back(send.sentAt + rng.between(d.minDelay, d.maxDelay));
}

std::string AsymmetricDelayModel::name() const { return "asymmetric-delay"; }

// ------------------------------------------------------------- PartitionModel

namespace {

/// Deferral point of `at` under one spec; `at` itself if outside windows.
Time deferOnce(const PartitionSpec& s, ProcessId from, ProcessId to, Time at) {
  if (!s.cuts(from, to)) return at;
  if (s.period == 0) {
    return (at >= s.start && at < s.start + s.width) ? s.start + s.width : at;
  }
  if (at < s.start) return at;
  const Time phase = (at - s.start) % s.period;
  return phase < s.width ? at + (s.width - phase) : at;
}

}  // namespace

Time deferPastPartitions(const std::vector<PartitionSpec>& specs,
                         ProcessId from, ProcessId to, Time at) {
  // Windows of different specs may chain; iterate to a fixed point. Each
  // pass that moves strictly advances time past some window, so for any
  // admissible spec set (every link sees gaps) this converges in a few
  // passes. Spec sets whose windows jointly cover all time on a link
  // would iterate forever — that is a dropped message in disguise, so
  // the pass bound turns it into an invariant error instead of a hang.
  std::size_t passes = 0;
  bool moved = true;
  while (moved) {
    WFD_ENSURE_MSG(++passes <= 1000,
                   "partition specs jointly cover all time on a link "
                   "(message would never be delivered)");
    moved = false;
    for (const PartitionSpec& s : specs) {
      const Time deferred = deferOnce(s, from, to, at);
      if (deferred != at) {
        at = deferred;
        moved = true;
      }
    }
  }
  return at;
}

PartitionModel::PartitionModel(std::shared_ptr<const NetworkModel> inner,
                               std::vector<PartitionSpec> specs)
    : inner_(std::move(inner)), specs_(std::move(specs)) {
  WFD_ENSURE(inner_ != nullptr);
  for (const PartitionSpec& s : specs_) {
    WFD_ENSURE(s.width >= 1);
    // Recurring windows must leave a gap, or deferral would chase the
    // window forever and delivery would never happen (inadmissible).
    WFD_ENSURE(s.period == 0 || s.width < s.period);
  }
}

void PartitionModel::schedule(const LinkSend& send, Rng& rng,
                              std::vector<Time>& arrivals) const {
  const std::size_t first = arrivals.size();
  inner_->schedule(send, rng, arrivals);
  for (std::size_t i = first; i < arrivals.size(); ++i) {
    arrivals[i] = deferPastPartitions(specs_, send.from, send.to, arrivals[i]);
  }
}

Time PartitionModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  return inner_->lambdaPeriod(p, basePeriod);
}

bool PartitionModel::mayDuplicate() const { return inner_->mayDuplicate(); }

std::string PartitionModel::name() const {
  return "partition(" + std::to_string(specs_.size()) + " specs) over " +
         inner_->name();
}

// ------------------------------------------------------------- ChaosLinkModel

ChaosLinkModel::ChaosLinkModel(std::shared_ptr<const NetworkModel> inner,
                               Config config)
    : inner_(std::move(inner)), config_(std::move(config)) {
  WFD_ENSURE(inner_ != nullptr);
  WFD_ENSURE(config_.dupDen > 0 && config_.dupNum <= config_.dupDen);
  WFD_ENSURE(config_.reorderJitter >= 1);
}

void ChaosLinkModel::schedule(const LinkSend& send, Rng& rng,
                              std::vector<Time>& arrivals) const {
  const std::size_t first = arrivals.size();
  inner_->schedule(send, rng, arrivals);
  if (config_.affects && !config_.affects(send.from, send.to)) return;
  const std::size_t innerCount = arrivals.size() - first;
  for (std::size_t i = 0; i < innerCount; ++i) {
    // Bounded reordering: jitter the copy by up to reorderJitter ticks.
    // Jitter only ever adds delay, so arrivals stay >= sentAt + 1.
    arrivals[first + i] += rng.between(0, config_.reorderJitter);
    if (config_.maxExtraCopies > 0 &&
        rng.chance(config_.dupNum, config_.dupDen)) {
      const std::uint64_t copies = rng.between(1, config_.maxExtraCopies);
      const Time base = arrivals[first + i];
      for (std::uint64_t c = 0; c < copies; ++c) {
        arrivals.push_back(base + rng.between(1, config_.reorderJitter));
      }
    }
  }
}

Time ChaosLinkModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  return inner_->lambdaPeriod(p, basePeriod);
}

std::string ChaosLinkModel::name() const {
  return "chaos(dup=" + std::to_string(config_.dupNum) + "/" +
         std::to_string(config_.dupDen) +
         ",jitter=" + std::to_string(config_.reorderJitter) + ") over " +
         inner_->name();
}

// ------------------------------------------------------------- ClockSkewModel

ClockSkewModel::ClockSkewModel(std::shared_ptr<const NetworkModel> inner,
                               std::vector<Skew> perProcess)
    : inner_(std::move(inner)), skews_(std::move(perProcess)) {
  WFD_ENSURE(inner_ != nullptr);
  for (const Skew& s : skews_) WFD_ENSURE(s.num >= 1 && s.den >= 1);
}

std::shared_ptr<ClockSkewModel> ClockSkewModel::spread(
    std::shared_ptr<const NetworkModel> inner, std::size_t processCount,
    Skew slowest, Skew fastest) {
  WFD_ENSURE(processCount >= 2);
  // Interpolate the scale factor linearly in integer per-mille so the
  // spread is exact and platform-independent.
  const std::int64_t lo =
      static_cast<std::int64_t>(slowest.num * 1000 / slowest.den);
  const std::int64_t hi =
      static_cast<std::int64_t>(fastest.num * 1000 / fastest.den);
  std::vector<Skew> skews(processCount);
  for (std::size_t p = 0; p < processCount; ++p) {
    const std::int64_t permille =
        lo + (hi - lo) * static_cast<std::int64_t>(p) /
                 static_cast<std::int64_t>(processCount - 1);
    skews[p] = Skew{static_cast<std::uint64_t>(std::max<std::int64_t>(permille, 1)),
                    1000};
  }
  return std::make_shared<ClockSkewModel>(std::move(inner), std::move(skews));
}

void ClockSkewModel::schedule(const LinkSend& send, Rng& rng,
                              std::vector<Time>& arrivals) const {
  inner_->schedule(send, rng, arrivals);
}

Time ClockSkewModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  const Time base = inner_->lambdaPeriod(p, basePeriod);
  if (p >= skews_.size()) return base;
  const Skew& s = skews_[p];
  return std::max<Time>(base * s.num / s.den, 1);
}

bool ClockSkewModel::mayDuplicate() const { return inner_->mayDuplicate(); }

std::string ClockSkewModel::name() const {
  return "clock-skew over " + inner_->name();
}

}  // namespace wfd
