// Shared helpers for the experiment benches: table printing and the
// standard simulator setups used across E1..E8.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "sim/simulator.h"
#include "tob/tob_via_consensus.h"

namespace wfd::bench {

/// Prints a fixed-width row. Columns sized by the header call.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int colWidth = 14)
      : width_(colWidth), cols_(headers.size()) {
    std::string line;
    for (const auto& h : headers) line += pad(h);
    std::printf("%s\n", line.c_str());
    std::printf("%s\n", std::string(width_ * cols_, '-').c_str());
  }

  void row(const std::vector<std::string>& cells) {
    std::string line;
    for (const auto& c : cells) line += pad(c);
    std::printf("%s\n", line.c_str());
  }

 private:
  std::string pad(const std::string& s) const {
    std::string out = s;
    if (out.size() < static_cast<std::size_t>(width_)) {
      out += std::string(width_ - out.size(), ' ');
    }
    return out + " ";
  }
  int width_;
  std::size_t cols_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Simulator over Omega with ETOB automata on every process.
inline Simulator makeEtobCluster(SimConfig cfg, FailurePattern fp, Time tauOmega,
                                 OmegaPreStabilization mode) {
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega, mode);
  Simulator sim(cfg, std::move(fp), std::move(omega));
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  return sim;
}

/// Simulator over Omega with TOB-via-consensus automata on every process.
inline Simulator makeTobCluster(SimConfig cfg, FailurePattern fp, Time tauOmega,
                                OmegaPreStabilization mode) {
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega, mode);
  Simulator sim(cfg, std::move(fp), std::move(omega));
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p,
                   std::make_unique<TobViaConsensusAutomaton>(p, cfg.processCount));
  }
  return sim;
}

}  // namespace wfd::bench
