// Naive eventually consistent store: anti-entropy gossip with
// last-writer-wins conflict resolution (Lamport timestamps).
//
// This is the "eventual consistency as deployed" strawman (Dynamo-style
// [7]): it converges, but it provides neither total order nor causal
// order — the E5 bench counts its causal inversions against ETOB's zero.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "sim/app_msg.h"
#include "sim/automaton.h"

namespace wfd {

/// Output event: this replica applied (or adopted via gossip) an update.
/// The per-process sequence of GossipApplied events is the store's local
/// "delivery order" compared against causal dependencies in E5.
struct GossipApplied {
  MsgId id = 0;
  std::uint64_t key = 0;
};

class GossipLwwStore final : public CloneableAutomaton<GossipLwwStore> {
 public:
  struct Entry {
    std::uint64_t value = 0;
    std::uint64_t timestamp = 0;  // Lamport clock, ties by origin
    ProcessId origin = kNoProcess;
    MsgId sourceMsg = 0;

    bool newerThan(const Entry& other) const {
      if (timestamp != other.timestamp) return timestamp > other.timestamp;
      return origin > other.origin;
    }
    bool operator==(const Entry&) const = default;
  };

  /// Input: BroadcastInput whose AppMsg body is {kPut, key, value}.
  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  /// Gossip merge.
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  /// Anti-entropy: broadcast the full table every λ-step.
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  const std::map<std::uint64_t, Entry>& table() const { return table_; }
  bool sameTable(const GossipLwwStore& other) const { return table_ == other.table_; }
  /// Distinct updates this replica has applied (locally or via gossip).
  std::uint64_t appliedCount() const { return seen_.size(); }

 private:
  void adopt(std::uint64_t key, const Entry& entry, Effects& fx);

  std::map<std::uint64_t, Entry> table_;
  std::set<MsgId> seen_;
  std::uint64_t clock_ = 0;
};

/// Gossip wire message: the sender's full table.
struct GossipStateMsg {
  std::map<std::uint64_t, GossipLwwStore::Entry> table;
};

}  // namespace wfd
