#include "etob/etob_automaton.h"

#include "common/ensure.h"

namespace wfd {

bool advancePromoteChain(PromoteChain& chain, const EtobPromoteMsg& msg,
                         const CausalityGraph& cg,
                         std::unordered_map<MsgId, AppMsg>& adoptedBodies) {
  if (msg.epoch <= chain.epoch) return false;  // stale duplicate
  chain.pending.emplace(msg.epoch, msg);
  bool advanced = false;
  while (!chain.pending.empty()) {
    const auto it = chain.pending.begin();
    if (it->first <= chain.epoch) {  // superseded by a newer full snapshot
      chain.pending.erase(it);
      continue;
    }
    const EtobPromoteMsg& p = it->second;
    const bool full = p.baseLen == 0;
    // A delta extends exactly the sender's previous promote; epochs are
    // contiguous per sender, so a gap means that promote is still in
    // flight (reliable links guarantee it arrives).
    if (!full && it->first != chain.epoch + 1) break;
    if (full) {
      chain.ids.clear();
    } else {
      WFD_ENSURE_MSG(chain.ids.size() == p.baseLen,
                     "promote delta base length mismatch");
    }
    chain.ids.reserve(chain.ids.size() + p.seq.size());
    for (const AppMsg& m : p.seq) {
      chain.ids.push_back(m.id);
      // Stash content the causality graph doesn't know yet so every id in
      // the reconstructed sequence stays resolvable via findMessage.
      if (!cg.contains(m.id)) adoptedBodies.emplace(m.id, m);
    }
    chain.epoch = it->first;
    chain.pending.erase(it);
    advanced = true;
  }
  return advanced;
}

EtobAutomaton::EtobAutomaton(EtobConfig config)
    : config_(config), cg_(config.edgeMode) {}

void EtobAutomaton::onInput(const StepContext&, const Payload& input, Effects& fx) {
  const auto* bcast = input.as<BroadcastInput>();
  if (bcast == nullptr) return;

  AppMsg m = bcast->msg;
  std::vector<MsgId> deps = m.causalDeps;
  if (config_.autoCausal) {
    // C(m) ⊇ everything this process has sent or received so far. Listing
    // the causal frontier (the graph's sinks) is closure-equivalent to
    // listing every known message — every known message reaches a sink —
    // and promote order depends only on the closure.
    for (MsgId known : cg_.frontier()) deps.push_back(known);
  }
  cg_.addMessage(m, deps);
  if (config_.deltaUpdates) {
    const std::size_t weight = 3 + m.body.size() + deps.size();
    fx.broadcast(Payload::of(EtobDeltaMsg{std::move(m), std::move(deps)}), weight);
  } else {
    fx.broadcast(Payload::of(EtobUpdateMsg{cg_}), cg_.approxWeight());
  }
}

void EtobAutomaton::onMessage(const StepContext& ctx, ProcessId from,
                              const Payload& msg, Effects& fx) {
  if (const auto* update = msg.as<EtobUpdateMsg>()) {
    cg_.unionWith(update->cg);
    pruneAdopted(update->cg);
    updatePromote();
    return;
  }
  if (const auto* delta = msg.as<EtobDeltaMsg>()) {
    cg_.addMessage(delta->msg, delta->deps);
    adoptedBodies_.erase(delta->msg.id);
    updatePromote();
    return;
  }
  if (const auto* promote = msg.as<EtobPromoteMsg>()) {
    auto& chain = chains_[from];
    advancePromoteChain(chain, *promote, cg_, adoptedBodies_);
    // Adopt the reconstructed sequence only if it comes from the process
    // this module's Omega currently trusts, and only in send order (stale
    // reordered promotes from the same sender are discarded: the chain
    // head only ever moves forward).
    if (ctx.fd.leader == from && chain.epoch > adoptedEpoch_[from]) {
      adoptedEpoch_[from] = chain.epoch;
      d_ = chain.ids;
      fx.deliverSequence(d_);
    }
    return;
  }
}

void EtobAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  const bool isLeader = ctx.fd.leader == ctx.self;
  if (!isLeader) {
    wasLeader_ = false;
    return;
  }
  const std::vector<MsgId>& promote = cg_.promoteSequence();
  ++lambdasSincePromote_;
  if (config_.promoteRefreshEvery > 1) {
    const bool changed = promote.size() != lastPromotedLen_;
    const bool justElected = !wasLeader_;
    const bool refreshDue = lambdasSincePromote_ >= config_.promoteRefreshEvery;
    wasLeader_ = true;
    if (!changed && !justElected && !refreshDue) return;
  }
  wasLeader_ = true;
  lambdasSincePromote_ = 0;
  lastPromotedLen_ = promote.size();
  // Delta-encode against the previous sent promote: plain eTOB only ever
  // appends to promote_i, so the suffix past lastSentLen_ plus the base
  // length reconstructs the full sequence at every receiver. The first
  // promote has lastSentLen_ == 0 and is naturally a full snapshot.
  const std::size_t base = config_.deltaPromotes ? lastSentLen_ : 0;
  WFD_DCHECK(base <= promote.size());
  std::vector<AppMsg> seq;
  seq.reserve(promote.size() - base);
  std::size_t weight = config_.deltaPromotes ? 3 : 2;  // +1 word for baseLen
  for (std::size_t k = base; k < promote.size(); ++k) {
    seq.push_back(cg_.message(promote[k]));
    weight += 2 + seq.back().body.size();
  }
  ++promoteEpoch_;
  lastSentLen_ = promote.size();
  fx.broadcast(Payload::of(EtobPromoteMsg{std::move(seq), promoteEpoch_, base}),
               weight);
}

const AppMsg* EtobAutomaton::findMessage(MsgId id) const {
  if (cg_.contains(id)) return &cg_.message(id);
  auto it = adoptedBodies_.find(id);
  return it == adoptedBodies_.end() ? nullptr : &it->second;
}

void EtobAutomaton::updatePromote() {
  cg_.extendPromote();
}

void EtobAutomaton::pruneAdopted(const CausalityGraph& learned) {
  // Every promote-learned body whose update has now reached cg_ is backed
  // there; dropping it keeps adoptedBodies_ from growing for the whole
  // run (it previously retained every foreign body ever adopted).
  if (adoptedBodies_.empty()) return;
  for (MsgId id : learned.ids()) {
    if (cg_.contains(id)) adoptedBodies_.erase(id);
  }
}

}  // namespace wfd
