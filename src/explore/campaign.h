// Parallel fuzz campaigns: a work-stealing thread-pool runner executing
// thousands of independent FuzzPlans concurrently, with coverage-guided
// seed scheduling on top.
//
// The explorer (explorer.h) runs one plan at a time on one core.
// FuzzPlans are pure data and every Cluster is self-contained (no module
// above src/common/ holds shared mutable state — see the thread-affinity
// contract in api/cluster.h), so a campaign is embarrassingly parallel:
// each worker thread owns the Cluster of the plan it is running, and
// results merge by (generation, index) so the merged report — and
// therefore wfd_explore's stdout — is byte-identical regardless of the
// thread count. `--jobs 8` may only ever be FASTER than `--jobs 1`,
// never different.
//
// Coverage-guided scheduling (the greybox-fuzzer loop, transplanted to
// schedule exploration): every run is folded into a CoverageMap of
// feature strings — fault-environment shape (crash/partition/chaos
// layers), detector mode, checker near-misses (the observed tau-hat
// disagreement window), delivered-sequence digest classes. Between
// generations the scheduler ranks prior runs by the RARITY of their
// features and re-queues deterministic mutations of the rarest ones, so
// later generations spend their budget where the campaign has seen the
// least behaviour. Mutation draws are seeded from
// (master seed, generation, slot, parent fingerprint) — no wall clock,
// no thread ids — so the whole campaign is a pure function of its
// options, and generation g+1 depends only on the MERGED results of
// generations <= g, never on completion order.
//
// Determinism is load-bearing enough to be adversarially tested: the
// per-generation shard merge (mergeCampaignShards) refuses — loudly —
// any worker result set that drops or double-counts a plan, and the
// campaign-level mutation tests in tests/test_campaign.cpp prove it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "explore/explorer.h"
#include "explore/fuzz_plan.h"

namespace wfd {

/// Order-independent accumulator of feature-string hit counts. Summing
/// counts commutes, so merging per-run (or per-shard) maps in ANY order
/// yields the same map — the property the campaign's byte-identity
/// across thread counts rests on (pinned in tests/test_campaign.cpp).
class CoverageMap {
 public:
  void add(const std::string& feature, std::uint64_t hits = 1);
  void addSignature(const std::vector<std::string>& features);
  void merge(const CoverageMap& other);

  /// Hit count of one feature (0 when never seen).
  std::uint64_t count(const std::string& feature) const;
  /// Rarity of a signature: the minimum hit count over its features
  /// (UINT64_MAX for an empty signature — nothing to learn from it).
  std::uint64_t rarity(const std::vector<std::string>& features) const;

  std::size_t distinctFeatures() const { return counts_.size(); }
  std::uint64_t totalHits() const;
  const std::map<std::string, std::uint64_t>& features() const {
    return counts_;
  }

  /// {"<feature>": count, ...} — sorted keys, so the dump is canonical.
  Json toJson() const;

 private:
  std::map<std::string, std::uint64_t> counts_;
};

/// The per-run feature signature the coverage map accumulates: stack,
/// fault-environment shape (crash count bucket / crash-at-0, partition
/// recurrence + isolation shape, chaos / skew / slow-link layers),
/// detector mode, process count, outcome (pass or per-clause failure
/// keys), the tau-hat near-miss bucket (log2 of the observed
/// disagreement window — a strong-total-order near-miss under the spec
/// oracle), and a 6-bit delivered-sequence digest class. Deterministic
/// in (plan, result); sorted and de-duplicated.
std::vector<std::string> coverageSignature(const FuzzPlan& plan,
                                           const ScenarioRunResult& result);

/// One deterministic mutation of `base` drawn from `mutationSeed`:
/// re-seed the schedule, add/drop a crash, add/resize a partition
/// window, toggle the chaos/skew/slow-link layers, scale the workload,
/// halve tau_Omega, or grow the system by one process. The result is
/// re-validated (and its horizon re-derived), so a returned plan is
/// always admissible AND fairness-preserving — tau_Omega never grows,
/// keeping the sampler's liveness-fairness caps intact. nullopt when
/// every candidate mutation of this seed lands inadmissible.
std::optional<FuzzPlan> mutateFuzzPlan(const FuzzPlan& base,
                                       std::uint64_t mutationSeed);

struct CampaignOptions {
  AlgoStack stack = AlgoStack::kEtob;
  /// Generation-0 budget: plans sampled exactly like explore() does
  /// (same seed derivation, same plan stream).
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  FuzzOracle oracle = FuzzOracle::kSpec;
  bool shrink = true;
  std::uint64_t maxShrinkAttempts = 400;
  /// Worker threads. 1 (the default) executes inline on the calling
  /// thread — no pool, no threads, bit-for-bit the sequential path.
  unsigned jobs = 1;
  /// Total generations including generation 0. Generations > 0 run
  /// coverage-guided mutations of the rarest prior runs.
  std::uint64_t generations = 2;
  /// Mutation budget per generation > 0; 0 derives runs / 4.
  std::uint64_t mutationsPerGeneration = 0;
  /// Opt-in big-cluster genome for generation 0 and refill sampling
  /// (sampleFuzzPlan's bigClusterMaxN). 0 = legacy plan stream,
  /// byte-identical to prior builds.
  std::size_t bigClusterMaxN = 0;
  /// Opt-in fair-lossy genome for generation 0 and refill sampling
  /// (sampleFuzzPlan's lossGenome). false = legacy plan stream,
  /// byte-identical to prior builds.
  bool lossGenome = false;
};

/// One executed campaign run, addressed by (generation, index) — the
/// merge key that makes reports thread-count-independent.
struct CampaignRunRecord {
  std::uint64_t generation = 0;
  std::uint64_t index = 0;
  FuzzPlan plan;
  ScenarioRunResult result;
  std::vector<std::string> signature;
};

struct CampaignViolation {
  std::uint64_t generation = 0;
  std::uint64_t index = 0;
  FuzzPlan plan;
  ScenarioRunResult result;
  ShrinkResult shrunken;
};

struct CampaignReport {
  std::uint64_t runsExecuted = 0;
  /// Every run, sorted by (generation, index).
  std::vector<CampaignRunRecord> runs;
  /// Every violation, sorted by (generation, index), each shrunken
  /// (shrinking itself executes on the pool).
  std::vector<CampaignViolation> violations;
  /// Accumulated over all runs in (generation, index) order.
  CoverageMap coverage;
  /// True when keepGoing() stopped the campaign at a generation
  /// boundary before all generations ran.
  bool truncated = false;
};

/// Validates and merges per-worker result shards for one generation:
/// the union of the shards must cover indices [0, expectedCount) of
/// `generation` EXACTLY once. A dropped worker shard, a double-counted
/// plan, or a record from the wrong generation returns nullopt with a
/// diagnosis in *error — the campaign treats that as a fatal internal
/// defect (WFD_ENSURE), never as data. Exposed (rather than buried in
/// the runner) so the campaign-level mutation tests can prove the merge
/// fails loudly.
std::optional<std::vector<CampaignRunRecord>> mergeCampaignShards(
    std::uint64_t generation, std::uint64_t expectedCount,
    std::vector<std::vector<CampaignRunRecord>> shards, std::string* error);

/// Runs the campaign: generation 0 is the sampled plan stream,
/// subsequent generations are coverage-guided mutations; every plan of a
/// generation executes on the work-stealing pool, shards merge by index,
/// and violations shrink on the pool afterwards. The report is a pure
/// function of `options` (for any jobs value); `keepGoing` (nullable) is
/// polled at generation boundaries and between shrink attempts, so a
/// wall-clock budget truncates whole generations — the runs that DID
/// execute are still the deterministic ones.
CampaignReport runCampaign(const CampaignOptions& options,
                           const std::function<bool()>& keepGoing = nullptr);

/// Canonical per-run JSON line for campaign mode: fuzzRunJsonLine's
/// fields plus the generation (sorted keys, no timing, no thread info —
/// stdout stays byte-identical across --jobs values).
std::string campaignRunJsonLine(const CampaignRunRecord& rec);

/// Canonical per-stack coverage summary line.
std::string campaignCoverageJsonLine(AlgoStack stack,
                                     const CampaignReport& report);

}  // namespace wfd
