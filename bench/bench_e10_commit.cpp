// E10 — committed-prefix indications (paper §7, Concluding Remarks).
//
// Claim: "indications when a prefix of operations is committed ... could
// easily be implemented, during the stable periods, on top of ETOB", and
// Ω remains necessary. The §7 proviso ties commits to majority
// acknowledgement of a stable leader.
//
// Measured here:
//   * safety — a committed prefix is never revoked at any correct
//     process, across stabilization times, crashes and seeds;
//   * the proviso — with the majority gone, deliveries continue
//     (eventual consistency needs only Ω) but commits stop advancing;
//   * commit latency — how far the commit watermark trails delivery.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "checkers/commit_checker.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/commit_etob.h"

namespace wfd::bench {
namespace {

struct Result {
  std::uint64_t indications = 0;
  std::uint64_t committedLen = 0;
  std::uint64_t revoked = 0;
  std::size_t deliveredLen = 0;
  Time lastCommitAt = 0;
};

Result run(std::size_t n, Time tauOmega, std::size_t crashes, Time crashAt,
           std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = crashes == 0 ? FailurePattern::noFailures(n)
                         : Environments::staggeredCrashes(n, crashes, crashAt, 50);
  auto cluster = makeScenarioCluster("commit-stable-majority", cfg, fp,
                                     tauOmega, OmegaPreStabilization::kRotating);
  Simulator& sim = cluster.sim();
  BroadcastWorkload w;
  w.start = crashes > 0 && crashAt < 2000 ? crashAt + 800 : 150;
  w.perProcess = 6;
  cluster.scheduleWorkload(w);
  cluster.runToHorizon();
  const auto commit = checkCommitSafety(sim.trace(), fp);
  Result r;
  r.indications = commit.indications;
  r.committedLen = commit.committedLenAllCorrect;
  r.revoked = commit.revokedCommits;
  const ProcessId witness = fp.correctSet().front();
  r.deliveredLen = sim.trace().currentDelivered(witness).size();
  for (const auto& ev : sim.trace().outputs(witness)) {
    if (ev.value.holds<CommittedPrefix>()) r.lastCommitAt = ev.time;
  }
  return r;
}

void printTable() {
  std::printf("E10: committed-prefix indications on top of ETOB (paper §7)\n"
              "(safety: revoked must be 0 everywhere; no-majority: commits\n"
              " stop while deliveries continue)\n\n");
  Table t({"scenario", "indications", "committed", "delivered", "revoked"}, 15);

  auto row = [&](const char* name, Result r) {
    t.row({name, std::to_string(r.indications), std::to_string(r.committedLen),
           std::to_string(r.deliveredLen), std::to_string(r.revoked)});
  };
  row("stable-leader", run(3, 0, 0, 0, 1));
  row("late-stabilize", run(3, 2000, 0, 0, 1));
  row("minority-crash", run(5, 1500, 2, 1200, 1));
  row("majority-crash", run(5, 1500, 3, 1200, 1));
  std::printf("\n");
}

void BM_CommitEtob(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(3, 0, 0, 0, seed++);
    benchmark::DoNotOptimize(r);
    state.counters["committed"] = static_cast<double>(r.committedLen);
  }
}
BENCHMARK(BM_CommitEtob)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
