#include "consensus/multi_paxos.h"

#include "common/ensure.h"
#include "sim/message.h"

namespace wfd {

MultiPaxosEngine::MultiPaxosEngine(ProcessId self, std::size_t processCount)
    : self_(self), processCount_(processCount) {
  WFD_ENSURE(processCount >= 2);
  WFD_ENSURE(self < processCount);
}

void MultiPaxosEngine::abandonReign() {
  prepared_ = false;
  myBallot_ = 0;
  promisers_.clear();
  constrained_.clear();
  proposedByMe_.clear();
}

void MultiPaxosEngine::tick(bool isLeader, Outbox& out) {
  if (!isLeader) {
    // Losing leadership abandons the prepared state: a later reign starts
    // a fresh, higher ballot.
    if (prepared_ || myBallot_ != 0) abandonReign();
    return;
  }
  if (prepared_) return;
  if (myBallot_ == 0) {
    ++round_;
    myBallot_ = ownBallot(round_);
    promisers_.clear();
    constrained_.clear();
  }
  // (Re-)issue the prepare each λ-step until a majority promises. Links
  // are reliable, so this retransmission only matters when a previous
  // reign's state was torn down mid-flight.
  out.sends.emplace_back(kBroadcast, Payload::of(PaxosPrepareMsg{myBallot_}));
}

void MultiPaxosEngine::propose(Instance instance, Value value, Outbox& out) {
  WFD_ENSURE_MSG(prepared_, "propose() requires a majority-promised ballot");
  if (decided(instance) || proposedByMe_.contains(instance)) return;
  auto it = constrained_.find(instance);
  const Value& v = it != constrained_.end() ? it->second.second : value;
  proposedByMe_.insert(instance);
  out.sends.emplace_back(kBroadcast, Payload::of(PaxosAcceptMsg{myBallot_, instance, v}));
}

bool MultiPaxosEngine::onMessage(ProcessId from, const Payload& msg, Outbox& out) {
  if (const auto* prepare = msg.as<PaxosPrepareMsg>()) {
    if (prepare->ballot > promisedBallot_) {
      promisedBallot_ = prepare->ballot;
      out.sends.emplace_back(from,
                             Payload::of(PaxosPromiseMsg{prepare->ballot, accepted_}));
    } else if (prepare->ballot < promisedBallot_) {
      // A stale prepare can never gather this acceptor's promise again;
      // tell the proposer which ballot it must climb over. (An equal
      // ballot is a retransmission — the original promise is already on
      // its reliable way, so stay silent.)
      out.sends.emplace_back(from, Payload::of(PaxosNackMsg{promisedBallot_}));
    }
    return true;
  }
  if (const auto* nack = msg.as<PaxosNackMsg>()) {
    if (myBallot_ != 0 && nack->promised > myBallot_) {
      // This ballot is dead at a (potential) quorum member: abandon the
      // whole reign and re-prepare on the next tick with a ballot above
      // everything the nack proved promised. Clearing proposedByMe_
      // re-proposes undecided instances under the new ballot (their
      // values re-constrained by the fresh promises — Paxos safety).
      round_ = std::max(round_, nack->promised / processCount_ + 1);
      abandonReign();
    }
    return true;
  }
  if (const auto* promise = msg.as<PaxosPromiseMsg>()) {
    if (promise->ballot != myBallot_ || prepared_) return true;
    promisers_.insert(from);
    for (const auto& [inst, bv] : promise->accepted) {
      auto [it, inserted] = constrained_.try_emplace(inst, bv);
      if (!inserted && bv.first > it->second.first) it->second = bv;
    }
    if (promisers_.size() >= majority()) prepared_ = true;
    return true;
  }
  if (const auto* accept = msg.as<PaxosAcceptMsg>()) {
    if (accept->ballot >= promisedBallot_) {
      promisedBallot_ = accept->ballot;
      accepted_[accept->instance] = {accept->ballot, accept->value};
      out.sends.emplace_back(
          kBroadcast,
          Payload::of(PaxosAcceptedMsg{accept->ballot, accept->instance, accept->value}));
    } else {
      out.sends.emplace_back(from, Payload::of(PaxosNackMsg{promisedBallot_}));
    }
    return true;
  }
  if (const auto* accepted = msg.as<PaxosAcceptedMsg>()) {
    if (decided(accepted->instance)) return true;
    auto& voters = votes_[accepted->instance][accepted->ballot];
    voters.insert(from);
    if (voters.size() >= majority()) {
      decisions_.emplace(accepted->instance, accepted->value);
      votes_.erase(accepted->instance);
      out.decisions.emplace_back(accepted->instance, accepted->value);
    }
    return true;
  }
  return false;
}

const Value* MultiPaxosEngine::decision(Instance instance) const {
  auto it = decisions_.find(instance);
  return it == decisions_.end() ? nullptr : &it->second;
}

Instance MultiPaxosEngine::contiguousDecided() const {
  Instance l = 0;
  while (decisions_.contains(l + 1)) ++l;
  return l;
}

}  // namespace wfd
