// Minimal JSON value, parser and writer — just enough for the portable
// FuzzPlan/corpus codec (src/explore/plan_codec.h) and the wfd_explore
// CLI output.
//
// Deliberately tiny rather than general:
//  * numbers are unsigned 64-bit integers only (every quantity in a plan
//    is a count, a time or a seed) — signs, fractions and exponents are
//    parse errors, which doubles as input validation for corpus files;
//  * object keys are kept in a std::map, so dump() emits keys in sorted
//    order — one canonical byte string per value, which is what makes
//    `wfd_explore` output byte-identical across invocations and lets a
//    plan be fingerprinted by hashing its dump;
//  * strings support the escapes the writer can produce (\" \\ \n \t and
//    \u00XX for other control bytes); anything else is a parse error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace wfd {

class Json {
 public:
  enum class Kind { kNull, kBool, kUInt, kString, kArray, kObject };

  /// Constructs null. Use the named factories for the other kinds.
  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(std::uint64_t u);
  static Json str(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each WFD_ENSUREs the kind matches.
  bool asBool() const;
  std::uint64_t asUInt() const;
  const std::string& asString() const;
  const std::vector<Json>& items() const;             // kArray
  const std::map<std::string, Json>& fields() const;  // kObject

  /// Appends to an array (the value must be kArray).
  void push(Json v);
  /// Sets a key of an object (the value must be kObject).
  void set(const std::string& key, Json v);

  /// Object field lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Canonical serialization: sorted object keys, no whitespace.
  std::string dump() const;

  /// Parses `text` (must contain exactly one value plus whitespace).
  /// Returns nullopt and fills *error (if given) on malformed input.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

/// Serializes `s` as one quoted JSON string token, using exactly the
/// writer's escaping rules (Json::str(s).dump() without building a
/// value). For emitters that assemble a line with a fixed key ORDER —
/// dump() sorts keys — but must still escape string contents correctly
/// (scenario/scenario.cpp's toJsonLine).
std::string jsonQuoted(const std::string& s);

}  // namespace wfd
