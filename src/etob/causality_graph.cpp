#include "etob/causality_graph.h"

#include <algorithm>

#include "common/ensure.h"

namespace wfd {

void CausalityGraph::addMessage(const AppMsg& m, const std::vector<MsgId>& deps) {
  if (bodies_.contains(m.id)) return;
  graph_.addNode(m.id);
  bodies_.emplace(m.id, m);

  std::vector<MsgId> sources;
  if (mode_ == CgEdgeMode::kFullPaper) {
    sources = deps;
  } else {
    // Frontier mode: keep only causally-maximal dependencies. A dep that
    // reaches another dep is implied transitively.
    for (MsgId d : deps) {
      bool dominated = false;
      for (MsgId other : deps) {
        if (other != d && graph_.reaches(d, other)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) sources.push_back(d);
    }
  }
  for (MsgId d : sources) {
    if (d == m.id) continue;
    // Unknown dependencies become placeholder nodes: the edge constrains
    // ordering; the content arrives later via update/union.
    graph_.addEdge(d, m.id);
  }
}

void CausalityGraph::unionWith(const CausalityGraph& other) {
  graph_.unionWith(other.graph_);
  for (const auto& [id, body] : other.bodies_) bodies_.emplace(id, body);
}

std::size_t CausalityGraph::approxWeight() const {
  std::size_t w = 1 + graph_.nodeCount() + graph_.edgeCount();
  for (const auto& [id, body] : bodies_) {
    w += 2 + body.body.size() + body.causalDeps.size();
  }
  return w;
}

const AppMsg& CausalityGraph::message(MsgId id) const {
  auto it = bodies_.find(id);
  WFD_ENSURE_MSG(it != bodies_.end(), "unknown message in causality graph");
  return it->second;
}

std::vector<MsgId> CausalityGraph::topologicalOrder() const {
  auto order = graph_.topoSort([](MsgId a, MsgId b) { return a < b; });
  WFD_ENSURE_MSG(order.has_value(), "causality graph must be acyclic");
  return *order;
}

std::vector<MsgId> CausalityGraph::extendPromote(
    const std::vector<MsgId>& promote) const {
  // Runs once per received update on the eTOB hot path, so it works in
  // the graph's index space: emitted-ness is a flat flag array indexed by
  // insertion index, and predecessor checks read the graph's flat
  // adjacency directly instead of materializing value vectors.
  std::vector<char> emitted(graph_.nodeCount(), 0);
  bool anyForeign = false;
  for (MsgId id : promote) {
    if (const auto idx = graph_.indexOf(id)) {
      WFD_ENSURE_MSG(!emitted[*idx], "promote sequence contains duplicates");
      emitted[*idx] = 1;
    } else {
      anyForeign = true;
    }
  }
  if (anyForeign) {
    // Ids this graph has never seen can't collide with the flag array;
    // validate uniqueness of the whole sequence the general way.
    std::vector<MsgId> sorted = promote;
    std::sort(sorted.begin(), sorted.end());
    WFD_ENSURE_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "promote sequence contains duplicates");
  }
  std::vector<MsgId> out = promote;
  // Walk the full topological order; a message is appended only when its
  // content is known AND all its predecessors were emitted. A blocked
  // message blocks its causal descendants (their predecessor flags stay
  // unset) but nothing else.
  const auto order =
      graph_.topoSortIndices([](MsgId a, MsgId b) { return a < b; });
  WFD_ENSURE_MSG(order.has_value(), "causality graph must be acyclic");
  for (std::uint32_t idx : *order) {
    if (emitted[idx]) continue;
    const MsgId id = graph_.nodeAt(idx);
    bool ready = bodies_.contains(id);
    if (ready) {
      for (std::uint32_t pred : graph_.predIndices(idx)) {
        if (!emitted[pred]) {
          ready = false;
          break;
        }
      }
    }
    if (ready) {
      out.push_back(id);
      emitted[idx] = 1;
    }
  }
  // Post-condition: out respects every edge of the graph. The prefix does
  // by the algorithm's invariant; appended messages were emitted only
  // after all their predecessors, and no edge can point from an appended
  // message to a prefix message (all in-edges of a message exist from
  // its creation).
  return out;
}

}  // namespace wfd
