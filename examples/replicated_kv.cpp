// Replicated key-value store under a majority crash — the paper's
// motivating scenario (Dynamo-style availability, §1/§6).
//
// Two clusters replicate the same KvStore:
//   * eventually consistent — ReplicaAutomaton over ET OB (Algorithm 5),
//   * strongly consistent   — ReplicaAutomaton over TOB-via-Paxos.
// At t=2000 three of five processes crash (no correct majority). Writes
// issued after the crash commit on the eventual cluster and stall forever
// on the strong one: the quorum detector Sigma is exactly what separates
// them (Theorem 2 + [8]).
#include <cstdio>
#include <memory>

#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "rsm/replica.h"
#include "rsm/state_machines.h"
#include "sim/simulator.h"
#include "tob/tob_via_consensus.h"

using namespace wfd;

namespace {

using EtobReplica = ReplicaAutomaton<EtobAutomaton, KvStore>;
using TobReplica = ReplicaAutomaton<TobViaConsensusAutomaton, KvStore>;

SimConfig clusterConfig() {
  SimConfig cfg;
  cfg.processCount = 5;
  cfg.seed = 7;
  cfg.maxTime = 15000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

void scheduleWrites(Simulator& sim) {
  // Writes from the two survivors, all AFTER the majority crash.
  for (std::uint64_t i = 0; i < 6; ++i) {
    sim.scheduleInput(0, 3000 + 100 * i,
                      Payload::of(ClientCommand{makePut(i, 100 + i)}));
    sim.scheduleInput(1, 3050 + 100 * i,
                      Payload::of(ClientCommand{makePut(10 + i, 200 + i)}));
  }
}

template <typename Replica>
void report(const Simulator& sim, const char* name) {
  std::printf("%s cluster after the run:\n", name);
  for (ProcessId p : sim.failurePattern().correctSet()) {
    const auto& kv = static_cast<const Replica&>(sim.automaton(p)).machine();
    std::printf("  p%zu: %zu keys, %llu commands applied, get(3)=%s\n", p,
                kv.size(), static_cast<unsigned long long>(kv.appliedCount()),
                kv.get(3).has_value() ? std::to_string(*kv.get(3)).c_str() : "-");
  }
}

}  // namespace

int main() {
  std::printf("== Replicated KV store, n=5, 3 crash at t=2000, writes at "
              "t>=3000 ==\n\n");
  const FailurePattern fp = Environments::majorityCrash(5, 2000);

  // Eventually consistent cluster: Omega is all it needs.
  {
    auto cfg = clusterConfig();
    auto omega =
        std::make_shared<OmegaFd>(fp, 2500, OmegaPreStabilization::kSplitBrain);
    Simulator sim(cfg, fp, omega);
    for (ProcessId p = 0; p < 5; ++p) {
      sim.addProcess(p, std::make_unique<EtobReplica>(EtobAutomaton{}));
    }
    scheduleWrites(sim);
    sim.run();
    report<EtobReplica>(sim, "ETOB (eventually consistent)");
  }

  std::printf("\n");

  // Strongly consistent cluster: needs majority quorums (Sigma) — gone.
  {
    auto cfg = clusterConfig();
    auto omega =
        std::make_shared<OmegaFd>(fp, 2500, OmegaPreStabilization::kSplitBrain);
    Simulator sim(cfg, fp, omega);
    for (ProcessId p = 0; p < 5; ++p) {
      sim.addProcess(p, std::make_unique<TobReplica>(TobViaConsensusAutomaton(p, 5)));
    }
    scheduleWrites(sim);
    sim.run();
    report<TobReplica>(sim, "TOB/Paxos (strongly consistent)");
  }

  std::printf("\nThe strong cluster cannot commit a single post-crash write —\n"
              "the exact availability price of Sigma the paper quantifies.\n");
  return 0;
}
