// wfd_scenarios — run the scenario catalog from the command line.
//
//   wfd_scenarios --list                       # one scenario name per line
//   wfd_scenarios --describe                   # names + descriptions
//   wfd_scenarios --scenario NAME              # one run, seed 1
//   wfd_scenarios --scenario all --seed-count 3
//   wfd_scenarios --scenario NAME --seed 7     # one specific seed
//   wfd_scenarios --scenario all --stack etob  # only one stack's entries
//
// --stack <name> (mirroring wfd_explore --stack) filters whatever
// selection the other flags made — including --list/--describe — to the
// catalog entries of one protocol stack.
//
// The CLI serves the UNION of two catalogs under one namespace: the flat
// entries (scenario/catalog.cpp, one cluster each) and the sharded
// entries (shard/shard_scenarios.cpp, a ring of clusters behind a
// router). Flat entries list first, sharded after, and a name resolves
// in the same order; names are unique across the union (pinned by
// tests/test_sharded_kv.cpp).
//
// Every run prints exactly one JSON line on stdout (schema: the fields of
// ScenarioRunResult / ShardScenarioRunResult; see docs/SCENARIOS.md).
// Exit status is 0 iff every executed run passed its scenario's checker
// set — which is what makes each catalog entry a regression test the CI
// smoke jobs can sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "shard/shard_scenarios.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list | --describe |\n"
               "       %s --scenario <name|all> [--stack <name>]\n"
               "       [--seed-count N] [--seed S]\n",
               argv0, argv0);
}

std::uint64_t parseU64(const char* flag, const char* text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: '%s'\n", flag, text);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool describe = false;
  std::string scenarioArg;
  std::string stackArg;
  std::uint64_t seedCount = 1;
  std::uint64_t firstSeed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--describe") {
      describe = true;
    } else if (arg == "--scenario") {
      scenarioArg = next();
    } else if (arg == "--stack") {
      stackArg = next();
    } else if (arg == "--seed-count") {
      seedCount = parseU64("--seed-count", next());
    } else if (arg == "--seed") {
      firstSeed = parseU64("--seed", next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  bool filterByStack = false;
  wfd::AlgoStack stackFilter = wfd::AlgoStack::kEtob;
  if (!stackArg.empty() && stackArg != "all") {
    if (!wfd::parseAlgoStack(stackArg, &stackFilter)) {
      std::fprintf(stderr, "--stack: unknown stack '%s' (one of:", stackArg.c_str());
      for (wfd::AlgoStack s : wfd::kAllAlgoStacks) {
        std::fprintf(stderr, " %s", wfd::algoStackName(s));
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    filterByStack = true;
  }
  const auto flatSelected = [&](const wfd::Scenario& s) {
    return !filterByStack || s.stack == stackFilter;
  };
  const auto shardSelected = [&](const wfd::ShardScenario& s) {
    return !filterByStack || s.spec.stack == stackFilter;
  };

  const auto& catalog = wfd::scenarioCatalog();
  const auto& shardCatalog = wfd::shardScenarioCatalog();

  if (list) {
    for (const wfd::Scenario& s : catalog) {
      if (flatSelected(s)) std::printf("%s\n", s.name.c_str());
    }
    for (const wfd::ShardScenario& s : shardCatalog) {
      if (shardSelected(s)) std::printf("%s\n", s.name.c_str());
    }
    return 0;
  }
  if (describe) {
    for (const wfd::Scenario& s : catalog) {
      if (!flatSelected(s)) continue;
      std::printf("%-24s [%s, n=%zu] %s\n", s.name.c_str(),
                  wfd::algoStackName(s.stack), s.config.processCount,
                  s.description.c_str());
    }
    for (const wfd::ShardScenario& s : shardCatalog) {
      if (!shardSelected(s)) continue;
      std::printf("%-24s [%s, S=%zu x n=%zu] %s\n", s.name.c_str(),
                  wfd::algoStackName(s.spec.stack), s.spec.shards,
                  s.spec.replicasPerShard, s.description.c_str());
    }
    return 0;
  }
  if (scenarioArg.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (seedCount == 0) {
    std::fprintf(stderr, "--seed-count must be >= 1\n");
    return 2;
  }

  std::vector<const wfd::Scenario*> selected;
  std::vector<const wfd::ShardScenario*> selectedShard;
  if (scenarioArg == "all") {
    for (const wfd::Scenario& s : catalog) {
      if (flatSelected(s)) selected.push_back(&s);
    }
    for (const wfd::ShardScenario& s : shardCatalog) {
      if (shardSelected(s)) selectedShard.push_back(&s);
    }
  } else if (const wfd::Scenario* s = wfd::findScenario(scenarioArg)) {
    if (!flatSelected(*s)) {
      std::fprintf(stderr, "scenario '%s' is not a %s scenario\n",
                   scenarioArg.c_str(), wfd::algoStackName(stackFilter));
      return 2;
    }
    selected.push_back(s);
  } else if (const wfd::ShardScenario* sh = wfd::findShardScenario(scenarioArg)) {
    if (!shardSelected(*sh)) {
      std::fprintf(stderr, "scenario '%s' is not a %s scenario\n",
                   scenarioArg.c_str(), wfd::algoStackName(stackFilter));
      return 2;
    }
    selectedShard.push_back(sh);
  } else {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenarioArg.c_str());
    return 2;
  }

  bool allPassed = true;
  for (const wfd::Scenario* s : selected) {
    for (std::uint64_t k = 0; k < seedCount; ++k) {
      const wfd::ScenarioRunResult r = wfd::runScenario(*s, firstSeed + k);
      std::printf("%s\n", wfd::toJsonLine(r).c_str());
      std::fflush(stdout);
      allPassed = allPassed && r.pass;
    }
  }
  for (const wfd::ShardScenario* s : selectedShard) {
    for (std::uint64_t k = 0; k < seedCount; ++k) {
      const wfd::ShardScenarioRunResult r =
          wfd::runShardScenario(*s, firstSeed + k);
      std::printf("%s\n", wfd::toJsonLine(r).c_str());
      std::fflush(stdout);
      allPassed = allPassed && r.pass;
    }
  }
  return allPassed ? 0 : 1;
}
