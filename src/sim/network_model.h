// Pluggable network models: the policy half of the simulator's message
// scheduling, factored out of Simulator so scenarios can exercise the
// paper's full space of admissible runs (the results quantify over EVERY
// message-delay schedule, not just uniform delays).
//
// Admissibility contract — what a model may and may not do so that every
// run it produces stays a run of the paper's model (docs/SCENARIOS.md
// spells this out in prose):
//  * every scheduled copy arrives at a finite time >= sentAt + 1
//    (messages never travel backwards or instantaneously);
//  * a model with mayDrop() == false must schedule at least one copy of
//    every message — such links are reliable: delivery to a live process
//    may be delayed, duplicated at the network layer or reordered, but
//    never dropped;
//  * a model with mayDrop() == true may schedule ZERO copies (fair-lossy
//    links, sim/lossy_model.h), but only under the fairness obligation
//    that a retransmitted send eventually gets a copy through — the
//    simulator pairs every mayDrop() model with its stubborn
//    retransmission layer (link/reliable_link.h), which restores
//    eventual exactly-once delivery to correct processes, so the run as
//    a whole stays admissible;
//  * duplicates are allowed HERE because the simulator suppresses them
//    at the automaton boundary (each message uid is handed to the target
//    automaton at most once), preserving the paper's exactly-once step
//    semantics while still exercising duplicate traffic in the queues;
//  * lambdaPeriod must return a finite period >= 1 for every process —
//    correct processes must keep taking infinitely many λ-steps;
//  * all nondeterminism must come from the Rng argument, making a
//    (config, pattern, model, seed) tuple fully determine the run.
//
// Models compose by decoration: PartitionModel, the lossy decorators,
// ChaosLinkModel and ClockSkewModel wrap an inner model and transform
// its schedule. Composition order matters: a decorator only sees its
// inner model's output, so when combining partitions with loss or
// jitter/duplication, put PartitionModel OUTERMOST — a ChaosLinkModel
// wrapped AROUND a PartitionModel could jitter a deferred arrival back
// inside a later partition window, silently defeating the partition,
// and a lossy layer wrapped AROUND a PartitionModel would sample link
// loss at post-heal times instead of the schedule the partition
// actually produced. This is no longer prose-only: every decorator
// reports a compositionRank() and ensureCanonicalComposition() rejects
// stacks whose ranks are not non-increasing from the outside in
// (partitions > lossy layers > clock skew > chaos > base). The builders
// (RandomScheduleModel, the catalog helpers) call the guard; hand-rolled
// stacks should too.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "common/types.h"

namespace wfd {

/// Everything a model may inspect when scheduling one message copy.
struct LinkSend {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Time sentAt = 0;
  /// Unique per-run network identifier (assigned by the simulator).
  std::uint64_t uid = 0;
};

/// Scheduling policy for one simulated network. Stateless with respect to
/// individual runs: all per-run randomness flows through the Rng argument.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// Appends the arrival time(s) of this send to `arrivals` (>= 1 entry,
  /// each >= sentAt + 1). Emitting several entries models duplication;
  /// the simulator delivers the earliest and suppresses the rest at the
  /// automaton boundary. The number and order of rng draws is part of
  /// the model's deterministic identity — two runs with equal seeds and
  /// equal models make identical draws.
  virtual void schedule(const LinkSend& send, Rng& rng,
                        std::vector<Time>& arrivals) const = 0;

  /// Effective λ-step period of process p given the configured base
  /// period. Default: unchanged. Clock-skew models scale it per process;
  /// the result must be >= 1 and finite (admissibility).
  virtual Time lambdaPeriod(ProcessId p, Time basePeriod) const {
    (void)p;
    return basePeriod;
  }

  /// True when schedule() may emit more than one arrival for some send.
  /// Lets the simulator skip duplicate-suppression bookkeeping entirely
  /// for duplicate-free models.
  virtual bool mayDuplicate() const { return false; }

  /// True when schedule() may emit ZERO arrivals for some send (fair-lossy
  /// links). The simulator activates its stubborn retransmission layer for
  /// any model reporting true — it is a capability bit, not a rate: a
  /// lossy decorator configured with rate 0 still reports true so the
  /// retransmission path is engaged (and differentially testable) even
  /// when no message is ever actually dropped. Decorators must propagate
  /// the inner model's answer.
  virtual bool mayDrop() const { return false; }

  /// Composition rank for ensureCanonicalComposition(): decorators must
  /// be stacked with ranks non-increasing from the outside in. Base
  /// models rank kRankBase; see the constants below the class.
  virtual int compositionRank() const;

  /// The decorated inner model, or nullptr for base (non-decorator)
  /// models. Lets ensureCanonicalComposition() walk the stack.
  virtual const NetworkModel* innerModel() const { return nullptr; }

  /// Human-readable model name for diagnostics and scenario JSON.
  virtual std::string name() const = 0;
};

/// Composition ranks, outermost-largest. Spaced by 10 so future layers
/// can slot in without renumbering.
inline constexpr int kRankBase = 0;
inline constexpr int kRankChaos = 10;      // duplication / reorder jitter
inline constexpr int kRankClockSkew = 20;  // λ-period scaling
inline constexpr int kRankLossy = 30;      // drop decisions (lossy_model.h)
inline constexpr int kRankPartition = 40;  // deferral past windows

/// Walks the decorator chain of `outermost` via innerModel() and raises
/// an InvariantError unless compositionRank() is non-increasing from the
/// outside in. This turns the "partitions OUTERMOST" prose above into an
/// enforced invariant: loss wrapped around a partition, or chaos wrapped
/// around loss, is rejected at construction time instead of silently
/// producing schedules the inner layers never saw.
void ensureCanonicalComposition(const NetworkModel& outermost);

/// The legacy Simulator policy, bit-for-bit: one copy per send, delayed
/// uniformly in [minDelay, maxDelay] (exactly maxDelay when fixed). A
/// Simulator constructed without an explicit model uses this one built
/// from its SimConfig, so pre-refactor (config, pattern, seed) triples
/// replay unchanged.
class UniformDelayModel final : public NetworkModel {
 public:
  UniformDelayModel(Time minDelay, Time maxDelay, bool fixed = false);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  std::string name() const override;

 private:
  Time minDelay_;
  Time maxDelay_;
  bool fixed_;
};

/// Per-link delay bounds, queried per (from, to) pair — expresses slow or
/// asymmetric links (a->b fast while b->a is slow, a remote process, a
/// congested leader uplink, ...).
class AsymmetricDelayModel final : public NetworkModel {
 public:
  struct LinkDelay {
    Time minDelay = 1;
    Time maxDelay = 1;
  };
  using DelayFn = std::function<LinkDelay(ProcessId from, ProcessId to)>;

  explicit AsymmetricDelayModel(DelayFn delays);

  /// Uniform base bounds, with every link touching `slow` (either
  /// direction) stretched by `factor`.
  static std::shared_ptr<AsymmetricDelayModel> slowProcess(
      Time minDelay, Time maxDelay, ProcessId slow, Time factor);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  std::string name() const override;

 private:
  DelayFn delays_;
};

/// One recurring or one-shot partition specification. Arrivals that land
/// inside an active window on an affected link are deferred to the window
/// end — links heal and deliver, never drop (admissibility).
struct PartitionSpec {
  /// First window start.
  Time start = 0;
  /// Window width. Must be < period for recurring windows.
  Time width = 0;
  /// Recurrence period; 0 = one-shot window [start, start + width).
  Time period = 0;
  /// Which links the partition affects. Ignored when `componentOf` is
  /// set. A null predicate with an empty `componentOf` affects ALL links.
  std::function<bool(ProcessId from, ProcessId to)> affects;
  /// Flat component index: when non-empty (size >= processCount), the
  /// spec cuts exactly the links crossing components —
  /// componentOf[from] != componentOf[to] — and `affects` is ignored.
  /// Two array reads per lookup instead of a std::function call, which
  /// is the difference between O(1) and an indirect call on the deferral
  /// path every arrival takes at n=256. Symmetric cuts only; one-way
  /// cuts still need the predicate form.
  std::vector<std::uint16_t> componentOf;

  /// True iff this spec cuts the (from, to) link.
  bool cuts(ProcessId from, ProcessId to) const {
    if (!componentOf.empty()) {
      WFD_ENSURE_MSG(from < componentOf.size() && to < componentOf.size(),
                     "componentOf smaller than the process id space");
      return componentOf[from] != componentOf[to];
    }
    return !affects || affects(from, to);
  }

  /// Component map splitting [0, n) into [0, boundary) vs [boundary, n)
  /// — the canonical "split the cluster in half" partition at any scale.
  static std::vector<std::uint16_t> splitAt(std::size_t processCount,
                                            std::size_t boundary) {
    std::vector<std::uint16_t> components(processCount, 0);
    for (std::size_t p = boundary; p < processCount; ++p) components[p] = 1;
    return components;
  }
};

/// Defers `at` past every active partition window of `specs` on the
/// (from, to) link, iterating to a fixed point (windows of different
/// specs may chain). An iteration bound rejects — with an InvariantError,
/// not a hang — spec sets that jointly cover all time on a link: those
/// would defer forever, i.e. drop the message, which admissibility
/// forbids. Shared by PartitionModel and the Simulator's legacy
/// LinkDisruption path so the deferral algorithm exists exactly once.
Time deferPastPartitions(const std::vector<PartitionSpec>& specs,
                         ProcessId from, ProcessId to, Time at);

/// Decorator deferring the inner model's arrivals out of partition
/// windows. With period > 0 this is a periodic partition (heal storms);
/// with period == 0 an adversarial one-shot window. Multiple specs
/// compose (deferral iterates to a fixed point).
class PartitionModel final : public NetworkModel {
 public:
  PartitionModel(std::shared_ptr<const NetworkModel> inner,
                 std::vector<PartitionSpec> specs);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  bool mayDrop() const override { return inner_->mayDrop(); }
  int compositionRank() const override { return kRankPartition; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
  std::vector<PartitionSpec> specs_;
};

/// Decorator adding bounded duplication and reordering on top of the
/// inner model: each copy is jittered by up to `reorderJitter` extra
/// ticks (reordering relative to send order), and with probability
/// dupNum/dupDen up to `maxExtraCopies` duplicates are scheduled at
/// independently jittered times. An optional link filter restricts the
/// chaos to a subset of links (e.g. one flaky link to the majority).
class ChaosLinkModel final : public NetworkModel {
 public:
  struct Config {
    std::uint32_t dupNum = 1;
    std::uint32_t dupDen = 4;
    std::uint32_t maxExtraCopies = 2;
    Time reorderJitter = 30;
    /// nullptr = all links affected.
    std::function<bool(ProcessId from, ProcessId to)> affects;
  };

  ChaosLinkModel(std::shared_ptr<const NetworkModel> inner, Config config);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override { return true; }
  bool mayDrop() const override { return inner_->mayDrop(); }
  int compositionRank() const override { return kRankChaos; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
  Config config_;
};

/// Decorator applying per-process clock skew to the λ-step period: the
/// period of p is scaled by num(p)/den(p), clamped to >= 1. Message
/// scheduling is delegated untouched. Skewed clocks stay admissible —
/// every process still takes infinitely many steps, just at a different
/// cadence, which stresses every Δ_t-based convergence argument.
class ClockSkewModel final : public NetworkModel {
 public:
  struct Skew {
    std::uint64_t num = 1;
    std::uint64_t den = 1;
  };

  ClockSkewModel(std::shared_ptr<const NetworkModel> inner,
                 std::vector<Skew> perProcess);

  /// Skews spread linearly from `slowest` (e.g. 3/1) at p=0 down to
  /// `fastest` (e.g. 1/2) at p=n-1.
  static std::shared_ptr<ClockSkewModel> spread(
      std::shared_ptr<const NetworkModel> inner, std::size_t processCount,
      Skew slowest, Skew fastest);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  bool mayDrop() const override { return inner_->mayDrop(); }
  int compositionRank() const override { return kRankClockSkew; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
  std::vector<Skew> skews_;
};

}  // namespace wfd
