// The classical strongly consistent baseline: total order broadcast via a
// sequence of consensus instances [3], each deciding a batch of messages.
//
// This is the protocol the paper's ETOB is compared against: it satisfies
// ALL six TOB properties (stability and total order from time 0), but
// requires majority quorums (it stalls when a majority crashes — benched
// in E2) and three communication steps per delivery (benched in E1).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "consensus/multi_paxos.h"
#include "sim/app_msg.h"
#include "sim/app_msg_codec.h"
#include "sim/automaton.h"

namespace wfd {

/// Client submission, broadcast to everyone so any (future) leader can
/// include the message in a batch.
struct TobSubmitMsg {
  AppMsg msg;
};

class TobViaConsensusAutomaton final
    : public CloneableAutomaton<TobViaConsensusAutomaton> {
 public:
  TobViaConsensusAutomaton(ProcessId self, std::size_t processCount);

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  /// BroadcastAutomatonLike.
  const std::vector<MsgId>& delivered() const { return d_; }
  const AppMsg* findMessage(MsgId id) const;

  const MultiPaxosEngine& engine() const { return engine_; }

 private:
  void flushOutbox(MultiPaxosEngine::Outbox& out, Effects& fx);
  void rebuildDelivered(Effects& fx);

  MultiPaxosEngine engine_;
  std::map<MsgId, AppMsg> pending_;                 // submitted, not yet delivered
  std::map<Instance, std::vector<AppMsg>> batches_; // decided batches
  std::vector<MsgId> d_;                            // contiguous delivery sequence
};

}  // namespace wfd
