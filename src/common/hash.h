// Hash helpers for aggregate keys (failure-detector values, DAG vertices).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace wfd {

/// Combines a hash value into a running seed (boost::hash_combine recipe).
inline void hashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements.
template <typename It>
std::size_t hashRange(It first, It last) {
  std::size_t seed = 0;
  for (; first != last; ++first) {
    hashCombine(seed, std::hash<std::decay_t<decltype(*first)>>{}(*first));
  }
  return seed;
}

/// Hashes a vector of hashable elements.
template <typename T>
std::size_t hashVector(const std::vector<T>& v) {
  return hashRange(v.begin(), v.end());
}

}  // namespace wfd
