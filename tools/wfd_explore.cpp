// wfd_explore — randomized schedule exploration against the checker
// oracles, with counterexample shrinking and corpus replay.
//
//   wfd_explore --stack all --runs 200 --seed 1
//       sample 200 admissible FuzzPlans per stack from seed 1, run each
//       under the stack's spec oracle, shrink any violation; one JSON
//       line per run plus one summary line per stack (stdout carries no
//       timing, so equal invocations are byte-identical).
//   wfd_explore --stack etob --oracle strict-tob --runs 50 --seed 7
//               --corpus-dir tests/corpus           (one command line)
//       additionally assert strong TOB (tau-hat == 0): violations are
//       EXPECTED under pre-stabilization disagreement; each is shrunk to
//       a minimal separation witness and saved as a corpus entry.
//   wfd_explore --campaign --stack all --runs 2000 --seed 1 --jobs 8
//       coverage-guided campaign (src/explore/campaign.h): generation 0
//       samples the same plan stream as plain explore, later generations
//       mutate rare-coverage plans; all runs execute on a work-stealing
//       pool with --jobs worker threads. Output is byte-identical for
//       every --jobs value — the merged report depends only on
//       (stack, seed, runs, generations, mutations), never on thread
//       scheduling. --jobs requires --campaign (plain mode is the pinned
//       sequential path).
//   wfd_explore --replay tests/corpus/foo.json
//       re-run a saved plan and verify it reproduces its recorded
//       outcome (failure keys always; digest when pinned for this
//       build's stdlib). This is what the corpus_replay_* ctest
//       targets run. A directory replays every *.json inside it in
//       SORTED order (readdir order is filesystem-defined).
//   wfd_explore --time-budget 60 ...
//       wall-clock cap per stack (truncates the run sequence; the runs
//       that execute are still the deterministic prefix). In campaign
//       mode it truncates at generation boundaries — and is the one
//       flag that breaks byte-identity across invocations.
//
// Exit status: 0 iff every executed run met its oracle (spec mode), no
// shrink invariant broke (strict mode exits 1 when violations were
// found, since they were requested for harvesting — check the corpus
// files instead), and every --replay matched its expectation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"

#include "explore/campaign.h"
#include "explore/explorer.h"
#include "explore/plan_codec.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --stack <name|all> [--runs N] [--seed S]\n"
      "       [--oracle spec|strict-tob] [--no-shrink] [--time-budget SEC]\n"
      "       [--corpus-dir DIR]\n"
      "       [--campaign [--jobs N] [--generations N] [--mutations N]\n"
      "                    [--big-cluster-max-n N] [--loss-genome]]\n"
      "       %s --replay <plan-or-corpus.json | corpus-dir>\n"
      "       %s --list-stacks\n",
      argv0, argv0, argv0);
}

std::uint64_t parseU64(const char* flag, const char* text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  // strtoull silently wraps a leading '-' to a huge value: "--runs -1"
  // must be a diagnostic, not an effectively infinite loop.
  if (end == text || *end != '\0' || text[0] == '-' || text[0] == '+') {
    std::fprintf(stderr, "%s: not a non-negative number: '%s'\n", flag, text);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stackArg;
  std::string replayPath;
  std::string corpusDir;
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  std::uint64_t timeBudgetSec = 0;
  wfd::FuzzOracle oracle = wfd::FuzzOracle::kSpec;
  bool shrink = true;
  bool listStacks = false;
  bool campaign = false;
  std::uint64_t jobs = 1;
  std::uint64_t generations = 2;
  std::uint64_t mutations = 0;  // 0 = campaign default (runs / 4)
  std::uint64_t bigClusterMaxN = 0;  // 0 = legacy small-n genome only
  bool lossGenome = false;  // off = legacy loss-free genome only

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stack") {
      stackArg = next();
    } else if (arg == "--runs") {
      runs = parseU64("--runs", next());
    } else if (arg == "--seed") {
      seed = parseU64("--seed", next());
    } else if (arg == "--oracle") {
      const char* name = next();
      if (!wfd::parseFuzzOracle(name, &oracle)) {
        std::fprintf(stderr, "--oracle: unknown oracle '%s'\n", name);
        return 2;
      }
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--campaign") {
      campaign = true;
    } else if (arg == "--jobs") {
      jobs = parseU64("--jobs", next());
      if (jobs == 0) {
        std::fprintf(stderr, "--jobs: must be >= 1\n");
        return 2;
      }
    } else if (arg == "--generations") {
      generations = parseU64("--generations", next());
      if (generations == 0) {
        std::fprintf(stderr, "--generations: must be >= 1\n");
        return 2;
      }
    } else if (arg == "--mutations") {
      mutations = parseU64("--mutations", next());
    } else if (arg == "--big-cluster-max-n") {
      bigClusterMaxN = parseU64("--big-cluster-max-n", next());
    } else if (arg == "--loss-genome") {
      lossGenome = true;
    } else if (arg == "--time-budget") {
      timeBudgetSec = parseU64("--time-budget", next());
    } else if (arg == "--corpus-dir") {
      corpusDir = next();
    } else if (arg == "--replay") {
      replayPath = next();
    } else if (arg == "--list-stacks") {
      listStacks = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (listStacks) {
    for (wfd::AlgoStack stack : wfd::kAllAlgoStacks) {
      std::printf("%s\n", wfd::algoStackName(stack));
    }
    return 0;
  }

  // --jobs is a campaign knob: the plain explore path is the pinned
  // sequential byte-identity baseline and must not silently change
  // meaning, so requesting threads without --campaign is a usage error.
  if (jobs > 1 && !campaign) {
    std::fprintf(stderr, "--jobs requires --campaign\n");
    return 2;
  }
  // Same reasoning as --jobs: the plain explore path is the pinned
  // byte-identity baseline, so the big-cluster genome is campaign-only.
  if (bigClusterMaxN != 0 && !campaign) {
    std::fprintf(stderr, "--big-cluster-max-n requires --campaign\n");
    return 2;
  }
  // And the same again: the fair-lossy genome is campaign-only.
  if (lossGenome && !campaign) {
    std::fprintf(stderr, "--loss-genome requires --campaign\n");
    return 2;
  }

  if (!replayPath.empty()) {
    std::vector<std::string> paths;
    if (std::filesystem::is_directory(replayPath)) {
      std::string error;
      std::optional<std::vector<std::string>> files =
          wfd::listCorpusFiles(replayPath, &error);
      if (!files) {
        std::fprintf(stderr, "replay: %s\n", error.c_str());
        return 2;
      }
      paths = std::move(*files);
    } else {
      paths.push_back(replayPath);
    }
    bool allOk = true;
    for (const std::string& path : paths) {
      std::string error;
      std::optional<wfd::CorpusEntry> entry = wfd::loadCorpusFile(path, &error);
      if (!entry) {
        std::fprintf(stderr, "replay: %s\n", error.c_str());
        return 2;
      }
      std::string whyNot;
      const bool ok = wfd::replayCorpusEntry(*entry, &whyNot);
      wfd::Json line = wfd::Json::object();
      line.set("replay", wfd::Json::str(entry->name));
      line.set("match", wfd::Json::boolean(ok));
      std::printf("%s\n", line.dump().c_str());
      if (!ok) std::fprintf(stderr, "replay mismatch: %s\n", whyNot.c_str());
      allOk = allOk && ok;
    }
    return allOk ? 0 : 1;
  }

  if (stackArg.empty()) {
    usage(argv[0]);
    return 2;
  }
  std::vector<wfd::AlgoStack> stacks;
  if (stackArg == "all") {
    stacks.assign(std::begin(wfd::kAllAlgoStacks), std::end(wfd::kAllAlgoStacks));
  } else {
    wfd::AlgoStack one;
    if (!wfd::parseAlgoStack(stackArg, &one)) {
      std::fprintf(stderr, "unknown stack '%s' (try --list-stacks)\n",
                   stackArg.c_str());
      return 2;
    }
    stacks.push_back(one);
  }

  std::uint64_t totalViolations = 0;
  std::uint64_t corpusSaved = 0;
  for (wfd::AlgoStack stack : stacks) {
    wfd::ExploreOptions options;
    options.stack = stack;
    options.runs = runs;
    options.seed = seed;
    options.oracle = oracle;
    options.shrink = shrink;

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(timeBudgetSec);
    std::function<bool()> keepGoing;
    if (timeBudgetSec > 0) {
      keepGoing = [deadline]() {
        return std::chrono::steady_clock::now() < deadline;
      };
    }

    if (campaign) {
      wfd::CampaignOptions copts;
      copts.stack = stack;
      copts.runs = runs;
      copts.seed = seed;
      copts.oracle = oracle;
      copts.shrink = shrink;
      copts.jobs = static_cast<unsigned>(jobs);
      copts.generations = generations;
      copts.mutationsPerGeneration = mutations;
      copts.bigClusterMaxN = static_cast<std::size_t>(bigClusterMaxN);
      copts.lossGenome = lossGenome;

      const wfd::CampaignReport report = wfd::runCampaign(copts, keepGoing);
      totalViolations += report.violations.size();

      for (const wfd::CampaignRunRecord& rec : report.runs) {
        std::printf("%s\n", wfd::campaignRunJsonLine(rec).c_str());
      }
      for (const wfd::CampaignViolation& v : report.violations) {
        wfd::Json line = wfd::Json::object();
        line.set("violation_generation", wfd::Json::number(v.generation));
        line.set("violation_run", wfd::Json::number(v.index));
        line.set("stack", wfd::Json::str(wfd::algoStackName(stack)));
        wfd::Json keys = wfd::Json::array();
        for (const std::string& k : wfd::failureKeys(v.result)) {
          keys.push(wfd::Json::str(k));
        }
        line.set("failure_keys", std::move(keys));
        line.set("shrink_attempts", wfd::Json::number(v.shrunken.attempts));
        line.set("shrink_accepted", wfd::Json::number(v.shrunken.accepted));
        line.set("shrunken_plan", wfd::encodeFuzzPlan(v.shrunken.plan));
        std::printf("%s\n", line.dump().c_str());

        if (!corpusDir.empty()) {
          const std::string name =
              std::string(wfd::algoStackName(stack)) + "-" +
              wfd::fuzzOracleName(oracle) + "-seed" + std::to_string(seed) +
              "-gen" + std::to_string(v.generation) + "-run" +
              std::to_string(v.index);
          const std::string foundBy =
              std::string("wfd_explore --campaign --stack ") +
              wfd::algoStackName(stack) + " --oracle " +
              wfd::fuzzOracleName(oracle) + " --seed " + std::to_string(seed) +
              " --runs " + std::to_string(runs) + " --generations " +
              std::to_string(generations);
          const wfd::CorpusEntry entry = wfd::makeCorpusEntry(
              name, foundBy, v.shrunken.plan, oracle, &v.shrunken.result);
          const std::string path = corpusDir + "/" + name + ".json";
          if (wfd::saveCorpusFile(path, entry)) {
            ++corpusSaved;
            std::fprintf(stderr, "saved corpus entry %s\n", path.c_str());
          } else {
            std::fprintf(stderr, "FAILED to save corpus entry %s\n",
                         path.c_str());
          }
        }
      }

      std::printf("%s\n", wfd::campaignCoverageJsonLine(stack, report).c_str());

      wfd::Json summary = wfd::Json::object();
      summary.set("summary", wfd::Json::str(wfd::algoStackName(stack)));
      summary.set("oracle", wfd::Json::str(wfd::fuzzOracleName(oracle)));
      summary.set("seed", wfd::Json::number(seed));
      summary.set("generations", wfd::Json::number(generations));
      summary.set("runs_executed", wfd::Json::number(report.runsExecuted));
      summary.set("violations", wfd::Json::number(report.violations.size()));
      std::printf("%s\n", summary.dump().c_str());
      std::fflush(stdout);
      continue;
    }

    const wfd::ExploreReport report = wfd::explore(
        options,
        [](std::uint64_t i, const wfd::FuzzPlan& plan,
           const wfd::ScenarioRunResult& result) {
          std::printf("%s\n", wfd::fuzzRunJsonLine(i, plan, result).c_str());
          std::fflush(stdout);
        },
        keepGoing);
    totalViolations += report.violations.size();

    for (const wfd::ExploreViolation& v : report.violations) {
      // The shrunken witness, inline (stderr-free so byte-stable).
      wfd::Json line = wfd::Json::object();
      line.set("violation_run", wfd::Json::number(v.runIndex));
      line.set("stack", wfd::Json::str(wfd::algoStackName(stack)));
      wfd::Json keys = wfd::Json::array();
      for (const std::string& k : wfd::failureKeys(v.result)) {
        keys.push(wfd::Json::str(k));
      }
      line.set("failure_keys", std::move(keys));
      line.set("shrink_attempts", wfd::Json::number(v.shrunken.attempts));
      line.set("shrink_accepted", wfd::Json::number(v.shrunken.accepted));
      line.set("shrunken_plan", wfd::encodeFuzzPlan(v.shrunken.plan));
      std::printf("%s\n", line.dump().c_str());

      if (!corpusDir.empty()) {
        const std::string name = std::string(wfd::algoStackName(stack)) + "-" +
                                 wfd::fuzzOracleName(oracle) + "-seed" +
                                 std::to_string(seed) + "-run" +
                                 std::to_string(v.runIndex);
        const std::string foundBy =
            std::string("wfd_explore --stack ") + wfd::algoStackName(stack) +
            " --oracle " + wfd::fuzzOracleName(oracle) + " --seed " +
            std::to_string(seed) + " --runs " + std::to_string(runs);
        const wfd::CorpusEntry entry = wfd::makeCorpusEntry(
            name, foundBy, v.shrunken.plan, oracle, &v.shrunken.result);
        const std::string path = corpusDir + "/" + name + ".json";
        if (wfd::saveCorpusFile(path, entry)) {
          ++corpusSaved;
          std::fprintf(stderr, "saved corpus entry %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "FAILED to save corpus entry %s\n",
                       path.c_str());
        }
      }
    }

    wfd::Json summary = wfd::Json::object();
    summary.set("summary", wfd::Json::str(wfd::algoStackName(stack)));
    summary.set("oracle", wfd::Json::str(wfd::fuzzOracleName(oracle)));
    summary.set("seed", wfd::Json::number(seed));
    summary.set("runs_executed", wfd::Json::number(report.runsExecuted));
    summary.set("violations",
                wfd::Json::number(report.violations.size()));
    std::printf("%s\n", summary.dump().c_str());
    std::fflush(stdout);
  }

  if (!corpusDir.empty()) {
    std::fprintf(stderr, "corpus entries saved: %llu\n",
                 static_cast<unsigned long long>(corpusSaved));
  }
  return totalViolations == 0 ? 0 : 1;
}
