// The causality graph CG_i of Algorithm 5 (ET OB).
//
// Nodes are application messages; an edge (m', m) means m causally
// depends on m'. UpdateCG(m, C(m)) adds m with edges from C(m); UnionCG
// merges a peer's graph. The graph is acyclic by construction: every
// in-edge of m is created at m's broadcast, and C(m) only contains
// messages created strictly earlier in real time.
//
// Two edge modes with the same transitive closure:
//  * kFullPaper — edges from *every* element of C(m), as written in the
//    paper's UpdateCG;
//  * kFrontier — edges only from the causally-maximal elements of C(m)
//    (the graph's current sinks plus the explicit dependencies). Cheaper,
//    and provably closure-equivalent because every node reaches a sink.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/digraph.h"
#include "common/types.h"
#include "sim/app_msg.h"

namespace wfd {

enum class CgEdgeMode { kFullPaper, kFrontier };

class CausalityGraph {
 public:
  explicit CausalityGraph(CgEdgeMode mode = CgEdgeMode::kFullPaper) : mode_(mode) {}

  /// The paper's UpdateCG(m, C(m)): adds node m and edges {(m', m) |
  /// m' ∈ deps}. C(m) is supplied by the application and may reference
  /// messages whose content this process has not received yet (e.g. a
  /// client session that read m' at another replica): such dependencies
  /// become placeholder nodes — the edge is recorded, and m stays
  /// unpromotable until the placeholder's content arrives (see
  /// extendPromote). Idempotent per message id.
  void addMessage(const AppMsg& m, const std::vector<MsgId>& deps);

  /// The paper's UnionCG(CG_j). Fills in placeholder bodies known to the
  /// peer.
  void unionWith(const CausalityGraph& other);

  /// True iff the full content of the message is known (placeholder
  /// dependency nodes return false).
  bool contains(MsgId id) const { return bodies_.contains(id); }
  std::size_t messageCount() const { return graph_.nodeCount(); }
  std::size_t edgeCount() const { return graph_.edgeCount(); }

  /// Message metadata (must be present).
  const AppMsg& message(MsgId id) const;

  /// All message ids, in insertion order.
  const std::vector<MsgId>& ids() const { return graph_.nodes(); }

  /// True iff `ancestor` causally precedes `descendant` in this graph.
  bool causallyPrecedes(MsgId ancestor, MsgId descendant) const {
    return graph_.reaches(ancestor, descendant);
  }

  /// Causally maximal messages (no outgoing edge).
  std::vector<MsgId> frontier() const { return graph_.sinks(); }

  /// Abstract serialized size in words (nodes + edges + message bodies) —
  /// what a full-graph update message costs on the wire.
  std::size_t approxWeight() const;

  /// Deterministic topological order of all messages (ties by MsgId).
  /// The graph is acyclic by construction, so this always succeeds.
  std::vector<MsgId> topologicalOrder() const;

  /// The paper's UpdatePromote: returns an extension of `promote` that
  /// contains every PROMOTABLE message of this graph exactly once and
  /// respects every edge. A message is promotable when its content and
  /// the content of its whole causal ancestry are known — a placeholder
  /// dependency blocks its descendants (causal buffering), never the
  /// rest of the graph. `promote` must itself respect the graph's edges
  /// (invariant maintained by Algorithm 5; violations throw).
  std::vector<MsgId> extendPromote(const std::vector<MsgId>& promote) const;

  CgEdgeMode mode() const { return mode_; }

 private:
  CgEdgeMode mode_;
  Digraph<MsgId> graph_;
  std::unordered_map<MsgId, AppMsg> bodies_;
};

}  // namespace wfd
