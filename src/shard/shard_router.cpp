#include "shard/shard_router.h"

#include <algorithm>

#include "common/ensure.h"
#include "rsm/state_machines.h"

namespace wfd {

ShardRouter::ShardRouter(ShardedService& service) : service_(&service) {
  folds_.resize(service.shardCount());
}

std::size_t ShardRouter::put(std::uint64_t key, std::uint64_t value) {
  const std::size_t s = service_->ownerOf(key);
  Client c = service_->shard(s).client(service_->readReplicaOf(s));
  c.put(key, value);
  RouterOp op;
  op.kind = RouterOp::Kind::kPut;
  op.key = key;
  op.value = value;
  op.time = service_->now() + 1;
  op.shard = s;
  ops_.push_back(op);
  pending_.push_back(ops_.size() - 1);
  return ops_.size() - 1;
}

std::optional<std::uint64_t> ShardRouter::get(std::uint64_t key) {
  poll();
  const std::size_t s = service_->ownerOf(key);
  const FoldState& f = folds_[s];
  RouterOp op;
  op.kind = RouterOp::Kind::kGet;
  op.key = key;
  op.time = service_->now();
  op.shard = s;
  const auto it = f.kv.find(key);
  if (it != f.kv.end()) {
    op.hasValue = true;
    op.value = it->second;
    op.version = f.versions.at(key);
  }
  ops_.push_back(op);
  return op.hasValue ? std::optional<std::uint64_t>(op.value) : std::nullopt;
}

void ShardRouter::poll() {
  for (std::size_t s = 0; s < folds_.size(); ++s) foldShard(s);
}

void ShardRouter::foldShard(std::size_t s) {
  // A shard with no correct replica left has nothing readable; its last
  // fold keeps being served (stale reads are the honest answer there).
  if (service_->correctReplicasOf(s) == 0) return;
  Client c = service_->shard(s).client(service_->readReplicaOf(s));
  std::vector<MsgId> prefix = c.committedPrefix();
  if (!c.capabilities().committedPrefix) {
    // Stacks without §7 commit indications: fold the (revisable)
    // delivery sequence and refold on rewrites.
    prefix = c.delivered();
  }
  FoldState& f = folds_[s];
  std::size_t from = f.folded.size();
  const bool extension =
      prefix.size() >= f.folded.size() &&
      std::equal(f.folded.begin(), f.folded.end(), prefix.begin());
  if (!extension) {
    f.kv.clear();
    f.versions.clear();
    ++refolds_;
    from = 0;
  }
  for (std::size_t i = from; i < prefix.size(); ++i) {
    const std::vector<std::uint64_t>* body = c.findBody(prefix[i]);
    WFD_ENSURE_MSG(body != nullptr, "committed command with unknown content");
    if (body->size() == 3 &&
        (*body)[0] == static_cast<std::uint64_t>(SmOp::kPut)) {
      const std::uint64_t key = (*body)[1];
      const std::uint64_t value = (*body)[2];
      f.kv[key] = value;
      ++f.versions[key];
      // Resolve the earliest pending put matching this command. The
      // scenario workloads write unique (key, value) pairs, so the
      // match is unambiguous there; with duplicates, first-pending is
      // the conservative reading (a later duplicate can only commit
      // later).
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        RouterOp& op = ops_[*it];
        if (op.shard == s && op.key == key && op.value == value) {
          op.committed = true;
          op.commitTime = service_->now();
          pending_.erase(it);
          break;
        }
      }
    }
  }
  f.folded = std::move(prefix);
}

std::size_t ShardRouter::pendingPuts() const { return pending_.size(); }

std::size_t ShardRouter::foldedLen(std::size_t s) const {
  WFD_ENSURE_MSG(s < folds_.size(), "shard index out of range");
  return folds_[s].folded.size();
}

}  // namespace wfd
