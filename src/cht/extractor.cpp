#include "cht/extractor.h"

namespace wfd {

ChtExtractorAutomaton::ChtExtractorAutomaton(TargetFactory factory,
                                             std::size_t processCount,
                                             ChtConfig config)
    : factory_(std::move(factory)), processCount_(processCount), config_(config) {}

void ChtExtractorAutomaton::onMessage(const StepContext&, ProcessId,
                                      const Payload& msg, Effects&) {
  const auto* gossip = msg.as<DagGossipMsg>();
  if (gossip == nullptr) return;
  const std::size_t before = dag_.vertexCount() + dag_.edgeCount();
  dag_.unionWith(gossip->dag);
  if (dag_.vertexCount() + dag_.edgeCount() != before) {
    dagChangedSinceGossip_ = true;
  }
}

void ChtExtractorAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  // Communication task (Figure 1): sample D, grow the DAG, gossip it.
  if (ownSamples_ < config_.maxOwnSamples) {
    dag_.addSample(ctx.self, ctx.fd);
    ++ownSamples_;
    dagChangedSinceGossip_ = true;
  }
  if (dagChangedSinceGossip_) {
    fx.broadcast(Payload::of(DagGossipMsg{dag_}));
    dagChangedSinceGossip_ = false;
  }
  // Computation task (Figure 6): periodic extraction.
  if (++lambdasSinceExtract_ >= config_.extractEvery && dag_.vertexCount() > 0) {
    lambdasSinceExtract_ = 0;
    extract(ctx, fx);
  }
}

void ChtExtractorAutomaton::extract(const StepContext& ctx, Effects& fx) {
  ++extractions_;
  TreeAnalysis analysis(dag_, factory_, processCount_, config_.limits);
  // Initially (and whenever no gadget is locatable yet) a process elects
  // itself, as in Figure 6's initialization.
  const ProcessId leader = analysis.extractLeader().value_or(
      estimate_ == kNoProcess ? ctx.self : estimate_);
  if (leader != estimate_) {
    estimate_ = leader;
    fx.output(Payload::of(LeaderEstimate{leader}));
  }
}

}  // namespace wfd
