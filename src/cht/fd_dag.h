// The failure-detector-sample DAG of the CHT reduction (Appendix B,
// Figure 1).
//
// Vertices are [q, d, k]: process q obtained value d from its k-th query
// of D. Each local query appends a vertex with edges from EVERY vertex
// currently known ("q saw d before q' saw d'"), and received peer DAGs
// are merged in. Correct processes' DAGs converge to the same growing
// limit DAG G, whose paths supply the stimuli for the simulation tree.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "sim/fd_interface.h"

namespace wfd {

/// DAG vertex [q, d, k].
struct DagVertex {
  ProcessId q = kNoProcess;
  FdValue d;
  std::uint64_t k = 0;

  bool operator==(const DagVertex&) const = default;
  /// Canonical process-independent order: by query index, then process,
  /// then value. Used everywhere a deterministic tie-break is needed.
  auto operator<=>(const DagVertex&) const = default;
};

struct DagVertexHash {
  std::size_t operator()(const DagVertex& v) const {
    std::size_t seed = std::hash<ProcessId>{}(v.q);
    hashCombine(seed, FdValueHash{}(v.d));
    hashCombine(seed, std::hash<std::uint64_t>{}(v.k));
    return seed;
  }
};

class FdDag {
 public:
  /// Records one local failure-detector query of process p: appends
  /// [p, d, k] (k = p's query counter) with edges from all current
  /// vertices. Returns the new vertex's local index.
  std::size_t addSample(ProcessId p, const FdValue& d);

  /// Merges a peer's DAG (vertices and edges).
  void unionWith(const FdDag& other);

  std::size_t vertexCount() const { return vertices_.size(); }
  std::size_t edgeCount() const { return edgeCount_; }
  const DagVertex& vertex(std::size_t i) const { return vertices_[i]; }
  bool hasVertex(const DagVertex& v) const { return index_.contains(v); }

  /// Direct edge test by local indices.
  bool hasEdge(std::size_t from, std::size_t to) const {
    return succs_[from].contains(static_cast<std::uint32_t>(to));
  }

  /// Number of queries this DAG has recorded locally for p (the paper's
  /// k_p counter of Figure 1; union may import higher-k vertices of p,
  /// which is fine — k only needs to increase per process).
  std::uint64_t localQueryCount(ProcessId p) const;

  /// Indices of all vertices sorted canonically by (k, q, d) — identical
  /// across processes holding the same vertex set.
  std::vector<std::size_t> canonicalOrder() const;

  /// True iff both DAGs contain exactly the same vertices and edges.
  bool sameAs(const FdDag& other) const;

 private:
  friend class DagReach;
  std::vector<DagVertex> vertices_;
  std::unordered_map<DagVertex, std::size_t, DagVertexHash> index_;
  std::vector<std::unordered_set<std::uint32_t>> succs_;
  std::vector<std::uint64_t> queryCount_ = {};  // grown on demand
  std::size_t edgeCount_ = 0;
};

/// Precomputed reachability over an FdDag snapshot. The CHT simulation
/// asks "is vertex v usable after vertex u" constantly; the paper's
/// transitive-closure property (3) makes reachability the right relation
/// (unions of closed graphs may transiently lack closure edges).
class DagReach {
 public:
  explicit DagReach(const FdDag& dag);

  /// True iff to is reachable from `from` via one or more edges.
  bool reaches(std::size_t from, std::size_t to) const {
    return closure_[from][to];
  }

 private:
  std::vector<std::vector<bool>> closure_;
};

/// Gossip message carrying a whole DAG (the communication task of the
/// reduction algorithm, Figure 1).
struct DagGossipMsg {
  FdDag dag;
};

}  // namespace wfd
