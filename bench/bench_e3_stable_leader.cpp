// E3 — Strong TOB under an always-stable leader (paper §1 property (2), §5).
//
// Claim: if Omega outputs the same leader at all processes FROM THE VERY
// BEGINNING, Algorithm 5 implements strong total order broadcast — no
// delivery is ever revoked or reordered. As tau_Omega grows, revocations
// appear (before stabilization) but always stop by tau_Omega + Δ_t + Δ_c.
//
// Method: sweep tau_Omega; count delivery-sequence prefix violations at
// correct processes and report the measured convergence witness τ̂.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"

namespace wfd::bench {
namespace {

struct Result {
  std::uint64_t violations = 0;
  Time tauHat = 0;
  bool strongTob = false;
};

Result run(Time tauOmega, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = FailurePattern::noFailures(3);
  auto cluster =
      makeEtobCluster(cfg, fp, tauOmega,
                      tauOmega == 0 ? OmegaPreStabilization::kStable
                                    : OmegaPreStabilization::kSplitBrain);
  Simulator& sim = cluster.sim();
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 50;
  w.perProcess = 10;
  cluster.scheduleWorkload(w);
  const BroadcastLog& log = cluster.log();
  cluster.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 2000 && broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  Result r;
  for (ProcessId p = 0; p < 3; ++p) {
    r.violations += sim.trace().prefixViolations(p);
  }
  r.tauHat = report.tau;
  r.strongTob = report.strongTobOk();
  return r;
}

void printTable() {
  std::printf("E3: Algorithm 5 under increasingly late Omega stabilization\n"
              "(expect: tau_Omega=0 -> zero revocations, strong TOB; bound\n"
              " tau_hat <= tau_Omega + dt + dc = tau_Omega + 50)\n\n");
  Table t({"tau_Omega", "revocations", "tau_hat", "bound", "strong_TOB"});
  for (Time tau : {0u, 500u, 1000u, 2000u, 4000u}) {
    Result sum{};
    int runs = 0;
    bool strong = true;
    Time worstTau = 0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      auto r = run(tau, seed);
      sum.violations += r.violations;
      worstTau = std::max(worstTau, r.tauHat);
      strong = strong && r.strongTob;
      ++runs;
    }
    t.row({std::to_string(tau), std::to_string(sum.violations / runs),
           std::to_string(worstTau), std::to_string(tau + 50),
           strong ? "yes" : "no"});
  }
  std::printf("\n");
}

void BM_EtobStableLeader(benchmark::State& state) {
  const Time tau = static_cast<Time>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(tau, seed++);
    benchmark::DoNotOptimize(r);
    state.counters["revocations"] = static_cast<double>(r.violations);
  }
}
BENCHMARK(BM_EtobStableLeader)->Arg(0)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
