#include "rsm/gossip_lww.h"

#include <algorithm>

#include "rsm/state_machines.h"

namespace wfd {

void GossipLwwStore::onInput(const StepContext&, const Payload& input, Effects& fx) {
  const auto* bcast = input.as<BroadcastInput>();
  if (bcast == nullptr) return;
  const AppMsg& m = bcast->msg;
  if (m.body.size() != 3 || static_cast<SmOp>(m.body[0]) != SmOp::kPut) return;
  Entry e;
  e.value = m.body[2];
  e.timestamp = ++clock_;
  e.origin = m.origin;
  e.sourceMsg = m.id;
  adopt(m.body[1], e, fx);
}

void GossipLwwStore::onMessage(const StepContext&, ProcessId, const Payload& msg,
                               Effects& fx) {
  const auto* gossip = msg.as<GossipStateMsg>();
  if (gossip == nullptr) return;
  for (const auto& [key, entry] : gossip->table) {
    clock_ = std::max(clock_, entry.timestamp);
    adopt(key, entry, fx);
  }
}

void GossipLwwStore::onTimeout(const StepContext&, Effects& fx) {
  if (!table_.empty()) fx.broadcast(Payload::of(GossipStateMsg{table_}));
}

void GossipLwwStore::adopt(std::uint64_t key, const Entry& entry, Effects& fx) {
  auto it = table_.find(key);
  const bool wins = it == table_.end() || entry.newerThan(it->second);
  if (!wins) return;
  table_[key] = entry;
  if (seen_.insert(entry.sourceMsg).second) {
    fx.output(Payload::of(GossipApplied{entry.sourceMsg, key}));
  }
}

}  // namespace wfd
