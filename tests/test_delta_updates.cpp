// Tests: the delta-update ablation — EtobDeltaMsg mode must be
// behaviour-identical to the paper's full-graph updates (same delivery
// sequences, same spec) at a fraction of the gossip weight.
#include <gtest/gtest.h>

#include <memory>

#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

struct RunOutcome {
  std::vector<std::vector<MsgId>> finalDelivered;
  std::uint64_t weight = 0;
  BroadcastCheckReport report;
};

RunOutcome run(bool delta, std::uint64_t seed, Time tauOmega,
               std::uint64_t promoteRefreshEvery = 1,
               bool deltaPromotes = true) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(
      fp, tauOmega,
      tauOmega == 0 ? OmegaPreStabilization::kStable
                    : OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  EtobConfig protoCfg;
  protoCfg.deltaUpdates = delta;
  protoCfg.promoteRefreshEvery = promoteRefreshEvery;
  protoCfg.deltaPromotes = deltaPromotes;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>(protoCfg));
  }
  BroadcastWorkload w;
  w.perProcess = 6;
  w.causalChainPerOrigin = true;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 1500 && broadcastConverged(s, log);
  });
  RunOutcome out;
  for (ProcessId p = 0; p < 3; ++p) {
    out.finalDelivered.push_back(sim.trace().currentDelivered(p));
  }
  out.weight = sim.trace().weightSent();
  out.report = checkBroadcastRun(sim.trace(), log, fp);
  return out;
}

TEST(DeltaUpdateTest, IdenticalDeliverySequences) {
  for (std::uint64_t seed : {1u, 9u, 17u}) {
    auto full = run(false, seed, 0);
    auto delta = run(true, seed, 0);
    EXPECT_EQ(full.finalDelivered, delta.finalDelivered) << "seed " << seed;
  }
}

TEST(DeltaUpdateTest, SpecHoldsInDeltaMode) {
  auto out = run(true, 5, 1200);
  EXPECT_TRUE(out.report.coreOk())
      << (out.report.errors.empty() ? "" : out.report.errors[0]);
  EXPECT_TRUE(out.report.causalOrderOk);
}

TEST(DeltaUpdateTest, DeltaModeIsMuchLighter) {
  // With promote suppression active in BOTH runs, update traffic
  // dominates and the delta encoding must cut the gossip weight hard.
  auto full = run(false, 3, 0, /*promoteRefreshEvery=*/50);
  auto delta = run(true, 3, 0, /*promoteRefreshEvery=*/50);
  EXPECT_EQ(full.finalDelivered, delta.finalDelivered);
  EXPECT_LT(delta.weight * 2, full.weight)
      << "delta updates must at least halve the gossip weight "
      << "(full=" << full.weight << ", delta=" << delta.weight << ")";
}

TEST(DeltaUpdateTest, PromoteSuppressionIsLighterAndStillConverges) {
  // Suppression is measured against FULL promote encoding: with delta
  // promotes (the default) re-promoting every λ only re-ships the empty
  // suffix, so there is little left for suppression to save.
  auto everyLambda =
      run(false, 3, 1200, /*promoteRefreshEvery=*/1, /*deltaPromotes=*/false);
  auto suppressed =
      run(false, 3, 1200, /*promoteRefreshEvery=*/50, /*deltaPromotes=*/false);
  EXPECT_TRUE(suppressed.report.coreOk());
  EXPECT_LT(suppressed.weight * 3, everyLambda.weight)
      << "promote-on-change should cut the dominant promote traffic "
      << "(every-λ=" << everyLambda.weight << ", suppressed="
      << suppressed.weight << ")";
  // The convergence bound relaxes to τ_Ω + N·Δ_t + Δ_c.
  EXPECT_LE(suppressed.report.tau, 1200 + 50 * 10 + 40);
}

TEST(DeltaUpdateTest, DeltaPromotesAreLighterAndEquivalent) {
  // Delta-encoded promotes change only the wire weight, never the
  // reconstructed content: every receiver rebuilds the same sequences, so
  // the final deliveries match the full encoding on the same schedule
  // (message weight never influences scheduling).
  auto full = run(false, 3, 0, /*promoteRefreshEvery=*/1,
                  /*deltaPromotes=*/false);
  auto delta = run(false, 3, 0, /*promoteRefreshEvery=*/1,
                   /*deltaPromotes=*/true);
  EXPECT_EQ(full.finalDelivered, delta.finalDelivered);
  EXPECT_TRUE(delta.report.coreOk())
      << (delta.report.errors.empty() ? "" : delta.report.errors[0]);
  EXPECT_LT(delta.weight * 2, full.weight)
      << "delta promotes must cut the every-λ promote traffic "
      << "(full=" << full.weight << ", delta=" << delta.weight << ")";
}

TEST(DeltaUpdateTest, PlaceholderDepsResolveAcrossDeltas) {
  // Client-session dependency (dep unknown at broadcast) in delta mode:
  // the dependent must stay buffered until the dep's delta arrives, then
  // deliver in causal order.
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = 2;
  cfg.maxTime = 20000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable);
  Simulator sim(cfg, fp, omega);
  EtobConfig protoCfg;
  protoCfg.deltaUpdates = true;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>(protoCfg));
  }
  BroadcastLog log;
  AppMsg a;
  a.id = makeMsgId(0, 0);
  a.origin = 0;
  AppMsg b;
  b.id = makeMsgId(1, 0);
  b.origin = 1;
  b.causalDeps = {a.id};  // declared 3 ticks later, before a's delta lands
  log.record(a, 100);
  log.record(b, 103);
  sim.scheduleInput(0, 100, Payload::of(BroadcastInput{a}));
  sim.scheduleInput(1, 103, Payload::of(BroadcastInput{b}));
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.causalOrderOk)
      << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.coreOk());
}

}  // namespace
}  // namespace wfd
