// Generic small directed graph keyed by node values.
//
// Used by the ETOB causality graph (nodes = application messages) and by
// tests. Nodes are stored in insertion order, which gives every algorithm
// on top a deterministic iteration order.
//
// Representation: adjacency lists are index-sorted flat vectors (not hash
// sets). The eTOB stack unions whole graphs on every update message, so
// unionWith is the hot path at scale — it maps the other graph's indices
// once and then set-unions sorted neighbor lists, instead of paying two
// hash lookups plus a hash insert per edge. All public results are pure
// functions of the node values, insertion order, and edge set, so the
// representation change is invisible to callers (pinned by the scale
// digest matrix).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ensure.h"

namespace wfd {

/// Directed graph over values of type T (T must be hashable and
/// equality-comparable). Parallel edges are collapsed; self-loops rejected.
template <typename T>
class Digraph {
 public:
  /// Adds a node if not present. Returns true if newly inserted.
  bool addNode(const T& node) {
    return insertNode(node) != kExisting;
  }

  /// Adds an edge from -> to (inserting missing endpoints).
  /// Returns true if the edge is new. Self-loops are invariant errors.
  bool addEdge(const T& from, const T& to) {
    WFD_ENSURE_MSG(!(from == to), "self-loop in Digraph");
    addNode(from);
    addNode(to);
    const std::uint32_t f = index_.at(from);
    const std::uint32_t t = index_.at(to);
    if (!insertSorted(succs_[f], t)) return false;
    insertSorted(preds_[t], f);
    ++edgeCount_;
    return true;
  }

  bool hasNode(const T& node) const { return index_.contains(node); }

  bool hasEdge(const T& from, const T& to) const {
    auto f = index_.find(from);
    auto t = index_.find(to);
    if (f == index_.end() || t == index_.end()) return false;
    return std::binary_search(succs_[f->second].begin(),
                              succs_[f->second].end(), t->second);
  }

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t edgeCount() const { return edgeCount_; }

  /// Nodes in insertion order.
  const std::vector<T>& nodes() const { return nodes_; }

  /// Predecessor values of a node, in insertion order of the predecessors.
  std::vector<T> predecessors(const T& node) const {
    return neighbourValues(node, preds_);
  }

  /// Successor values of a node, in insertion order of the successors.
  std::vector<T> successors(const T& node) const {
    return neighbourValues(node, succs_);
  }

  /// Nodes with no outgoing edge (causally maximal), in insertion order.
  std::vector<T> sinks() const {
    std::vector<T> out;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (succs_[i].empty()) out.push_back(nodes_[i]);
    }
    return out;
  }

  // -- Index-space accessors ---------------------------------------------
  // The causality graph's promote machinery runs per received update;
  // these let it work with dense indices and flat flag arrays instead of
  // hashing node values on every visit.

  /// Insertion index of a node, if present.
  std::optional<std::uint32_t> indexOf(const T& node) const {
    auto it = index_.find(node);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  /// Node value at an insertion index (< nodeCount()).
  const T& nodeAt(std::uint32_t i) const { return nodes_[i]; }

  /// Predecessor indices of node i, sorted ascending (insertion order).
  const std::vector<std::uint32_t>& predIndices(std::uint32_t i) const {
    return preds_[i];
  }

  /// Successor indices of node i, sorted ascending (insertion order).
  const std::vector<std::uint32_t>& succIndices(std::uint32_t i) const {
    return succs_[i];
  }

  /// Merges all nodes and edges of another graph into this one.
  void unionWith(const Digraph& other) {
    std::vector<std::uint32_t> map;
    unionWith(other, map);
  }

  /// unionWith that also reports where each of the other graph's nodes
  /// landed: mapOut[j] is this graph's index of other.nodes()[j]. Only
  /// those nodes can have gained in-edges, so incremental bookkeeping
  /// layered on top (the causality graph's promote engine) revisits
  /// exactly the touched nodes instead of rescanning the whole graph.
  ///
  /// `stablePredSets` enables the causality-graph fast path: the caller
  /// guarantees that for any node, the in-neighbour set in EVERY unioned
  /// graph is either empty or one per-node canonical set (eTOB in-edges
  /// are created atomically from C(m) and never extended), so equal pred
  /// list lengths mean identical sets and the merge can be skipped.
  /// Successor lists are then maintained as the transpose of the pred
  /// merges — repeated unions of converged graphs cost O(nodes), not
  /// O(edges), and no per-list scratch sort. Leave it false for graphs
  /// whose edges accrete arbitrarily.
  void unionWith(const Digraph& other, std::vector<std::uint32_t>& mapOut,
                 bool stablePredSets = false) {
    // Map the other graph's indices into this one (inserting missing
    // nodes) ONCE, then merge sorted neighbor lists per node.
    std::vector<std::uint32_t>& map = mapOut;
    map.assign(other.nodes_.size(), 0);
    for (std::size_t i = 0; i < other.nodes_.size(); ++i) {
      const std::uint32_t idx = insertNode(other.nodes_[i]);
      map[i] = idx == kExisting ? index_.at(other.nodes_[i]) : idx;
    }
    std::vector<std::uint32_t> translated;
    if (stablePredSets) {
      std::vector<std::uint32_t> added;
      for (std::size_t f = 0; f < other.nodes_.size(); ++f) {
        const auto& osrc = other.preds_[f];
        const std::uint32_t t = map[f];
        auto& dst = preds_[t];
        if (osrc.empty()) continue;
        if (dst.size() == osrc.size()) {
          WFD_DCHECK(samePredSet(dst, osrc, map));
          continue;
        }
        translated.clear();
        translated.reserve(osrc.size());
        for (std::uint32_t s : osrc) translated.push_back(map[s]);
        std::sort(translated.begin(), translated.end());
        if (dst.empty()) {
          dst = translated;
          for (std::uint32_t p : dst) insertSorted(succs_[p], t);
          edgeCount_ += dst.size();
          continue;
        }
        added.clear();
        std::set_difference(translated.begin(), translated.end(), dst.begin(),
                            dst.end(), std::back_inserter(added));
        if (added.empty()) continue;
        for (std::uint32_t p : added) {
          insertSorted(dst, p);
          insertSorted(succs_[p], t);
        }
        edgeCount_ += added.size();
      }
      return;
    }
    for (std::size_t f = 0; f < other.nodes_.size(); ++f) {
      if (!other.succs_[f].empty()) {
        edgeCount_ +=
            mergeTranslated(succs_[map[f]], other.succs_[f], map, translated);
      }
      if (!other.preds_[f].empty()) {
        mergeTranslated(preds_[map[f]], other.preds_[f], map, translated);
      }
    }
  }

  /// True iff `to` is reachable from `from` through one or more edges.
  bool reaches(const T& from, const T& to) const {
    auto f = index_.find(from);
    auto t = index_.find(to);
    if (f == index_.end() || t == index_.end()) return false;
    std::vector<std::uint32_t> stack{f->second};
    std::vector<char> seen(nodes_.size(), 0);
    seen[f->second] = 1;
    while (!stack.empty()) {
      const std::uint32_t cur = stack.back();
      stack.pop_back();
      for (std::uint32_t nxt : succs_[cur]) {
        if (nxt == t->second) return true;
        if (!seen[nxt]) {
          seen[nxt] = 1;
          stack.push_back(nxt);
        }
      }
    }
    return false;
  }

  /// Kahn topological sort with a caller-supplied deterministic tie-break
  /// (`less(a, b)` orders ready nodes; ties fall back to insertion
  /// order). Returns nullopt if the graph has a cycle.
  template <typename Less>
  std::optional<std::vector<T>> topoSort(Less less) const {
    const auto indices = topoSortIndices(less);
    if (!indices) return std::nullopt;
    std::vector<T> out;
    out.reserve(indices->size());
    for (std::uint32_t i : *indices) out.push_back(nodes_[i]);
    return out;
  }

  /// topoSort in index space. The ready set is a binary heap — the
  /// former linear min-scan per emitted node made every sort quadratic,
  /// which dominated the eTOB profile at n=256.
  template <typename Less>
  std::optional<std::vector<std::uint32_t>> topoSortIndices(Less less) const {
    std::vector<std::uint32_t> indegree(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      indegree[i] = static_cast<std::uint32_t>(preds_[i].size());
    }
    // Max-heap comparator inverted into a min-heap on (value, index).
    auto after = [&](std::uint32_t a, std::uint32_t b) {
      if (less(nodes_[a], nodes_[b])) return false;
      if (less(nodes_[b], nodes_[a])) return true;
      return a > b;
    };
    std::vector<std::uint32_t> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (indegree[i] == 0) ready.push_back(static_cast<std::uint32_t>(i));
    }
    std::make_heap(ready.begin(), ready.end(), after);
    std::vector<std::uint32_t> out;
    out.reserve(nodes_.size());
    while (!ready.empty()) {
      std::pop_heap(ready.begin(), ready.end(), after);
      const std::uint32_t cur = ready.back();
      ready.pop_back();
      out.push_back(cur);
      for (std::uint32_t nxt : succs_[cur]) {
        if (--indegree[nxt] == 0) {
          ready.push_back(nxt);
          std::push_heap(ready.begin(), ready.end(), after);
        }
      }
    }
    if (out.size() != nodes_.size()) return std::nullopt;  // cycle
    return out;
  }

 private:
  static constexpr std::uint32_t kExisting = 0xFFFFFFFFu;

  /// Inserts a node; returns its new index, or kExisting if present.
  std::uint32_t insertNode(const T& node) {
    const auto [it, inserted] =
        index_.emplace(node, static_cast<std::uint32_t>(nodes_.size()));
    if (!inserted) return kExisting;
    WFD_ENSURE_MSG(nodes_.size() < kExisting, "Digraph node limit");
    nodes_.push_back(node);
    preds_.emplace_back();
    succs_.emplace_back();
    return it->second;
  }

  /// Sorted-unique insert; returns true if newly added. The common eTOB
  /// case appends at the back (new nodes get the largest index).
  static bool insertSorted(std::vector<std::uint32_t>& list,
                           std::uint32_t value) {
    if (list.empty() || list.back() < value) {
      list.push_back(value);
      return true;
    }
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it != list.end() && *it == value) return false;
    list.insert(it, value);
    return true;
  }

  /// Translates `src` through `map`, sorts, and set-unions into `dst`.
  /// Returns how many new entries were added. `scratch` is reused
  /// between calls to avoid reallocation.
  static std::size_t mergeTranslated(std::vector<std::uint32_t>& dst,
                                     const std::vector<std::uint32_t>& src,
                                     const std::vector<std::uint32_t>& map,
                                     std::vector<std::uint32_t>& scratch) {
    scratch.clear();
    scratch.reserve(src.size());
    for (std::uint32_t s : src) scratch.push_back(map[s]);
    std::sort(scratch.begin(), scratch.end());
    if (dst.empty()) {
      dst = scratch;
      return dst.size();
    }
    // Fast path: everything in scratch is already present (common once
    // peers have exchanged graphs).
    if (std::includes(dst.begin(), dst.end(), scratch.begin(),
                      scratch.end())) {
      return 0;
    }
    std::vector<std::uint32_t> merged;
    merged.reserve(dst.size() + scratch.size());
    std::set_union(dst.begin(), dst.end(), scratch.begin(), scratch.end(),
                   std::back_inserter(merged));
    const std::size_t added = merged.size() - dst.size();
    dst = std::move(merged);
    return added;
  }

  /// Debug-only backstop for the stablePredSets fast path: an equal-
  /// length pred list must actually be the same translated set.
  static bool samePredSet(const std::vector<std::uint32_t>& dst,
                          const std::vector<std::uint32_t>& osrc,
                          const std::vector<std::uint32_t>& map) {
    std::vector<std::uint32_t> translated;
    translated.reserve(osrc.size());
    for (std::uint32_t s : osrc) translated.push_back(map[s]);
    std::sort(translated.begin(), translated.end());
    return translated == dst;
  }

  std::vector<T> neighbourValues(
      const T& node,
      const std::vector<std::vector<std::uint32_t>>& adj) const {
    std::vector<T> out;
    auto it = index_.find(node);
    if (it == index_.end()) return out;
    const auto& ids = adj[it->second];  // sorted == insertion order
    out.reserve(ids.size());
    for (std::uint32_t i : ids) out.push_back(nodes_[i]);
    return out;
  }

  std::vector<T> nodes_;
  std::unordered_map<T, std::uint32_t> index_;
  /// Sorted ascending (== insertion order of the neighbors).
  std::vector<std::vector<std::uint32_t>> preds_;
  std::vector<std::vector<std::uint32_t>> succs_;
  std::size_t edgeCount_ = 0;
};

}  // namespace wfd
