#include "scenario/scenario.h"

#include <cstdio>
#include <utility>

#include "checkers/commit_checker.h"
#include "checkers/ec_checker.h"
#include "checkers/tob_checker.h"
#include "common/ensure.h"
#include "common/strings.h"
#include "ec/ec_driver.h"
#include "ec/omega_ec.h"
#include "etob/commit_etob.h"
#include "etob/etob_automaton.h"
#include "rsm/gossip_lww.h"
#include "scenario/trace_digest.h"
#include "tob/tob_via_consensus.h"

namespace wfd {

const char* algoStackName(AlgoStack stack) {
  switch (stack) {
    case AlgoStack::kEtob:
      return "etob";
    case AlgoStack::kCommitEtob:
      return "commit-etob";
    case AlgoStack::kTobViaConsensus:
      return "tob-via-consensus";
    case AlgoStack::kGossipLww:
      return "gossip-lww";
    case AlgoStack::kOmegaEc:
      return "omega-ec";
  }
  return "?";
}

namespace {

std::unique_ptr<Automaton> makeStackAutomaton(const Scenario& s,
                                              const SimConfig& cfg,
                                              ProcessId p) {
  switch (s.stack) {
    case AlgoStack::kEtob:
      return std::make_unique<EtobAutomaton>();
    case AlgoStack::kCommitEtob:
      return std::make_unique<CommitEtobAutomaton>();
    case AlgoStack::kTobViaConsensus:
      return std::make_unique<TobViaConsensusAutomaton>(p, cfg.processCount);
    case AlgoStack::kGossipLww:
      return std::make_unique<GossipLwwStore>();
    case AlgoStack::kOmegaEc:
      // Salt the proposal stream with the seed so different seeds exercise
      // different proposal histories, deterministically.
      return std::make_unique<EcDriverAutomaton<OmegaEcAutomaton>>(
          OmegaEcAutomaton{}, binaryProposals(cfg.seed), s.ecInstances);
  }
  WFD_ENSURE_MSG(false, "unknown algorithm stack");
  return nullptr;
}

}  // namespace

ScenarioInstance instantiateScenario(const Scenario& s, std::uint64_t seed,
                                     const SimConfig& overrides) {
  SimConfig cfg = overrides;
  cfg.seed = seed;
  FailurePattern fp = s.pattern ? s.pattern(cfg.processCount)
                                : FailurePattern::noFailures(cfg.processCount);
  WFD_ENSURE_MSG(fp.size() == cfg.processCount,
                 "scenario pattern size != processCount");
  std::shared_ptr<const FailureDetector> detector =
      s.detector ? s.detector(fp)
                 : std::make_shared<OmegaFd>(fp, s.tauOmega, s.omegaMode);
  std::shared_ptr<const NetworkModel> network =
      s.network ? s.network(cfg) : nullptr;
  auto sim = std::make_unique<Simulator>(cfg, fp, std::move(detector),
                                         std::move(network));
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim->addProcess(p, makeStackAutomaton(s, cfg, p));
  }
  BroadcastLog log;
  if (s.stack != AlgoStack::kOmegaEc) {
    log = scheduleBroadcastWorkload(*sim, s.workload);
  }
  return ScenarioInstance(std::move(sim), std::move(log));
}

ScenarioInstance instantiateScenario(const Scenario& s, std::uint64_t seed) {
  return instantiateScenario(s, seed, s.config);
}

ScenarioRunResult runScenario(const Scenario& s, std::uint64_t seed) {
  ScenarioInstance inst = instantiateScenario(s, seed);
  inst.sim->run();

  ScenarioRunResult r;
  r.scenario = s.name;
  r.seed = seed;
  r.stack = algoStackName(s.stack);
  r.network = inst.sim->network().name();
  r.endTime = inst.sim->now();
  r.eventsProcessed = inst.sim->eventsProcessed();
  r.messagesSent = inst.sim->trace().messagesSent();
  r.messagesDelivered = inst.sim->trace().messagesDelivered();
  r.duplicatesSuppressed = inst.sim->duplicatesSuppressed();

  const Trace& trace = inst.sim->trace();
  const FailurePattern& fp = inst.sim->failurePattern();
  auto fail = [&r](std::string clause) { r.failures.push_back(std::move(clause)); };

  if (s.checks.broadcast || s.checks.requireStrongTob) {
    const BroadcastCheckReport rep = checkBroadcastRun(trace, inst.log, fp);
    if (!rep.validityOk) fail("broadcast: validity");
    if (!rep.agreementOk) fail("broadcast: agreement");
    if (!rep.noCreationOk) fail("broadcast: no-creation");
    if (!rep.noDuplicationOk) fail("broadcast: no-duplication");
    if (!rep.causalOrderOk) fail("broadcast: causal-order");
    r.tauHat = rep.tau;
    if (s.checks.requireStrongTob && !rep.strongTobOk()) {
      fail("broadcast: strong-tob (tau-hat=" + std::to_string(rep.tau) + ")");
    }
  }
  if (s.checks.convergence && !broadcastConverged(*inst.sim, inst.log)) {
    fail("convergence: correct processes did not agree on a complete d_i");
  }
  if (s.checks.commit) {
    const CommitCheckReport rep = checkCommitSafety(trace, fp);
    // Run-specific details stay behind " (" — the part before it is the
    // stable clause KEY the explorer's shrinker matches on (explorer.h).
    if (!rep.safetyOk()) {
      fail("commit: prefixes revoked (" + std::to_string(rep.revokedCommits) +
           ")");
    }
    if (s.checks.requireCommitProgress && rep.indications == 0) {
      fail("commit: no indications despite a stable majority");
    }
  }
  if (s.checks.ec) {
    const EcCheckReport rep = checkEcRun(trace, fp);
    if (!rep.integrityOk) fail("ec: integrity");
    if (!rep.validityOk) fail("ec: validity");
    if (!rep.terminationOk(s.ecInstances)) {
      fail("ec: termination (decided " + std::to_string(rep.decidedByAllCorrect) +
           " of " + std::to_string(s.ecInstances) + ")");
    }
    // Eventual agreement: a finite witness k̂ must fall INSIDE the decided
    // range — agreementFromK == ecInstances + 1 means the very last
    // instance still disagreed, i.e. no agreed suffix was ever observed.
    if (rep.agreementFromK > s.ecInstances) {
      fail("ec: agreement (no agreed suffix; k-hat=" +
           std::to_string(rep.agreementFromK) + " > " +
           std::to_string(s.ecInstances) + ")");
    }
  }
  if (s.checks.gossipConvergence) {
    const std::vector<ProcessId> correct = fp.correctSet();
    const auto* reference =
        correct.empty() ? nullptr
                        : dynamic_cast<const GossipLwwStore*>(
                              &inst.sim->automaton(correct.front()));
    WFD_ENSURE_MSG(reference != nullptr,
                   "gossipConvergence requires the gossip-lww stack");
    for (ProcessId p : correct) {
      const auto* replica =
          dynamic_cast<const GossipLwwStore*>(&inst.sim->automaton(p));
      if (!replica->sameTable(*reference)) {
        fail("gossip: divergence (replica " + std::to_string(p) + ")");
        break;
      }
    }
  }

  r.digest = traceDigest(trace);
  r.pass = r.failures.empty();
  return r;
}

std::string toJsonLine(const ScenarioRunResult& r) {
  std::string out = "{";
  out += "\"scenario\":\"" + r.scenario + "\"";
  out += ",\"seed\":" + std::to_string(r.seed);
  out += ",\"pass\":" + std::string(r.pass ? "true" : "false");
  out += ",\"stack\":\"" + r.stack + "\"";
  out += ",\"network\":\"" + r.network + "\"";
  out += ",\"end_time\":" + std::to_string(r.endTime);
  out += ",\"events\":" + std::to_string(r.eventsProcessed);
  out += ",\"messages_sent\":" + std::to_string(r.messagesSent);
  out += ",\"messages_delivered\":" + std::to_string(r.messagesDelivered);
  out += ",\"duplicates_suppressed\":" + std::to_string(r.duplicatesSuppressed);
  out += ",\"tau_hat\":" + std::to_string(r.tauHat);
  out += ",\"digest\":\"" + hex64(r.digest) + "\"";
  out += ",\"failures\":[";
  for (std::size_t i = 0; i < r.failures.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + r.failures[i] + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace wfd
