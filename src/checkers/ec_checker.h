// Verifiers for the eventual consensus (EC) and eventual irrevocable
// consensus (EIC) specifications over a run trace.
//
// Drivers record every proposal as a ProposalMade output and every
// response as an EcDecision / EicDecision output; the checkers replay
// those histories:
//   EC  — Termination, Integrity (always), Validity (always), Agreement
//         from some finite instance k̂ (reported).
//   EIC — Termination, Validity, eventual Integrity (no revisions from
//         some instance k̂), Agreement on final responses.
//
// Properties checked (completeness/accuracy form):
//  * Completeness (liveness): EC-Termination — every correct process of
//    the failure pattern eventually responds to every instance it
//    proposed for (reported as decidedByAllCorrect; a run passes when it
//    reaches the instance count the driver expected).
//  * Accuracy (safety): EC-Integrity — at most one response per instance
//    per process (for EIC: eventually, revisions stop at some finite
//    integrityFromK); EC-Validity — every response was proposed for that
//    instance by some process; and eventual EC-Agreement — a finite k̂
//    (agreementFromK) from which no two responses for the same instance
//    differ. The *eventual* clauses are exactly what separates EC from
//    consensus: the checker reports the k̂ witnessed instead of failing
//    pre-stabilization disagreement.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/failure_pattern.h"
#include "sim/trace.h"

namespace wfd {

struct EcCheckReport {
  bool integrityOk = true;  // at most one response per instance per process
  bool validityOk = true;   // every response was proposed for that instance
  /// Largest L such that every correct process responded to all of 1..L.
  Instance decidedByAllCorrect = 0;
  /// Smallest k̂ such that all instances >= k̂ (that anyone decided) agree.
  /// 1 means agreement held from the first instance.
  Instance agreementFromK = 1;
  std::vector<std::string> errors;

  bool terminationOk(Instance expected) const {
    return decidedByAllCorrect >= expected;
  }
};

EcCheckReport checkEcRun(const Trace& trace, const FailurePattern& pattern);

struct EicCheckReport {
  bool validityOk = true;
  /// Largest L such that every correct process responded (at least once)
  /// to all of 1..L.
  Instance decidedByAllCorrect = 0;
  /// Smallest k̂ such that no process revised any instance >= k̂.
  Instance integrityFromK = 1;
  /// True iff the FINAL responses of correct processes agree per instance.
  bool finalAgreementOk = true;
  std::vector<std::string> errors;

  bool terminationOk(Instance expected) const {
    return decidedByAllCorrect >= expected;
  }
};

EicCheckReport checkEicRun(const Trace& trace, const FailurePattern& pattern);

}  // namespace wfd
