// E6 — Extracting Omega from any detector D that solves EC
// (paper Theorem 2 necessity, Section 4 + Appendix B).
//
// Claim: running the generalized CHT reduction — DAG gossip, simulation
// over DAG stimuli, k-tags, bivalent vertex, decision gadget — every
// correct process eventually outputs the SAME CORRECT leader, for any D
// solving EC (shown for Omega histories and for ◊P-derived histories).
//
// Method: run the extractor cluster until all correct estimates agree on
// a correct process; report stabilization time, extraction rounds, and
// DAG size. The google-benchmark section times one full tree analysis.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "cht/extractor.h"

namespace wfd::bench {
namespace {

ChtConfig extractorConfig() {
  ChtConfig cfg;
  cfg.limits.maxInstance = 4;
  cfg.limits.probeSteps = 150;
  cfg.limits.walkSteps = 10;
  cfg.limits.hookSteps = 24;
  cfg.maxOwnSamples = 16;
  cfg.extractEvery = 24;
  return cfg;
}

ProcessId lastEstimate(const Trace& trace, ProcessId p) {
  ProcessId out = kNoProcess;
  for (const auto& ev : trace.outputs(p)) {
    if (const auto* est = ev.value.as<LeaderEstimate>()) out = est->leader;
  }
  return out;
}

struct Result {
  bool stabilized = false;
  ProcessId leader = kNoProcess;
  Time stabilizedAt = 0;
  std::size_t dagVertices = 0;
  std::uint64_t extractions = 0;
};

Result run(std::size_t n, std::shared_ptr<const FailureDetector> detector,
           const FailurePattern& fp, TargetFactory target, std::uint64_t seed,
           ChtConfig chtCfg = extractorConfig()) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 60000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 5;
  cfg.maxDelay = 15;
  Simulator sim(cfg, fp, std::move(detector));
  for (ProcessId p = 0; p < n; ++p) {
    sim.addProcess(p, std::make_unique<ChtExtractorAutomaton>(target, n, chtCfg));
  }
  Result r;
  r.stabilized = sim.runUntil([&](const Simulator& s) {
    const auto correct = s.failurePattern().correctSet();
    const ProcessId first = lastEstimate(s.trace(), correct.front());
    if (first == kNoProcess || !s.failurePattern().correct(first)) return false;
    for (ProcessId p : correct) {
      if (lastEstimate(s.trace(), p) != first) return false;
    }
    return true;
  });
  const auto correct = fp.correctSet();
  r.leader = lastEstimate(sim.trace(), correct.front());
  r.stabilizedAt = sim.now();
  const auto& ex =
      static_cast<const ChtExtractorAutomaton&>(sim.automaton(correct.front()));
  r.dagVertices = ex.dag().vertexCount();
  r.extractions = ex.extractionsRun();
  return r;
}

void printTable() {
  std::printf("E6: CHT leader extraction — all correct processes must\n"
              "stabilize on the same correct leader\n\n");
  Table t({"scenario", "n", "stable", "leader", "at_time", "dag_V"}, 12);

  auto scenario = [&](const char* name, std::size_t n,
                      std::shared_ptr<const FailureDetector> fd,
                      const FailurePattern& fp, TargetFactory target,
                      ChtConfig chtCfg = extractorConfig(),
                      std::uint64_t seed = 1) {
    auto r = run(n, std::move(fd), fp, std::move(target), seed, chtCfg);
    t.row({name, std::to_string(n), r.stabilized ? "yes" : "NO",
           r.leader == kNoProcess ? "-" : "p" + std::to_string(r.leader),
           std::to_string(r.stabilizedAt), std::to_string(r.dagVertices)});
  };

  {
    auto fp = FailurePattern::noFailures(2);
    scenario("omega-stable", 2,
             std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable), fp,
             omegaEcTarget());
  }
  {
    auto fp = FailurePattern::noFailures(3);
    scenario("omega-stable", 3,
             std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable), fp,
             omegaEcTarget());
  }
  {
    auto fp = FailurePattern::noFailures(2);
    scenario("omega-late", 2,
             std::make_shared<OmegaFd>(fp, 60, OmegaPreStabilization::kSplitBrain),
             fp, omegaEcTarget());
  }
  {
    auto fp = FailurePattern::noFailures(2);
    scenario("diamond-P", 2, std::make_shared<EventuallyPerfectFd>(fp, 0), fp,
             suspectBasedEcTarget());
  }
  {
    // The early leader crashes: the extracted leader must be a CORRECT
    // process (Lemmas 7/8) — the skewed probes ⊥-taint the instances the
    // crashed leader could still decide.
    auto fp = FailurePattern::crashesAt(3, {{0, 120}});
    // The tainted early instances need a larger sample/instance budget:
    // the pre-crash history must be traversable before the clean zone.
    // Extraction under crashes is budget- and schedule-sensitive (the
    // clean post-crash instance must fall inside maxInstance); these are
    // the parameters the test suite demonstrates
    // (FailureInjectionTest.ChtExtractionWithCrashedProcess).
    ChtConfig crashCfg = extractorConfig();
    crashCfg.maxOwnSamples = 20;
    scenario("leader-crash", 3,
             std::make_shared<ScriptedFd>(
                 [](ProcessId, Time t) {
                   FdValue v;
                   v.leader = t < 120 ? 0 : 1;
                   return v;
                 },
                 "crash-leader"),
             fp, omegaEcTarget(), crashCfg, /*seed=*/5);
  }
  std::printf("\n");
}

void BM_TreeAnalysisExtraction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FdDag dag;
  for (std::size_t r = 0; r < 12; ++r) {
    for (ProcessId p = 0; p < n; ++p) {
      FdValue v;
      v.leader = 0;
      dag.addSample(p, v);
    }
  }
  const ChtConfig cfg = extractorConfig();
  for (auto _ : state) {
    TreeAnalysis analysis(dag, omegaEcTarget(), n, cfg.limits);
    auto leader = analysis.extractLeader();
    benchmark::DoNotOptimize(leader);
  }
}
BENCHMARK(BM_TreeAnalysisExtraction)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_DagUnion(benchmark::State& state) {
  FdDag a, b;
  for (std::size_t r = 0; r < 40; ++r) {
    FdValue v;
    v.leader = r % 2;
    a.addSample(0, v);
    b.addSample(1, v);
  }
  for (auto _ : state) {
    FdDag merged = a;
    merged.unionWith(b);
    benchmark::DoNotOptimize(merged.vertexCount());
  }
}
BENCHMARK(BM_DagUnion);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
