// Integration tests: the paper's transformations.
//   Theorem 1:  EC ≡ ETOB   (Algorithms 1 and 2)
//   Theorem 3:  EC ≡ EIC    (Algorithms 6 and 7)
// Each transformation is run as a black box over a real inner protocol in
// a simulated environment, and the resulting stack must satisfy the
// TARGET abstraction's specification.
#include <gtest/gtest.h>

#include <memory>

#include "checkers/ec_checker.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "ec/ec_driver.h"
#include "ec/omega_ec.h"
#include "ec/transformations.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

SimConfig stackConfig(std::size_t n, std::uint64_t seed = 3) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 120000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 15;
  cfg.maxDelay = 30;
  return cfg;
}

// --- Algorithm 1: ETOB from EC ----------------------------------------------

using EtobFromEc = EcToEtobAutomaton<OmegaEcAutomaton>;

TEST(EcToEtobTest, SatisfiesEtobSpec) {
  auto cfg = stackConfig(3);
  auto fp = FailurePattern::noFailures(3);
  const Time tauOmega = 1000;
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobFromEc>(OmegaEcAutomaton{}));
  }
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 80;
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 2000 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  // Eventual stability/total order: τ̂ must be finite and post-run
  // convergence reached (checked by broadcastConverged above).
}

TEST(EcToEtobTest, StableOmegaStillConverges) {
  auto cfg = stackConfig(4);
  auto fp = FailurePattern::noFailures(4);
  auto omega = std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 4; ++p) {
    sim.addProcess(p, std::make_unique<EtobFromEc>(OmegaEcAutomaton{}));
  }
  BroadcastWorkload w;
  w.perProcess = 5;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil(
      [&](const Simulator& s) { return broadcastConverged(s, log); }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(EcToEtobTest, MinorityCorrectEnvironment) {
  auto cfg = stackConfig(5);
  auto fp = Environments::staggeredCrashes(5, 3, 600, 50);
  auto omega = std::make_shared<OmegaFd>(fp, 900,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 5; ++p) {
    sim.addProcess(p, std::make_unique<EtobFromEc>(OmegaEcAutomaton{}));
  }
  BroadcastWorkload w;
  w.perProcess = 3;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 3000 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
}

// --- Algorithm 2: EC from ETOB ----------------------------------------------

using EcFromEtob = EtobToEcAutomaton<EtobAutomaton>;
using EcFromEtobDriver = EcDriverAutomaton<EcFromEtob>;

TEST(EtobToEcTest, SatisfiesEcSpec) {
  auto cfg = stackConfig(3);
  auto fp = FailurePattern::noFailures(3);
  const Time tauOmega = 500;
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  const Instance maxInstances = 10;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EcFromEtobDriver>(
                          EcFromEtob(EtobAutomaton{}), binaryProposals(17),
                          maxInstances));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return checkEcRun(s.trace(), s.failurePattern()).decidedByAllCorrect >=
           maxInstances;
  }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
  EXPECT_LE(report.agreementFromK, maxInstances);
}

// --- Full circle: EC -> ETOB -> EC ------------------------------------------

using RoundTripEc = EtobToEcAutomaton<EcToEtobAutomaton<OmegaEcAutomaton>>;
using RoundTripDriver = EcDriverAutomaton<RoundTripEc>;

TEST(RoundTripTest, EcThroughEtobBackToEcStillSatisfiesEcSpec) {
  auto cfg = stackConfig(3);
  cfg.maxTime = 200000;
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 400,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  const Instance maxInstances = 6;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(
        p, std::make_unique<RoundTripDriver>(
               RoundTripEc(EcToEtobAutomaton<OmegaEcAutomaton>(OmegaEcAutomaton{})),
               binaryProposals(29), maxInstances));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return checkEcRun(s.trace(), s.failurePattern()).decidedByAllCorrect >=
           maxInstances;
  }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
  EXPECT_LE(report.agreementFromK, maxInstances);
}

// --- Algorithms 6 & 7: EIC --------------------------------------------------

using EicFromEc = EcToEicAutomaton<OmegaEcAutomaton>;
using EicDriver = EicDriverAutomaton<EicFromEc>;

TEST(EcToEicTest, SatisfiesEicSpec) {
  auto cfg = stackConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 300,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  const Instance maxInstances = 30;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EicDriver>(EicFromEc(OmegaEcAutomaton{}),
                                                  binaryProposals(41),
                                                  maxInstances));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return checkEicRun(s.trace(), s.failurePattern()).decidedByAllCorrect >=
           maxInstances;
  }));
  const auto report = checkEicRun(sim.trace(), fp);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
  EXPECT_TRUE(report.finalAgreementOk)
      << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_LE(report.integrityFromK, maxInstances + 1);
}

using EcFromEic = EicToEcAutomaton<EcToEicAutomaton<OmegaEcAutomaton>>;
using EcFromEicDriver = EcDriverAutomaton<EcFromEic>;

TEST(EicToEcTest, RoundTripSatisfiesEcSpec) {
  auto cfg = stackConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 300,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  const Instance maxInstances = 20;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(
        p, std::make_unique<EcFromEicDriver>(
               EcFromEic(EcToEicAutomaton<OmegaEcAutomaton>(OmegaEcAutomaton{})),
               binaryProposals(53), maxInstances));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return checkEcRun(s.trace(), s.failurePattern()).decidedByAllCorrect >=
           maxInstances;
  }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
  EXPECT_LE(report.agreementFromK, maxInstances);
}

// --- Parameterized sweep over seeds for the two main stacks ------------------

class StackSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackSweepTest, EcToEtobStackConverges) {
  const std::uint64_t seed = GetParam();
  auto cfg = stackConfig(3, seed);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 700,
                                         OmegaPreStabilization::kRotating);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobFromEc>(OmegaEcAutomaton{}));
  }
  BroadcastWorkload w;
  w.perProcess = 3;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 2500 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackSweepTest,
                         ::testing::Values(1, 5, 9, 13, 21, 34));

}  // namespace
}  // namespace wfd
