// Scenario subsystem tests: the whole catalog runs green under its own
// checker sets, every (scenario, seed) pair is reproducible digest-for-
// digest, and the uniform-delay NetworkModel replays pre-refactor traces
// bit-for-bit (golden digests recorded against the pre-NetworkModel
// Simulator at the commit that introduced the refactor).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "checkers/workload.h"
#include "common/json.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "scenario/scenario.h"
#include "scenario/trace_digest.h"
#include "sim/simulator.h"

namespace wfd {
namespace {

// --- Catalog hygiene --------------------------------------------------------

TEST(ScenarioCatalogTest, HasAtLeastTwelveEntriesWithUniqueNames) {
  const auto& catalog = scenarioCatalog();
  EXPECT_GE(catalog.size(), 12u);
  std::set<std::string> names;
  for (const Scenario& s : catalog) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate: " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_GE(s.config.processCount, 2u) << s.name;
  }
}

TEST(ScenarioCatalogTest, FindScenarioRoundTrips) {
  for (const Scenario& s : scenarioCatalog()) {
    const Scenario* found = findScenario(s.name);
    ASSERT_NE(found, nullptr) << s.name;
    EXPECT_EQ(found->name, s.name);
  }
  EXPECT_EQ(findScenario("no-such-scenario"), nullptr);
}

TEST(ScenarioCatalogTest, CatalogSpansMultipleNetworkModelsAndStacks) {
  std::set<std::string> networks;
  std::set<std::string> stacks;
  for (const Scenario& s : scenarioCatalog()) {
    ScenarioInstance inst = instantiateScenario(s, 1);
    networks.insert(inst.sim->network().name());
    stacks.insert(algoStackName(s.stack));
  }
  // Uniform + at least asymmetric, partition, chaos and clock-skew shapes.
  EXPECT_GE(networks.size(), 5u);
  EXPECT_GE(stacks.size(), 4u);
}

// --- Full catalog sweep: every entry is a regression test -------------------

class CatalogSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogSweepTest, PassesItsCheckerSet) {
  const Scenario* s = findScenario(GetParam());
  ASSERT_NE(s, nullptr);
  for (std::uint64_t seed : {1ull, 2ull}) {
    const ScenarioRunResult r = runScenario(*s, seed);
    EXPECT_TRUE(r.pass) << "seed " << seed << ": "
                        << (r.failures.empty() ? "?" : r.failures.front());
  }
}

std::vector<std::string> allScenarioNames() {
  std::vector<std::string> names;
  for (const Scenario& s : scenarioCatalog()) {
    // Big-n entries are covered once per build by test_large_cluster
    // instead of ~10x here and under the sanitizer presets.
    if (isLargeClusterScenario(s)) continue;
    names.push_back(s.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, CatalogSweepTest,
                         ::testing::ValuesIn(allScenarioNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- Seed determinism: (scenario, seed) => digest is a function -------------

class SeedDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SeedDeterminismTest, SameSeedSameDigestTwice) {
  const Scenario* s = findScenario(GetParam());
  ASSERT_NE(s, nullptr);
  const ScenarioRunResult a = runScenario(*s, 5);
  const ScenarioRunResult b = runScenario(*s, 5);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.endTime, b.endTime);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  EXPECT_EQ(a.messagesSent, b.messagesSent);
  EXPECT_EQ(a.duplicatesSuppressed, b.duplicatesSuppressed);
}

INSTANTIATE_TEST_SUITE_P(All, SeedDeterminismTest,
                         ::testing::ValuesIn(allScenarioNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SeedDeterminismTest, DifferentSeedsPerturbTheRun) {
  // Spot-check on a randomness-heavy entry: distinct seeds must explore
  // distinct schedules (deterministically so — this is a fixed property
  // of the catalog, not a probabilistic assertion).
  const Scenario* s = findScenario("dup-reorder-storm");
  ASSERT_NE(s, nullptr);
  EXPECT_NE(runScenario(*s, 1).digest, runScenario(*s, 2).digest);
}

// --- Golden equivalence: the uniform model replays legacy traces ------------
//
// The three digests below were recorded by running these EXACT setups
// against the pre-NetworkModel Simulator (whose deliveryTime drew
// rng.between(minDelay, maxDelay) inline). The refactored simulator must
// reproduce them bit-for-bit, both through the default-constructed model
// and through an explicitly supplied UniformDelayModel.
//
// The constants are libstdc++ values: run schedules depend on
// std::uniform_int_distribution, whose algorithm is implementation-
// defined, so the same setups produce different (equally valid) traces
// on libc++/MSVC. The suite is guarded accordingly — determinism and
// default-vs-explicit-model equivalence remain covered everywhere by
// the SeedDeterminismTest suite above.
#if defined(__GLIBCXX__)

// Re-pinned for the eTOB hot-path rebuild (frontier auto-causal deps +
// delta-encoded promotes): all three runs use the eTOB stack, whose wire
// weights — folded into traceDigest — legitimately changed; schedules and
// delivery sequences are unchanged (the non-eTOB scale-matrix pins in
// test_large_cluster.cpp did not move).
constexpr std::uint64_t kGoldenA = 0x3df30e170cfc9d4bULL;
constexpr std::uint64_t kGoldenB = 0xf54efcd16ccb6313ULL;
constexpr std::uint64_t kGoldenC = 0x862c75d5e8ac12dfULL;

std::uint64_t runGoldenA(std::shared_ptr<const NetworkModel> model) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = 42;
  cfg.maxTime = 20000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = FailurePattern::noFailures(3);
  auto omega =
      std::make_shared<OmegaFd>(fp, 1500, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega, std::move(model));
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 50;
  w.perProcess = 6;
  scheduleBroadcastWorkload(sim, w);
  sim.run();
  return traceDigest(sim.trace());
}

TEST(GoldenTraceTest, DefaultModelReproducesPreRefactorRun) {
  EXPECT_EQ(runGoldenA(nullptr), kGoldenA);
}

TEST(GoldenTraceTest, ExplicitUniformModelReproducesPreRefactorRun) {
  EXPECT_EQ(runGoldenA(std::make_shared<UniformDelayModel>(20, 40, false)),
            kGoldenA);
}

TEST(GoldenTraceTest, FixedDelayMinorityCrashReproduced) {
  SimConfig cfg;
  cfg.processCount = 5;
  cfg.seed = 7;
  cfg.maxTime = 15000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 30;
  cfg.maxDelay = 50;
  cfg.fixedDelay = true;
  auto fp = Environments::minorityCrash(5, 1200);
  auto omega =
      std::make_shared<OmegaFd>(fp, 2000, OmegaPreStabilization::kRotating);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 5; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  BroadcastWorkload w;
  w.start = 200;
  w.interval = 60;
  w.perProcess = 4;
  scheduleBroadcastWorkload(sim, w);
  sim.run();
  EXPECT_EQ(traceDigest(sim.trace()), kGoldenB);
}

TEST(GoldenTraceTest, LegacyLinkDisruptionReproduced) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = 11;
  cfg.maxTime = 12000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = FailurePattern::noFailures(3);
  auto omega =
      std::make_shared<OmegaFd>(fp, 800, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  LinkDisruption d;
  d.start = 500;
  d.end = 2500;
  d.affects = [](ProcessId from, ProcessId to) { return from == 2 || to == 2; };
  sim.addDisruption(d);
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 50;
  w.perProcess = 5;
  scheduleBroadcastWorkload(sim, w);
  sim.run();
  EXPECT_EQ(traceDigest(sim.trace()), kGoldenC);
}

#endif  // defined(__GLIBCXX__)

// --- Exactly-once under duplicating models ----------------------------------

TEST(ScenarioRunTest, DuplicatingModelsSuppressAtTheBoundary) {
  const Scenario* s = findScenario("dup-reorder-storm");
  ASSERT_NE(s, nullptr);
  const ScenarioRunResult r = runScenario(*s, 3);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "?" : r.failures.front());
  // The network duplicated aggressively; none of it reached an automaton
  // twice (r.pass already covers no-duplication; this pins the mechanism).
  EXPECT_GT(r.duplicatesSuppressed, 0u);
}

TEST(ScenarioRunTest, ToJsonLineEscapesHostileStrings) {
  // Failure clauses and names are arbitrary strings; the emitter must
  // produce valid JSON for all of them (they route through the common
  // json.h writer) while keeping the documented key ORDER.
  ScenarioRunResult r;
  r.scenario = "evil \"name\" with \\ and \n";
  r.stack = "etob";
  r.network = "uniform";
  r.failures.push_back("clause with \"quote\"");
  const std::string line = toJsonLine(r);
  auto parsed = Json::parse(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->find("scenario")->asString(), r.scenario);
  EXPECT_EQ(parsed->find("failures")->items().at(0).asString(),
            "clause with \"quote\"");
  EXPECT_TRUE(line.rfind("{\"scenario\":", 0) == 0);  // key order kept
}

TEST(ScenarioRunTest, InstantiateHonoursConfigOverrides) {
  const Scenario* s = findScenario("stable-leader");
  ASSERT_NE(s, nullptr);
  SimConfig cfg = s->config;
  cfg.maxTime = 500;
  ScenarioInstance inst = instantiateScenario(*s, 9, cfg);
  inst.sim->run();
  EXPECT_LE(inst.sim->now(), 500u);
  EXPECT_EQ(inst.sim->config().seed, 9u);
}

}  // namespace
}  // namespace wfd
