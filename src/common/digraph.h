// Generic small directed graph keyed by node values.
//
// Used by the ETOB causality graph (nodes = application messages) and by
// tests. Nodes are stored in insertion order, which gives every algorithm
// on top a deterministic iteration order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ensure.h"

namespace wfd {

/// Directed graph over values of type T (T must be hashable and
/// equality-comparable). Parallel edges are collapsed; self-loops rejected.
template <typename T>
class Digraph {
 public:
  /// Adds a node if not present. Returns true if newly inserted.
  bool addNode(const T& node) {
    if (index_.contains(node)) return false;
    index_.emplace(node, nodes_.size());
    nodes_.push_back(node);
    preds_.emplace_back();
    succs_.emplace_back();
    return true;
  }

  /// Adds an edge from -> to (inserting missing endpoints).
  /// Returns true if the edge is new. Self-loops are invariant errors.
  bool addEdge(const T& from, const T& to) {
    WFD_ENSURE_MSG(!(from == to), "self-loop in Digraph");
    addNode(from);
    addNode(to);
    const std::size_t f = index_.at(from);
    const std::size_t t = index_.at(to);
    if (!succs_[f].insert(t).second) return false;
    preds_[t].insert(f);
    ++edgeCount_;
    return true;
  }

  bool hasNode(const T& node) const { return index_.contains(node); }

  bool hasEdge(const T& from, const T& to) const {
    auto f = index_.find(from);
    auto t = index_.find(to);
    if (f == index_.end() || t == index_.end()) return false;
    return succs_[f->second].contains(t->second);
  }

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t edgeCount() const { return edgeCount_; }

  /// Nodes in insertion order.
  const std::vector<T>& nodes() const { return nodes_; }

  /// Predecessor values of a node, in insertion order of the predecessors.
  std::vector<T> predecessors(const T& node) const {
    return neighbourValues(node, preds_);
  }

  /// Successor values of a node, in insertion order of the successors.
  std::vector<T> successors(const T& node) const {
    return neighbourValues(node, succs_);
  }

  /// Nodes with no outgoing edge (causally maximal), in insertion order.
  std::vector<T> sinks() const {
    std::vector<T> out;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (succs_[i].empty()) out.push_back(nodes_[i]);
    }
    return out;
  }

  /// Merges all nodes and edges of another graph into this one.
  void unionWith(const Digraph& other) {
    for (const T& n : other.nodes_) addNode(n);
    for (std::size_t f = 0; f < other.nodes_.size(); ++f) {
      for (std::size_t t : other.succs_[f]) {
        addEdge(other.nodes_[f], other.nodes_[t]);
      }
    }
  }

  /// True iff `to` is reachable from `from` through one or more edges.
  bool reaches(const T& from, const T& to) const {
    auto f = index_.find(from);
    auto t = index_.find(to);
    if (f == index_.end() || t == index_.end()) return false;
    std::vector<std::size_t> stack{f->second};
    std::unordered_set<std::size_t> seen;
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      for (std::size_t nxt : succs_[cur]) {
        if (nxt == t->second) return true;
        if (seen.insert(nxt).second) stack.push_back(nxt);
      }
    }
    return false;
  }

  /// Kahn topological sort with a caller-supplied deterministic tie-break
  /// (`less(a, b)` orders ready nodes). Returns nullopt if the graph has a
  /// cycle.
  template <typename Less>
  std::optional<std::vector<T>> topoSort(Less less) const {
    std::vector<std::size_t> indegree(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) indegree[i] = preds_[i].size();
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (indegree[i] == 0) ready.push_back(i);
    }
    auto idxLess = [&](std::size_t a, std::size_t b) {
      return less(nodes_[a], nodes_[b]);
    };
    std::vector<T> out;
    out.reserve(nodes_.size());
    while (!ready.empty()) {
      auto it = std::min_element(ready.begin(), ready.end(), idxLess);
      const std::size_t cur = *it;
      ready.erase(it);
      out.push_back(nodes_[cur]);
      for (std::size_t nxt : succs_[cur]) {
        if (--indegree[nxt] == 0) ready.push_back(nxt);
      }
    }
    if (out.size() != nodes_.size()) return std::nullopt;  // cycle
    return out;
  }

 private:
  std::vector<T> neighbourValues(
      const T& node, const std::vector<std::unordered_set<std::size_t>>& adj) const {
    std::vector<T> out;
    auto it = index_.find(node);
    if (it == index_.end()) return out;
    std::vector<std::size_t> ids(adj[it->second].begin(), adj[it->second].end());
    std::sort(ids.begin(), ids.end());  // insertion order
    out.reserve(ids.size());
    for (std::size_t i : ids) out.push_back(nodes_[i]);
    return out;
  }

  std::vector<T> nodes_;
  std::unordered_map<T, std::size_t> index_;
  std::vector<std::unordered_set<std::size_t>> preds_;
  std::vector<std::unordered_set<std::size_t>> succs_;
  std::size_t edgeCount_ = 0;
};

}  // namespace wfd
