// Causal chat: replies never appear before the message they answer —
// even while the leader election is split-brain (paper §5, property (3):
// TOB-Causal-Order costs no extra failure-detector power).
//
// Four users chat through an ETOB-replicated room, each through the
// facade Client of "their" replica. Every reply declares its parent in
// C(m) — including the "client session" case where a user read the
// parent at one replica and replies through another replica that has not
// received the parent yet (Algorithm 5's causality graph buffers the
// reply until the parent arrives).
#include <cstdio>
#include <limits>
#include <map>
#include <string>

#include "api/cluster.h"
#include "checkers/tob_checker.h"
#include "common/ensure.h"

using namespace wfd;

namespace {

constexpr MsgId kNoReply = std::numeric_limits<MsgId>::max();

struct ChatLine {
  ProcessId author;
  std::string text;
  MsgId id;
  MsgId replyTo;  // kNoReply = root message
};

}  // namespace

int main() {
  // Split-brain the whole conversation; stabilize only at t=5000.
  ClusterSpec spec;
  spec.stack = AlgoStack::kEtob;
  spec.config.processCount = 4;
  spec.config.maxTime = 20000;
  spec.config.timeoutPeriod = 10;
  spec.config.minDelay = 20;
  spec.config.maxDelay = 40;
  spec.tauOmega = 5000;
  spec.omegaMode = OmegaPreStabilization::kSplitBrain;
  spec.workload.perProcess = 0;  // the chat lines below are the workload
  Cluster cluster(spec, /*seed=*/11);

  // The conversation: replies follow their parents by a few ticks only —
  // much less than a link delay, so the replying replica usually has NOT
  // yet received the parent when the reply is broadcast. The facade
  // allocates ids as (author, per-author sequence), which is exactly the
  // scheme the table below references.
  std::vector<ChatLine> lines = {
      {0, "anyone up for lunch?", makeMsgId(0, 0), kNoReply},
      {1, "yes! where?", makeMsgId(1, 0), makeMsgId(0, 0)},
      {2, "the usual place", makeMsgId(2, 0), makeMsgId(1, 0)},
      {3, "count me in", makeMsgId(3, 0), makeMsgId(1, 0)},
      {0, "12:30 then", makeMsgId(0, 1), makeMsgId(2, 0)},
      {1, "see you there", makeMsgId(1, 1), makeMsgId(0, 1)},
  };
  Time at = 200;
  for (const ChatLine& line : lines) {
    std::vector<MsgId> deps;
    if (line.replyTo != kNoReply) deps.push_back(line.replyTo);
    const MsgId id =
        cluster.client(line.author).submitAt(at, {line.id}, std::move(deps));
    WFD_ENSURE_MSG(id == line.id, "facade id allocation matches the table");
    at += 5;  // replies fired 5 ticks apart — far below the 20..40 delays
  }

  cluster.runUntil([&](const Simulator& s) {
    for (ProcessId p = 0; p < 4; ++p) {
      if (s.trace().currentDelivered(p).size() != lines.size()) return false;
    }
    return true;
  });

  std::map<MsgId, const ChatLine*> byId;
  for (const ChatLine& line : lines) byId[line.id] = &line;

  std::printf("== Causal chat over ETOB (split-brain Omega until t=5000) ==\n");
  for (ProcessId p = 0; p < 4; ++p) {
    std::printf("\nroom as replica p%zu sees it:\n", p);
    for (MsgId id : cluster.client(p).delivered()) {
      const ChatLine* line = byId.at(id);
      std::printf("  <user%zu> %s\n", line->author, line->text.c_str());
    }
  }

  const auto report = checkBroadcastRun(cluster.sim().trace(), cluster.log(),
                                        cluster.pattern());
  std::printf("\ncausal order held in every snapshot at every replica: %s\n",
              report.causalOrderOk ? "YES" : "NO");
  std::printf("(checked over %zu recorded delivery-sequence versions)\n",
              [&] {
                std::size_t n = 0;
                for (ProcessId p = 0; p < 4; ++p) {
                  n += cluster.sim().trace().deliverySnapshots(p).size();
                }
                return n;
              }());
  return report.causalOrderOk ? 0 : 1;
}
