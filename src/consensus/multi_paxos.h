// The strongly consistent baseline: multi-instance single-decree Paxos
// driven by Omega, requiring majority quorums (the role Sigma plays in
// the paper's comparison — here quorums are hard-coded majorities, which
// is how Sigma is realized in a majority-correct environment).
//
// Latency shape (benched in E1): with a stable prepared leader, committing
// a client message costs three communication steps — submit -> leader,
// leader accept -> acceptors, acceptors accepted -> everyone — matching
// Lamport's lower bound for strong consensus [22], versus ETOB's two.
//
// The engine is a pure value-type state machine: message in, outbox out.
// The TOB layer (src/tob) owns what values get proposed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd {

/// Totally ordered ballot; ballot b of proposer p is b = round * n + p,
/// so ballots are unique per proposer. 0 means "none".
using Ballot = std::uint64_t;

struct PaxosPrepareMsg {
  Ballot ballot = 0;
};
/// Unicast reply to a prepare: the acceptor's promise plus everything it
/// has ever accepted (per instance) so the proposer adopts constrained
/// values.
struct PaxosPromiseMsg {
  Ballot ballot = 0;
  std::map<Instance, std::pair<Ballot, Value>> accepted;
};
struct PaxosAcceptMsg {
  Ballot ballot = 0;
  Instance instance = 0;
  Value value;
};
/// Broadcast by acceptors so every process learns decisions directly.
struct PaxosAcceptedMsg {
  Ballot ballot = 0;
  Instance instance = 0;
  Value value;
};
/// Unicast rejection of a stale prepare or accept: carries the acceptor's
/// promised ballot so the proposer can abandon its dead ballot and
/// re-prepare above it. Without nacks a proposer whose ballot was
/// overtaken mid-reign keeps believing it is prepared while every accept
/// it sends is silently ignored — a permanent stall the randomized
/// explorer (wfd_explore) surfaced under pre-stabilization leader churn.
struct PaxosNackMsg {
  Ballot promised = 0;
};

/// Per-process multi-Paxos engine (proposer + acceptor + learner).
class MultiPaxosEngine {
 public:
  struct Outbox {
    /// kBroadcast target means send to every process.
    std::vector<std::pair<ProcessId, Payload>> sends;
    /// Newly learned decisions.
    std::vector<std::pair<Instance, Value>> decisions;
  };

  MultiPaxosEngine(ProcessId self, std::size_t processCount);

  /// Leader-side driver, called on every λ-step. While `isLeader`, makes
  /// sure a prepare phase for an owned ballot is running or complete
  /// (re-issuing the prepare periodically until promised by a majority).
  void tick(bool isLeader, Outbox& out);

  /// True iff this process holds a majority-promised ballot and may
  /// propose directly (the multi-Paxos fast path).
  bool canPropose() const { return prepared_; }

  /// Proposes a value for an instance (requires canPropose()). If the
  /// prepare phase revealed an accepted value for this instance, that
  /// value is proposed instead (Paxos safety).
  void propose(Instance instance, Value value, Outbox& out);

  /// Routes one Paxos message; fills the outbox with replies/decisions.
  /// Returns false if the payload is not a Paxos message.
  bool onMessage(ProcessId from, const Payload& msg, Outbox& out);

  bool decided(Instance instance) const { return decisions_.contains(instance); }
  const Value* decision(Instance instance) const;
  /// Largest L such that instances 1..L are all decided.
  Instance contiguousDecided() const;
  /// True iff this proposer has an accept in flight for the instance.
  bool proposalInFlight(Instance instance) const {
    return proposedByMe_.contains(instance) && !decided(instance);
  }

 private:
  std::size_t majority() const { return processCount_ / 2 + 1; }
  /// Tears down all proposer-side reign state (shared by leadership loss
  /// and nack-driven ballot abandonment — one site to extend).
  void abandonReign();
  Ballot ownBallot(std::uint64_t round) const {
    return round * processCount_ + self_ + 1;  // +1 keeps 0 as "none"
  }

  ProcessId self_;
  std::size_t processCount_;

  // --- proposer ---
  Ballot myBallot_ = 0;
  bool prepared_ = false;
  std::set<ProcessId> promisers_;
  /// Highest (ballot, value) accepted per instance, learned from promises;
  /// constrains what this proposer may propose.
  std::map<Instance, std::pair<Ballot, Value>> constrained_;
  std::set<Instance> proposedByMe_;
  std::uint64_t round_ = 0;

  // --- acceptor ---
  Ballot promisedBallot_ = 0;
  std::map<Instance, std::pair<Ballot, Value>> accepted_;

  // --- learner ---
  /// votes_[instance][ballot] = acceptors seen.
  std::map<Instance, std::map<Ballot, std::set<ProcessId>>> votes_;
  std::map<Instance, Value> decisions_;
};

}  // namespace wfd
