#include "shard/hash_ring.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {

namespace {

// Domain tags keep node placements and key positions in disjoint hash
// families even when a node id happens to equal a key.
constexpr std::uint64_t kPointTag = 0x706f696e74ULL;  // "point"
constexpr std::uint64_t kKeyTag = 0x6b6579ULL;        // "key"

}  // namespace

ConsistentHashRing::ConsistentHashRing() : ConsistentHashRing(Config{}) {}

ConsistentHashRing::ConsistentHashRing(Config config)
    : config_(std::move(config)) {
  WFD_ENSURE_MSG(config_.virtualNodes > 0,
                 "a ring needs at least one point per node");
}

void ConsistentHashRing::addNode(std::uint32_t node) {
  WFD_ENSURE_MSG(!contains(node), "node is already on the ring");
  for (std::size_t v = 0; v < config_.virtualNodes; ++v) {
    // splitmix64 finalizer on top of the FNV fold: raw FNV-1a of short
    // word streams leaves enough low-bit correlation across consecutive
    // v that 64 points per node miss the 1.3 max/mean balance bound.
    const std::uint64_t pos =
        splitmix64(fnv1a64Words({kPointTag, config_.seed, node, v}));
    points_.emplace_back(pos, node);
  }
  std::sort(points_.begin(), points_.end());
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), node), node);
}

bool ConsistentHashRing::removeNode(std::uint32_t node) {
  if (!contains(node)) return false;
  WFD_ENSURE_MSG(nodes_.size() > 1, "cannot remove the last ring node");
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node](const Point& p) {
                                 return p.second == node;
                               }),
                points_.end());
  nodes_.erase(std::lower_bound(nodes_.begin(), nodes_.end(), node));
  return true;
}

bool ConsistentHashRing::contains(std::uint32_t node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

std::uint64_t ConsistentHashRing::keyPosition(std::uint64_t key) const {
  return splitmix64(fnv1a64Words({kKeyTag, config_.seed, key}));
}

std::uint32_t ConsistentHashRing::ownerOf(std::uint64_t key) const {
  WFD_ENSURE_MSG(!points_.empty(), "ownerOf on an empty ring");
  const std::uint64_t pos = keyPosition(key);
  // First point with position > pos ("clockwise of"), wrapping to the
  // lowest point past the top of the ring.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), pos,
      [](std::uint64_t p, const Point& pt) { return p < pt.first; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

std::vector<std::uint32_t> ConsistentHashRing::ownersOf(
    std::uint64_t key, std::size_t count) const {
  WFD_ENSURE_MSG(!points_.empty(), "ownersOf on an empty ring");
  std::vector<std::uint32_t> owners;
  const std::size_t want = std::min(count, nodes_.size());
  if (want == 0) return owners;
  const std::uint64_t pos = keyPosition(key);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), pos,
      [](std::uint64_t p, const Point& pt) { return p < pt.first; });
  // Walk clockwise collecting distinct nodes; one full lap visits every
  // node, so the loop is bounded by pointCount().
  for (std::size_t seen = 0; seen < points_.size() && owners.size() < want;
       ++seen, ++it) {
    if (it == points_.end()) it = points_.begin();
    const std::uint32_t node = it->second;
    if (std::find(owners.begin(), owners.end(), node) == owners.end()) {
      owners.push_back(node);
    }
  }
  return owners;
}

}  // namespace wfd
