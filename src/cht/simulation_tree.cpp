#include "cht/simulation_tree.h"

#include <algorithm>

#include "common/ensure.h"
#include "ec/ec_types.h"

namespace wfd {

SimConfigState::SimConfigState(const TargetFactory& factory,
                               std::size_t processCount) {
  procs_.reserve(processCount);
  for (ProcessId p = 0; p < processCount; ++p) {
    Proc proc;
    proc.automaton = factory(p, processCount);
    procs_.push_back(std::move(proc));
  }
}

SimConfigState::SimConfigState(const SimConfigState& other)
    : buffer_(other.buffer_),
      nextUid_(other.nextUid_),
      depth_(other.depth_),
      lastVertex_(other.lastVertex_),
      responses_(other.responses_),
      respondedBy_(other.respondedBy_),
      disagreement_(other.disagreement_) {
  procs_.reserve(other.procs_.size());
  for (const Proc& p : other.procs_) {
    Proc copy;
    copy.automaton = p.automaton->clone();
    copy.proposed = p.proposed;
    copy.pendingPropose = p.pendingPropose;
    copy.lastDagK = p.lastDagK;
    procs_.push_back(std::move(copy));
  }
}

bool SimConfigState::hasPendingMessage(ProcessId p) const {
  return std::any_of(buffer_.begin(), buffer_.end(),
                     [p](const Pending& m) { return m.to == p; });
}

std::uint64_t SimConfigState::oldestMessageUid(ProcessId p) const {
  std::uint64_t best = 0;
  for (const Pending& m : buffer_) {
    if (m.to == p && (best == 0 || m.uid < best)) best = m.uid;
  }
  return best;
}

const std::set<std::uint64_t>& SimConfigState::responses(Instance k) const {
  static const std::set<std::uint64_t> kEmpty;
  auto it = responses_.find(k);
  return it == responses_.end() ? kEmpty : it->second;
}

bool SimConfigState::disagreement(Instance k) const {
  return disagreement_.contains(k);
}

void SimConfigState::advanceDagCursor(ProcessId q, std::uint64_t minK) {
  procs_[q].lastDagK = std::max(procs_[q].lastDagK, minK);
}

bool SimConfigState::allResponded(Instance k,
                                  const std::vector<ProcessId>& procs) const {
  auto it = respondedBy_.find(k);
  if (it == respondedBy_.end()) return false;
  for (ProcessId p : procs) {
    if (!it->second.contains(p)) return false;
  }
  return true;
}

void SimConfigState::apply(const FdDag& dag, const StepDescriptor& step,
                           Instance maxInstance) {
  Proc& proc = procs_[step.proc];
  const DagVertex& vertex = dag.vertex(step.vertexIdx);
  WFD_ENSURE(vertex.q == step.proc);
  WFD_ENSURE(vertex.k > proc.lastDagK);

  StepContext ctx;
  ctx.now = ++depth_;
  ctx.self = step.proc;
  ctx.processCount = procs_.size();
  ctx.fd = vertex.d;

  Effects fx;
  switch (step.action) {
    case StepAction::kProposeZero:
    case StepAction::kProposeOne: {
      WFD_ENSURE(proc.pendingPropose);
      const std::uint64_t v = step.action == StepAction::kProposeOne ? 1 : 0;
      proc.pendingPropose = false;
      proc.proposed += 1;
      proc.automaton->onInput(ctx, Payload::of(ProposeInput{proc.proposed, Value{v}}),
                              fx);
      break;
    }
    case StepAction::kDeliverOldest: {
      auto it = std::find_if(buffer_.begin(), buffer_.end(), [&](const Pending& m) {
        return m.to == step.proc && m.uid == step.msgUid;
      });
      WFD_ENSURE_MSG(it != buffer_.end(), "hook step consumed a vanished message");
      Pending msg = std::move(*it);
      buffer_.erase(it);
      proc.automaton->onMessage(ctx, msg.from, msg.payload, fx);
      break;
    }
    case StepAction::kLambda:
      proc.automaton->onTimeout(ctx, fx);
      break;
  }
  proc.lastDagK = vertex.k;
  lastVertex_ = step.vertexIdx;

  // Apply effects: sends into the buffer; EC decisions into the response
  // history (and arm the next proposal, the paper's "as soon as").
  for (const OutboundMsg& out : fx.sends()) {
    const auto push = [&](ProcessId dest) {
      buffer_.push_back(Pending{dest, step.proc, out.payload, nextUid_++});
    };
    if (out.to == kBroadcast) {
      for (ProcessId dest = 0; dest < procs_.size(); ++dest) push(dest);
    } else {
      push(out.to);
    }
  }
  for (const Payload& out : fx.outputs()) {
    const auto* decision = out.as<EcDecision>();
    if (decision == nullptr) continue;
    const std::uint64_t value = decision->value.empty() ? 0 : decision->value[0];
    auto& vals = responses_[decision->instance];
    vals.insert(value);
    respondedBy_[decision->instance].insert(step.proc);
    if (vals.size() > 1) disagreement_.insert(decision->instance);
    if (decision->instance == proc.proposed && proc.proposed < maxInstance) {
      proc.pendingPropose = true;
    }
  }
}

// ---------------------------------------------------------------------------

TreeAnalysis::TreeAnalysis(const FdDag& dag, TargetFactory factory,
                           std::size_t processCount, TreeLimits limits)
    : dag_(dag),
      reach_(dag),
      factory_(std::move(factory)),
      processCount_(processCount),
      limits_(limits) {
  perProc_.resize(processCount_);
  maxK_.assign(processCount_, 0);
  for (std::size_t i : dag_.canonicalOrder()) {
    const ProcessId q = dag_.vertex(i).q;
    if (q < processCount_) {
      perProc_[q].push_back(i);
      maxK_[q] = std::max(maxK_[q], dag_.vertex(i).k);
    }
  }
  for (ProcessId p = 0; p < processCount_; ++p) {
    if (!perProc_[p].empty()) active_.push_back(p);
  }
}

std::optional<std::size_t> TreeAnalysis::eligibleVertex(
    const SimConfigState& config, ProcessId q, const FdValue* differentFrom) const {
  // Smallest (canonical order) vertex of q with a fresh query index,
  // reachable from the schedule's last vertex. perProc_ is sorted by
  // (k, q, d), so the first match is the canonical choice.
  for (std::size_t i : perProc_[q]) {
    const DagVertex& v = dag_.vertex(i);
    if (v.k <= config.lastDagK(q)) continue;
    if (config.lastVertex().has_value() && *config.lastVertex() != i &&
        !reach_.reaches(*config.lastVertex(), i)) {
      continue;
    }
    if (differentFrom != nullptr && v.d == *differentFrom) continue;
    return i;
  }
  return std::nullopt;
}

std::optional<StepDescriptor> TreeAnalysis::canonicalStep(
    const SimConfigState& config, ProcessId q, std::uint64_t proposeValue,
    bool preferLambda) const {
  auto vertex = eligibleVertex(config, q);
  if (!vertex.has_value()) return std::nullopt;
  StepDescriptor step;
  step.proc = q;
  step.vertexIdx = *vertex;
  if (config.pendingPropose(q)) {
    step.action =
        proposeValue == 1 ? StepAction::kProposeOne : StepAction::kProposeZero;
  } else if (config.hasPendingMessage(q) && !preferLambda) {
    step.action = StepAction::kDeliverOldest;
    step.msgUid = config.oldestMessageUid(q);
  } else {
    step.action = StepAction::kLambda;
  }
  return step;
}

TreeAnalysis::ProbeOutcome TreeAnalysis::probe(
    const SimConfigState& config, Instance k,
    const std::function<std::uint64_t(ProcessId)>& inputOf,
    ProcessId lateProc, std::uint64_t lateMinK) const {
  SimConfigState state(config);
  if (lateProc != kNoProcess && lateProc < processCount_) {
    state.advanceDagCursor(lateProc, lateMinK);
  }
  ProbeOutcome outcome;
  std::size_t rr = 0;
  std::size_t idleRounds = 0;
  std::vector<bool> justDelivered(processCount_, false);
  for (std::size_t steps = 0; steps < limits_.probeSteps; ++steps) {
    if (active_.empty()) break;
    const ProcessId q = active_[rr % active_.size()];
    ++rr;
    auto step = canonicalStep(state, q, inputOf(q), justDelivered[q]);
    if (!step.has_value()) {
      if (++idleRounds >= active_.size()) break;  // DAG exhausted everywhere
      continue;
    }
    idleRounds = 0;
    justDelivered[q] = step->action == StepAction::kDeliverOldest;
    state.apply(dag_, *step, limits_.maxInstance);
    if (state.allResponded(k, active_) || state.disagreement(k)) break;
  }
  outcome.values = state.responses(k);
  outcome.disagreement = state.disagreement(k);
  return outcome;
}

KTag TreeAnalysis::tag(const SimConfigState& config, Instance k) const {
  KTag t;
  if (!config.enabled(k)) return t;
  // Responses already in the schedule itself count as descendants' too.
  const auto fold = [&t](const ProbeOutcome& o) {
    for (std::uint64_t v : o.values) {
      if (v == 0) t.has0 = true;
      if (v == 1) t.has1 = true;
    }
    t.hasBot = t.hasBot || o.disagreement;
  };
  fold(probe(config, k, [](ProcessId) { return 0; }));
  fold(probe(config, k, [](ProcessId) { return 1; }));
  // Mixed probes: distinct inputs per process witness ⊥ exactly when the
  // sampled history still lets instance k disagree. The skewed variants
  // (one process consuming only late samples) cover histories where the
  // early and late failure-detector values elect different deciders —
  // e.g. a leader that crashes mid-history. The limit tree contains all
  // these schedules; the probes sample the decisive ones.
  const auto mixed = [](ProcessId p) { return p % 2; };
  fold(probe(config, k, mixed));
  // Two skew depths per process: half-history and deep tail — a crash (or
  // any value change) anywhere in the sampled history lands in one of the
  // two late regions.
  for (ProcessId late : active_) {
    if (t.hasBot) break;  // one witness suffices
    fold(probe(config, k, mixed, late, maxK_[late] / 2));
  }
  for (ProcessId late : active_) {
    if (t.hasBot) break;
    const std::uint64_t deep = maxK_[late] > 6 ? maxK_[late] - 4 : maxK_[late] / 2;
    fold(probe(config, k, mixed, late, deep));
  }
  return t;
}

std::optional<std::pair<SimConfigState, Instance>> TreeAnalysis::findBivalent()
    const {
  if (active_.empty()) return std::nullopt;
  // Executable Algorithm 3: test the canonical all-zero schedule prefix
  // enabling each instance in turn; the first instance whose tag is
  // {0, 1} (no ⊥) yields the bivalent vertex.
  SimConfigState state(factory_, processCount_);
  std::vector<bool> justDelivered(processCount_, false);
  for (Instance k = 1; k <= limits_.maxInstance; ++k) {
    // Advance until k is enabled (responses to k-1 exist).
    std::size_t rr = 0;
    std::size_t idleRounds = 0;
    std::size_t guard = 0;
    while (!state.enabled(k) && guard++ < limits_.probeSteps) {
      const ProcessId q = active_[rr % active_.size()];
      ++rr;
      auto step = canonicalStep(state, q, 0, justDelivered[q]);
      if (!step.has_value()) {
        if (++idleRounds >= active_.size()) return std::nullopt;
        continue;
      }
      idleRounds = 0;
      justDelivered[q] = step->action == StepAction::kDeliverOldest;
      state.apply(dag_, *step, limits_.maxInstance);
    }
    if (!state.enabled(k)) return std::nullopt;
    const KTag t = tag(state, k);
    if (t.bivalent()) {
      return std::make_pair(SimConfigState(state), k);
    }
    // ⊥ or univalent: move on — the schedule keeps extending, mirroring
    // Algorithm 3's descent through σ1, σ2 to a later instance.
  }
  return std::nullopt;
}

std::vector<StepDescriptor> TreeAnalysis::childSteps(
    const SimConfigState& config) const {
  std::vector<StepDescriptor> out;
  for (ProcessId q : active_) {
    auto first = eligibleVertex(config, q);
    if (!first.has_value()) continue;
    std::vector<std::size_t> verts{*first};
    // A second vertex with a DIFFERENT failure-detector value enables
    // forks that branch on d (Figure 3a).
    const FdValue& d0 = dag_.vertex(*first).d;
    if (auto second = eligibleVertex(config, q, &d0)) verts.push_back(*second);
    for (std::size_t v : verts) {
      if (config.pendingPropose(q)) {
        out.push_back(StepDescriptor{q, v, StepAction::kProposeZero, 0});
        out.push_back(StepDescriptor{q, v, StepAction::kProposeOne, 0});
      } else if (config.hasPendingMessage(q)) {
        out.push_back(StepDescriptor{q, v, StepAction::kDeliverOldest,
                                     config.oldestMessageUid(q)});
      } else {
        out.push_back(StepDescriptor{q, v, StepAction::kLambda, 0});
      }
    }
  }
  return out;
}

std::optional<DecisionGadget> TreeAnalysis::findGadget(const SimConfigState& start,
                                                       Instance k) const {
  SimConfigState state(start);
  for (std::size_t walked = 0; walked < limits_.walkSteps; ++walked) {
    const std::vector<StepDescriptor> steps = childSteps(state);
    if (steps.empty()) return std::nullopt;

    struct Child {
      StepDescriptor step;
      KTag tag;
    };
    std::vector<Child> children;
    children.reserve(steps.size());
    for (const StepDescriptor& s : steps) {
      SimConfigState next(state);
      next.apply(dag_, s, limits_.maxInstance);
      children.push_back(Child{s, tag(next, k)});
    }

    // Fork (Figure 3a): two steps of the same process from this pivot
    // with opposite univalent tags.
    for (std::size_t i = 0; i < children.size(); ++i) {
      for (std::size_t j = i + 1; j < children.size(); ++j) {
        if (children[i].step.proc != children[j].step.proc) continue;
        if (children[i].tag.univalent() && children[j].tag.univalent() &&
            children[i].tag.value() != children[j].tag.value()) {
          return DecisionGadget{DecisionGadget::Kind::kFork,
                                children[i].step.proc, state.depth(), k};
        }
      }
    }

    // Keep walking through a bivalent child if one exists (Figure 4).
    auto bivalentChild =
        std::find_if(children.begin(), children.end(),
                     [](const Child& c) { return c.tag.bivalent(); });
    if (bivalentChild != children.end()) {
      state.apply(dag_, bivalentChild->step, limits_.maxInstance);
      continue;
    }

    // Stuck: bivalent pivot, no bivalent child — a hook must exist
    // (Figure 5, case 2). Take the canonical first univalent child step e
    // (valency x) and walk a fair completion FREEZING e's process, toward
    // inputs of the opposite valency, re-testing e at each node until its
    // valency flips.
    auto designated = std::find_if(children.begin(), children.end(),
                                   [](const Child& c) { return c.tag.univalent(); });
    if (designated == children.end()) return std::nullopt;  // all ⊥ — give up
    const StepDescriptor e = designated->step;
    const std::uint64_t x = designated->tag.value();
    const std::uint64_t want = 1 - x;

    SimConfigState frozen(state);
    std::size_t rr = 0;
    std::size_t idleRounds = 0;
    std::vector<bool> justDelivered(processCount_, false);
    for (std::size_t h = 0; h < limits_.hookSteps; ++h) {
      const ProcessId q = active_[rr % active_.size()];
      ++rr;
      if (q == e.proc) continue;  // e's process takes no steps (Lemma 8)
      auto step = canonicalStep(frozen, q, want, justDelivered[q]);
      if (!step.has_value()) {
        if (++idleRounds >= active_.size()) break;
        continue;
      }
      idleRounds = 0;
      justDelivered[q] = step->action == StepAction::kDeliverOldest;
      // The frozen walk must keep e applicable: it may not consume e's
      // message (e's process is frozen, so only e.proc could — skipped).
      frozen.apply(dag_, *step, limits_.maxInstance);
      // Transitivity (paper property (3) via reachability) keeps e's
      // vertex usable along the whole path.
      if (dag_.vertex(e.vertexIdx).k <= frozen.lastDagK(e.proc)) break;
      SimConfigState probeCfg(frozen);
      probeCfg.apply(dag_, e, limits_.maxInstance);
      const KTag t = tag(probeCfg, k);
      if (t.univalent() && t.value() == want) {
        return DecisionGadget{DecisionGadget::Kind::kHook, e.proc, state.depth(), k};
      }
      if (t.invalid()) break;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<ProcessId> TreeAnalysis::extractLeader() const {
  auto bivalent = findBivalent();
  if (!bivalent.has_value()) return std::nullopt;
  auto gadget = findGadget(bivalent->first, bivalent->second);
  if (!gadget.has_value()) return std::nullopt;
  return gadget->decidingProcess;
}

}  // namespace wfd
