// Portable, order-sensitive 64-bit digest of a run trace.
//
// Two runs of the same binary produce equal digests iff the simulator
// visited the same schedule: the digest folds in per-process step counts,
// every delivery snapshot (time and sequence), the final d_i, every
// output event (time, plus decoded content for the library's known
// output types), and the global message counters. The mixing is explicit
// FNV-1a over a u64 stream — NOT std::hash — so the digest of a GIVEN
// trace is portable. Pinned digest constants for simulated runs are
// nevertheless only comparable across builds sharing a standard-library
// implementation: run schedules draw from std::uniform_int_distribution
// (via Rng), whose algorithm is implementation-defined — libstdc++ and
// libc++/MSVC produce different value sequences from the same engine.
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "sim/trace.h"

namespace wfd {

/// Incremental FNV-1a over 64-bit words (each word folded byte-by-byte).
class TraceHasher {
 public:
  void mix(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (word >> (8 * i)) & 0xffu;
      state_ *= kFnv64Prime;
    }
  }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kFnv64OffsetBasis;
};

/// Digest of everything the trace recorded. Requires nothing beyond the
/// trace itself; payload contents are folded in for the known output
/// vocabulary (EC/EIC decisions, proposals, commit indications, gossip
/// applies) and every other payload type contributes its timing only.
std::uint64_t traceDigest(const Trace& trace);

}  // namespace wfd
