#include "explore/campaign.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <iterator>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "api/capabilities.h"
#include "common/ensure.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"

namespace wfd {

// --- CoverageMap -------------------------------------------------------------

void CoverageMap::add(const std::string& feature, std::uint64_t hits) {
  counts_[feature] += hits;
}

void CoverageMap::addSignature(const std::vector<std::string>& features) {
  for (const std::string& f : features) add(f);
}

void CoverageMap::merge(const CoverageMap& other) {
  for (const auto& [feature, hits] : other.counts_) add(feature, hits);
}

std::uint64_t CoverageMap::count(const std::string& feature) const {
  const auto it = counts_.find(feature);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t CoverageMap::rarity(
    const std::vector<std::string>& features) const {
  std::uint64_t rarest = std::numeric_limits<std::uint64_t>::max();
  for (const std::string& f : features) rarest = std::min(rarest, count(f));
  return rarest;
}

std::uint64_t CoverageMap::totalHits() const {
  std::uint64_t total = 0;
  for (const auto& [feature, hits] : counts_) total += hits;
  return total;
}

Json CoverageMap::toJson() const {
  Json j = Json::object();
  for (const auto& [feature, hits] : counts_) j.set(feature, Json::number(hits));
  return j;
}

// --- Coverage signature ------------------------------------------------------

namespace {

std::string bucketed(const char* name, std::uint64_t v, std::uint64_t cap) {
  const std::uint64_t b = std::min(v, cap);
  return std::string(name) + ":" + std::to_string(b) + (b == cap ? "+" : "");
}

/// Floor(log2(v)) + 1 for v > 0 — a coarse magnitude class so near-miss
/// windows of 90 and 100 ticks share a feature while 10 and 10000 don't.
std::uint64_t log2Class(std::uint64_t v) {
  std::uint64_t c = 0;
  while (v > 0) {
    v >>= 1;
    ++c;
  }
  return c;
}

}  // namespace

std::vector<std::string> coverageSignature(const FuzzPlan& plan,
                                           const ScenarioRunResult& result) {
  std::vector<std::string> sig;
  sig.push_back(std::string("stack:") + algoStackName(plan.stack));
  sig.push_back(bucketed("processes", plan.processCount, 8));
  sig.push_back(std::string("omega:") + omegaModeName(plan.omegaMode));

  sig.push_back(bucketed("crashes", plan.crashes.size(), 3));
  for (const PlanCrash& c : plan.crashes) {
    if (c.time == 0) sig.push_back("crash-at-0");
  }
  sig.push_back(bucketed("partitions", plan.partitions.size(), 3));
  for (const PlanPartition& p : plan.partitions) {
    sig.push_back(p.period != 0 ? "partition-recurring" : "partition-oneshot");
    sig.push_back(p.isolate == kNoProcess ? "partition-blackout"
                                          : "partition-isolating");
  }
  if (plan.chaos.dupNum > 0) sig.push_back("layer:chaos");
  if (!plan.skews.empty()) sig.push_back("layer:skew");
  if (plan.slowLink.process != kNoProcess) sig.push_back("layer:slow-link");
  if (plan.workload.causalChain) sig.push_back("workload:causal-chain");
  if (plan.workload.crossDeps) sig.push_back("workload:cross-deps");

  // Outcome features. tau-hat > 0 under the spec oracle is a checker
  // near-miss: the run disagreed on total order for a while and still
  // satisfied the EVENTUAL clauses — exactly the pre-stabilization
  // behaviour worth mutating toward.
  if (result.pass) {
    sig.push_back("outcome:pass");
  } else {
    for (const std::string& f : result.failures) {
      sig.push_back("fail:" + f.substr(0, f.find(" (")));
    }
  }
  sig.push_back("tau-hat-log2:" + std::to_string(log2Class(result.tauHat)));
  // 6-bit delivered-sequence digest class: a cheap behavioural bucket —
  // plans whose runs land in rare classes produced rare delivery
  // interleavings, whatever the checkers thought of them.
  sig.push_back("digest-class:" + std::to_string(result.digest & 0x3f));

  std::sort(sig.begin(), sig.end());
  sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  return sig;
}

// --- Mutation ----------------------------------------------------------------

namespace {

/// Mutation kinds, tried in rotation from a seeded starting point until
/// one yields an admissible plan.
enum : std::uint64_t {
  kMutReseedSchedule = 0,
  kMutAddCrash,
  kMutDropCrash,
  kMutAddPartition,
  kMutResizePartition,
  kMutToggleChaos,
  kMutToggleSkew,
  kMutToggleSlowLink,
  kMutScaleWorkload,
  kMutHalveTauOmega,
  kMutGrowSystem,
  kMutKindCount,
};

bool applyMutation(FuzzPlan& p, std::uint64_t kind, Rng& rng) {
  const std::size_t n = p.processCount;
  switch (kind) {
    case kMutReseedSchedule:
      p.simSeed = rng.engine()();
      return true;
    case kMutAddCrash: {
      // Pick among the not-yet-crashed processes (admissibility will
      // still reject e.g. a lost majority on the consensus stack).
      std::vector<ProcessId> alive;
      for (ProcessId q = 0; q < n; ++q) {
        bool crashed = false;
        for (const PlanCrash& c : p.crashes) crashed |= c.process == q;
        if (!crashed) alive.push_back(q);
      }
      if (alive.size() <= 1) return false;
      PlanCrash c;
      c.process = alive[rng.below(alive.size())];
      c.time = rng.chance(1, 4) ? 0 : rng.between(1, 4000);
      p.crashes.push_back(c);
      std::sort(p.crashes.begin(), p.crashes.end(),
                [](const PlanCrash& a, const PlanCrash& b) {
                  return a.process < b.process;
                });
      return true;
    }
    case kMutDropCrash:
      if (p.crashes.empty()) return false;
      p.crashes.erase(p.crashes.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(p.crashes.size())));
      return true;
    case kMutAddPartition: {
      if (p.partitions.size() >= 3) return false;
      // One-shot only: the one-recurring-family admissibility budget may
      // already be spent, and one-shot windows always heal.
      PlanPartition part;
      part.start = rng.between(200, 3000);
      part.width = rng.between(100, 800);
      part.period = 0;
      part.isolate = rng.chance(1, 3) ? kNoProcess : rng.below(n);
      p.partitions.push_back(part);
      return true;
    }
    case kMutResizePartition: {
      if (p.partitions.empty()) return false;
      PlanPartition& part = p.partitions[rng.below(p.partitions.size())];
      if (rng.chance(1, 2)) {
        part.width = std::max<Time>(1, part.width / 2);
      } else {
        part.width *= 2;
        // Keep a recurring family healing (period > width).
        if (part.period != 0 && part.period <= part.width) {
          part.period = 2 * part.width;
        }
      }
      return true;
    }
    case kMutToggleChaos:
      if (p.chaos.dupNum > 0) {
        p.chaos = PlanChaos{};
      } else {
        p.chaos.dupNum = 1;
        p.chaos.dupDen = static_cast<std::uint32_t>(rng.between(2, 4));
        p.chaos.maxExtraCopies = static_cast<std::uint32_t>(rng.between(1, 3));
        p.chaos.reorderJitter = rng.between(10, 80);
        p.chaos.onlyTouching = rng.chance(1, 3) ? rng.below(n) : kNoProcess;
      }
      return true;
    case kMutToggleSkew:
      if (!p.skews.empty()) {
        p.skews.clear();
      } else {
        static constexpr PlanSkew kSkewMenu[] = {{1, 1}, {2, 1}, {3, 1},
                                                 {1, 2}, {2, 3}, {3, 2}};
        p.skews.reserve(n);
        for (std::size_t q = 0; q < n; ++q) {
          p.skews.push_back(kSkewMenu[rng.below(std::size(kSkewMenu))]);
        }
      }
      return true;
    case kMutToggleSlowLink:
      if (p.slowLink.process != kNoProcess) {
        p.slowLink = PlanSlowLink{};
      } else {
        p.slowLink.process = rng.below(n);
        p.slowLink.factor = rng.between(2, 4);
      }
      return true;
    case kMutScaleWorkload:
      if (p.stack == AlgoStack::kOmegaEc) return false;
      p.workload.perProcess = rng.chance(1, 2)
                                  ? std::max<std::size_t>(1, p.workload.perProcess / 2)
                                  : std::min<std::size_t>(10, p.workload.perProcess * 2);
      return true;
    case kMutHalveTauOmega:
      // Shrinking tau_Omega is always fairness-preserving; GROWING it is
      // not (the omega-ec stream-length cap in the sampler), so the
      // mutator only ever moves it down.
      if (p.omegaMode == OmegaPreStabilization::kStable || p.tauOmega < 2) {
        return false;
      }
      p.tauOmega /= 2;
      return true;
    case kMutGrowSystem:
      if (n >= 8) return false;
      ++p.processCount;
      if (!p.skews.empty()) p.skews.push_back(PlanSkew{1, 1});
      return true;
    default:
      return false;
  }
}

}  // namespace

std::optional<FuzzPlan> mutateFuzzPlan(const FuzzPlan& base,
                                       std::uint64_t mutationSeed) {
  Rng rng(mutationSeed);
  const std::uint64_t start = rng.below(kMutKindCount);
  for (std::uint64_t attempt = 0; attempt < kMutKindCount; ++attempt) {
    FuzzPlan p = base;
    if (!applyMutation(p, (start + attempt) % kMutKindCount, rng)) continue;
    p.maxTime = planHorizon(p);
    if (!planAdmissibilityViolations(p).empty()) continue;
    return p;
  }
  return std::nullopt;
}

// --- Work-stealing pool ------------------------------------------------------

namespace {

/// Runs fn(worker, task) for every task in [0, count) across `jobs`
/// worker threads. Each worker owns a deque seeded with a contiguous
/// slice of the index space; a worker that drains its own deque steals
/// the back half of the first non-empty victim's. Tasks never spawn
/// tasks, so "every deque empty" is a complete termination condition.
/// jobs <= 1 executes inline on the calling thread — no threads, no
/// locks, bit-for-bit the sequential path.
void poolRun(unsigned jobs, std::uint64_t count,
             const std::function<void(unsigned, std::uint64_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(jobs, count));
  struct Queue {
    std::mutex m;
    std::deque<std::uint64_t> q;
  };
  std::vector<Queue> queues(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const std::uint64_t lo = count * w / workers;
    const std::uint64_t hi = count * (w + 1) / workers;
    for (std::uint64_t i = lo; i < hi; ++i) queues[w].q.push_back(i);
  }

  std::atomic<bool> abort{false};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  auto workerLoop = [&](unsigned w) {
    try {
      while (!abort.load(std::memory_order_relaxed)) {
        std::uint64_t task = 0;
        bool have = false;
        {
          std::lock_guard<std::mutex> lock(queues[w].m);
          if (!queues[w].q.empty()) {
            task = queues[w].q.front();
            queues[w].q.pop_front();
            have = true;
          }
        }
        if (!have) {
          // Steal the back half of the first non-empty victim. Loot is
          // staged locally so no two queue locks are ever held at once.
          std::vector<std::uint64_t> loot;
          for (unsigned off = 1; off < workers && loot.empty(); ++off) {
            Queue& victim = queues[(w + off) % workers];
            std::lock_guard<std::mutex> lock(victim.m);
            const std::size_t take = (victim.q.size() + 1) / 2;
            for (std::size_t i = 0; i < take; ++i) {
              loot.push_back(victim.q.back());
              victim.q.pop_back();
            }
          }
          if (loot.empty()) return;  // everything drained — done
          std::lock_guard<std::mutex> lock(queues[w].m);
          for (std::uint64_t t : loot) queues[w].q.push_back(t);
          continue;
        }
        fn(w, task);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) threads.emplace_back(workerLoop, w);
  for (std::thread& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace

// --- Shard merge -------------------------------------------------------------

std::optional<std::vector<CampaignRunRecord>> mergeCampaignShards(
    std::uint64_t generation, std::uint64_t expectedCount,
    std::vector<std::vector<CampaignRunRecord>> shards, std::string* error) {
  auto fail = [error](std::string why) -> std::optional<std::vector<CampaignRunRecord>> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  std::vector<CampaignRunRecord> merged(expectedCount);
  std::vector<bool> seen(expectedCount, false);
  std::uint64_t total = 0;
  for (std::vector<CampaignRunRecord>& shard : shards) {
    for (CampaignRunRecord& rec : shard) {
      if (rec.generation != generation) {
        return fail("record from generation " + std::to_string(rec.generation) +
                    " merged into generation " + std::to_string(generation));
      }
      if (rec.index >= expectedCount) {
        return fail("record index " + std::to_string(rec.index) +
                    " outside [0, " + std::to_string(expectedCount) + ")");
      }
      if (seen[rec.index]) {
        return fail("plan " + std::to_string(rec.index) +
                    " double-counted across shards");
      }
      seen[rec.index] = true;
      merged[rec.index] = std::move(rec);
      ++total;
    }
  }
  if (total != expectedCount) {
    for (std::uint64_t i = 0; i < expectedCount; ++i) {
      if (!seen[i]) {
        return fail("plan " + std::to_string(i) +
                    " missing from every shard (a worker's results were "
                    "dropped)");
      }
    }
  }
  return merged;
}

// --- Campaign runner ---------------------------------------------------------

namespace {

std::uint64_t deriveMutationSeed(std::uint64_t masterSeed,
                                 std::uint64_t generation, std::uint64_t slot,
                                 std::uint64_t parentFingerprint) {
  std::uint64_t s = splitmix64(masterSeed ^ 0x9e3779b97f4a7c15ULL);
  s = splitmix64(s ^ generation);
  s = splitmix64(s ^ slot);
  s = splitmix64(s ^ parentFingerprint);
  return s;
}

/// Builds generation `gen` (> 0): mutations of the rarest-coverage prior
/// runs, deterministically — the ranking depends only on the MERGED
/// report of generations < gen. Slots whose mutation lands inadmissible
/// fall back to the continued sampled plan stream, so the generation
/// size is always exactly the budget.
std::vector<FuzzPlan> scheduleGeneration(const CampaignReport& sofar,
                                         const CampaignOptions& options,
                                         std::uint64_t gen,
                                         std::uint64_t budget,
                                         std::uint64_t* nextSampleIndex) {
  std::vector<FuzzPlan> out;
  if (budget == 0 || sofar.runs.empty()) return out;

  struct Ranked {
    std::uint64_t rarity;
    const CampaignRunRecord* rec;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(sofar.runs.size());
  for (const CampaignRunRecord& rec : sofar.runs) {
    ranked.push_back({sofar.coverage.rarity(rec.signature), &rec});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.rarity != b.rarity) return a.rarity < b.rarity;
    if (a.rec->generation != b.rec->generation) {
      return a.rec->generation < b.rec->generation;
    }
    return a.rec->index < b.rec->index;
  });

  // A few mutants per rare seed beats one mutant from many mediocre
  // seeds (greybox "energy"); 4 matches common power-schedule defaults.
  constexpr std::uint64_t kMutantsPerSeed = 4;
  const std::uint64_t seedCount = std::min<std::uint64_t>(
      ranked.size(),
      std::max<std::uint64_t>(1, (budget + kMutantsPerSeed - 1) / kMutantsPerSeed));

  out.reserve(budget);
  for (std::uint64_t slot = 0; slot < budget; ++slot) {
    const FuzzPlan& parent = ranked[slot % seedCount].rec->plan;
    const std::uint64_t mseed = deriveMutationSeed(
        options.seed, gen, slot, planFingerprint(parent));
    std::optional<FuzzPlan> mutated = mutateFuzzPlan(parent, mseed);
    out.push_back(mutated ? std::move(*mutated)
                          : sampleFuzzPlan(options.stack, options.seed,
                                           (*nextSampleIndex)++,
                                           options.bigClusterMaxN,
                                           options.lossGenome));
  }
  return out;
}

}  // namespace

CampaignReport runCampaign(const CampaignOptions& options,
                           const std::function<bool()>& keepGoing) {
  CampaignReport report;
  const std::uint64_t mutationBudget = options.mutationsPerGeneration != 0
                                           ? options.mutationsPerGeneration
                                           : options.runs / 4;
  std::uint64_t nextSampleIndex = options.runs;

  for (std::uint64_t gen = 0; gen < options.generations; ++gen) {
    std::vector<FuzzPlan> plans;
    if (gen == 0) {
      plans.reserve(options.runs);
      for (std::uint64_t i = 0; i < options.runs; ++i) {
        plans.push_back(sampleFuzzPlan(options.stack, options.seed, i,
                                       options.bigClusterMaxN,
                                       options.lossGenome));
      }
    } else {
      plans = scheduleGeneration(report, options, gen, mutationBudget,
                                 &nextSampleIndex);
    }
    if (plans.empty()) break;
    if (keepGoing && !keepGoing()) {
      report.truncated = true;
      break;
    }

    // Execute the generation on the pool: worker w appends only to
    // shard w, and the merge re-orders by index — so the merged result
    // (and everything derived from it) is independent of which worker
    // ran which plan, i.e. of the thread count and the steal schedule.
    const unsigned workers = options.jobs <= 1
                                 ? 1
                                 : static_cast<unsigned>(std::min<std::uint64_t>(
                                       options.jobs, plans.size()));
    std::vector<std::vector<CampaignRunRecord>> shards(workers);
    poolRun(options.jobs, plans.size(), [&](unsigned w, std::uint64_t i) {
      CampaignRunRecord rec;
      rec.generation = gen;
      rec.index = i;
      rec.plan = plans[i];
      rec.result = runFuzzPlan(rec.plan, options.oracle);
      rec.signature = coverageSignature(rec.plan, rec.result);
      shards[w].push_back(std::move(rec));
    });

    std::string mergeError;
    std::optional<std::vector<CampaignRunRecord>> merged =
        mergeCampaignShards(gen, plans.size(), std::move(shards), &mergeError);
    WFD_ENSURE_MSG(merged.has_value(), "campaign merge: " << mergeError);

    for (CampaignRunRecord& rec : *merged) {
      report.coverage.addSignature(rec.signature);
      if (!rec.result.pass) {
        CampaignViolation v;
        v.generation = rec.generation;
        v.index = rec.index;
        v.plan = rec.plan;
        v.result = rec.result;
        report.violations.push_back(std::move(v));
      }
      report.runs.push_back(std::move(rec));
    }
    report.runsExecuted += plans.size();
  }

  // Shrink every violation — also on the pool. Each shrink is an
  // independent deterministic search writing to its own slot, so the
  // shrunken witnesses are thread-count-independent too.
  poolRun(options.jobs, report.violations.size(),
          [&](unsigned, std::uint64_t i) {
            CampaignViolation& v = report.violations[i];
            if (options.shrink) {
              v.shrunken = shrinkFuzzPlan(v.plan, options.oracle,
                                          options.maxShrinkAttempts, &v.result,
                                          keepGoing);
            } else {
              v.shrunken.plan = v.plan;
              v.shrunken.result = v.result;
            }
          });
  return report;
}

// --- JSON emission -----------------------------------------------------------

std::string campaignRunJsonLine(const CampaignRunRecord& rec) {
  Json j = Json::object();
  j.set("generation", Json::number(rec.generation));
  j.set("run", Json::number(rec.index));
  j.set("stack", Json::str(algoStackName(rec.plan.stack)));
  j.set("plan", Json::str(hex64(planFingerprint(rec.plan))));
  j.set("sim_seed", Json::number(rec.plan.simSeed));
  j.set("processes", Json::number(rec.plan.processCount));
  j.set("network", Json::str(rec.result.network));
  j.set("max_time", Json::number(rec.plan.maxTime));
  j.set("pass", Json::boolean(rec.result.pass));
  j.set("events", Json::number(rec.result.eventsProcessed));
  j.set("messages_sent", Json::number(rec.result.messagesSent));
  j.set("tau_hat", Json::number(rec.result.tauHat));
  j.set("digest", Json::str(hex64(rec.result.digest)));
  Json failures = Json::array();
  for (const std::string& f : rec.result.failures) failures.push(Json::str(f));
  j.set("failures", std::move(failures));
  return j.dump();
}

std::string campaignCoverageJsonLine(AlgoStack stack,
                                     const CampaignReport& report) {
  Json j = Json::object();
  j.set("coverage", Json::str(algoStackName(stack)));
  j.set("runs", Json::number(report.runsExecuted));
  j.set("distinct_features", Json::number(report.coverage.distinctFeatures()));
  j.set("feature_hits", Json::number(report.coverage.totalHits()));
  j.set("features", report.coverage.toJson());
  return j.dump();
}

}  // namespace wfd
