// Facade (src/api) tests: golden digest equivalence between the
// pre-facade instantiation path and the Cluster path over the WHOLE
// catalog, capability advertisement, incremental stepping, live fault
// injection, delivery observers, and the uniform Client surface.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "common/ensure.h"
#include "ec/ec_driver.h"
#include "ec/omega_ec.h"
#include "etob/commit_etob.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "rsm/gossip_lww.h"
#include "scenario/scenario.h"
#include "scenario/trace_digest.h"
#include "tob/tob_via_consensus.h"

namespace wfd {
namespace {

// --- Golden digest equivalence ----------------------------------------------
//
// The pre-facade instantiateScenario body, replicated verbatim (including
// its construction ORDER — the Rng draws depend on it): build config with
// the per-run seed, pattern, detector, network, simulator, one stack
// automaton per process, then schedule the workload. If the facade ever
// drifts from this sequence, every entry of the suite below fails.

std::unique_ptr<Automaton> legacyStackAutomaton(const Scenario& s,
                                                const SimConfig& cfg,
                                                ProcessId p) {
  switch (s.stack) {
    case AlgoStack::kEtob:
      return std::make_unique<EtobAutomaton>();
    case AlgoStack::kCommitEtob:
      return std::make_unique<CommitEtobAutomaton>();
    case AlgoStack::kTobViaConsensus:
      return std::make_unique<TobViaConsensusAutomaton>(p, cfg.processCount);
    case AlgoStack::kGossipLww:
      return std::make_unique<GossipLwwStore>();
    case AlgoStack::kOmegaEc:
      return std::make_unique<EcDriverAutomaton<OmegaEcAutomaton>>(
          OmegaEcAutomaton{}, binaryProposals(cfg.seed), s.ecInstances);
  }
  return nullptr;
}

std::uint64_t legacyPathDigest(const Scenario& s, std::uint64_t seed) {
  SimConfig cfg = s.config;
  cfg.seed = seed;
  FailurePattern fp = s.pattern ? s.pattern(cfg.processCount)
                                : FailurePattern::noFailures(cfg.processCount);
  std::shared_ptr<const FailureDetector> detector =
      s.detector ? s.detector(fp)
                 : std::make_shared<OmegaFd>(fp, s.tauOmega, s.omegaMode);
  std::shared_ptr<const NetworkModel> network =
      s.network ? s.network(cfg) : nullptr;
  Simulator sim(cfg, fp, std::move(detector), std::move(network));
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, legacyStackAutomaton(s, cfg, p));
  }
  if (s.stack != AlgoStack::kOmegaEc) {
    scheduleBroadcastWorkload(sim, s.workload);
  }
  sim.run();
  return traceDigest(sim.trace());
}

class FacadeEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FacadeEquivalenceTest, ClusterPathMatchesLegacyPathThreeSeeds) {
  const Scenario* s = findScenario(GetParam());
  ASSERT_NE(s, nullptr);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Cluster cluster(clusterSpec(*s), seed);
    cluster.runToHorizon();
    EXPECT_EQ(traceDigest(cluster.sim().trace()), legacyPathDigest(*s, seed))
        << s->name << " seed " << seed;
  }
}

std::vector<std::string> allScenarioNames() {
  std::vector<std::string> names;
  for (const Scenario& s : scenarioCatalog()) {
    // Big-n entries get one facade run in test_large_cluster instead of
    // two full runs per seed times three seeds here (and under ASan).
    if (isLargeClusterScenario(s)) continue;
    names.push_back(s.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllCatalogEntries, FacadeEquivalenceTest,
                         ::testing::ValuesIn(allScenarioNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Stepping must not perturb scheduling: a run split into arbitrary
// increments is the run executed in one go, bit for bit.
class FacadeSteppingTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FacadeSteppingTest, IncrementalSteppingMatchesBatchRun) {
  const Scenario* s = findScenario(GetParam());
  ASSERT_NE(s, nullptr);
  Cluster batch(clusterSpec(*s), 5);
  batch.runToHorizon();

  Cluster stepped(clusterSpec(*s), 5);
  stepped.advanceTo(1);                  // degenerate first step
  stepped.advanceBy(0);                  // no-op increment
  while (stepped.advanceBy(997)) {       // deliberately delay-unaligned
  }
  stepped.runToHorizon();                // flush the horizon boundary

  EXPECT_EQ(traceDigest(stepped.sim().trace()),
            traceDigest(batch.sim().trace()));
  EXPECT_EQ(stepped.now(), batch.now());
  EXPECT_EQ(stepped.sim().eventsProcessed(), batch.sim().eventsProcessed());
}

INSTANTIATE_TEST_SUITE_P(SampledEntries, FacadeSteppingTest,
                         ::testing::Values("stable-leader", "dup-reorder-storm",
                                           "skewed-chaos-combo",
                                           "ec-omega-split-brain",
                                           "gossip-lww-convergence"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- Capabilities ------------------------------------------------------------

TEST(CapabilitiesTest, PerStackFlagsMatchTheMatrix) {
  for (AlgoStack stack : kAllAlgoStacks) {
    const Capabilities caps = stackCapabilities(stack);
    SCOPED_TRACE(algoStackName(stack));
    EXPECT_EQ(caps.submits, stack != AlgoStack::kOmegaEc);
    EXPECT_EQ(caps.deliverySequence, stack == AlgoStack::kEtob ||
                                         stack == AlgoStack::kCommitEtob ||
                                         stack == AlgoStack::kTobViaConsensus);
    EXPECT_EQ(caps.committedPrefix, stack == AlgoStack::kCommitEtob);
    EXPECT_EQ(caps.kv, stack == AlgoStack::kGossipLww);
    EXPECT_EQ(caps.selfProposing, stack == AlgoStack::kOmegaEc);
  }
}

ClusterSpec tinySpec(AlgoStack stack) {
  ClusterSpec spec;
  spec.stack = stack;
  spec.config.processCount = 3;
  spec.config.maxTime = 8000;
  spec.tauOmega = 0;
  spec.omegaMode = OmegaPreStabilization::kStable;
  spec.workload.perProcess = 3;
  if (stack == AlgoStack::kGossipLww) spec.workload.lwwPutBodies = true;
  if (stack == AlgoStack::kOmegaEc) {
    spec.workload.perProcess = 0;
    spec.ecInstances = 5;
  }
  return spec;
}

TEST(CapabilitiesTest, CommittedPrefixEmptyExactlyOnNonCommitStacks) {
  for (AlgoStack stack : kAllAlgoStacks) {
    SCOPED_TRACE(algoStackName(stack));
    Cluster cluster(tinySpec(stack), 1);
    cluster.runToHorizon();
    bool anyCommitted = false;
    for (ProcessId p = 0; p < cluster.processCount(); ++p) {
      anyCommitted |= !cluster.client(p).committedPrefix().empty();
    }
    // Non-empty exactly where the capability is advertised: the commit
    // stack under a stable leader and correct majority MUST commit.
    EXPECT_EQ(anyCommitted, cluster.capabilities().committedPrefix);
  }
}

TEST(CapabilitiesTest, SubmitRejectedWithoutTheCapability) {
  Cluster cluster(tinySpec(AlgoStack::kOmegaEc), 1);
  EXPECT_FALSE(cluster.capabilities().submits);
  EXPECT_THROW(cluster.client(0).submit({1}), InvariantError);
  EXPECT_THROW(cluster.client(0).put(1, 2), InvariantError);
}

TEST(CapabilitiesTest, KvRejectedWithoutTheCapability) {
  Cluster cluster(tinySpec(AlgoStack::kEtob), 1);
  EXPECT_TRUE(cluster.capabilities().submits);
  EXPECT_FALSE(cluster.capabilities().kv);
  EXPECT_THROW(cluster.client(0).put(1, 2), InvariantError);
  // Reads degrade gracefully (uniform surface): no value, zero stats.
  EXPECT_EQ(cluster.client(0).kvGet(1), std::nullopt);
  EXPECT_EQ(cluster.client(0).kvStats().keys, 0u);
}

TEST(CapabilitiesTest, KvReplicaTurnsOnKvOverBroadcastStacks) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.kvReplica = true;
  spec.workload.perProcess = 0;
  Cluster cluster(spec, 1);
  EXPECT_TRUE(cluster.capabilities().kv);
  EXPECT_TRUE(cluster.capabilities().submits);

  ClusterSpec bad = tinySpec(AlgoStack::kGossipLww);
  bad.kvReplica = true;
  EXPECT_THROW(Cluster(bad, 1), InvariantError);
}

TEST(CapabilitiesTest, DecisionsFlowOnTheSelfProposingStack) {
  Cluster cluster(tinySpec(AlgoStack::kOmegaEc), 1);
  cluster.runToHorizon();
  EXPECT_TRUE(cluster.capabilities().selfProposing);
  for (ProcessId p = 0; p < cluster.processCount(); ++p) {
    EXPECT_EQ(cluster.client(p).decisions().size(), 5u) << p;
    EXPECT_TRUE(cluster.client(p).delivered().empty()) << p;
  }
}

// --- Client surface ----------------------------------------------------------

TEST(ClientTest, SubmissionsAreDeliveredAndLogged) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.workload.perProcess = 0;
  Cluster cluster(spec, 7);
  Client c1 = cluster.client(1);
  const MsgId a = c1.submitAt(100, {41});
  const MsgId b = c1.submitAt(150, {42}, {a});
  EXPECT_EQ(a, makeMsgId(1, 0));
  EXPECT_EQ(b, makeMsgId(1, 1));
  EXPECT_TRUE(cluster.log().contains(a));
  EXPECT_TRUE(cluster.log().contains(b));

  cluster.runUntilQuiescent();
  for (ProcessId p = 0; p < cluster.processCount(); ++p) {
    EXPECT_EQ(cluster.client(p).delivered(), (std::vector<MsgId>{a, b})) << p;
  }
  const BroadcastCheckReport rep =
      checkBroadcastRun(cluster.sim().trace(), cluster.log(), cluster.pattern());
  EXPECT_TRUE(rep.coreOk());
  EXPECT_TRUE(rep.causalOrderOk);
}

TEST(ClientTest, ClientIdsContinueAboveAScheduledWorkload) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);  // perProcess = 3
  Cluster cluster(spec, 7);
  EXPECT_EQ(cluster.client(2).submitAt(500, {9}), makeMsgId(2, 3));
}

TEST(ClientTest, KvReplicaPutGetRoundTrip) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.kvReplica = true;
  spec.workload.perProcess = 0;
  Cluster cluster(spec, 3);
  Client c0 = cluster.client(0);
  EXPECT_EQ(c0.putAt(100, 5, 55), kNoMsgId);  // replica allocates internally
  EXPECT_EQ(c0.putAt(200, 6, 66), kNoMsgId);
  cluster.runUntilQuiescent();
  for (ProcessId p = 0; p < cluster.processCount(); ++p) {
    Client c = cluster.client(p);
    EXPECT_EQ(c.kvGet(5), std::make_optional<std::uint64_t>(55)) << p;
    EXPECT_EQ(c.kvGet(6), std::make_optional<std::uint64_t>(66)) << p;
    EXPECT_EQ(c.kvGet(7), std::nullopt) << p;
    EXPECT_EQ(c.kvStats().keys, 2u) << p;
    EXPECT_EQ(c.kvStats().applied, 2u) << p;
  }
}

TEST(ClientTest, GossipPutGetRoundTrip) {
  ClusterSpec spec = tinySpec(AlgoStack::kGossipLww);
  spec.workload.perProcess = 0;
  spec.detector = [](const FailurePattern& fp) {
    return std::make_shared<PerfectFd>(fp);
  };
  Cluster cluster(spec, 3);
  const MsgId id = cluster.client(2).putAt(100, 9, 90);
  EXPECT_NE(id, kNoMsgId);
  cluster.runUntilQuiescent();
  for (ProcessId p = 0; p < cluster.processCount(); ++p) {
    EXPECT_EQ(cluster.client(p).kvGet(9), std::make_optional<std::uint64_t>(90))
        << p;
  }
}

TEST(ClientTest, DeliveryObserversSeeEveryChangeInOrder) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  Cluster cluster(spec, 2);
  std::vector<std::vector<MsgId>> seen;
  Time lastAt = 0;
  cluster.client(1).onDeliver([&](Time t, const std::vector<MsgId>& seq) {
    EXPECT_GE(t, lastAt);
    lastAt = t;
    seen.push_back(seq);
  });
  std::size_t clusterWide = 0;
  cluster.observeDeliveries(
      [&](ProcessId, Time, const std::vector<MsgId>&) { ++clusterWide; });
  cluster.runToHorizon();
  ASSERT_FALSE(seen.empty());
  // The final observed value is the final delivery sequence, and the
  // observer stream matches the recorded snapshot history exactly.
  EXPECT_EQ(seen.back(), cluster.client(1).delivered());
  const auto& snaps = cluster.sim().trace().deliverySnapshots(1);
  ASSERT_EQ(seen.size(), snaps.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], snaps[i].seq) << i;
  }
  EXPECT_GT(clusterWide, seen.size());  // other processes deliver too
}

TEST(ClientTest, ObserversDoNotPerturbTheRun) {
  const Scenario* s = findScenario("split-brain-heal");
  ASSERT_NE(s, nullptr);
  Cluster plain(clusterSpec(*s), 4);
  plain.runToHorizon();
  Cluster observed(clusterSpec(*s), 4);
  std::size_t events = 0;
  observed.observeDeliveries(
      [&](ProcessId, Time, const std::vector<MsgId>&) { ++events; });
  observed.observeOutputs([&](ProcessId, Time, const Payload&) { ++events; });
  observed.runToHorizon();
  EXPECT_GT(events, 0u);
  EXPECT_EQ(traceDigest(observed.sim().trace()),
            traceDigest(plain.sim().trace()));
}

// --- Stepping contract --------------------------------------------------------

TEST(SteppingTest, AdvanceToIsMonotone) {
  Cluster cluster(tinySpec(AlgoStack::kEtob), 1);
  cluster.advanceTo(500);
  EXPECT_THROW(cluster.advanceTo(10), InvariantError);
}

TEST(SteppingTest, AdvanceToStopsAtTheBoundary) {
  Cluster cluster(tinySpec(AlgoStack::kEtob), 1);
  EXPECT_TRUE(cluster.advanceTo(1000));
  EXPECT_LE(cluster.now(), 1000u);
  ASSERT_TRUE(cluster.sim().nextEventTime().has_value());
  EXPECT_GT(*cluster.sim().nextEventTime(), 1000u);
}

TEST(SteppingTest, RunUntilQuiescentDeliversTheWorkloadEarly) {
  Cluster cluster(tinySpec(AlgoStack::kEtob), 1);
  const Time at = cluster.runUntilQuiescent();
  // Long before the 8000-tick horizon, and with the whole 3x3 workload
  // stably delivered everywhere.
  EXPECT_LT(at, cluster.sim().config().maxTime);
  EXPECT_EQ(cluster.sim().pendingInputs(), 0u);
  EXPECT_TRUE(broadcastConverged(cluster.sim(), cluster.log()));
  // Quiescence is a fixed point here: going again moves one window at most.
  const Time again = cluster.runUntilQuiescent();
  EXPECT_GE(again, at);
}

// --- Live fault injection -----------------------------------------------------

TEST(FaultInjectionTest, MidRunCrashStopsTheProcessAndKeepsTheSpec) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.config.processCount = 4;
  spec.config.maxTime = 20000;
  spec.tauOmega = 0;
  spec.workload.perProcess = 4;
  Cluster cluster(spec, 9);

  cluster.advanceTo(800);
  EXPECT_TRUE(cluster.pattern().correct(3));
  cluster.crashAt(3, 900);
  EXPECT_TRUE(cluster.pattern().faulty(3));
  EXPECT_EQ(cluster.pattern().crashTime(3), 900u);
  cluster.runToHorizon();

  // The crashed process took no step at or after 900...
  const Trace& trace = cluster.sim().trace();
  for (const DeliverySnapshot& snap : trace.deliverySnapshots(3)) {
    EXPECT_LT(snap.time, 900u);
  }
  // ...and the survivors still satisfy the whole eTOB spec under the
  // injected pattern, converging among themselves.
  const BroadcastCheckReport rep =
      checkBroadcastRun(trace, cluster.log(), cluster.pattern());
  EXPECT_TRUE(rep.coreOk());
  EXPECT_TRUE(rep.causalOrderOk);
  EXPECT_TRUE(broadcastConverged(cluster.sim(), cluster.log()));
}

TEST(FaultInjectionTest, DetectorReStabilizesOnACorrectLeader) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.config.maxTime = 20000;
  Cluster cluster(spec, 9);
  cluster.advanceTo(1000);
  // p0 was the stable leader; crashing it forces a failover.
  cluster.crashAt(0, 1100);
  cluster.runToHorizon();
  const FdValue fd = cluster.sim().detector().valueAt(1, cluster.now());
  EXPECT_EQ(fd.leader, 1u);  // lowest remaining correct process
  const BroadcastCheckReport rep =
      checkBroadcastRun(cluster.sim().trace(), cluster.log(), cluster.pattern());
  EXPECT_TRUE(rep.coreOk());
  EXPECT_TRUE(broadcastConverged(cluster.sim(), cluster.log()));
}

TEST(FaultInjectionTest, CrashRejectionsAreEnforced) {
  Cluster cluster(tinySpec(AlgoStack::kEtob), 1);
  cluster.advanceTo(1000);
  EXPECT_THROW(cluster.crashAt(0, 500), InvariantError);  // the past
  cluster.crashAt(1, 2000);
  cluster.crashAt(2, 2000);
  // All three gone would leave no correct process.
  EXPECT_THROW(cluster.crashAt(0, 3000), InvariantError);
  // A rejected injection leaves NO trace: p0 is still correct and the
  // cluster still runs to a converged state on the surviving process.
  EXPECT_TRUE(cluster.pattern().correct(0));
  cluster.runToHorizon();
  EXPECT_TRUE(broadcastConverged(cluster.sim(), cluster.log()));
}

TEST(ClientTest, WorkloadAfterClientSubmissionIsRejected) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.workload.perProcess = 0;
  Cluster cluster(spec, 1);
  cluster.client(0).submitAt(100, {1});  // issues makeMsgId(0, 0)
  BroadcastWorkload w;
  w.perProcess = 2;  // would re-issue makeMsgId(0, 0)
  EXPECT_THROW(cluster.scheduleWorkload(w), InvariantError);
  BroadcastWorkload empty;
  empty.perProcess = 0;  // schedules nothing — still fine
  cluster.scheduleWorkload(empty);
}

TEST(ClientTest, SecondWorkloadIsRejected) {
  // Workload ids are always 0..perProcess-1 per origin, so a second
  // workload would re-issue the first one's ids — whether the first came
  // from the spec or from an explicit scheduleWorkload call.
  Cluster viaSpec(tinySpec(AlgoStack::kEtob), 1);  // spec schedules 3/process
  BroadcastWorkload w;
  w.perProcess = 2;
  EXPECT_THROW(viaSpec.scheduleWorkload(w), InvariantError);

  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.workload.perProcess = 0;
  Cluster viaCall(spec, 1);
  viaCall.scheduleWorkload(w);  // first non-empty workload: fine
  EXPECT_THROW(viaCall.scheduleWorkload(w), InvariantError);
}

TEST(ClientTest, PastTimeWorkloadIsRejected) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.workload.perProcess = 0;
  Cluster cluster(spec, 1);
  cluster.advanceTo(5000);
  BroadcastWorkload w;  // start defaults to 50 — now in the past
  w.perProcess = 2;
  EXPECT_THROW(cluster.scheduleWorkload(w), InvariantError);
}

TEST(ClusterSpecTest, KvReplicaRejectsABroadcastWorkload) {
  // Replicas consume ClientCommands; a scheduled BroadcastInput workload
  // would be silently dropped while still recorded in log().
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);  // perProcess = 3
  spec.kvReplica = true;
  EXPECT_THROW(Cluster(spec, 1), InvariantError);
}

TEST(ClusterSpecTest, CustomAutomatonRejectsANonEmptyWorkload) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);  // perProcess = 3
  spec.automaton = [](const SimConfig&, ProcessId) {
    return std::make_unique<EtobAutomaton>();
  };
  EXPECT_THROW(Cluster(spec, 1), InvariantError);
  spec.workload.perProcess = 0;
  Cluster ok(spec, 1);  // explicit: custom automata drive their own inputs
  EXPECT_FALSE(ok.capabilities().submits);
}

TEST(FaultInjectionTest, LivePartitionDefersButNeverDrops) {
  ClusterSpec spec = tinySpec(AlgoStack::kEtob);
  spec.config.maxTime = 20000;
  spec.workload.perProcess = 0;
  Cluster cluster(spec, 5);
  cluster.advanceTo(300);
  cluster.isolate(2, 400, 2400);
  Client c2 = cluster.client(2);
  const MsgId id = c2.submitAt(500, {7});  // broadcast INTO the partition
  cluster.runUntilQuiescent();
  for (ProcessId p = 0; p < cluster.processCount(); ++p) {
    const auto& d = cluster.client(p).delivered();
    EXPECT_TRUE(std::find(d.begin(), d.end(), id) != d.end()) << p;
  }
  // Nobody else could have seen it before the window healed.
  const auto stats = cluster.sim().trace().deliveryStats(0, id);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->firstSeen, 2400u);
}

// --- Scenario adapter ---------------------------------------------------------

TEST(ScenarioAdapterTest, RunScenarioEqualsManualClusterDrive) {
  const Scenario* s = findScenario("minority-crash");
  ASSERT_NE(s, nullptr);
  const ScenarioRunResult viaAdapter = runScenario(*s, 6);
  Cluster cluster(clusterSpec(*s), 6);
  cluster.runToHorizon();
  const ScenarioRunResult viaFacade = evaluateScenarioRun(*s, 6, cluster);
  EXPECT_EQ(viaAdapter.digest, viaFacade.digest);
  EXPECT_EQ(viaAdapter.pass, viaFacade.pass);
  EXPECT_EQ(viaAdapter.failures, viaFacade.failures);
  EXPECT_EQ(viaAdapter.eventsProcessed, viaFacade.eventsProcessed);
}

TEST(ScenarioAdapterTest, InstanceExposesItsCluster) {
  const Scenario* s = findScenario("stable-leader");
  ASSERT_NE(s, nullptr);
  ScenarioInstance inst = instantiateScenario(*s, 2);
  ASSERT_NE(inst.cluster, nullptr);
  EXPECT_EQ(inst.sim, &inst.cluster->sim());
  EXPECT_EQ(inst.log.size(), inst.cluster->log().size());
  inst.sim->run();  // legacy call shape still works
  EXPECT_GT(inst.sim->eventsProcessed(), 0u);
}

}  // namespace
}  // namespace wfd
