// Unit tests: the property checkers themselves, driven with synthetic
// traces — a checker bug would silently invalidate every integration
// test, so each property's detector is exercised both ways.
#include <gtest/gtest.h>

#include "checkers/broadcast_log.h"
#include "checkers/ec_checker.h"
#include "checkers/tob_checker.h"
#include "ec/ec_types.h"
#include "sim/failure_pattern.h"
#include "sim/trace.h"

namespace wfd {
namespace {

AppMsg msg(ProcessId origin, std::uint32_t seq,
           std::vector<MsgId> deps = {}) {
  AppMsg m;
  m.id = makeMsgId(origin, seq);
  m.origin = origin;
  m.causalDeps = std::move(deps);
  return m;
}

// --- Broadcast checker -------------------------------------------------------

TEST(BroadcastCheckerTest, CleanRunPasses) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0), b = msg(1, 0);
  log.record(a, 10);
  log.record(b, 12);
  trace.recordDelivered(0, 50, {a.id, b.id});
  trace.recordDelivered(1, 55, {a.id, b.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_TRUE(report.coreOk());
  EXPECT_TRUE(report.strongTobOk());
  EXPECT_TRUE(report.causalOrderOk);
  EXPECT_EQ(report.tau, 0u);
}

TEST(BroadcastCheckerTest, DetectsValidityViolation) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  log.record(a, 10);
  trace.recordDelivered(1, 50, {a.id});  // origin itself never delivers
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.validityOk);
}

TEST(BroadcastCheckerTest, ValidityIgnoresFaultyOrigins) {
  auto fp = FailurePattern::crashesAt(2, {{0, 20}});
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  log.record(a, 10);
  // Nobody delivers a's message; p0 is faulty so validity doesn't apply.
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_TRUE(report.validityOk);
}

TEST(BroadcastCheckerTest, DetectsAgreementViolation) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  log.record(a, 10);
  trace.recordDelivered(0, 50, {a.id});
  // p1 never delivers a.
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.agreementOk);
}

TEST(BroadcastCheckerTest, DetectsNoCreationViolation) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  trace.recordDelivered(0, 50, {makeMsgId(1, 9)});  // never broadcast
  trace.recordDelivered(1, 52, {makeMsgId(1, 9)});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.noCreationOk);
}

TEST(BroadcastCheckerTest, DetectsDeliveryBeforeBroadcast) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  log.record(a, 100);
  trace.recordDelivered(0, 50, {a.id});  // delivered before broadcast
  trace.recordDelivered(1, 120, {a.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.noCreationOk);
}

TEST(BroadcastCheckerTest, DetectsDuplication) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  log.record(a, 10);
  trace.recordDelivered(0, 50, {a.id, a.id});
  trace.recordDelivered(1, 50, {a.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.noDuplicationOk);
}

TEST(BroadcastCheckerTest, ComputesStabilityTau) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0), b = msg(1, 0);
  log.record(a, 10);
  log.record(b, 12);
  trace.recordDelivered(0, 40, {b.id});
  trace.recordDelivered(0, 60, {a.id, b.id});  // rewrite at t=60
  trace.recordDelivered(1, 70, {a.id, b.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_TRUE(report.coreOk());
  EXPECT_EQ(report.tauStability, 61u);
  EXPECT_FALSE(report.strongTobOk());
}

TEST(BroadcastCheckerTest, ComputesTotalOrderTau) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0), b = msg(1, 0);
  log.record(a, 10);
  log.record(b, 12);
  // Divergent orders at t=40/45, then both converge via rewrites.
  trace.recordDelivered(0, 40, {a.id, b.id});
  trace.recordDelivered(1, 45, {b.id, a.id});
  trace.recordDelivered(1, 80, {a.id, b.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_GE(report.tauTotalOrder, 45u);
  EXPECT_TRUE(report.agreementOk);
}

TEST(BroadcastCheckerTest, DetectsCausalViolation) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  const AppMsg b = msg(1, 0, {a.id});  // b depends on a
  log.record(a, 10);
  log.record(b, 20);
  trace.recordDelivered(0, 50, {b.id, a.id});  // b before its dependency
  trace.recordDelivered(1, 50, {b.id, a.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.causalOrderOk);
}

TEST(BroadcastCheckerTest, TransitiveCausalViolationDetected) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  BroadcastLog log;
  const AppMsg a = msg(0, 0);
  const AppMsg b = msg(1, 0, {a.id});
  const AppMsg c = msg(0, 1, {b.id});  // c -> b -> a transitively
  log.record(a, 10);
  log.record(b, 20);
  log.record(c, 30);
  trace.recordDelivered(0, 50, {c.id, a.id});  // c before a: transitive dep
  trace.recordDelivered(1, 50, {c.id, a.id});
  const auto report = checkBroadcastRun(trace, log, fp);
  EXPECT_FALSE(report.causalOrderOk);
}

// --- EC checker --------------------------------------------------------------

Payload propose(Instance l, std::uint64_t v) {
  return Payload::of(ProposalMade{l, Value{v}});
}
Payload decide(Instance l, std::uint64_t v) {
  return Payload::of(EcDecision{l, Value{v}});
}

TEST(EcCheckerTest, CleanRunPasses) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  for (ProcessId p = 0; p < 2; ++p) {
    trace.recordOutput(p, 10, propose(1, 1));
    trace.recordOutput(p, 20, decide(1, 1));
  }
  const auto report = checkEcRun(trace, fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_EQ(report.decidedByAllCorrect, 1u);
  EXPECT_EQ(report.agreementFromK, 1u);
}

TEST(EcCheckerTest, DetectsIntegrityViolation) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  trace.recordOutput(0, 10, propose(1, 1));
  trace.recordOutput(0, 20, decide(1, 1));
  trace.recordOutput(0, 25, decide(1, 1));  // responds twice
  const auto report = checkEcRun(trace, fp);
  EXPECT_FALSE(report.integrityOk);
}

TEST(EcCheckerTest, DetectsValidityViolation) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  trace.recordOutput(0, 10, propose(1, 0));
  trace.recordOutput(0, 20, decide(1, 1));  // 1 was never proposed
  const auto report = checkEcRun(trace, fp);
  EXPECT_FALSE(report.validityOk);
}

TEST(EcCheckerTest, AgreementFromKTracksLastDisagreement) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  for (Instance l = 1; l <= 3; ++l) {
    trace.recordOutput(0, l * 10, propose(l, 0));
    trace.recordOutput(1, l * 10, propose(l, 1));
  }
  trace.recordOutput(0, 100, decide(1, 0));
  trace.recordOutput(1, 100, decide(1, 1));  // disagree at 1
  trace.recordOutput(0, 110, decide(2, 1));
  trace.recordOutput(1, 110, decide(2, 1));  // agree at 2
  trace.recordOutput(0, 120, decide(3, 0));
  trace.recordOutput(1, 120, decide(3, 0));  // agree at 3
  const auto report = checkEcRun(trace, fp);
  EXPECT_EQ(report.agreementFromK, 2u);
  EXPECT_EQ(report.decidedByAllCorrect, 3u);
}

TEST(EcCheckerTest, TerminationCountsContiguousOnly) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  for (ProcessId p = 0; p < 2; ++p) {
    trace.recordOutput(p, 10, propose(1, 1));
    trace.recordOutput(p, 10, propose(3, 1));
    trace.recordOutput(p, 20, decide(1, 1));
    trace.recordOutput(p, 30, decide(3, 1));  // gap at 2
  }
  const auto report = checkEcRun(trace, fp);
  EXPECT_EQ(report.decidedByAllCorrect, 1u);
}

// --- EIC checker -------------------------------------------------------------

Payload decideEic(Instance l, std::uint64_t v) {
  return Payload::of(EicDecision{l, Value{v}});
}

TEST(EicCheckerTest, RevisionsAllowedBeforeK) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  for (ProcessId p = 0; p < 2; ++p) {
    trace.recordOutput(p, 10, Payload::of(ProposalMade{1, Value{0}}));
    trace.recordOutput(p, 10, Payload::of(ProposalMade{1, Value{1}}));
    trace.recordOutput(p, 10, Payload::of(ProposalMade{2, Value{1}}));
  }
  trace.recordOutput(0, 20, decideEic(1, 0));
  trace.recordOutput(0, 30, decideEic(1, 1));  // revision of instance 1
  trace.recordOutput(1, 25, decideEic(1, 1));
  trace.recordOutput(0, 40, decideEic(2, 1));
  trace.recordOutput(1, 40, decideEic(2, 1));
  const auto report = checkEicRun(trace, fp);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.finalAgreementOk);
  EXPECT_EQ(report.integrityFromK, 2u);
  EXPECT_EQ(report.decidedByAllCorrect, 2u);
}

TEST(EicCheckerTest, DetectsFinalDisagreement) {
  auto fp = FailurePattern::noFailures(2);
  Trace trace(2);
  for (ProcessId p = 0; p < 2; ++p) {
    trace.recordOutput(p, 10, Payload::of(ProposalMade{1, Value{0}}));
    trace.recordOutput(p, 10, Payload::of(ProposalMade{1, Value{1}}));
  }
  trace.recordOutput(0, 20, decideEic(1, 0));
  trace.recordOutput(1, 20, decideEic(1, 1));
  const auto report = checkEicRun(trace, fp);
  EXPECT_FALSE(report.finalAgreementOk);
}

}  // namespace
}  // namespace wfd
