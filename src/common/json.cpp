#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <utility>

#include "common/ensure.h"

namespace wfd {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(std::uint64_t u) {
  Json j;
  j.kind_ = Kind::kUInt;
  j.uint_ = u;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::asBool() const {
  WFD_ENSURE_MSG(kind_ == Kind::kBool, "Json::asBool on non-bool");
  return bool_;
}

std::uint64_t Json::asUInt() const {
  WFD_ENSURE_MSG(kind_ == Kind::kUInt, "Json::asUInt on non-number");
  return uint_;
}

const std::string& Json::asString() const {
  WFD_ENSURE_MSG(kind_ == Kind::kString, "Json::asString on non-string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  WFD_ENSURE_MSG(kind_ == Kind::kArray, "Json::items on non-array");
  return items_;
}

const std::map<std::string, Json>& Json::fields() const {
  WFD_ENSURE_MSG(kind_ == Kind::kObject, "Json::fields on non-object");
  return fields_;
}

void Json::push(Json v) {
  WFD_ENSURE_MSG(kind_ == Kind::kArray, "Json::push on non-array");
  items_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  WFD_ENSURE_MSG(kind_ == Kind::kObject, "Json::set on non-object");
  fields_[key] = std::move(v);
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

namespace {

void dumpString(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dumpValue(const Json& j, std::string& out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += j.asBool() ? "true" : "false";
      return;
    case Json::Kind::kUInt:
      out += std::to_string(j.asUInt());
      return;
    case Json::Kind::kString:
      dumpString(j.asString(), out);
      return;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dumpValue(item, out);
      }
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : j.fields()) {
        if (!first) out += ',';
        first = false;
        dumpString(key, out);
        out += ':';
        dumpValue(value, out);
      }
      out += '}';
      return;
    }
  }
}

/// Recursive-descent parser over the canonical subset.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    std::optional<Json> v = value();
    if (v) {
      skipWs();
      if (pos_ != text_.size()) v = fail("trailing characters after value");
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  std::optional<Json> fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
                return std::nullopt;
              }
            }
            if (code > 0x7f) {
              // The writer only emits \u00XX for control bytes; anything
              // larger would need UTF-8 encoding this codec doesn't do.
              fail("\\u escape beyond 0x7f unsupported");
              return std::nullopt;
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape");
            return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> value() {
    // Depth guard: malformed input must yield a parse error, never a
    // stack overflow from deeply nested brackets.
    if (depth_ >= 128) return fail("nesting too deep");
    ++depth_;
    std::optional<Json> v = valueInner();
    --depth_;
    return v;
  }

  std::optional<Json> valueInner() {
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == 'n') {
      if (literal("null")) return Json::null();
      return fail("bad literal");
    }
    if (c == 't') {
      if (literal("true")) return Json::boolean(true);
      return fail("bad literal");
    }
    if (c == 'f') {
      if (literal("false")) return Json::boolean(false);
      return fail("bad literal");
    }
    if (c == '"') {
      std::optional<std::string> s = parseString();
      if (!s) return std::nullopt;
      return Json::str(std::move(*s));
    }
    if (c >= '0' && c <= '9') return number();
    if (c == '[') return arrayValue();
    if (c == '{') return objectValue();
    return fail("unexpected character");
  }

  std::optional<Json> number() {
    std::uint64_t v = 0;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > (UINT64_MAX - digit) / 10) return fail("number overflows u64");
      v = v * 10 + digit;
      ++pos_;
      ++digits;
    }
    if (digits == 0) return fail("expected digits");
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return fail("only unsigned integers supported");
    }
    return Json::number(v);
  }

  std::optional<Json> arrayValue() {
    ++pos_;  // '['
    Json arr = Json::array();
    skipWs();
    if (consume(']')) return arr;
    while (true) {
      std::optional<Json> item = value();
      if (!item) return std::nullopt;
      arr.push(std::move(*item));
      if (consume(',')) continue;
      if (consume(']')) return arr;
      return fail("expected ',' or ']'");
    }
  }

  std::optional<Json> objectValue() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skipWs();
    if (consume('}')) return obj;
    while (true) {
      skipWs();
      std::optional<std::string> key = parseString();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected ':'");
      std::optional<Json> v = value();
      if (!v) return std::nullopt;
      // Duplicate keys are an error, not a silent last-wins overwrite:
      // the canonical writer never emits them, so one in a hand-edited
      // corpus file is a stale-line mistake that must fail loudly.
      if (obj.find(*key) != nullptr) return fail("duplicate object key");
      obj.set(*key, std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return obj;
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dumpValue(*this, out);
  return out;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text).run(error);
}

std::string jsonQuoted(const std::string& s) {
  std::string out;
  dumpString(s, out);
  return out;
}

}  // namespace wfd
