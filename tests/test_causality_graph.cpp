// Unit tests: the causality graph CG_i and UpdatePromote of Algorithm 5.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/ensure.h"
#include "etob/causality_graph.h"

namespace wfd {
namespace {

AppMsg msg(ProcessId origin, std::uint32_t seq) {
  AppMsg m;
  m.id = makeMsgId(origin, seq);
  m.origin = origin;
  m.body = {seq};
  return m;
}

TEST(CausalityGraphTest, AddMessageIdempotent) {
  CausalityGraph cg;
  cg.addMessage(msg(0, 0), {});
  cg.addMessage(msg(0, 0), {});
  EXPECT_EQ(cg.messageCount(), 1u);
}

TEST(CausalityGraphTest, EdgesFromDeps) {
  CausalityGraph cg;
  const AppMsg a = msg(0, 0), b = msg(0, 1);
  cg.addMessage(a, {});
  cg.addMessage(b, {a.id});
  EXPECT_TRUE(cg.causallyPrecedes(a.id, b.id));
  EXPECT_FALSE(cg.causallyPrecedes(b.id, a.id));
}

TEST(CausalityGraphTest, UnknownDepBecomesPlaceholder) {
  CausalityGraph cg;
  const AppMsg b = msg(0, 1);
  const MsgId ghost = makeMsgId(9, 9);
  cg.addMessage(b, {ghost});
  EXPECT_EQ(cg.messageCount(), 2u);  // placeholder node counts
  EXPECT_FALSE(cg.contains(ghost)) << "no content yet";
  EXPECT_TRUE(cg.contains(b.id));
  EXPECT_TRUE(cg.causallyPrecedes(ghost, b.id));
}

TEST(CausalityGraphTest, PlaceholderBlocksDependentInPromote) {
  CausalityGraph cg;
  const AppMsg a = msg(1, 0);
  const AppMsg b = msg(0, 1);
  const MsgId ghost = makeMsgId(9, 9);
  cg.addMessage(a, {});
  cg.addMessage(b, {ghost});  // b waits for ghost's content
  auto seq = cg.extendPromote({});
  EXPECT_EQ(seq, (std::vector<MsgId>{a.id}))
      << "b is causally buffered; unrelated a still promotable";
  // Content arrives (e.g. via a peer's update): b unblocks, after ghost.
  AppMsg ghostMsg;
  ghostMsg.id = ghost;
  ghostMsg.origin = 9 % 4;
  cg.addMessage(ghostMsg, {});
  seq = cg.extendPromote(seq);
  EXPECT_EQ(seq, (std::vector<MsgId>{a.id, ghost, b.id}));
}

TEST(CausalityGraphTest, PlaceholderBlocksTransitively) {
  CausalityGraph cg;
  const MsgId ghost = makeMsgId(9, 9);
  const AppMsg b = msg(0, 1);
  const AppMsg c = msg(0, 2);
  cg.addMessage(b, {ghost});
  cg.addMessage(c, {b.id});
  EXPECT_TRUE(cg.extendPromote({}).empty());
}

TEST(CausalityGraphTest, UnionFillsPlaceholderBody) {
  CausalityGraph mine, peers;
  const AppMsg a = msg(1, 0);
  const AppMsg b = msg(0, 1);
  peers.addMessage(a, {});
  mine.addMessage(b, {a.id});  // a unknown here: placeholder
  EXPECT_TRUE(mine.extendPromote({}).empty());
  mine.unionWith(peers);
  EXPECT_EQ(mine.extendPromote({}), (std::vector<MsgId>{a.id, b.id}));
}

TEST(CausalityGraphTest, UnionMergesBodiesAndEdges) {
  CausalityGraph a, b;
  const AppMsg m0 = msg(0, 0), m1 = msg(1, 0);
  a.addMessage(m0, {});
  b.addMessage(m0, {});
  b.addMessage(m1, {m0.id});
  a.unionWith(b);
  EXPECT_EQ(a.messageCount(), 2u);
  EXPECT_TRUE(a.causallyPrecedes(m0.id, m1.id));
  EXPECT_EQ(a.message(m1.id).origin, 1u);
}

TEST(CausalityGraphTest, TopologicalOrderRespectsEdgesWithIdTieBreak) {
  CausalityGraph cg;
  const AppMsg a = msg(1, 0), b = msg(0, 0), c = msg(0, 1);
  cg.addMessage(a, {});
  cg.addMessage(b, {a.id});
  cg.addMessage(c, {a.id});
  const auto order = cg.topologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], a.id);
  EXPECT_EQ(order[1], std::min(b.id, c.id));  // tie-break by id
}

TEST(CausalityGraphTest, ExtendPromoteKeepsPrefixAndCoversAll) {
  CausalityGraph cg;
  const AppMsg a = msg(0, 0), b = msg(1, 0), c = msg(0, 1);
  cg.addMessage(a, {});
  cg.addMessage(b, {});
  cg.addMessage(c, {a.id, b.id});
  std::vector<MsgId> promote{b.id};
  const auto extended = cg.extendPromote(promote);
  ASSERT_EQ(extended.size(), 3u);
  EXPECT_EQ(extended[0], b.id);  // prefix preserved
  // c after both deps:
  const auto pos = [&](MsgId id) {
    return std::find(extended.begin(), extended.end(), id) - extended.begin();
  };
  EXPECT_LT(pos(a.id), pos(c.id));
  EXPECT_LT(pos(b.id), pos(c.id));
}

TEST(CausalityGraphTest, ExtendPromoteOfEmptyIsTopoOrder) {
  CausalityGraph cg;
  const AppMsg a = msg(0, 0), b = msg(1, 0);
  cg.addMessage(a, {});
  cg.addMessage(b, {a.id});
  EXPECT_EQ(cg.extendPromote({}), cg.topologicalOrder());
}

TEST(CausalityGraphTest, DuplicatePromoteRejected) {
  CausalityGraph cg;
  const AppMsg a = msg(0, 0);
  cg.addMessage(a, {});
  EXPECT_THROW(cg.extendPromote({a.id, a.id}), InvariantError);
}

TEST(CausalityGraphTest, FrontierModeSameTransitiveClosure) {
  // Build the same message history in both modes; reachability must agree.
  CausalityGraph full(CgEdgeMode::kFullPaper), frontier(CgEdgeMode::kFrontier);
  std::vector<AppMsg> msgs;
  std::vector<MsgId> known;
  for (std::uint32_t i = 0; i < 12; ++i) {
    AppMsg m = msg(i % 3, i / 3);
    msgs.push_back(m);
    full.addMessage(m, known);
    frontier.addMessage(m, known);
    known.push_back(m.id);
  }
  EXPECT_LE(frontier.edgeCount(), full.edgeCount());
  for (const AppMsg& x : msgs) {
    for (const AppMsg& y : msgs) {
      if (x.id == y.id) continue;
      EXPECT_EQ(full.causallyPrecedes(x.id, y.id),
                frontier.causallyPrecedes(x.id, y.id))
          << x.id << " -> " << y.id;
    }
  }
}

TEST(CausalityGraphTest, FrontierModeSamePromoteSequence) {
  CausalityGraph full(CgEdgeMode::kFullPaper), frontier(CgEdgeMode::kFrontier);
  std::vector<MsgId> known;
  for (std::uint32_t i = 0; i < 9; ++i) {
    AppMsg m = msg(i % 3, i / 3);
    full.addMessage(m, known);
    frontier.addMessage(m, known);
    known.push_back(m.id);
  }
  EXPECT_EQ(full.extendPromote({}), frontier.extendPromote({}));
}

TEST(CausalityGraphTest, MessageLookupThrowsForUnknown) {
  CausalityGraph cg;
  EXPECT_THROW(cg.message(makeMsgId(1, 1)), InvariantError);
}

TEST(CausalityGraphTest, FrontierModeCollapsesDominatedExplicitDeps) {
  // Mutation guard on the dominance collapse: explicit deps {a, b} with
  // a ⇝ b must produce a single edge b -> c (a is implied transitively).
  CausalityGraph cg(CgEdgeMode::kFrontier);
  const AppMsg a = msg(0, 0), b = msg(0, 1), c = msg(0, 2);
  cg.addMessage(a, {});
  cg.addMessage(b, {a.id});
  const std::size_t before = cg.edgeCount();
  cg.addMessage(c, {a.id, b.id});
  EXPECT_EQ(cg.edgeCount(), before + 1) << "dominated dep a must collapse";
  EXPECT_TRUE(cg.causallyPrecedes(a.id, c.id)) << "still implied via b";
  EXPECT_EQ(cg.frontier(), (std::vector<MsgId>{c.id}));
  // Pairwise-incomparable deps all survive.
  const AppMsg d = msg(1, 0), e = msg(2, 0), f = msg(1, 1);
  cg.addMessage(d, {});
  cg.addMessage(e, {});
  const std::size_t mid = cg.edgeCount();
  cg.addMessage(f, {c.id, d.id, e.id});
  EXPECT_EQ(cg.edgeCount(), mid + 3) << "incomparable deps must all stay";
}

TEST(CausalityGraphTest, IncrementalMatchesBatchOnRandomEventStreams) {
  // Differential check of the incremental promote engine: after EVERY
  // event (add with placeholders, union) the maintained sequence must
  // equal replaying the batch reference over the same history.
  for (const CgEdgeMode mode :
       {CgEdgeMode::kFullPaper, CgEdgeMode::kFrontier}) {
    std::uint64_t rng =
        0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(mode);
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    // Global dep structure: message k depends on a random subset of the
    // ids created before it, so any ingestion order is acyclic and
    // out-of-order ingestion creates placeholders.
    constexpr std::uint32_t kMsgs = 48;
    std::vector<AppMsg> msgs;
    std::vector<std::vector<MsgId>> deps(kMsgs);
    for (std::uint32_t k = 0; k < kMsgs; ++k) {
      msgs.push_back(msg(k % 4, k));
      for (std::uint32_t j = 0; j < k; ++j) {
        if (next() % 4 == 0) deps[k].push_back(msgs[j].id);
      }
    }
    auto shuffled = [&] {
      std::vector<std::uint32_t> order(kMsgs);
      for (std::uint32_t k = 0; k < kMsgs; ++k) order[k] = k;
      for (std::uint32_t k = kMsgs; k > 1; --k) {
        std::swap(order[k - 1], order[next() % k]);
      }
      return order;
    };
    CausalityGraph a(mode), b(mode);
    std::vector<MsgId> expectA, expectB;
    auto check = [](CausalityGraph& cg, std::vector<MsgId>& expect) {
      expect = cg.extendPromote(expect);  // batch reference (const)
      ASSERT_EQ(cg.extendPromote(), expect);
    };
    const auto orderA = shuffled(), orderB = shuffled();
    for (std::uint32_t step = 0; step < kMsgs; ++step) {
      a.addMessage(msgs[orderA[step]], deps[orderA[step]]);
      check(a, expectA);
      b.addMessage(msgs[orderB[step]], deps[orderB[step]]);
      check(b, expectB);
      if (step % 5 == 4) {
        a.unionWith(b);
        check(a, expectA);
      }
      if (step % 7 == 6) {
        b.unionWith(a);
        check(b, expectB);
      }
    }
    a.unionWith(b);
    check(a, expectA);
    EXPECT_EQ(expectA.size(), kMsgs) << "everything promotable in the end";
    // Rebase equivalence: resetting onto a committed prefix equals the
    // batch extension of that prefix.
    const std::vector<MsgId> base(expectA.begin(),
                                  expectA.begin() + kMsgs / 2);
    const auto viaBatch = a.extendPromote(base);
    EXPECT_EQ(a.resetPromote(base), viaBatch);
  }
}

TEST(CausalityGraphTest, FrontierReturnsCausallyMaximal) {
  CausalityGraph cg;
  const AppMsg a = msg(0, 0), b = msg(0, 1), c = msg(1, 0);
  cg.addMessage(a, {});
  cg.addMessage(b, {a.id});
  cg.addMessage(c, {});
  const auto f = cg.frontier();
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(std::find(f.begin(), f.end(), b.id) != f.end());
  EXPECT_TRUE(std::find(f.begin(), f.end(), c.id) != f.end());
}

}  // namespace
}  // namespace wfd
