// Integration tests: the strongly consistent baseline (TOB via consensus)
// — must satisfy ALL six TOB properties from time 0 in majority-correct
// environments, and must STALL when a majority crashes (the availability
// price of Sigma that ETOB does not pay — the paper's headline contrast).
#include <gtest/gtest.h>

#include <memory>

#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "fd/detectors.h"
#include "helpers.h"
#include "tob/tob_via_consensus.h"

namespace wfd {
namespace {

SimConfig tobConfig(std::size_t n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 40000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

Simulator makeTobSim(SimConfig cfg, FailurePattern fp, Time tauOmega,
                     OmegaPreStabilization mode) {
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega, mode);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p,
                   std::make_unique<TobViaConsensusAutomaton>(p, cfg.processCount));
  }
  return sim;
}

TEST(TobTest, StableLeaderSatisfiesStrongTob) {
  auto cfg = tobConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeTobSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  BroadcastWorkload w;
  w.perProcess = 5;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil(
      [&](const Simulator& s) { return broadcastConverged(s, log); }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.strongTobOk()) << "tau = " << report.tau;
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(sim.trace().prefixViolations(p), 0u)
        << "strong TOB never revokes a delivery";
  }
}

TEST(TobTest, SafeAcrossLeaderChanges) {
  // Rotating then stabilizing Omega: deliveries may be delayed but never
  // inconsistent (Paxos safety) — stability/total order hold throughout.
  auto cfg = tobConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeTobSim(cfg, fp, 2000, OmegaPreStabilization::kRotating);
  BroadcastWorkload w;
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 3000 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(sim.trace().prefixViolations(p), 0u);
  }
}

TEST(TobTest, SurvivesMinorityCrash) {
  auto cfg = tobConfig(5);
  auto fp = Environments::minorityCrash(5, 1200);  // 2 of 5 crash
  auto sim = makeTobSim(cfg, fp, 2000, OmegaPreStabilization::kRotating);
  BroadcastWorkload w;
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 3500 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(TobTest, StallsWithoutCorrectMajority) {
  // THE contrast with ETOB: when 3 of 5 crash, consensus-based TOB can
  // make no further progress — messages submitted after the crash are
  // never delivered.
  auto cfg = tobConfig(5);
  cfg.maxTime = 20000;
  auto fp = Environments::majorityCrash(5, 1500);
  auto sim = makeTobSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  BroadcastWorkload w;
  w.start = 3000;  // all broadcasts happen after the majority is gone
  w.perProcess = 3;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.run();
  for (ProcessId p : fp.correctSet()) {
    EXPECT_TRUE(sim.trace().currentDelivered(p).empty())
        << "no quorum => no decision => no delivery at p" << p;
  }
}

TEST(TobTest, PreCrashDeliveriesSurviveMajorityLoss) {
  // Deliveries decided before the crash remain stable afterwards.
  auto cfg = tobConfig(5);
  cfg.maxTime = 20000;
  auto fp = Environments::majorityCrash(5, 6000);
  auto sim = makeTobSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  BroadcastWorkload w;
  w.start = 100;
  w.perProcess = 3;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.run();
  for (ProcessId p : fp.correctSet()) {
    EXPECT_FALSE(sim.trace().currentDelivered(p).empty());
    EXPECT_EQ(sim.trace().prefixViolations(p), 0u);
  }
}

// Sweep: strong TOB properties across seeds and process counts.
class TobSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(TobSweepTest, StrongTobHolds) {
  const auto [seed, n] = GetParam();
  auto cfg = tobConfig(n, seed);
  auto fp = FailurePattern::noFailures(n);
  auto sim = makeTobSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  BroadcastWorkload w;
  w.perProcess = 3;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil(
      [&](const Simulator& s) { return broadcastConverged(s, log); }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.strongTobOk()) << "tau = " << report.tau;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TobSweepTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 11, 29),
                       ::testing::Values<std::size_t>(3, 5, 7)));

}  // namespace
}  // namespace wfd
