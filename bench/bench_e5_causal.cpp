// E5 — Causal order during partition periods (paper §1 property (3), §5).
//
// Claim: Algorithm 5 preserves causal order in EVERY delivery sequence,
// even while Omega outputs different leaders at different processes — at
// no extra failure-detector cost. The Dynamo-style strawman (gossip +
// last-writer-wins) converges too, but it inverts causal order freely.
//
// Method: causally chained workload (per-origin chains + cross-process
// dependencies) under a long split-brain phase; count causal inversions
// in ETOB snapshots (checker) and in the gossip store's apply order.
#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>

#include "bench_util.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "rsm/gossip_lww.h"
#include "rsm/state_machines.h"

namespace wfd::bench {
namespace {

struct Result {
  std::size_t appliedEvents = 0;
  std::size_t inversions = 0;
};

SimConfig e5Config(std::size_t n, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 40000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

constexpr Time kClientStagger = 5;  // < minDelay: client-session causality
constexpr Time kStart = 150;
constexpr Time kInterval = 120;
constexpr std::size_t kPerProcess = 8;

/// Client-session workload: message i of p depends on its own previous
/// message AND on message i of p-1, written only kClientStagger ticks
/// earlier AT ANOTHER REPLICA — i.e. the dependency has NOT traversed the
/// network when the dependent is broadcast (a client that read at one
/// replica and writes at the next). The paper's C(m) covers this: the
/// client supplies the context C(m) through Client::submitAt; Algorithm 5
/// must buffer accordingly. The facade allocates makeMsgId(p, i) ids, so
/// cross-client dependencies are predictable.
template <typename MakeBody>
void scheduleClientSessionWorkload(Cluster& cluster, MakeBody makeBody) {
  for (ProcessId p = 0; p < 4; ++p) {
    Client client = cluster.client(p);
    for (std::size_t i = 0; i < kPerProcess; ++i) {
      const Time at = kStart + kInterval * i + kClientStagger * p;
      std::vector<MsgId> deps;
      if (i > 0) deps.push_back(makeMsgId(p, static_cast<std::uint32_t>(i - 1)));
      if (p > 0) deps.push_back(makeMsgId(p - 1, static_cast<std::uint32_t>(i)));
      client.submitAt(at, makeBody(makeMsgId(p, static_cast<std::uint32_t>(i)), i),
                      std::move(deps));
    }
  }
}

Result etobRun(std::uint64_t seed) {
  auto cfg = e5Config(4, seed);
  auto fp = FailurePattern::noFailures(4);
  auto cluster =
      makeEtobCluster(cfg, fp, 4000, OmegaPreStabilization::kSplitBrain);
  Simulator& sim = cluster.sim();
  scheduleClientSessionWorkload(
      cluster, [](MsgId, std::size_t i) { return Command{i}; });
  const BroadcastLog& log = cluster.log();
  cluster.runUntil([&](const Simulator& s) {
    return s.now() > 6000 && broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  Result r;
  for (ProcessId p = 0; p < 4; ++p) {
    r.appliedEvents += sim.trace().currentDelivered(p).size();
  }
  // The checker counts one error line per violating (snapshot, pair).
  for (const auto& e : report.errors) {
    if (e.rfind("causal-order", 0) == 0) ++r.inversions;
  }
  return r;
}

Result gossipRun(std::uint64_t seed) {
  auto cfg = e5Config(4, seed);
  auto fp = FailurePattern::noFailures(4);
  auto cluster =
      makeScenarioCluster("gossip-lww-convergence", cfg, fp, 0,
                          OmegaPreStabilization::kStable);
  Simulator& sim = cluster.sim();
  // Same client-session workload; bodies are LWW puts with per-message
  // keys so nothing is shadowed and every update is applied somewhere.
  scheduleClientSessionWorkload(
      cluster, [](MsgId id, std::size_t i) { return makePut(id, i); });
  const BroadcastLog& log = cluster.log();
  cluster.runToHorizon();
  // Apply order per process from GossipApplied outputs; an inversion is a
  // declared dependency applied AFTER its dependent (or never).
  Result r;
  for (ProcessId p = 0; p < 4; ++p) {
    std::unordered_map<MsgId, std::size_t> applyIndex;
    for (const auto& ev : sim.trace().outputs(p)) {
      if (const auto* applied = ev.value.as<GossipApplied>()) {
        applyIndex.emplace(applied->id, applyIndex.size());
      }
    }
    r.appliedEvents += applyIndex.size();
    for (MsgId id : log.ids()) {
      auto self = applyIndex.find(id);
      if (self == applyIndex.end()) continue;
      for (MsgId dep : log.find(id)->deps) {
        auto d = applyIndex.find(dep);
        if (d == applyIndex.end() || d->second > self->second) ++r.inversions;
      }
    }
  }
  return r;
}

void printTable() {
  std::printf("E5: causal-order inversions under split-brain Omega\n"
              "(expect ETOB = 0; gossip/LWW > 0)\n\n");
  Table t({"system", "applied", "inversions"});
  Result e{}, g{};
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto a = etobRun(seed);
    auto b = gossipRun(seed);
    e.appliedEvents += a.appliedEvents;
    e.inversions += a.inversions;
    g.appliedEvents += b.appliedEvents;
    g.inversions += b.inversions;
  }
  t.row({"ETOB (Alg 5)", std::to_string(e.appliedEvents),
         std::to_string(e.inversions)});
  t.row({"gossip LWW", std::to_string(g.appliedEvents),
         std::to_string(g.inversions)});
  std::printf("\n");
}

void BM_EtobCausalWorkload(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = etobRun(seed++);
    benchmark::DoNotOptimize(r);
    state.counters["inversions"] = static_cast<double>(r.inversions);
  }
}
BENCHMARK(BM_EtobCausalWorkload)->Unit(benchmark::kMillisecond);

void BM_GossipCausalWorkload(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = gossipRun(seed++);
    benchmark::DoNotOptimize(r);
    state.counters["inversions"] = static_cast<double>(r.inversions);
  }
}
BENCHMARK(BM_GossipCausalWorkload)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
