// Replicated key-value store under a majority crash — the paper's
// motivating scenario (Dynamo-style availability, §1/§6).
//
// Two facade clusters replicate the same KvStore (ClusterSpec::kvReplica):
//   * eventually consistent — KvStore over ET OB (Algorithm 5),
//   * strongly consistent   — KvStore over TOB-via-Paxos.
// At t=2000 three of five processes crash (no correct majority). Writes
// issued through the surviving replicas' Clients after the crash commit
// on the eventual cluster and stall forever on the strong one: the
// quorum detector Sigma is exactly what separates them (Theorem 2 + [8]).
#include <cstdio>

#include "api/cluster.h"

using namespace wfd;

namespace {

ClusterSpec kvSpec(AlgoStack stack, const FailurePattern& fp) {
  ClusterSpec spec;
  spec.stack = stack;
  spec.kvReplica = true;
  spec.config.processCount = 5;
  spec.config.maxTime = 15000;
  spec.config.timeoutPeriod = 10;
  spec.config.minDelay = 20;
  spec.config.maxDelay = 40;
  spec.pattern = [fp](std::size_t) { return fp; };
  spec.tauOmega = 2500;
  spec.omegaMode = OmegaPreStabilization::kSplitBrain;
  spec.workload.perProcess = 0;  // writes come from the clients below
  return spec;
}

void scheduleWrites(Cluster& cluster) {
  // Writes from the two survivors, all AFTER the majority crash.
  Client c0 = cluster.client(0);
  Client c1 = cluster.client(1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    c0.putAt(3000 + 100 * i, i, 100 + i);
    c1.putAt(3050 + 100 * i, 10 + i, 200 + i);
  }
}

void report(Cluster& cluster, const char* name) {
  std::printf("%s cluster after the run:\n", name);
  for (ProcessId p : cluster.pattern().correctSet()) {
    Client client = cluster.client(p);
    const Client::KvStats kv = client.kvStats();
    const auto v3 = client.kvGet(3);
    std::printf("  p%zu: %zu keys, %llu commands applied, get(3)=%s\n", p,
                kv.keys, static_cast<unsigned long long>(kv.applied),
                v3.has_value() ? std::to_string(*v3).c_str() : "-");
  }
}

void runCluster(AlgoStack stack, const FailurePattern& fp, const char* name) {
  Cluster cluster(kvSpec(stack, fp), /*seed=*/7);
  scheduleWrites(cluster);
  cluster.runToHorizon();
  report(cluster, name);
}

}  // namespace

int main() {
  std::printf("== Replicated KV store, n=5, 3 crash at t=2000, writes at "
              "t>=3000 ==\n\n");
  const FailurePattern fp = Environments::majorityCrash(5, 2000);

  // Eventually consistent cluster: Omega is all it needs.
  runCluster(AlgoStack::kEtob, fp, "ETOB (eventually consistent)");
  std::printf("\n");
  // Strongly consistent cluster: needs majority quorums (Sigma) — gone.
  runCluster(AlgoStack::kTobViaConsensus, fp, "TOB/Paxos (strongly consistent)");

  std::printf("\nThe strong cluster cannot commit a single post-crash write —\n"
              "the exact availability price of Sigma the paper quantifies.\n");
  return 0;
}
