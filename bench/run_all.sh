#!/usr/bin/env bash
# Runs every bench_e* executable and records one merged JSON trajectory file.
#
# Usage:
#   bench/run_all.sh [BUILD_DIR] [LABEL]
#
#   BUILD_DIR  directory containing bench/bench_e* binaries (default: build)
#   LABEL      tag embedded in the output filename               (default: git short SHA)
#
# Output:
#   BENCH_<LABEL>.json in the repo root — schema documented in
#   docs/BENCHMARKS.md. Each bench also writes its raw Google Benchmark
#   JSON to <BUILD_DIR>/bench/json/<bench>.json.
#
# Knobs:
#   WFD_BENCH_MIN_TIME   per-benchmark min time in seconds, as a plain
#                        number (default 0.05; raise for stable numbers,
#                        lower for a smoke run). Keep it suffix-free:
#                        benchmark <= 1.7 silently ignores "0.05s"-style
#                        values and falls back to its 0.5s default.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
label="${2:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo local)}"
min_time="${WFD_BENCH_MIN_TIME:-0.05}"

bench_dir="$build_dir/bench"
json_dir="$bench_dir/json"
out_file="$repo_root/BENCH_${label}.json"

if ! ls "$bench_dir"/bench_e* >/dev/null 2>&1; then
  echo "error: no bench binaries under $bench_dir — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

mkdir -p "$json_dir"

benches=()
for exe in "$bench_dir"/bench_e*; do
  [ -x "$exe" ] || continue
  name="$(basename "$exe")"
  echo "==> $name"
  "$exe" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$json_dir/$name.json" \
    --benchmark_out_format=json
  benches+=("$json_dir/$name.json")
  echo
done

# Merge the per-bench Google Benchmark JSON files into one trajectory file:
# {label, timestamp, context, benches: {<bench_name>: [benchmark entries]}}.
jq -s \
  --arg lbl "$label" \
  '{
     "label": $lbl,
     "timestamp": .[0].context.date,
     context: (.[0].context | {host_name, num_cpus, mhz_per_cpu, library_build_type}),
     benches: (map({key: (.context.executable | split("/") | last),
                    value: [.benchmarks[] | del(.family_index, .per_family_instance_index)]})
               | from_entries)
   }' "${benches[@]}" > "$out_file"

echo "wrote $out_file ($(jq '[.benches[] | length] | add' "$out_file") benchmark entries from ${#benches[@]} benches)"
