// Unit tests: the fair-lossy NetworkModel decorators (sim/lossy_model.h)
// — i.i.d. drops, hash-scheduled Gilbert–Elliott bursts, deterministic
// one-way outages, gray-failure degradation — plus the canonical
// composition-order guard (ensureCanonicalComposition) and the
// order-mutation evidence that makes the guard non-vacuous: swapping a
// lossy layer outside a partition observably changes which copies
// survive.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "sim/lossy_model.h"
#include "sim/network_model.h"

namespace wfd {
namespace {

LinkSend send(ProcessId from, ProcessId to, Time at) {
  return LinkSend{from, to, at, 0};
}

std::shared_ptr<const NetworkModel> fixedDelay(Time d) {
  return std::make_shared<UniformDelayModel>(d, d, /*fixed=*/true);
}

// --- IidLossModel ------------------------------------------------------------

TEST(IidLossModelTest, DropsRoughlyAtRateAndNeverBelowZeroCopies) {
  IidLossModel::Config cfg;
  cfg.num = 1;
  cfg.den = 4;
  IidLossModel m(std::make_shared<UniformDelayModel>(10, 20), cfg);
  EXPECT_TRUE(m.mayDrop());
  Rng rng(3);
  int dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 100), rng, arrivals);
    ASSERT_LE(arrivals.size(), 1u);
    dropped += arrivals.empty() ? 1 : 0;
  }
  // 1/4 rate over 1000 sends: a wide deterministic band around 250.
  EXPECT_GT(dropped, 150);
  EXPECT_LT(dropped, 350);
}

TEST(IidLossModelTest, RateZeroDrawsNothingButKeepsTheCapability) {
  // The loss=0 ≡ legacy differential rests on both halves: mayDrop()
  // still arms the retransmission layer, yet the rng draw sequence is
  // untouched so the schedule replays the lossless run bit-for-bit.
  IidLossModel::Config cfg;
  cfg.num = 0;
  cfg.den = 1;
  IidLossModel m(std::make_shared<UniformDelayModel>(10, 40), cfg);
  EXPECT_TRUE(m.mayDrop());
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 100), a, arrivals);
    EXPECT_EQ(arrivals.size(), 1u);
  }
  UniformDelayModel plain(10, 40);
  for (int i = 0; i < 50; ++i) {
    std::vector<Time> arrivals;
    plain.schedule(send(0, 1, 100), b, arrivals);
  }
  EXPECT_EQ(a.between(0, 1'000'000), b.between(0, 1'000'000));
}

TEST(IidLossModelTest, ActiveUntilEndsTheLossEra) {
  IidLossModel::Config cfg;
  cfg.num = 1;
  cfg.den = 4;
  cfg.activeUntil = 1000;
  IidLossModel m(fixedDelay(10), cfg);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 2000), rng, arrivals);  // arrives at 2010 >= 1000
    EXPECT_EQ(arrivals.size(), 1u);
  }
}

TEST(IidLossModelTest, LinkFilterKeepsOtherLinksLossless) {
  IidLossModel::Config cfg;
  cfg.num = 1;
  cfg.den = 4;
  cfg.affects = [](ProcessId from, ProcessId) { return from == 0; };
  IidLossModel m(fixedDelay(10), cfg);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(1, 2, 0), rng, arrivals);
    EXPECT_EQ(arrivals.size(), 1u);  // unaffected link: no drops, no draws
  }
}

TEST(IidLossModelTest, RejectsStarvingRates) {
  IidLossModel::Config cfg;
  cfg.num = 1;
  cfg.den = 3;  // > 25%: starves the fair-loss assumption
  EXPECT_THROW(IidLossModel(fixedDelay(1), cfg), InvariantError);
}

// --- GilbertElliottLossModel -------------------------------------------------

GilbertElliottLossModel::Config burstyConfig() {
  GilbertElliottLossModel::Config cfg;
  cfg.framePeriod = 1000;
  cfg.burstNum = 1;
  cfg.burstDen = 1;  // every frame bursts: the schedule is dense
  cfg.burstLen = 200;
  cfg.dropInNum = 1;
  cfg.dropInDen = 1;  // certain drop inside a burst
  cfg.dropOutNum = 0;
  cfg.dropOutDen = 1;
  cfg.seed = 42;
  return cfg;
}

TEST(GilbertElliottLossModelTest, ScheduleIsAPureFunctionOfTheConfig) {
  // Two independently constructed models with equal configs must agree on
  // every burst decision — the schedule is hash-derived, not stateful, so
  // shared const models replay identically across runs.
  const GilbertElliottLossModel a(fixedDelay(1), burstyConfig());
  const GilbertElliottLossModel b(fixedDelay(1), burstyConfig());
  for (Time t = 0; t < 20000; t += 37) {
    EXPECT_EQ(a.inBurst(t, 0, 1), b.inBurst(t, 0, 1)) << t;
  }
  EXPECT_EQ(a.burstWindowsUpTo(20000, 0, 1), b.burstWindowsUpTo(20000, 0, 1));
}

TEST(GilbertElliottLossModelTest, WindowsAreContainedInTheirFrames) {
  const GilbertElliottLossModel m(fixedDelay(1), burstyConfig());
  const auto windows = m.burstWindowsUpTo(50000, 0, 1);
  ASSERT_FALSE(windows.empty());
  for (const auto& [begin, end] : windows) {
    EXPECT_EQ(end - begin, 200u);
    EXPECT_EQ(begin / 1000, (end - 1) / 1000)
        << "window [" << begin << "," << end << ") crosses a frame edge";
  }
}

TEST(GilbertElliottLossModelTest, DropsInsideBurstsKeepsOutside) {
  const GilbertElliottLossModel m(fixedDelay(10), burstyConfig());
  const auto windows = m.burstWindowsUpTo(50000, 0, 1);
  ASSERT_FALSE(windows.empty());
  Rng rng(3);
  // A copy arriving mid-burst is dropped with certainty (dropIn = 1/1).
  const Time inBurst = windows.front().first + 100;
  std::vector<Time> arrivals;
  m.schedule(send(0, 1, inBurst - 10), rng, arrivals);
  EXPECT_TRUE(arrivals.empty());
  // A copy arriving right after the window survives (dropOut = 0).
  arrivals.clear();
  m.schedule(send(0, 1, windows.front().second), rng, arrivals);
  EXPECT_EQ(arrivals.size(), 1u);
}

TEST(GilbertElliottLossModelTest, ActiveUntilClipsWindowsAndDrops) {
  GilbertElliottLossModel::Config cfg = burstyConfig();
  cfg.activeUntil = 5000;
  const GilbertElliottLossModel m(fixedDelay(10), cfg);
  for (const auto& [begin, end] : m.burstWindowsUpTo(50000, 0, 1)) {
    EXPECT_LE(end, 5000u) << begin;
  }
  Rng rng(3);
  std::vector<Time> arrivals;
  m.schedule(send(0, 1, 40000), rng, arrivals);  // far past the loss era
  EXPECT_EQ(arrivals.size(), 1u);
}

TEST(GilbertElliottLossModelTest, UncorrelatedLinksGetDistinctSchedules) {
  GilbertElliottLossModel::Config cfg = burstyConfig();
  cfg.burstDen = 2;  // half the frames burst, so schedules can disagree
  cfg.correlated = false;
  const GilbertElliottLossModel m(fixedDelay(1), cfg);
  EXPECT_NE(m.burstWindowsUpTo(100000, 0, 1), m.burstWindowsUpTo(100000, 1, 2));
  // While the correlated flavour gives every link the same schedule.
  cfg.correlated = true;
  const GilbertElliottLossModel c(fixedDelay(1), cfg);
  EXPECT_EQ(c.burstWindowsUpTo(100000, 0, 1), c.burstWindowsUpTo(100000, 1, 2));
}

// --- OneWayOutageModel -------------------------------------------------------

TEST(OneWayOutageModelTest, CutsOneDirectionOnly) {
  OutageSpec cut;
  cut.from = 2;
  cut.start = 100;
  cut.width = 200;
  OneWayOutageModel m(fixedDelay(10), {cut});
  Rng rng(1);
  std::vector<Time> out, in;
  m.schedule(send(2, 0, 150), rng, out);  // 2's sends die inside the window
  m.schedule(send(0, 2, 150), rng, in);   // but 2 still hears the world
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(in.size(), 1u);
}

TEST(OneWayOutageModelTest, RecurringWindowsAndZeroDraws) {
  OutageSpec cut;
  cut.from = 1;
  cut.start = 0;
  cut.width = 50;
  cut.period = 100;
  OneWayOutageModel m(fixedDelay(10), {cut});
  Rng a(9), b(9);
  std::vector<Time> arrivals;
  m.schedule(send(1, 0, 10), a, arrivals);  // arrives 20, inside [0,50)
  EXPECT_TRUE(arrivals.empty());
  arrivals.clear();
  m.schedule(send(1, 0, 60), a, arrivals);  // arrives 70, in the gap
  EXPECT_EQ(arrivals.size(), 1u);
  arrivals.clear();
  m.schedule(send(1, 0, 110), a, arrivals);  // arrives 120, inside [100,150)
  EXPECT_TRUE(arrivals.empty());
  // The whole model is deterministic: zero rng draws consumed.
  EXPECT_EQ(a.between(0, 1'000'000), b.between(0, 1'000'000));
}

// --- GrayFailureModel --------------------------------------------------------

TEST(GrayFailureModelTest, DegradesOnlyTheGrayProcess) {
  GrayFailureModel::Config cfg;
  cfg.process = 1;
  cfg.delayNum = 3;
  cfg.delayDen = 1;
  cfg.lambdaNum = 2;
  cfg.lambdaDen = 1;
  GrayFailureModel m(fixedDelay(10), cfg);
  EXPECT_FALSE(m.mayDrop());  // lossNum == 0 and the inner is lossless
  Rng rng(1);
  std::vector<Time> touching, clean;
  m.schedule(send(0, 1, 100), rng, touching);
  m.schedule(send(0, 2, 100), rng, clean);
  EXPECT_EQ(touching, (std::vector<Time>{130}));  // 10 * 3 inflation
  EXPECT_EQ(clean, (std::vector<Time>{110}));
  EXPECT_EQ(m.lambdaPeriod(1, 10), 20u);  // gray process steps slower...
  EXPECT_EQ(m.lambdaPeriod(0, 10), 10u);  // ...everyone else at base rate
}

TEST(GrayFailureModelTest, MildLossEngagesTheDropCapability) {
  GrayFailureModel::Config cfg;
  cfg.process = 0;
  cfg.lossNum = 1;
  cfg.lossDen = 4;
  GrayFailureModel m(fixedDelay(10), cfg);
  EXPECT_TRUE(m.mayDrop());
  Rng rng(3);
  int dropped = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 0), rng, arrivals);
    dropped += arrivals.empty() ? 1 : 0;
  }
  EXPECT_GT(dropped, 0);
}

TEST(GrayFailureModelTest, RecoversAfterActiveUntil) {
  GrayFailureModel::Config cfg;
  cfg.process = 1;
  cfg.delayNum = 3;
  cfg.delayDen = 1;
  cfg.activeUntil = 1000;
  GrayFailureModel m(fixedDelay(10), cfg);
  Rng rng(1);
  std::vector<Time> arrivals;
  m.schedule(send(0, 1, 5000), rng, arrivals);  // past the gray era
  EXPECT_EQ(arrivals, (std::vector<Time>{5010}));
}

// --- Composition order: the guard and why it matters -------------------------

TEST(CompositionOrderTest, CanonicalStacksPassTheGuard) {
  IidLossModel::Config loss;
  loss.num = 1;
  loss.den = 4;
  ChaosLinkModel::Config chaos;
  chaos.dupNum = 1;
  chaos.dupDen = 2;
  chaos.maxExtraCopies = 1;
  chaos.reorderJitter = 5;
  PartitionSpec window;
  window.start = 100;
  window.width = 50;
  auto canonical = std::make_shared<PartitionModel>(
      std::make_shared<IidLossModel>(
          std::make_shared<ChaosLinkModel>(fixedDelay(10), chaos), loss),
      std::vector<PartitionSpec>{window});
  EXPECT_NO_THROW(ensureCanonicalComposition(*canonical));
}

TEST(CompositionOrderTest, LossyOutsidePartitionIsRejected) {
  IidLossModel::Config loss;
  loss.num = 1;
  loss.den = 4;
  PartitionSpec window;
  window.start = 100;
  window.width = 50;
  auto wrong = std::make_shared<IidLossModel>(
      std::make_shared<PartitionModel>(fixedDelay(10),
                                       std::vector<PartitionSpec>{window}),
      loss);
  EXPECT_THROW(ensureCanonicalComposition(*wrong), InvariantError);
}

TEST(CompositionOrderTest, ChaosOutsideLossyIsRejected) {
  IidLossModel::Config loss;
  loss.num = 1;
  loss.den = 4;
  ChaosLinkModel::Config chaos;
  chaos.dupNum = 1;
  chaos.dupDen = 2;
  chaos.maxExtraCopies = 1;
  auto wrong = std::make_shared<ChaosLinkModel>(
      std::make_shared<IidLossModel>(fixedDelay(10), loss), chaos);
  EXPECT_THROW(ensureCanonicalComposition(*wrong), InvariantError);
}

TEST(CompositionOrderTest, WrongOrderChangesWhichCopiesSurvive) {
  // The mutation the guard exists to catch, demonstrated on the
  // deterministic outage layer: a partition deferring an arrival INTO an
  // outage window. Canonically (outage inside the partition) the drop
  // decision keys on the pre-deferral arrival and the copy survives;
  // swapped, the outage sees the post-heal arrival and kills it — a
  // genuinely different run, which is exactly why the canonical order is
  // pinned by ensureCanonicalComposition rather than left to convention.
  OutageSpec cut;
  cut.start = 40;
  cut.width = 20;  // outage [40, 60)
  PartitionSpec window;
  window.start = 5;
  window.width = 45;  // partition [5, 50) defers arrivals to 50

  auto canonical = std::make_shared<PartitionModel>(
      std::make_shared<OneWayOutageModel>(fixedDelay(10),
                                          std::vector<OutageSpec>{cut}),
      std::vector<PartitionSpec>{window});
  auto swapped = std::make_shared<OneWayOutageModel>(
      std::make_shared<PartitionModel>(fixedDelay(10),
                                       std::vector<PartitionSpec>{window}),
      std::vector<OutageSpec>{cut});

  Rng rng(1);
  std::vector<Time> kept, killed;
  canonical->schedule(send(0, 1, 0), rng, kept);  // 10 -> survives -> defer 50
  swapped->schedule(send(0, 1, 0), rng, killed);  // 10 -> defer 50 -> dropped
  EXPECT_EQ(kept, (std::vector<Time>{50}));
  EXPECT_TRUE(killed.empty());
  EXPECT_THROW(ensureCanonicalComposition(*swapped), InvariantError);
}

}  // namespace
}  // namespace wfd
