// Unit tests: common utilities (digraph, rng, hashing, codecs, ensure).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/digraph.h"
#include "common/ensure.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/types.h"
#include "ec/ec_types.h"
#include "sim/app_msg_codec.h"

namespace wfd {
namespace {

TEST(JsonQuotedTest, MatchesTheWriterForPlainAndHostileStrings) {
  // jsonQuoted IS the writer's string emission: escape-free strings pass
  // through byte-identical, everything else escapes exactly like dump().
  for (const std::string& s :
       {std::string("stable-leader"), std::string(""),
        std::string("with \"quotes\" and \\backslash\\"),
        std::string("ctl\n\tbytes\x01"), std::string("unicode ok: café")}) {
    EXPECT_EQ(jsonQuoted(s), Json::str(s).dump()) << s;
  }
  EXPECT_EQ(jsonQuoted("plain"), "\"plain\"");
  EXPECT_EQ(jsonQuoted("a\"b\\c"), "\"a\\\"b\\\\c\"");
  // Round trip through the parser: quoted output is always valid JSON.
  const std::string hostile = "x\"y\\z\n\x02";
  auto parsed = Json::parse(jsonQuoted(hostile));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asString(), hostile);
}

TEST(MsgIdTest, RoundTripsOriginAndSeq) {
  const MsgId id = makeMsgId(7, 42);
  EXPECT_EQ(msgIdOrigin(id), 7u);
  EXPECT_EQ(msgIdSeq(id), 42u);
}

TEST(MsgIdTest, DistinctForDistinctInputs) {
  EXPECT_NE(makeMsgId(1, 2), makeMsgId(2, 1));
  EXPECT_NE(makeMsgId(0, 1), makeMsgId(1, 0));
}

TEST(MsgIdTest, OrderedByOriginThenSeq) {
  EXPECT_LT(makeMsgId(1, 99), makeMsgId(2, 0));
  EXPECT_LT(makeMsgId(1, 1), makeMsgId(1, 2));
}

TEST(EnsureTest, ThrowsInvariantErrorWithLocation) {
  try {
    WFD_ENSURE_MSG(false, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(EnsureTest, PassesSilently) {
  EXPECT_NO_THROW(WFD_ENSURE(1 + 1 == 2));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.between(0, 1000), b.between(0, 1000));
  }
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    sawLo |= v == 3;
    sawHi |= v == 5;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // The fork must not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.below(1000) == child.below(1000)) ++equal;
  }
  EXPECT_LT(equal, 25);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(HashTest, HashVectorDiffersForDifferentContent) {
  std::vector<int> a{1, 2, 3}, b{3, 2, 1};
  EXPECT_NE(hashVector(a), hashVector(b));
}

TEST(StringsTest, JoinFormats) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(join(v, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
}

TEST(DigraphTest, AddNodeIdempotent) {
  Digraph<int> g;
  EXPECT_TRUE(g.addNode(1));
  EXPECT_FALSE(g.addNode(1));
  EXPECT_EQ(g.nodeCount(), 1u);
}

TEST(DigraphTest, AddEdgeInsertsEndpoints) {
  Digraph<int> g;
  EXPECT_TRUE(g.addEdge(1, 2));
  EXPECT_TRUE(g.hasNode(1));
  EXPECT_TRUE(g.hasNode(2));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasEdge(2, 1));
}

TEST(DigraphTest, ParallelEdgesCollapse) {
  Digraph<int> g;
  EXPECT_TRUE(g.addEdge(1, 2));
  EXPECT_FALSE(g.addEdge(1, 2));
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(DigraphTest, SelfLoopRejected) {
  Digraph<int> g;
  EXPECT_THROW(g.addEdge(3, 3), InvariantError);
}

TEST(DigraphTest, ReachesFollowsTransitivePaths) {
  Digraph<int> g;
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  EXPECT_TRUE(g.reaches(1, 4));
  EXPECT_FALSE(g.reaches(4, 1));
  EXPECT_FALSE(g.reaches(1, 1));  // no cycle
}

TEST(DigraphTest, SinksAreNodesWithoutSuccessors) {
  Digraph<int> g;
  g.addEdge(1, 2);
  g.addEdge(1, 3);
  g.addNode(4);
  auto sinks = g.sinks();
  EXPECT_EQ(sinks, (std::vector<int>{2, 3, 4}));
}

TEST(DigraphTest, TopoSortRespectsEdgesAndTieBreak) {
  Digraph<int> g;
  g.addEdge(3, 1);
  g.addEdge(3, 2);
  g.addNode(0);
  auto order = g.topoSort([](int a, int b) { return a < b; });
  ASSERT_TRUE(order.has_value());
  // 0 and 3 are ready first; tie-break picks 0, then 3, then 1, 2.
  EXPECT_EQ(*order, (std::vector<int>{0, 3, 1, 2}));
}

TEST(DigraphTest, TopoSortDetectsCycle) {
  Digraph<int> g;
  g.addEdge(1, 2);
  g.addEdge(2, 1);
  EXPECT_FALSE(g.topoSort([](int a, int b) { return a < b; }).has_value());
}

TEST(DigraphTest, UnionMergesNodesAndEdges) {
  Digraph<int> a, b;
  a.addEdge(1, 2);
  b.addEdge(2, 3);
  b.addEdge(1, 2);
  a.unionWith(b);
  EXPECT_EQ(a.nodeCount(), 3u);
  EXPECT_EQ(a.edgeCount(), 2u);
  EXPECT_TRUE(a.reaches(1, 3));
}

TEST(DigraphTest, PredecessorsAndSuccessors) {
  Digraph<int> g;
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  EXPECT_EQ(g.predecessors(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.successors(1), (std::vector<int>{3}));
  EXPECT_TRUE(g.predecessors(99).empty());
}

TEST(DigraphTest, NeighbourListsStayInInsertionOrder) {
  // Edges arriving "out of order" (a later-added predecessor) must still
  // report neighbours in the predecessors' insertion order.
  Digraph<int> g;
  g.addNode(5);
  g.addNode(7);
  g.addNode(6);
  g.addEdge(6, 5);  // pred added after target, larger index
  g.addEdge(7, 5);
  EXPECT_EQ(g.predecessors(5), (std::vector<int>{7, 6}));
  EXPECT_EQ(g.edgeCount(), 2u);
  EXPECT_FALSE(g.addEdge(6, 5));
  EXPECT_EQ(g.edgeCount(), 2u);
}

TEST(DigraphTest, UnionTranslatesDifferingInsertionOrders) {
  // The same logical graph built in different insertion orders must merge
  // into an identical edge set (indices are internal).
  Digraph<int> a, b;
  a.addNode(10);
  a.addEdge(20, 30);
  b.addNode(30);
  b.addEdge(10, 20);
  b.addEdge(20, 30);
  b.addEdge(30, 40);
  a.unionWith(b);
  EXPECT_EQ(a.nodeCount(), 4u);
  EXPECT_EQ(a.edgeCount(), 3u);
  EXPECT_TRUE(a.hasEdge(10, 20));
  EXPECT_TRUE(a.hasEdge(20, 30));
  EXPECT_TRUE(a.hasEdge(30, 40));
  EXPECT_FALSE(a.hasEdge(10, 30));
  EXPECT_TRUE(a.reaches(10, 40));
  // Union is idempotent: merging again adds nothing.
  a.unionWith(b);
  EXPECT_EQ(a.nodeCount(), 4u);
  EXPECT_EQ(a.edgeCount(), 3u);
}

TEST(DigraphTest, IndexAccessorsMatchValueApi) {
  Digraph<int> g;
  g.addEdge(2, 1);
  g.addEdge(3, 1);
  ASSERT_TRUE(g.indexOf(1).has_value());
  ASSERT_FALSE(g.indexOf(99).has_value());
  const auto i1 = *g.indexOf(1);
  EXPECT_EQ(g.nodeAt(i1), 1);
  std::vector<int> preds;
  for (auto p : g.predIndices(i1)) preds.push_back(g.nodeAt(p));
  EXPECT_EQ(preds, g.predecessors(1));
  std::vector<int> succs;
  for (auto s : g.succIndices(*g.indexOf(2))) succs.push_back(g.nodeAt(s));
  EXPECT_EQ(succs, g.successors(2));
}

TEST(DigraphTest, TopoSortIndicesAgreesWithTopoSort) {
  Digraph<int> g;
  g.addEdge(4, 2);
  g.addEdge(4, 3);
  g.addEdge(2, 1);
  g.addEdge(3, 1);
  g.addNode(0);
  const auto less = [](int a, int b) { return a < b; };
  const auto byValue = g.topoSort(less);
  const auto byIndex = g.topoSortIndices(less);
  ASSERT_TRUE(byValue.has_value());
  ASSERT_TRUE(byIndex.has_value());
  std::vector<int> mapped;
  for (auto i : *byIndex) mapped.push_back(g.nodeAt(i));
  EXPECT_EQ(mapped, *byValue);
  EXPECT_EQ(*byValue, (std::vector<int>{0, 4, 2, 3, 1}));
}

TEST(ValueSeqCodecTest, RoundTrips) {
  std::vector<Value> seq{{1, 2, 3}, {}, {42}};
  EXPECT_EQ(decodeValueSeq(encodeValueSeq(seq)), seq);
}

TEST(ValueSeqCodecTest, EmptySeq) {
  std::vector<Value> seq;
  EXPECT_EQ(decodeValueSeq(encodeValueSeq(seq)), seq);
}

TEST(ValueSeqCodecTest, MalformedThrows) {
  EXPECT_THROW(decodeValueSeq(Value{}), InvariantError);
  EXPECT_THROW(decodeValueSeq(Value{2, 1, 5}), InvariantError);  // truncated
}

TEST(AppMsgCodecTest, RoundTrips) {
  std::vector<AppMsg> seq;
  AppMsg a;
  a.id = makeMsgId(1, 7);
  a.origin = 1;
  a.body = {9, 8};
  AppMsg b;
  b.id = makeMsgId(2, 0);
  b.origin = 2;
  seq = {a, b};
  const auto decoded = decodeAppMsgSeq(encodeAppMsgSeq(seq));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].id, a.id);
  EXPECT_EQ(decoded[0].origin, a.origin);
  EXPECT_EQ(decoded[0].body, a.body);
  EXPECT_EQ(decoded[1].id, b.id);
  EXPECT_TRUE(decoded[1].body.empty());
}

TEST(AppMsgCodecTest, MalformedThrows) {
  EXPECT_THROW(decodeAppMsgSeq(Value{}), InvariantError);
  EXPECT_THROW(decodeAppMsgSeq(Value{1, 5}), InvariantError);
}

}  // namespace
}  // namespace wfd
