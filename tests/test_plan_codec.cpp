// JSON library + FuzzPlan/corpus codec tests: canonical round-trips,
// malformed-input rejection, and the admissibility re-validation that
// stops a hand-edited corpus file from smuggling an inadmissible run in.
#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "explore/explorer.h"
#include "explore/fuzz_plan.h"
#include "explore/plan_codec.h"

namespace wfd {
namespace {

// --- Json ------------------------------------------------------------------

TEST(JsonTest, CanonicalDumpSortsKeysAndRoundTrips) {
  Json obj = Json::object();
  obj.set("zeta", Json::number(1));
  obj.set("alpha", Json::boolean(true));
  Json arr = Json::array();
  arr.push(Json::str("a\"b\\c\nd"));
  arr.push(Json::null());
  obj.set("mid", std::move(arr));
  const std::string dump = obj.dump();
  EXPECT_EQ(dump, "{\"alpha\":true,\"mid\":[\"a\\\"b\\\\c\\nd\",null],\"zeta\":1}");

  std::string error;
  std::optional<Json> parsed = Json::parse(dump, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), dump);  // canonical fixed point
}

TEST(JsonTest, ParsesWhitespaceAndControlEscapes) {
  std::optional<Json> v = Json::parse("  { \"k\" : [ 1 , 2 ] , \"s\" : \"\\u0007x\" } ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("k")->items()[1].asUInt(), 2u);
  EXPECT_EQ(v->find("s")->asString(), std::string("\ax"));
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.5", "-3", "1e9",
        "\"unterminated", "\"bad\\q\"", "[1] trailing",
        "18446744073709551616" /* u64 overflow */,
        "\"\\uD83D\"" /* beyond the \\u00XX subset */,
        "{\"a\":1,\"a\":2}" /* duplicate key: stale-line hand edit */}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, U64BoundaryValuesSurvive) {
  const std::string dump =
      Json::parse("18446744073709551615")->dump();  // UINT64_MAX
  EXPECT_EQ(dump, "18446744073709551615");
}

// --- FuzzPlan codec ---------------------------------------------------------

TEST(PlanCodecTest, SampledPlansRoundTripCanonically) {
  for (AlgoStack stack : kAllAlgoStacks) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      const FuzzPlan plan = sampleFuzzPlan(stack, 99, i);
      const std::string dump = encodeFuzzPlan(plan).dump();
      std::string error;
      std::optional<Json> parsed = Json::parse(dump, &error);
      ASSERT_TRUE(parsed.has_value()) << error;
      std::optional<FuzzPlan> decoded = decodeFuzzPlan(*parsed, &error);
      ASSERT_TRUE(decoded.has_value()) << error;
      EXPECT_EQ(encodeFuzzPlan(*decoded).dump(), dump);
      EXPECT_EQ(planFingerprint(*decoded), planFingerprint(plan));
    }
  }
}

TEST(PlanCodecTest, BigClusterPlansRoundTripAndLegacyEncodingIsStable) {
  // Big-genome plans (writer-capped workloads, n up to 256) round trip
  // through the canonical encoding; legacy all-write plans must NOT
  // grow a "writers" key — their encodings (and thus fingerprints and
  // the committed corpus) predate the field.
  bool sawWriters = false;
  for (std::uint64_t i = 0; i < 40 && !sawWriters; ++i) {
    const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kOmegaEc, 99, i, 256);
    const std::string dump = encodeFuzzPlan(plan).dump();
    std::string error;
    std::optional<FuzzPlan> decoded =
        decodeFuzzPlan(*Json::parse(dump, &error), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(encodeFuzzPlan(*decoded).dump(), dump);
    EXPECT_EQ(planFingerprint(*decoded), planFingerprint(plan));
    if (plan.workload.writers > 0) {
      sawWriters = true;
      EXPECT_NE(dump.find("\"writers\""), std::string::npos);
    }
  }
  EXPECT_TRUE(sawWriters) << "window never sampled a big plan";

  const FuzzPlan legacy = sampleFuzzPlan(AlgoStack::kEtob, 99, 0);
  EXPECT_EQ(encodeFuzzPlan(legacy).dump().find("\"writers\""),
            std::string::npos);
}

TEST(PlanCodecTest, RejectsMoreWritersThanProcesses) {
  FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.workload.writers = plan.processCount + 1;
  std::string error;
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
  EXPECT_NE(error.find("writers"), std::string::npos);
}

TEST(PlanCodecTest, RejectsUnknownSchemaStackAndMode) {
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  std::string error;

  Json wrongSchema = encodeFuzzPlan(plan);
  wrongSchema.set("schema", Json::str("wfd-fuzz-plan-v999"));
  EXPECT_FALSE(decodeFuzzPlan(wrongSchema, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos);

  Json wrongStack = encodeFuzzPlan(plan);
  wrongStack.set("stack", Json::str("raft"));
  EXPECT_FALSE(decodeFuzzPlan(wrongStack, &error).has_value());

  Json wrongMode = encodeFuzzPlan(plan);
  wrongMode.set("omega_mode", Json::str("psychic"));
  EXPECT_FALSE(decodeFuzzPlan(wrongMode, &error).has_value());
}

TEST(PlanCodecTest, RejectsInadmissiblePlans) {
  // A structurally valid JSON plan whose semantics violate the
  // admissibility contract must not decode.
  FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.minDelay = plan.maxDelay + 1;  // delays inverted
  std::string error;
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
  EXPECT_NE(error.find("inadmissible"), std::string::npos);

  plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.crashes.clear();
  for (ProcessId p = 0; p < plan.processCount; ++p) {
    plan.crashes.push_back(PlanCrash{p, 100});  // nobody stays correct
  }
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());

  plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.maxTime = 10;  // below the fairness horizon
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
}

TEST(PlanCodecTest, UnknownFieldsAreLoudErrors) {
  // A misspelled section must be a decode error, not a silently dropped
  // fault layer (a hand-written "slowlink" plan would otherwise commit a
  // strictly weaker regression than its author intended).
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  std::string error;

  Json typoTop = encodeFuzzPlan(plan);
  Json slow = Json::object();
  slow.set("process", Json::number(0));
  slow.set("factor", Json::number(3));
  typoTop.set("slowlink", std::move(slow));  // should be "slow_link"
  EXPECT_FALSE(decodeFuzzPlan(typoTop, &error).has_value());
  EXPECT_NE(error.find("unknown field 'slowlink'"), std::string::npos) << error;

  Json typoNested = encodeFuzzPlan(plan);
  Json workload = *typoNested.find("workload");
  workload.set("per_proces", Json::number(3));  // typo inside a section
  typoNested.set("workload", std::move(workload));
  EXPECT_FALSE(decodeFuzzPlan(typoNested, &error).has_value());
  EXPECT_NE(error.find("unknown field"), std::string::npos) << error;
}

TEST(PlanCodecTest, PartitionThatNeverHealsIsInadmissible) {
  FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.partitions.clear();
  plan.partitions.push_back(PlanPartition{100, 500, 400, kNoProcess});
  plan.maxTime = planHorizon(plan);
  std::string error;
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
  EXPECT_NE(error.find("heal"), std::string::npos);
}

TEST(PlanCodecTest, LossyPlansRoundTripAndLegacyEncodingHasNoLossKey) {
  // Loss-genome plans round trip canonically; quiet plans must NOT grow
  // a "loss" section — legacy encodings (and the committed corpus)
  // predate the genome and stay byte-identical.
  bool sawLoss = false;
  for (std::uint64_t i = 0; i < 60 && !sawLoss; ++i) {
    const FuzzPlan plan =
        sampleFuzzPlan(AlgoStack::kEtob, 99, i, 0, /*lossGenome=*/true);
    const std::string dump = encodeFuzzPlan(plan).dump();
    std::string error;
    std::optional<FuzzPlan> decoded =
        decodeFuzzPlan(*Json::parse(dump, &error), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(encodeFuzzPlan(*decoded).dump(), dump);
    EXPECT_EQ(planFingerprint(*decoded), planFingerprint(plan));
    if (plan.loss.enabled()) {
      sawLoss = true;
      EXPECT_NE(dump.find("\"loss\""), std::string::npos);
    }
  }
  EXPECT_TRUE(sawLoss) << "window never sampled a lossy plan";

  const FuzzPlan legacy = sampleFuzzPlan(AlgoStack::kEtob, 99, 0);
  EXPECT_EQ(encodeFuzzPlan(legacy).dump().find("\"loss\""), std::string::npos);
}

TEST(PlanCodecTest, RejectsUnknownKeyInsideLossSection) {
  FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.loss.lossNum = 1;
  plan.loss.lossDen = 8;
  plan.loss.activeUntil = 5000;
  plan.maxTime = planHorizon(plan);
  Json typo = encodeFuzzPlan(plan);
  Json loss = *typo.find("loss");
  loss.set("burst_lenght", Json::number(100));
  typo.set("loss", std::move(loss));
  std::string error;
  EXPECT_FALSE(decodeFuzzPlan(typo, &error).has_value());
  EXPECT_NE(error.find("unknown field"), std::string::npos) << error;
}

TEST(PlanCodecTest, RejectsInadmissibleLossPlans) {
  // Starving rate: more than a quarter of copies dropped breaks the
  // fair-lossy assumption the stubborn layer's liveness rests on.
  FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.loss.lossNum = 1;
  plan.loss.lossDen = 3;
  plan.loss.activeUntil = 5000;
  plan.maxTime = planHorizon(plan);
  std::string error;
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
  EXPECT_NE(error.find("fair-lossy"), std::string::npos) << error;

  // A loss layer that never goes quiet is inadmissible in fuzz plans.
  plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.loss.lossNum = 1;
  plan.loss.lossDen = 8;
  plan.loss.activeUntil = 0;
  plan.maxTime = planHorizon(plan);
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
  EXPECT_NE(error.find("quiet"), std::string::npos) << error;

  // A recurring one-way cut with no healing gap starves the link.
  plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  plan.loss.oneWayFrom = 0;
  plan.loss.oneWayStart = 200;
  plan.loss.oneWayWidth = 400;
  plan.loss.oneWayPeriod = 400;
  plan.maxTime = planHorizon(plan);
  EXPECT_FALSE(decodeFuzzPlan(encodeFuzzPlan(plan), &error).has_value());
  EXPECT_NE(error.find("heal"), std::string::npos) << error;
}

// --- Corpus entries ---------------------------------------------------------

TEST(CorpusCodecTest, EntryRoundTripsAndReplays) {
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 5, 3);
  const CorpusEntry entry =
      makeCorpusEntry("rt-test", "unit test", plan, FuzzOracle::kSpec);
  const std::string dump = encodeCorpusEntry(entry).dump();
  std::string error;
  std::optional<CorpusEntry> decoded =
      decodeCorpusEntry(*Json::parse(dump, &error), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->name, "rt-test");
  EXPECT_EQ(decoded->oracle, "spec");
  EXPECT_EQ(encodeCorpusEntry(*decoded).dump(), dump);
  // The entry pins its own outcome, so replay must match.
  std::string whyNot;
  EXPECT_TRUE(replayCorpusEntry(*decoded, &whyNot)) << whyNot;
}

TEST(CorpusCodecTest, TamperedDigestFailsReplayOnMatchingStdlib) {
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 5, 4);
  CorpusEntry entry =
      makeCorpusEntry("tamper-test", "unit test", plan, FuzzOracle::kSpec);
  ASSERT_EQ(entry.expect.digests.size(), 1u);
  entry.expect.digests[0].second ^= 1;  // flip one digest bit
  std::string whyNot;
  EXPECT_FALSE(replayCorpusEntry(entry, &whyNot));
  EXPECT_NE(whyNot.find("digest"), std::string::npos);
}

TEST(CorpusCodecTest, TamperedExpectationFailsReplay) {
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 5, 5);
  CorpusEntry entry =
      makeCorpusEntry("expect-test", "unit test", plan, FuzzOracle::kSpec);
  entry.expect.pass = !entry.expect.pass;
  EXPECT_FALSE(replayCorpusEntry(entry));
}

TEST(CorpusCodecTest, BarePlanDecodesAsPassExpectation) {
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kGossipLww, 2, 0);
  std::string error;
  std::optional<CorpusEntry> entry =
      decodeCorpusEntry(encodeFuzzPlan(plan), &error);
  ASSERT_TRUE(entry.has_value()) << error;
  EXPECT_TRUE(entry->expect.pass);
  EXPECT_TRUE(entry->expect.digests.empty());
}

}  // namespace
}  // namespace wfd
