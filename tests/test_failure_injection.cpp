// Failure-injection suite: partition windows, crash cascades, leader
// flapping and combinations — every admissible run must still satisfy the
// abstractions' specifications (the paper's guarantees quantify over ALL
// admissible runs, so adversarial-but-admissible scenarios are the
// property tests that matter).
#include <gtest/gtest.h>

#include <memory>

#include "checkers/commit_checker.h"
#include "checkers/ec_checker.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "cht/extractor.h"
#include "ec/ec_driver.h"
#include "ec/omega_ec.h"
#include "etob/commit_etob.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

SimConfig baseConfig(std::size_t n, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 40000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

TEST(FailureInjectionTest, EtobSurvivesRepeatedPartitionWindows) {
  auto cfg = baseConfig(4, 3);
  auto fp = FailurePattern::noFailures(4);
  const Time tauOmega = 2000;
  auto omega =
      std::make_shared<OmegaFd>(fp, tauOmega, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 4; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  // Three successive partition windows cutting {0,1} | {2,3} both ways.
  for (Time start : {300u, 900u, 1500u}) {
    LinkDisruption d;
    d.start = start;
    d.end = start + 400;
    d.affects = [](ProcessId from, ProcessId to) {
      return (from < 2) != (to < 2);
    };
    sim.addDisruption(d);
  }
  BroadcastWorkload w;
  w.perProcess = 6;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 2000 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.causalOrderOk);
}

TEST(FailureInjectionTest, EtobPartitionAcrossStabilization) {
  // A partition window that straddles tau_Omega: promotes from the stable
  // leader are deferred past the window; convergence must still happen
  // (bounded by window end + Δ_t + Δ_c rather than the clean bound).
  auto cfg = baseConfig(3, 9);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 1000, OmegaPreStabilization::kRotating);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  LinkDisruption d;
  d.start = 800;
  d.end = 2200;
  d.affects = [](ProcessId from, ProcessId) { return from == 0; };
  sim.addDisruption(d);
  BroadcastWorkload w;
  w.perProcess = 5;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 3500 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_LE(report.tau, 2200 + cfg.timeoutPeriod + cfg.maxDelay)
      << "convergence within one promote round of the partition healing";
}

TEST(FailureInjectionTest, EcUnderCrashCascade) {
  // Processes crash one by one until only two remain; Algorithm 4 keeps
  // terminating instances throughout.
  auto cfg = baseConfig(5, 11);
  cfg.maxTime = 80000;
  auto fp = Environments::staggeredCrashes(5, 3, 500, 400);  // crashes at 500..1300
  auto omega =
      std::make_shared<OmegaFd>(fp, 1800, OmegaPreStabilization::kRotating);
  Simulator sim(cfg, fp, omega);
  const Instance maxInstances = 25;
  for (ProcessId p = 0; p < 5; ++p) {
    sim.addProcess(
        p, std::make_unique<EcDriverAutomaton<OmegaEcAutomaton>>(
               OmegaEcAutomaton{}, binaryProposals(21), maxInstances));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return checkEcRun(s.trace(), s.failurePattern()).decidedByAllCorrect >=
           maxInstances;
  }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
  EXPECT_LE(report.agreementFromK, maxInstances);
}

TEST(FailureInjectionTest, EtobLeaderFlappingNeverBreaksCore) {
  // Pathological Omega: rotates the leader every 40 ticks for a long
  // time. Stability/total-order are only eventual, but the four core
  // properties and causal order must hold during the chaos too.
  auto cfg = baseConfig(3, 17);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 6000,
                                         OmegaPreStabilization::kRotating, 40);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  BroadcastWorkload w;
  w.perProcess = 6;
  w.causalChainPerOrigin = true;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 8000 && broadcastConverged(s, log);
  }));
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.causalOrderOk);
  EXPECT_LE(report.tau, 6000 + cfg.timeoutPeriod + cfg.maxDelay);
}

TEST(FailureInjectionTest, CommitSafetyThroughPartitionAndCrash) {
  auto cfg = baseConfig(5, 23);
  auto fp = FailurePattern::crashesAt(5, {{4, 1800}});
  auto omega =
      std::make_shared<OmegaFd>(fp, 2400, OmegaPreStabilization::kRotating);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 5; ++p) {
    sim.addProcess(p, std::make_unique<CommitEtobAutomaton>());
  }
  LinkDisruption d;
  d.start = 600;
  d.end = 1400;
  d.affects = [](ProcessId from, ProcessId to) { return (from < 2) != (to < 2); };
  sim.addDisruption(d);
  BroadcastWorkload w;
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.runUntil([&](const Simulator& s) {
    return s.now() > 5000 &&
           checkCommitSafety(s.trace(), s.failurePattern())
                   .committedLenAllCorrect >= log.size();
  });
  const auto commit = checkCommitSafety(sim.trace(), fp);
  EXPECT_TRUE(commit.safetyOk())
      << (commit.errors.empty() ? "" : commit.errors[0]);
  EXPECT_GT(commit.indications, 0u);
}

TEST(FailureInjectionTest, ChtExtractionWithCrashedProcess) {
  // The CHT reduction with a faulty process: the extracted leader must be
  // CORRECT (Lemmas 7/8) — even when the crashed process led early on.
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = 5;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 5;
  cfg.maxDelay = 15;
  auto fp = FailurePattern::crashesAt(3, {{0, 120}});
  // Omega points at p0 until it crashes, then stabilizes on p1.
  auto omega = std::make_shared<ScriptedFd>(
      [](ProcessId, Time t) {
        FdValue v;
        v.leader = t < 120 ? 0 : 1;
        return v;
      },
      "crash-leader");
  Simulator sim(cfg, fp, omega);
  ChtConfig ccfg;
  ccfg.limits.maxInstance = 4;
  ccfg.limits.probeSteps = 150;
  ccfg.limits.walkSteps = 10;
  ccfg.maxOwnSamples = 20;
  ccfg.extractEvery = 24;
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<ChtExtractorAutomaton>(omegaEcTarget(), 3,
                                                              ccfg));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    ProcessId first = kNoProcess;
    for (ProcessId p : s.failurePattern().correctSet()) {
      const auto& ex = static_cast<const ChtExtractorAutomaton&>(s.automaton(p));
      if (ex.currentEstimate() == kNoProcess) return false;
      if (first == kNoProcess) first = ex.currentEstimate();
      if (ex.currentEstimate() != first) return false;
    }
    return s.failurePattern().correct(first);
  }));
  const auto& ex = static_cast<const ChtExtractorAutomaton&>(sim.automaton(1));
  EXPECT_TRUE(fp.correct(ex.currentEstimate()))
      << "the deciding process of a gadget is correct";
}

// Seed sweep of the nastiest combined scenario.
class ChaosSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweepTest, EtobSpecUnderCombinedChaos) {
  const std::uint64_t seed = GetParam();
  auto cfg = baseConfig(5, seed);
  cfg.maxTime = 60000;
  auto fp = Environments::staggeredCrashes(5, 2, 1000, 600);
  const Time tauOmega = 2800;
  auto omega =
      std::make_shared<OmegaFd>(fp, tauOmega, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 5; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  LinkDisruption d;
  d.start = 500;
  d.end = 1200;
  d.affects = [](ProcessId from, ProcessId to) { return (from % 2) != (to % 2); };
  sim.addDisruption(d);
  BroadcastWorkload w;
  w.perProcess = 5;
  w.causalChainPerOrigin = true;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 2000 && broadcastConverged(s, log);
  })) << "seed " << seed;
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.causalOrderOk);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepTest,
                         ::testing::Values(2, 5, 8, 13, 27, 42, 77, 101));

// --- FailurePattern edge cases (the fuzz sampler's boundary inputs) ---------

TEST(FailurePatternEdgeTest, CrashAtTimeZero) {
  auto fp = FailurePattern::crashesAt(3, {{1, 0}});
  EXPECT_TRUE(fp.crashed(1, 0));  // p ∈ F(0): never takes any step
  EXPECT_TRUE(fp.faulty(1));
  EXPECT_EQ(fp.crashTime(1), 0u);
  EXPECT_EQ(fp.aliveAt(0), (std::vector<ProcessId>{0, 2}));
  EXPECT_EQ(fp.lastCrashTime(), 0u);
  EXPECT_EQ(fp.lowestCorrect(), 0u);
}

TEST(FailurePatternEdgeTest, AllButOneCrashed) {
  auto fp = FailurePattern::crashesAt(5, {{0, 10}, {1, 0}, {3, 20}, {4, 30}});
  EXPECT_EQ(fp.correctSet(), (std::vector<ProcessId>{2}));
  EXPECT_EQ(fp.faultySet(), (std::vector<ProcessId>{0, 1, 3, 4}));
  EXPECT_EQ(fp.lowestCorrect(), 2u);
  EXPECT_FALSE(fp.hasCorrectMajority());
  EXPECT_EQ(fp.aliveAt(25), (std::vector<ProcessId>{2, 4}));
}

TEST(FailurePatternEdgeTest, MajorityBoundaryEvenN) {
  // n = 4: 2 correct of 4 is NOT a majority (2*2 == 4), 3 of 4 is.
  auto half = FailurePattern::crashesAt(4, {{2, 100}, {3, 100}});
  EXPECT_FALSE(half.hasCorrectMajority());
  auto oneCrash = FailurePattern::crashesAt(4, {{3, 100}});
  EXPECT_TRUE(oneCrash.hasCorrectMajority());
}

TEST(FailurePatternEdgeTest, MajorityBoundaryOddN) {
  // n = 5: 3 correct of 5 is a majority (3*2 > 5), 2 of 5 is not.
  auto twoCrash = FailurePattern::crashesAt(5, {{3, 100}, {4, 100}});
  EXPECT_TRUE(twoCrash.hasCorrectMajority());
  auto threeCrash = FailurePattern::crashesAt(5, {{2, 100}, {3, 100}, {4, 100}});
  EXPECT_FALSE(threeCrash.hasCorrectMajority());
  // The named environments sit exactly on those boundaries.
  EXPECT_TRUE(Environments::minorityCrash(5, 100).hasCorrectMajority());
  EXPECT_FALSE(Environments::majorityCrash(5, 100).hasCorrectMajority());
  EXPECT_FALSE(Environments::majorityCrash(4, 100).hasCorrectMajority());
}

}  // namespace
}  // namespace wfd
