#include "checkers/workload.h"

#include <algorithm>

#include "rsm/state_machines.h"
#include "sim/app_msg.h"

namespace wfd {

BroadcastLog scheduleBroadcastWorkload(Simulator& sim, const BroadcastWorkload& w) {
  BroadcastLog log;
  const std::size_t n = sim.config().processCount;
  const FailurePattern& pattern = sim.failurePattern();
  // A declared causal dependency must be a message the sender has already
  // received (the paper's C(m) is drawn from the sender's past). With
  // cross-process dependencies the origins are staggered beyond the link
  // delay bound so the dependency's update has arrived by broadcast time.
  const Time stagger =
      w.crossProcessDeps
          ? sim.config().maxDelay + sim.config().timeoutPeriod
          : std::max<Time>(1, w.interval / std::max<std::size_t>(n, 1));
  const std::size_t origins = w.writers == 0 ? n : std::min(w.writers, n);
  for (ProcessId p = 0; p < origins; ++p) {
    for (std::size_t i = 0; i < w.perProcess; ++i) {
      const Time at = w.start + w.interval * i + stagger * p;
      if (pattern.crashTime(p) <= at) continue;  // input would never happen
      AppMsg m;
      m.id = makeMsgId(p, static_cast<std::uint32_t>(i));
      m.origin = p;
      m.body = w.lwwPutBodies
                   ? makePut(m.id, static_cast<std::uint64_t>(i))
                   : Command{static_cast<std::uint64_t>(p),
                             static_cast<std::uint64_t>(i)};
      if (w.causalChainPerOrigin && i > 0) {
        m.causalDeps.push_back(makeMsgId(p, static_cast<std::uint32_t>(i - 1)));
      }
      if (w.crossProcessDeps && p > 0) {
        const MsgId dep = makeMsgId(p - 1, static_cast<std::uint32_t>(i));
        if (log.contains(dep)) m.causalDeps.push_back(dep);
      }
      log.record(m, at);
      sim.scheduleInput(p, at, Payload::of(BroadcastInput{std::move(m)}));
    }
  }
  return log;
}

bool broadcastConverged(const Simulator& sim, const BroadcastLog& log) {
  const FailurePattern& pattern = sim.failurePattern();
  const std::vector<ProcessId> correct = pattern.correctSet();
  if (correct.empty()) return false;
  const auto& reference = sim.trace().currentDelivered(correct.front());
  for (ProcessId p : correct) {
    if (sim.trace().currentDelivered(p) != reference) return false;
  }
  for (MsgId id : log.ids()) {
    if (!pattern.correct(log.find(id)->origin)) continue;
    if (std::find(reference.begin(), reference.end(), id) == reference.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace wfd
