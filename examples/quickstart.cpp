// Quickstart: a 3-process eventually consistent broadcast cluster.
//
// Runs Algorithm 5 (ET OB) over an Omega failure detector that starts in
// split-brain mode and stabilizes at t=1500. Three processes broadcast
// messages; the example prints each process's delivery sequence d_i as it
// evolves, then verifies the full ETOB specification with the checkers.
// Everything goes through the wfd::service facade (docs/API.md): one
// ClusterSpec describes the deployment, Cluster runs it incrementally,
// Clients observe the delivery sequences.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "api/cluster.h"
#include "checkers/tob_checker.h"
#include "common/strings.h"

using namespace wfd;

namespace {

std::string shortId(MsgId id) {
  return "m" + std::to_string(msgIdOrigin(id)) + "." +
         std::to_string(msgIdSeq(id));
}

void printDeliveries(Cluster& cluster, const char* label) {
  std::printf("%s (t=%llu)\n", label,
              static_cast<unsigned long long>(cluster.now()));
  for (ProcessId p = 0; p < cluster.processCount(); ++p) {
    std::vector<std::string> ids;
    for (MsgId id : cluster.client(p).delivered()) ids.push_back(shortId(id));
    std::printf("  d_%zu = [%s]\n", p, join(ids, ", ").c_str());
  }
}

}  // namespace

int main() {
  // 1. Describe the deployment: the simulated asynchronous system (the
  //    paper's model), an Omega detector that is split-brain until
  //    t=1500 (processes disagree on the leader — a partition period),
  //    one ET OB automaton (Algorithm 5) per process, and a broadcast
  //    workload of 4 messages per process.
  const Time tauOmega = 1500;
  ClusterSpec spec;
  spec.stack = AlgoStack::kEtob;
  spec.config.processCount = 3;
  spec.config.maxTime = 20000;
  spec.config.timeoutPeriod = 10;  // Δ_t: λ-step period ("local timeout")
  spec.config.minDelay = 20;       // link delays in [20, 40] — Δ_c = 40
  spec.config.maxDelay = 40;
  spec.tauOmega = tauOmega;
  spec.omegaMode = OmegaPreStabilization::kSplitBrain;
  spec.workload.start = 100;
  spec.workload.interval = 80;
  spec.workload.perProcess = 4;

  // 2. Turn it into a running service.
  Cluster cluster(spec, /*seed=*/42);

  std::printf("== ETOB quickstart: n=3, split-brain Omega until t=%llu ==\n\n",
              static_cast<unsigned long long>(tauOmega));

  // 3. Run to mid-divergence, peek, then run to convergence.
  cluster.runUntil([&](const Simulator& s) { return s.now() >= tauOmega / 2; });
  printDeliveries(cluster, "-- during the partition period (sequences may differ)");

  cluster.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 200 && broadcastConverged(s, cluster.log());
  });
  printDeliveries(cluster, "\n-- after Omega stabilized (identical, stable, total)");

  // 4. Verify the ETOB specification over the whole run.
  const BroadcastCheckReport report = checkBroadcastRun(
      cluster.sim().trace(), cluster.log(), cluster.pattern());
  std::printf("\nETOB specification check:\n");
  std::printf("  validity / agreement / no-creation / no-duplication : %s\n",
              report.coreOk() ? "OK" : "FAILED");
  std::printf("  causal order (always)                               : %s\n",
              report.causalOrderOk ? "OK" : "FAILED");
  std::printf("  eventual stability + total order from tau_hat = %llu\n",
              static_cast<unsigned long long>(report.tau));
  std::printf("  paper bound tau_Omega + dt + dc                     = %llu\n",
              static_cast<unsigned long long>(tauOmega +
                                              spec.config.timeoutPeriod +
                                              spec.config.maxDelay));
  return report.coreOk() && report.causalOrderOk ? 0 : 1;
}
