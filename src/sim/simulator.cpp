#include "sim/simulator.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {

Simulator::Simulator(SimConfig config, FailurePattern pattern,
                     std::shared_ptr<const FailureDetector> detector,
                     std::shared_ptr<const NetworkModel> network)
    : config_(config),
      pattern_(std::move(pattern)),
      detector_(std::move(detector)),
      network_(std::move(network)),
      rng_(config.seed),
      automata_(config.processCount),
      fdCache_(config.processCount),
      trace_(config.processCount, config.keepDeliverySnapshots),
      linkRng_(splitmix64(config.seed ^ 0x6c696e6b2d726e67ULL)) {
  WFD_ENSURE(config_.processCount >= 2);
  WFD_ENSURE(pattern_.size() == config_.processCount);
  WFD_ENSURE(detector_ != nullptr);
  WFD_ENSURE(config_.minDelay >= 1 && config_.minDelay <= config_.maxDelay);
  WFD_ENSURE(config_.timeoutPeriod >= 1);
  if (!network_) {
    network_ = std::make_shared<UniformDelayModel>(
        config_.minDelay, config_.maxDelay, config_.fixedDelay);
  }
  ensureCanonicalComposition(*network_);
  linkActive_ = network_->mayDrop();
  if (linkActive_) {
    const Time rto0 = initialRto(config_.maxDelay, config_.timeoutPeriod);
    link_ = std::make_unique<ReliableLink>(rto0, kRtoCapFactor * rto0);
  }
  // Lossy networks reuse the duplicate-suppression set: a retransmitted
  // uid whose earlier copy already reached the automaton must be
  // swallowed at the boundary exactly like a chaos-model duplicate.
  if (network_->mayDuplicate() || linkActive_) {
    deliveredUids_.resize(config_.processCount);
  }
}

void Simulator::addProcess(ProcessId p, std::unique_ptr<Automaton> automaton) {
  WFD_ENSURE(p < automata_.size());
  WFD_ENSURE_MSG(!automata_[p], "process installed twice");
  WFD_ENSURE(automaton != nullptr);
  automata_[p] = std::move(automaton);
}

void Simulator::scheduleInput(ProcessId p, Time t, Payload input) {
  WFD_ENSURE(p < automata_.size());
  EventNode e;
  e.time = t;
  e.kind = EventKind::kInput;
  e.target = p;
  e.slot = allocInputSlot(std::move(input));
  ++pendingInputs_;
  push(e);
}

void Simulator::addDisruption(LinkDisruption d) {
  WFD_ENSURE(d.start <= d.end);
  WFD_ENSURE(static_cast<bool>(d.affects));
  if (d.start == d.end) return;  // empty window: no-op
  PartitionSpec spec;
  spec.start = d.start;
  spec.width = d.end - d.start;
  spec.period = 0;  // LinkDisruption windows are one-shot
  spec.affects = std::move(d.affects);
  disruptions_.push_back(std::move(spec));
}

void Simulator::push(EventNode e) {
  e.seq = nextSeq_++;
  heap_.push_back(e);
  // Sift up.
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!nodeBefore(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::popHeap() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift down.
  const std::size_t size = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= size) break;
    const std::size_t right = left + 1;
    std::size_t smallest =
        (right < size && nodeBefore(heap_[right], heap_[left])) ? right : left;
    if (!nodeBefore(heap_[smallest], heap_[i])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

std::uint32_t Simulator::allocMessageSlot() {
  if (!freeMessageSlots_.empty()) {
    const std::uint32_t slot = freeMessageSlots_.back();
    freeMessageSlots_.pop_back();
    return slot;
  }
  WFD_ENSURE_MSG(messageArena_.size() < kNoSlot, "message arena exhausted");
  messageArena_.emplace_back();
  return static_cast<std::uint32_t>(messageArena_.size() - 1);
}

void Simulator::releaseMessageSlot(std::uint32_t slot) {
  MessageRecord& rec = messageArena_[slot];
  if (--rec.refs == 0) {
    rec.msg.payload = Payload();
    freeMessageSlots_.push_back(slot);
  }
}

std::uint32_t Simulator::allocInputSlot(Payload input) {
  if (!freeInputSlots_.empty()) {
    const std::uint32_t slot = freeInputSlots_.back();
    freeInputSlots_.pop_back();
    inputArena_[slot] = std::move(input);
    return slot;
  }
  WFD_ENSURE_MSG(inputArena_.size() < kNoSlot, "input arena exhausted");
  inputArena_.push_back(std::move(input));
  return static_cast<std::uint32_t>(inputArena_.size() - 1);
}

void Simulator::releaseInputSlot(std::uint32_t slot) {
  inputArena_[slot] = Payload();
  freeInputSlots_.push_back(slot);
}

std::uint32_t Simulator::allocLinkUidSlot(std::uint64_t uid) {
  if (!freeLinkUidSlots_.empty()) {
    const std::uint32_t slot = freeLinkUidSlots_.back();
    freeLinkUidSlots_.pop_back();
    linkUidArena_[slot] = uid;
    return slot;
  }
  WFD_ENSURE_MSG(linkUidArena_.size() < kNoSlot, "link uid arena exhausted");
  linkUidArena_.push_back(uid);
  return static_cast<std::uint32_t>(linkUidArena_.size() - 1);
}

void Simulator::releaseLinkUidSlot(std::uint32_t slot) {
  freeLinkUidSlots_.push_back(slot);
}

void Simulator::scheduleLinkAck(ProcessId receiver, ProcessId sender,
                                std::uint64_t uid) {
  // Acks ride the same lossy network as data (and may themselves be
  // dropped or duplicated — acked() is idempotent), but draw from the
  // link rng so data scheduling stays on the legacy draw sequence.
  arrivalScratch_.clear();
  network_->schedule(LinkSend{receiver, sender, now_, nextAckUid_++},
                     linkRng_, arrivalScratch_);
  ++linkAcksScheduled_;
  for (Time at : arrivalScratch_) {
    WFD_ENSURE_MSG(at > now_, "network model scheduled a non-causal arrival");
    EventNode e;
    e.time = deferPastPartitions(disruptions_, receiver, sender, at);
    e.kind = EventKind::kLinkAck;
    e.target = sender;
    e.slot = allocLinkUidSlot(uid);
    // No latestScheduledArrival_ update: link-layer traffic is not
    // pending protocol work, so it must not defer quiescence detection.
    push(e);
  }
}

void Simulator::scheduleLinkRetry(std::uint64_t uid, ProcessId sender,
                                  Time delay) {
  EventNode e;
  e.time = now_ + delay;
  e.kind = EventKind::kLinkRetry;
  e.target = sender;
  e.slot = allocLinkUidSlot(uid);
  push(e);
}

void Simulator::handleLinkAck(std::uint32_t uidSlot) {
  const std::uint64_t uid = linkUidArena_[uidSlot];
  releaseLinkUidSlot(uidSlot);
  ++linkAcksDelivered_;
  const std::uint32_t slot = link_->acked(uid);
  if (slot != ReliableLink::kNoSlot) releaseMessageSlot(slot);
}

void Simulator::handleLinkRetry(std::uint32_t uidSlot) {
  const std::uint64_t uid = linkUidArena_[uidSlot];
  releaseLinkUidSlot(uidSlot);
  const ReliableLink::Endpoints* ends = link_->peek(uid);
  if (ends == nullptr) return;  // already acked or drained — timer is stale
  if (pattern_.crashed(ends->from, now_) || pattern_.crashed(ends->to, now_)) {
    // Bounded retransmit buffers: a crashed endpoint drains the state
    // instead of retransmitting forever (messages to the dead vanish
    // anyway, and a dead sender sends nothing).
    releaseMessageSlot(link_->drain(uid));
    return;
  }
  const ProcessId from = ends->from;
  const ProcessId to = ends->to;
  const ReliableLink::Retransmit rt = link_->retransmitted(uid);
  arrivalScratch_.clear();
  network_->schedule(LinkSend{from, to, now_, uid}, linkRng_, arrivalScratch_);
  MessageRecord& rec = messageArena_[rt.msgSlot];
  rec.refs += static_cast<std::uint32_t>(arrivalScratch_.size());
  for (Time at : arrivalScratch_) {
    WFD_ENSURE_MSG(at > now_, "network model scheduled a non-causal arrival");
    EventNode e;
    e.time = deferPastPartitions(disruptions_, from, to, at);
    e.kind = EventKind::kMessage;
    e.target = to;
    e.slot = rt.msgSlot;
    // Retransmitted DATA copies are pending protocol work (unlike acks
    // and retry timers), so they do push the quiescence horizon.
    latestScheduledArrival_ = std::max(latestScheduledArrival_, e.time);
    push(e);
  }
  // No trace countSend: retransmissions are link-layer traffic, invisible
  // to the protocol-level trace and its digests.
  scheduleLinkRetry(uid, from, rt.nextRetryDelay);
}

void Simulator::ensureStarted() {
  if (started_) return;
  started_ = true;
  for (ProcessId p = 0; p < automata_.size(); ++p) {
    WFD_ENSURE_MSG(automata_[p] != nullptr, "missing automaton for a process");
    EventNode e;
    // Stagger initial λ-steps so symmetric protocols don't act in
    // lock-step from time zero.
    e.time = 1 + p;
    e.kind = EventKind::kTimeout;
    e.target = p;
    push(e);
  }
}

void Simulator::applyEffects(ProcessId self, Effects& fx) {
  for (const OutboundMsg& out : fx.sends()) {
    const auto sendOne = [&](ProcessId dest) {
      const std::uint64_t uid = nextMsgUid_++;
      // The model decides when (and how many network-layer copies of)
      // this send arrives; legacy LinkDisruption windows apply on top.
      arrivalScratch_.clear();
      network_->schedule(LinkSend{self, dest, now_, uid}, rng_,
                         arrivalScratch_);
      if (arrivalScratch_.empty()) {
        // Only fair-lossy models may drop — and then the retransmission
        // layer below recovers the send.
        WFD_ENSURE_MSG(linkActive_,
                       "network model scheduled no delivery (links are reliable)");
        ++linkDroppedSends_;
      }
      if (arrivalScratch_.size() > 1) {
        WFD_ENSURE_MSG(network_->mayDuplicate(),
                       "model emitted duplicates but mayDuplicate() is false");
      }
      // One envelope regardless of how many network-layer copies were
      // scheduled; the heap nodes all point at it. The retransmission
      // layer holds one extra reference so the payload survives loss.
      const std::uint32_t slot = allocMessageSlot();
      MessageRecord& rec = messageArena_[slot];
      rec.msg.from = self;
      rec.msg.to = dest;
      rec.msg.payload = out.payload;
      rec.msg.sentAt = now_;
      rec.msg.uid = uid;
      rec.msg.duplicated = arrivalScratch_.size() > 1;
      rec.refs = static_cast<std::uint32_t>(arrivalScratch_.size()) +
                 (linkActive_ ? 1u : 0u);
      for (Time at : arrivalScratch_) {
        WFD_ENSURE_MSG(at > now_, "network model scheduled a non-causal arrival");
        EventNode e;
        e.time = deferPastPartitions(disruptions_, self, dest, at);
        e.kind = EventKind::kMessage;
        e.target = dest;
        e.slot = slot;
        latestScheduledArrival_ = std::max(latestScheduledArrival_, e.time);
        push(e);
      }
      if (linkActive_) {
        link_->track(uid, self, dest, slot);
        scheduleLinkRetry(uid, self, link_->initialRto());
      }
      trace_.countSend(out.weight);
    };
    if (out.to == kBroadcast) {
      for (ProcessId dest = 0; dest < automata_.size(); ++dest) sendOne(dest);
    } else {
      WFD_ENSURE(out.to < automata_.size());
      sendOne(out.to);
    }
  }
  // The delivery snapshot is recorded BEFORE the step's outputs: the
  // single delivered() value is the step's final d_i, and outputs (e.g. a
  // CommittedPrefix indication emitted after aligning d_i) describe the
  // post-update state. Checkers that order records within a timestamp
  // (commit_checker via OutputEvent::order) rely on this.
  if (fx.delivered().has_value()) {
    // The hook fires only on actual changes — the same notion of "d_i
    // changed" the trace snapshots use, so observer streams and snapshot
    // histories line up one to one.
    if (trace_.recordDelivered(self, now_, *fx.delivered()) && deliveryHook_) {
      deliveryHook_(self, now_, *fx.delivered());
    }
  }
  for (const Payload& out : fx.outputs()) {
    trace_.recordOutput(self, now_, out);
    if (outputHook_) outputHook_(self, now_, out);
  }
}

bool Simulator::processOne() {
  if (heap_.empty()) return false;
  if (eventsProcessed_ >= config_.maxEvents) return false;
  const EventNode e = heap_.front();
  if (e.time > config_.maxTime) return false;
  popHeap();
  now_ = std::max(now_, e.time);
  ++eventsProcessed_;
  if (e.kind == EventKind::kInput) --pendingInputs_;

  // Link-layer events never reach an automaton, the trace, or the FD
  // cache — they count toward eventsProcessed_ (runaway guard) and
  // nothing else.
  if (e.kind == EventKind::kLinkAck) {
    handleLinkAck(e.slot);
    return true;
  }
  if (e.kind == EventKind::kLinkRetry) {
    handleLinkRetry(e.slot);
    return true;
  }

  const ProcessId p = e.target;
  // Resolve the event body (and release its arena slot) up front; the
  // Payload handle keeps the body alive through the dispatch below.
  ProcessId msgFrom = kNoProcess;
  Payload body;
  if (e.kind == EventKind::kMessage) {
    MessageRecord& rec = messageArena_[e.slot];
    if (pattern_.crashed(p, now_)) {
      // Crashed processes take no steps; their λ-steps stop being
      // rescheduled and messages addressed to them vanish.
      releaseMessageSlot(e.slot);
      return true;
    }
    // Ack EVERY received copy — including ones about to be suppressed as
    // duplicates — because the copy that earned the previous ack may be
    // exactly the one whose ack the network dropped. A crashed receiver
    // (handled above) acks nothing; the sender's retry drains instead.
    if (linkActive_) scheduleLinkAck(p, rec.msg.from, rec.msg.uid);
    // Exactly-once at the automaton boundary: only the first arrival of
    // a multi-copy uid reaches the automaton; later copies are consumed
    // silently. Single-copy messages (the vast majority even under chaos
    // models) skip the bookkeeping entirely. With the retransmission
    // layer active EVERY uid is dedup-tracked: any copy may be
    // retransmitted later.
    if ((rec.msg.duplicated || linkActive_) &&
        !deliveredUids_[p].insert(rec.msg.uid).second) {
      ++duplicatesSuppressed_;
      releaseMessageSlot(e.slot);
      return true;
    }
    msgFrom = rec.msg.from;
    body = rec.msg.payload;
    releaseMessageSlot(e.slot);
  } else {
    if (e.kind == EventKind::kInput) {
      body = std::move(inputArena_[e.slot]);
      releaseInputSlot(e.slot);
    }
    if (pattern_.crashed(p, now_)) return true;
  }

  StepContext& ctx = ctxScratch_;
  ctx.now = now_;
  ctx.self = p;
  ctx.processCount = automata_.size();
  FdCacheEntry& fdCache = fdCache_[p];
  const std::uint64_t epoch = detector_->epochAt(p, now_);
  if (!fdCache.valid || fdCache.epoch != epoch) {
    fdCache.value = detector_->valueAt(p, now_);
    fdCache.epoch = epoch;
    fdCache.valid = true;
  }
  ctx.fd = fdCache.value;

  Effects& fx = effectsScratch_;
  fx.clear();
  switch (e.kind) {
    case EventKind::kMessage:
      trace_.countDelivery();
      automata_[p]->onMessage(ctx, msgFrom, body, fx);
      break;
    case EventKind::kTimeout: {
      automata_[p]->onTimeout(ctx, fx);
      EventNode next;
      next.time = now_ + network_->lambdaPeriod(p, config_.timeoutPeriod);
      next.kind = EventKind::kTimeout;
      next.target = p;
      push(next);
      break;
    }
    case EventKind::kInput:
      automata_[p]->onInput(ctx, body, fx);
      break;
    case EventKind::kLinkAck:
    case EventKind::kLinkRetry:
      WFD_ENSURE_MSG(false, "link events are dispatched before this switch");
      break;
  }
  trace_.countStep(p);
  applyEffects(p, fx);
  return true;
}

void Simulator::run() {
  ensureStarted();
  while (processOne()) {
  }
}

bool Simulator::runUntilTime(Time t) {
  ensureStarted();
  while (!heap_.empty() && heap_.front().time <= t) {
    if (!processOne()) return false;
  }
  return !heap_.empty() && heap_.front().time <= config_.maxTime &&
         eventsProcessed_ < config_.maxEvents;
}

std::optional<Time> Simulator::nextEventTime() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

void Simulator::setCrash(ProcessId p, Time t) {
  WFD_ENSURE(p < automata_.size());
  WFD_ENSURE_MSG(t >= now_, "cannot inject a crash into the past");
  // Crashes are monotone (F(t) subset of F(t+1)): re-crashing an already
  // faulty process can only move its crash time EARLIER than the recorded
  // one if the trace were rewritten — keep the earliest.
  WFD_ENSURE_MSG(pattern_.crashTime(p) >= now_,
                 "process already crashed before now");
  pattern_.setCrash(p, std::min(t, pattern_.crashTime(p)));
}

void Simulator::setDetector(std::shared_ptr<const FailureDetector> detector) {
  WFD_ENSURE(detector != nullptr);
  detector_ = std::move(detector);
  // Epochs of different detectors are incomparable.
  for (FdCacheEntry& e : fdCache_) e.valid = false;
}

bool Simulator::runUntil(const std::function<bool(const Simulator&)>& pred,
                         std::uint64_t checkEvery) {
  WFD_ENSURE(checkEvery >= 1);
  ensureStarted();
  if (pred(*this)) return true;
  std::uint64_t sinceCheck = 0;
  while (processOne()) {
    if (++sinceCheck >= checkEvery) {
      sinceCheck = 0;
      if (pred(*this)) return true;
    }
  }
  return pred(*this);
}

}  // namespace wfd
