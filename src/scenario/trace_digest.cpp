#include "scenario/trace_digest.h"

#include "ec/ec_types.h"
#include "etob/commit_etob.h"
#include "rsm/gossip_lww.h"

namespace wfd {

namespace {

void mixValue(TraceHasher& h, const Value& v) {
  h.mix(v.size());
  for (std::uint64_t w : v) h.mix(w);
}

/// Folds in the content of a known output payload; unknown types fold a
/// fixed marker only (their timing is still covered by the caller).
void mixOutput(TraceHasher& h, const Payload& p) {
  if (const auto* d = p.as<EcDecision>()) {
    h.mix(1);
    h.mix(d->instance);
    mixValue(h, d->value);
  } else if (const auto* d = p.as<EicDecision>()) {
    h.mix(2);
    h.mix(d->instance);
    mixValue(h, d->value);
  } else if (const auto* d = p.as<ProposalMade>()) {
    h.mix(3);
    h.mix(d->instance);
    mixValue(h, d->value);
  } else if (const auto* d = p.as<CommittedPrefix>()) {
    h.mix(4);
    h.mix(d->length);
  } else if (const auto* d = p.as<GossipApplied>()) {
    h.mix(5);
    h.mix(d->id);
    h.mix(d->key);
  } else {
    h.mix(0);
  }
}

}  // namespace

std::uint64_t traceDigest(const Trace& trace) {
  TraceHasher h;
  const std::size_t n = trace.processCount();
  h.mix(n);
  for (ProcessId p = 0; p < n; ++p) {
    h.mix(trace.stepsTaken(p));
    h.mix(trace.prefixViolations(p));
    h.mix(trace.lastDeliveryChange(p));
    const auto& outputs = trace.outputs(p);
    h.mix(outputs.size());
    for (const OutputEvent& ev : outputs) {
      h.mix(ev.time);
      mixOutput(h, ev.value);
    }
    const auto& snapshots = trace.deliverySnapshots(p);
    h.mix(snapshots.size());
    for (const DeliverySnapshot& s : snapshots) {
      h.mix(s.time);
      h.mix(s.seq.size());
      for (MsgId m : s.seq) h.mix(m);
    }
    const auto& current = trace.currentDelivered(p);
    h.mix(current.size());
    for (MsgId m : current) h.mix(m);
  }
  h.mix(trace.messagesSent());
  h.mix(trace.messagesDelivered());
  h.mix(trace.weightSent());
  return h.digest();
}

}  // namespace wfd
