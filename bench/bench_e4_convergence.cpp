// E4 — The convergence window (paper Lemma 3's construction):
// tau = tau_Omega + Δ_t + Δ_c.
//
// Claim: after Omega stabilizes, one λ-period (the leader's next promote)
// plus one link delay suffice for every correct process to adopt the
// stable leader's sequence — ETOB-Stability and ETOB-Total-order hold
// from tau_Omega + Δ_t + Δ_c onwards.
//
// Method: sweep (tau_Omega, Δ_t) at fixed Δ_c; measure the empirical τ̂
// (last stability/total-order violation) and check τ̂ <= bound.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"

namespace wfd::bench {
namespace {

constexpr Time kDeltaC = 60;

struct Result {
  Time tauHat = 0;
  bool withinBound = false;
};

Result run(Time tauOmega, Time deltaT, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = seed;
  cfg.maxTime = 40000;
  cfg.timeoutPeriod = deltaT;
  cfg.minDelay = kDeltaC / 2;
  cfg.maxDelay = kDeltaC;
  auto fp = FailurePattern::noFailures(3);
  auto cluster =
      makeEtobCluster(cfg, fp, tauOmega, OmegaPreStabilization::kSplitBrain);
  Simulator& sim = cluster.sim();
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 60;
  w.perProcess = 12;
  cluster.scheduleWorkload(w);
  const BroadcastLog& log = cluster.log();
  cluster.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 10 * (deltaT + kDeltaC) &&
           broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  Result r;
  r.tauHat = report.tau;
  r.withinBound = report.tau <= tauOmega + deltaT + kDeltaC;
  return r;
}

void printTable() {
  std::printf("E4: measured convergence time tau_hat vs the paper's bound\n"
              "tau_Omega + dt + dc (dc = %llu)\n\n",
              static_cast<unsigned long long>(kDeltaC));
  Table t({"tau_Omega", "delta_t", "bound", "tau_hat(max)", "within"});
  for (Time tau : {500u, 1500u, 3000u}) {
    for (Time dt : {5u, 20u, 50u}) {
      Time worst = 0;
      bool within = true;
      for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        auto r = run(tau, dt, seed);
        worst = std::max(worst, r.tauHat);
        within = within && r.withinBound;
      }
      t.row({std::to_string(tau), std::to_string(dt),
             std::to_string(tau + dt + kDeltaC), std::to_string(worst),
             within ? "yes" : "NO"});
    }
  }
  std::printf("\n");
}

void BM_ConvergenceWindow(benchmark::State& state) {
  const Time tau = static_cast<Time>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(tau, 20, seed++);
    benchmark::DoNotOptimize(r);
    state.counters["tau_hat"] = static_cast<double>(r.tauHat);
  }
}
BENCHMARK(BM_ConvergenceWindow)->Arg(500)->Arg(3000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
