// Failure detector abstraction: values and histories H(p, t).
//
// A failure detector D maps a failure pattern F to a set of histories;
// a concrete oracle here computes one deterministic history per
// (pattern, parameters, seed). Protocols only ever see FdValue samples
// through StepContext — the oracle itself is allowed to look at F, as in
// the formal definition.
//
// Properties (completeness/accuracy form). A detector class is specified
// by a pair of clauses over its histories, one bounding what must
// eventually be reported (completeness) and one bounding what may be
// reported (accuracy); the FdValue fields carry the three classical
// shapes used in this repo:
//  * leader (Omega)  — Completeness: eventually no correct process
//    trusts a crashed one. Accuracy: eventually all correct processes
//    trust the SAME correct process, forever. (EPFD ch. 2.6.5 "eventual
//    leader election" — both clauses folded into one output.)
//  * suspects (P/◇P) — Strong Completeness: every crashed process is
//    eventually suspected by every correct process. Strong Accuracy
//    (EPFD1, P): no process is suspected before it crashes; Eventual
//    Strong Accuracy (EPFD2, ◇P): eventually no correct process is
//    suspected.
//  * quorum (Sigma)  — Completeness: quorums at correct processes
//    eventually contain only correct processes. Accuracy (intersection):
//    any two quorums, at any processes and times, intersect.
// The checkers and the CHT extractor rely only on these clauses, never
// on how a particular oracle realizes them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace wfd {

/// A single failure detector module output d.
///
/// One aggregate covers every detector in this library: Omega uses
/// `leader`, Sigma uses `quorum`, P / eventually-P use `suspects`,
/// composites use several fields. Unused fields keep their defaults so
/// values stay comparable and hashable (the CHT DAG keys on them).
struct FdValue {
  /// Omega component: id of the current trusted leader.
  ProcessId leader = kNoProcess;
  /// Sigma component: current quorum, sorted ascending.
  std::vector<ProcessId> quorum;
  /// P / eventually-P component: currently suspected processes, sorted.
  std::vector<ProcessId> suspects;

  /// Equality plus a canonical total order (the CHT reduction sorts
  /// failure-detector samples into a process-independent order).
  auto operator<=>(const FdValue&) const = default;
};

struct FdValueHash {
  std::size_t operator()(const FdValue& v) const {
    std::size_t seed = std::hash<ProcessId>{}(v.leader);
    hashCombine(seed, hashVector(v.quorum));
    hashCombine(seed, hashVector(v.suspects));
    return seed;
  }
};

/// A failure detector history: deterministic map (p, t) -> FdValue.
class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// The value output by p's module at time t, i.e. H(p, t).
  virtual FdValue valueAt(ProcessId p, Time t) const = 0;

  /// Change-epoch of H(p, ·): the contract is
  ///   epochAt(p, t1) == epochAt(p, t2)  =>  valueAt(p, t1) == valueAt(p, t2).
  /// The simulator queries the (cheap) epoch on every step and only
  /// recomputes the (possibly O(n)) value when the epoch moved, making FD
  /// history queries amortized O(1) on the hot path — detector values
  /// change a handful of times per run while steps number in the
  /// millions at n=256. The default maps every tick to its own epoch:
  /// always correct, never caches. Overrides must be conservative —
  /// returning distinct epochs for equal values only costs speed, while
  /// equal epochs for distinct values would silently corrupt runs.
  virtual std::uint64_t epochAt(ProcessId p, Time t) const {
    (void)p;
    return static_cast<std::uint64_t>(t);
  }

  /// Human-readable detector name, for diagnostics and bench tables.
  virtual std::string name() const = 0;
};

}  // namespace wfd
