// Reliable-link layer tests: the pure backoff policy, the simulator's
// stubborn-retransmission machinery under real loss (determinism,
// exactly-once through loss+duplication, the loss=0 ≡ legacy
// differential), and the crashed-peer drain that keeps retransmit
// buffers bounded.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "link/reliable_link.h"
#include "scenario/trace_digest.h"
#include "sim/failure_pattern.h"
#include "sim/lossy_model.h"
#include "sim/simulator.h"

namespace wfd {
namespace {

// --- Pure policy helpers -----------------------------------------------------

TEST(BackoffPolicyTest, InitialRtoCoversALossFreeRoundTrip) {
  // 2 * maxDelay (data + ack flight) + one λ-period of slack + 1: under a
  // lossless uniform network the ack ALWAYS beats the first retry, which
  // is what keeps the loss=0 differential digest-identical.
  EXPECT_EQ(initialRto(40, 10), 91u);
  EXPECT_EQ(initialRto(1, 1), 4u);
}

TEST(BackoffPolicyTest, BackoffDoublesThenPinsAtTheCap) {
  const Time rto0 = initialRto(40, 10);
  const Time cap = kRtoCapFactor * rto0;
  Time rto = rto0;
  std::vector<Time> ladder;
  for (int i = 0; i < 8; ++i) {
    rto = nextBackoff(rto, cap);
    ladder.push_back(rto);
  }
  EXPECT_EQ(ladder,
            (std::vector<Time>{182, 364, 728, 1456, 1456, 1456, 1456, 1456}));
}

TEST(ReliableLinkTest, TrackAckDrainLifecycle) {
  ReliableLink link(100, 1600);
  link.track(7, /*from=*/0, /*to=*/1, /*msgSlot=*/42);
  EXPECT_EQ(link.pending(), 1u);
  ASSERT_NE(link.peek(7), nullptr);
  EXPECT_EQ(link.peek(7)->from, 0u);
  EXPECT_EQ(link.peek(7)->to, 1u);

  // First retry doubles the RTO and hands the slot back for re-sending.
  const ReliableLink::Retransmit rt = link.retransmitted(7);
  EXPECT_EQ(rt.msgSlot, 42u);
  EXPECT_EQ(rt.nextRetryDelay, 200u);
  EXPECT_EQ(link.retransmissions(), 1u);

  // Ack erases the state; a duplicate ack is an idempotent no-op (it
  // retires nothing and is not counted) and a stale retry timer sees
  // nullptr.
  EXPECT_EQ(link.acked(7), 42u);
  EXPECT_EQ(link.acked(7), ReliableLink::kNoSlot);
  EXPECT_EQ(link.peek(7), nullptr);
  EXPECT_EQ(link.pending(), 0u);
  EXPECT_EQ(link.acksReceived(), 1u);

  // Drain path: tracked, then dropped without retransmission.
  link.track(8, 1, 2, 43);
  EXPECT_EQ(link.drain(8), 43u);
  EXPECT_EQ(link.drained(), 1u);
  EXPECT_EQ(link.pending(), 0u);
}

// --- Simulator integration ---------------------------------------------------

struct LossyRun {
  std::uint64_t digest = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t drained = 0;
  std::uint64_t acksDelivered = 0;
  std::uint64_t droppedSends = 0;
  std::uint64_t duplicatesSuppressed = 0;
  std::size_t pendingAtEnd = 0;
  bool checkerPass = false;
  std::string firstFailure;
};

/// Runs the eTOB stack on the given network with an optional crash,
/// returning the digest + link-layer counters + broadcast checker verdict.
LossyRun runEtob(std::shared_ptr<const NetworkModel> model, std::uint64_t seed,
                 Time maxTime, ProcessId crashed = kNoProcess,
                 Time crashAt = 0) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = seed;
  cfg.maxTime = maxTime;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  FailurePattern fp = FailurePattern::noFailures(3);
  if (crashed != kNoProcess) fp.setCrash(crashed, crashAt);
  auto omega =
      std::make_shared<OmegaFd>(fp, 1000, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega, std::move(model));
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 50;
  w.perProcess = 5;
  const BroadcastLog log = scheduleBroadcastWorkload(sim, w);
  sim.run();

  LossyRun out;
  out.digest = traceDigest(sim.trace());
  out.retransmissions = sim.linkRetransmissions();
  out.drained = sim.linkDrained();
  out.acksDelivered = sim.linkAcksDelivered();
  out.droppedSends = sim.linkDroppedSends();
  out.duplicatesSuppressed = sim.duplicatesSuppressed();
  out.pendingAtEnd = sim.pendingLinkTx();
  const BroadcastCheckReport check =
      checkBroadcastRun(sim.trace(), log, sim.failurePattern());
  out.checkerPass = check.coreOk();
  if (!out.checkerPass && !check.errors.empty()) {
    out.firstFailure = check.errors.front();
  }
  return out;
}

std::shared_ptr<const NetworkModel> iidLossyNet(std::uint32_t num,
                                                std::uint32_t den,
                                                Time activeUntil) {
  IidLossModel::Config loss;
  loss.num = num;
  loss.den = den;
  loss.activeUntil = activeUntil;
  return std::make_shared<IidLossModel>(
      std::make_shared<UniformDelayModel>(20, 40), loss);
}

TEST(SimulatorLinkLayerTest, LossyRunsAreSeedDeterministic) {
  const LossyRun a = runEtob(iidLossyNet(1, 5, 8000), 11, 20000);
  const LossyRun b = runEtob(iidLossyNet(1, 5, 8000), 11, 20000);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.droppedSends, b.droppedSends);
  // Non-vacuity: the adversary really dropped copies and the link layer
  // really re-sent them; the checker still passes (no lost broadcasts).
  EXPECT_GT(a.droppedSends, 0u);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_TRUE(a.checkerPass) << a.firstFailure;
  // Different seeds explore different lossy schedules.
  EXPECT_NE(a.digest, runEtob(iidLossyNet(1, 5, 8000), 12, 20000).digest);
}

TEST(SimulatorLinkLayerTest, ExactlyOnceUnderLossPlusDuplication) {
  // Chaos duplicates aggressively below an i.i.d. loss layer: copies are
  // both multiplied and dropped, retransmits re-deliver already-seen
  // uids — and the automaton boundary still sees every message exactly
  // once (checkBroadcastRun's no-duplication clause).
  ChaosLinkModel::Config chaos;
  chaos.dupNum = 1;
  chaos.dupDen = 2;
  chaos.maxExtraCopies = 2;
  chaos.reorderJitter = 15;
  IidLossModel::Config loss;
  loss.num = 1;
  loss.den = 5;
  loss.activeUntil = 8000;
  auto net = std::make_shared<IidLossModel>(
      std::make_shared<ChaosLinkModel>(
          std::make_shared<UniformDelayModel>(20, 40), chaos),
      loss);
  const LossyRun r = runEtob(net, 3, 20000);
  EXPECT_TRUE(r.checkerPass) << r.firstFailure;
  EXPECT_GT(r.duplicatesSuppressed, 0u);
  EXPECT_GT(r.retransmissions, 0u);
}

TEST(SimulatorLinkLayerTest, RateZeroLossMatchesLegacyDigest) {
  // The retransmission layer armed on a network that never drops must be
  // INVISIBLE: same digest as the plain uniform-delay run (acks ride a
  // separate rng and never reach the trace; the first transmission uses
  // the main rng draw sequence unchanged; no retry ever fires because
  // the initial RTO exceeds the worst loss-free round trip).
  const LossyRun legacy = runEtob(nullptr, 7, 15000);
  const LossyRun gated = runEtob(iidLossyNet(0, 1, 0), 7, 15000);
  EXPECT_EQ(gated.digest, legacy.digest);
  EXPECT_EQ(gated.retransmissions, 0u);
  EXPECT_EQ(gated.droppedSends, 0u);
  // Non-vacuity: the layer was actually engaged, acks actually flowed.
  // (pendingLinkTx stays nonzero — eTOB keeps sending right up to
  // maxTime, so an in-flight ack tail always exists — but nothing was
  // ever dropped from the buffer.)
  EXPECT_EQ(legacy.acksDelivered, 0u);
  EXPECT_GT(gated.acksDelivered, 0u);
  EXPECT_EQ(gated.drained, 0u);
}

TEST(SimulatorLinkLayerTest, RetransmissionToCrashedPeerStops) {
  // Loss active FOREVER and one peer crashes mid-run: retransmissions to
  // the dead peer must drain at the next retry instead of backing off
  // forever, so the pending-tx buffer empties and the event queue goes
  // quiet (the unbounded-buffer regression this satellite pins).
  const LossyRun r =
      runEtob(iidLossyNet(1, 5, /*activeUntil=*/0), 5, 30000,
              /*crashed=*/2, /*crashAt=*/1500);
  EXPECT_GT(r.drained, 0u);
  EXPECT_TRUE(r.checkerPass) << r.firstFailure;
  // Doubling the horizon must not grow the pending buffer: every message
  // to the dead peer drains at its next retry, so the buffer holds only
  // the recent in-flight tail (a steady state, not a leak). Retransmit
  // work grows at most linearly with the horizon — stubbornness never
  // compounds on a dead link.
  const LossyRun longer =
      runEtob(iidLossyNet(1, 5, 0), 5, 60000, 2, 1500);
  EXPECT_LE(longer.pendingAtEnd, 2 * r.pendingAtEnd);
  EXPECT_LT(longer.retransmissions, 3 * r.retransmissions);
  EXPECT_LT(longer.drained, 3 * r.drained);
}

}  // namespace
}  // namespace wfd
