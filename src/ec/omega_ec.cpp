#include "ec/omega_ec.h"

namespace wfd {

void OmegaEcAutomaton::onInput(const StepContext&, const Payload& input,
                               Effects& fx) {
  const auto* propose = input.as<ProposeInput>();
  if (propose == nullptr) return;
  count_ = propose->instance;
  fx.broadcast(Payload::of(EcPromoteMsg{propose->value, propose->instance}));
}

const Value* OmegaEcAutomaton::findReceived(std::uint64_t key) const {
  if (key < kDenseKeyLimit) {
    if (key >= denseReceived_.size() || !denseReceived_[key]) return nullptr;
    return &*denseReceived_[key];
  }
  const auto it = sparseReceived_.find(key);
  return it == sparseReceived_.end() ? nullptr : &it->second;
}

void OmegaEcAutomaton::storeReceived(std::uint64_t key, const Value& value) {
  if (key < kDenseKeyLimit) {
    if (key >= denseReceived_.size()) denseReceived_.resize(key + 1);
    denseReceived_[key] = value;
  } else {
    sparseReceived_[key] = value;
  }
}

void OmegaEcAutomaton::markDecided(Instance l) {
  if (l < kDenseKeyLimit) {
    if (l >= denseDecided_.size()) denseDecided_.resize(l + 1);
    denseDecided_[l] = true;
  } else {
    sparseDecided_.insert(l);
  }
}

void OmegaEcAutomaton::onMessage(const StepContext& ctx, ProcessId from,
                                 const Payload& msg, Effects&) {
  const auto* promote = msg.as<EcPromoteMsg>();
  if (promote == nullptr) return;
  storeReceived(receivedKey(ctx, from, promote->instance), promote->value);
}

void OmegaEcAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  if (count_ == 0 || decided(count_)) return;
  if (ctx.fd.leader >= ctx.processCount) return;
  const Value* v = findReceived(receivedKey(ctx, ctx.fd.leader, count_));
  if (v == nullptr) return;
  markDecided(count_);
  fx.output(Payload::of(EcDecision{count_, *v}));
}

}  // namespace wfd
