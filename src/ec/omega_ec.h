// Algorithm 4: eventual consensus from Omega, in ANY environment —
// the sufficiency half of Theorem 2.
//
// Per the paper:
//  * on proposeEC_l(v)      -> count_i := l; send promote(v, l) to all
//  * on promote(v, l) from j-> received_i[j, l] := v
//  * on local timeout       -> if received_i[Omega_i, count_i] != ⊥ then
//                              DecideEC(count_i, received_i[Omega_i, count_i])
//
// Once Omega stabilizes on one correct leader, all processes decide that
// leader's proposals, giving agreement for every later instance; no
// quorum (Sigma) is ever needed.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "ec/ec_types.h"
#include "sim/automaton.h"

namespace wfd {

/// Algorithm 4's wire message promote(v, l).
struct EcPromoteMsg {
  Value value;
  Instance instance = 0;
};

class OmegaEcAutomaton final : public CloneableAutomaton<OmegaEcAutomaton> {
 public:
  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  Instance currentInstance() const { return count_; }
  bool decided(Instance l) const {
    return l < kDenseKeyLimit
               ? l < denseDecided_.size() && denseDecided_[l]
               : sparseDecided_.contains(l);
  }

 private:
  /// Flat key for received_i[(j, l)]: l * n + j, injective for any run
  /// (n is fixed per run). The EC driver proposes instances
  /// sequentially, so the key space is dense and a flat vector replaces
  /// the former std::map — whose per-promote node allocation and
  /// rebalancing was the top cost of the Omega->EC stack at n=256.
  /// Direct (non-driver) users with absurdly large instance numbers
  /// fall back to a sparse map instead of forcing a huge resize.
  static std::uint64_t receivedKey(const StepContext& ctx, ProcessId j,
                                   Instance l) {
    return l * static_cast<std::uint64_t>(ctx.processCount) +
           static_cast<std::uint64_t>(j);
  }

  static constexpr std::uint64_t kDenseKeyLimit = 1u << 22;

  const Value* findReceived(std::uint64_t key) const;
  void storeReceived(std::uint64_t key, const Value& value);
  void markDecided(Instance l);

  Instance count_ = 0;  // number of the last instance invoked here
  /// received_i[(j, l)] — the value promoted by p_j for instance l
  /// (nullopt = ⊥); dense storage with sparse overflow past the limit.
  std::vector<std::optional<Value>> denseReceived_;
  std::unordered_map<std::uint64_t, Value> sparseReceived_;
  /// Instances already responded to (EC-Integrity: at most one response).
  std::vector<bool> denseDecided_;
  std::unordered_set<Instance> sparseDecided_;
};

}  // namespace wfd
