// Replicated state machine over any broadcast ordering service.
//
// Plugging EtobAutomaton gives the paper's eventually consistent
// replicated service (an "eventually linearizable universal
// construction", §6); plugging TobViaConsensusAutomaton gives the
// classical strongly consistent replica. The replica replays the
// ordering service's delivery sequence d_i into the state machine: when
// d_i grows by a suffix, the new commands are applied incrementally; when
// d_i is rewritten (possible in ETOB before τ), the machine is rebuilt
// from scratch — state = fold(apply, initial, d_i).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ensure.h"
#include "common/types.h"
#include "rsm/state_machines.h"
#include "sim/app_msg.h"
#include "sim/automaton.h"

namespace wfd {

/// Client request: apply a command to the replicated machine.
struct ClientCommand {
  Command command;
};

template <typename Ordering, typename Machine>
class ReplicaAutomaton final
    : public CloneableAutomaton<ReplicaAutomaton<Ordering, Machine>> {
 public:
  explicit ReplicaAutomaton(Ordering ordering) : ordering_(std::move(ordering)) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    const auto* cmd = input.as<ClientCommand>();
    if (cmd == nullptr) return;
    AppMsg m;
    m.id = makeMsgId(ctx.self, nextSeq_++);
    m.origin = ctx.self;
    m.body = cmd->command;
    Effects cfx;
    ordering_.onInput(ctx, Payload::of(BroadcastInput{std::move(m)}), cfx);
    drain(cfx, fx);
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    Effects cfx;
    ordering_.onMessage(ctx, from, msg, cfx);
    drain(cfx, fx);
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    Effects cfx;
    ordering_.onTimeout(ctx, cfx);
    drain(cfx, fx);
  }

  const Machine& machine() const { return machine_; }
  const Ordering& ordering() const { return ordering_; }
  /// Number of full state rebuilds caused by delivery-sequence rewrites
  /// (zero under strong TOB; zero after τ under ETOB).
  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  void drain(Effects& cfx, Effects& fx) {
    // The replica adds no wire messages; ordering traffic passes through.
    for (const OutboundMsg& m : cfx.sends()) {
      if (m.to == kBroadcast) {
        fx.broadcast(m.payload, m.weight);
      } else {
        fx.send(m.to, m.payload, m.weight);
      }
    }
    for (const Payload& out : cfx.outputs()) fx.output(out);
    if (!cfx.delivered().has_value()) return;
    fx.deliverSequence(*cfx.delivered());
    syncMachine(*cfx.delivered());
  }

  void syncMachine(const std::vector<MsgId>& seq) {
    const bool isExtension =
        seq.size() >= applied_.size() &&
        std::equal(applied_.begin(), applied_.end(), seq.begin());
    std::size_t from = applied_.size();
    if (!isExtension) {
      machine_ = Machine{};
      ++rebuilds_;
      from = 0;
    }
    for (std::size_t i = from; i < seq.size(); ++i) {
      const AppMsg* m = ordering_.findMessage(seq[i]);
      WFD_ENSURE_MSG(m != nullptr, "delivered command with unknown content");
      machine_.apply(m->body);
    }
    applied_ = seq;
  }

  Ordering ordering_;
  Machine machine_;
  std::vector<MsgId> applied_;
  std::uint32_t nextSeq_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace wfd
