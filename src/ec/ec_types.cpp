#include "ec/ec_types.h"

#include "common/ensure.h"

namespace wfd {

Value encodeValueSeq(const std::vector<Value>& seq) {
  Value out;
  out.push_back(seq.size());
  for (const Value& v : seq) {
    out.push_back(v.size());
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::vector<Value> decodeValueSeq(const Value& encoded) {
  WFD_ENSURE(!encoded.empty());
  std::size_t pos = 0;
  const std::uint64_t count = encoded[pos++];
  std::vector<Value> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    WFD_ENSURE(pos < encoded.size());
    const std::uint64_t len = encoded[pos++];
    WFD_ENSURE(pos + len <= encoded.size());
    out.emplace_back(encoded.begin() + pos, encoded.begin() + pos + len);
    pos += len;
  }
  WFD_ENSURE_MSG(pos == encoded.size(), "trailing bytes in encoded value sequence");
  return out;
}

}  // namespace wfd
