#include "consensus/ct_consensus.h"

#include <algorithm>

namespace wfd {

bool CtConsensusAutomaton::suspects(const FdValue& fd, ProcessId c) {
  if (!fd.suspects.empty()) {
    return std::binary_search(fd.suspects.begin(), fd.suspects.end(), c);
  }
  // Omega-style histories: trust exactly the current leader.
  return fd.leader != kNoProcess && fd.leader != c;
}

void CtConsensusAutomaton::onInput(const StepContext& ctx, const Payload& input,
                                   Effects& fx) {
  const auto* propose = input.as<ProposeInput>();
  if (propose == nullptr) return;
  PerInstance& st = inst(propose->instance);
  if (st.started) return;
  st.started = true;
  if (st.decided) {
    // The decision was learned (via a relayed CtDecideMsg) before this
    // process even proposed; respond immediately.
    fx.output(Payload::of(EcDecision{propose->instance, st.decision}));
    return;
  }
  st.estimate = propose->value;
  st.stamp = 0;
  enterRound(ctx, propose->instance, 1, fx);
}

void CtConsensusAutomaton::enterRound(const StepContext&, Instance l,
                                      std::uint64_t round, Effects& fx) {
  PerInstance& st = inst(l);
  st.round = round;
  // Estimates are broadcast (not unicast to the coordinator) so that
  // lagging processes can round-synchronize: without this, processes can
  // park in different leader-coordinated rounds and split the estimate
  // quorum forever (the classical round-synchronization fix).
  fx.broadcast(Payload::of(CtEstimateMsg{l, round, st.estimate, st.stamp}));
}

void CtConsensusAutomaton::onMessage(const StepContext& ctx, ProcessId from,
                                     const Payload& msg, Effects& fx) {
  const std::size_t majority = ctx.processCount / 2 + 1;

  if (const auto* est = msg.as<CtEstimateMsg>()) {
    PerInstance& st = inst(est->instance);
    if (st.decided) {
      fx.send(from, Payload::of(CtDecideMsg{est->instance, st.decision}));
      return;
    }
    // Round synchronization: a peer ahead of us pulls us forward.
    if (st.started && est->round > st.round) {
      enterRound(ctx, est->instance, est->round, fx);
    }
    // Phase 2 (coordinator): gather a majority of estimates, propose the
    // one with the highest stamp.
    auto& bucket = st.estimates[est->round];
    bucket[from] = {est->stamp, est->estimate};
    if (bucket.size() >= majority && !st.proposed.contains(est->round) &&
        coordinatorOf(est->round, ctx.processCount) == ctx.self) {
      const auto best = std::max_element(
          bucket.begin(), bucket.end(), [](const auto& a, const auto& b) {
            return a.second.first < b.second.first;
          });
      st.proposed[est->round] = best->second.second;
      fx.broadcast(Payload::of(
          CtProposeMsg{est->instance, est->round, best->second.second}));
    }
    return;
  }

  if (const auto* prop = msg.as<CtProposeMsg>()) {
    PerInstance& st = inst(prop->instance);
    if (st.decided || !st.started) return;
    if (prop->round < st.round) return;  // stale round
    // Phase 3: adopt and ack.
    if (prop->round > st.round) st.round = prop->round;
    st.estimate = prop->proposal;
    st.stamp = prop->round;
    fx.send(from, Payload::of(CtAckMsg{prop->instance, prop->round, true}));
    return;
  }

  if (const auto* ack = msg.as<CtAckMsg>()) {
    PerInstance& st = inst(ack->instance);
    if (st.decided) return;
    if (!ack->positive) return;  // a nack just means the sender moved on
    auto& voters = st.acks[ack->round];
    voters.insert(from);
    // Phase 4 (coordinator): a majority of acks locks the value THIS
    // round proposed (the coordinator's own estimate may have moved on).
    auto proposal = st.proposed.find(ack->round);
    if (voters.size() >= majority && proposal != st.proposed.end() &&
        coordinatorOf(ack->round, ctx.processCount) == ctx.self) {
      decide(ack->instance, proposal->second, fx);
      fx.broadcast(Payload::of(CtDecideMsg{ack->instance, proposal->second}));
    }
    return;
  }

  if (const auto* dec = msg.as<CtDecideMsg>()) {
    PerInstance& st = inst(dec->instance);
    if (st.decided || !st.started) {
      if (!st.started) {
        // Remember the decision; it is output when this process proposes.
        st.decided = true;
        st.decision = dec->value;
      }
      return;
    }
    decide(dec->instance, dec->value, fx);
    // Reliable broadcast: relay once.
    fx.broadcast(Payload::of(CtDecideMsg{dec->instance, dec->value}));
    return;
  }
}

void CtConsensusAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  // Suspicion-driven round advance for every open instance.
  for (auto& [l, st] : instances_) {
    if (!st.started || st.decided) continue;
    const ProcessId coord = coordinatorOf(st.round, ctx.processCount);
    if (coord == ctx.self) continue;  // coordinators don't nack themselves
    if (suspects(ctx.fd, coord)) {
      fx.send(coord, Payload::of(CtAckMsg{l, st.round, false}));
      enterRound(ctx, l, st.round + 1, fx);
    }
  }
}

bool CtConsensusAutomaton::decided(Instance l) const {
  auto it = instances_.find(l);
  return it != instances_.end() && it->second.decided;
}

std::uint64_t CtConsensusAutomaton::currentRound(Instance l) const {
  auto it = instances_.find(l);
  return it == instances_.end() ? 0 : it->second.round;
}

void CtConsensusAutomaton::decide(Instance l, const Value& v, Effects& fx) {
  PerInstance& st = inst(l);
  if (st.decided) return;
  st.decided = true;
  st.decision = v;
  fx.output(Payload::of(EcDecision{l, v}));
}

}  // namespace wfd
