// Network-level message envelope.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd {

/// Target meaning "send to every process, including the sender" — the
/// paper's step semantics sends the same message to all processes.
inline constexpr ProcessId kBroadcast = kNoProcess;

/// A message in transit on a reliable link.
struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Payload payload;
  Time sentAt = 0;
  /// Unique per-run network identifier (assigned by the simulator).
  std::uint64_t uid = 0;
  /// True iff the network model scheduled more than one copy of this
  /// send — only those uids need duplicate suppression at the automaton
  /// boundary, keeping the bookkeeping off single-copy traffic.
  bool duplicated = false;
};

}  // namespace wfd
