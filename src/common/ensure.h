// Internal invariant checking.
//
// WFD_ENSURE throws (rather than aborting) so tests can assert that
// protocol invariants are enforced, and so a violated invariant in a
// benchmark produces a diagnosable error instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wfd {

/// Error thrown when an internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void failEnsure(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace wfd

#define WFD_ENSURE(expr)                                                \
  do {                                                                  \
    if (!(expr)) ::wfd::detail::failEnsure(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define WFD_ENSURE_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream wfd_ensure_os;                                 \
      wfd_ensure_os << msg;                                             \
      ::wfd::detail::failEnsure(#expr, __FILE__, __LINE__,              \
                                wfd_ensure_os.str());                   \
    }                                                                   \
  } while (false)

/// Debug-build-only invariant check: enforced like WFD_ENSURE in builds
/// without NDEBUG (debug, asan, tsan presets); compiled but never
/// evaluated in release builds, so hot paths can carry expensive
/// cross-checks for free.
#ifndef NDEBUG
#define WFD_DCHECK(expr) WFD_ENSURE(expr)
#else
#define WFD_DCHECK(expr)            \
  do {                              \
    if (false) {                    \
      (void)(expr);                 \
    }                               \
  } while (false)
#endif
