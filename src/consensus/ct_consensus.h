// Chandra–Toueg rotating-coordinator consensus [3] — the classical
// Ω/◊S + majority algorithm the paper builds on ("Chandra and Toueg
// proved that Omega is sufficient to implement consensus in an
// environment with a majority of correct processes").
//
// Exposed through the same interface as the EC implementations
// (ProposeInput in, EcDecision out), which makes the paper's gap directly
// observable in one harness:
//   * CtConsensusAutomaton solves REAL consensus — checkEcRun reports
//     agreement from instance 1 in every run — but requires a correct
//     majority and stalls without one;
//   * OmegaEcAutomaton (Algorithm 4) only promises agreement from some
//     finite instance — but runs in ANY environment.
//
// Per instance, rounds r = 1, 2, ... with coordinator c = (r-1) mod n:
//   1. everyone in round r sends its (estimate, stamp) to c;
//   2. c picks the estimate with the highest stamp among a majority and
//      proposes it to all;
//   3. a process that receives the proposal adopts it (stamp := r) and
//      acks; a process whose failure detector suspects c nacks and moves
//      to round r+1;
//   4. on a majority of acks, c decides and reliably broadcasts the
//      decision (receivers decide and re-broadcast once).
//
// Suspicion comes from the step's FdValue: an explicit suspect list (◊P /
// ◊S histories) or, for Omega histories, "the leader is someone else".
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/types.h"
#include "ec/ec_types.h"
#include "sim/automaton.h"

namespace wfd {

struct CtEstimateMsg {
  Instance instance = 0;
  std::uint64_t round = 0;
  Value estimate;
  std::uint64_t stamp = 0;
};
struct CtProposeMsg {
  Instance instance = 0;
  std::uint64_t round = 0;
  Value proposal;
};
struct CtAckMsg {
  Instance instance = 0;
  std::uint64_t round = 0;
  bool positive = true;
};
struct CtDecideMsg {
  Instance instance = 0;
  Value value;
};

class CtConsensusAutomaton final : public CloneableAutomaton<CtConsensusAutomaton> {
 public:
  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  std::uint64_t currentRound(Instance l) const;
  bool decided(Instance l) const;

 private:
  struct PerInstance {
    bool started = false;
    Value estimate;
    std::uint64_t stamp = 0;
    std::uint64_t round = 1;
    // Coordinator-side state for rounds this process coordinates.
    std::map<std::uint64_t, std::map<ProcessId, std::pair<std::uint64_t, Value>>>
        estimates;
    std::map<std::uint64_t, std::set<ProcessId>> acks;
    /// Proposal sent per coordinated round — the value a majority ack
    /// locks (the coordinator's own estimate may move on meanwhile).
    std::map<std::uint64_t, Value> proposed;
    bool decided = false;
    Value decision;
  };

  ProcessId coordinatorOf(std::uint64_t round, std::size_t n) const {
    return static_cast<ProcessId>((round - 1) % n);
  }
  static bool suspects(const FdValue& fd, ProcessId c);
  PerInstance& inst(Instance l) { return instances_[l]; }
  void enterRound(const StepContext& ctx, Instance l, std::uint64_t round,
                  Effects& fx);
  void decide(Instance l, const Value& v, Effects& fx);

  std::map<Instance, PerInstance> instances_;
};

}  // namespace wfd
