// The deterministic process automaton A(p) and its step effects.
//
// The paper's step (p, m, d, A): process p atomically (1) receives one
// message m (possibly the empty message λ) or an application input,
// (2) queries its failure detector and obtains d, (3) transitions, and
// (4) sends a message to every process and/or produces outputs. Here:
//   * onMessage  — a step receiving a real message,
//   * onTimeout  — a λ-step ("on local timeout" in the algorithms),
//   * onInput    — a step accepting an application input.
// Effects collects the sends/outputs of the step; the simulator applies
// them atomically after the handler returns.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/fd_interface.h"
#include "sim/message.h"
#include "sim/payload.h"

namespace wfd {

/// Read-only context handed to every step.
struct StepContext {
  Time now = 0;
  ProcessId self = kNoProcess;
  std::size_t processCount = 0;
  /// Failure detector value d obtained by this step's query.
  FdValue fd;
};

/// One outbound message of a step. `weight` is an abstract size (in
/// words) used by the ablation benches to compare gossip footprints —
/// it does not affect scheduling.
struct OutboundMsg {
  ProcessId to = kNoProcess;  // kBroadcast => every process
  Payload payload;
  std::size_t weight = 1;
};

/// Collector for the sends and outputs of a single step.
class Effects {
 public:
  /// Sends a payload to every process, including the sender (the paper's
  /// step semantics).
  void broadcast(Payload p, std::size_t weight = 1) {
    sends_.push_back(OutboundMsg{kBroadcast, std::move(p), weight});
  }

  /// Sends a payload to one process (used by the quorum-based baseline).
  void send(ProcessId to, Payload p, std::size_t weight = 1) {
    sends_.push_back(OutboundMsg{to, std::move(p), weight});
  }

  /// Produces an append-only application output (e.g. an EC decision).
  void output(Payload p) { outputs_.push_back(std::move(p)); }

  /// Overwrites the process's delivery-sequence output variable d_i.
  /// ETOB semantics allow rewriting (messages delivered but not yet
  /// stably delivered may disappear or move).
  void deliverSequence(std::vector<MsgId> seq) { delivered_ = std::move(seq); }

  /// Introspection — used by the simulator, by composing automata
  /// (transformations embed sub-protocols) and by the CHT simulator.
  const std::vector<OutboundMsg>& sends() const { return sends_; }
  const std::vector<Payload>& outputs() const { return outputs_; }
  const std::optional<std::vector<MsgId>>& delivered() const { return delivered_; }

  void clear() {
    sends_.clear();
    outputs_.clear();
    delivered_.reset();
  }

 private:
  std::vector<OutboundMsg> sends_;
  std::vector<Payload> outputs_;
  std::optional<std::vector<MsgId>> delivered_;
};

/// Deterministic automaton A(p). Implementations must hold value-semantic
/// state only: clone() must produce an independent deep copy (the CHT
/// reduction replays cloned automata along simulated schedules).
class Automaton {
 public:
  virtual ~Automaton() = default;

  /// Deep copy of the current state.
  virtual std::unique_ptr<Automaton> clone() const = 0;

  /// Step accepting an application input (propose / broadcast call).
  virtual void onInput(const StepContext& ctx, const Payload& input, Effects& fx);

  /// Step receiving a message from `from`.
  virtual void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                         Effects& fx) = 0;

  /// λ-step: periodic "on local timeout" handler.
  virtual void onTimeout(const StepContext& ctx, Effects& fx);
};

inline void Automaton::onInput(const StepContext&, const Payload&, Effects&) {}
inline void Automaton::onTimeout(const StepContext&, Effects&) {}

/// CRTP helper implementing clone() via the derived copy constructor.
template <typename Derived>
class CloneableAutomaton : public Automaton {
 public:
  std::unique_ptr<Automaton> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace wfd
