// Algorithm 5 (ET OB): eventual total order broadcast directly from Omega,
// correct in ANY environment — the paper's constructive side of Theorem 2
// combined with Theorem 1.
//
// Behaviour per the paper:
//  * broadcastETOB(m, C(m))  -> UpdateCG(m, C(m)); send update(CG_i) to all
//  * on update(CG_j)         -> UnionCG(CG_j); UpdatePromote()
//  * on promote(seq) from p_j-> if Omega_i = p_j then d_i := seq
//  * on local timeout        -> if Omega_i = p_i then send promote(promote_i)
//
// Property provided (completeness/accuracy form), for any environment and
// any valid Omega history:
//  * Completeness (liveness): every message broadcast by a correct
//    process eventually appears in the delivery sequence d_i of every
//    correct process, permanently (ETOB-Validity + ETOB-Agreement).
//  * Accuracy (safety): d_i never contains a message that was not
//    broadcast, never contains duplicates, and always respects the causal
//    order ->_R — even before Omega stabilizes; and eventually (from
//    tau_Omega + Δ_t + Δ_c, Lemma 3) the d_i are stable, identical
//    prefixes of one total order (ETOB-Stability + ETOB-Total-order).
// checkers/tob_checker.h verifies exactly these clauses over a run trace.
//
// Headline properties (benched in E1..E5):
//  (P1) two communication steps per delivery under a stable leader;
//  (P2) strong TOB if Omega is stable from the very beginning;
//  (P3) causal order always, even while Omega outputs differ across
//       processes.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "etob/causality_graph.h"
#include "sim/app_msg.h"
#include "sim/automaton.h"

namespace wfd {

/// ETOB wire messages. A promote carries full message content (the
/// paper's promote(promote_i) is a sequence of messages, content
/// included), so an adopter always knows the content of everything in its
/// d_i even if the corresponding update hasn't reached it yet. `epoch` is
/// a per-sender send counter: links in the model are reliable but not
/// FIFO, so without it a stale (shorter) promote could overwrite a newer
/// one after arriving late — which would break the paper's property (2)
/// (strong TOB under an always-stable leader). The paper's Lemma 3
/// implicitly adopts promotes in send order; the epoch guard realizes
/// that over non-FIFO links. See docs/ARCHITECTURE.md ("The eTOB data
/// path").
///
/// Delta encoding: a plain eTOB leader only ever APPENDS to promote_i, so
/// instead of re-shipping the whole sequence each λ, `seq` carries just
/// the suffix past `baseLen` (the sequence length at the sender's
/// previous promote epoch), and `baseLen == 0` marks a self-contained
/// full snapshot (first promote, empty previous sequence, or a §7 rebase).
/// Receivers reconstruct per-sender sequences in epoch order
/// (PromoteChain below); a delta whose base epoch hasn't arrived yet is
/// buffered, never dropped — reliable links guarantee the chain fills.
struct EtobPromoteMsg {
  std::vector<AppMsg> seq;
  std::uint64_t epoch = 0;
  std::uint64_t baseLen = 0;
};
struct EtobUpdateMsg {
  CausalityGraph cg;
};
/// Delta update: one new message plus its dependency ids. The paper's
/// update(CG_i) carries the whole graph; since a broadcast step is atomic
/// (every copy enqueued at once) a per-message delta reconstructs the
/// same CG at every receiver — the E9 ablation measures the weight gap.
struct EtobDeltaMsg {
  AppMsg msg;
  std::vector<MsgId> deps;
};

/// Per-sender reconstruction of a leader's promote sequence from
/// delta-encoded promotes. `epoch`/`ids` is the newest contiguously
/// reconstructed prefix of the sender's promote history; out-of-order
/// deltas wait in `pending` until the promote they extend arrives
/// (promote epochs from one sender are contiguous — the counter advances
/// exactly once per sent promote).
struct PromoteChain {
  std::uint64_t epoch = 0;
  std::vector<MsgId> ids;
  std::map<std::uint64_t, EtobPromoteMsg> pending;
};

/// Ingests one promote message into the per-sender chain, splicing every
/// pending epoch that becomes reconstructible (a full snapshot resets the
/// chain and may jump gaps). Message bodies carried in spliced suffixes
/// that the causality graph does not know yet are stashed into
/// `adoptedBodies` so every reconstructed sequence stays fully resolvable
/// (rsm::Replica hard-requires content for every delivered id). Returns
/// true if the chain advanced.
bool advancePromoteChain(PromoteChain& chain, const EtobPromoteMsg& msg,
                         const CausalityGraph& cg,
                         std::unordered_map<MsgId, AppMsg>& adoptedBodies);

struct EtobConfig {
  CgEdgeMode edgeMode = CgEdgeMode::kFullPaper;
  /// If true, C(m) is extended with the causal frontier of everything the
  /// sender currently knows (the sinks of CG_i). Closure-equivalent to
  /// listing every known message — every known message reaches a sink —
  /// so promote sequences are unchanged (see the kFrontier argument in
  /// causality_graph.h), but the dep list shrinks from O(M) to the
  /// frontier width.
  bool autoCausal = true;
  /// If true, broadcasts EtobDeltaMsg instead of the paper's full-graph
  /// update(CG_i). Behaviour-preserving; weight-saving.
  bool deltaUpdates = false;
  /// If true, promotes are delta-encoded against the sender's previous
  /// promote (see EtobPromoteMsg). Content-preserving — every receiver
  /// reconstructs the same sequences — and collapses the O(|promote_i|)
  /// per-λ promote weight to the newly appended suffix.
  bool deltaPromotes = true;
  /// Leader promote cadence: 1 = the paper's "on every local timeout".
  /// N > 1 = promote when the sequence changed, when leadership was just
  /// (re)acquired, or at least every N λ-steps (the refresh keeps the
  /// convergence bound at τ_Ω + N·Δ_t + Δ_c).
  std::uint64_t promoteRefreshEvery = 1;
};

/// Process-local ET OB automaton.
class EtobAutomaton final : public CloneableAutomaton<EtobAutomaton> {
 public:
  explicit EtobAutomaton(EtobConfig config = {});

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  /// Content of a message this process knows (from its causality graph or
  /// from a received promote sequence); nullptr if unknown. Part of the
  /// BroadcastAutomatonLike concept used by the ETOB->EC transformation.
  const AppMsg* findMessage(MsgId id) const;

  /// Test/bench introspection.
  const std::vector<MsgId>& delivered() const { return d_; }
  const std::vector<MsgId>& promoteSequence() const {
    return cg_.promoteSequence();
  }
  const CausalityGraph& causalityGraph() const { return cg_; }
  /// Promote-learned bodies not yet backed by the causality graph
  /// (pruned on cg_ ingestion — the satellite leak regression).
  std::size_t adoptedBodyCount() const { return adoptedBodies_.size(); }

 private:
  void updatePromote();
  /// Drops adoptedBodies_ entries now backed by cg_ (called after a
  /// peer graph/delta is ingested).
  void pruneAdopted(const CausalityGraph& learned);

  EtobConfig config_;
  std::vector<MsgId> d_;  // output variable d_i
  CausalityGraph cg_;     // CG_i (also maintains promote_i incrementally)
  /// Bodies learned from received promote sequences whose update messages
  /// haven't arrived yet (the CG itself stays edge-consistent). Entries
  /// are pruned as soon as the body reaches cg_ via update/delta.
  std::unordered_map<MsgId, AppMsg> adoptedBodies_;
  /// Per-sender promote counters: own (outgoing) and the highest adopted
  /// from each peer (stale reordered promotes are discarded), plus the
  /// per-sender delta reconstruction chains.
  std::uint64_t promoteEpoch_ = 0;
  std::unordered_map<ProcessId, std::uint64_t> adoptedEpoch_;
  std::unordered_map<ProcessId, PromoteChain> chains_;
  /// Promote length covered by this leader's last sent promote (the delta
  /// base; promote_i is append-only in plain eTOB).
  std::size_t lastSentLen_ = 0;
  /// Promote-suppression state (promoteRefreshEvery > 1). promote_i is
  /// append-only, so "changed since last promote" is a length compare.
  std::size_t lastPromotedLen_ = 0;
  std::uint64_t lambdasSincePromote_ = 0;
  bool wasLeader_ = false;
};

}  // namespace wfd
