// Proposal driver: the paper's standing assumption that every process
// invokes proposeEC_{j+1} as soon as proposeEC_j returns.
//
// Wraps any EC-like automaton (Algorithm 4, or a transformation stack
// ending in EC) and feeds it a deterministic stream of proposals; every
// inner decision is re-emitted so the trace sees the full decision
// history, then the next instance is proposed immediately — within the
// same step, as "as soon as" demands.
#pragma once

#include <functional>
#include <utility>

#include "common/types.h"
#include "ec/ec_types.h"
#include "sim/automaton.h"

namespace wfd {

/// Deterministic proposal values: value = f(self, instance).
using ProposalSource = std::function<Value(ProcessId, Instance)>;

/// A ProposalSource for binary EC that varies pseudo-randomly but
/// deterministically with (process, instance, salt).
inline ProposalSource binaryProposals(std::uint64_t salt) {
  return [salt](ProcessId p, Instance l) -> Value {
    std::uint64_t x = salt ^ (p * 0x9e3779b97f4a7c15ULL) ^ (l * 0x85ebca6bULL);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return Value{x & 1};
  };
}

template <typename EcImpl>
class EcDriverAutomaton final
    : public CloneableAutomaton<EcDriverAutomaton<EcImpl>> {
 public:
  /// Drives `inner` through instances 1..maxInstances.
  EcDriverAutomaton(EcImpl inner, ProposalSource source, Instance maxInstances)
      : inner_(std::move(inner)),
        source_(std::move(source)),
        maxInstances_(maxInstances) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    Effects cfx;
    inner_.onInput(ctx, input, cfx);
    drain(ctx, cfx, fx);
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    Effects cfx;
    inner_.onMessage(ctx, from, msg, cfx);
    drain(ctx, cfx, fx);
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    if (next_ == 0) {
      next_ = 1;
      propose(ctx, fx);
    }
    Effects cfx;
    inner_.onTimeout(ctx, cfx);
    drain(ctx, cfx, fx);
  }

  const EcImpl& inner() const { return inner_; }
  Instance decidedUpTo() const { return next_ == 0 ? 0 : next_ - 1; }

 private:
  void propose(const StepContext& ctx, Effects& fx) {
    if (next_ > maxInstances_) return;
    Value value = source_(ctx.self, next_);
    fx.output(Payload::of(ProposalMade{next_, value}));
    Effects cfx;
    inner_.onInput(ctx, Payload::of(ProposeInput{next_, std::move(value)}), cfx);
    drain(ctx, cfx, fx);
  }

  void drain(const StepContext& ctx, Effects& cfx, Effects& fx) {
    // The driver adds no messages of its own, so inner sends pass through
    // untagged; inner decisions are re-emitted and advance the schedule.
    for (const OutboundMsg& m : cfx.sends()) {
      if (m.to == kBroadcast) {
        fx.broadcast(m.payload, m.weight);
      } else {
        fx.send(m.to, m.payload, m.weight);
      }
    }
    if (cfx.delivered().has_value()) fx.deliverSequence(*cfx.delivered());
    for (const Payload& out : cfx.outputs()) {
      fx.output(out);
      const auto* decision = out.as<EcDecision>();
      if (decision != nullptr && decision->instance == next_) {
        ++next_;
        propose(ctx, fx);  // "as soon as proposeEC_j returns"
      }
    }
  }

  EcImpl inner_;
  ProposalSource source_;
  Instance maxInstances_ = 0;
  /// Next instance to propose; 0 = not started.
  Instance next_ = 0;
};

/// Driver for eventual irrevocable consensus: proposes the next instance
/// after the FIRST response to the current one (later revisions of an
/// instance's response do not re-trigger proposals).
template <typename EicImpl>
class EicDriverAutomaton final
    : public CloneableAutomaton<EicDriverAutomaton<EicImpl>> {
 public:
  EicDriverAutomaton(EicImpl inner, ProposalSource source, Instance maxInstances)
      : inner_(std::move(inner)),
        source_(std::move(source)),
        maxInstances_(maxInstances) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    Effects cfx;
    inner_.onInput(ctx, input, cfx);
    drain(ctx, cfx, fx);
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    Effects cfx;
    inner_.onMessage(ctx, from, msg, cfx);
    drain(ctx, cfx, fx);
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    if (next_ == 0) {
      next_ = 1;
      propose(ctx, fx);
    }
    Effects cfx;
    inner_.onTimeout(ctx, cfx);
    drain(ctx, cfx, fx);
  }

  const EicImpl& inner() const { return inner_; }

 private:
  void propose(const StepContext& ctx, Effects& fx) {
    if (next_ > maxInstances_) return;
    Value value = source_(ctx.self, next_);
    fx.output(Payload::of(ProposalMade{next_, value}));
    Effects cfx;
    inner_.onInput(ctx, Payload::of(ProposeEicInput{next_, std::move(value)}), cfx);
    drain(ctx, cfx, fx);
  }

  void drain(const StepContext& ctx, Effects& cfx, Effects& fx) {
    for (const OutboundMsg& m : cfx.sends()) {
      if (m.to == kBroadcast) {
        fx.broadcast(m.payload, m.weight);
      } else {
        fx.send(m.to, m.payload, m.weight);
      }
    }
    if (cfx.delivered().has_value()) fx.deliverSequence(*cfx.delivered());
    for (const Payload& out : cfx.outputs()) {
      fx.output(out);
      const auto* decision = out.as<EicDecision>();
      if (decision != nullptr && decision->instance == next_) {
        ++next_;
        propose(ctx, fx);
      }
    }
  }

  EicImpl inner_;
  ProposalSource source_;
  Instance maxInstances_ = 0;
  Instance next_ = 0;
};

}  // namespace wfd
