// Fundamental identifiers shared by every module.
//
// The paper models a system Pi = {p_1, ..., p_n} with a discrete global
// clock ranging over N. We use 0-based process indices and a 64-bit step
// counter as the global clock (the simulator advances it by one per step).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wfd {

/// Discrete global time (the paper's clock over N). One unit == one step
/// of some process in the simulated schedule.
using Time = std::uint64_t;

/// Index of a process in Pi. 0-based; the paper's p_i is index i-1.
using ProcessId = std::size_t;

/// Sentinel "no process" value (used e.g. by Omega before any output).
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Identifier of an application-level broadcast message. Encodes
/// (origin process, per-origin sequence number) so ids are globally unique
/// without coordination.
using MsgId = std::uint64_t;

/// Sentinel "no message" value (returned e.g. by facade submissions whose
/// ids are allocated deeper in the stack).
inline constexpr MsgId kNoMsgId = std::numeric_limits<MsgId>::max();

/// Builds a MsgId from its components.
constexpr MsgId makeMsgId(ProcessId origin, std::uint32_t seq) {
  return (static_cast<MsgId>(origin) << 32) | seq;
}

/// Origin process of a MsgId.
constexpr ProcessId msgIdOrigin(MsgId id) {
  return static_cast<ProcessId>(id >> 32);
}

/// Per-origin sequence number of a MsgId.
constexpr std::uint32_t msgIdSeq(MsgId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

/// Multivalued consensus value. The paper defines binary EC and notes the
/// multivalued extension is straightforward [23]; Algorithm 1 proposes
/// whole message sequences to EC, so the natural value domain here is a
/// sequence of 64-bit words (a binary value is the single-element {0}/{1}).
using Value = std::vector<std::uint64_t>;

/// EC / consensus instance number (the paper's `l` in proposeEC_l).
using Instance = std::uint64_t;

}  // namespace wfd
