// Mutation tests for the checker oracles: a checker that cannot fail is
// not an oracle. Each test takes a healthy trace (from a real run or
// built synthetically), applies one targeted corruption — duplicate
// delivery, diverging suffix, causal inversion, cross-instance value
// swap, commit revocation — and asserts the corresponding checker clause
// (and ONLY the intended defect dimension) rejects it. The explorer
// (wfd_explore) leans on these checkers as its bug-finding oracles, so
// their negative behaviour is itself regression-tested here.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "checkers/commit_checker.h"
#include "checkers/ec_checker.h"
#include "checkers/tob_checker.h"
#include "ec/ec_types.h"
#include "etob/commit_etob.h"
#include "explore/explorer.h"
#include "explore/fuzz_plan.h"
#include "scenario/scenario.h"

namespace wfd {
namespace {

// --- Trace replay with a mutation hook -------------------------------------

/// Rebuilds a trace record-for-record (outputs and snapshots interleaved
/// in their per-process record order), passing every snapshot sequence
/// through `mutateSnap(p, index, seq)` — return the (possibly corrupted)
/// sequence; `extraSnaps` are appended at the very end.
struct SnapMutation {
  std::function<std::vector<MsgId>(ProcessId, std::size_t, std::vector<MsgId>)>
      mutateSnap;
  std::vector<std::pair<ProcessId, DeliverySnapshot>> extraSnaps;
};

Trace replayTrace(const Trace& src, const SnapMutation& mutation) {
  Trace out(src.processCount(), /*keepSnapshots=*/true);
  for (ProcessId p = 0; p < src.processCount(); ++p) {
    const auto& outputs = src.outputs(p);
    const auto& snaps = src.deliverySnapshots(p);
    std::size_t oi = 0;
    std::size_t si = 0;
    std::size_t snapIndex = 0;
    while (oi < outputs.size() || si < snaps.size()) {
      const bool takeSnap =
          si < snaps.size() &&
          (oi >= outputs.size() || snaps[si].order < outputs[oi].order);
      if (takeSnap) {
        std::vector<MsgId> seq = snaps[si].seq;
        if (mutation.mutateSnap) {
          seq = mutation.mutateSnap(p, snapIndex, std::move(seq));
        }
        out.recordDelivered(p, snaps[si].time, std::move(seq));
        ++si;
        ++snapIndex;
      } else {
        out.recordOutput(p, outputs[oi].time, outputs[oi].value);
        ++oi;
      }
    }
  }
  for (const auto& [p, snap] : mutation.extraSnaps) {
    out.recordDelivered(p, snap.time, snap.seq);
  }
  return out;
}

/// A healthy broadcast run to corrupt: the minimal stable-leader etob
/// plan (quiet network, causal chains declared so the causal checker has
/// edges to verify).
struct HealthyRun {
  ScenarioInstance inst;
  FuzzPlan plan;

  static HealthyRun make(bool causalChain) {
    FuzzPlan plan;
    plan.stack = AlgoStack::kEtob;
    plan.processCount = 3;
    plan.simSeed = 11;
    plan.tauOmega = 0;
    plan.omegaMode = OmegaPreStabilization::kStable;
    plan.workload.start = 100;
    plan.workload.interval = 50;
    plan.workload.perProcess = 4;
    plan.workload.causalChain = causalChain;
    plan.maxTime = planHorizon(plan);
    EXPECT_TRUE(planAdmissibilityViolations(plan).empty());
    ScenarioInstance inst = instantiateScenario(planScenario(plan), plan.simSeed);
    inst.sim->run();
    return HealthyRun{std::move(inst), plan};
  }

  BroadcastCheckReport check(const Trace& trace) const {
    return checkBroadcastRun(trace, inst.log, inst.sim->failurePattern());
  }
};

TEST(BroadcastMutationTest, UnmutatedReplayPassesEverything) {
  HealthyRun run = HealthyRun::make(/*causalChain=*/true);
  const Trace replayed = replayTrace(run.inst.sim->trace(), {});
  const BroadcastCheckReport rep = run.check(replayed);
  EXPECT_TRUE(rep.coreOk());
  EXPECT_TRUE(rep.causalOrderOk);
  EXPECT_EQ(rep.tau, run.check(run.inst.sim->trace()).tau);
}

TEST(BroadcastMutationTest, DuplicateDeliveryRejected) {
  HealthyRun run = HealthyRun::make(/*causalChain=*/false);
  const Trace& src = run.inst.sim->trace();
  // Append a final snapshot at p0 with its first message delivered twice.
  std::vector<MsgId> dup = src.currentDelivered(0);
  ASSERT_FALSE(dup.empty());
  dup.push_back(dup.front());
  SnapMutation m;
  m.extraSnaps.emplace_back(
      0, DeliverySnapshot{run.plan.maxTime, 0, std::move(dup)});
  const BroadcastCheckReport rep = run.check(replayTrace(src, m));
  EXPECT_FALSE(rep.noDuplicationOk);
  EXPECT_TRUE(rep.noCreationOk);  // only the intended dimension fails
}

TEST(BroadcastMutationTest, DivergingSuffixRejectedAsAgreementViolation) {
  HealthyRun run = HealthyRun::make(/*causalChain=*/false);
  const Trace& src = run.inst.sim->trace();
  // p1's final sequence loses its last message: a message delivered at
  // p0 is then missing from p1 — TOB-Agreement must flag it.
  std::vector<MsgId> shorter = src.currentDelivered(1);
  ASSERT_GE(shorter.size(), 2u);
  shorter.pop_back();
  SnapMutation m;
  m.extraSnaps.emplace_back(
      1, DeliverySnapshot{run.plan.maxTime, 0, std::move(shorter)});
  const BroadcastCheckReport rep = run.check(replayTrace(src, m));
  EXPECT_FALSE(rep.agreementOk);
}

TEST(BroadcastMutationTest, UnknownMessageRejectedAsCreation) {
  HealthyRun run = HealthyRun::make(/*causalChain=*/false);
  const Trace& src = run.inst.sim->trace();
  std::vector<MsgId> forged = src.currentDelivered(2);
  forged.push_back(makeMsgId(7, 99));  // never broadcast
  SnapMutation m;
  m.extraSnaps.emplace_back(
      2, DeliverySnapshot{run.plan.maxTime, 0, std::move(forged)});
  const BroadcastCheckReport rep = run.check(replayTrace(src, m));
  EXPECT_FALSE(rep.noCreationOk);
}

TEST(BroadcastMutationTest, CausalInversionRejected) {
  HealthyRun run = HealthyRun::make(/*causalChain=*/true);
  const Trace& src = run.inst.sim->trace();
  // Swap a per-origin chain pair (origin 0: message 1 before message 0)
  // in a final appended snapshot at p0.
  std::vector<MsgId> seq = src.currentDelivered(0);
  const MsgId first = makeMsgId(0, 0);
  const MsgId second = makeMsgId(0, 1);
  auto a = std::find(seq.begin(), seq.end(), first);
  auto b = std::find(seq.begin(), seq.end(), second);
  ASSERT_TRUE(a != seq.end() && b != seq.end());
  std::iter_swap(a, b);
  SnapMutation m;
  m.extraSnaps.emplace_back(0,
                            DeliverySnapshot{run.plan.maxTime, 0, std::move(seq)});
  const BroadcastCheckReport rep = run.check(replayTrace(src, m));
  EXPECT_FALSE(rep.causalOrderOk);
  EXPECT_TRUE(rep.noCreationOk);
  EXPECT_TRUE(rep.noDuplicationOk);
}

// --- EC oracle mutations (synthetic decision histories) ---------------------

/// Builds a clean two-process EC history: distinct values per instance so
/// a cross-instance swap is guaranteed to be invalid.
Trace cleanEcTrace(Instance instances) {
  Trace t(2, /*keepSnapshots=*/true);
  for (Instance l = 1; l <= instances; ++l) {
    const Value v{100 + l};
    for (ProcessId p = 0; p < 2; ++p) {
      t.recordOutput(p, 10 * l, Payload::of(ProposalMade{l, v}));
      t.recordOutput(p, 10 * l + 5, Payload::of(EcDecision{l, v}));
    }
  }
  return t;
}

TEST(EcMutationTest, CleanHistoryPasses) {
  const Trace t = cleanEcTrace(5);
  const EcCheckReport rep = checkEcRun(t, FailurePattern::noFailures(2));
  EXPECT_TRUE(rep.integrityOk);
  EXPECT_TRUE(rep.validityOk);
  EXPECT_EQ(rep.decidedByAllCorrect, 5u);
  EXPECT_EQ(rep.agreementFromK, 1u);
}

TEST(EcMutationTest, CrossInstanceValueSwapRejectedAsValidity) {
  Trace t(2, true);
  for (ProcessId p = 0; p < 2; ++p) {
    t.recordOutput(p, 10, Payload::of(ProposalMade{1, Value{101}}));
    t.recordOutput(p, 20, Payload::of(ProposalMade{2, Value{102}}));
  }
  // p0 decides instance 1 with instance 2's value (and vice versa): each
  // decided value was proposed SOMEWHERE, just never for that instance —
  // exactly the confusion EC-Validity exists to catch.
  t.recordOutput(0, 30, Payload::of(EcDecision{1, Value{102}}));
  t.recordOutput(0, 40, Payload::of(EcDecision{2, Value{101}}));
  t.recordOutput(1, 30, Payload::of(EcDecision{1, Value{101}}));
  t.recordOutput(1, 40, Payload::of(EcDecision{2, Value{102}}));
  const EcCheckReport rep = checkEcRun(t, FailurePattern::noFailures(2));
  EXPECT_FALSE(rep.validityOk);
  EXPECT_TRUE(rep.integrityOk);
}

TEST(EcMutationTest, DoubleResponseRejectedAsIntegrity) {
  Trace t = cleanEcTrace(3);
  t.recordOutput(0, 99, Payload::of(EcDecision{2, Value{102}}));  // again
  const EcCheckReport rep = checkEcRun(t, FailurePattern::noFailures(2));
  EXPECT_FALSE(rep.integrityOk);
  EXPECT_TRUE(rep.validityOk);
}

TEST(EcMutationTest, DivergingSuffixPushesAgreementWitnessOutOfRange) {
  Trace t = cleanEcTrace(4);
  // A fifth instance on which the processes disagree forever: the
  // agreement witness k-hat must land beyond the instance range, which
  // is what the scenario layer reports as an eventual-agreement failure.
  for (ProcessId p = 0; p < 2; ++p) {
    t.recordOutput(p, 200, Payload::of(ProposalMade{5, Value{500 + p}}));
  }
  t.recordOutput(0, 210, Payload::of(EcDecision{5, Value{500}}));
  t.recordOutput(1, 210, Payload::of(EcDecision{5, Value{501}}));
  const EcCheckReport rep = checkEcRun(t, FailurePattern::noFailures(2));
  EXPECT_TRUE(rep.integrityOk);
  EXPECT_TRUE(rep.validityOk);
  EXPECT_EQ(rep.decidedByAllCorrect, 5u);
  EXPECT_GT(rep.agreementFromK, 5u);  // no agreed suffix in range
}

// --- Commit oracle mutations ------------------------------------------------

/// A healthy commit-etob run with indications to corrupt.
ScenarioInstance healthyCommitRun() {
  const Scenario* s = findScenario("commit-stable-majority");
  EXPECT_NE(s, nullptr);
  ScenarioInstance inst = instantiateScenario(*s, 3);
  inst.sim->run();
  return inst;
}

TEST(CommitMutationTest, UnmutatedReplayIsSafe) {
  ScenarioInstance inst = healthyCommitRun();
  const Trace replayed = replayTrace(inst.sim->trace(), {});
  const CommitCheckReport rep =
      checkCommitSafety(replayed, inst.sim->failurePattern());
  EXPECT_GT(rep.indications, 0u);
  EXPECT_EQ(rep.revokedCommits, 0u);
}

TEST(CommitMutationTest, RewrittenPrefixRejectedAsRevocation) {
  ScenarioInstance inst = healthyCommitRun();
  const Trace& src = inst.sim->trace();
  const FailurePattern& fp = inst.sim->failurePattern();
  // Append a final snapshot at p0 whose first two entries are swapped:
  // every previously indicated prefix of length >= 2 is now revoked.
  std::vector<MsgId> seq = src.currentDelivered(0);
  ASSERT_GE(seq.size(), 2u);
  std::swap(seq[0], seq[1]);
  SnapMutation m;
  m.extraSnaps.emplace_back(
      0, DeliverySnapshot{inst.sim->now() + 1, 0, std::move(seq)});
  const CommitCheckReport rep = checkCommitSafety(replayTrace(src, m), fp);
  EXPECT_GT(rep.revokedCommits, 0u);
}

TEST(CommitMutationTest, TruncatedSequenceAfterIndicationRejected) {
  ScenarioInstance inst = healthyCommitRun();
  const Trace& src = inst.sim->trace();
  std::vector<MsgId> seq = src.currentDelivered(1);
  ASSERT_GE(seq.size(), 1u);
  seq.resize(seq.size() / 2);
  SnapMutation m;
  m.extraSnaps.emplace_back(
      1, DeliverySnapshot{inst.sim->now() + 1, 0, std::move(seq)});
  const CommitCheckReport rep =
      checkCommitSafety(replayTrace(src, m), inst.sim->failurePattern());
  EXPECT_GT(rep.revokedCommits, 0u);
}

TEST(CommitMutationTest, SameTimestampAlignmentIsNotARevocation) {
  // Within one step the automaton rewrites d_i and THEN indicates the
  // aligned prefix, all at one simulated time. The checker must order by
  // record order, not timestamp — a regression test for the phantom
  // revocations wfd_explore exposed.
  Trace t(2, true);
  const MsgId a = makeMsgId(0, 0);
  const MsgId b = makeMsgId(1, 0);
  t.recordDelivered(0, 100, {a});
  // Same timestamp: d_i rewritten (revocation of the OLD view), then the
  // indication for the NEW view.
  t.recordDelivered(0, 200, {b, a});
  t.recordOutput(0, 200, Payload::of(CommittedPrefix{2}));
  const CommitCheckReport rep =
      checkCommitSafety(t, FailurePattern::noFailures(2));
  EXPECT_EQ(rep.indications, 1u);
  EXPECT_EQ(rep.revokedCommits, 0u);
}

TEST(CommitMutationTest, SameTimestampRevocationAfterIndicationStillCaught) {
  // The symmetric case: the snapshot that breaks the prefix is recorded
  // AFTER the indication at the same timestamp — that one must fail.
  Trace t(2, true);
  const MsgId a = makeMsgId(0, 0);
  const MsgId b = makeMsgId(1, 0);
  t.recordDelivered(0, 100, {a, b});
  t.recordOutput(0, 100, Payload::of(CommittedPrefix{2}));
  t.recordDelivered(0, 100, {b, a});
  const CommitCheckReport rep =
      checkCommitSafety(t, FailurePattern::noFailures(2));
  EXPECT_EQ(rep.revokedCommits, 1u);
}

}  // namespace
}  // namespace wfd
