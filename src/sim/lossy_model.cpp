#include "sim/lossy_model.h"

#include <algorithm>
#include <cstdint>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {

namespace {

/// Compacts the suffix [first, end) of `arrivals`, keeping only entries
/// for which `keep` returns true. `keep` is invoked exactly once per
/// copy, IN ORDER — the per-copy rng draw sequence is part of the
/// model's deterministic identity.
template <typename KeepFn>
void filterSuffix(std::vector<Time>& arrivals, std::size_t first,
                  KeepFn&& keep) {
  std::size_t out = first;
  for (std::size_t i = first; i < arrivals.size(); ++i) {
    if (keep(arrivals[i])) arrivals[out++] = arrivals[i];
  }
  arrivals.resize(out);
}

}  // namespace

// --------------------------------------------------------------- IidLossModel

IidLossModel::IidLossModel(std::shared_ptr<const NetworkModel> inner,
                           Config config)
    : inner_(std::move(inner)), config_(std::move(config)) {
  WFD_ENSURE(inner_ != nullptr);
  WFD_ENSURE_MSG(config_.den > 0 && config_.num <= config_.den,
                 "iid loss rate must be a probability");
  WFD_ENSURE_MSG(config_.num * 4 <= config_.den,
                 "iid loss rate above 25% starves fair-lossy fairness in "
                 "practice; use bursts for heavier loss");
}

void IidLossModel::schedule(const LinkSend& send, Rng& rng,
                            std::vector<Time>& arrivals) const {
  const std::size_t first = arrivals.size();
  inner_->schedule(send, rng, arrivals);
  // Rate 0 makes ZERO draws: the model stays a pure pass-through at the
  // draw-sequence level, which the loss=0 ≡ legacy differential relies on.
  if (config_.num == 0) return;
  if (config_.affects && !config_.affects(send.from, send.to)) return;
  filterSuffix(arrivals, first, [&](Time at) {
    if (config_.activeUntil != 0 && at >= config_.activeUntil) return true;
    return !rng.chance(config_.num, config_.den);
  });
}

Time IidLossModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  return inner_->lambdaPeriod(p, basePeriod);
}

bool IidLossModel::mayDuplicate() const { return inner_->mayDuplicate(); }

std::string IidLossModel::name() const {
  return "iid-loss(" + std::to_string(config_.num) + "/" +
         std::to_string(config_.den) + ") over " + inner_->name();
}

// ---------------------------------------------------- GilbertElliottLossModel

GilbertElliottLossModel::GilbertElliottLossModel(
    std::shared_ptr<const NetworkModel> inner, Config config)
    : inner_(std::move(inner)), config_(config) {
  WFD_ENSURE(inner_ != nullptr);
  WFD_ENSURE(config_.framePeriod >= 1);
  WFD_ENSURE_MSG(config_.burstLen >= 1 && config_.burstLen <= config_.framePeriod,
                 "burst must fit inside its frame");
  WFD_ENSURE(config_.burstDen > 0 && config_.burstNum <= config_.burstDen);
  WFD_ENSURE(config_.dropInDen > 0 && config_.dropInNum <= config_.dropInDen);
  WFD_ENSURE(config_.dropOutDen > 0 &&
             config_.dropOutNum <= config_.dropOutDen);
}

std::pair<Time, Time> GilbertElliottLossModel::frameWindow(
    std::uint64_t frame, ProcessId from, ProcessId to) const {
  // Hash-derived renewal schedule: a pure function of (seed, frame, link)
  // so the shared const model gives every run — and the failure
  // detectors via burstWindowsUpTo — the same bursts.
  const std::uint64_t linkKey =
      config_.correlated
          ? 0
          : (static_cast<std::uint64_t>(from) * 0x10001ULL) ^
                (static_cast<std::uint64_t>(to) * 0x101ULL);
  const std::uint64_t h =
      splitmix64(config_.seed ^ splitmix64(frame + 1) ^ linkKey);
  if (h % config_.burstDen >= config_.burstNum) return {0, 0};
  const std::uint64_t h2 = splitmix64(h ^ 0x9e3779b97f4a7c15ULL);
  const Time slack = config_.framePeriod - config_.burstLen;
  const Time offset = slack == 0 ? 0 : static_cast<Time>(h2 % (slack + 1));
  const Time begin = frame * config_.framePeriod + offset;
  return {begin, begin + config_.burstLen};
}

bool GilbertElliottLossModel::inBurst(Time at, ProcessId from,
                                      ProcessId to) const {
  const auto w = frameWindow(at / config_.framePeriod, from, to);
  return at >= w.first && at < w.second;
}

std::vector<std::pair<Time, Time>> GilbertElliottLossModel::burstWindowsUpTo(
    Time horizon, ProcessId from, ProcessId to) const {
  std::vector<std::pair<Time, Time>> windows;
  const Time clip =
      config_.activeUntil == 0 ? horizon : std::min(horizon, config_.activeUntil);
  for (std::uint64_t frame = 0; frame * config_.framePeriod < clip; ++frame) {
    auto w = frameWindow(frame, from, to);
    if (w.second <= w.first) continue;
    if (w.first >= clip) continue;
    w.second = std::min(w.second, clip);
    windows.push_back(w);
  }
  return windows;
}

void GilbertElliottLossModel::schedule(const LinkSend& send, Rng& rng,
                                       std::vector<Time>& arrivals) const {
  const std::size_t first = arrivals.size();
  inner_->schedule(send, rng, arrivals);
  filterSuffix(arrivals, first, [&](Time at) {
    if (config_.activeUntil != 0 && at >= config_.activeUntil) return true;
    const bool bad = inBurst(at, send.from, send.to);
    const std::uint32_t num = bad ? config_.dropInNum : config_.dropOutNum;
    const std::uint32_t den = bad ? config_.dropInDen : config_.dropOutDen;
    if (num == 0) return true;  // no draw in the lossless state
    return !rng.chance(num, den);
  });
}

Time GilbertElliottLossModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  return inner_->lambdaPeriod(p, basePeriod);
}

bool GilbertElliottLossModel::mayDuplicate() const {
  return inner_->mayDuplicate();
}

std::string GilbertElliottLossModel::name() const {
  return "ge-loss(frame=" + std::to_string(config_.framePeriod) +
         ",burst=" + std::to_string(config_.burstLen) + ",in=" +
         std::to_string(config_.dropInNum) + "/" +
         std::to_string(config_.dropInDen) + ") over " + inner_->name();
}

// ------------------------------------------------------------ OneWayOutageModel

bool OutageSpec::drops(ProcessId f, ProcessId t, Time at) const {
  if (from != kNoProcess && f != from) return false;
  if (to != kNoProcess && t != to) return false;
  if (at < start) return false;
  if (period == 0) return at < start + width;
  return (at - start) % period < width;
}

OneWayOutageModel::OneWayOutageModel(std::shared_ptr<const NetworkModel> inner,
                                     std::vector<OutageSpec> specs)
    : inner_(std::move(inner)), specs_(std::move(specs)) {
  WFD_ENSURE(inner_ != nullptr);
  WFD_ENSURE_MSG(!specs_.empty(), "outage model needs at least one spec");
  for (const OutageSpec& spec : specs_) {
    WFD_ENSURE_MSG(spec.width >= 1, "outage window must have width >= 1");
    WFD_ENSURE_MSG(spec.period == 0 || spec.period > spec.width,
                   "recurring outage must leave a delivery gap each period");
  }
}

void OneWayOutageModel::schedule(const LinkSend& send, Rng& rng,
                                 std::vector<Time>& arrivals) const {
  const std::size_t first = arrivals.size();
  inner_->schedule(send, rng, arrivals);
  // Deterministic: no rng draws, purely a function of the arrival times.
  filterSuffix(arrivals, first, [&](Time at) {
    for (const OutageSpec& spec : specs_) {
      if (spec.drops(send.from, send.to, at)) return false;
    }
    return true;
  });
}

Time OneWayOutageModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  return inner_->lambdaPeriod(p, basePeriod);
}

bool OneWayOutageModel::mayDuplicate() const { return inner_->mayDuplicate(); }

std::string OneWayOutageModel::name() const {
  return "one-way-outage(" + std::to_string(specs_.size()) + " specs) over " +
         inner_->name();
}

// ------------------------------------------------------------ GrayFailureModel

GrayFailureModel::GrayFailureModel(std::shared_ptr<const NetworkModel> inner,
                                   Config config)
    : inner_(std::move(inner)), config_(config) {
  WFD_ENSURE(inner_ != nullptr);
  WFD_ENSURE(config_.process != kNoProcess);
  WFD_ENSURE(config_.delayNum >= 1 && config_.delayDen >= 1);
  WFD_ENSURE_MSG(config_.delayNum >= config_.delayDen,
                 "gray failure inflates delay (factor >= 1)");
  WFD_ENSURE(config_.lambdaNum >= 1 && config_.lambdaDen >= 1);
  WFD_ENSURE_MSG(config_.lambdaNum >= config_.lambdaDen,
                 "gray failure stretches the lambda period (factor >= 1)");
  WFD_ENSURE(config_.lossDen > 0 && config_.lossNum <= config_.lossDen);
  WFD_ENSURE_MSG(config_.lossNum * 4 <= config_.lossDen,
                 "gray-failure loss is mild by definition (<= 25%)");
}

void GrayFailureModel::schedule(const LinkSend& send, Rng& rng,
                                std::vector<Time>& arrivals) const {
  const std::size_t first = arrivals.size();
  inner_->schedule(send, rng, arrivals);
  if (send.from != config_.process && send.to != config_.process) return;
  // Inflate first (keyed on the tentative arrival), then sample the mild
  // loss at the inflated arrival time.
  for (std::size_t i = first; i < arrivals.size(); ++i) {
    const Time at = arrivals[i];
    if (config_.activeUntil != 0 && at >= config_.activeUntil) continue;
    const Time delay = at - send.sentAt;
    const Time inflated =
        std::max<Time>(1, delay * config_.delayNum / config_.delayDen);
    arrivals[i] = send.sentAt + inflated;
  }
  if (config_.lossNum == 0) return;
  filterSuffix(arrivals, first, [&](Time at) {
    if (config_.activeUntil != 0 && at >= config_.activeUntil) return true;
    return !rng.chance(config_.lossNum, config_.lossDen);
  });
}

Time GrayFailureModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  const Time base = inner_->lambdaPeriod(p, basePeriod);
  if (p != config_.process) return base;
  return std::max<Time>(1, base * config_.lambdaNum / config_.lambdaDen);
}

bool GrayFailureModel::mayDuplicate() const { return inner_->mayDuplicate(); }

std::string GrayFailureModel::name() const {
  return "gray-failure(p=" + std::to_string(config_.process) + ",delay=" +
         std::to_string(config_.delayNum) + "/" +
         std::to_string(config_.delayDen) + ") over " + inner_->name();
}

}  // namespace wfd
