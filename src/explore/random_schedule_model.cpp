#include "explore/random_schedule_model.h"

#include <utility>
#include <vector>

#include "common/ensure.h"
#include "sim/lossy_model.h"

namespace wfd {

namespace {

std::shared_ptr<const NetworkModel> composeFromPlan(const FuzzPlan& plan) {
  const std::size_t n = plan.processCount;
  WFD_ENSURE_MSG(plan.minDelay >= 1 && plan.minDelay <= plan.maxDelay,
                 "RandomScheduleModel: bad delay bounds");

  // Base layer: uniform delays, or per-link slowdown around one process.
  std::shared_ptr<const NetworkModel> stack;
  if (plan.slowLink.process != kNoProcess) {
    WFD_ENSURE(plan.slowLink.process < n && plan.slowLink.factor >= 1);
    stack = AsymmetricDelayModel::slowProcess(plan.minDelay, plan.maxDelay,
                                              plan.slowLink.process,
                                              plan.slowLink.factor);
  } else {
    stack = std::make_shared<UniformDelayModel>(plan.minDelay, plan.maxDelay,
                                                /*fixed=*/false);
  }

  if (plan.chaos.dupNum > 0) {
    ChaosLinkModel::Config chaos;
    chaos.dupNum = plan.chaos.dupNum;
    chaos.dupDen = plan.chaos.dupDen;
    chaos.maxExtraCopies = plan.chaos.maxExtraCopies;
    chaos.reorderJitter = plan.chaos.reorderJitter;
    if (plan.chaos.onlyTouching != kNoProcess) {
      WFD_ENSURE(plan.chaos.onlyTouching < n);
      const ProcessId hub = plan.chaos.onlyTouching;
      chaos.affects = [hub](ProcessId from, ProcessId to) {
        return from == hub || to == hub;
      };
    }
    stack = std::make_shared<ChaosLinkModel>(std::move(stack), chaos);
  }

  if (!plan.skews.empty()) {
    WFD_ENSURE_MSG(plan.skews.size() == n,
                   "RandomScheduleModel: skew list size != processCount");
    std::vector<ClockSkewModel::Skew> skews;
    skews.reserve(n);
    for (const PlanSkew& s : plan.skews) {
      WFD_ENSURE(s.num >= 1 && s.den >= 1);
      skews.push_back(ClockSkewModel::Skew{s.num, s.den});
    }
    stack = std::make_shared<ClockSkewModel>(std::move(stack), std::move(skews));
  }

  // Lossy layers (PR-9) sit between clock skew and partitions, matching
  // the canonical rank order (partitions > lossy > skew > chaos > base):
  // drop decisions key on post-skew arrival times, and partitions defer
  // the copies that survived the loss draw. Innermost-to-outermost:
  // iid, Gilbert–Elliott bursts, one-way cut.
  if (plan.loss.lossNum > 0) {
    IidLossModel::Config loss;
    loss.num = plan.loss.lossNum;
    loss.den = plan.loss.lossDen;
    loss.activeUntil = plan.loss.activeUntil;
    stack = std::make_shared<IidLossModel>(std::move(stack), loss);
  }
  if (plan.loss.burstPeriod > 0) {
    GilbertElliottLossModel::Config ge;
    ge.framePeriod = plan.loss.burstPeriod;
    ge.burstLen = plan.loss.burstLen;
    ge.seed = plan.simSeed;
    ge.activeUntil = plan.loss.activeUntil;
    stack = std::make_shared<GilbertElliottLossModel>(std::move(stack), ge);
  }
  if (plan.loss.oneWayFrom != kNoProcess) {
    WFD_ENSURE(plan.loss.oneWayFrom < n);
    OutageSpec cut;
    cut.from = plan.loss.oneWayFrom;
    cut.start = plan.loss.oneWayStart;
    cut.width = plan.loss.oneWayWidth;
    cut.period = plan.loss.oneWayPeriod;
    stack = std::make_shared<OneWayOutageModel>(
        std::move(stack), std::vector<OutageSpec>{cut});
  }

  if (!plan.partitions.empty()) {
    std::vector<PartitionSpec> specs;
    specs.reserve(plan.partitions.size());
    for (const PlanPartition& p : plan.partitions) {
      WFD_ENSURE_MSG(p.width >= 1 && (p.period == 0 || p.period > p.width),
                     "RandomScheduleModel: partition never heals");
      PartitionSpec spec;
      spec.start = p.start;
      spec.width = p.width;
      spec.period = p.period;
      if (p.isolate != kNoProcess) {
        WFD_ENSURE(p.isolate < n);
        const ProcessId victim = p.isolate;
        spec.affects = [victim](ProcessId from, ProcessId to) {
          return from == victim || to == victim;
        };
      }
      specs.push_back(std::move(spec));
    }
    stack = std::make_shared<PartitionModel>(std::move(stack), std::move(specs));
  }

  return stack;
}

}  // namespace

RandomScheduleModel::RandomScheduleModel(const FuzzPlan& plan)
    : inner_(composeFromPlan(plan)) {
  ensureCanonicalComposition(*inner_);
}

void RandomScheduleModel::schedule(const LinkSend& send, Rng& rng,
                                   std::vector<Time>& arrivals) const {
  inner_->schedule(send, rng, arrivals);
}

Time RandomScheduleModel::lambdaPeriod(ProcessId p, Time basePeriod) const {
  return inner_->lambdaPeriod(p, basePeriod);
}

bool RandomScheduleModel::mayDuplicate() const { return inner_->mayDuplicate(); }

bool RandomScheduleModel::mayDrop() const { return inner_->mayDrop(); }

int RandomScheduleModel::compositionRank() const {
  return inner_->compositionRank();
}

const NetworkModel* RandomScheduleModel::innerModel() const {
  return inner_->innerModel();
}

std::string RandomScheduleModel::name() const {
  return "random[" + inner_->name() + "]";
}

}  // namespace wfd
