// Campaign subsystem tests: byte-identity of the merged report across
// thread counts (the property wfd_explore --jobs rests on), coverage-map
// order-independence, the mutator's admissibility/fairness contract, the
// coverage-guided scheduler's determinism, loud merge failure on dropped
// or double-counted worker results, and sorted corpus-directory listing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/ensure.h"
#include "explore/campaign.h"
#include "explore/explorer.h"
#include "explore/fuzz_plan.h"
#include "explore/plan_codec.h"

namespace wfd {
namespace {

/// Flattens a campaign report to the exact bytes wfd_explore would print
/// (run lines + shrunken witnesses + coverage line) — the comparison the
/// "--jobs N is byte-identical" acceptance criterion makes.
std::string reportBytes(AlgoStack stack, const CampaignReport& report) {
  std::string out;
  for (const CampaignRunRecord& rec : report.runs) {
    out += campaignRunJsonLine(rec) + "\n";
  }
  for (const CampaignViolation& v : report.violations) {
    out += std::to_string(v.generation) + ":" + std::to_string(v.index) + ":" +
           encodeFuzzPlan(v.shrunken.plan).dump() + ":" +
           std::to_string(v.shrunken.attempts) + ":" +
           std::to_string(v.shrunken.accepted) + "\n";
  }
  out += campaignCoverageJsonLine(stack, report) + "\n";
  return out;
}

// --- Determinism across thread counts ---------------------------------------

TEST(CampaignTest, ReportIsByteIdenticalAcrossJobs) {
  CampaignOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 12;
  options.seed = 5;
  options.jobs = 1;
  const CampaignReport base = runCampaign(options);
  const std::string baseBytes = reportBytes(options.stack, base);
  EXPECT_EQ(base.runsExecuted, base.runs.size());
  EXPECT_GT(base.runs.size(), options.runs);  // mutations actually ran

  for (unsigned jobs : {2u, 8u}) {
    options.jobs = jobs;
    const CampaignReport r = runCampaign(options);
    EXPECT_EQ(reportBytes(options.stack, r), baseBytes) << "jobs=" << jobs;
    EXPECT_EQ(r.runsExecuted, base.runsExecuted) << "jobs=" << jobs;
  }
}

TEST(CampaignTest, BigClusterCampaignIsByteIdenticalAcrossJobs) {
  // The big-n genome rides the same determinism contract: with
  // bigClusterMaxN set, generation 0 mixes deployment-scale plans into
  // the stream and the report must still be a pure function of the
  // options for any thread count (the CI --jobs 4 vs --jobs 1 diff).
  CampaignOptions options;
  options.stack = AlgoStack::kOmegaEc;  // cheap at big n
  options.runs = 10;
  options.seed = 5;
  options.jobs = 1;
  options.bigClusterMaxN = 64;
  const CampaignReport base = runCampaign(options);
  const std::string baseBytes = reportBytes(options.stack, base);

  bool sawBig = false;
  for (const CampaignRunRecord& rec : base.runs) {
    sawBig |= rec.plan.processCount >= 16;
  }
  EXPECT_TRUE(sawBig) << "window never scheduled a big plan";

  options.jobs = 4;
  const CampaignReport r = runCampaign(options);
  EXPECT_EQ(reportBytes(options.stack, r), baseBytes);
}

TEST(CampaignTest, ViolationsAndCorpusEntriesIdenticalAcrossJobs) {
  // strict-tob on the eTOB stack violates by design pre-stabilization —
  // the jobs sweep must agree on every witness AND on the exit-status
  // input (the violation count), not just on passing runs.
  CampaignOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 10;
  options.seed = 2;
  options.oracle = FuzzOracle::kStrictTob;
  options.maxShrinkAttempts = 60;
  options.jobs = 1;
  const CampaignReport base = runCampaign(options);
  ASSERT_FALSE(base.violations.empty());

  std::vector<std::string> baseEntries;
  for (const CampaignViolation& v : base.violations) {
    baseEntries.push_back(
        encodeCorpusEntry(
            makeCorpusEntry("e", "t", v.shrunken.plan, options.oracle,
                            &v.shrunken.result))
            .dump());
  }

  options.jobs = 8;
  const CampaignReport threaded = runCampaign(options);
  ASSERT_EQ(threaded.violations.size(), base.violations.size());
  for (std::size_t i = 0; i < base.violations.size(); ++i) {
    const CampaignViolation& v = threaded.violations[i];
    EXPECT_EQ(encodeCorpusEntry(
                  makeCorpusEntry("e", "t", v.shrunken.plan, options.oracle,
                                  &v.shrunken.result))
                  .dump(),
              baseEntries[i])
        << "violation " << i;
  }
}

TEST(CampaignTest, GenerationZeroMatchesThePlainExploreStream) {
  // --campaign must explore the same generation-0 plans plain explore
  // does for the same (stack, seed): the campaign extends the explorer,
  // it does not fork a second sampling scheme.
  CampaignOptions options;
  options.stack = AlgoStack::kGossipLww;
  options.runs = 8;
  options.seed = 11;
  options.generations = 1;
  options.shrink = false;
  const CampaignReport report = runCampaign(options);
  ASSERT_EQ(report.runs.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(planFingerprint(report.runs[i].plan),
              planFingerprint(sampleFuzzPlan(options.stack, options.seed, i)));
  }
}

// --- Coverage map ------------------------------------------------------------

TEST(CoverageMapTest, AccumulationIsOrderIndependent) {
  std::vector<std::vector<std::string>> signatures = {
      {"a", "b"}, {"b", "c"}, {"a"}, {"c", "d", "e"}, {"b"}};

  CoverageMap forward;
  for (const auto& s : signatures) forward.addSignature(s);

  CoverageMap backward;
  for (auto it = signatures.rbegin(); it != signatures.rend(); ++it) {
    backward.addSignature(*it);
  }

  // Shard-merge shape: two partial maps merged in either order.
  CoverageMap shardA, shardB;
  shardA.addSignature(signatures[0]);
  shardA.addSignature(signatures[3]);
  shardB.addSignature(signatures[1]);
  shardB.addSignature(signatures[2]);
  shardB.addSignature(signatures[4]);
  CoverageMap mergedAB = shardA;
  mergedAB.merge(shardB);
  CoverageMap mergedBA = shardB;
  mergedBA.merge(shardA);

  const std::string want = forward.toJson().dump();
  EXPECT_EQ(backward.toJson().dump(), want);
  EXPECT_EQ(mergedAB.toJson().dump(), want);
  EXPECT_EQ(mergedBA.toJson().dump(), want);
  EXPECT_EQ(forward.count("b"), 3u);
  EXPECT_EQ(forward.count("e"), 1u);
  EXPECT_EQ(forward.count("missing"), 0u);
  EXPECT_EQ(forward.distinctFeatures(), 5u);
  EXPECT_EQ(forward.totalHits(), 9u);
}

TEST(CoverageMapTest, RarityIsTheMinimumFeatureCount) {
  CoverageMap map;
  map.add("common", 10);
  map.add("rare", 1);
  EXPECT_EQ(map.rarity({"common"}), 10u);
  EXPECT_EQ(map.rarity({"common", "rare"}), 1u);
  EXPECT_EQ(map.rarity({"common", "never-seen"}), 0u);
  EXPECT_EQ(map.rarity({}), std::numeric_limits<std::uint64_t>::max());
}

TEST(CoverageMapTest, SignatureIsDeterministicSortedAndDeduplicated) {
  const FuzzPlan plan = sampleFuzzPlan(AlgoStack::kEtob, 1, 0);
  const ScenarioRunResult result = runFuzzPlan(plan, FuzzOracle::kSpec);
  const std::vector<std::string> a = coverageSignature(plan, result);
  const std::vector<std::string> b = coverageSignature(plan, result);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
}

// --- Mutator -----------------------------------------------------------------

TEST(MutateFuzzPlanTest, MutantsAreAdmissibleAndFairnessPreserving) {
  for (AlgoStack stack : kAllAlgoStacks) {
    for (std::uint64_t i = 0; i < 30; ++i) {
      const FuzzPlan base = sampleFuzzPlan(stack, 3, i);
      const std::optional<FuzzPlan> mutated = mutateFuzzPlan(base, i * 977 + 1);
      if (!mutated) continue;
      const auto violations = planAdmissibilityViolations(*mutated);
      EXPECT_TRUE(violations.empty())
          << algoStackName(stack) << " seed " << i << ": "
          << violations.front();
      EXPECT_EQ(mutated->maxTime, planHorizon(*mutated));
      // The omega-ec tau cap is sampler FAIRNESS, not admissibility:
      // growing tau_Omega would make liveness clauses unfair assertions
      // without tripping the validator, so the mutator must never do it.
      EXPECT_LE(mutated->tauOmega, base.tauOmega)
          << algoStackName(stack) << " seed " << i;
      EXPECT_EQ(mutated->stack, base.stack);
    }
  }
}

TEST(MutateFuzzPlanTest, MutationIsAFunctionOfPlanAndSeed) {
  const FuzzPlan base = sampleFuzzPlan(AlgoStack::kEtob, 1, 3);
  const std::optional<FuzzPlan> a = mutateFuzzPlan(base, 42);
  const std::optional<FuzzPlan> b = mutateFuzzPlan(base, 42);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(planFingerprint(*a), planFingerprint(*b));
  EXPECT_NE(planFingerprint(*a), planFingerprint(base));
}

// --- Merge (campaign-level mutation tests) ----------------------------------

std::vector<CampaignRunRecord> makeRecords(std::uint64_t generation,
                                           std::uint64_t count) {
  std::vector<CampaignRunRecord> recs(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    recs[i].generation = generation;
    recs[i].index = i;
    recs[i].plan = sampleFuzzPlan(AlgoStack::kEtob, 1, i);
  }
  return recs;
}

TEST(MergeCampaignShardsTest, MergesShardsByIndexRegardlessOfSplit) {
  const std::vector<CampaignRunRecord> recs = makeRecords(0, 6);
  // Interleaved split, reversed inside one shard — worker scheduling
  // noise the merge must erase.
  std::vector<std::vector<CampaignRunRecord>> shards(2);
  shards[0] = {recs[5], recs[1], recs[3]};
  shards[1] = {recs[0], recs[2], recs[4]};
  std::string error;
  const auto merged = mergeCampaignShards(0, 6, shards, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*merged)[i].index, i);
    EXPECT_EQ(planFingerprint((*merged)[i].plan),
              planFingerprint(recs[i].plan));
  }
}

TEST(MergeCampaignShardsTest, RejectsADroppedWorkerShard) {
  const std::vector<CampaignRunRecord> recs = makeRecords(0, 4);
  // Worker 1's results vanish (the bug class: a shard lost on the floor
  // would silently halve coverage if the merge tolerated it).
  std::vector<std::vector<CampaignRunRecord>> shards(2);
  shards[0] = {recs[0], recs[1]};
  std::string error;
  EXPECT_FALSE(mergeCampaignShards(0, 4, shards, &error).has_value());
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

TEST(MergeCampaignShardsTest, RejectsADoubleCountedPlan) {
  const std::vector<CampaignRunRecord> recs = makeRecords(0, 3);
  std::vector<std::vector<CampaignRunRecord>> shards(2);
  shards[0] = {recs[0], recs[1]};
  shards[1] = {recs[1], recs[2]};  // index 1 ran "twice"
  std::string error;
  EXPECT_FALSE(mergeCampaignShards(0, 3, shards, &error).has_value());
  EXPECT_NE(error.find("double-counted"), std::string::npos) << error;
}

TEST(MergeCampaignShardsTest, RejectsRecordsFromAnotherGeneration) {
  std::vector<std::vector<CampaignRunRecord>> shards(1);
  shards[0] = makeRecords(2, 2);
  std::string error;
  EXPECT_FALSE(mergeCampaignShards(1, 2, shards, &error).has_value());
  EXPECT_NE(error.find("generation"), std::string::npos) << error;
}

TEST(MergeCampaignShardsTest, RejectsAnOutOfRangeIndex) {
  std::vector<std::vector<CampaignRunRecord>> shards(1);
  shards[0] = makeRecords(0, 3);  // indices 0..2 but only 2 expected
  std::string error;
  EXPECT_FALSE(mergeCampaignShards(0, 2, shards, &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos) << error;
}

TEST(MergeCampaignShardsTest, CampaignTreatsMergeDefectsAsInvariantErrors) {
  // The runner wraps a failed merge in WFD_ENSURE — the same loud-throw
  // contract every internal invariant uses (common/ensure.h), so a
  // corrupted merge can never masquerade as a clean small report.
  std::string error;
  const auto merged = mergeCampaignShards(0, 1, {}, &error);
  ASSERT_FALSE(merged.has_value());
  EXPECT_THROW(WFD_ENSURE_MSG(merged.has_value(), "campaign merge: " << error),
               InvariantError);
}

// --- Corpus directory listing ------------------------------------------------

TEST(ListCorpusFilesTest, ListsSortedJsonOnly) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "wfd_list_corpus_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // Created in an order that differs from sorted order on purpose;
  // readdir order additionally differs per filesystem, which is exactly
  // what the sort must erase.
  for (const char* name : {"zeta.json", "alpha.json", "mid.json",
                           "README.md", "notes.txt"}) {
    std::ofstream((dir / name).string()) << "{}\n";
  }
  std::filesystem::create_directories(dir / "sub.json");  // dir, not file

  std::string error;
  const auto files = listCorpusFiles(dir.string(), &error);
  ASSERT_TRUE(files.has_value()) << error;
  ASSERT_EQ(files->size(), 3u);
  EXPECT_EQ(std::filesystem::path((*files)[0]).filename(), "alpha.json");
  EXPECT_EQ(std::filesystem::path((*files)[1]).filename(), "mid.json");
  EXPECT_EQ(std::filesystem::path((*files)[2]).filename(), "zeta.json");
  std::filesystem::remove_all(dir);
}

TEST(ListCorpusFilesTest, FailsOnMissingDirectory) {
  std::string error;
  EXPECT_FALSE(listCorpusFiles("/nonexistent/wfd-corpus", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ListCorpusFilesTest, CommittedCorpusListsEveryEntry) {
  // The committed corpus directory must be listable (this is what the
  // corpus_replay_dir ctest target and --replay <dir> walk). ctest runs
  // from the build dir; direct invocation from the repo root.
  std::string error;
  auto files = listCorpusFiles("tests/corpus", &error);
  if (!files) files = listCorpusFiles("../tests/corpus", &error);
  if (!files) GTEST_SKIP() << "corpus dir not found: " << error;
  EXPECT_TRUE(std::is_sorted(files->begin(), files->end()));
  for (const std::string& path : *files) {
    std::string loadError;
    EXPECT_TRUE(loadCorpusFile(path, &loadError).has_value())
        << path << ": " << loadError;
  }
}

// --- Scheduler ---------------------------------------------------------------

TEST(CampaignTest, LaterGenerationsMutateRatherThanResample) {
  CampaignOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 12;
  options.seed = 9;
  options.generations = 3;
  options.mutationsPerGeneration = 6;
  options.shrink = false;
  const CampaignReport report = runCampaign(options);
  ASSERT_EQ(report.runsExecuted, 12u + 6u + 6u);

  // Generation > 0 plans must not all be fresh samples: the scheduler's
  // whole point is re-queuing mutations of rare-coverage parents. (A
  // mutation that lands inadmissible falls back to the sample stream, so
  // "some mutated" — not "all" — is the deterministic guarantee.)
  std::uint64_t mutatedCount = 0;
  std::uint64_t sampleStreamIndex = options.runs;
  for (const CampaignRunRecord& rec : report.runs) {
    if (rec.generation == 0) continue;
    if (planFingerprint(rec.plan) !=
        planFingerprint(
            sampleFuzzPlan(options.stack, options.seed, sampleStreamIndex))) {
      ++mutatedCount;
    } else {
      ++sampleStreamIndex;
    }
  }
  EXPECT_GT(mutatedCount, 0u);
}

TEST(CampaignTest, TruncationStopsAtGenerationBoundaries) {
  CampaignOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 6;
  options.seed = 4;
  options.generations = 4;
  options.mutationsPerGeneration = 3;
  options.shrink = false;

  // Allow exactly one generation: the keepGoing budget trips before
  // generation 1 is dispatched.
  int polls = 0;
  const CampaignReport report =
      runCampaign(options, [&polls]() { return ++polls <= 1; });
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.runsExecuted, 6u);
  // The runs that DID execute are the same deterministic prefix a full
  // campaign produces.
  const CampaignReport full = runCampaign(options);
  ASSERT_GE(full.runs.size(), report.runs.size());
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    EXPECT_EQ(campaignRunJsonLine(report.runs[i]),
              campaignRunJsonLine(full.runs[i]));
  }
}

}  // namespace
}  // namespace wfd
