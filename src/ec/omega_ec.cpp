#include "ec/omega_ec.h"

namespace wfd {

void OmegaEcAutomaton::onInput(const StepContext&, const Payload& input,
                               Effects& fx) {
  const auto* propose = input.as<ProposeInput>();
  if (propose == nullptr) return;
  count_ = propose->instance;
  fx.broadcast(Payload::of(EcPromoteMsg{propose->value, propose->instance}));
}

void OmegaEcAutomaton::onMessage(const StepContext&, ProcessId from,
                                 const Payload& msg, Effects&) {
  const auto* promote = msg.as<EcPromoteMsg>();
  if (promote == nullptr) return;
  received_[{from, promote->instance}] = promote->value;
}

void OmegaEcAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  if (count_ == 0 || decided_.contains(count_)) return;
  auto it = received_.find({ctx.fd.leader, count_});
  if (it == received_.end()) return;
  decided_.insert(count_);
  fx.output(Payload::of(EcDecision{count_, it->second}));
}

}  // namespace wfd
