#!/usr/bin/env bash
# Checks that every relative markdown link target in the repo's *.md files
# exists. External (http/https/mailto) and pure-anchor links are skipped.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

fail=0
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Extract inline link targets: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"          # drop in-page anchors
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)[:space:]]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files --cached --others --exclude-standard '*.md')

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK"
