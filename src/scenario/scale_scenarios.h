// Parameterized scale family: one deterministic scenario shape per
// protocol stack, parameterized only by the cluster size n. The
// scale-regression suite (tests/test_large_cluster.cpp) pins trace
// digests of these builders at small n across refactors of the
// simulator's hot paths, reuses the same shapes as n=64 smoke runs, and
// the E12 scale bench sweeps them over n — so "same digest" always
// means "same behavior at this size", not "same behavior on a test-only
// config nobody else runs".
//
// The shapes deliberately exercise the refactor-sensitive machinery:
// a minority crash (failure-pattern epoch queries), split-brain Omega
// until tau (pre-stabilization FD values), and — in the partition
// variant — periodic partition windows (the indexed connectivity path).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "api/capabilities.h"
#include "fd/detectors.h"
#include "scenario/scenario.h"
#include "sim/failure_pattern.h"
#include "sim/network_model.h"

namespace wfd::scaletest {

/// Catalog-style scheduler parameters (timeoutPeriod 10, delays
/// [20, 40]) with an event budget sized for n=256 sweeps.
inline SimConfig scaleConfig(std::size_t n, Time maxTime = 6000) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.maxTime = maxTime;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  cfg.maxEvents = 50'000'000;
  return cfg;
}

/// The per-stack scale shape: minority crash at t=1200, split-brain
/// Omega until tau=800, a short broadcast workload (or 12 EC instances
/// for the Omega->EC stack), full checker set for the stack.
inline Scenario scaleScenario(AlgoStack stack, std::size_t n,
                              Time maxTime = 6000) {
  Scenario s;
  s.name = std::string("scale-") + algoStackName(stack) + "-n" +
           std::to_string(n);
  s.description = "scale-family shape for digest pinning and smoke runs";
  s.config = scaleConfig(n, maxTime);
  s.pattern = [](std::size_t m) {
    return Environments::minorityCrash(m, 1200);
  };
  s.tauOmega = 800;
  s.omegaMode = OmegaPreStabilization::kSplitBrain;
  s.stack = stack;
  s.workload.start = 100;
  s.workload.interval = 50;
  s.workload.perProcess = 3;
  switch (stack) {
    case AlgoStack::kEtob:
      s.checks.broadcast = true;
      s.checks.convergence = true;
      break;
    case AlgoStack::kCommitEtob:
      // Commit safety is §7-proviso-conditional: a stable leader from
      // t=0 (the crash still exercises failure-pattern queries; the
      // majority survives, so indications must advance).
      s.tauOmega = 0;
      s.omegaMode = OmegaPreStabilization::kStable;
      s.checks.broadcast = true;
      s.checks.convergence = true;
      s.checks.commit = true;
      s.checks.requireCommitProgress = true;
      break;
    case AlgoStack::kTobViaConsensus:
      s.checks.broadcast = true;
      s.checks.convergence = true;
      break;
    case AlgoStack::kGossipLww:
      s.detector = [](const FailurePattern& fp) {
        return std::make_shared<PerfectFd>(fp);
      };
      s.workload.lwwPutBodies = true;
      s.checks.gossipConvergence = true;
      break;
    case AlgoStack::kOmegaEc:
      // Enough instances that the decided stream extends well past both
      // tau and the crash — the agreed suffix must be non-degenerate.
      s.workload.perProcess = 0;
      s.ecInstances = 40;
      s.checks.ec = true;
      break;
  }
  return s;
}

/// eTOB under a periodic partition splitting the lower half of the
/// process ids from the upper half: windows [400 + 900k, 700 + 900k).
/// Pinned alongside the plain matrix so the partition deferral path has
/// its own cross-refactor digest anchor.
inline Scenario scalePartitionScenario(std::size_t n, Time maxTime = 6000) {
  Scenario s;
  s.name = "scale-partition-n" + std::to_string(n);
  s.description = "periodic half/half partition over the scale shape";
  s.config = scaleConfig(n, maxTime);
  s.tauOmega = 800;
  s.omegaMode = OmegaPreStabilization::kSplitBrain;
  s.stack = AlgoStack::kEtob;
  s.workload.start = 100;
  s.workload.interval = 50;
  s.workload.perProcess = 3;
  s.network = [n](const SimConfig& cfg)
      -> std::shared_ptr<const NetworkModel> {
    auto uniform = std::make_shared<UniformDelayModel>(
        cfg.minDelay, cfg.maxDelay, cfg.fixedDelay);
    PartitionSpec spec;
    spec.start = 400;
    spec.width = 300;
    spec.period = 900;
    // Indexed form of the half/half cut: same link set as the former
    // (from < n/2) != (to < n/2) predicate, so the pinned digests double
    // as an index-vs-predicate equivalence check.
    spec.componentOf = PartitionSpec::splitAt(n, n / 2);
    return std::make_shared<PartitionModel>(
        uniform, std::vector<PartitionSpec>{spec});
  };
  s.checks.broadcast = true;
  s.checks.convergence = true;
  return s;
}

}  // namespace wfd::scaletest
