// Deterministic discrete-event simulator of the paper's system model.
//
// Produces admissible runs: every correct process takes infinitely many
// steps (periodic λ-steps with period Δ_t, the "local timeout"), and
// every message sent to a correct process is eventually received (link
// delay bounded by Δ_c; partition windows only defer delivery, never
// drop). All nondeterminism is drawn from one seeded Rng, so a
// (config, pattern, seed) triple fully determines the run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/automaton.h"
#include "sim/failure_pattern.h"
#include "sim/fd_interface.h"
#include "sim/message.h"
#include "sim/trace.h"

namespace wfd {

/// Scheduler parameters.
struct SimConfig {
  std::size_t processCount = 3;
  std::uint64_t seed = 1;

  /// Hard stop: no event at time > maxTime is processed.
  Time maxTime = 200'000;
  /// Hard stop on total processed events (runaway guard).
  std::uint64_t maxEvents = 4'000'000;

  /// λ-step period Δ_t ("local timeout" granularity).
  Time timeoutPeriod = 10;
  /// Link delay bounds [minDelay, maxDelay]; Δ_c = maxDelay.
  Time minDelay = 40;
  Time maxDelay = 60;
  /// If true every message takes exactly maxDelay — used by the E1
  /// latency experiment to count communication steps as latency/Δ_c.
  bool fixedDelay = false;

  /// Keep full d_i snapshot history in the trace (tests: yes, benches:
  /// usually no — aggregates suffice).
  bool keepDeliverySnapshots = true;
};

/// A partition window: messages on affected links sent or in flight
/// during [start, end) are deferred until `end` (links stay reliable).
struct LinkDisruption {
  Time start = 0;
  Time end = 0;
  std::function<bool(ProcessId from, ProcessId to)> affects;
};

/// Discrete-event simulator. Owns the automata, the virtual clock, the
/// in-flight message queue, and the run trace.
class Simulator {
 public:
  Simulator(SimConfig config, FailurePattern pattern,
            std::shared_ptr<const FailureDetector> detector);

  /// Installs the automaton of process p. Must be called for every p
  /// before running.
  void addProcess(ProcessId p, std::unique_ptr<Automaton> automaton);

  /// Schedules an application input for p at time t.
  void scheduleInput(ProcessId p, Time t, Payload input);

  /// Adds a partition window.
  void addDisruption(LinkDisruption d);

  /// Runs until maxTime / maxEvents.
  void run();

  /// Runs until the predicate holds (checked every `checkEvery` processed
  /// events) or the limits hit. Returns true iff the predicate held.
  bool runUntil(const std::function<bool(const Simulator&)>& pred,
                std::uint64_t checkEvery = 64);

  Time now() const { return now_; }
  std::uint64_t eventsProcessed() const { return eventsProcessed_; }
  const Trace& trace() const { return trace_; }
  const FailurePattern& failurePattern() const { return pattern_; }
  const SimConfig& config() const { return config_; }
  const FailureDetector& detector() const { return *detector_; }

  /// Live automaton state (tests peek at protocol internals).
  const Automaton& automaton(ProcessId p) const { return *automata_.at(p); }
  Automaton& automaton(ProcessId p) { return *automata_.at(p); }

 private:
  enum class EventKind : std::uint8_t { kMessage, kTimeout, kInput };

  struct Event {
    Time time = 0;
    std::uint64_t seq = 0;  // FIFO tie-break
    EventKind kind = EventKind::kTimeout;
    ProcessId target = kNoProcess;
    Message msg;    // kMessage
    Payload input;  // kInput
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Event e);
  void applyEffects(ProcessId self, Effects& fx);
  Time deliveryTime(ProcessId from, ProcessId to, Time sentAt);
  bool processOne();  // false when out of events/limits
  void ensureStarted();

  SimConfig config_;
  FailurePattern pattern_;
  std::shared_ptr<const FailureDetector> detector_;
  Rng rng_;
  std::vector<std::unique_ptr<Automaton>> automata_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<LinkDisruption> disruptions_;
  Trace trace_;
  Time now_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextMsgUid_ = 0;
  bool started_ = false;
};

}  // namespace wfd
