// Integration, regression and mutation tests for the sharded KV
// service: pinned digests for every sharded-* catalog entry, the
// cross-shard-independence byte-identity property, the crash-rebalance
// path (and the mutation proving it matters), service-level stats
// aggregation, and adversarial op logs against the sharded_kv checker.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "scenario/scenario.h"
#include "scenario/trace_digest.h"
#include "shard/shard_router.h"
#include "shard/shard_scenarios.h"
#include "shard/sharded_kv_checker.h"
#include "shard/sharded_service.h"
#include "shard/zipf.h"

namespace wfd {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

// Generated at the introduction of the sharded subsystem (PR 10);
// indexed [catalog entry, registration order][seed in kSeeds]. Same
// caveat as every pin: portable per standard library (the schedules
// draw from std::uniform_int_distribution, the Zipfian CDF from libm).
// A change here is a behavior change in the router, the fold, a shard
// schedule, or the checker's version accounting — not a refactor.
constexpr std::uint64_t kPinnedDigests[3][3] = {
    // sharded-uniform-commit
    {0xc695d8e2ba4b2c19ULL, 0xa1d4a9d1e2797418ULL, 0xa0a69bd7f50685ccULL},
    // sharded-zipf-hotkey
    {0x732558c62fd5ba76ULL, 0x54bcac4c27ea7e75ULL, 0xe4b55a1ceb6a4ceaULL},
    // sharded-rebalance-crash
    {0x6704b81ca40c470dULL, 0x43683a6dd31b6cfdULL, 0xfb907e959410b4caULL},
};

TEST(ShardedScenarios, CatalogEntriesPassAndMatchPinnedDigests) {
  const auto& catalog = shardScenarioCatalog();
  ASSERT_EQ(catalog.size(), 3u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t k = 0; k < 3; ++k) {
      const ShardScenarioRunResult r = runShardScenario(catalog[i], kSeeds[k]);
      EXPECT_TRUE(r.pass) << catalog[i].name << " seed " << kSeeds[k] << ": "
                          << (r.failures.empty() ? "" : r.failures[0]);
      EXPECT_EQ(r.digest, kPinnedDigests[i][k])
          << catalog[i].name << " seed " << kSeeds[k];
      EXPECT_GT(r.committedPuts, 0u) << catalog[i].name;
    }
  }
}

TEST(ShardedScenarios, SeedDeterminism) {
  const ShardScenario* s = findShardScenario("sharded-uniform-commit");
  ASSERT_NE(s, nullptr);
  const ShardScenarioRunResult a = runShardScenario(*s, 11);
  const ShardScenarioRunResult b = runShardScenario(*s, 11);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.committedPuts, b.committedPuts);
  const ShardScenarioRunResult c = runShardScenario(*s, 12);
  EXPECT_NE(a.digest, c.digest);
}

TEST(ShardedScenarios, NamesAreUniqueAcrossBothCatalogs) {
  std::set<std::string> names;
  for (const Scenario& s : scenarioCatalog()) {
    EXPECT_TRUE(names.insert(s.name).second) << s.name;
  }
  for (const ShardScenario& s : shardScenarioCatalog()) {
    EXPECT_TRUE(names.insert(s.name).second) << s.name;
    // A sharded name must not shadow a flat entry (the CLI resolves
    // flat-first).
    EXPECT_EQ(findScenario(s.name), nullptr) << s.name;
    EXPECT_EQ(findShardScenario(s.name), &s);
  }
  EXPECT_EQ(findShardScenario("no-such-scenario"), nullptr);
}

// --- Cross-shard independence ----------------------------------------------

ShardedSpec smallSpec(std::size_t shards) {
  ShardedSpec spec;
  spec.shards = shards;
  spec.replicasPerShard = 3;
  spec.stack = AlgoStack::kCommitEtob;
  spec.config.maxTime = 40'000;
  spec.config.timeoutPeriod = 10;
  spec.config.minDelay = 20;
  spec.config.maxDelay = 40;
  spec.omegaMode = OmegaPreStabilization::kStable;
  return spec;
}

// Issues `puts` uniform-key writes through the router on a 10-tick
// cadence, polling as it goes, then settles on a FIXED 2000-tick window
// and reads every key back. The fixed window (rather than
// runUntilQuiescent) keeps the end time identical across fault
// variants, so whole-trace digests of unfaulted shards are comparable
// byte-for-byte.
void driveUniform(ShardedService& svc, ShardRouter& router,
                  std::uint64_t workloadSeed, std::uint64_t puts) {
  UniformKeyGenerator gen(32, splitmix64(workloadSeed ^ 0x647276ULL));
  std::vector<std::uint64_t> written;
  for (std::uint64_t i = 0; i < puts; ++i) {
    svc.advanceBy(10);
    const std::uint64_t key = gen.next();
    router.put(key, i + 1);
    written.push_back(key);
    router.poll();
  }
  svc.advanceBy(2000);
  router.poll();
  for (const std::uint64_t key : written) router.get(key);
}

TEST(ShardedKv, CrossShardIndependenceUnderIsolation) {
  // Run A: fault-free. Run B: one replica of shard 2 is partitioned
  // from its group for a long window. The ring never changes, so every
  // OTHER shard must produce a byte-identical trace — shards share
  // nothing, and the checkers' own digests prove it.
  ShardedService a(smallSpec(4), 77);
  ShardRouter ra(a);
  driveUniform(a, ra, 77, 64);

  ShardedService b(smallSpec(4), 77);
  b.isolateReplica(2, 1, 300, 900);
  ShardRouter rb(b);
  driveUniform(b, rb, 77, 64);

  bool faultedShardTouched = false;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::uint64_t da = traceDigest(a.shard(s).sim().trace());
    const std::uint64_t db = traceDigest(b.shard(s).sim().trace());
    if (s == 2) {
      faultedShardTouched = (da != db);
    } else {
      EXPECT_EQ(da, db) << "shard " << s << " noticed a fault on shard 2";
    }
  }
  // The isolation window must actually have perturbed shard 2 (else the
  // equality above is vacuous).
  EXPECT_TRUE(faultedShardTouched);

  // Majority survived the partition, so the faulted run still passes
  // the full checker.
  const ShardedKvReport report = checkShardedKvRun(rb.ops());
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GT(report.committedPuts, 0u);
}

// --- Crash rebalancing ------------------------------------------------------

TEST(ShardedKv, QuorumLossRebalancesTheRing) {
  ShardedService svc(smallSpec(4), 5);
  ShardRouter router(svc);
  driveUniform(svc, router, 5, 32);

  // Find a key currently owned by shard 1, then crash shard 1 below
  // its majority (replicas 1 and 2 of 3; replica 0 stays, so the read
  // replica never changes).
  std::uint64_t victim = 0;
  while (svc.ownerOf(victim) != 1) ++victim;
  svc.crashReplica(1, 1, svc.now() + 1);
  EXPECT_EQ(svc.rebalances(), 0u);  // still at quorum
  EXPECT_TRUE(svc.hasQuorum(1));
  svc.crashReplica(1, 2, svc.now() + 2);
  EXPECT_FALSE(svc.hasQuorum(1));
  EXPECT_EQ(svc.rebalances(), 1u);
  EXPECT_FALSE(svc.ring().contains(1));
  EXPECT_NE(svc.ownerOf(victim), 1u);

  // Post-rebalance writes land on live shards and still commit.
  const std::size_t before = router.ops().size();
  svc.advanceBy(10);
  router.put(victim, 9'000);
  svc.runUntilQuiescent();
  router.poll();
  EXPECT_NE(router.ops()[before].shard, 1u);
  EXPECT_TRUE(router.ops()[before].committed);
  const ShardedKvReport report = checkShardedKvRun(router.ops());
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(ShardedKv, RebalanceMutationKeepsDeadShardWithoutTheKnob) {
  // Mutation: with rebalanceOnQuorumLoss off, the same crash schedule
  // re-homes nothing — keys keep routing to the dead shard. This is
  // what proves the rebalance path (not luck) moves the keys.
  ShardedSpec spec = smallSpec(4);
  spec.rebalanceOnQuorumLoss = false;
  ShardedService svc(spec, 5);
  std::uint64_t victim = 0;
  while (svc.ownerOf(victim) != 1) ++victim;
  svc.crashReplica(1, 1, 10);
  svc.crashReplica(1, 2, 20);
  EXPECT_FALSE(svc.hasQuorum(1));
  EXPECT_EQ(svc.rebalances(), 0u);
  EXPECT_TRUE(svc.ring().contains(1));
  EXPECT_EQ(svc.ownerOf(victim), 1u);

  // Scenario-level: the catalog's rebalance entry fails its
  // requireRebalance clause under the same mutation.
  const ShardScenario* base = findShardScenario("sharded-rebalance-crash");
  ASSERT_NE(base, nullptr);
  ShardScenario mutant = *base;
  mutant.spec.rebalanceOnQuorumLoss = false;
  const ShardScenarioRunResult r = runShardScenario(mutant, 1);
  EXPECT_FALSE(r.pass);
  bool sawRebalanceFailure = false;
  for (const std::string& f : r.failures) {
    if (f.rfind("rebalance:", 0) == 0) sawRebalanceFailure = true;
  }
  EXPECT_TRUE(sawRebalanceFailure);
}

// --- Stats aggregation ------------------------------------------------------

TEST(ShardedKv, StatsAggregateAcrossShards) {
  ShardedService svc(smallSpec(4), 21);
  ShardRouter router(svc);
  driveUniform(svc, router, 21, 64);

  const ShardedStats stats = svc.stats();
  ASSERT_EQ(stats.perShard.size(), 4u);
  std::size_t keys = 0;
  std::uint64_t applied = 0;
  std::uint64_t committedLen = 0;
  std::size_t populatedShards = 0;
  for (const ShardStats& row : stats.perShard) {
    keys += row.keys;
    applied += row.applied;
    committedLen += row.committedLen;
    if (row.applied > 0) ++populatedShards;
    EXPECT_EQ(row.correctReplicas, 3u);
    EXPECT_TRUE(row.inRing);
  }
  EXPECT_EQ(stats.keys, keys);
  EXPECT_EQ(stats.applied, applied);
  EXPECT_EQ(stats.committedLen, committedLen);
  EXPECT_EQ(stats.shardsInRing, 4u);

  // Every settled put was applied exactly once, on exactly one shard.
  EXPECT_EQ(stats.applied, 64u);
  // Keys spread across shards: any single shard's replica-group-local
  // kvStats (the facade counter) undercounts the service — the bug the
  // aggregated stats() exists to fix.
  EXPECT_GE(populatedShards, 2u);
  for (const ShardStats& row : stats.perShard) {
    EXPECT_LT(row.applied, stats.applied);
  }
}

// --- Checker mutations ------------------------------------------------------

RouterOp putOp(std::uint64_t key, std::uint64_t value, std::size_t shard,
               Time time, bool committed, Time commitTime) {
  RouterOp op;
  op.kind = RouterOp::Kind::kPut;
  op.key = key;
  op.value = value;
  op.time = time;
  op.shard = shard;
  op.committed = committed;
  op.commitTime = commitTime;
  return op;
}

RouterOp getOp(std::uint64_t key, std::size_t shard, Time time, bool hasValue,
               std::uint64_t value, std::uint64_t version) {
  RouterOp op;
  op.kind = RouterOp::Kind::kGet;
  op.key = key;
  op.value = value;
  op.hasValue = hasValue;
  op.time = time;
  op.shard = shard;
  op.version = version;
  return op;
}

TEST(ShardedKvChecker, CleanLogPasses) {
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 50),
      getOp(7, 0, 60, true, 1, 1),
      putOp(7, 2, 0, 70, true, 120),
      getOp(7, 0, 130, true, 2, 2),
      getOp(8, 0, 130, false, 0, 0),  // never written: miss is fine
  };
  const ShardedKvReport r = checkShardedKvRun(ops);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.puts, 2u);
  EXPECT_EQ(r.committedPuts, 2u);
  EXPECT_EQ(r.gets, 3u);
  EXPECT_EQ(r.successfulGets, 2u);
}

TEST(ShardedKvChecker, FlagsUncommittedRead) {
  // Value 9 was never written by a committed put on shard 0.
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 50),
      getOp(7, 0, 60, true, 9, 1),
  };
  const ShardedKvReport r = checkShardedKvRun(ops);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.uncommittedReads, 1u);
}

TEST(ShardedKvChecker, FlagsCrossShardValueLeak) {
  // The value exists but was committed on ANOTHER shard: serving it
  // from shard 1 would mean shards share state.
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 50),
      getOp(7, 1, 60, true, 1, 1),
  };
  const ShardedKvReport r = checkShardedKvRun(ops);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.uncommittedReads, 1u);
}

TEST(ShardedKvChecker, FlagsVersionRegression) {
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 20),
      putOp(7, 2, 0, 30, true, 40),
      getOp(7, 0, 50, true, 2, 2),
      getOp(7, 0, 60, true, 1, 1),  // fold went backwards
  };
  const ShardedKvReport r = checkShardedKvRun(ops);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.monotonicityViolations, 1u);
}

TEST(ShardedKvChecker, FlagsStaleRead) {
  // A commit observed at t=50 must be visible to a strictly later read
  // on the same shard.
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 50),
      getOp(7, 0, 80, false, 0, 0),
  };
  const ShardedKvReport r = checkShardedKvRun(ops);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.staleReads, 1u);
}

TEST(ShardedKvChecker, SameTickCommitDoesNotForceVisibility) {
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 50),
      getOp(7, 0, 50, false, 0, 0),  // same tick: resolution order unknown
  };
  EXPECT_TRUE(checkShardedKvRun(ops).ok());
}

TEST(ShardedKvChecker, RejectsAmbiguousDuplicateWrites) {
  const std::vector<RouterOp> ops = {
      putOp(7, 1, 0, 10, true, 50),
      putOp(7, 1, 0, 20, true, 60),
  };
  const ShardedKvReport r = checkShardedKvRun(ops);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
}

}  // namespace
}  // namespace wfd
