// Algorithm 4: eventual consensus from Omega, in ANY environment —
// the sufficiency half of Theorem 2.
//
// Per the paper:
//  * on proposeEC_l(v)      -> count_i := l; send promote(v, l) to all
//  * on promote(v, l) from j-> received_i[j, l] := v
//  * on local timeout       -> if received_i[Omega_i, count_i] != ⊥ then
//                              DecideEC(count_i, received_i[Omega_i, count_i])
//
// Once Omega stabilizes on one correct leader, all processes decide that
// leader's proposals, giving agreement for every later instance; no
// quorum (Sigma) is ever needed.
#pragma once

#include <map>
#include <set>
#include <utility>

#include "common/types.h"
#include "ec/ec_types.h"
#include "sim/automaton.h"

namespace wfd {

/// Algorithm 4's wire message promote(v, l).
struct EcPromoteMsg {
  Value value;
  Instance instance = 0;
};

class OmegaEcAutomaton final : public CloneableAutomaton<OmegaEcAutomaton> {
 public:
  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  Instance currentInstance() const { return count_; }
  bool decided(Instance l) const { return decided_.contains(l); }

 private:
  Instance count_ = 0;  // number of the last instance invoked here
  /// received_i[(j, l)] — the value promoted by p_j for instance l.
  std::map<std::pair<ProcessId, Instance>, Value> received_;
  /// Instances already responded to (EC-Integrity: at most one response).
  std::set<Instance> decided_;
};

}  // namespace wfd
