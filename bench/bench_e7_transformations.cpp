// E7 — The equivalences EC ≡ ETOB (Theorem 1) and EC ≡ EIC (Theorem 3):
// transformation stacks preserve the EC contract at constant-factor cost.
//
// Claim shape: direct Algorithm 4 and the stacked constructions
// (EC -> ETOB -> EC via Algorithms 1+2, EC -> EIC -> EC via 6+7) all
// satisfy the EC spec; the stacks pay more messages per decided instance
// and may push the agreement index k̂ slightly later, but all converge.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "checkers/ec_checker.h"
#include "ec/ec_driver.h"
#include "ec/omega_ec.h"
#include "ec/transformations.h"

namespace wfd::bench {
namespace {

constexpr Instance kInstances = 24;
constexpr Time kTauOmega = 500;

struct Result {
  bool terminated = false;
  Instance agreementFromK = 0;
  double msgsPerInstance = 0;
  Time finishedAt = 0;
};

SimConfig e7Config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = seed;
  cfg.maxTime = 200000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 15;
  cfg.maxDelay = 30;
  cfg.keepDeliverySnapshots = false;
  return cfg;
}

template <typename MakeAutomaton>
Result run(std::uint64_t seed, MakeAutomaton make) {
  auto cfg = e7Config(seed);
  auto fp = FailurePattern::noFailures(3);
  auto omega =
      std::make_shared<OmegaFd>(fp, kTauOmega, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) sim.addProcess(p, make(seed));
  Result r;
  r.terminated = sim.runUntil([&](const Simulator& s) {
    return checkEcRun(s.trace(), s.failurePattern()).decidedByAllCorrect >=
           kInstances;
  });
  const auto report = checkEcRun(sim.trace(), fp);
  r.agreementFromK = report.agreementFromK;
  r.msgsPerInstance =
      static_cast<double>(sim.trace().messagesSent()) / kInstances;
  r.finishedAt = sim.now();
  return r;
}

std::unique_ptr<Automaton> direct(std::uint64_t seed) {
  return std::make_unique<EcDriverAutomaton<OmegaEcAutomaton>>(
      OmegaEcAutomaton{}, binaryProposals(seed), kInstances);
}

std::unique_ptr<Automaton> viaEtob(std::uint64_t seed) {
  using Stack = EtobToEcAutomaton<EcToEtobAutomaton<OmegaEcAutomaton>>;
  return std::make_unique<EcDriverAutomaton<Stack>>(
      Stack(EcToEtobAutomaton<OmegaEcAutomaton>(OmegaEcAutomaton{})),
      binaryProposals(seed), kInstances);
}

std::unique_ptr<Automaton> viaEic(std::uint64_t seed) {
  using Stack = EicToEcAutomaton<EcToEicAutomaton<OmegaEcAutomaton>>;
  return std::make_unique<EcDriverAutomaton<Stack>>(
      Stack(EcToEicAutomaton<OmegaEcAutomaton>(OmegaEcAutomaton{})),
      binaryProposals(seed), kInstances);
}

void printTable() {
  std::printf("E7: EC contract through transformation stacks (n=3,\n"
              "tau_Omega=%llu, %llu instances; all must terminate & agree)\n\n",
              static_cast<unsigned long long>(kTauOmega),
              static_cast<unsigned long long>(kInstances));
  Table t({"stack", "done", "k_hat", "msgs/inst", "sim_time"}, 16);
  struct Named {
    const char* name;
    std::unique_ptr<Automaton> (*make)(std::uint64_t);
  };
  for (const auto& [name, make] : {Named{"EC direct (Alg4)", direct},
                                   Named{"EC->ETOB->EC", viaEtob},
                                   Named{"EC->EIC->EC", viaEic}}) {
    Result sum{};
    bool allDone = true;
    Instance worstK = 0;
    int runs = 0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      auto r = run(seed, make);
      allDone = allDone && r.terminated;
      worstK = std::max(worstK, r.agreementFromK);
      sum.msgsPerInstance += r.msgsPerInstance;
      sum.finishedAt += r.finishedAt;
      ++runs;
    }
    t.row({name, allDone ? "yes" : "NO", std::to_string(worstK),
           fmt(sum.msgsPerInstance / runs, 1),
           std::to_string(sum.finishedAt / runs)});
  }
  std::printf("\n");
}

void BM_DirectEc(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(seed++, direct);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DirectEc)->Unit(benchmark::kMillisecond);

void BM_EcThroughEtob(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(seed++, viaEtob);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EcThroughEtob)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
