// Quickstart: a 3-process eventually consistent broadcast cluster.
//
// Runs Algorithm 5 (ET OB) over an Omega failure detector that starts in
// split-brain mode and stabilizes at t=1500. Three processes broadcast
// messages; the example prints each process's delivery sequence d_i as it
// evolves, then verifies the full ETOB specification with the checkers.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "common/strings.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "sim/simulator.h"

using namespace wfd;

namespace {

std::string shortId(MsgId id) {
  return "m" + std::to_string(msgIdOrigin(id)) + "." +
         std::to_string(msgIdSeq(id));
}

void printDeliveries(const Simulator& sim, const char* label) {
  std::printf("%s (t=%llu)\n", label, static_cast<unsigned long long>(sim.now()));
  for (ProcessId p = 0; p < sim.config().processCount; ++p) {
    std::vector<std::string> ids;
    for (MsgId id : sim.trace().currentDelivered(p)) ids.push_back(shortId(id));
    std::printf("  d_%zu = [%s]\n", p, join(ids, ", ").c_str());
  }
}

}  // namespace

int main() {
  // 1. Configure the simulated asynchronous system (the paper's model).
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = 42;
  cfg.maxTime = 20000;
  cfg.timeoutPeriod = 10;  // Δ_t: λ-step period ("local timeout")
  cfg.minDelay = 20;       // link delays in [20, 40] — Δ_c = 40
  cfg.maxDelay = 40;

  // 2. An Omega detector: split-brain until t=1500 (processes disagree on
  //    the leader — a partition period), then stable forever.
  const Time tauOmega = 1500;
  auto fp = FailurePattern::noFailures(cfg.processCount);
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega,
                                         OmegaPreStabilization::kSplitBrain);

  // 3. One ET OB automaton (Algorithm 5) per process.
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }

  // 4. A broadcast workload: 4 messages per process.
  BroadcastWorkload workload;
  workload.start = 100;
  workload.interval = 80;
  workload.perProcess = 4;
  BroadcastLog log = scheduleBroadcastWorkload(sim, workload);

  std::printf("== ETOB quickstart: n=3, split-brain Omega until t=%llu ==\n\n",
              static_cast<unsigned long long>(tauOmega));

  // 5. Run to mid-divergence, peek, then run to convergence.
  sim.runUntil([&](const Simulator& s) { return s.now() >= tauOmega / 2; });
  printDeliveries(sim, "-- during the partition period (sequences may differ)");

  sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 200 && broadcastConverged(s, log);
  });
  printDeliveries(sim, "\n-- after Omega stabilized (identical, stable, total)");

  // 6. Verify the ETOB specification over the whole run.
  const BroadcastCheckReport report = checkBroadcastRun(sim.trace(), log, fp);
  std::printf("\nETOB specification check:\n");
  std::printf("  validity / agreement / no-creation / no-duplication : %s\n",
              report.coreOk() ? "OK" : "FAILED");
  std::printf("  causal order (always)                               : %s\n",
              report.causalOrderOk ? "OK" : "FAILED");
  std::printf("  eventual stability + total order from tau_hat = %llu\n",
              static_cast<unsigned long long>(report.tau));
  std::printf("  paper bound tau_Omega + dt + dc                     = %llu\n",
              static_cast<unsigned long long>(tauOmega + cfg.timeoutPeriod +
                                              cfg.maxDelay));
  return report.coreOk() && report.causalOrderOk ? 0 : 1;
}
