#include "checkers/commit_checker.h"

#include <algorithm>
#include <sstream>

#include "etob/commit_etob.h"

namespace wfd {

CommitCheckReport checkCommitSafety(const Trace& trace,
                                    const FailurePattern& pattern) {
  CommitCheckReport report;
  std::uint64_t minFinalLen = 0;
  bool sawAny = false;

  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    if (!pattern.correct(p)) continue;
    const auto& snapshots = trace.deliverySnapshots(p);
    std::uint64_t lastLen = 0;

    for (const OutputEvent& ev : trace.outputs(p)) {
      const auto* commit = ev.value.as<CommittedPrefix>();
      if (commit == nullptr) continue;
      ++report.indications;
      lastLen = std::max(lastLen, commit->length);

      // d_i at indication time: last snapshot at time <= ev.time.
      const std::vector<MsgId>* at = nullptr;
      for (const DeliverySnapshot& snap : snapshots) {
        if (snap.time <= ev.time) {
          at = &snap.seq;
        } else {
          break;
        }
      }
      if (at == nullptr || at->size() < commit->length) {
        std::ostringstream os;
        os << "commit: p" << p << " indicated length " << commit->length
           << " at t=" << ev.time << " but d_i was shorter";
        report.errors.push_back(os.str());
        ++report.revokedCommits;
        continue;
      }
      const std::vector<MsgId> prefix(at->begin(), at->begin() + commit->length);
      // Every later snapshot must preserve the prefix verbatim.
      for (const DeliverySnapshot& snap : snapshots) {
        if (snap.time < ev.time) continue;
        const bool ok =
            snap.seq.size() >= prefix.size() &&
            std::equal(prefix.begin(), prefix.end(), snap.seq.begin());
        if (!ok) {
          std::ostringstream os;
          os << "commit: prefix of length " << commit->length << " committed at p"
             << p << " (t=" << ev.time << ") changed at t=" << snap.time;
          report.errors.push_back(os.str());
          ++report.revokedCommits;
          break;
        }
      }
    }
    if (lastLen > 0) {
      minFinalLen = sawAny ? std::min(minFinalLen, lastLen) : lastLen;
      sawAny = true;
    }
  }
  report.committedLenAllCorrect = sawAny ? minFinalLen : 0;
  return report;
}

}  // namespace wfd
