// Workload generation and convergence predicates shared by tests,
// examples and benches.
#pragma once

#include <cstdint>

#include "checkers/broadcast_log.h"
#include "sim/simulator.h"

namespace wfd {

/// A broadcast workload: each process broadcasts `perProcess` messages,
/// starting at `start`, one every `interval` ticks.
struct BroadcastWorkload {
  Time start = 50;
  Time interval = 40;
  std::size_t perProcess = 5;
  /// If true each message declares a causal dependency on the previous
  /// message of the same origin (a per-origin chain).
  bool causalChainPerOrigin = false;
  /// If true message i of p additionally depends on message i of p-1
  /// (a cross-process causal lattice; needs interval staggering to be
  /// realistic, the generator staggers origins by interval/n).
  bool crossProcessDeps = false;
  /// If true bodies are LWW put commands {kPut, key=id, value=i} instead
  /// of the default {origin, i} marker — the shape GossipLwwStore (and
  /// any state machine replica) consumes. Per-message keys, so nothing
  /// is shadowed and every update is applied somewhere.
  bool lwwPutBodies = false;
  /// 0 = every process broadcasts (the default). Otherwise only the
  /// first `writers` processes get inputs — the few-writers/many-replicas
  /// deployment shape, and at big n the knob that keeps per-replica
  /// state (e.g. gossip LWW tables) independent of the cluster size.
  std::size_t writers = 0;
};

/// Schedules the workload into `sim` (skipping processes already crashed
/// at their slot) and returns the broadcast log for checking.
BroadcastLog scheduleBroadcastWorkload(Simulator& sim, const BroadcastWorkload& w);

/// True iff every correct process's current d_i contains every message of
/// the log broadcast by a correct process, and all correct processes'
/// sequences are identical.
bool broadcastConverged(const Simulator& sim, const BroadcastLog& log);

}  // namespace wfd
