#include "cht/fd_dag.h"

#include <algorithm>

#include "common/ensure.h"

namespace wfd {

std::size_t FdDag::addSample(ProcessId p, const FdValue& d) {
  if (queryCount_.size() <= p) queryCount_.resize(p + 1, 0);
  DagVertex v{p, d, ++queryCount_[p]};
  // Query counters are local, but a union may have imported a vertex of p
  // with a higher k (from p's own, more advanced DAG). Skip forward.
  while (index_.contains(v)) v.k = ++queryCount_[p];

  const std::size_t idx = vertices_.size();
  vertices_.push_back(v);
  index_.emplace(v, idx);
  succs_.emplace_back();
  // Edges from every existing vertex to the new one (Figure 1).
  for (std::size_t u = 0; u < idx; ++u) {
    if (succs_[u].insert(static_cast<std::uint32_t>(idx)).second) ++edgeCount_;
  }
  return idx;
}

void FdDag::unionWith(const FdDag& other) {
  // Map other's indices to ours, inserting missing vertices.
  std::vector<std::size_t> map(other.vertices_.size());
  for (std::size_t i = 0; i < other.vertices_.size(); ++i) {
    const DagVertex& v = other.vertices_[i];
    auto it = index_.find(v);
    if (it != index_.end()) {
      map[i] = it->second;
      continue;
    }
    map[i] = vertices_.size();
    vertices_.push_back(v);
    index_.emplace(v, map[i]);
    succs_.emplace_back();
  }
  for (std::size_t i = 0; i < other.succs_.size(); ++i) {
    for (std::uint32_t j : other.succs_[i]) {
      if (succs_[map[i]].insert(static_cast<std::uint32_t>(map[j])).second) {
        ++edgeCount_;
      }
    }
  }
}

std::uint64_t FdDag::localQueryCount(ProcessId p) const {
  return p < queryCount_.size() ? queryCount_[p] : 0;
}

std::vector<std::size_t> FdDag::canonicalOrder() const {
  std::vector<std::size_t> order(vertices_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return vertices_[a] < vertices_[b];
  });
  return order;
}

bool FdDag::sameAs(const FdDag& other) const {
  if (vertices_.size() != other.vertices_.size() || edgeCount_ != other.edgeCount_) {
    return false;
  }
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    auto it = other.index_.find(vertices_[i]);
    if (it == other.index_.end()) return false;
    const std::size_t oi = it->second;
    if (succs_[i].size() != other.succs_[oi].size()) return false;
    for (std::uint32_t j : succs_[i]) {
      auto jt = other.index_.find(vertices_[j]);
      if (jt == other.index_.end()) return false;
      if (!other.succs_[oi].contains(static_cast<std::uint32_t>(jt->second))) {
        return false;
      }
    }
  }
  return true;
}

DagReach::DagReach(const FdDag& dag) {
  const std::size_t n = dag.vertexCount();
  closure_.assign(n, std::vector<bool>(n, false));
  // Vertices in (k, q, d)-canonical order are not necessarily topological;
  // run a BFS per vertex (n is small: bounded by the extractor's sample
  // caps).
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::size_t> stack{s};
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::uint32_t v : dag.succs_[u]) {
        if (!closure_[s][v]) {
          closure_[s][v] = true;
          stack.push_back(v);
        }
      }
    }
  }
}

}  // namespace wfd
