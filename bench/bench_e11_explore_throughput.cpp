// E11 — explorer throughput (infrastructure experiment, like E9).
//
// The explorer's value scales with how many admissible schedules it can
// push through the checker oracles per second: plans/sec IS the fuzzing
// budget. This bench measures, per protocol stack, the full pipeline —
// seed-derived FuzzPlan sampling, scenario lowering, simulation to the
// plan's horizon, checker evaluation — exactly the per-run work of
// `wfd_explore`. The human table also reports the sampled runs' average
// simulated horizon and event count, so a throughput regression can be
// attributed (slower machinery vs longer sampled runs).
//
// Recorded in BENCH_<label>.json so fuzzing speed joins the perf
// trajectory alongside the protocol experiments (docs/BENCHMARKS.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "explore/explorer.h"
#include "explore/fuzz_plan.h"

namespace wfd::bench {
namespace {

constexpr auto& kStacks = kAllAlgoStacks;

struct WindowStats {
  std::uint64_t runs = 0;
  std::uint64_t violations = 0;
  std::uint64_t totalEvents = 0;
  Time totalHorizon = 0;
};

/// One explorer run: sample plan `index`, run it, evaluate the oracle.
ScenarioRunResult oneRun(AlgoStack stack, std::uint64_t index,
                         WindowStats* stats) {
  const FuzzPlan plan = sampleFuzzPlan(stack, /*masterSeed=*/1, index);
  ScenarioRunResult r = runFuzzPlan(plan, FuzzOracle::kSpec);
  if (stats != nullptr) {
    ++stats->runs;
    stats->violations += r.pass ? 0 : 1;
    stats->totalEvents += r.eventsProcessed;
    stats->totalHorizon += plan.maxTime;
  }
  return r;
}

void printTable() {
  std::printf(
      "E11: explorer throughput — plans/sec per stack over the first 40\n"
      "sampled plans of seed 1 (the wfd_explore per-run pipeline: sample\n"
      "-> lower -> simulate -> check; violations must be 0)\n\n");
  Table t({"stack", "runs", "violations", "avg-horizon", "avg-events"}, 15);
  for (AlgoStack stack : kStacks) {
    WindowStats stats;
    for (std::uint64_t i = 0; i < 40; ++i) oneRun(stack, i, &stats);
    t.row({algoStackName(stack), std::to_string(stats.runs),
           std::to_string(stats.violations),
           std::to_string(stats.totalHorizon / stats.runs),
           std::to_string(stats.totalEvents / stats.runs)});
  }
  std::printf("\n");
}

void BM_ExplorePlans(benchmark::State& state) {
  const AlgoStack stack = kStacks[state.range(0)];
  state.SetLabel(algoStackName(stack));
  std::uint64_t index = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const ScenarioRunResult r = oneRun(stack, index++, nullptr);
    benchmark::DoNotOptimize(r);
    events += r.eventsProcessed;
  }
  // plans/sec is the headline number; events/sec attributes changes.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorePlans)
    ->DenseRange(0, static_cast<std::int64_t>(std::size(kStacks)) - 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
