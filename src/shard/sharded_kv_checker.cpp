#include "shard/sharded_kv_checker.h"

#include <map>
#include <utility>

#include "scenario/trace_digest.h"

namespace wfd {

ShardedKvReport checkShardedKvRun(const std::vector<RouterOp>& ops) {
  ShardedKvReport report;

  // Index puts by (key, value) — unique per the workload contract.
  std::map<std::pair<std::uint64_t, std::uint64_t>, const RouterOp*> puts;
  for (const RouterOp& op : ops) {
    if (op.kind != RouterOp::Kind::kPut) continue;
    ++report.puts;
    if (op.committed) ++report.committedPuts;
    const auto key = std::make_pair(op.key, op.value);
    if (!puts.emplace(key, &op).second) {
      report.errors.push_back("duplicate put (key " + std::to_string(op.key) +
                              ", value " + std::to_string(op.value) +
                              ") — ambiguous workload");
    }
  }
  if (!report.errors.empty()) return report;

  // lastGet[(key, shard)] -> (version, value) of the latest get.
  std::map<std::pair<std::uint64_t, std::size_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      lastGet;
  for (const RouterOp& op : ops) {
    if (op.kind != RouterOp::Kind::kGet) continue;
    ++report.gets;

    if (op.hasValue) {
      ++report.successfulGets;
      const auto it = puts.find({op.key, op.value});
      const RouterOp* writer = it == puts.end() ? nullptr : it->second;
      if (writer == nullptr || writer->shard != op.shard ||
          !writer->committed || writer->commitTime > op.time) {
        ++report.uncommittedReads;
        if (report.errors.size() < 8) {
          report.errors.push_back(
              "get(key " + std::to_string(op.key) + ") at t=" +
              std::to_string(op.time) + " on shard " +
              std::to_string(op.shard) + " returned " +
              std::to_string(op.value) +
              ", which no same-shard committed put wrote by then");
        }
      }
    } else {
      // read-your-writes: a write this router already saw commit on this
      // shard (strictly earlier — same-tick resolution order is not
      // observable from the log) must be visible.
      for (const auto& [kv, writer] : puts) {
        if (kv.first == op.key && writer->shard == op.shard &&
            writer->committed && writer->commitTime < op.time) {
          ++report.staleReads;
          if (report.errors.size() < 8) {
            report.errors.push_back(
                "get(key " + std::to_string(op.key) + ") at t=" +
                std::to_string(op.time) + " on shard " +
                std::to_string(op.shard) +
                " found nothing despite a commit observed at t=" +
                std::to_string(writer->commitTime));
          }
          break;
        }
      }
    }

    const auto slot = std::make_pair(op.key, op.shard);
    const auto prev = lastGet.find(slot);
    if (prev != lastGet.end()) {
      const auto [prevVersion, prevValue] = prev->second;
      const bool regressed =
          op.version < prevVersion ||
          (op.version == prevVersion && op.hasValue &&
           prevVersion > 0 && op.value != prevValue);
      if (regressed) {
        ++report.monotonicityViolations;
        if (report.errors.size() < 8) {
          report.errors.push_back(
              "get(key " + std::to_string(op.key) + ") on shard " +
              std::to_string(op.shard) + " regressed from version " +
              std::to_string(prevVersion) + " to " +
              std::to_string(op.version));
        }
      }
    }
    lastGet[slot] = {op.version, op.value};
  }
  return report;
}

std::uint64_t shardedRunDigest(const ShardedService& service,
                               const ShardRouter& router) {
  TraceHasher h;
  for (std::size_t s = 0; s < service.shardCount(); ++s) {
    h.mix(traceDigest(service.shard(s).sim().trace()));
  }
  for (const RouterOp& op : router.ops()) {
    h.mix(static_cast<std::uint64_t>(op.kind));
    h.mix(op.key);
    h.mix(op.hasValue ? op.value : ~0ULL);
    h.mix(op.shard);
    h.mix(op.version);
  }
  return h.digest();
}

}  // namespace wfd
