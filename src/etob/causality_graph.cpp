#include "etob/causality_graph.h"

#include <algorithm>

#include "common/ensure.h"

namespace wfd {

void CausalityGraph::addMessage(const AppMsg& m, const std::vector<MsgId>& deps) {
  if (contains(m.id)) return;
  graph_.addNode(m.id);

  const std::vector<MsgId>* sources = &deps;
  if (mode_ == CgEdgeMode::kFrontier) {
    // Frontier mode: keep only causally-maximal dependencies. A dep that
    // reaches another dep is implied transitively.
    collapseDominated(deps, sourcesScratch_);
    sources = &sourcesScratch_;
  }
  for (MsgId d : *sources) {
    if (d == m.id) continue;
    // Unknown dependencies become placeholder nodes: the edge constrains
    // ordering; the content arrives later via update/union.
    graph_.addEdge(d, m.id);
  }
  syncNodeArrays();
  const std::uint32_t mi = *graph_.indexOf(m.id);
  bodies_[mi] = m;
  bodyKnown_[mi] = 1;
  bodyWeight_ += 2 + m.body.size() + m.causalDeps.size();
  refreshNode(mi);
}

void CausalityGraph::unionWith(const CausalityGraph& other) {
  // stablePredSets holds in kFullPaper mode: a message's in-edges are
  // exactly C(m) \ {m}, installed atomically by addMessage (empty until
  // then for placeholder nodes), so any two graphs agree on every
  // nonempty pred set and the union can skip settled nodes outright
  // (debug builds cross-check the set equality). kFrontier re-collapses
  // deps against each receiver's local graph, so different processes can
  // hold different — closure-equivalent — pred sets for the same node;
  // that mode keeps the general merging union.
  graph_.unionWith(other.graph_, unionMapScratch_,
                   /*stablePredSets=*/mode_ == CgEdgeMode::kFullPaper);
  syncNodeArrays();
  // Only the other graph's nodes can have gained bodies or in-edges;
  // revisit exactly those.
  for (std::size_t j = 0; j < unionMapScratch_.size(); ++j) {
    const std::uint32_t i = unionMapScratch_[j];
    if (other.bodyKnown_[j] && !bodyKnown_[i]) {
      bodies_[i] = other.bodies_[j];
      bodyKnown_[i] = 1;
      bodyWeight_ += 2 + bodies_[i].body.size() + bodies_[i].causalDeps.size();
    }
    if (!emitted_[i]) refreshNode(i);
  }
}

const AppMsg& CausalityGraph::message(MsgId id) const {
  const auto idx = graph_.indexOf(id);
  WFD_ENSURE_MSG(idx.has_value() && bodyKnown_[*idx] != 0,
                 "unknown message in causality graph");
  return bodies_[*idx];
}

std::vector<MsgId> CausalityGraph::topologicalOrder() const {
  auto order = graph_.topoSort([](MsgId a, MsgId b) { return a < b; });
  WFD_ENSURE_MSG(order.has_value(), "causality graph must be acyclic");
  return *order;
}

std::vector<MsgId> CausalityGraph::extendPromote(
    const std::vector<MsgId>& promote) const {
  // Reference (batch) form: emitted-ness is a flat flag array indexed by
  // insertion index, and predecessor checks read the graph's flat
  // adjacency directly instead of materializing value vectors.
  std::vector<char> emitted(graph_.nodeCount(), 0);
  bool anyForeign = false;
  for (MsgId id : promote) {
    if (const auto idx = graph_.indexOf(id)) {
      WFD_ENSURE_MSG(!emitted[*idx], "promote sequence contains duplicates");
      emitted[*idx] = 1;
    } else {
      anyForeign = true;
    }
  }
  if (anyForeign) {
    // Ids this graph has never seen can't collide with the flag array;
    // validate uniqueness of the whole sequence the general way.
    std::vector<MsgId> sorted = promote;
    std::sort(sorted.begin(), sorted.end());
    WFD_ENSURE_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "promote sequence contains duplicates");
  }
  std::vector<MsgId> out = promote;
  // Walk the full topological order; a message is appended only when its
  // content is known AND all its predecessors were emitted. A blocked
  // message blocks its causal descendants (their predecessor flags stay
  // unset) but nothing else.
  const auto order =
      graph_.topoSortIndices([](MsgId a, MsgId b) { return a < b; });
  WFD_ENSURE_MSG(order.has_value(), "causality graph must be acyclic");
  for (std::uint32_t idx : *order) {
    if (emitted[idx]) continue;
    bool ready = bodyKnown_[idx] != 0;
    if (ready) {
      for (std::uint32_t pred : graph_.predIndices(idx)) {
        if (!emitted[pred]) {
          ready = false;
          break;
        }
      }
    }
    if (ready) {
      out.push_back(graph_.nodeAt(idx));
      emitted[idx] = 1;
    }
  }
  // Post-condition: out respects every edge of the graph. The prefix does
  // by the algorithm's invariant; appended messages were emitted only
  // after all their predecessors, and no edge can point from an appended
  // message to a prefix message (all in-edges of a message exist from
  // its creation).
  return out;
}

const std::vector<MsgId>& CausalityGraph::extendPromote() {
  for (;;) {
    // Compact the ready frontier, dropping entries invalidated since they
    // were queued (an edge learned later can re-block a node).
    std::size_t valid = 0;
    for (const std::uint32_t i : ready_) {
      if (!readyFlag_[i]) continue;  // emitted meanwhile
      if (emitted_[i] || unmetPreds_[i] != 0 || !bodyKnown_[i]) {
        readyFlag_[i] = 0;  // refreshNode re-queues it if it recovers
        continue;
      }
      ready_[valid++] = i;
    }
    ready_.resize(valid);
    if (ready_.empty()) return promoteSeq_;
    if (ready_.size() == 1) {
      // Exactly one node is promotable: it is necessarily the next
      // element of the canonical batch order (the first promotable node
      // in topological order has no unemitted promotable ancestor, and
      // here there is only one candidate), so append it directly and
      // cascade into whatever its emission released.
      const std::uint32_t i = ready_[0];
      ready_.clear();
      emitNode(i);
      continue;
    }
    // Several nodes became promotable in one event (e.g. a union healing
    // a partition): fall back to the full walk for the canonical order.
    emitBatch();
    ready_.clear();
    return promoteSeq_;
  }
}

const std::vector<MsgId>& CausalityGraph::resetPromote(
    const std::vector<MsgId>& base) {
  syncNodeArrays();
  std::fill(emitted_.begin(), emitted_.end(), 0);
  std::fill(readyFlag_.begin(), readyFlag_.end(), 0);
  ready_.clear();
  bool anyForeign = false;
  for (MsgId id : base) {
    if (const auto idx = graph_.indexOf(id)) {
      WFD_ENSURE_MSG(!emitted_[*idx], "promote sequence contains duplicates");
      emitted_[*idx] = 1;
    } else {
      anyForeign = true;
    }
  }
  if (anyForeign) {
    std::vector<MsgId> sorted = base;
    std::sort(sorted.begin(), sorted.end());
    WFD_ENSURE_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "promote sequence contains duplicates");
  }
  promoteSeq_ = base;
  for (std::uint32_t i = 0; i < graph_.nodeCount(); ++i) {
    if (emitted_[i]) {
      unmetPreds_[i] = 0;
      continue;
    }
    refreshNode(i);
  }
  return extendPromote();
}

void CausalityGraph::syncNodeArrays() {
  const std::size_t n = graph_.nodeCount();
  if (bodies_.size() == n) return;
  bodies_.resize(n);
  bodyKnown_.resize(n, 0);
  emitted_.resize(n, 0);
  unmetPreds_.resize(n, 0);
  readyFlag_.resize(n, 0);
}

void CausalityGraph::refreshNode(std::uint32_t i) {
  std::uint32_t unmet = 0;
  for (const std::uint32_t p : graph_.predIndices(i)) {
    if (!emitted_[p]) ++unmet;
  }
  unmetPreds_[i] = unmet;
  if (unmet == 0 && bodyKnown_[i] && !emitted_[i]) pushReady(i);
}

void CausalityGraph::pushReady(std::uint32_t i) {
  if (readyFlag_[i]) return;
  readyFlag_[i] = 1;
  ready_.push_back(i);
}

void CausalityGraph::emitNode(std::uint32_t i) {
  promoteSeq_.push_back(graph_.nodeAt(i));
  emitted_[i] = 1;
  readyFlag_[i] = 0;
  for (const std::uint32_t s : graph_.succIndices(i)) {
    if (emitted_[s]) continue;
    WFD_DCHECK(unmetPreds_[s] > 0);
    if (--unmetPreds_[s] == 0 && bodyKnown_[s]) pushReady(s);
  }
}

void CausalityGraph::emitBatch() {
  const auto order =
      graph_.topoSortIndices([](MsgId a, MsgId b) { return a < b; });
  WFD_ENSURE_MSG(order.has_value(), "causality graph must be acyclic");
  for (const std::uint32_t idx : *order) {
    if (emitted_[idx] || !bodyKnown_[idx] || unmetPreds_[idx] != 0) continue;
    emitNode(idx);
  }
}

void CausalityGraph::collapseDominated(const std::vector<MsgId>& deps,
                                       std::vector<MsgId>& out) {
  out.clear();
  if (deps.size() < 2) {
    out.assign(deps.begin(), deps.end());
    return;
  }
  // One multi-source BACKWARD flood from all deps: a node stamped here is
  // a strict ancestor of some dep (acyclicity rules out self-paths), so a
  // dep that ends up stamped reaches another dep and is dominated. This
  // replaces the former O(deps²) pairwise reaches() scan — the cubic term
  // of the E8 profile once autoCausal inflates the dep list.
  if (visitStamp_.size() < graph_.nodeCount()) {
    visitStamp_.resize(graph_.nodeCount(), 0);
  }
  if (++visitEpoch_ == 0) {
    std::fill(visitStamp_.begin(), visitStamp_.end(), 0);
    visitEpoch_ = 1;
  }
  floodStack_.clear();
  for (MsgId d : deps) {
    if (const auto idx = graph_.indexOf(d)) floodStack_.push_back(*idx);
  }
  while (!floodStack_.empty()) {
    const std::uint32_t cur = floodStack_.back();
    floodStack_.pop_back();
    for (const std::uint32_t nxt : graph_.predIndices(cur)) {
      if (visitStamp_[nxt] == visitEpoch_) continue;
      visitStamp_[nxt] = visitEpoch_;
      floodStack_.push_back(nxt);
    }
  }
  for (MsgId d : deps) {
    const auto idx = graph_.indexOf(d);
    const bool dominated = idx.has_value() && visitStamp_[*idx] == visitEpoch_;
    if (!dominated) out.push_back(d);
  }
  WFD_DCHECK(noDominatedSource(deps, out));
}

bool CausalityGraph::noDominatedSource(const std::vector<MsgId>& deps,
                                       const std::vector<MsgId>& sources) const {
  // Debug-only mirror of the pre-flood pairwise dominance scan; the flood
  // must select exactly the deps the scan would have kept.
  std::vector<MsgId> expect;
  for (MsgId d : deps) {
    bool dominated = false;
    for (MsgId other : deps) {
      if (other != d && graph_.reaches(d, other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) expect.push_back(d);
  }
  return expect == sources;
}

}  // namespace wfd
