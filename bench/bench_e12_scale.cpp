// E12 — Big-cluster scaling: events/sec and wall time vs n.
//
// Claim (engineering, not paper): after the PR-7 data-path work (flat
// Digraph adjacency, FD epoch caches, indexed partition lookups) the
// simulator steps deployment-sized clusters at interactive speed — the
// n=256 Omega->EC shape finishes a full horizon in about a second, and
// eTOB's residual growth is the protocol's own causality-graph exchange
// (ROADMAP E8), not simulator bookkeeping.
//
// Method: three curves over n in {5, 16, 64, 128, 256}, all built from
// the scale-family shapes (scenario/scale_scenarios.h — the SAME shapes
// the digest pins and n=64 smokes run, so these numbers describe tested
// behavior):
//
//   etob       all-write eTOB, capped at n=64. Every process broadcasts,
//              so delivered history grows with n and each delivery walks
//              a causality graph of that size — the protocol term. At
//              n=128 this costs ~30 s and at n=256 ~13 min for one run;
//              those points buy no simulator information, so the curve
//              stops where the protocol takes over.
//   etob-w4    eTOB with workload.writers = 4: fixed input volume, so
//              the curve isolates the simulator's per-link/per-step cost
//              and extends to n=256 (the few-writers/many-replicas
//              deployment shape, same knob the catalog uses).
//   omega-ec   all-write Omega->EC to n=256; per-event cost is O(1) in
//              n after the rewrites, so events/sec stays near-flat.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "scenario/scale_scenarios.h"

namespace wfd::bench {
namespace {

constexpr Time kHorizon = 6000;

struct Curve {
  const char* name;
  AlgoStack stack;
  std::size_t writers;  // 0 = all-write
  std::size_t maxN;
};

constexpr Curve kCurves[] = {
    {"etob", AlgoStack::kEtob, 0, 64},
    {"etob-w4", AlgoStack::kEtob, 4, 256},
    {"omega-ec", AlgoStack::kOmegaEc, 0, 256},
};

constexpr std::size_t kSizes[] = {5, 16, 64, 128, 256};

struct RunStats {
  std::uint64_t events = 0;
  double seconds = 0.0;
};

RunStats runOnce(const Curve& c, std::size_t n, std::uint64_t seed) {
  Scenario s = scaletest::scaleScenario(c.stack, n, kHorizon);
  s.workload.writers = c.writers;
  ScenarioInstance inst = instantiateScenario(s, seed);
  const auto start = std::chrono::steady_clock::now();
  inst.sim->run();
  const auto end = std::chrono::steady_clock::now();
  RunStats r;
  r.events = inst.sim->eventsProcessed();
  r.seconds = std::chrono::duration<double>(end - start).count();
  return r;
}

void printTable() {
  std::printf(
      "E12: scale sweep over the scale-family shapes, horizon %llu\n"
      "(expect: events/sec near-flat in n for omega-ec and etob-w4 —\n"
      " per-event cost is O(1) after the PR-7 rewrites; all-write etob\n"
      " decays with n as the protocol's causality-graph exchange grows)\n\n",
      static_cast<unsigned long long>(kHorizon));
  Table t({"curve", "n", "events", "wall_ms", "events/sec"});
  for (const Curve& c : kCurves) {
    for (std::size_t n : kSizes) {
      if (n > c.maxN) continue;
      const RunStats r = runOnce(c, n, 1);
      t.row({c.name, std::to_string(n), std::to_string(r.events),
             fmt(r.seconds * 1e3, 1), fmt(r.events / r.seconds, 0)});
    }
  }
  std::printf("\n");
}

void BM_Scale(benchmark::State& state, const Curve& c) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const RunStats r = runOnce(c, n, seed++);
    benchmark::DoNotOptimize(r);
    events += r.events;
    seconds += r.seconds;
  }
  state.counters["events_per_sec"] = events / seconds;
}

void BM_ScaleEtob(benchmark::State& state) {
  BM_Scale(state, kCurves[0]);
}
void BM_ScaleEtobW4(benchmark::State& state) {
  BM_Scale(state, kCurves[1]);
}
void BM_ScaleOmegaEc(benchmark::State& state) {
  BM_Scale(state, kCurves[2]);
}

BENCHMARK(BM_ScaleEtob)
    ->Arg(5)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleEtobW4)
    ->Arg(5)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleOmegaEc)
    ->Arg(5)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
