// The reduction algorithm T_{D->Omega} (Appendix B.7, Figure 6,
// generalized to eventual consensus per Section 4).
//
// Each process runs two tasks:
//  * communication (Figure 1): every λ-step it queries its failure
//    detector module D, appends the sample to its DAG G_p, and gossips
//    the DAG to everyone; received DAGs are merged.
//  * computation (Figure 6): periodically it analyses the runs of the
//    target EC algorithm A simulated over G_p's stimuli — locating the
//    first k-bivalent vertex (Algorithm 3) and the smallest decision
//    gadget below it — and outputs the gadget's deciding process as its
//    current Omega estimate.
//
// Once the correct processes' DAGs converge (sampling is capped, so they
// do), the analysis is a deterministic function of the common DAG: all
// correct processes stabilize on the same correct leader — Omega emulated.
//
// Property provided (completeness/accuracy form): the stream of
// LeaderEstimate outputs is a valid Omega history for the run's failure
// pattern —
//  * Omega-Completeness: eventually no correct process's estimate is a
//    crashed process (crashed candidates stop being deciding processes of
//    any minimal gadget once the DAGs reflect their silence);
//  * Omega-Accuracy: eventually every correct process outputs the SAME
//    correct process forever (the estimate is a deterministic function of
//    the converged common DAG).
// This holds for ANY input detector D whose histories let the target
// algorithm A solve EC — that is exactly Theorem 2's necessity direction.
#pragma once

#include <cstdint>

#include "cht/fd_dag.h"
#include "cht/simulation_tree.h"
#include "common/types.h"
#include "ec/omega_ec.h"
#include "sim/automaton.h"
#include "sim/fd_adapter.h"

namespace wfd {

/// Target factory for the canonical case: A = Algorithm 4 (EC from Omega),
/// reading ctx.fd.leader directly.
inline TargetFactory omegaEcTarget() {
  return [](ProcessId, std::size_t) { return std::make_unique<OmegaEcAutomaton>(); };
}

/// Target factory for D = ◊P-style histories: A = Algorithm 4 over the
/// classical suspect-list -> leader reduction. Demonstrates that the
/// extractor works for ANY D solving EC, not just Omega itself.
inline TargetFactory suspectBasedEcTarget() {
  return [](ProcessId, std::size_t) {
    return std::make_unique<FdAdaptedAutomaton<OmegaEcAutomaton>>(
        OmegaEcAutomaton{}, leaderFromSuspects());
  };
}

/// Output event: this process's current emulated Omega value (emitted on
/// every change; the live estimate is the last one output).
struct LeaderEstimate {
  ProcessId leader = kNoProcess;
};

struct ChtConfig {
  TreeLimits limits;
  /// Own-sample cap: after this many local queries the process stops
  /// growing its DAG (bounding the limit DAG so extraction stabilizes in
  /// finite runs; the paper's limit argument needs no cap).
  std::size_t maxOwnSamples = 48;
  /// λ-steps between extractions (tree analysis is the expensive part).
  std::uint64_t extractEvery = 16;
};

class ChtExtractorAutomaton final
    : public CloneableAutomaton<ChtExtractorAutomaton> {
 public:
  ChtExtractorAutomaton(TargetFactory factory, std::size_t processCount,
                        ChtConfig config);

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  const FdDag& dag() const { return dag_; }
  ProcessId currentEstimate() const { return estimate_; }
  std::uint64_t extractionsRun() const { return extractions_; }

 private:
  void extract(const StepContext& ctx, Effects& fx);

  TargetFactory factory_;
  std::size_t processCount_;
  ChtConfig config_;
  FdDag dag_;
  std::size_t ownSamples_ = 0;
  bool dagChangedSinceGossip_ = false;
  std::uint64_t lambdasSinceExtract_ = 0;
  ProcessId estimate_ = kNoProcess;
  std::uint64_t extractions_ = 0;
};

}  // namespace wfd
