// RandomScheduleModel: the network half of a FuzzPlan, realized as one
// NetworkModel composed from the PR-2 decorators.
//
// The plan's network genome (base delays, optional slow-process links,
// optional duplication+reordering, optional per-process clock skew,
// partition windows) is lowered to the decorator stack
//
//     PartitionModel( OneWayOutageModel( GilbertElliottLossModel(
//         IidLossModel( ClockSkewModel( ChaosLinkModel( base ) ) ) ) ) )
//
// with PartitionModel outermost, per the canonical rank order in
// sim/network_model.h (partitions > lossy > clock skew > chaos > base;
// jitter applied outside a partition could move a deferred arrival back
// inside a later window, and loss draws key on post-skew arrival
// times). Every layer is omitted when the plan disables it, so a fully
// quiet genome is exactly the legacy UniformDelayModel. Because all
// randomness still flows through the simulator's Rng, a (plan) value
// fully determines the run; the ctor re-checks the composed stack with
// ensureCanonicalComposition.
#pragma once

#include <memory>
#include <string>

#include "explore/fuzz_plan.h"
#include "sim/network_model.h"

namespace wfd {

class RandomScheduleModel final : public NetworkModel {
 public:
  /// Requires planAdmissibilityViolations(plan).empty() for the network
  /// fields (WFD_ENSUREs the structural ones it depends on).
  explicit RandomScheduleModel(const FuzzPlan& plan);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  /// True iff the plan's loss genome is active — this is what arms the
  /// simulator's retransmission layer for lossy fuzz plans.
  bool mayDrop() const override;
  /// Transparent for composition checking: reports the composed stack's
  /// outermost rank and chains into it, so ensureCanonicalComposition
  /// walks the real decorators.
  int compositionRank() const override;
  const NetworkModel* innerModel() const override;
  /// "random[<composed stack name>]" — diagnostics show the genome.
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
};

}  // namespace wfd
