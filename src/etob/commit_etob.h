// ET OB with committed-prefix indications — the extension sketched in the
// paper's Concluding Remarks (§7):
//
//   "such systems sometimes produce indications when a prefix of
//    operations on the replicated service is committed, i.e., is not
//    subject to further changes. A prefix of operations can be committed,
//    e.g., in sufficiently long periods of synchrony, when a majority of
//    correct processes elect the same leader and all incoming and
//    outgoing messages of the leader to the correct majority are
//    delivered within some fixed bound. We believe that such indications
//    could easily be implemented, during the stable periods, on top of
//    ETOB."
//
// Mechanism (on top of Algorithm 5):
//  * followers acknowledge each adopted promote epoch back to its leader;
//  * when a majority acknowledged epoch e, the leader marks the sequence
//    it promoted at e as committed and broadcasts it (content included);
//  * every process refuses to adopt a promote that contradicts its local
//    committed prefix, and every leader rebuilds its promote sequence to
//    extend any newly learned committed prefix;
//  * CONFLICTING commits (reachable only outside the §7 proviso, when two
//    pre-stabilization leaders each gather a majority of stale
//    acknowledgments) resolve by a deterministic strength join — longer
//    wins, equal lengths tie-break to the lexicographically smaller
//    sequence — so every correct process converges on the same committed
//    prefix and eTOB's eventual agreement survives; the losing process's
//    indication is revoked, which is why commit safety is asserted only
//    for proviso runs (the scenario catalog) and not by the fuzz oracle
//    (docs/FUZZING.md).
//
// The guarantees match §7's proviso: indications are produced only while
// a majority acknowledges the same leader (they stop, rather than lie,
// when the majority is gone — benched in E10), and in the runs covered by
// the proviso a committed prefix is never revoked at any correct process
// (checked by checkCommitSafety over every test run). Omega remains the
// only failure detector input — exactly the paper's "Ω is necessary for
// such systems too".
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "etob/causality_graph.h"
#include "etob/etob_automaton.h"
#include "sim/app_msg.h"
#include "sim/automaton.h"

namespace wfd {

/// Output event: this process learned that the first `length` entries of
/// its delivery sequence are committed (never change again under the §7
/// proviso).
struct CommittedPrefix {
  std::uint64_t length = 0;
};

/// Wire messages (update/delta/promote reuse the ETOB structures).
struct EtobAckMsg {
  std::uint64_t epoch = 0;
};
struct EtobCommitMsg {
  /// The committed sequence, content included (receivers may not have
  /// seen some update messages yet).
  std::vector<AppMsg> prefix;
};

class CommitEtobAutomaton final : public CloneableAutomaton<CommitEtobAutomaton> {
 public:
  explicit CommitEtobAutomaton(EtobConfig config = {});

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override;
  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override;
  void onTimeout(const StepContext& ctx, Effects& fx) override;

  /// BroadcastAutomatonLike.
  const std::vector<MsgId>& delivered() const { return d_; }
  const AppMsg* findMessage(MsgId id) const;

  const std::vector<MsgId>& committedPrefix() const { return committed_; }
  /// Conflicting committed prefixes observed (0 under the §7 proviso).
  std::uint64_t commitConflicts() const { return commitConflicts_; }
  /// Promote-learned bodies not yet backed by the causality graph.
  std::size_t adoptedBodyCount() const { return adoptedBodies_.size(); }

 private:
  void updatePromote();
  void pruneAdopted(const CausalityGraph& learned);
  void adoptCommit(const std::vector<AppMsg>& prefix, Effects& fx);
  bool extendsCommitted(const std::vector<MsgId>& seq) const;

  EtobConfig config_;
  std::vector<MsgId> d_;
  CausalityGraph cg_;  // also maintains promote_i incrementally
  std::unordered_map<MsgId, AppMsg> adoptedBodies_;

  // Promote epochs and delta reconstruction (as in EtobAutomaton).
  std::uint64_t promoteEpoch_ = 0;
  std::unordered_map<ProcessId, std::uint64_t> adoptedEpoch_;
  std::unordered_map<ProcessId, PromoteChain> chains_;
  std::size_t lastSentLen_ = 0;
  /// adoptCommit can REBASE the promote sequence (it is no longer an
  /// extension of what was last sent), so the next promote must be a
  /// full snapshot rather than a delta.
  bool rebasedSinceLastSent_ = true;

  // Commit machinery.
  std::vector<MsgId> committed_;
  std::map<std::uint64_t, std::vector<MsgId>> epochSeq_;  // my promoted seqs
  std::map<std::uint64_t, std::set<ProcessId>> acks_;
  std::uint64_t commitConflicts_ = 0;
};

}  // namespace wfd
