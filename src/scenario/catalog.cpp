// The named scenario catalog. Every entry is a complete, deterministic
// run description; tests sweep all of them (tests/test_scenarios.cpp),
// the wfd_scenarios CLI runs and lists them, and benches reference them
// as base setups. docs/SCENARIOS.md carries the human-readable table —
// scripts/check_docs_links.sh cross-checks it against this registry.
#include "scenario/scenario.h"

#include "common/ensure.h"
#include "fd/robust_fd.h"
#include "sim/lossy_model.h"

namespace wfd {

namespace {

/// Baseline scheduler parameters shared by most entries; individual
/// scenarios override fields after calling this.
SimConfig baseConfig(std::size_t n, Time maxTime) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.maxTime = maxTime;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

BroadcastWorkload standardWorkload(Time start, std::size_t perProcess,
                                   Time interval = 50) {
  BroadcastWorkload w;
  w.start = start;
  w.interval = interval;
  w.perProcess = perProcess;
  return w;
}

std::shared_ptr<const NetworkModel> uniformOf(const SimConfig& cfg) {
  return std::make_shared<UniformDelayModel>(cfg.minDelay, cfg.maxDelay,
                                             cfg.fixedDelay);
}

CheckerSet etobChecks(bool strong = false) {
  CheckerSet c;
  c.broadcast = true;
  c.convergence = true;
  c.requireStrongTob = strong;
  return c;
}

/// The Gilbert–Elliott burst shape shared by the lossy-burst-* entries:
/// a ~400-tick burst roughly every other 2000-tick frame, 90% loss
/// inside, lossless outside, quiet from `activeUntil` on. The SAME
/// config feeds both the network model and (via burstWindowsOf) the
/// adaptive failure detectors, so the FD sees exactly the bursts the
/// network produces.
GilbertElliottLossModel::Config burstShape(Time activeUntil,
                                           std::uint64_t seed) {
  GilbertElliottLossModel::Config c;
  c.framePeriod = 2000;
  c.burstNum = 1;
  c.burstDen = 2;
  c.burstLen = 400;
  c.dropInNum = 9;
  c.dropInDen = 10;
  c.dropOutNum = 0;
  c.dropOutDen = 1;
  c.seed = seed;
  c.correlated = true;
  c.activeUntil = activeUntil;
  return c;
}

std::vector<std::pair<Time, Time>> burstWindowsOf(
    const GilbertElliottLossModel::Config& c, Time horizon) {
  // Any inner model works: the burst schedule is a pure function of the
  // config (correlated => the link arguments are ignored too).
  const GilbertElliottLossModel model(
      std::make_shared<UniformDelayModel>(1, 1), c);
  return model.burstWindowsUpTo(horizon, 0, 1);
}

std::vector<Scenario> buildCatalog() {
  std::vector<Scenario> catalog;

  // ---- Baseline leaders and stabilization shapes (uniform network) ----
  {
    Scenario s;
    s.name = "stable-leader";
    s.description =
        "n=3, no failures, Omega stable from t=0: Algorithm 5 must give "
        "STRONG total order broadcast (paper property (2)) — zero "
        "revocations, tau-hat = 0.";
    s.config = baseConfig(3, 20000);
    s.tauOmega = 0;
    s.omegaMode = OmegaPreStabilization::kStable;
    s.workload = standardWorkload(100, 8);
    s.checks = etobChecks(/*strong=*/true);
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "split-brain-heal";
    s.description =
        "n=3, every process trusts a different leader until tau_Omega=1500, "
        "then Omega stabilizes: sequences may diverge during the partition "
        "period but converge by tau_Omega + dt + dc.";
    s.config = baseConfig(3, 20000);
    s.tauOmega = 1500;
    s.workload = standardWorkload(100, 8);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "rotating-omega";
    s.description =
        "n=4, all processes agree on a leader that rotates over the whole "
        "process set until tau_Omega=2000 — models synchronized but wrong "
        "elections rather than split brain.";
    s.config = baseConfig(4, 25000);
    s.tauOmega = 2000;
    s.omegaMode = OmegaPreStabilization::kRotating;
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }

  // ---- Crash patterns ----
  {
    Scenario s;
    s.name = "minority-crash";
    s.description =
        "n=5, two processes crash at t=1500 while the workload is in "
        "flight; Omega stabilizes at 2500 on a correct leader.";
    s.config = baseConfig(5, 30000);
    s.pattern = [](std::size_t n) { return Environments::minorityCrash(n, 1500); };
    s.tauOmega = 2500;
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "majority-crash-etob";
    s.description =
        "n=5, THREE processes crash at t=2000 and every broadcast happens "
        "after the majority is gone: ETOB keeps delivering (eventual "
        "consistency needs only Omega — the Sigma gap, paper §1/§4).";
    s.config = baseConfig(5, 30000);
    s.pattern = [](std::size_t n) { return Environments::majorityCrash(n, 2000); };
    s.tauOmega = 2500;
    s.workload = standardWorkload(3000, 8);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "staggered-churn";
    s.description =
        "n=6, two highest-id processes crash 400 ticks apart starting at "
        "t=1000, under a rotating Omega that stabilizes late (t=2500).";
    s.config = baseConfig(6, 30000);
    s.pattern = [](std::size_t n) {
      return Environments::staggeredCrashes(n, 2, 1000, 400);
    };
    s.tauOmega = 2500;
    s.omegaMode = OmegaPreStabilization::kRotating;
    s.workload = standardWorkload(100, 5);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }

  // ---- Adversarial network models ----
  {
    Scenario s;
    s.name = "flaky-majority-link";
    s.description =
        "n=5, every link between the eventual leader (p0) and the rest "
        "duplicates (p=1/3, up to 2 extra copies) and jitters by up to 50 "
        "ticks: the automaton boundary must still see exactly-once, "
        "causally ordered deliveries.";
    s.config = baseConfig(5, 30000);
    s.tauOmega = 1000;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      ChaosLinkModel::Config chaos;
      chaos.dupNum = 1;
      chaos.dupDen = 3;
      chaos.maxExtraCopies = 2;
      chaos.reorderJitter = 50;
      chaos.affects = [](ProcessId from, ProcessId to) {
        return from == 0 || to == 0;
      };
      return std::make_shared<ChaosLinkModel>(uniformOf(cfg), chaos);
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "dup-reorder-storm";
    s.description =
        "n=4, EVERY link duplicates with p=1/2 (up to 3 extra copies) and "
        "jitters by up to 80 ticks — a hostile but admissible network; "
        "no-duplication and causal order must survive unscathed.";
    s.config = baseConfig(4, 30000);
    s.tauOmega = 1200;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      ChaosLinkModel::Config chaos;
      chaos.dupNum = 1;
      chaos.dupDen = 2;
      chaos.maxExtraCopies = 3;
      chaos.reorderJitter = 80;
      return std::make_shared<ChaosLinkModel>(uniformOf(cfg), chaos);
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "skewed-clocks";
    s.description =
        "n=4, per-process clock skew on the lambda-step period spreading "
        "from 3x slower (p0) to 2x faster (p3): every Delta_t-based "
        "convergence argument is stressed, admissibility is kept (every "
        "process still steps forever).";
    s.config = baseConfig(4, 30000);
    s.tauOmega = 1500;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      return ClockSkewModel::spread(uniformOf(cfg), cfg.processCount,
                                    ClockSkewModel::Skew{3, 1},
                                    ClockSkewModel::Skew{1, 2});
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "partition-heal-storm";
    s.description =
        "n=4, p3 is periodically isolated (400-tick windows every 1500 "
        "ticks, forever): deliveries defer past each window and the "
        "sequences re-converge in every gap.";
    s.config = baseConfig(4, 30000);
    s.tauOmega = 1000;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      PartitionSpec storm;
      storm.start = 500;
      storm.width = 400;
      storm.period = 1500;
      storm.affects = [](ProcessId from, ProcessId to) {
        return from == 3 || to == 3;
      };
      return std::make_shared<PartitionModel>(
          uniformOf(cfg), std::vector<PartitionSpec>{storm});
    };
    s.workload = standardWorkload(100, 5);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "adversarial-blackout";
    s.description =
        "n=4, a one-shot TOTAL blackout [800, 2300) on every link while "
        "Omega is still split-brain: all in-flight traffic defers to the "
        "heal point, then the run must converge normally.";
    s.config = baseConfig(4, 25000);
    s.tauOmega = 1000;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      PartitionSpec blackout;
      blackout.start = 800;
      blackout.width = 1500;
      blackout.period = 0;  // one-shot
      return std::make_shared<PartitionModel>(
          uniformOf(cfg), std::vector<PartitionSpec>{blackout});
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "asymmetric-slow-leader";
    s.description =
        "n=4, every link touching the eventual leader (p0) is 4x slower "
        "than the rest: promotes crawl, but the convergence bound only "
        "stretches — it never breaks.";
    s.config = baseConfig(4, 30000);
    s.tauOmega = 1000;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      return AsymmetricDelayModel::slowProcess(cfg.minDelay, cfg.maxDelay,
                                               /*slow=*/0, /*factor=*/4);
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }

  // ---- Other algorithm stacks over the same machinery ----
  {
    Scenario s;
    s.name = "tob-baseline-stable";
    s.description =
        "n=3, the classical consensus-based TOB baseline with a correct "
        "majority: all six TOB properties from time 0 (strong TOB), at "
        "three communication steps per delivery.";
    s.config = baseConfig(3, 30000);
    s.tauOmega = 0;
    s.omegaMode = OmegaPreStabilization::kStable;
    s.stack = AlgoStack::kTobViaConsensus;
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks(/*strong=*/true);
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "tob-minority-crash";
    s.description =
        "n=5, consensus-based TOB with two crashes at t=1500: the majority "
        "survives, so the baseline still delivers everything in one total "
        "order.";
    s.config = baseConfig(5, 40000);
    s.pattern = [](std::size_t n) { return Environments::minorityCrash(n, 1500); };
    s.tauOmega = 2000;
    s.stack = AlgoStack::kTobViaConsensus;
    s.workload = standardWorkload(100, 5);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "commit-stable-majority";
    s.description =
        "n=3, the §7 committed-prefix extension under a stable leader and "
        "a correct majority: indications must advance and no committed "
        "prefix may ever be revoked.";
    s.config = baseConfig(3, 25000);
    s.tauOmega = 0;
    s.omegaMode = OmegaPreStabilization::kStable;
    s.stack = AlgoStack::kCommitEtob;
    s.workload = standardWorkload(150, 6);
    s.checks = etobChecks();
    s.checks.commit = true;
    s.checks.requireCommitProgress = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "commit-majority-crash";
    s.description =
        "n=5, committed prefixes with THREE crashes at t=2000: commits may "
        "stop advancing (the §7 proviso is gone) but must never be revoked, "
        "while deliveries continue on Omega alone.";
    s.config = baseConfig(5, 30000);
    s.pattern = [](std::size_t n) { return Environments::majorityCrash(n, 2000); };
    s.tauOmega = 1000;
    s.omegaMode = OmegaPreStabilization::kRotating;
    s.stack = AlgoStack::kCommitEtob;
    s.workload = standardWorkload(150, 5);
    s.checks = etobChecks();
    s.checks.commit = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "gossip-lww-convergence";
    s.description =
        "n=4, the Dynamo-style gossip/LWW strawman on an LWW-put workload: "
        "replicas converge to identical tables (eventual consistency as "
        "deployed — no order guarantees, contrast with ETOB in E5).";
    s.config = baseConfig(4, 20000);
    s.detector = [](const FailurePattern& fp) {
      return std::make_shared<PerfectFd>(fp);
    };
    s.stack = AlgoStack::kGossipLww;
    s.workload = standardWorkload(100, 5);
    s.workload.lwwPutBodies = true;
    s.checks.gossipConvergence = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "ec-omega-split-brain";
    s.description =
        "n=3, Algorithm 4 (EC from Omega) under the standing proposal "
        "driver with split-brain Omega until t=1000: integrity and "
        "validity always, termination for every instance, and an agreed "
        "suffix — the instance count is sized so the driver is still "
        "proposing well after Omega stabilizes (early instances may "
        "disagree; late ones must not).";
    s.config = baseConfig(3, 25000);
    s.tauOmega = 1000;
    s.stack = AlgoStack::kOmegaEc;
    s.ecInstances = 60;
    s.checks.ec = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "skewed-chaos-combo";
    s.description =
        "n=4, composition stress: clock skew OVER duplication+reordering "
        "OVER uniform delay — three decorated models in one stack, still "
        "an admissible run.";
    s.config = baseConfig(4, 30000);
    s.tauOmega = 1500;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      ChaosLinkModel::Config chaos;
      chaos.dupNum = 1;
      chaos.dupDen = 4;
      chaos.maxExtraCopies = 2;
      chaos.reorderJitter = 40;
      auto chaotic = std::make_shared<ChaosLinkModel>(uniformOf(cfg), chaos);
      return ClockSkewModel::spread(chaotic, cfg.processCount,
                                    ClockSkewModel::Skew{2, 1},
                                    ClockSkewModel::Skew{2, 3});
    };
    s.workload = standardWorkload(100, 5);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }

  // ---- Fair-lossy links (stubborn retransmission layer engaged) ----
  //
  // Every entry here uses a mayDrop() network, so the simulator runs the
  // full ack/retransmit/dedup machinery beneath the unchanged automata:
  // throughput degrades, safety must not. Loss is bounded in time
  // (activeUntil / one-shot windows) so convergence checkers get a clean
  // tail; the five stacks each appear at least once.
  {
    Scenario s;
    s.name = "lossy-iid-etob";
    s.description =
        "n=4, ETOB over i.i.d. 20% per-copy loss on every link until "
        "t=12000: the retransmission layer recovers every dropped copy "
        "and the broadcast/convergence checkers hold unchanged.";
    s.config = baseConfig(4, 30000);
    s.tauOmega = 1000;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      IidLossModel::Config loss;
      loss.num = 1;
      loss.den = 5;
      loss.activeUntil = 12000;
      return std::make_shared<IidLossModel>(uniformOf(cfg), loss);
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy-burst-etob";
    s.description =
        "n=4, ETOB through Gilbert-Elliott loss bursts (90% loss in "
        "~400-tick bursts until t=10000) with Omega DERIVED from an "
        "adaptive-heartbeat <>P that watches the same bursts: each burst "
        "splits the leadership, each re-stabilization doubles the "
        "timeout, and the run still converges.";
    s.config = baseConfig(4, 30000);
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      return std::make_shared<GilbertElliottLossModel>(
          uniformOf(cfg), burstShape(/*activeUntil=*/10000, /*seed=*/42));
    };
    s.detector = [](const FailurePattern& fp) {
      AdaptiveHeartbeatFd::Params hb;
      hb.heartbeatPeriod = 50;
      hb.initialTimeout = 150;
      hb.maxTimeout = 2000;
      hb.burstWindows = burstWindowsOf(burstShape(10000, 42), 10000);
      return std::make_shared<OmegaFromEventuallyPerfect>(
          std::make_shared<AdaptiveHeartbeatFd>(fp, hb), fp.size());
    };
    s.workload = standardWorkload(100, 6);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy-burst-commit";
    s.description =
        "n=3, committed prefixes through the same Gilbert-Elliott burst "
        "shape: indications may stall inside bursts but no committed "
        "prefix is ever revoked, and commits advance once the loss ends.";
    s.config = baseConfig(3, 30000);
    s.tauOmega = 500;
    s.stack = AlgoStack::kCommitEtob;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      return std::make_shared<GilbertElliottLossModel>(
          uniformOf(cfg), burstShape(/*activeUntil=*/8000, /*seed=*/7));
    };
    s.workload = standardWorkload(150, 5);
    s.checks = etobChecks();
    s.checks.commit = true;
    s.checks.requireCommitProgress = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy-oneway-tob";
    s.description =
        "n=3, consensus-based TOB across a RECURRING one-way cut (p2's "
        "outbound copies die for 300 of every 1500 ticks, forever) plus "
        "10% i.i.d. loss until t=10000: retransmissions land in the gaps "
        "and the total order never forks.";
    s.config = baseConfig(3, 40000);
    s.tauOmega = 1000;
    s.stack = AlgoStack::kTobViaConsensus;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      IidLossModel::Config loss;
      loss.num = 1;
      loss.den = 10;
      loss.activeUntil = 10000;
      auto iid = std::make_shared<IidLossModel>(uniformOf(cfg), loss);
      OutageSpec cut;
      cut.start = 600;
      cut.width = 300;
      cut.period = 1500;
      cut.from = 2;  // p2 -> anyone; p2 still hears the world
      return std::make_shared<OneWayOutageModel>(
          iid, std::vector<OutageSpec>{cut});
    };
    s.workload = standardWorkload(100, 5);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy-oneway-gossip";
    s.description =
        "n=4, gossip/LWW with a SWIM-style indirect-probe <>P: two "
        "one-shot one-way cuts around p3 (outbound [500,1500), inbound "
        "[2000,3000)) plus 1/8 i.i.d. loss until t=8000 — indirect "
        "probes keep rounds alive through cuts that kill direct pings, "
        "and all replicas converge.";
    s.config = baseConfig(4, 20000);
    s.stack = AlgoStack::kGossipLww;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      IidLossModel::Config loss;
      loss.num = 1;
      loss.den = 8;
      loss.activeUntil = 8000;
      auto iid = std::make_shared<IidLossModel>(uniformOf(cfg), loss);
      OutageSpec outbound;
      outbound.start = 500;
      outbound.width = 1000;
      outbound.from = 3;
      OutageSpec inbound;
      inbound.start = 2000;
      inbound.width = 1000;
      inbound.to = 3;
      return std::make_shared<OneWayOutageModel>(
          iid, std::vector<OutageSpec>{outbound, inbound});
    };
    s.detector = [](const FailurePattern& fp) {
      SwimFd::Params swim;
      swim.probePeriod = 100;
      swim.indirectRelays = 3;
      swim.seed = 11;
      swim.burstWindows = {{500, 1500}, {2000, 3000}};
      return std::make_shared<SwimFd>(fp, swim);
    };
    s.workload = standardWorkload(100, 5);
    s.workload.lwwPutBodies = true;
    s.checks.gossipConvergence = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy-gray-ec";
    s.description =
        "n=3, Algorithm 4 (EC from Omega) with p2 gray-failed until "
        "t=8000: its links are 3x slower and drop 1/8 of copies, its "
        "lambda-steps run at half speed — degraded but correct, so every "
        "instance must still terminate and agree on a suffix.";
    s.config = baseConfig(3, 30000);
    s.tauOmega = 1000;
    s.stack = AlgoStack::kOmegaEc;
    s.ecInstances = 40;
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      GrayFailureModel::Config gray;
      gray.process = 2;
      gray.delayNum = 3;
      gray.delayDen = 1;
      gray.lambdaNum = 2;
      gray.lambdaDen = 1;
      gray.lossNum = 1;
      gray.lossDen = 8;
      gray.activeUntil = 8000;
      return std::make_shared<GrayFailureModel>(uniformOf(cfg), gray);
    };
    s.checks.ec = true;
    catalog.push_back(std::move(s));
  }

  // ---- Large clusters (n = 64..256) ----
  //
  // The big-n family exercises the scale-oriented data paths (slim event
  // heap, indexed partitions, FD epoch caches) at deployment-like sizes.
  // These entries are EXCLUDED from the exhaustive per-entry sweeps in
  // tests/test_scenarios.cpp and tests/test_api.cpp (each catalog entry
  // runs ~10x across suites and again under ASan/TSan, which big-n runs
  // cannot afford); tests/test_large_cluster.cpp covers them once per
  // build instead. The isLargeClusterScenario() predicate is the single
  // switch both sides use.
  {
    Scenario s;
    s.name = "large-cluster-leader-256";
    s.description =
        "n=256, Algorithm 4 (EC from Omega) under a single stable leader: "
        "every process proposes 40 instances and all 256 decision "
        "histories must agree from instance 1 — the interactive-scale "
        "acceptance shape (full horizon in seconds, not minutes).";
    s.config = baseConfig(256, 20000);
    s.tauOmega = 0;
    s.omegaMode = OmegaPreStabilization::kStable;
    s.stack = AlgoStack::kOmegaEc;
    s.ecInstances = 40;
    s.checks.ec = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "large-cluster-cascade-64";
    s.description =
        "n=64, a rolling majority-crash cascade: 33 processes crash 50 "
        "ticks apart from t=1200 under a rotating Omega that stabilizes "
        "only after the cascade (t=3200); the surviving minority keeps "
        "delivering on Omega alone (the Sigma gap at scale).";
    s.config = baseConfig(64, 12000);
    s.pattern = [](std::size_t n) {
      return Environments::staggeredCrashes(n, n / 2 + 1, 1200, 50);
    };
    s.tauOmega = 3200;
    s.omegaMode = OmegaPreStabilization::kRotating;
    s.workload = standardWorkload(100, 2);
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "large-cluster-partitions-64";
    s.description =
        "n=64, two OVERLAPPING recurring partitions expressed through the "
        "flat component index (half/half every 900 ticks, a 16-process "
        "segment every 1100): deferrals chain across windows and the "
        "sequences re-converge in every common gap.";
    s.config = baseConfig(64, 8000);
    s.tauOmega = 800;
    s.workload = standardWorkload(100, 3);
    s.network = [](const SimConfig& cfg) -> std::shared_ptr<const NetworkModel> {
      PartitionSpec halves;
      halves.start = 400;
      halves.width = 300;
      halves.period = 900;
      halves.componentOf = PartitionSpec::splitAt(cfg.processCount,
                                                  cfg.processCount / 2);
      PartitionSpec segment;
      segment.start = 700;
      segment.width = 200;
      segment.period = 1100;
      segment.componentOf = PartitionSpec::splitAt(cfg.processCount, 16);
      return std::make_shared<PartitionModel>(
          uniformOf(cfg), std::vector<PartitionSpec>{halves, segment});
    };
    s.checks = etobChecks();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "large-cluster-gossip-128";
    s.description =
        "n=128, the gossip/LWW strawman at scale in the few-writers/"
        "many-replicas shape: 16 writers each issue one LWW put, then "
        "full-table anti-entropy until all 128 replicas hold identical "
        "tables (the writer cap is deliberate — gossip pays n^2 table "
        "merges per round, so table size must not also grow with n).";
    s.config = baseConfig(128, 1200);
    s.detector = [](const FailurePattern& fp) {
      return std::make_shared<PerfectFd>(fp);
    };
    s.stack = AlgoStack::kGossipLww;
    s.workload = standardWorkload(100, 1);
    s.workload.lwwPutBodies = true;
    s.workload.writers = 16;
    s.checks.gossipConvergence = true;
    catalog.push_back(std::move(s));
  }

  // Catalog invariant: names are unique (the registry is looked up by name).
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      WFD_ENSURE_MSG(catalog[i].name != catalog[j].name,
                     "duplicate scenario name in catalog");
    }
  }
  return catalog;
}

}  // namespace

const std::vector<Scenario>& scenarioCatalog() {
  static const std::vector<Scenario> catalog = buildCatalog();
  return catalog;
}

const Scenario* findScenario(const std::string& name) {
  for (const Scenario& s : scenarioCatalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace wfd
