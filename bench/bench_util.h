// Shared helpers for the experiment benches: table printing and the
// facade-backed cluster builders used across E1..E11.
//
// Benches no longer hand-roll simulator setup: each builder lowers a
// named catalog entry (src/scenario/catalog.cpp) to a ClusterSpec and
// applies the bench's swept knobs (config, pattern, tau_Omega,
// pre-stabilization mode) — the "scenario variant" idiom documented in
// docs/SCENARIOS.md, now expressed through the wfd::Cluster facade
// (docs/API.md). The bench schedules its own workload through
// Cluster::scheduleWorkload, so the variant's catalog workload is
// cleared.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/cluster.h"
#include "common/ensure.h"
#include "scenario/scenario.h"

namespace wfd::bench {

/// Prints a fixed-width row. Columns sized by the header call.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int colWidth = 14)
      : width_(colWidth), cols_(headers.size()) {
    std::string line;
    for (const auto& h : headers) line += pad(h);
    std::printf("%s\n", line.c_str());
    std::printf("%s\n", std::string(width_ * cols_, '-').c_str());
  }

  void row(const std::vector<std::string>& cells) {
    std::string line;
    for (const auto& c : cells) line += pad(c);
    std::printf("%s\n", line.c_str());
  }

 private:
  std::string pad(const std::string& s) const {
    std::string out = s;
    if (out.size() < static_cast<std::size_t>(width_)) {
      out += std::string(width_ - out.size(), ' ');
    }
    return out + " ";
  }
  int width_;
  std::size_t cols_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Cluster for a variant of catalog entry `base` with the bench's knobs
/// applied, seeded with cfg.seed. The variant keeps the entry's stack
/// but pins the bench's exact config, pattern and Omega parameters,
/// uses the uniform network from the config, and schedules no catalog
/// workload (benches drive their own via Cluster::scheduleWorkload).
inline Cluster makeScenarioCluster(const std::string& base, SimConfig cfg,
                                   FailurePattern fp, Time tauOmega,
                                   OmegaPreStabilization mode) {
  const Scenario* found = findScenario(base);
  WFD_ENSURE_MSG(found != nullptr, "unknown catalog scenario");
  ClusterSpec spec = clusterSpec(*found, cfg);
  spec.pattern = [fp = std::move(fp)](std::size_t) { return fp; };
  spec.tauOmega = tauOmega;
  spec.omegaMode = mode;
  // A custom detector factory on the base entry would silently win over
  // the tauOmega/mode arguments (the cluster only consults them when
  // detector is null) — clear it so the bench's knobs always apply.
  spec.detector = nullptr;
  spec.network = nullptr;        // uniform delay from the bench's config
  spec.workload.perProcess = 0;  // the bench schedules its own workload
  return Cluster(std::move(spec), cfg.seed);
}

/// ETOB cluster (Algorithm 5): variant of the "split-brain-heal" entry.
inline Cluster makeEtobCluster(SimConfig cfg, FailurePattern fp, Time tauOmega,
                               OmegaPreStabilization mode) {
  return makeScenarioCluster("split-brain-heal", cfg, std::move(fp), tauOmega,
                             mode);
}

/// TOB-via-consensus cluster: variant of the "tob-baseline-stable" entry.
inline Cluster makeTobCluster(SimConfig cfg, FailurePattern fp, Time tauOmega,
                              OmegaPreStabilization mode) {
  return makeScenarioCluster("tob-baseline-stable", cfg, std::move(fp),
                             tauOmega, mode);
}

}  // namespace wfd::bench
