// Randomized schedule exploration with counterexample shrinking.
//
// The explorer is the active counterpart of the passive checker layer:
// it samples admissible FuzzPlans from a single 64-bit seed, runs each
// one through the scenario driver, evaluates the stack's checkers as the
// oracle, and — on violation — delta-debugs the plan down to a minimal
// one that still violates the same clause. Minimal plans are what get
// saved to tests/corpus/ and replayed as regressions.
//
// Two oracles:
//  * kSpec — exactly the clauses that are theorems for every admissible
//    run of the stack (EC/eTOB/commit safety plus the liveness clauses
//    the sampler's settle margin makes fair). Any violation is a bug.
//  * kStrictTob — additionally asserts STRONG total order (tau-hat == 0)
//    on broadcast stacks. Under pre-stabilization disagreement this is
//    expected to fail: shrinking such a failure yields a minimal witness
//    of the eTOB/TOB separation (the paper's whole point), which is how
//    the committed corpus entries were produced.
//
// Everything is deterministic: plan i of (seed, stack) is the same plan
// in every invocation, shrinking uses no randomness, and the JSON line
// emitted per run contains no timing — so two equal invocations of
// wfd_explore produce byte-identical stdout.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/fuzz_plan.h"
#include "explore/plan_codec.h"
#include "scenario/scenario.h"

namespace wfd {

enum class FuzzOracle { kSpec, kStrictTob };

const char* fuzzOracleName(FuzzOracle oracle);
bool parseFuzzOracle(const std::string& name, FuzzOracle* out);

/// Lowers the plan to a Scenario under the oracle and runs it.
ScenarioRunResult runFuzzPlan(const FuzzPlan& plan, FuzzOracle oracle);

/// Stable identity of a violation: each failure clause truncated before
/// its " (" detail suffix, sorted and de-duplicated. Two runs violate
/// "the same property" iff their key sets intersect — the relation the
/// shrinker preserves.
std::vector<std::string> failureKeys(const ScenarioRunResult& result);

struct ShrinkResult {
  FuzzPlan plan;                 // the minimal failing plan
  ScenarioRunResult result;      // its run (still violating)
  std::uint64_t attempts = 0;    // candidate runs executed
  std::uint64_t accepted = 0;    // reductions that kept the violation
};

/// Greedy delta-debugging: candidate reductions (drop a crash, drop a
/// network layer, tighten a partition window, halve the workload / the
/// detector stabilization time / the instance count, drop a process) are
/// tried in a fixed order; a candidate is kept iff it is admissible and
/// still fails with at least one of the original failure keys. Restarts
/// from the first pass after every acceptance until a fixed point (or
/// the attempt budget) is reached. Deterministic when `keepGoing` is
/// null; a wall-clock budget polled via `keepGoing` stops the search
/// early and returns the best (smallest still-failing) plan so far.
/// `knownResult` (if given) must be `failing`'s own run result — it
/// spares re-simulating the largest plan of the whole search.
ShrinkResult shrinkFuzzPlan(const FuzzPlan& failing, FuzzOracle oracle,
                            std::uint64_t maxAttempts = 400,
                            const ScenarioRunResult* knownResult = nullptr,
                            const std::function<bool()>& keepGoing = nullptr);

struct ExploreOptions {
  AlgoStack stack = AlgoStack::kEtob;
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  FuzzOracle oracle = FuzzOracle::kSpec;
  bool shrink = true;
  std::uint64_t maxShrinkAttempts = 400;
};

struct ExploreViolation {
  std::uint64_t runIndex = 0;
  FuzzPlan plan;
  ScenarioRunResult result;
  ShrinkResult shrunken;
};

struct ExploreReport {
  std::uint64_t runsExecuted = 0;
  std::vector<ExploreViolation> violations;
};

/// Runs `options.runs` sampled plans. `onRun` (nullable) observes every
/// run in order; `keepGoing` (nullable) is polled before each run so a
/// caller can impose a wall-clock budget — stopping early only truncates
/// the run sequence, it never changes the runs that did execute.
ExploreReport explore(
    const ExploreOptions& options,
    const std::function<void(std::uint64_t, const FuzzPlan&,
                             const ScenarioRunResult&)>& onRun = nullptr,
    const std::function<bool()>& keepGoing = nullptr);

/// The canonical per-run JSON line wfd_explore prints (and the seed-
/// stability tests compare): sorted keys, no timing, plan referenced by
/// fingerprint so 200-run sweeps stay one short line per run.
std::string fuzzRunJsonLine(std::uint64_t runIndex, const FuzzPlan& plan,
                            const ScenarioRunResult& result);

/// Builds the corpus entry pinning `plan`'s outcome under `oracle` —
/// records the expected failure keys and the current stdlib's digest.
/// `knownResult` (if given) must be `plan`'s own run result under
/// `oracle`; otherwise the plan is run once here.
CorpusEntry makeCorpusEntry(std::string name, std::string foundBy,
                            const FuzzPlan& plan, FuzzOracle oracle,
                            const ScenarioRunResult* knownResult = nullptr);

/// Replays a corpus entry and compares the outcome against its
/// expectation. Returns true on match; mismatch descriptions are
/// appended to *whyNot when given. Outcome (pass/failure keys/digest) is
/// compared when the entry records a digest for this build's stdlib, or
/// records no digests at all (a declared schedule-independent plan); on
/// a foreign stdlib the replay still verifies the plan decodes and
/// simulates cleanly — run schedules are implementation-defined, so a
/// schedule-sensitive witness may legitimately behave differently there.
bool replayCorpusEntry(const CorpusEntry& entry, std::string* whyNot = nullptr);

}  // namespace wfd
