// Watching the CHT reduction work: emulating Omega from a detector D
// that solves eventual consensus (paper Theorem 2, necessity direction).
//
// Two processes run the extractor (Figure 1 communication task + Figure 6
// computation task, generalized to EC per Section 4): they sample D,
// gossip failure-detector DAGs, simulate runs of Algorithm 4 over the DAG
// stimuli, tag vertices with k-valencies, locate a bivalent vertex and a
// decision gadget — and output its deciding process as their Omega
// estimate. The example prints every estimate change and the final DAG.
//
// The extractor is not one of the five stock stacks, so this also shows
// the facade's escape hatch: ClusterSpec::automaton installs any custom
// automaton while the Cluster keeps owning stepping and observation.
#include <cstdio>
#include <memory>

#include "api/cluster.h"
#include "cht/extractor.h"

using namespace wfd;

int main() {
  ChtConfig chtCfg;
  chtCfg.limits.maxInstance = 4;
  chtCfg.limits.probeSteps = 150;
  chtCfg.limits.walkSteps = 10;
  chtCfg.maxOwnSamples = 16;
  chtCfg.extractEvery = 24;

  ClusterSpec spec;
  spec.config.processCount = 2;
  spec.config.maxTime = 15000;
  spec.config.timeoutPeriod = 10;
  spec.config.minDelay = 5;
  spec.config.maxDelay = 15;
  // D: an Omega history that is WRONG for a while — both processes trust
  // themselves until t=80 (split brain), then agree on p0. Any D solving
  // EC works; see also suspectBasedEcTarget() for ◊P-style histories.
  spec.detector = [](const FailurePattern& fp) {
    return std::make_shared<OmegaFd>(fp, 80, OmegaPreStabilization::kSplitBrain);
  };
  spec.automaton = [chtCfg](const SimConfig&, ProcessId) {
    return std::make_unique<ChtExtractorAutomaton>(omegaEcTarget(), 2, chtCfg);
  };
  spec.workload.perProcess = 0;  // the extractor drives itself — no inputs

  Cluster cluster(spec, /*seed=*/3);
  cluster.runToHorizon();

  std::printf("== CHT reduction: emulating Omega from D (unstable until "
              "t=80) ==\n\n");
  for (ProcessId p = 0; p < 2; ++p) {
    std::printf("p%zu leader-estimate history:\n", p);
    std::printf("  t=0: p%zu (initially every process elects itself)\n", p);
    for (const auto& ev : cluster.sim().trace().outputs(p)) {
      if (const auto* est = ev.value.as<LeaderEstimate>()) {
        std::printf("  t=%llu: p%zu\n", static_cast<unsigned long long>(ev.time),
                    est->leader);
      }
    }
    const auto& ex = static_cast<const ChtExtractorAutomaton&>(
        cluster.client(p).automaton());
    std::printf("  final: p%zu after %llu extractions over a DAG with %zu "
                "vertices / %zu edges\n\n",
                ex.currentEstimate(),
                static_cast<unsigned long long>(ex.extractionsRun()),
                ex.dag().vertexCount(), ex.dag().edgeCount());
  }

  const auto& a =
      static_cast<const ChtExtractorAutomaton&>(cluster.client(0).automaton());
  const auto& b =
      static_cast<const ChtExtractorAutomaton&>(cluster.client(1).automaton());
  const bool converged = a.currentEstimate() == b.currentEstimate() &&
                         cluster.pattern().correct(a.currentEstimate());
  std::printf("both processes stabilized on the same correct leader: %s\n",
              converged ? "YES — Omega emulated" : "NO");
  std::printf("their DAGs converged to the same limit DAG: %s\n",
              a.dag().sameAs(b.dag()) ? "YES" : "NO");
  return converged ? 0 : 1;
}
