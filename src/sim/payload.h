// Type-erased, immutable message/output body.
//
// Protocol modules define plain structs for their messages (e.g. the
// paper's promote(v, l) or update(CG_i)) and box them in a Payload. A
// Payload is cheap to copy (shared immutable box), which matters because
// the paper's send primitive broadcasts the same message to all n
// processes.
#pragma once

#include <any>
#include <memory>
#include <typeinfo>
#include <utility>

namespace wfd {

/// Immutable type-erased value. Empty by default.
class Payload {
 public:
  Payload() = default;

  /// Boxes a value. The stored copy is immutable.
  template <typename T>
  static Payload of(T value) {
    Payload p;
    p.box_ = std::make_shared<const std::any>(std::move(value));
    return p;
  }

  /// Returns a pointer to the stored value if it has exactly type T,
  /// nullptr otherwise (including for the empty payload).
  template <typename T>
  const T* as() const {
    if (!box_) return nullptr;
    return std::any_cast<T>(box_.get());
  }

  /// True iff this payload holds a value of exactly type T.
  template <typename T>
  bool holds() const {
    return as<T>() != nullptr;
  }

  bool empty() const { return !box_; }

  /// Implementation-defined type name, for diagnostics only.
  const char* typeName() const { return box_ ? box_->type().name() : "<empty>"; }

 private:
  std::shared_ptr<const std::any> box_;
};

}  // namespace wfd
