#include "etob/etob_automaton.h"

#include "common/ensure.h"

namespace wfd {

EtobAutomaton::EtobAutomaton(EtobConfig config)
    : config_(config), cg_(config.edgeMode) {}

void EtobAutomaton::onInput(const StepContext&, const Payload& input, Effects& fx) {
  const auto* bcast = input.as<BroadcastInput>();
  if (bcast == nullptr) return;

  AppMsg m = bcast->msg;
  std::vector<MsgId> deps = m.causalDeps;
  if (config_.autoCausal) {
    // C(m) ⊇ everything this process has sent or received so far: the
    // full happened-before context of the broadcast.
    for (MsgId known : cg_.ids()) deps.push_back(known);
  }
  cg_.addMessage(m, deps);
  if (config_.deltaUpdates) {
    const std::size_t weight = 3 + m.body.size() + deps.size();
    fx.broadcast(Payload::of(EtobDeltaMsg{std::move(m), std::move(deps)}), weight);
  } else {
    fx.broadcast(Payload::of(EtobUpdateMsg{cg_}), cg_.approxWeight());
  }
}

void EtobAutomaton::onMessage(const StepContext& ctx, ProcessId from,
                              const Payload& msg, Effects& fx) {
  if (const auto* update = msg.as<EtobUpdateMsg>()) {
    cg_.unionWith(update->cg);
    updatePromote();
    return;
  }
  if (const auto* delta = msg.as<EtobDeltaMsg>()) {
    cg_.addMessage(delta->msg, delta->deps);
    updatePromote();
    return;
  }
  if (const auto* promote = msg.as<EtobPromoteMsg>()) {
    // Adopt the sequence only if it comes from the process this module's
    // Omega currently trusts, and only in send order (stale reordered
    // promotes from the same sender are discarded).
    if (ctx.fd.leader == from && promote->epoch > adoptedEpoch_[from]) {
      adoptedEpoch_[from] = promote->epoch;
      d_.clear();
      d_.reserve(promote->seq.size());
      for (const AppMsg& m : promote->seq) {
        d_.push_back(m.id);
        if (!cg_.contains(m.id)) adoptedBodies_.emplace(m.id, m);
      }
      fx.deliverSequence(d_);
    }
    return;
  }
}

void EtobAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  const bool isLeader = ctx.fd.leader == ctx.self;
  if (!isLeader) {
    wasLeader_ = false;
    return;
  }
  ++lambdasSincePromote_;
  if (config_.promoteRefreshEvery > 1) {
    const bool changed = promote_ != lastPromoted_;
    const bool justElected = !wasLeader_;
    const bool refreshDue = lambdasSincePromote_ >= config_.promoteRefreshEvery;
    wasLeader_ = true;
    if (!changed && !justElected && !refreshDue) return;
  }
  wasLeader_ = true;
  lambdasSincePromote_ = 0;
  lastPromoted_ = promote_;
  std::vector<AppMsg> seq;
  seq.reserve(promote_.size());
  std::size_t weight = 2;
  for (MsgId id : promote_) {
    seq.push_back(cg_.message(id));
    weight += 2 + seq.back().body.size();
  }
  fx.broadcast(Payload::of(EtobPromoteMsg{std::move(seq), ++promoteEpoch_}),
               weight);
}

const AppMsg* EtobAutomaton::findMessage(MsgId id) const {
  if (cg_.contains(id)) return &cg_.message(id);
  auto it = adoptedBodies_.find(id);
  return it == adoptedBodies_.end() ? nullptr : &it->second;
}

void EtobAutomaton::updatePromote() {
  promote_ = cg_.extendPromote(promote_);
}

}  // namespace wfd
