// wfd::service — the unified Cluster/Client facade.
//
// The paper's claim is about a replicated *service*: an eventually
// consistent one stays available to clients where a strongly consistent
// one stalls (Theorem 2). This module is that service surface. One
// declarative ClusterSpec names everything a deployment needs — protocol
// stack, scheduler parameters, failure pattern, network-model and
// detector factories — and Cluster turns it into a running replicated
// system that callers drive *incrementally*:
//
//   ClusterSpec spec;                       // what to run
//   spec.stack = AlgoStack::kEtob;
//   Cluster cluster(spec, /*seed=*/42);     // a running service
//   Client c0 = cluster.client(0);          // per-process handle
//   c0.submit({1, 2, 3});                   // broadcast through replica 0
//   cluster.advanceBy(500);                 // step virtual time
//   cluster.crashAt(4, cluster.now() + 10); // live fault injection
//   cluster.runUntilQuiescent();            // settle
//   c0.delivered();                         // observe d_0
//
// Everything above the simulator goes through this surface: the scenario
// runner lowers catalog entries to ClusterSpecs (scenario.cpp is a thin
// adapter), the explorer lowers FuzzPlans the same way, the benches
// build their swept cluster variants here, and the examples are facade
// calls only. Determinism is preserved end-to-end: a (spec, seed) pair
// plus the timed sequence of facade calls fully determines the run, and
// a run split into arbitrary advanceTo/advanceBy increments is
// bit-for-bit the run executed in one go (the digest-equivalence tests
// in tests/test_api.cpp pin both properties over the whole catalog).
//
// Thread affinity: a Cluster is entirely self-contained — it owns its
// Simulator, Rng, trace log and observers, holds no global or static
// mutable state, and nothing in this layer (or below it, audited down to
// src/common/: the only function-local statics in the library are const)
// is shared between instances. DISTINCT Clusters may therefore run on
// distinct threads with no synchronization, which is what the campaign
// runner's work-stealing pool does (explore/campaign.h): each worker
// constructs, drives and destroys its own Cluster per plan. A SINGLE
// Cluster (and its Client handles, which borrow it) is not synchronized
// and must stay confined to one thread at a time. TSan enforces the
// audit in CI (the `tsan` preset + campaign smoke).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "api/capabilities.h"
#include "checkers/broadcast_log.h"
#include "checkers/workload.h"
#include "common/types.h"
#include "fd/detectors.h"
#include "sim/failure_pattern.h"
#include "sim/network_model.h"
#include "sim/simulator.h"

namespace wfd {

class Cluster;

/// Declarative description of a replicated service deployment. Every
/// field is data or a pure factory, so (spec, seed) fully determines the
/// cluster's run — the same contract a scenario catalog entry has, and
/// in fact Scenario lowers to exactly this struct (see clusterSpec() in
/// scenario/scenario.h).
struct ClusterSpec {
  AlgoStack stack = AlgoStack::kEtob;

  /// Base scheduler parameters. The per-cluster seed overrides
  /// config.seed at construction.
  SimConfig config;

  /// Failure pattern factory (receives config.processCount);
  /// nullptr = no failures.
  std::function<FailurePattern(std::size_t n)> pattern;

  /// Network model factory; nullptr = uniform delay from the config
  /// (the legacy scheduling, bit-for-bit).
  std::function<std::shared_ptr<const NetworkModel>(const SimConfig&)> network;

  /// Failure detector factory; nullptr = OmegaFd(pattern, tauOmega,
  /// omegaMode). Also re-invoked after live crash injection so the
  /// oracle's history stays valid for the updated pattern.
  std::function<std::shared_ptr<const FailureDetector>(const FailurePattern&)>
      detector;
  Time tauOmega = 0;
  OmegaPreStabilization omegaMode = OmegaPreStabilization::kSplitBrain;

  /// Broadcast workload scheduled at construction (ignored by kOmegaEc,
  /// which drives proposals; must be empty — perProcess == 0 — when
  /// `automaton` is set, since a custom automaton defines its own input
  /// surface). perProcess == 0 schedules nothing; client submissions
  /// compose with a scheduled workload either way.
  BroadcastWorkload workload;

  /// kOmegaEc: number of EC instances each process proposes.
  Instance ecInstances = 0;

  /// Wrap the ordering stack in a replicated KvStore (ReplicaAutomaton):
  /// clients gain put()/kvGet() on top of the broadcast surface. Only
  /// valid for the broadcast stacks (eTOB, commit-eTOB, TOB). Writes go
  /// through Client::put — a broadcast `workload` is rejected here
  /// (replicas consume ClientCommands, not raw BroadcastInputs).
  bool kvReplica = false;

  /// Escape hatch: install custom automata instead of the stack lowering
  /// (e.g. the CHT extractor example). The cluster still owns stepping,
  /// fault injection and observers; the Client protocol surface is
  /// whatever the automaton implements (capabilities all false).
  std::function<std::unique_ptr<Automaton>(const SimConfig&, ProcessId)>
      automaton;
};

/// Per-process client handle — the paper's application sitting at p_i.
/// A Client is a cheap value tied to its Cluster (which must outlive
/// it); all five stacks expose this one surface, with per-stack
/// availability advertised by capabilities().
class Client {
 public:
  ProcessId process() const { return process_; }
  const Capabilities& capabilities() const;

  /// Broadcasts an application message from this process at time t (must
  /// be >= now; submit() uses now() + 1). The facade allocates the MsgId,
  /// records the submission in the cluster's broadcast log (so checkers
  /// see it), and schedules the input. On a kvReplica cluster the body
  /// is a state-machine Command routed through the replica, which
  /// allocates ids internally — kNoMsgId is returned there.
  /// Requires capabilities().submits.
  MsgId submitAt(Time t, std::vector<std::uint64_t> body,
                 std::vector<MsgId> causalDeps = {});
  MsgId submit(std::vector<std::uint64_t> body,
               std::vector<MsgId> causalDeps = {});

  /// Replicated KV write at time t (put() uses now() + 1): an LWW put on
  /// the gossip stack, a KvStore put command on a kvReplica cluster.
  /// Requires capabilities().kv.
  MsgId putAt(Time t, std::uint64_t key, std::uint64_t value);
  MsgId put(std::uint64_t key, std::uint64_t value);

  /// Current delivery sequence d_i; empty when the stack exposes none
  /// (capabilities().deliverySequence is false).
  const std::vector<MsgId>& delivered() const;

  /// Longest prefix of d_i this process learned is committed (§7).
  /// Empty on every stack without commit semantics — exactly the stacks
  /// where capabilities().committedPrefix is false.
  std::vector<MsgId> committedPrefix() const;

  /// Replicated KV read; nullopt when absent or unsupported.
  std::optional<std::uint64_t> kvGet(std::uint64_t key) const;
  /// KV aggregate counters (keys stored / commands or puts applied /
  /// full state-machine rebuilds after a delivery-sequence rewrite).
  ///
  /// These counters are REPLICA-GROUP-LOCAL: they reflect only the keys
  /// that reached this cluster. In a sharded deployment most keys hash
  /// to other clusters, so summing one client's kvStats over time
  /// silently undercounts the service — aggregate across shards through
  /// ShardedService::stats() (shard/sharded_service.h) instead.
  struct KvStats {
    std::size_t keys = 0;
    std::uint64_t applied = 0;
    std::uint64_t rebuilds = 0;
  };
  KvStats kvStats() const;

  /// Body of a broadcast message known to this process's ordering layer
  /// (on a kvReplica cluster: a replicated command, id-addressable from
  /// delivered()/committedPrefix()). nullptr when the id is unknown here
  /// or the stack keeps no ordering-layer message store. The pointer is
  /// invalidated by advancing the cluster.
  const std::vector<std::uint64_t>* findBody(MsgId id) const;

  /// EC decision history of this process (self-proposing stack):
  /// (instance, decided value), in decision order.
  std::vector<std::pair<Instance, Value>> decisions() const;

  /// Push-style consumption: cb(time, d_i) on every change of this
  /// process's delivery sequence, synchronously as the run advances.
  void onDeliver(std::function<void(Time, const std::vector<MsgId>&)> cb);

  /// The live automaton behind this client (tests/examples peek at
  /// protocol internals the uniform surface does not carry).
  const Automaton& automaton() const;

 private:
  friend class Cluster;
  Client(Cluster* cluster, ProcessId process)
      : cluster_(cluster), process_(process) {}

  Cluster* cluster_;
  ProcessId process_;
};

/// A running replicated service: owns the Simulator plus everything the
/// uniform client surface needs (broadcast log, id allocation, observer
/// fan-out). Pinned to one address — create with make_unique to hand
/// ownership around (ScenarioInstance does).
class Cluster {
 public:
  /// Builds and wires the whole system: pattern, detector, network,
  /// one stack automaton per process, scheduled workload. Performs the
  /// exact construction sequence the scenario path always used, so
  /// (spec, seed) reproduces pre-facade trace digests bit-for-bit.
  Cluster(ClusterSpec spec, std::uint64_t seed);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Introspection --------------------------------------------------------

  const ClusterSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }
  const Capabilities& capabilities() const { return caps_; }
  std::size_t processCount() const { return sim_->config().processCount; }
  Time now() const { return sim_->now(); }
  /// Input history of every scheduled workload message and every client
  /// submission — what the broadcast checkers verify against.
  const BroadcastLog& log() const { return log_; }
  const FailurePattern& pattern() const { return sim_->failurePattern(); }

  /// The underlying simulator (checkers read its trace; tests peek at
  /// internals). Stepping through the facade and through sim() compose —
  /// both drain the same event queue.
  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }

  // --- Incremental stepping -------------------------------------------------

  /// Processes every event with time <= t (monotone: t >= now()).
  /// Returns true while the run can still make progress.
  bool advanceTo(Time t);
  /// advanceTo(now() + d).
  bool advanceBy(Time d);
  /// Runs to the config horizon (maxTime / maxEvents).
  void runToHorizon();
  /// Simulator::runUntil pass-through (same checkEvery contract).
  bool runUntil(const std::function<bool(const Simulator&)>& pred,
                std::uint64_t checkEvery = 64);
  /// Runs until the service is quiescent: no application input is still
  /// pending and no observable (delivery sequence or output of any
  /// process) changed for `window` consecutive ticks — or until the
  /// horizon. window == 0 uses 4 * (maxDelay + timeoutPeriod), enough
  /// for any in-flight message plus the λ-steps reacting to it. Returns
  /// now() at the stop point. Note protocol background chatter (gossip
  /// anti-entropy, eTOB promote refreshes) does not count as activity —
  /// quiescence is about the service's observable state.
  Time runUntilQuiescent(Time window = 0);

  // --- Live fault injection -------------------------------------------------

  /// Crashes p at time t (>= now): from t on, p takes no steps and its
  /// incoming messages vanish. The failure detector is rebuilt for the
  /// updated pattern — through the spec's factory when given, otherwise
  /// as an OmegaFd that re-stabilizes at max(tauOmega, t) (a crash can
  /// reopen a leader-election window, never close one retroactively).
  /// At least one process must remain correct.
  void crashAt(ProcessId p, Time t);

  /// Adds a partition window [start, end) (start >= now) on the links
  /// selected by `affects`; deliveries of affected messages SENT during
  /// the window defer to `end` (links stay reliable — this models the
  /// paper's partitions, which delay but never lose). Messages already
  /// in flight when the call is made keep their scheduled arrival.
  void partitionLinks(Time start, Time end,
                      std::function<bool(ProcessId from, ProcessId to)> affects);
  /// partitionLinks over every link touching p.
  void isolate(ProcessId p, Time start, Time end);

  // --- Clients and observers ------------------------------------------------

  Client client(ProcessId p);

  /// cb(process, time, d_p) on every delivery-sequence change anywhere.
  using DeliveryObserver =
      std::function<void(ProcessId, Time, const std::vector<MsgId>&)>;
  void observeDeliveries(DeliveryObserver cb);
  /// cb(process, time, output) on every append-only output anywhere
  /// (EC decisions, commit indications, gossip applies, ...).
  using OutputObserver = std::function<void(ProcessId, Time, const Payload&)>;
  void observeOutputs(OutputObserver cb);

  /// Schedules an additional broadcast workload (benches sweep their own
  /// on top of a spec with workload.perProcess == 0) and merges it into
  /// log(). Client-submission ids continue above the workload's, so any
  /// workload must be scheduled before the first client submission
  /// (rejected otherwise — ids would collide).
  void scheduleWorkload(const BroadcastWorkload& w);

 private:
  friend class Client;

  MsgId submitAt(ProcessId p, Time t, std::vector<std::uint64_t> body,
                 std::vector<MsgId> causalDeps);
  std::uint64_t observableFingerprint() const;
  void rebuildDetector(Time injectionTime);

  ClusterSpec spec_;
  std::uint64_t seed_ = 0;
  Capabilities caps_;
  std::unique_ptr<Simulator> sim_;
  BroadcastLog log_;
  /// Per-process next client MsgId sequence number (starts above any
  /// scheduled workload's ids).
  std::vector<std::uint32_t> nextClientSeq_;
  /// True once a facade-allocated MsgId was handed out — from then on a
  /// scheduled workload could collide with issued ids, so it is rejected.
  bool clientIdsIssued_ = false;
  /// True once a non-empty workload was scheduled (its ids 0..per-1 are
  /// in play — a second workload would re-issue them, so it is rejected).
  bool workloadScheduled_ = false;
  std::vector<DeliveryObserver> deliveryObservers_;
  std::vector<OutputObserver> outputObservers_;
};

}  // namespace wfd
