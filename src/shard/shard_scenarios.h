// Declarative catalog of sharded-service scenarios — the sharded
// analogue of scenario/scenario.h.
//
// A Scenario lowers to ONE ClusterSpec, so the flat catalog cannot
// express a deployment of S independent clusters behind a router; this
// registry holds the sharded entries instead, and tools/wfd_scenarios
// merges both catalogs into one CLI namespace (names are unique across
// the union — check_docs_links.sh audits the docs against the merged
// --list).
//
// A ShardScenario names the deployment (ShardedSpec), a keyed workload
// (uniform or Zipfian put/get mix, issued through a ShardRouter on a
// fixed cadence), timed fault events, and the checker clauses to
// assert. (scenario, seed) fully determines the run — the pinned
// shardedRunDigest values in tests/test_sharded_kv.cpp hold per
// standard library, exactly like the flat catalog's digests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/shard_router.h"
#include "shard/sharded_kv_checker.h"
#include "shard/sharded_service.h"

namespace wfd {

/// Keyed KV workload issued through the router: one put every
/// `interval` ticks, a read of an already-written key after every
/// `getEvery`-th put, and a final read of every written key after the
/// service settles. Values encode the op index (1-based), so every
/// (key, value) pair is unique — the identifiability the checker needs.
struct ShardWorkload {
  std::uint64_t puts = 160;
  std::uint64_t keys = 64;
  /// Key distribution: uniform, or Zipfian(theta) with rank 0 hottest.
  bool zipfian = false;
  double theta = 0.99;
  /// Ticks between consecutive puts.
  Time interval = 10;
  /// Issue a get after every getEvery-th put (0 = interleave none;
  /// the settle-time read pass still runs).
  std::uint64_t getEvery = 4;
};

/// A timed fault against one replica of one shard.
struct ShardFault {
  enum class Kind : std::uint8_t { kCrash, kIsolate };
  Kind kind = Kind::kCrash;
  std::size_t shard = 0;
  ProcessId replica = 0;
  Time at = 0;
  /// kIsolate: partition heals at `until`.
  Time until = 0;
};

/// Checker clauses evaluated after the run.
struct ShardCheckSet {
  /// checkShardedKvRun over the router op log (committed reads,
  /// per-(key, shard) monotonicity, read-your-writes).
  bool shardedKv = true;
  /// checkCommitSafety on every shard's trace (no revoked prefixes).
  bool commitSafety = false;
  /// Require at least one put observed committed (liveness witness).
  bool requireProgress = false;
  /// Require the crash schedule to have re-homed keys (rebalances > 0).
  bool requireRebalance = false;
};

struct ShardScenario {
  std::string name;
  std::string description;
  ShardedSpec spec;
  ShardWorkload workload;
  std::vector<ShardFault> faults;
  ShardCheckSet checks;
};

/// Outcome of one (scenario, seed) run — the sharded counterpart of
/// ScenarioRunResult, serialized by toJsonLine below with the same
/// stable-key-order contract (docs/SCENARIOS.md).
struct ShardScenarioRunResult {
  std::string scenario;
  std::uint64_t seed = 0;
  bool pass = false;
  std::vector<std::string> failures;

  std::string stack;
  std::size_t shards = 0;
  Time endTime = 0;
  std::uint64_t puts = 0;
  std::uint64_t committedPuts = 0;
  std::uint64_t gets = 0;
  std::uint64_t successfulGets = 0;
  std::uint64_t refolds = 0;
  std::uint64_t rebalances = 0;
  /// shardedRunDigest of the settled run (per-shard traces + op log).
  std::uint64_t digest = 0;
};

/// Runs the scenario for one seed: builds the service and a router,
/// issues the workload on its cadence (injecting faults as their times
/// pass), settles, runs the final read pass, evaluates the check set.
ShardScenarioRunResult runShardScenario(const ShardScenario& s,
                                        std::uint64_t seed);

std::string toJsonLine(const ShardScenarioRunResult& r);

/// The sharded catalog (registration order, unique names — also unique
/// against scenarioCatalog(), which the CLI merge test pins).
const std::vector<ShardScenario>& shardScenarioCatalog();

/// Catalog lookup; nullptr when the name is unknown.
const ShardScenario* findShardScenario(const std::string& name);

}  // namespace wfd
