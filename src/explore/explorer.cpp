#include "explore/explorer.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "api/cluster.h"
#include "common/ensure.h"
#include "common/json.h"
#include "common/strings.h"

namespace wfd {

const char* fuzzOracleName(FuzzOracle oracle) {
  switch (oracle) {
    case FuzzOracle::kSpec:
      return "spec";
    case FuzzOracle::kStrictTob:
      return "strict-tob";
  }
  return "?";
}

bool parseFuzzOracle(const std::string& name, FuzzOracle* out) {
  for (FuzzOracle oracle : {FuzzOracle::kSpec, FuzzOracle::kStrictTob}) {
    if (name == fuzzOracleName(oracle)) {
      *out = oracle;
      return true;
    }
  }
  return false;
}

ScenarioRunResult runFuzzPlan(const FuzzPlan& plan, FuzzOracle oracle) {
  Scenario s = planScenario(plan);
  if (oracle == FuzzOracle::kStrictTob && s.checks.broadcast) {
    s.checks.requireStrongTob = true;
  }
  // Plans lower through the same facade path everything else drives:
  // runScenario builds one Cluster, batch-steps it to its horizon, and
  // judges it by the stack's checker set.
  return runScenario(s, plan.simSeed);
}

std::vector<std::string> failureKeys(const ScenarioRunResult& result) {
  std::set<std::string> keys;
  for (const std::string& failure : result.failures) {
    keys.insert(failure.substr(0, failure.find(" (")));
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

namespace {

bool keySetsIntersect(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  for (const std::string& k : a) {
    if (std::find(b.begin(), b.end(), k) != b.end()) return true;
  }
  return false;
}

/// All single-step reductions of `plan`, in the fixed order the shrinker
/// tries them. Every candidate re-derives its horizon so shrunken plans
/// also get cheaper to run.
std::vector<FuzzPlan> reductionCandidates(const FuzzPlan& plan) {
  std::vector<FuzzPlan> out;
  auto add = [&out](FuzzPlan p) {
    p.maxTime = planHorizon(p);
    out.push_back(std::move(p));
  };

  // Drop or advance each crash.
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    FuzzPlan p = plan;
    p.crashes.erase(p.crashes.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(p));
  }
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    if (plan.crashes[i].time == 0) continue;
    FuzzPlan p = plan;
    p.crashes[i].time /= 2;
    add(std::move(p));
  }

  // Drop whole network layers.
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    FuzzPlan p = plan;
    p.partitions.erase(p.partitions.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(p));
  }
  if (plan.chaos.dupNum > 0) {
    FuzzPlan p = plan;
    p.chaos = PlanChaos{};
    add(std::move(p));
  }
  if (!plan.skews.empty()) {
    FuzzPlan p = plan;
    p.skews.clear();
    add(std::move(p));
  }
  if (plan.slowLink.process != kNoProcess) {
    FuzzPlan p = plan;
    p.slowLink = PlanSlowLink{};
    add(std::move(p));
  }
  if (plan.loss.enabled()) {
    // Drop the whole fair-lossy genome first (also disarms the
    // retransmission layer), then each sub-layer on its own.
    FuzzPlan p = plan;
    p.loss = PlanLoss{};
    add(std::move(p));
    if (plan.loss.burstPeriod > 0) {
      FuzzPlan q = plan;
      q.loss.burstPeriod = 0;
      q.loss.burstLen = 0;
      if (q.loss.lossNum == 0) q.loss.activeUntil = 0;
      add(std::move(q));
    }
    if (plan.loss.oneWayFrom != kNoProcess) {
      FuzzPlan q = plan;
      q.loss.oneWayFrom = kNoProcess;
      q.loss.oneWayStart = 0;
      q.loss.oneWayWidth = 0;
      q.loss.oneWayPeriod = 0;
      add(std::move(q));
    }
    if (plan.loss.lossNum > 0 && plan.loss.activeUntil > 1) {
      FuzzPlan q = plan;
      q.loss.activeUntil /= 2;
      add(std::move(q));
    }
  }

  // Tighten what remains: narrower windows, one-shot instead of
  // recurring, calmer chaos.
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    if (plan.partitions[i].width > 1) {
      FuzzPlan p = plan;
      p.partitions[i].width /= 2;
      add(std::move(p));
    }
    if (plan.partitions[i].period != 0) {
      FuzzPlan p = plan;
      p.partitions[i].period = 0;
      add(std::move(p));
    }
  }
  if (plan.chaos.dupNum > 0 && plan.chaos.maxExtraCopies > 1) {
    FuzzPlan p = plan;
    p.chaos.maxExtraCopies = 1;
    add(std::move(p));
  }
  if (plan.chaos.reorderJitter > 1) {
    FuzzPlan p = plan;
    p.chaos.reorderJitter /= 2;
    add(std::move(p));
  }

  // Shorten the workload and the detector's unstable phase.
  if (plan.workload.perProcess > 1) {
    FuzzPlan p = plan;
    p.workload.perProcess /= 2;
    add(std::move(p));
  }
  if (plan.workload.causalChain || plan.workload.crossDeps) {
    FuzzPlan p = plan;
    p.workload.causalChain = false;
    p.workload.crossDeps = false;
    add(std::move(p));
  }
  if (plan.tauOmega > 1) {
    FuzzPlan p = plan;
    p.tauOmega /= 2;
    add(std::move(p));
  }
  if (plan.ecInstances > 1) {
    FuzzPlan p = plan;
    p.ecInstances /= 2;
    add(std::move(p));
  }

  // Drop the highest process, when nothing references it.
  if (plan.processCount > 2) {
    const ProcessId last = plan.processCount - 1;
    bool referenced = false;
    for (const PlanCrash& c : plan.crashes) referenced |= c.process == last;
    for (const PlanPartition& p : plan.partitions) {
      referenced |= p.isolate == last;
    }
    referenced |= plan.chaos.onlyTouching == last;
    referenced |= plan.slowLink.process == last;
    referenced |= plan.loss.oneWayFrom == last;
    if (!referenced) {
      FuzzPlan p = plan;
      --p.processCount;
      if (!p.skews.empty()) p.skews.pop_back();
      add(std::move(p));
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrinkFuzzPlan(const FuzzPlan& failing, FuzzOracle oracle,
                            std::uint64_t maxAttempts,
                            const ScenarioRunResult* knownResult,
                            const std::function<bool()>& keepGoing) {
  ShrinkResult best;
  best.plan = failing;
  // The unshrunk plan is the largest plan the shrinker will ever execute;
  // callers that just ran it (explore()) pass the result in to skip the
  // most expensive re-simulation.
  best.result = knownResult != nullptr ? *knownResult
                                       : runFuzzPlan(failing, oracle);
  WFD_ENSURE_MSG(!best.result.pass, "shrinkFuzzPlan needs a failing plan");
  const std::vector<std::string> targetKeys = failureKeys(best.result);

  bool progressed = true;
  while (progressed && best.attempts < maxAttempts) {
    progressed = false;
    for (FuzzPlan& candidate : reductionCandidates(best.plan)) {
      if (best.attempts >= maxAttempts) break;
      // A caller-imposed wall-clock budget also bounds shrinking (the
      // CLI's --time-budget contract): stop and keep the best-so-far
      // minimal plan instead of overrunning into an external timeout.
      if (keepGoing && !keepGoing()) return best;
      if (!planAdmissibilityViolations(candidate).empty()) continue;
      ++best.attempts;
      ScenarioRunResult r = runFuzzPlan(candidate, oracle);
      if (r.pass || !keySetsIntersect(failureKeys(r), targetKeys)) continue;
      best.plan = std::move(candidate);
      best.result = std::move(r);
      ++best.accepted;
      progressed = true;
      break;  // restart the pass list from the smaller plan
    }
  }
  return best;
}

ExploreReport explore(
    const ExploreOptions& options,
    const std::function<void(std::uint64_t, const FuzzPlan&,
                             const ScenarioRunResult&)>& onRun,
    const std::function<bool()>& keepGoing) {
  ExploreReport report;
  for (std::uint64_t i = 0; i < options.runs; ++i) {
    if (keepGoing && !keepGoing()) break;
    const FuzzPlan plan = sampleFuzzPlan(options.stack, options.seed, i);
    const ScenarioRunResult result = runFuzzPlan(plan, options.oracle);
    ++report.runsExecuted;
    if (onRun) onRun(i, plan, result);
    if (!result.pass) {
      ExploreViolation v;
      v.runIndex = i;
      v.plan = plan;
      v.result = result;
      if (options.shrink) {
        v.shrunken = shrinkFuzzPlan(plan, options.oracle,
                                    options.maxShrinkAttempts, &result,
                                    keepGoing);
      } else {
        v.shrunken.plan = plan;
        v.shrunken.result = result;
      }
      report.violations.push_back(std::move(v));
    }
  }
  return report;
}

std::string fuzzRunJsonLine(std::uint64_t runIndex, const FuzzPlan& plan,
                            const ScenarioRunResult& result) {
  Json j = Json::object();
  j.set("run", Json::number(runIndex));
  j.set("stack", Json::str(algoStackName(plan.stack)));
  j.set("plan", Json::str(hex64(planFingerprint(plan))));
  j.set("sim_seed", Json::number(plan.simSeed));
  j.set("processes", Json::number(plan.processCount));
  j.set("network", Json::str(result.network));
  j.set("max_time", Json::number(plan.maxTime));
  j.set("pass", Json::boolean(result.pass));
  j.set("events", Json::number(result.eventsProcessed));
  j.set("messages_sent", Json::number(result.messagesSent));
  j.set("tau_hat", Json::number(result.tauHat));
  j.set("digest", Json::str(hex64(result.digest)));
  Json failures = Json::array();
  for (const std::string& f : result.failures) failures.push(Json::str(f));
  j.set("failures", std::move(failures));
  return j.dump();
}

CorpusEntry makeCorpusEntry(std::string name, std::string foundBy,
                            const FuzzPlan& plan, FuzzOracle oracle,
                            const ScenarioRunResult* knownResult) {
  CorpusEntry entry;
  entry.name = std::move(name);
  entry.foundBy = std::move(foundBy);
  entry.oracle = fuzzOracleName(oracle);
  entry.plan = plan;
  const ScenarioRunResult result =
      knownResult != nullptr ? *knownResult : runFuzzPlan(plan, oracle);
  entry.expect.pass = result.pass;
  entry.expect.failureKeys = failureKeys(result);
  entry.expect.digests.emplace_back(stdlibTag(), result.digest);
  return entry;
}

bool replayCorpusEntry(const CorpusEntry& entry, std::string* whyNot) {
  FuzzOracle oracle = FuzzOracle::kSpec;
  WFD_ENSURE(parseFuzzOracle(entry.oracle, &oracle));
  const ScenarioRunResult result = runFuzzPlan(entry.plan, oracle);
  bool ok = true;
  auto mismatch = [&ok, whyNot](const std::string& why) {
    ok = false;
    if (whyNot != nullptr) {
      if (!whyNot->empty()) *whyNot += "; ";
      *whyNot += why;
    }
  };

  // Outcome comparison is only meaningful on a standard library the
  // entry was recorded against: the simulated schedule draws from
  // std::uniform_int_distribution, whose algorithm is implementation-
  // defined, so on another stdlib a schedule-sensitive witness can
  // legitimately pass (or fail differently). An entry with NO recorded
  // digests opts into outcome checks everywhere (its author asserts the
  // outcome is schedule-independent, e.g. a hand-written plan).
  bool outcomeComparable = entry.expect.digests.empty();
  for (const auto& [tag, digest] : entry.expect.digests) {
    if (tag != stdlibTag()) continue;
    outcomeComparable = true;
    if (digest != result.digest) {
      mismatch(std::string("digest for ") + tag + " differs: expected " +
               hex64(digest) + " got " + hex64(result.digest));
    }
  }
  if (!outcomeComparable) return ok;  // decoded + simulated cleanly

  if (result.pass != entry.expect.pass) {
    mismatch(std::string("expected pass=") +
             (entry.expect.pass ? "true" : "false") + " but run " +
             (result.pass ? "passed" : "failed"));
  }
  const std::vector<std::string> keys = failureKeys(result);
  if (keys != entry.expect.failureKeys) {
    mismatch("failure keys differ: expected [" +
             join(entry.expect.failureKeys, ", ") + "] got [" +
             join(keys, ", ") + "]");
  }
  return ok;
}

}  // namespace wfd
