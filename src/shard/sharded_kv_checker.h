// Verifier for sharded KV runs, over a ShardRouter's op log.
//
// The sharded service promises LESS than linearizability and the
// checker verifies exactly what it promises:
//
//  * committed-reads — every successful get returns a value some put
//    actually wrote to that key THROUGH THE SAME SHARD, and that put was
//    observed committed no later than the read (the router serves folds
//    of §7 committed prefixes, never speculative state);
//  * monotone reads — per (key, shard), the fold version a get reports
//    never decreases in log order, and equal versions carry equal
//    values (committed prefixes only extend, so served state never
//    regresses);
//  * read-your-writes — once the router has seen a put commit, every
//    strictly later read of that key on that shard finds a value;
//  * cross-shard independence is checked OUTSIDE the log: per-shard
//    trace digests of a partially-faulted run are compared
//    byte-for-byte against a fault-free run's (tests/test_sharded_kv);
//    shardedRunDigest below folds per-shard digests and the op log into
//    one pinnable word for the scenario catalog.
//
// The checker assumes all writes go through routers sharing the service
// and that put (key, value) pairs are unique — the sharded workloads
// encode the op index in the value, making every write identifiable.
// Non-unique pairs are reported as an error rather than checked
// ambiguously.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/shard_router.h"
#include "shard/sharded_service.h"

namespace wfd {

struct ShardedKvReport {
  std::size_t puts = 0;
  std::size_t committedPuts = 0;
  std::size_t gets = 0;
  std::size_t successfulGets = 0;
  /// Successful gets whose value matches no same-shard committed put at
  /// or before the read.
  std::uint64_t uncommittedReads = 0;
  /// Per-(key, shard) fold-version regressions or equal-version value
  /// changes across gets.
  std::uint64_t monotonicityViolations = 0;
  /// Gets that missed a write already observed committed on their shard.
  std::uint64_t staleReads = 0;
  std::vector<std::string> errors;

  bool ok() const {
    return uncommittedReads == 0 && monotonicityViolations == 0 &&
           staleReads == 0 && errors.empty();
  }
};

ShardedKvReport checkShardedKvRun(const std::vector<RouterOp>& ops);

/// One pinnable word for a sharded run: FNV-1a fold of every shard's
/// traceDigest (in shard order) plus the router op log (kind, key,
/// value, presence, shard, version per op — times excluded so the
/// digest pins WHAT was served, commit resolution times are schedule
/// detail already covered by the trace digests).
std::uint64_t shardedRunDigest(const ShardedService& service,
                               const ShardRouter& router);

}  // namespace wfd
