// Explorer subsystem tests: sampler admissibility over the whole plan
// space, seed-stable (byte-identical) exploration, the delta-debugging
// shrinker's contract, RandomScheduleModel composition, and the
// FailurePattern edge cases the sampler must survive (crash at time 0,
// all-but-one crashed, crash exactly at a partition boundary).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/fuzz_plan.h"
#include "explore/random_schedule_model.h"
#include "scenario/scenario.h"

namespace wfd {
namespace {

constexpr auto& kStacks = kAllAlgoStacks;

// --- Sampler ----------------------------------------------------------------

TEST(FuzzSamplerTest, EverySampledPlanIsAdmissible) {
  for (AlgoStack stack : kStacks) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      const FuzzPlan plan = sampleFuzzPlan(stack, 7, i);
      const auto violations = planAdmissibilityViolations(plan);
      EXPECT_TRUE(violations.empty())
          << algoStackName(stack) << " run " << i << ": "
          << violations.front();
      EXPECT_EQ(plan.maxTime, planHorizon(plan));
      EXPECT_EQ(plan.stack, stack);
    }
  }
}

TEST(FuzzSamplerTest, SamplingIsAFunctionOfSeedAndIndex) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    const FuzzPlan a = sampleFuzzPlan(AlgoStack::kEtob, 3, i);
    const FuzzPlan b = sampleFuzzPlan(AlgoStack::kEtob, 3, i);
    EXPECT_EQ(planFingerprint(a), planFingerprint(b));
  }
  // Different indices and different master seeds explore different plans
  // (fixed property of the derivation, not a probabilistic claim).
  EXPECT_NE(planFingerprint(sampleFuzzPlan(AlgoStack::kEtob, 3, 0)),
            planFingerprint(sampleFuzzPlan(AlgoStack::kEtob, 3, 1)));
  EXPECT_NE(planFingerprint(sampleFuzzPlan(AlgoStack::kEtob, 3, 0)),
            planFingerprint(sampleFuzzPlan(AlgoStack::kEtob, 4, 0)));
  EXPECT_NE(planFingerprint(sampleFuzzPlan(AlgoStack::kEtob, 3, 0)),
            planFingerprint(sampleFuzzPlan(AlgoStack::kGossipLww, 3, 0)));
}

TEST(FuzzSamplerTest, SamplerCoversTheGenomeSpace) {
  // Across a modest window the sampler must exercise every network layer
  // and every omega mode — otherwise the explorer silently stops
  // covering part of the admissible space.
  bool sawPartition = false, sawChaos = false, sawSkew = false,
       sawSlow = false, sawCrash = false, sawRecurring = false;
  std::set<std::string> modes;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzPlan p = sampleFuzzPlan(AlgoStack::kEtob, 1, i);
    sawPartition |= !p.partitions.empty();
    for (const PlanPartition& part : p.partitions) {
      sawRecurring |= part.period != 0;
    }
    sawChaos |= p.chaos.dupNum > 0;
    sawSkew |= !p.skews.empty();
    sawSlow |= p.slowLink.process != kNoProcess;
    sawCrash |= !p.crashes.empty();
    modes.insert(omegaModeName(p.omegaMode));
  }
  EXPECT_TRUE(sawPartition && sawChaos && sawSkew && sawSlow && sawCrash &&
              sawRecurring);
  EXPECT_EQ(modes.size(), 3u);
}

TEST(FuzzSamplerTest, BigClusterGenomeIsOptIn) {
  // bigClusterMaxN == 0 (and the 3-arg form) must reproduce the legacy
  // small-n plan stream exactly: n stays in [3, 6], no writer cap, and
  // the explicit-0 call is fingerprint-identical — the property the
  // campaign byte-identity CI diff rests on.
  for (AlgoStack stack : kStacks) {
    for (std::uint64_t i = 0; i < 40; ++i) {
      const FuzzPlan legacy = sampleFuzzPlan(stack, 9, i);
      EXPECT_GE(legacy.processCount, 3u);
      EXPECT_LE(legacy.processCount, 6u);
      EXPECT_EQ(legacy.workload.writers, 0u);
      EXPECT_EQ(planFingerprint(legacy),
                planFingerprint(sampleFuzzPlan(stack, 9, i, 0)));
    }
  }
}

TEST(FuzzSamplerTest, BigClusterGenomeSamplesBigAndSmallAdmissiblePlans) {
  // With the genome opted in, the stream must mix deployment-scale
  // plans (with the few-writers workload cap that keeps them cheap)
  // with the legacy small shapes, all admissible, with per-stack caps:
  // 256 for omega-ec, 64 for the O(n^2)-per-round stacks.
  for (AlgoStack stack : kStacks) {
    bool sawBig = false;
    bool sawSmall = false;
    for (std::uint64_t i = 0; i < 80; ++i) {
      const FuzzPlan p = sampleFuzzPlan(stack, 7, i, 256);
      const auto violations = planAdmissibilityViolations(p);
      EXPECT_TRUE(violations.empty())
          << algoStackName(stack) << " run " << i << ": "
          << violations.front();
      EXPECT_LE(p.processCount,
                stack == AlgoStack::kOmegaEc ? 256u : 64u);
      if (p.processCount >= 16) {
        sawBig = true;
        EXPECT_GE(p.workload.writers, 2u) << algoStackName(stack);
        EXPECT_LE(p.workload.writers, 8u) << algoStackName(stack);
        EXPECT_LE(p.workload.perProcess, 3u) << algoStackName(stack);
      } else {
        sawSmall = true;
        EXPECT_EQ(p.workload.writers, 0u);
      }
    }
    EXPECT_TRUE(sawBig) << algoStackName(stack);
    EXPECT_TRUE(sawSmall) << algoStackName(stack);
  }
}

TEST(FuzzSamplerTest, BigClusterPlansRunAndSatisfyTheSpecOracle) {
  // One sampled big plan per price class actually runs its full horizon
  // green: omega-ec at its 256 cap, a broadcast stack at its 64 cap.
  for (AlgoStack stack : {AlgoStack::kOmegaEc, AlgoStack::kEtob}) {
    for (std::uint64_t i = 0;; ++i) {
      ASSERT_LT(i, 100u) << "no big plan in the first 100 samples";
      const FuzzPlan p = sampleFuzzPlan(stack, 7, i, 256);
      if (p.processCount < 16) continue;
      const ScenarioRunResult r = runScenario(planScenario(p), p.simSeed);
      EXPECT_TRUE(r.pass)
          << algoStackName(stack) << " n=" << p.processCount << ": "
          << (r.failures.empty() ? "?" : r.failures.front());
      break;
    }
  }
}

TEST(FuzzSamplerTest, LossGenomeIsOptInAndPrefixPreserving) {
  for (AlgoStack stack : kStacks) {
    for (std::uint64_t i = 0; i < 40; ++i) {
      // Off (and the 4-arg form) reproduces the legacy stream exactly.
      const FuzzPlan legacy = sampleFuzzPlan(stack, 9, i);
      EXPECT_FALSE(legacy.loss.enabled());
      EXPECT_EQ(planFingerprint(legacy),
                planFingerprint(sampleFuzzPlan(stack, 9, i, 0, false)));
      // On: the loss draws come after every legacy draw, so stripping the
      // loss section (and re-deriving the horizon) recovers the legacy
      // plan bit-for-bit — the loss-free prefix is preserved.
      FuzzPlan lossy = sampleFuzzPlan(stack, 9, i, 0, true);
      lossy.loss = PlanLoss{};
      lossy.maxTime = planHorizon(lossy);
      EXPECT_EQ(planFingerprint(lossy), planFingerprint(legacy))
          << algoStackName(stack) << " run " << i;
    }
  }
}

TEST(FuzzSamplerTest, LossGenomeCoversItsLayersAdmissibly) {
  bool sawIid = false, sawBurst = false, sawOneWay = false, sawQuiet = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzPlan p = sampleFuzzPlan(AlgoStack::kEtob, 1, i, 0, true);
    const auto violations = planAdmissibilityViolations(p);
    EXPECT_TRUE(violations.empty()) << "run " << i << ": " << violations.front();
    sawIid |= p.loss.lossNum > 0;
    sawBurst |= p.loss.burstPeriod > 0;
    sawOneWay |= p.loss.oneWayFrom != kNoProcess;
    sawQuiet |= !p.loss.enabled();
    if (p.loss.enabled()) {
      // The sampled horizon must stretch past the loss era plus the
      // retransmission tail, or liveness clauses would be unfair.
      EXPECT_GT(p.maxTime, p.loss.activeUntil);
    }
  }
  EXPECT_TRUE(sawIid && sawBurst && sawOneWay && sawQuiet);
}

TEST(FuzzSamplerTest, LossyPlansRunAndSatisfyTheSpecOracle) {
  // One sampled lossy plan per stack family runs its full horizon green
  // through the retransmission layer (the fuzz-level acceptance check).
  for (AlgoStack stack : {AlgoStack::kEtob, AlgoStack::kOmegaEc}) {
    for (std::uint64_t i = 0;; ++i) {
      ASSERT_LT(i, 100u) << "no lossy plan in the first 100 samples";
      const FuzzPlan p = sampleFuzzPlan(stack, 7, i, 0, true);
      if (!p.loss.enabled()) continue;
      const ScenarioRunResult r = runScenario(planScenario(p), p.simSeed);
      EXPECT_TRUE(r.pass)
          << algoStackName(stack) << " run " << i << ": "
          << (r.failures.empty() ? "?" : r.failures.front());
      EXPECT_NE(r.network.find("loss"), std::string::npos) << r.network;
      break;
    }
  }
}

TEST(FuzzSamplerTest, TobPlansKeepACorrectMajority) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    const FuzzPlan p = sampleFuzzPlan(AlgoStack::kTobViaConsensus, 11, i);
    EXPECT_GT((p.processCount - p.crashes.size()) * 2, p.processCount) << i;
  }
}

// --- RandomScheduleModel ----------------------------------------------------

TEST(RandomScheduleModelTest, ComposesEveryLayerWithPartitionOutermost) {
  FuzzPlan plan;
  plan.processCount = 4;
  plan.partitions.push_back(PlanPartition{500, 200, 1000, 2});
  plan.chaos = PlanChaos{1, 3, 2, 20, kNoProcess};
  plan.skews = {{1, 1}, {2, 1}, {1, 2}, {3, 2}};
  plan.slowLink = PlanSlowLink{0, 3};
  plan.maxTime = planHorizon(plan);
  ASSERT_TRUE(planAdmissibilityViolations(plan).empty());

  RandomScheduleModel model(plan);
  const std::string name = model.name();
  // Composition order is part of the admissibility story: partitions
  // outermost (network_model.h's warning), then skew, chaos, base.
  EXPECT_EQ(name.find("random[partition"), 0u) << name;
  EXPECT_LT(name.find("clock-skew"), name.find("chaos")) << name;
  EXPECT_LT(name.find("chaos"), name.find("asymmetric")) << name;
  EXPECT_TRUE(model.mayDuplicate());
  // Skew scales the lambda period of p1 by 2/1 and p2 by 1/2.
  EXPECT_EQ(model.lambdaPeriod(1, 10), 20u);
  EXPECT_EQ(model.lambdaPeriod(2, 10), 5u);
}

TEST(RandomScheduleModelTest, QuietGenomeIsPlainUniformDelay) {
  FuzzPlan plan;
  plan.maxTime = planHorizon(plan);
  RandomScheduleModel model(plan);
  EXPECT_EQ(model.name().find("random[uniform-delay"), 0u) << model.name();
  EXPECT_FALSE(model.mayDuplicate());
}

// --- Explorer determinism (the seed-stability satellite) --------------------

std::vector<std::string> collectRunLines(const ExploreOptions& options) {
  std::vector<std::string> lines;
  explore(options, [&lines](std::uint64_t i, const FuzzPlan& plan,
                            const ScenarioRunResult& result) {
    lines.push_back(fuzzRunJsonLine(i, plan, result));
  });
  return lines;
}

TEST(ExplorerTest, SameSeedSameRunsByteForByte) {
  for (AlgoStack stack : {AlgoStack::kEtob, AlgoStack::kOmegaEc}) {
    ExploreOptions options;
    options.stack = stack;
    options.runs = 10;
    options.seed = 21;
    const std::vector<std::string> a = collectRunLines(options);
    const std::vector<std::string> b = collectRunLines(options);
    ASSERT_EQ(a.size(), 10u);
    EXPECT_EQ(a, b);
  }
}

TEST(ExplorerTest, SpecOracleHoldsOnASampledWindow) {
  for (AlgoStack stack : kStacks) {
    ExploreOptions options;
    options.stack = stack;
    options.runs = 8;
    options.seed = 2024;
    const ExploreReport report = explore(options);
    EXPECT_EQ(report.runsExecuted, 8u);
    EXPECT_TRUE(report.violations.empty()) << algoStackName(stack);
  }
}

TEST(ExplorerTest, TimeBudgetOnlyTruncatesTheSequence) {
  ExploreOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 6;
  options.seed = 5;
  const std::vector<std::string> full = collectRunLines(options);
  // A keepGoing() that stops after 3 runs yields exactly the prefix.
  std::vector<std::string> truncated;
  std::uint64_t budget = 3;
  explore(
      options,
      [&truncated](std::uint64_t i, const FuzzPlan& plan,
                   const ScenarioRunResult& result) {
        truncated.push_back(fuzzRunJsonLine(i, plan, result));
      },
      [&budget]() { return budget-- > 0; });
  ASSERT_EQ(truncated.size(), 3u);
  EXPECT_TRUE(std::equal(truncated.begin(), truncated.end(), full.begin()));
}

// --- Shrinker ---------------------------------------------------------------

TEST(ShrinkerTest, StrictOracleWitnessShrinksToItsEssence) {
  // Find the first strict-TOB violation in a short window and shrink it:
  // the result must still violate strong TOB, be admissible, and be no
  // larger than the original in every dimension the passes reduce.
  ExploreOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 12;
  options.seed = 42;
  options.oracle = FuzzOracle::kStrictTob;
  const ExploreReport report = explore(options);
  ASSERT_FALSE(report.violations.empty())
      << "pre-stabilization windows must violate strong TOB somewhere";
  const ExploreViolation& v = report.violations.front();

  EXPECT_FALSE(v.shrunken.result.pass);
  const auto keys = failureKeys(v.shrunken.result);
  EXPECT_NE(std::find(keys.begin(), keys.end(), "broadcast: strong-tob"),
            keys.end());
  EXPECT_TRUE(planAdmissibilityViolations(v.shrunken.plan).empty());
  EXPECT_LE(v.shrunken.plan.processCount, v.plan.processCount);
  EXPECT_LE(v.shrunken.plan.crashes.size(), v.plan.crashes.size());
  EXPECT_LE(v.shrunken.plan.workload.perProcess, v.plan.workload.perProcess);
  EXPECT_LE(v.shrunken.plan.maxTime, v.plan.maxTime);
  EXPECT_GT(v.shrunken.accepted, 0u);  // something actually shrank

  // Strong TOB only breaks through pre-stabilization disagreement, so
  // the essential gene — a nonzero tau_Omega — must survive shrinking.
  EXPECT_GT(v.shrunken.plan.tauOmega, 0u);
  EXPECT_NE(v.shrunken.plan.omegaMode, OmegaPreStabilization::kStable);
}

TEST(ShrinkerTest, ShrinkingIsDeterministic) {
  ExploreOptions options;
  options.stack = AlgoStack::kEtob;
  options.runs = 12;
  options.seed = 42;
  options.oracle = FuzzOracle::kStrictTob;
  options.shrink = false;  // find without shrinking, shrink explicitly
  const ExploreReport report = explore(options);
  ASSERT_FALSE(report.violations.empty());
  const FuzzPlan& failing = report.violations.front().plan;
  const ShrinkResult a = shrinkFuzzPlan(failing, FuzzOracle::kStrictTob);
  const ShrinkResult b = shrinkFuzzPlan(failing, FuzzOracle::kStrictTob);
  EXPECT_EQ(planFingerprint(a.plan), planFingerprint(b.plan));
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.accepted, b.accepted);
}

// --- FailurePattern edge cases under the explorer ---------------------------

FuzzPlan quietEtobPlan(std::size_t n) {
  FuzzPlan plan;
  plan.stack = AlgoStack::kEtob;
  plan.processCount = n;
  plan.simSeed = 17;
  plan.tauOmega = 600;
  plan.omegaMode = OmegaPreStabilization::kSplitBrain;
  plan.workload.perProcess = 3;
  return plan;
}

TEST(ExploreEdgeCaseTest, CrashAtTimeZeroIsAdmissibleAndPasses) {
  FuzzPlan plan = quietEtobPlan(4);
  plan.crashes.push_back(PlanCrash{3, 0});  // never takes a single step
  plan.maxTime = planHorizon(plan);
  ASSERT_TRUE(planAdmissibilityViolations(plan).empty());
  const ScenarioRunResult r = runFuzzPlan(plan, FuzzOracle::kSpec);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "?" : r.failures.front());

  // The crashed-at-0 process must have taken no steps at all.
  ScenarioInstance inst = instantiateScenario(planScenario(plan), plan.simSeed);
  inst.sim->run();
  EXPECT_EQ(inst.sim->trace().stepsTaken(3), 0u);
}

TEST(ExploreEdgeCaseTest, AllButOneCrashedStillConvergesForTheSurvivor) {
  FuzzPlan plan = quietEtobPlan(4);
  plan.crashes = {PlanCrash{0, 400}, PlanCrash{1, 0}, PlanCrash{2, 800}};
  plan.maxTime = planHorizon(plan);
  ASSERT_TRUE(planAdmissibilityViolations(plan).empty());
  const ScenarioRunResult r = runFuzzPlan(plan, FuzzOracle::kSpec);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "?" : r.failures.front());
}

TEST(ExploreEdgeCaseTest, CrashExactlyAtPartitionBoundaries) {
  // The victim crashes exactly when its isolation window starts (first
  // case) and exactly when the window heals (second case): both runs
  // must stay admissible and pass the spec oracle under the composed
  // RandomScheduleModel.
  for (Time crashAt : {Time{900}, Time{900 + 300}}) {
    FuzzPlan plan = quietEtobPlan(5);
    plan.partitions.push_back(PlanPartition{900, 300, 0, 4});
    plan.crashes.push_back(PlanCrash{4, crashAt});
    plan.maxTime = planHorizon(plan);
    ASSERT_TRUE(planAdmissibilityViolations(plan).empty());
    const ScenarioRunResult r = runFuzzPlan(plan, FuzzOracle::kSpec);
    EXPECT_TRUE(r.pass) << "crashAt=" << crashAt << ": "
                        << (r.failures.empty() ? "?" : r.failures.front());
  }
}

TEST(ExploreEdgeCaseTest, FailureKeysStripDetailSuffixes) {
  ScenarioRunResult r;
  r.failures = {"broadcast: strong-tob (tau-hat=1234)",
                "broadcast: strong-tob (tau-hat=99)", "ec: agreement"};
  const std::vector<std::string> keys = failureKeys(r);
  EXPECT_EQ(keys,
            (std::vector<std::string>{"broadcast: strong-tob", "ec: agreement"}));
}

}  // namespace
}  // namespace wfd
