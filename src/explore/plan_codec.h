// Portable JSON codec for FuzzPlans and corpus entries.
//
// A corpus entry is a plan plus the outcome its run is expected to
// reproduce — for a counterexample harvested by the explorer that is the
// (shrunken) violating plan and the checker clauses it violates; for a
// pinned regression plan it is pass = true. Replaying an entry
// (wfd_explore --replay, or the corpus_replay_* ctest targets) re-runs
// the plan and compares the outcome. Outcomes are pinned PER standard
// library: run schedules draw from std::uniform_int_distribution, which
// is implementation-defined (see scenario/trace_digest.h), so pass/fail,
// clause keys and digest are compared only when the entry records a
// digest for the running build's stdlib (or no digests at all — a
// declared schedule-independent plan); foreign stdlibs still verify the
// plan decodes and simulates cleanly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "explore/fuzz_plan.h"

namespace wfd {

/// Schema tag embedded in every serialized plan / corpus entry.
inline constexpr const char* kFuzzPlanSchema = "wfd-fuzz-plan-v1";

/// Tag of the standard library this binary was built against, used to
/// key per-stdlib pinned digests ("libstdc++", "libc++" or "other").
const char* stdlibTag();

/// Plan -> canonical JSON object (schema field included).
Json encodeFuzzPlan(const FuzzPlan& plan);

/// JSON object -> plan. Returns nullopt and fills *error on malformed or
/// inadmissible input (admissibility is re-validated on decode so a
/// hand-edited corpus file cannot smuggle an inadmissible run in).
std::optional<FuzzPlan> decodeFuzzPlan(const Json& j, std::string* error);

/// The outcome a corpus entry pins.
struct CorpusExpectation {
  bool pass = true;
  /// Sorted, de-duplicated clause keys (failureKeys of the run result).
  std::vector<std::string> failureKeys;
  /// stdlib tag -> pinned trace digest (hex), possibly empty.
  std::vector<std::pair<std::string, std::uint64_t>> digests;
};

struct CorpusEntry {
  std::string name;
  /// Provenance note, e.g. the wfd_explore invocation that found it.
  std::string foundBy;
  /// Which oracle the expectation was evaluated under ("spec" or
  /// "strict-tob").
  std::string oracle = "spec";
  FuzzPlan plan;
  CorpusExpectation expect;
};

Json encodeCorpusEntry(const CorpusEntry& entry);
std::optional<CorpusEntry> decodeCorpusEntry(const Json& j, std::string* error);

/// Reads and decodes a corpus entry (or bare plan, wrapped with a
/// pass=true expectation) from a file. nullopt + *error on failure.
std::optional<CorpusEntry> loadCorpusFile(const std::string& path,
                                          std::string* error);

/// Writes `entry` to `path` as pretty-stable one-line JSON + newline.
/// Returns false on I/O failure.
bool saveCorpusFile(const std::string& path, const CorpusEntry& entry);

/// Lists the corpus files (*.json) directly inside `dir`, sorted by
/// path. Directory iteration order is filesystem-defined (readdir order
/// differs between ext4, tmpfs, overlayfs, ...), so every consumer that
/// replays a whole directory MUST go through this to keep its output
/// stable across machines. nullopt + *error when `dir` is not a
/// readable directory; an empty vector when it contains no .json files.
std::optional<std::vector<std::string>> listCorpusFiles(const std::string& dir,
                                                        std::string* error);

}  // namespace wfd
