// Concrete failure detector oracles.
//
// Each oracle deterministically computes one history H in D(F) from the
// failure pattern F and its parameters. Protocols never see F — only the
// per-step FdValue samples. The interesting knob everywhere is the
// stabilization time: the paper's results hinge on what happens *before*
// detectors stabilize (divergent Omega outputs model partition periods).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/failure_pattern.h"
#include "sim/fd_interface.h"

namespace wfd {

/// How an Omega oracle behaves before its stabilization time tau_Omega.
enum class OmegaPreStabilization {
  /// Outputs the eventual leader from time 0 (tau_Omega is effectively 0).
  /// Under this history Algorithm 5 implements *strong* TOB (paper §5).
  kStable,
  /// All processes agree on a leader that rotates over the whole process
  /// set (including crashed processes) every rotationPeriod ticks.
  kRotating,
  /// Every process trusts a different leader (derived from its own id and
  /// the time) — models partition periods where elections disagree.
  kSplitBrain,
};

/// The eventual leader failure detector Omega: eventually outputs the same
/// correct process at every correct process, forever.
class OmegaFd final : public FailureDetector {
 public:
  /// `stabilizeAt` is tau_Omega; `leader` defaults to the lowest-id
  /// correct process of the pattern.
  OmegaFd(FailurePattern pattern, Time stabilizeAt,
          OmegaPreStabilization mode = OmegaPreStabilization::kSplitBrain,
          Time rotationPeriod = 97, ProcessId leader = kNoProcess);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;
  std::string name() const override;

  Time stabilizeAt() const { return stabilizeAt_; }
  ProcessId eventualLeader() const { return leader_; }

 private:
  FailurePattern pattern_;
  Time stabilizeAt_;
  OmegaPreStabilization mode_;
  Time rotationPeriod_;
  ProcessId leader_;
};

/// The quorum failure detector Sigma: any two output quorums (any
/// processes, any times) intersect; eventually quorums at correct
/// processes contain only correct processes. This oracle outputs Pi
/// before `stabilizeAt` and correct(F) afterwards — a valid Sigma history
/// in every environment with at least one correct process.
class SigmaFd final : public FailureDetector {
 public:
  SigmaFd(FailurePattern pattern, Time stabilizeAt);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;
  std::string name() const override;

 private:
  FailurePattern pattern_;
  Time stabilizeAt_;
  std::vector<ProcessId> everyone_;
  std::vector<ProcessId> correct_;
};

/// The perfect failure detector P: suspects exactly the crashed processes,
/// with an optional fixed detection lag (strong accuracy + completeness).
class PerfectFd final : public FailureDetector {
 public:
  PerfectFd(FailurePattern pattern, Time detectionLag = 0);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;
  std::string name() const override;

 private:
  FailurePattern pattern_;
  Time lag_;
  /// Sorted detection times (crashTime + lag of every faulty process):
  /// the suspect set at t is exactly the processes whose detection time
  /// is <= t, so its cardinality — one upper_bound — identifies it.
  std::vector<Time> detectAt_;
};

/// The eventually perfect failure detector ◊P: before `stabilizeAt` it may
/// wrongly suspect alive processes (pseudo-random, deterministic in
/// (seed, p, t)); afterwards it suspects exactly the crashed processes.
class EventuallyPerfectFd final : public FailureDetector {
 public:
  EventuallyPerfectFd(FailurePattern pattern, Time stabilizeAt,
                      std::uint64_t seed = 7);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;
  std::string name() const override;

 private:
  FailurePattern pattern_;
  Time stabilizeAt_;
  std::uint64_t seed_;
  /// Sorted crash times of the faulty processes (epoch computation).
  std::vector<Time> crashTimes_;
};

/// The composite Omega + Sigma — the weakest failure detector for strong
/// consistency in any environment [8]. Fills both `leader` and `quorum`.
class OmegaSigmaFd final : public FailureDetector {
 public:
  OmegaSigmaFd(std::shared_ptr<const OmegaFd> omega,
               std::shared_ptr<const SigmaFd> sigma);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const OmegaFd> omega_;
  std::shared_ptr<const SigmaFd> sigma_;
};

/// Fully scripted history — used by CHT tests to drive exact scenarios.
class ScriptedFd final : public FailureDetector {
 public:
  using Script = std::function<FdValue(ProcessId, Time)>;
  ScriptedFd(Script script, std::string name);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::string name() const override;

 private:
  Script script_;
  std::string name_;
};

/// Derives an Omega history from an eventually-perfect history the
/// classical way: trust the smallest non-suspected process. Valid because
/// after ◊P stabilizes, all correct processes compute the same smallest
/// alive (hence correct) process. Accepts ANY suspicion-style detector
/// whose suspects are sorted and eventually exact — EventuallyPerfectFd,
/// or the loss-robust ◇P variants in fd/robust_fd.h (heartbeat-derived
/// Omega re-stabilizing after loss bursts).
class OmegaFromEventuallyPerfect final : public FailureDetector {
 public:
  explicit OmegaFromEventuallyPerfect(
      std::shared_ptr<const FailureDetector> inner, std::size_t processCount);

  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const FailureDetector> inner_;
  std::size_t processCount_;
};

}  // namespace wfd
