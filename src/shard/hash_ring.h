// Consistent-hash ring: the key-routing layer of the sharded KV service.
//
// Nodes (shard indices) are placed on a 64-bit ring at `virtualNodes`
// pseudo-random positions each; a key is owned by the first node placed
// clockwise of the key's hash. Both placements are FNV-1a over fixed
// word sequences salted with the ring seed, so the whole mapping is a
// pure function of (seed, node set) — deterministic across platforms,
// and the same for every client that shares the seed (routing needs no
// coordination).
//
// The two properties the unit tests pin (tests/test_hash_ring.cpp):
//  * balance — with >= 64 virtual nodes per shard, the max/mean key
//    share across shards stays below 1.3;
//  * minimal migration — adding a node to an N-node ring re-homes an
//    expected 1/(N+1) fraction of keys, and REMOVING a node re-homes
//    exactly the keys it owned (every other key keeps its owner — the
//    property the crash-rebalance path in shard/sharded_service.h
//    relies on: a dead shard's keys disperse, live shards keep theirs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wfd {

class ConsistentHashRing {
 public:
  struct Config {
    /// Ring points per node. More virtual nodes = better balance at
    /// O(virtualNodes * nodes) memory; 64 keeps max/mean < 1.3.
    std::size_t virtualNodes = 64;
    /// Salt for every placement and key hash. Fixed seed = fixed ring.
    std::uint64_t seed = 0;
  };

  /// Default Config (64 virtual nodes, seed 0).
  ConsistentHashRing();
  explicit ConsistentHashRing(Config config);

  /// Inserts `node` at its virtualNodes ring positions. Idempotence is a
  /// bug in the caller: re-adding a present node is rejected.
  void addNode(std::uint32_t node);

  /// Removes every point of `node`. False when the node is absent. The
  /// last node cannot be removed (an empty ring routes nothing).
  bool removeNode(std::uint32_t node);

  bool contains(std::uint32_t node) const;
  std::size_t nodeCount() const { return nodes_.size(); }
  /// Current node set, ascending.
  const std::vector<std::uint32_t>& nodes() const { return nodes_; }
  /// Total ring points (nodeCount() * virtualNodes).
  std::size_t pointCount() const { return points_.size(); }

  /// Position of `key` on the ring (FNV-1a of {seed, key}).
  std::uint64_t keyPosition(std::uint64_t key) const;

  /// Owner of `key`: the node of the first ring point clockwise of
  /// keyPosition(key), wrapping. Requires a non-empty ring.
  std::uint32_t ownerOf(std::uint64_t key) const;

  /// The first `count` DISTINCT nodes clockwise of the key — replica
  /// placement (next_k). Returns min(count, nodeCount()) nodes, owner
  /// first.
  std::vector<std::uint32_t> ownersOf(std::uint64_t key,
                                      std::size_t count) const;

 private:
  /// (position, node), sorted by position then node — the tie order
  /// makes equal-position points deterministic too.
  using Point = std::pair<std::uint64_t, std::uint32_t>;

  Config config_;
  std::vector<Point> points_;
  std::vector<std::uint32_t> nodes_;
};

}  // namespace wfd
