// Scale-regression suite: pins the simulator's behavior across the
// big-cluster performance refactors.
//
// The digest matrix below was generated from the implementation BEFORE
// the lazy-event-queue / indexed-partition / FD-cache rewrites (PR 7),
// so every hot-path change since is proven behavior-preserving at small
// n: a refactor that reorders events, changes an FD value, or defers a
// message differently flips at least one of these 54 constants. The
// same scenario shapes then run at n=64 as smoke tests — the sizes the
// refactors exist for.
//
// If a digest here EVER changes, that is a behavior change, not a
// refactor. Do not re-pin without understanding exactly which event
// stream changed and why that is intended.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scenario/scale_scenarios.h"

namespace wfd {
namespace {

using scaletest::scalePartitionScenario;
using scaletest::scaleScenario;

constexpr std::size_t kNs[] = {3, 5, 8};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

// Generated from the pre-refactor implementation (PR 7 pin step);
// indexed [stack in kAllAlgoStacks order][n in kNs][seed in kSeeds].
// The etob and commit-etob rows (and the partition variant below, which
// runs the etob stack) were re-pinned for the eTOB hot-path rebuild:
// frontier-based auto-causal deps and delta-encoded promotes change the
// abstract wire WEIGHTS (which traceDigest folds in), while schedules,
// delivery sequences and every non-eTOB row are bit-identical — the
// tob-via-consensus / gossip-lww / omega-ec rows did not move.
constexpr std::uint64_t kPinnedMatrix[5][3][3] = {
    // etob
    {
        {0x245e8024ae145d4eULL, 0xe5a863ffa93db64eULL, 0x79b6028e5d19e90bULL},
        {0x93d4cd9e166e97acULL, 0x99208af6774bc55dULL, 0x586025a82e583022ULL},
        {0x1fe58ca76fd38448ULL, 0xae2e2594d4831ba5ULL, 0xd5f69d4d64a2b6feULL},
    },
    // commit-etob
    {
        {0x370aa57b6d25e1c9ULL, 0x48c626270d1e8d71ULL, 0xdded93c455c60d1aULL},
        {0x0c696b27d13318bfULL, 0xe2a932da39de9eb9ULL, 0xc08484f702cae6c6ULL},
        {0x0365bb04facb1804ULL, 0xaae0c0ddcc0d15f6ULL, 0xcfc2225ab305edf0ULL},
    },
    // tob-via-consensus
    {
        {0x1cda1272c7e8ba16ULL, 0x53062a8378f4614eULL, 0xda76c93c391e5052ULL},
        {0xb740483ca562f558ULL, 0x2c39e721ccc44928ULL, 0x8a3b5fea4b75b8ddULL},
        {0x7a9c766ce47fd8bcULL, 0x1111a8d128256866ULL, 0x4e4416dfaaf59db0ULL},
    },
    // gossip-lww
    {
        {0xdc040175422455b4ULL, 0xeef1b99d6c2bdef3ULL, 0xef4318c0e6be2ecfULL},
        {0x43bba940d595ca8dULL, 0x991b71eb45633395ULL, 0x1352d3d4c61c6831ULL},
        {0x6b9e5b0bb5da2614ULL, 0xd5018ac8b04d38e9ULL, 0xa3fe110c35b760dcULL},
    },
    // omega-ec
    {
        {0xf0f02ece9c95a7cdULL, 0xcc712804a0f0960eULL, 0x84cf68c2282f5366ULL},
        {0xe27ae3b71749f085ULL, 0x9cedddb4cc2c0109ULL, 0x646512e6551a15b1ULL},
        {0x4399dd321e2bbe9dULL, 0x63b900a7ab1bdc26ULL, 0xa4775ad492d0a600ULL},
    },
};

// Same pre-refactor pin for the periodic half/half partition variant
// (the indexed-connectivity rewrite's anchor); [n in kNs][seed in kSeeds].
constexpr std::uint64_t kPinnedPartition[3][3] = {
    {0x2266cc615b4d04e6ULL, 0x6ad209b2415b0bebULL, 0x722d5d8fd607fe3cULL},
    {0xd963940c34da6dc1ULL, 0x4f35a7b64630c78eULL, 0xedf41a0013e33f7fULL},
    {0x87e16f728b57c2bcULL, 0x3c00f937fdb790d7ULL, 0x7f0368039d23e388ULL},
};

TEST(ScalePinnedDigestTest, MatrixMatchesPreRefactorPins) {
  for (std::size_t si = 0; si < std::size(kAllAlgoStacks); ++si) {
    const AlgoStack stack = kAllAlgoStacks[si];
    for (std::size_t ni = 0; ni < std::size(kNs); ++ni) {
      for (std::size_t ki = 0; ki < std::size(kSeeds); ++ki) {
        const auto r =
            runScenario(scaleScenario(stack, kNs[ni]), kSeeds[ki]);
        EXPECT_TRUE(r.pass)
            << algoStackName(stack) << " n=" << kNs[ni]
            << " seed=" << kSeeds[ki]
            << (r.failures.empty() ? "" : ": " + r.failures.front());
        EXPECT_EQ(r.digest, kPinnedMatrix[si][ni][ki])
            << algoStackName(stack) << " n=" << kNs[ni]
            << " seed=" << kSeeds[ki];
      }
    }
  }
}

TEST(ScalePinnedDigestTest, PartitionVariantMatchesPreRefactorPins) {
  for (std::size_t ni = 0; ni < std::size(kNs); ++ni) {
    for (std::size_t ki = 0; ki < std::size(kSeeds); ++ki) {
      const auto r =
          runScenario(scalePartitionScenario(kNs[ni]), kSeeds[ki]);
      EXPECT_TRUE(r.pass)
          << "partition n=" << kNs[ni] << " seed=" << kSeeds[ki]
          << (r.failures.empty() ? "" : ": " + r.failures.front());
      EXPECT_EQ(r.digest, kPinnedPartition[ni][ki])
          << "partition n=" << kNs[ni] << " seed=" << kSeeds[ki];
    }
  }
}

// n=64 smoke: every stack runs its scale shape at a size where the
// O(n^2) bookkeeping used to dominate, and every checker still passes.
class LargeClusterSmokeTest : public ::testing::TestWithParam<AlgoStack> {};

TEST_P(LargeClusterSmokeTest, N64ShapePasses) {
  // Gossip-LWW at n=64 pays an O(n^2 * rounds * table) merge cost that
  // is protocol-inherent, not simulator overhead — a shorter horizon
  // (convergence happens by ~1500) keeps the smoke affordable under
  // sanitizers without weakening what it checks.
  const Time horizon = GetParam() == AlgoStack::kGossipLww ? 3000 : 6000;
  const auto r = runScenario(scaleScenario(GetParam(), 64, horizon), 1);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "" : r.failures.front());
  EXPECT_GT(r.messagesDelivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, LargeClusterSmokeTest, ::testing::ValuesIn(kAllAlgoStacks),
    [](const ::testing::TestParamInfo<AlgoStack>& info) {
      std::string name = algoStackName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LargeClusterSmokeTest, N64PartitionShapePasses) {
  const auto r = runScenario(scalePartitionScenario(64), 1);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "" : r.failures.front());
}

// --- The large-cluster catalog family ---------------------------------------
//
// These entries are excluded from the exhaustive sweeps in
// tests/test_scenarios.cpp and tests/test_api.cpp (see
// isLargeClusterScenario); this suite is their single per-build coverage:
// each entry runs once through the same facade path the sweeps use, and
// one entry double-runs as the determinism spot check.

TEST(LargeClusterCatalogTest, FamilyIsRegisteredAndMarked) {
  std::size_t large = 0;
  for (const Scenario& s : scenarioCatalog()) {
    if (isLargeClusterScenario(s)) {
      ++large;
      EXPECT_GE(s.config.processCount, 64u) << s.name;
    }
  }
  EXPECT_GE(large, 4u);
  ASSERT_NE(findScenario("large-cluster-leader-256"), nullptr);
  EXPECT_EQ(findScenario("large-cluster-leader-256")->config.processCount,
            256u);
}

TEST(LargeClusterCatalogTest, EveryFamilyEntryPassesItsCheckerSet) {
  for (const Scenario& s : scenarioCatalog()) {
    if (!isLargeClusterScenario(s)) continue;
    const ScenarioRunResult r = runScenario(s, 1);
    EXPECT_TRUE(r.pass)
        << s.name << (r.failures.empty() ? "" : ": " + r.failures.front());
    EXPECT_GT(r.eventsProcessed, 0u) << s.name;
  }
}

TEST(LargeClusterCatalogTest, Leader256IsDeterministic) {
  const Scenario* s = findScenario("large-cluster-leader-256");
  ASSERT_NE(s, nullptr);
  const ScenarioRunResult a = runScenario(*s, 7);
  const ScenarioRunResult b = runScenario(*s, 7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
}

}  // namespace
}  // namespace wfd
