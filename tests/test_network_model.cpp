// Unit tests: the pluggable NetworkModel layer — legacy-equivalent
// uniform delay, per-link asymmetric delay, partition deferral (one-shot
// and periodic), bounded duplication+reordering with exactly-once at the
// automaton boundary, and per-process clock skew.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "sim/network_model.h"

namespace wfd {
namespace {

LinkSend send(ProcessId from, ProcessId to, Time at) {
  return LinkSend{from, to, at, 0};
}

TEST(UniformDelayModelTest, ArrivalsWithinBounds) {
  UniformDelayModel m(20, 40);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 100), rng, arrivals);
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_GE(arrivals[0], 120u);
    EXPECT_LE(arrivals[0], 140u);
  }
}

TEST(UniformDelayModelTest, FixedDelayDrawsNothing) {
  UniformDelayModel m(20, 40, /*fixed=*/true);
  Rng a(7), b(7);
  std::vector<Time> arrivals;
  m.schedule(send(0, 1, 100), a, arrivals);
  EXPECT_EQ(arrivals, (std::vector<Time>{140}));
  // The fixed model must not consume rng state (legacy equivalence).
  EXPECT_EQ(a.between(0, 1'000'000), b.between(0, 1'000'000));
}

TEST(UniformDelayModelTest, MatchesLegacyDrawSequence) {
  // The model's draw must be exactly one rng.between(min, max) per send —
  // the pre-refactor Simulator::deliveryTime sequence.
  UniformDelayModel m(5, 95);
  Rng modelRng(99), referenceRng(99);
  for (int i = 0; i < 50; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 1000), modelRng, arrivals);
    EXPECT_EQ(arrivals[0], 1000 + referenceRng.between(5, 95));
  }
}

TEST(AsymmetricDelayModelTest, SlowProcessStretchesItsLinksOnly) {
  auto m = AsymmetricDelayModel::slowProcess(10, 20, /*slow=*/2, /*factor=*/5);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::vector<Time> fast, toSlow, fromSlow;
    m->schedule(send(0, 1, 0), rng, fast);
    m->schedule(send(0, 2, 0), rng, toSlow);
    m->schedule(send(2, 1, 0), rng, fromSlow);
    EXPECT_GE(fast[0], 10u);
    EXPECT_LE(fast[0], 20u);
    EXPECT_GE(toSlow[0], 50u);
    EXPECT_LE(toSlow[0], 100u);
    EXPECT_GE(fromSlow[0], 50u);
    EXPECT_LE(fromSlow[0], 100u);
  }
}

TEST(PartitionModelTest, OneShotWindowDefersToHealPoint) {
  PartitionSpec w;
  w.start = 100;
  w.width = 50;
  w.period = 0;
  auto m = std::make_shared<PartitionModel>(
      std::make_shared<UniformDelayModel>(10, 10, true),
      std::vector<PartitionSpec>{w});
  Rng rng(1);
  std::vector<Time> arrivals;
  m->schedule(send(0, 1, 100), rng, arrivals);  // lands at 110, inside window
  EXPECT_EQ(arrivals[0], 150u);
  arrivals.clear();
  m->schedule(send(0, 1, 200), rng, arrivals);  // after the window: untouched
  EXPECT_EQ(arrivals[0], 210u);
}

TEST(PartitionModelTest, PeriodicWindowsDeferEveryRecurrence) {
  PartitionSpec w;
  w.start = 0;
  w.width = 30;
  w.period = 100;  // closed [0,30), [100,130), [200,230), ...
  auto m = std::make_shared<PartitionModel>(
      std::make_shared<UniformDelayModel>(5, 5, true),
      std::vector<PartitionSpec>{w});
  Rng rng(1);
  std::vector<Time> arrivals;
  m->schedule(send(0, 1, 110), rng, arrivals);  // 115 is inside [100,130)
  EXPECT_EQ(arrivals[0], 130u);
  arrivals.clear();
  m->schedule(send(0, 1, 245), rng, arrivals);  // 250 is in a gap
  EXPECT_EQ(arrivals[0], 250u);
  arrivals.clear();
  m->schedule(send(0, 1, 300), rng, arrivals);  // 305 inside [300,330)
  EXPECT_EQ(arrivals[0], 330u);
}

TEST(PartitionModelTest, LinkFilterLimitsTheBlastRadius) {
  PartitionSpec w;
  w.start = 0;
  w.width = 1000;
  w.period = 0;
  w.affects = [](ProcessId from, ProcessId) { return from == 0; };
  auto m = std::make_shared<PartitionModel>(
      std::make_shared<UniformDelayModel>(10, 10, true),
      std::vector<PartitionSpec>{w});
  Rng rng(1);
  std::vector<Time> affected, unaffected;
  m->schedule(send(0, 1, 50), rng, affected);
  m->schedule(send(1, 0, 50), rng, unaffected);
  EXPECT_EQ(affected[0], 1000u);
  EXPECT_EQ(unaffected[0], 60u);
}

TEST(PartitionModelTest, JointlyGaplessSpecsRejectedNotLooped) {
  // Each spec individually leaves a gap (width < period), but together
  // they cover all time on the link: A owns [0,10)+20k, B owns
  // [10,20)+20k. Deferral can never escape; the shared fixed-point must
  // raise an invariant error instead of hanging.
  PartitionSpec a;
  a.start = 0;
  a.width = 10;
  a.period = 20;
  PartitionSpec b;
  b.start = 10;
  b.width = 10;
  b.period = 20;
  auto m = std::make_shared<PartitionModel>(
      std::make_shared<UniformDelayModel>(5, 5, true),
      std::vector<PartitionSpec>{a, b});
  Rng rng(1);
  std::vector<Time> arrivals;
  EXPECT_THROW(m->schedule(send(0, 1, 100), rng, arrivals), InvariantError);
}

TEST(PartitionModelTest, ChainedWindowsConvergeAcrossSpecs) {
  // A defers into B's window, B defers out: two passes, then done.
  PartitionSpec a;
  a.start = 100;
  a.width = 50;
  a.period = 0;
  PartitionSpec b;
  b.start = 150;
  b.width = 25;
  b.period = 0;
  auto m = std::make_shared<PartitionModel>(
      std::make_shared<UniformDelayModel>(10, 10, true),
      std::vector<PartitionSpec>{a, b});
  Rng rng(1);
  std::vector<Time> arrivals;
  m->schedule(send(0, 1, 100), rng, arrivals);  // 110 -> 150 (A) -> 175 (B)
  EXPECT_EQ(arrivals[0], 175u);
}

TEST(PartitionModelTest, RejectsGaplessRecurringWindows) {
  PartitionSpec w;
  w.start = 0;
  w.width = 100;
  w.period = 100;  // no gap: deferral would never terminate
  EXPECT_THROW(PartitionModel(std::make_shared<UniformDelayModel>(1, 1),
                              std::vector<PartitionSpec>{w}),
               InvariantError);
}

TEST(ChaosLinkModelTest, AllArrivalsStayCausal) {
  ChaosLinkModel::Config cfg;
  cfg.dupNum = 1;
  cfg.dupDen = 2;
  cfg.maxExtraCopies = 3;
  cfg.reorderJitter = 25;
  ChaosLinkModel m(std::make_shared<UniformDelayModel>(10, 20), cfg);
  EXPECT_TRUE(m.mayDuplicate());
  Rng rng(5);
  bool sawDuplicate = false;
  for (int i = 0; i < 300; ++i) {
    std::vector<Time> arrivals;
    m.schedule(send(0, 1, 1000), rng, arrivals);
    ASSERT_GE(arrivals.size(), 1u);
    sawDuplicate = sawDuplicate || arrivals.size() > 1;
    for (Time at : arrivals) {
      EXPECT_GT(at, 1000u);                       // causal
      EXPECT_LE(at, 1000u + 20 + 25 + 25);        // bounded
    }
    EXPECT_LE(arrivals.size(), 1u + cfg.maxExtraCopies);
  }
  EXPECT_TRUE(sawDuplicate);  // p=1/2 over 300 sends
}

TEST(ChaosLinkModelTest, LinkFilterKeepsOtherLinksClean) {
  ChaosLinkModel::Config cfg;
  cfg.dupNum = 1;
  cfg.dupDen = 1;  // always duplicate on affected links
  cfg.maxExtraCopies = 2;
  cfg.reorderJitter = 10;
  cfg.affects = [](ProcessId from, ProcessId) { return from == 0; };
  ChaosLinkModel m(std::make_shared<UniformDelayModel>(10, 10, true), cfg);
  Rng rng(5);
  std::vector<Time> clean;
  m.schedule(send(1, 2, 0), rng, clean);
  EXPECT_EQ(clean, (std::vector<Time>{10}));  // untouched, no jitter
  std::vector<Time> chaotic;
  m.schedule(send(0, 2, 0), rng, chaotic);
  EXPECT_GE(chaotic.size(), 2u);
}

TEST(ClockSkewModelTest, SpreadEndpointsAreExact) {
  auto m = ClockSkewModel::spread(std::make_shared<UniformDelayModel>(1, 1), 4,
                                  ClockSkewModel::Skew{3, 1},
                                  ClockSkewModel::Skew{1, 2});
  // p0 is 3x slower, p3 is 2x faster; middle ranks interpolate between.
  EXPECT_EQ(m->lambdaPeriod(0, 10), 30u);
  EXPECT_EQ(m->lambdaPeriod(3, 10), 5u);
  EXPECT_GT(m->lambdaPeriod(1, 10), m->lambdaPeriod(2, 10));
  EXPECT_LT(m->lambdaPeriod(1, 10), 30u);
}

TEST(ClockSkewModelTest, PeriodNeverDropsBelowOne) {
  ClockSkewModel m(std::make_shared<UniformDelayModel>(1, 1),
                   {ClockSkewModel::Skew{1, 100}, ClockSkewModel::Skew{1, 1}});
  EXPECT_EQ(m.lambdaPeriod(0, 10), 1u);  // 10/100 clamps to 1
  EXPECT_EQ(m.lambdaPeriod(1, 10), 10u);
}

TEST(ClockSkewModelTest, DelegatesSchedulingUntouched) {
  ClockSkewModel m(std::make_shared<UniformDelayModel>(10, 10, true),
                   {ClockSkewModel::Skew{2, 1}, ClockSkewModel::Skew{1, 1}});
  Rng rng(1);
  std::vector<Time> arrivals;
  m.schedule(send(0, 1, 100), rng, arrivals);
  EXPECT_EQ(arrivals, (std::vector<Time>{110}));
  EXPECT_FALSE(m.mayDuplicate());
}

}  // namespace
}  // namespace wfd
