// Tests: the CHT reduction (Section 4 + Appendix B) made executable —
// DAG properties (1)–(4), simulated configurations, k-tags/valency,
// bivalent-vertex location, decision gadgets, and end-to-end emulation
// of Omega from a detector D solving EC.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cht/extractor.h"
#include "cht/fd_dag.h"
#include "cht/simulation_tree.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

FdValue leaderValue(ProcessId l) {
  FdValue v;
  v.leader = l;
  return v;
}

// --- FdDag -------------------------------------------------------------------

TEST(FdDagTest, AddSampleIncrementsQueryIndex) {
  FdDag dag;
  dag.addSample(0, leaderValue(0));
  dag.addSample(0, leaderValue(1));
  EXPECT_EQ(dag.vertexCount(), 2u);
  EXPECT_EQ(dag.vertex(0).k, 1u);
  EXPECT_EQ(dag.vertex(1).k, 2u);
  EXPECT_EQ(dag.localQueryCount(0), 2u);
}

TEST(FdDagTest, EdgesFromAllExistingVertices) {
  FdDag dag;
  dag.addSample(0, leaderValue(0));
  dag.addSample(1, leaderValue(0));
  dag.addSample(0, leaderValue(1));
  // Vertex 2 has in-edges from 0 and 1 (paper Figure 1).
  EXPECT_TRUE(dag.hasEdge(0, 2));
  EXPECT_TRUE(dag.hasEdge(1, 2));
  EXPECT_TRUE(dag.hasEdge(0, 1));
  EXPECT_EQ(dag.edgeCount(), 3u);
}

TEST(FdDagTest, Property2SameProcessOrderedByK) {
  // Paper property (2): vertices [q,d,k], [q,d',k'] with k < k' are
  // connected (here: reachable).
  FdDag dag;
  for (int i = 0; i < 5; ++i) dag.addSample(0, leaderValue(i % 2));
  DagReach reach(dag);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_TRUE(reach.reaches(i, j));
      EXPECT_FALSE(reach.reaches(j, i));
    }
  }
}

TEST(FdDagTest, UnionMergesAndConverges) {
  FdDag a, b;
  a.addSample(0, leaderValue(0));
  b.addSample(1, leaderValue(1));
  a.unionWith(b);
  b.unionWith(a);
  EXPECT_TRUE(a.sameAs(b));
  EXPECT_EQ(a.vertexCount(), 2u);
}

TEST(FdDagTest, UnionSkipsForwardOverImportedOwnVertices) {
  // p0's next local sample must not collide with its own vertex imported
  // via a peer's DAG.
  FdDag mine, peers;
  peers.addSample(0, leaderValue(0));  // simulates an old copy of p0's DAG
  mine.unionWith(peers);
  const std::size_t idx = mine.addSample(0, leaderValue(0));
  EXPECT_EQ(mine.vertex(idx).k, 2u);
  EXPECT_EQ(mine.vertexCount(), 2u);
}

TEST(FdDagTest, CanonicalOrderIsProcessIndependent) {
  FdDag a, b;
  a.addSample(0, leaderValue(0));
  a.addSample(1, leaderValue(1));
  b.addSample(1, leaderValue(1));
  b.addSample(0, leaderValue(0));
  a.unionWith(b);
  b.unionWith(a);
  const auto oa = a.canonicalOrder();
  const auto ob = b.canonicalOrder();
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(a.vertex(oa[i]), b.vertex(ob[i]));
  }
}

TEST(FdDagTest, ReachabilityIsTransitive) {
  FdDag dag;
  dag.addSample(0, leaderValue(0));
  dag.addSample(1, leaderValue(0));
  dag.addSample(0, leaderValue(1));
  DagReach reach(dag);
  EXPECT_TRUE(reach.reaches(0, 2));
  EXPECT_FALSE(reach.reaches(2, 0));
}

// --- SimConfigState ----------------------------------------------------------

/// DAG where both processes sample a stable leader p0, `rounds` times each,
/// interleaved (so the interleaved order gives edges both ways).
FdDag stableDag(std::size_t n, ProcessId leader, std::size_t rounds) {
  FdDag dag;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (ProcessId p = 0; p < n; ++p) dag.addSample(p, leaderValue(leader));
  }
  return dag;
}

TreeLimits testLimits() {
  TreeLimits lim;
  lim.maxInstance = 3;
  lim.probeSteps = 150;
  lim.walkSteps = 10;
  lim.hookSteps = 24;
  return lim;
}

TEST(SimConfigTest, ProposeStepRecordsProposalAndBroadcasts) {
  FdDag dag = stableDag(2, 0, 4);
  SimConfigState config(omegaEcTarget(), 2);
  EXPECT_TRUE(config.pendingPropose(0));
  StepDescriptor step{0, 0, StepAction::kProposeOne, 0};
  config.apply(dag, step, 3);
  EXPECT_FALSE(config.pendingPropose(0));
  EXPECT_EQ(config.proposedUpTo(0), 1u);
  // Algorithm 4 broadcast promote(v, 1) to both processes.
  EXPECT_TRUE(config.hasPendingMessage(0));
  EXPECT_TRUE(config.hasPendingMessage(1));
}

TEST(SimConfigTest, FullRoundDecidesInstanceOne) {
  FdDag dag = stableDag(2, 0, 8);
  SimConfigState config(omegaEcTarget(), 2);
  // p0 (the leader) proposes 1; deliver its promote to p0; λ to decide.
  std::size_t v0 = 0;  // p0's first vertex is index 0 (k=1)
  config.apply(dag, {0, v0, StepAction::kProposeOne, 0}, 3);
  ASSERT_TRUE(config.hasPendingMessage(0));
  const std::uint64_t uid = config.oldestMessageUid(0);
  config.apply(dag, {0, 2, StepAction::kDeliverOldest, uid}, 3);  // k=2 vertex
  config.apply(dag, {0, 4, StepAction::kLambda, 0}, 3);           // k=3 vertex
  EXPECT_EQ(config.responses(1), (std::set<std::uint64_t>{1}));
  EXPECT_FALSE(config.disagreement(1));
  // Deciding re-arms the proposal ladder.
  EXPECT_TRUE(config.pendingPropose(0));
}

TEST(SimConfigTest, CopyIsDeep) {
  FdDag dag = stableDag(2, 0, 4);
  SimConfigState a(omegaEcTarget(), 2);
  a.apply(dag, {0, 0, StepAction::kProposeZero, 0}, 3);
  SimConfigState b(a);
  b.apply(dag, {1, 1, StepAction::kProposeOne, 0}, 3);
  EXPECT_TRUE(a.pendingPropose(1));
  EXPECT_FALSE(b.pendingPropose(1));
}

// --- TreeAnalysis: tags, bivalence, gadgets ----------------------------------

TEST(TreeAnalysisTest, RootBivalentUnderStableLeader) {
  FdDag dag = stableDag(2, 0, 10);
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  SimConfigState root(omegaEcTarget(), 2);
  const KTag t = analysis.tag(root, 1);
  EXPECT_TRUE(t.has0);
  EXPECT_TRUE(t.has1);
  EXPECT_FALSE(t.hasBot) << "stable leader: instance 1 cannot disagree";
  EXPECT_TRUE(t.bivalent());
}

TEST(TreeAnalysisTest, LeaderProposalMakesUnivalent) {
  FdDag dag = stableDag(2, 0, 10);
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  SimConfigState config(omegaEcTarget(), 2);
  // The leader p0 proposes 1 — every completion now decides 1.
  config.apply(dag, {0, 0, StepAction::kProposeOne, 0}, 3);
  const KTag t = analysis.tag(config, 1);
  EXPECT_TRUE(t.univalent());
  EXPECT_EQ(t.value(), 1u);
}

TEST(TreeAnalysisTest, NonLeaderProposalStaysBivalent) {
  FdDag dag = stableDag(2, 0, 10);
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  SimConfigState config(omegaEcTarget(), 2);
  // p1 proposes 1, but the decision tracks the leader p0's proposal.
  config.apply(dag, {1, 1, StepAction::kProposeOne, 0}, 3);
  const KTag t = analysis.tag(config, 1);
  EXPECT_TRUE(t.bivalent());
}

TEST(TreeAnalysisTest, SplitBrainMakesInstanceInvalid) {
  // Both processes permanently trust themselves: deciders follow their own
  // proposals — the mixed probe must witness disagreement (⊥).
  FdDag dag;
  for (std::size_t r = 0; r < 10; ++r) {
    dag.addSample(0, leaderValue(0));
    dag.addSample(1, leaderValue(1));
  }
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  SimConfigState root(omegaEcTarget(), 2);
  const KTag t = analysis.tag(root, 1);
  EXPECT_TRUE(t.hasBot);
  EXPECT_TRUE(t.invalid());
}

TEST(TreeAnalysisTest, FindBivalentAtInstanceOneWhenStable) {
  FdDag dag = stableDag(2, 0, 10);
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  auto found = analysis.findBivalent();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->second, 1u);
}

TEST(TreeAnalysisTest, FindBivalentSkipsPastUnstablePrefix) {
  // Split-brain for the first 3 samples per process, then stable on p0.
  FdDag dag;
  for (std::size_t r = 0; r < 3; ++r) {
    dag.addSample(0, leaderValue(0));
    dag.addSample(1, leaderValue(1));
  }
  for (std::size_t r = 0; r < 24; ++r) {
    dag.addSample(0, leaderValue(0));
    dag.addSample(1, leaderValue(0));
  }
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  auto found = analysis.findBivalent();
  ASSERT_TRUE(found.has_value());
  EXPECT_GE(found->second, 1u);
  EXPECT_LE(found->second, 3u);
}

TEST(TreeAnalysisTest, GadgetDecidingProcessIsTheLeader) {
  FdDag dag = stableDag(2, 0, 12);
  TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
  auto bivalent = analysis.findBivalent();
  ASSERT_TRUE(bivalent.has_value());
  auto gadget = analysis.findGadget(bivalent->first, bivalent->second);
  ASSERT_TRUE(gadget.has_value());
  EXPECT_EQ(gadget->decidingProcess, 0u)
      << "the fork sits at the stable leader's proposal step";
}

TEST(TreeAnalysisTest, ExtractLeaderStableCase) {
  for (ProcessId leader = 0; leader < 2; ++leader) {
    FdDag dag = stableDag(2, leader, 12);
    TreeAnalysis analysis(dag, omegaEcTarget(), 2, testLimits());
    auto extracted = analysis.extractLeader();
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(*extracted, leader);
  }
}

TEST(TreeAnalysisTest, ExtractLeaderThreeProcesses) {
  FdDag dag = stableDag(3, 1, 10);
  TreeLimits lim = testLimits();
  auto analysis = TreeAnalysis(dag, omegaEcTarget(), 3, lim);
  auto extracted = analysis.extractLeader();
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, 1u);
}

TEST(TreeAnalysisTest, DeterministicAcrossEqualDags) {
  // Two processes holding the same DAG must extract the same leader —
  // the convergence property the reduction relies on.
  FdDag a = stableDag(2, 0, 12);
  FdDag b;
  b.unionWith(a);
  TreeAnalysis ana(a, omegaEcTarget(), 2, testLimits());
  TreeAnalysis anb(b, omegaEcTarget(), 2, testLimits());
  EXPECT_EQ(ana.extractLeader(), anb.extractLeader());
}

// --- End-to-end: emulating Omega through the extractor automaton -------------

ChtConfig e2eConfig() {
  ChtConfig cfg;
  cfg.limits = testLimits();
  cfg.maxOwnSamples = 16;
  cfg.extractEvery = 24;
  return cfg;
}

/// Last leader estimate output by p (kNoProcess if none).
ProcessId lastEstimate(const Trace& trace, ProcessId p) {
  ProcessId out = kNoProcess;
  for (const auto& ev : trace.outputs(p)) {
    if (const auto* est = ev.value.as<LeaderEstimate>()) out = est->leader;
  }
  return out;
}

TEST(ChtExtractorTest, EmulatesOmegaFromStableOmegaHistory) {
  SimConfig cfg;
  cfg.processCount = 2;
  cfg.maxTime = 12000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 5;
  cfg.maxDelay = 15;
  auto fp = FailurePattern::noFailures(2);
  auto omega = std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 2; ++p) {
    sim.addProcess(p, std::make_unique<ChtExtractorAutomaton>(omegaEcTarget(), 2,
                                                              e2eConfig()));
  }
  ASSERT_TRUE(sim.runUntil([](const Simulator& s) {
    return lastEstimate(s.trace(), 0) == 0 && lastEstimate(s.trace(), 1) == 0;
  }));
  // Stabilized on the same correct process — Omega emulated.
  EXPECT_EQ(lastEstimate(sim.trace(), 0), 0u);
  EXPECT_EQ(lastEstimate(sim.trace(), 1), 0u);
}

TEST(ChtExtractorTest, EmulatesOmegaAfterUnstablePrefix) {
  SimConfig cfg;
  cfg.processCount = 2;
  cfg.maxTime = 20000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 5;
  cfg.maxDelay = 15;
  auto fp = FailurePattern::noFailures(2);
  // Split-brain for the first 60 ticks (~3 samples/process), then stable.
  auto omega = std::make_shared<OmegaFd>(fp, 60, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  ChtConfig ccfg = e2eConfig();
  ccfg.limits.maxInstance = 4;
  for (ProcessId p = 0; p < 2; ++p) {
    sim.addProcess(p, std::make_unique<ChtExtractorAutomaton>(omegaEcTarget(), 2,
                                                              ccfg));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    const ProcessId a = lastEstimate(s.trace(), 0);
    return a != kNoProcess && a == lastEstimate(s.trace(), 1) &&
           s.failurePattern().correct(a);
  }));
  EXPECT_EQ(lastEstimate(sim.trace(), 0), lastEstimate(sim.trace(), 1));
}

TEST(ChtExtractorTest, EmulatesOmegaFromSuspectListDetector) {
  // D = ◊P (stabilized immediately for tractability); A = Algorithm 4 over
  // the suspect->leader reduction. The extractor sees only D's values.
  SimConfig cfg;
  cfg.processCount = 2;
  cfg.maxTime = 12000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 5;
  cfg.maxDelay = 15;
  auto fp = FailurePattern::noFailures(2);
  auto detector = std::make_shared<EventuallyPerfectFd>(fp, 0);
  Simulator sim(cfg, fp, detector);
  for (ProcessId p = 0; p < 2; ++p) {
    sim.addProcess(p, std::make_unique<ChtExtractorAutomaton>(
                          suspectBasedEcTarget(), 2, e2eConfig()));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    const ProcessId a = lastEstimate(s.trace(), 0);
    return a != kNoProcess && a == lastEstimate(s.trace(), 1) &&
           s.failurePattern().correct(a);
  }));
  EXPECT_EQ(lastEstimate(sim.trace(), 0), 0u) << "lowest non-suspected";
}

}  // namespace
}  // namespace wfd
