#include "etob/commit_etob.h"

#include <algorithm>

#include "common/ensure.h"

namespace wfd {
namespace {

/// True iff `prefix` is a prefix of `seq`.
bool isPrefix(const std::vector<MsgId>& prefix, const std::vector<MsgId>& seq) {
  return seq.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), seq.begin());
}

/// Total strength order on commit sequences: longer beats shorter, equal
/// lengths tie-break to the lexicographically smaller id sequence. Every
/// process applies the same rule to every commit it learns, and commits
/// only ever travel by broadcast over reliable links, so all correct
/// processes converge on the same strongest commit — which is what keeps
/// eTOB's eventual agreement alive even in runs outside the §7 proviso
/// where two pre-stabilization leaders managed to commit conflicting
/// prefixes (a schedule wfd_explore finds readily; the previous behaviour
/// of refusing conflicting commits forever deadlocked convergence).
bool strongerCommit(const std::vector<MsgId>& a, const std::vector<MsgId>& b) {
  if (a.size() != b.size()) return a.size() > b.size();
  return a < b;
}

}  // namespace

CommitEtobAutomaton::CommitEtobAutomaton(EtobConfig config)
    : config_(config), cg_(config.edgeMode) {}

void CommitEtobAutomaton::onInput(const StepContext&, const Payload& input,
                                  Effects& fx) {
  const auto* bcast = input.as<BroadcastInput>();
  if (bcast == nullptr) return;
  AppMsg m = bcast->msg;
  std::vector<MsgId> deps = m.causalDeps;
  if (config_.autoCausal) {
    // Frontier deps are closure-equivalent to all known ids (see
    // EtobAutomaton::onInput).
    for (MsgId known : cg_.frontier()) deps.push_back(known);
  }
  cg_.addMessage(m, deps);
  if (config_.deltaUpdates) {
    const std::size_t weight = 3 + m.body.size() + deps.size();
    fx.broadcast(Payload::of(EtobDeltaMsg{std::move(m), std::move(deps)}), weight);
  } else {
    fx.broadcast(Payload::of(EtobUpdateMsg{cg_}), cg_.approxWeight());
  }
}

void CommitEtobAutomaton::onMessage(const StepContext& ctx, ProcessId from,
                                    const Payload& msg, Effects& fx) {
  if (const auto* update = msg.as<EtobUpdateMsg>()) {
    cg_.unionWith(update->cg);
    pruneAdopted(update->cg);
    updatePromote();
    return;
  }
  if (const auto* delta = msg.as<EtobDeltaMsg>()) {
    cg_.addMessage(delta->msg, delta->deps);
    adoptedBodies_.erase(delta->msg.id);
    updatePromote();
    return;
  }
  if (const auto* promote = msg.as<EtobPromoteMsg>()) {
    auto& chain = chains_[from];
    advancePromoteChain(chain, *promote, cg_, adoptedBodies_);
    if (ctx.fd.leader != from || chain.epoch <= adoptedEpoch_[from]) return;
    // Commit guard: never adopt a sequence that contradicts what this
    // process already knows to be committed.
    if (!extendsCommitted(chain.ids)) return;
    adoptedEpoch_[from] = chain.epoch;
    d_ = chain.ids;
    fx.deliverSequence(d_);
    // Acknowledge the adoption to the leader (commit machinery).
    fx.send(from, Payload::of(EtobAckMsg{chain.epoch}));
    return;
  }
  if (const auto* ack = msg.as<EtobAckMsg>()) {
    auto seqIt = epochSeq_.find(ack->epoch);
    if (seqIt == epochSeq_.end()) return;  // pruned or never promoted by me
    auto& voters = acks_[ack->epoch];
    voters.insert(from);
    const std::size_t majority = ctx.processCount / 2 + 1;
    if (voters.size() < majority) return;
    const std::vector<MsgId>& candidate = seqIt->second;
    if (candidate.size() <= committed_.size()) return;  // nothing new
    if (!isPrefix(committed_, candidate)) {
      // Should not happen while this process leads (its own promotes
      // extend its committed prefix); counted for honesty.
      ++commitConflicts_;
      return;
    }
    // Stale-epoch guard: the candidate was snapshotted when it was this
    // leader's promote sequence, but an adoptCommit in between may have
    // REBASED promote_ into a different order. Committing such a moot
    // snapshot would make committed_ diverge from every future promote —
    // each then refused by the commit guard at every process, this one
    // included, freezing d_i forever (a deadlock wfd_explore shrank to a
    // 5-process run). Only commit candidates the current promote order
    // still stands behind.
    if (!isPrefix(candidate, cg_.promoteSequence())) return;
    committed_ = candidate;
    std::vector<AppMsg> content;
    content.reserve(committed_.size());
    std::size_t weight = 2;
    for (MsgId id : committed_) {
      const AppMsg* m = findMessage(id);
      WFD_ENSURE_MSG(m != nullptr, "leader promoted a message it cannot name");
      content.push_back(*m);
      weight += 2 + m->body.size();
    }
    fx.broadcast(Payload::of(EtobCommitMsg{std::move(content)}), weight);
    // The indication must describe this process's own delivery sequence;
    // the leader's loopback promote may still be in flight, so align d_i
    // with the committed prefix before indicating.
    if (!isPrefix(committed_, d_)) {
      d_ = committed_;
      fx.deliverSequence(d_);
    }
    fx.output(Payload::of(CommittedPrefix{committed_.size()}));
    return;
  }
  if (const auto* commit = msg.as<EtobCommitMsg>()) {
    adoptCommit(commit->prefix, fx);
    return;
  }
}

void CommitEtobAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  if (ctx.fd.leader != ctx.self) return;
  const std::vector<MsgId>& promote = cg_.promoteSequence();
  // Delta-encode against the previous sent promote unless adoptCommit
  // rebased the sequence since then (the suffix would extend the wrong
  // base); a rebase forces one full snapshot, after which deltas resume.
  const bool delta = config_.deltaPromotes && !rebasedSinceLastSent_;
  const std::size_t base = delta ? lastSentLen_ : 0;
  WFD_DCHECK(base <= promote.size());
  // Promote only when every promoted message's content is known (a
  // commit-adopted placeholder may still be in flight). Entries below
  // `base` were resolvable when the previous promote shipped them and
  // nothing here forgets content, so scanning the suffix suffices.
  std::vector<AppMsg> seq;
  seq.reserve(promote.size() - base);
  std::size_t weight = 3;
  for (std::size_t k = base; k < promote.size(); ++k) {
    const AppMsg* m = findMessage(promote[k]);
    if (m == nullptr) return;  // wait for the content to arrive
    seq.push_back(*m);
    weight += 2 + m->body.size();
  }
  ++promoteEpoch_;
  epochSeq_[promoteEpoch_] = promote;
  // Prune acknowledged bookkeeping far behind the committed frontier.
  while (!epochSeq_.empty() && epochSeq_.begin()->first + 128 < promoteEpoch_) {
    acks_.erase(epochSeq_.begin()->first);
    epochSeq_.erase(epochSeq_.begin());
  }
  lastSentLen_ = promote.size();
  rebasedSinceLastSent_ = false;
  fx.broadcast(Payload::of(EtobPromoteMsg{std::move(seq), promoteEpoch_, base}),
               weight);
}

void CommitEtobAutomaton::updatePromote() {
  cg_.extendPromote();
}

void CommitEtobAutomaton::pruneAdopted(const CausalityGraph& learned) {
  if (adoptedBodies_.empty()) return;
  for (MsgId id : learned.ids()) {
    if (cg_.contains(id)) adoptedBodies_.erase(id);
  }
}

void CommitEtobAutomaton::adoptCommit(const std::vector<AppMsg>& prefix,
                                      Effects& fx) {
  std::vector<MsgId> ids;
  ids.reserve(prefix.size());
  for (const AppMsg& m : prefix) ids.push_back(m.id);
  if (isPrefix(ids, committed_)) return;  // already covered
  if (!isPrefix(committed_, ids)) {
    // Conflicting commit: possible only outside the §7 proviso (two
    // leaders each gathered a majority of stale acknowledgments). Keep
    // the stronger of the two — a deterministic join all processes
    // compute identically — so convergence survives; the local prefix
    // indication is revoked, which is exactly what §7 says cannot be
    // avoided without the proviso.
    ++commitConflicts_;
    if (!strongerCommit(ids, committed_)) return;
  }
  // Learn the content (the committing leader included it) and rebase the
  // local promote sequence onto the committed prefix.
  for (const AppMsg& m : prefix) {
    cg_.addMessage(m, {});
  }
  committed_ = std::move(ids);
  cg_.resetPromote(committed_);
  rebasedSinceLastSent_ = true;
  // The indication is emitted once the local delivery sequence reflects
  // the committed prefix (it may still show an older leader's view).
  if (isPrefix(committed_, d_)) {
    fx.output(Payload::of(CommittedPrefix{committed_.size()}));
  } else {
    d_ = committed_;
    fx.deliverSequence(d_);
    fx.output(Payload::of(CommittedPrefix{committed_.size()}));
  }
}

bool CommitEtobAutomaton::extendsCommitted(const std::vector<MsgId>& seq) const {
  return isPrefix(committed_, seq);
}

const AppMsg* CommitEtobAutomaton::findMessage(MsgId id) const {
  if (cg_.contains(id)) return &cg_.message(id);
  auto it = adoptedBodies_.find(id);
  return it == adoptedBodies_.end() ? nullptr : &it->second;
}

}  // namespace wfd
