// E9 — design-choice ablations (not a paper claim; engineering study of
// the implementation choices DESIGN.md calls out).
//
//  A1  causality-graph edge mode: full-paper edges (from every element of
//      C(m)) vs frontier edges (causally-maximal only) — same transitive
//      closure, far fewer edges.
//  A2  update contents: full CG_i per update (the paper's letter) vs
//      per-message deltas — same behaviour, far less gossip weight.
//  A3  promote cadence: every λ-step (the paper's letter) vs
//      promote-on-change with periodic refresh — the dominant wire cost.
//
// Invariant for every ablation: byte-for-byte identical final delivery
// sequences and a passing ETOB spec check.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/etob_automaton.h"

namespace wfd::bench {
namespace {

struct Outcome {
  std::uint64_t weight = 0;
  std::uint64_t messages = 0;
  std::size_t cgEdges = 0;
  bool identicalToBaseline = true;
  bool specOk = false;
  Time tau = 0;
};

std::vector<std::vector<MsgId>> finalSequences(const Simulator& sim) {
  std::vector<std::vector<MsgId>> out;
  for (ProcessId p = 0; p < sim.config().processCount; ++p) {
    out.push_back(sim.trace().currentDelivered(p));
  }
  return out;
}

Outcome run(const EtobConfig& protoCfg, std::uint64_t seed,
            const std::vector<std::vector<MsgId>>* baseline) {
  SimConfig cfg;
  cfg.processCount = 3;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  const Time tauOmega = 1200;
  auto fp = FailurePattern::noFailures(3);
  auto omega =
      std::make_shared<OmegaFd>(fp, tauOmega, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>(protoCfg));
  }
  BroadcastWorkload w;
  w.perProcess = 8;
  w.causalChainPerOrigin = true;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 1500 && broadcastConverged(s, log);
  });
  Outcome out;
  out.weight = sim.trace().weightSent();
  out.messages = sim.trace().messagesSent();
  out.cgEdges =
      static_cast<const EtobAutomaton&>(sim.automaton(0)).causalityGraph().edgeCount();
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  out.specOk = report.coreOk() && report.causalOrderOk;
  out.tau = report.tau;
  if (baseline != nullptr) {
    out.identicalToBaseline = finalSequences(sim) == *baseline;
  }
  return out;
}

void printTable() {
  std::printf("E9: ablations of Algorithm 5's implementation choices\n"
              "(n=3, tau_Omega=1200, 24 causally chained broadcasts)\n\n");
  Table t({"variant", "weight", "msgs", "cg_edges", "same_d", "spec"}, 15);

  EtobConfig paper;  // the paper's letter: full edges, full updates, λ-promotes
  std::vector<std::vector<MsgId>> baselineSeqs;
  {
    auto base = run(paper, 1, nullptr);
    // Re-run to capture sequences (run() doesn't return them).
    // Baseline comparison below uses a fresh run per variant with the
    // same seed, so "same_d" for the paper row is trivially yes.
    t.row({"paper-exact", std::to_string(base.weight),
           std::to_string(base.messages), std::to_string(base.cgEdges), "yes",
           base.specOk ? "ok" : "FAIL"});
  }
  // Capture baseline delivery sequences once.
  {
    SimConfig cfg;
    cfg.processCount = 3;
    cfg.seed = 1;
    cfg.maxTime = 30000;
    cfg.timeoutPeriod = 10;
    cfg.minDelay = 20;
    cfg.maxDelay = 40;
    auto fp = FailurePattern::noFailures(3);
    auto omega =
        std::make_shared<OmegaFd>(fp, 1200, OmegaPreStabilization::kSplitBrain);
    Simulator sim(cfg, fp, omega);
    for (ProcessId p = 0; p < 3; ++p) {
      sim.addProcess(p, std::make_unique<EtobAutomaton>(paper));
    }
    BroadcastWorkload w;
    w.perProcess = 8;
    w.causalChainPerOrigin = true;
    auto log = scheduleBroadcastWorkload(sim, w);
    sim.runUntil([&](const Simulator& s) {
      return s.now() > 2700 && broadcastConverged(s, log);
    });
    baselineSeqs = finalSequences(sim);
  }

  EtobConfig frontier = paper;
  frontier.edgeMode = CgEdgeMode::kFrontier;
  auto a1 = run(frontier, 1, &baselineSeqs);
  t.row({"frontier-edges", std::to_string(a1.weight), std::to_string(a1.messages),
         std::to_string(a1.cgEdges), a1.identicalToBaseline ? "yes" : "NO",
         a1.specOk ? "ok" : "FAIL"});

  EtobConfig delta = paper;
  delta.deltaUpdates = true;
  auto a2 = run(delta, 1, &baselineSeqs);
  t.row({"delta-updates", std::to_string(a2.weight), std::to_string(a2.messages),
         std::to_string(a2.cgEdges), a2.identicalToBaseline ? "yes" : "NO",
         a2.specOk ? "ok" : "FAIL"});

  EtobConfig lazy = paper;
  lazy.deltaUpdates = true;
  lazy.promoteRefreshEvery = 50;
  auto a3 = run(lazy, 1, &baselineSeqs);
  t.row({"delta+lazyprom", std::to_string(a3.weight), std::to_string(a3.messages),
         std::to_string(a3.cgEdges), a3.identicalToBaseline ? "yes" : "NO*",
         a3.specOk ? "ok" : "FAIL"});
  std::printf("\n(*) promote suppression changes WHICH prefix is adopted when\n"
              "— the spec still holds; the τ bound relaxes to τ_Ω + N·Δt + Δc"
              " (measured τ̂ = %llu).\n\n",
              static_cast<unsigned long long>(a3.tau));
}

void BM_PaperExact(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(EtobConfig{}, seed++, nullptr);
    benchmark::DoNotOptimize(r);
    state.counters["weight"] = static_cast<double>(r.weight);
  }
}
BENCHMARK(BM_PaperExact)->Unit(benchmark::kMillisecond);

void BM_DeltaLazy(benchmark::State& state) {
  EtobConfig cfg;
  cfg.deltaUpdates = true;
  cfg.promoteRefreshEvery = 50;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = run(cfg, seed++, nullptr);
    benchmark::DoNotOptimize(r);
    state.counters["weight"] = static_cast<double>(r.weight);
  }
}
BENCHMARK(BM_DeltaLazy)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
