// Deterministic discrete-event simulator of the paper's system model.
//
// Produces admissible runs: every correct process takes infinitely many
// steps (periodic λ-steps with period Δ_t, the "local timeout"), and
// every message sent to a correct process is eventually received exactly
// once at the automaton boundary (scheduling policy — delays, partitions,
// duplication, reordering, clock skew — is delegated to a pluggable
// NetworkModel; partition windows only defer delivery, never drop). All
// nondeterminism is drawn from one seeded Rng, so a (config, pattern,
// model, seed) tuple fully determines the run.
//
// Fair-lossy networks: when the model reports mayDrop(), the simulator
// activates a stubborn retransmission layer (link/reliable_link.h)
// beneath the automata — every data send is acked by the receiver and
// retransmitted with capped exponential backoff until acked or an
// endpoint crashes, and the receiver-side uid dedup already used for
// duplicating models makes redelivery invisible to the automaton. Link
// traffic (acks, retry timers, retransmitted copies) counts toward
// eventsProcessed/maxEvents but NEVER touches the trace, so trace
// digests compare across lossy and lossless runs of the same protocol
// schedule. A separate link Rng keeps retransmission scheduling off the
// main draw sequence: at loss rate 0 the run is draw-for-draw identical
// to the legacy reliable path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "link/reliable_link.h"
#include "sim/automaton.h"
#include "sim/failure_pattern.h"
#include "sim/fd_interface.h"
#include "sim/message.h"
#include "sim/network_model.h"
#include "sim/trace.h"

namespace wfd {

/// Scheduler parameters.
struct SimConfig {
  std::size_t processCount = 3;
  std::uint64_t seed = 1;

  /// Hard stop: no event at time > maxTime is processed.
  Time maxTime = 200'000;
  /// Hard stop on total processed events (runaway guard).
  std::uint64_t maxEvents = 4'000'000;

  /// λ-step period Δ_t ("local timeout" granularity).
  Time timeoutPeriod = 10;
  /// Link delay bounds [minDelay, maxDelay]; Δ_c = maxDelay.
  Time minDelay = 40;
  Time maxDelay = 60;
  /// If true every message takes exactly maxDelay — used by the E1
  /// latency experiment to count communication steps as latency/Δ_c.
  bool fixedDelay = false;

  /// Keep full d_i snapshot history in the trace (tests: yes, benches:
  /// usually no — aggregates suffice).
  bool keepDeliverySnapshots = true;
};

/// A partition window: messages on affected links sent or in flight
/// during [start, end) are deferred until `end` (links stay reliable).
struct LinkDisruption {
  Time start = 0;
  Time end = 0;
  std::function<bool(ProcessId from, ProcessId to)> affects;
};

/// Discrete-event simulator. Owns the automata, the virtual clock, the
/// in-flight message queue, and the run trace.
class Simulator {
 public:
  /// Without an explicit model, a UniformDelayModel is built from the
  /// config's [minDelay, maxDelay] / fixedDelay fields — bit-for-bit the
  /// pre-NetworkModel scheduling for any (config, pattern, seed) triple.
  Simulator(SimConfig config, FailurePattern pattern,
            std::shared_ptr<const FailureDetector> detector,
            std::shared_ptr<const NetworkModel> network = nullptr);

  /// Installs the automaton of process p. Must be called for every p
  /// before running.
  void addProcess(ProcessId p, std::unique_ptr<Automaton> automaton);

  /// Schedules an application input for p at time t.
  void scheduleInput(ProcessId p, Time t, Payload input);

  /// Adds a partition window (applied on top of whatever the network
  /// model scheduled; kept for backwards compatibility — new code should
  /// prefer a PartitionModel).
  void addDisruption(LinkDisruption d);

  /// Runs until maxTime / maxEvents.
  void run();

  /// Incremental stepping: processes every pending event with time <= t
  /// (still bounded by maxTime / maxEvents), then stops — the next event,
  /// if any, is strictly later than t. Interleaving runUntilTime calls
  /// with run()/runUntil() is sound: all of them drain the same event
  /// queue in the same order, so a run split into arbitrary increments
  /// is bit-for-bit the run executed in one go. Returns true while the
  /// run can still make progress (events remain and no limit was hit).
  bool runUntilTime(Time t);

  /// Timestamp of the earliest pending event; nullopt when the queue is
  /// empty. (The facade's quiescence detection peeks at this.)
  std::optional<Time> nextEventTime() const;

  /// Runs until the predicate holds or the limits hit. Returns true iff
  /// the predicate held.
  ///
  /// Contract: the predicate is evaluated once before any event, then
  /// after every `checkEvery`-th processed event, and once more after
  /// the final event. With checkEvery == 1 the run therefore stops at
  /// the EARLIEST event boundary at which the predicate holds — now()
  /// is the timestamp of the first satisfying event. With checkEvery > 1
  /// up to checkEvery - 1 further events may be processed first, so
  /// now() can overshoot the first satisfying time by the span of those
  /// events (the default trades that precision for fewer predicate
  /// evaluations; pass 1 when the stop time itself is asserted on).
  bool runUntil(const std::function<bool(const Simulator&)>& pred,
                std::uint64_t checkEvery = 64);

  /// Live fault injection: marks p as crashing at time t (>= now). From t
  /// on, p takes no further steps and messages addressed to it vanish —
  /// exactly as if the crash had been in the pattern from the start.
  /// Events already processed are untouched, so determinism is preserved:
  /// a run is a function of (config, pattern, model, seed) PLUS the
  /// sequence of injection calls and their times. Note the failure
  /// detector keeps its own view; callers that inject crashes should
  /// swap the detector too (setDetector) or its history may stop being
  /// valid for the new pattern (the api::Cluster facade does both).
  void setCrash(ProcessId p, Time t);

  /// Replaces the failure detector oracle. Future steps query the new
  /// one; past queries are already baked into the trace. Any detector
  /// swap mid-run defines a composite history: valid whenever the new
  /// detector's history is valid for the (possibly updated) pattern from
  /// now on — e.g. a fresh OmegaFd re-stabilizing after an injected
  /// crash.
  void setDetector(std::shared_ptr<const FailureDetector> detector);

  /// Observation hooks for push-style consumers (api::Cluster delivery
  /// observers). Called synchronously right after the trace records the
  /// corresponding effect; hooks must not mutate the simulator. Replacing
  /// a hook mid-run is allowed; hooks never affect scheduling, so runs
  /// with and without hooks are bit-for-bit identical.
  using DeliveryHook =
      std::function<void(ProcessId, Time, const std::vector<MsgId>&)>;
  using OutputHook = std::function<void(ProcessId, Time, const Payload&)>;
  void setDeliveryHook(DeliveryHook hook) { deliveryHook_ = std::move(hook); }
  void setOutputHook(OutputHook hook) { outputHook_ = std::move(hook); }

  Time now() const { return now_; }
  std::uint64_t eventsProcessed() const { return eventsProcessed_; }
  const Trace& trace() const { return trace_; }
  const FailurePattern& failurePattern() const { return pattern_; }
  const SimConfig& config() const { return config_; }
  const FailureDetector& detector() const { return *detector_; }
  const NetworkModel& network() const { return *network_; }
  /// Network-layer duplicates suppressed at the automaton boundary.
  std::uint64_t duplicatesSuppressed() const { return duplicatesSuppressed_; }

  /// Retransmission-layer statistics; all 0 on lossless (mayDrop() ==
  /// false) networks, where the layer is fully disabled.
  bool linkLayerActive() const { return linkActive_; }
  /// Sends for which the lossy model scheduled zero copies (recovered by
  /// retransmission).
  std::uint64_t linkDroppedSends() const { return linkDroppedSends_; }
  std::uint64_t linkRetransmissions() const {
    return link_ ? link_->retransmissions() : 0;
  }
  /// Tx states dropped because an endpoint crashed (bounded-buffer drain).
  std::uint64_t linkDrained() const { return link_ ? link_->drained() : 0; }
  std::uint64_t linkAcksScheduled() const { return linkAcksScheduled_; }
  std::uint64_t linkAcksDelivered() const { return linkAcksDelivered_; }
  /// In-flight (sent, not yet acked or drained) tracked sends.
  std::size_t pendingLinkTx() const { return link_ ? link_->pending() : 0; }

  /// Application inputs scheduled but not yet handed to their automaton
  /// (quiescence detection: a service with pending inputs is not done).
  std::uint64_t pendingInputs() const { return pendingInputs_; }

  /// Latest arrival time ever scheduled for a message (monotone upper
  /// bound; 0 before the first send). Quiescence detection uses it to see
  /// through partition windows: a message deferred far past now is
  /// pending work even though nothing moves meanwhile.
  Time latestScheduledArrival() const { return latestScheduledArrival_; }

  /// Live automaton state (tests peek at protocol internals).
  const Automaton& automaton(ProcessId p) const { return *automata_.at(p); }
  Automaton& automaton(ProcessId p) { return *automata_.at(p); }

 private:
  enum class EventKind : std::uint8_t {
    kMessage,
    kTimeout,
    kInput,
    /// Link-layer ack arriving at the original sender (slot = link uid
    /// arena entry holding the acked data uid).
    kLinkAck,
    /// Retry timer firing at the sender (slot = link uid arena entry
    /// holding the data uid to re-check).
    kLinkRetry,
  };

  /// Slim heap node: what the binary heap actually sifts. The message /
  /// input body lives in a side arena addressed by `slot`, so heap
  /// operations move 32 trivially-copyable bytes instead of a ~100-byte
  /// struct with two shared_ptr members (refcount traffic on every
  /// sift level was a top cost at n=256). Event order is a pure function
  /// of (time, seq) — identical to the old priority_queue.
  struct EventNode {
    Time time = 0;
    std::uint64_t seq = 0;  // FIFO tie-break
    std::uint32_t slot = kNoSlot;
    EventKind kind = EventKind::kTimeout;
    ProcessId target = kNoProcess;
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One network envelope, shared by every scheduled copy of a
  /// duplicated send (refs counts the copies still in the heap).
  struct MessageRecord {
    Message msg;
    std::uint32_t refs = 0;
  };

  static bool nodeBefore(const EventNode& a, const EventNode& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void push(EventNode e);
  void popHeap();
  std::uint32_t allocMessageSlot();
  void releaseMessageSlot(std::uint32_t slot);
  std::uint32_t allocInputSlot(Payload input);
  void releaseInputSlot(std::uint32_t slot);
  std::uint32_t allocLinkUidSlot(std::uint64_t uid);
  void releaseLinkUidSlot(std::uint32_t slot);
  void scheduleLinkAck(ProcessId receiver, ProcessId sender,
                       std::uint64_t uid);
  void scheduleLinkRetry(std::uint64_t uid, ProcessId sender, Time delay);
  void handleLinkAck(std::uint32_t uidSlot);
  void handleLinkRetry(std::uint32_t uidSlot);
  void applyEffects(ProcessId self, Effects& fx);
  bool processOne();  // false when out of events/limits
  void ensureStarted();

  SimConfig config_;
  FailurePattern pattern_;
  std::shared_ptr<const FailureDetector> detector_;
  std::shared_ptr<const NetworkModel> network_;
  Rng rng_;
  std::vector<std::unique_ptr<Automaton>> automata_;
  /// Binary min-heap over (time, seq); bodies live in the arenas below.
  std::vector<EventNode> heap_;
  std::vector<MessageRecord> messageArena_;
  std::vector<std::uint32_t> freeMessageSlots_;
  std::vector<Payload> inputArena_;
  std::vector<std::uint32_t> freeInputSlots_;
  /// Legacy LinkDisruption windows, converted to one-shot PartitionSpecs
  /// on add and applied through the shared deferral (network_model.h) on
  /// top of whatever the network model scheduled.
  std::vector<PartitionSpec> disruptions_;
  /// Per-process uids already handed to the automaton — maintained only
  /// when the model may duplicate (exactly-once at the boundary).
  std::vector<std::unordered_set<std::uint64_t>> deliveredUids_;
  /// Scratch buffer for NetworkModel::schedule (avoids per-send allocs).
  std::vector<Time> arrivalScratch_;
  /// Reused per-step effects collector (keeps its vectors' capacity
  /// across steps instead of reallocating on every send-producing step).
  Effects effectsScratch_;
  /// Per-process FD value cache keyed by the detector's change-epoch
  /// (FailureDetector::epochAt): the value is recomputed only when the
  /// epoch moved, so FD history queries are amortized O(1) per step.
  /// Invalidated wholesale by setDetector.
  struct FdCacheEntry {
    std::uint64_t epoch = 0;
    bool valid = false;
    FdValue value;
  };
  std::vector<FdCacheEntry> fdCache_;
  /// Reused per-step context: copy-assigning the cached FdValue into it
  /// reuses the quorum/suspects vector capacity instead of allocating.
  StepContext ctxScratch_;
  DeliveryHook deliveryHook_;
  OutputHook outputHook_;
  Trace trace_;
  /// Stubborn retransmission layer, allocated iff network_->mayDrop().
  /// All link-layer randomness (ack/retransmit scheduling through the
  /// model) draws from linkRng_, not rng_: the main draw sequence stays
  /// identical to the legacy reliable path, which is what makes the
  /// loss=0-with-retry ≡ legacy differential hold bit-for-bit.
  std::unique_ptr<ReliableLink> link_;
  Rng linkRng_;
  bool linkActive_ = false;
  /// Side arena carrying 64-bit data uids for kLinkAck / kLinkRetry
  /// events (EventNode.slot is 32-bit). Each event owns its slot and
  /// frees it when it fires; a retry re-arms with a fresh slot.
  std::vector<std::uint64_t> linkUidArena_;
  std::vector<std::uint32_t> freeLinkUidSlots_;
  std::uint64_t linkAcksScheduled_ = 0;
  std::uint64_t linkAcksDelivered_ = 0;
  std::uint64_t linkDroppedSends_ = 0;
  std::uint64_t nextAckUid_ = 0;
  Time now_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t duplicatesSuppressed_ = 0;
  std::uint64_t pendingInputs_ = 0;
  Time latestScheduledArrival_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextMsgUid_ = 0;
  bool started_ = false;
};

}  // namespace wfd
