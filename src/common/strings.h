// Small string helpers for diagnostics and bench tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace wfd {

/// 16-char lowercase hex of a u64 — the digest/fingerprint wire format
/// shared by wfd_scenarios and wfd_explore JSON output and the corpus
/// codec (one implementation so the format cannot diverge).
inline std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Joins elements with a separator using operator<<.
template <typename Range>
std::string join(const Range& range, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

}  // namespace wfd
