// Integration tests: Chandra–Toueg rotating-coordinator consensus [3].
//
// CT solves REAL consensus (agreement from instance 1, always) given a
// correct majority — unlike Algorithm 4, which only promises eventual
// agreement but needs no majority. Running both through the same EC
// harness makes the paper's gap directly measurable.
#include <gtest/gtest.h>

#include <memory>

#include "checkers/ec_checker.h"
#include "consensus/ct_consensus.h"
#include "ec/ec_driver.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

using CtDriver = EcDriverAutomaton<CtConsensusAutomaton>;

SimConfig ctConfig(std::size_t n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 120000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 15;
  cfg.maxDelay = 30;
  return cfg;
}

Simulator makeCtSim(SimConfig cfg, FailurePattern fp,
                    std::shared_ptr<const FailureDetector> fd,
                    Instance maxInstances, std::uint64_t salt = 5) {
  Simulator sim(cfg, std::move(fp), std::move(fd));
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, std::make_unique<CtDriver>(CtConsensusAutomaton{},
                                                 binaryProposals(salt),
                                                 maxInstances));
  }
  return sim;
}

bool allDecided(const Simulator& sim, Instance upTo) {
  return checkEcRun(sim.trace(), sim.failurePattern()).decidedByAllCorrect >=
         upTo;
}

TEST(CtConsensusTest, StableOmegaAgreementFromInstanceOne) {
  auto cfg = ctConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable);
  auto sim = makeCtSim(cfg, fp, omega, 10);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 10); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(10));
  EXPECT_EQ(report.agreementFromK, 1u) << "CT is real consensus";
}

TEST(CtConsensusTest, AgreementSafeEvenThroughSplitBrain) {
  // THE contrast with Algorithm 4: consensus agreement is a SAFETY
  // property — even while Omega is split-brain, no two processes may ever
  // decide differently in any instance.
  auto cfg = ctConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto omega =
      std::make_shared<OmegaFd>(fp, 1500, OmegaPreStabilization::kSplitBrain);
  auto sim = makeCtSim(cfg, fp, omega, 8);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 8); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_EQ(report.agreementFromK, 1u)
      << "consensus never disagrees, even before stabilization";
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
}

TEST(CtConsensusTest, WorksWithSuspicionListDetector) {
  auto cfg = ctConfig(3);
  auto fp = FailurePattern::crashesAt(3, {{2, 800}});
  auto fd = std::make_shared<EventuallyPerfectFd>(fp, 1500);
  auto sim = makeCtSim(cfg, fp, fd, 8);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 8); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_EQ(report.agreementFromK, 1u);
  EXPECT_TRUE(report.terminationOk(8));
}

TEST(CtConsensusTest, CoordinatorCrashRecovers) {
  // p0 coordinates round 1 of every instance and crashes mid-run; the
  // rotation must carry instances to completion.
  auto cfg = ctConfig(3);
  auto fp = FailurePattern::crashesAt(3, {{0, 700}});
  auto omega = std::make_shared<OmegaFd>(fp, 1200, OmegaPreStabilization::kRotating);
  auto sim = makeCtSim(cfg, fp, omega, 8);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) { return allDecided(s, 8); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_EQ(report.agreementFromK, 1u);
  EXPECT_TRUE(report.terminationOk(8));
}

TEST(CtConsensusTest, StallsWithoutCorrectMajority) {
  auto cfg = ctConfig(5);
  cfg.maxTime = 15000;
  auto fp = Environments::majorityCrash(5, 500);
  auto omega = std::make_shared<OmegaFd>(fp, 1000, OmegaPreStabilization::kRotating);
  auto sim = makeCtSim(cfg, fp, omega, 20);
  sim.run();
  const auto report = checkEcRun(sim.trace(), fp);
  // A handful of instances may complete before the crash; afterwards the
  // coordinator can never gather a majority of estimates again.
  EXPECT_LT(report.decidedByAllCorrect, 20u)
      << "CT must stall without a majority — the gap vs Algorithm 4";
  // But whatever was decided is consistent.
  EXPECT_EQ(report.agreementFromK, 1u);
}

// Sweep: CT safety and liveness across seeds and (majority-preserving)
// environments and detectors.
struct CtSweepParam {
  std::uint64_t seed;
  std::size_t n;
  std::size_t crashes;
  bool useSuspects;
};

class CtSweepTest : public ::testing::TestWithParam<CtSweepParam> {};

TEST_P(CtSweepTest, ConsensusContractHolds) {
  const auto p = GetParam();
  auto cfg = ctConfig(p.n, p.seed);
  auto fp = p.crashes == 0
                ? FailurePattern::noFailures(p.n)
                : Environments::staggeredCrashes(p.n, p.crashes, 600, 50);
  std::shared_ptr<const FailureDetector> fd;
  if (p.useSuspects) {
    fd = std::make_shared<EventuallyPerfectFd>(fp, 1200, p.seed);
  } else {
    fd = std::make_shared<OmegaFd>(fp, 1200, OmegaPreStabilization::kRotating);
  }
  const Instance maxInstances = 6;
  auto sim = makeCtSim(cfg, fp, fd, maxInstances, p.seed);
  ASSERT_TRUE(sim.runUntil(
      [&](const Simulator& s) { return allDecided(s, maxInstances); }));
  const auto report = checkEcRun(sim.trace(), fp);
  EXPECT_EQ(report.agreementFromK, 1u);
  EXPECT_TRUE(report.integrityOk);
  EXPECT_TRUE(report.validityOk);
  EXPECT_TRUE(report.terminationOk(maxInstances));
}

std::vector<CtSweepParam> ctSweep() {
  std::vector<CtSweepParam> out;
  for (std::uint64_t seed : {3u, 13u, 37u}) {
    for (std::size_t n : {3u, 5u}) {
      for (bool suspects : {false, true}) {
        out.push_back({seed, n, 0, suspects});
        out.push_back({seed, n, (n - 1) / 2, suspects});  // minority crash
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CtSweepTest, ::testing::ValuesIn(ctSweep()));

}  // namespace
}  // namespace wfd
