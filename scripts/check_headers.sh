#!/usr/bin/env bash
# Compiles every public header standalone (-Werror): each src/**/*.h must
# carry its own includes, so the API surface cannot grow hidden include
# dependencies — a consumer including exactly one facade header (e.g.
# api/cluster.h) must get a complete translation unit.
#
# For every header H a one-line TU `#include "H"` is syntax-checked with
# the same warnings-as-errors baseline the strict CMake preset uses.
# bench/bench_util.h is included too (it is the benches' public surface);
# tests/helpers.h is skipped (it needs gtest on the include path).
#
# Usage: scripts/check_headers.sh [compiler]   (default: c++)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

cxx="${1:-${CXX:-c++}}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

flags=(-std=c++20 -fsyntax-only -Wall -Wextra -Werror -I src -I bench)

headers="$(git ls-files --cached --others --exclude-standard \
             'src/*.h' 'src/**/*.h' 'bench/bench_util.h' | sort)"
test -n "$headers"   # an empty list must fail loudly, not pass green

fail=0
count=0
while IFS= read -r header; do
  rel="${header#src/}"
  tu="$tmpdir/tu.cpp"
  if [[ "$header" == src/* ]]; then
    printf '#include "%s"\n' "$rel" > "$tu"
  else
    printf '#include "%s"\n' "$(basename "$header")" > "$tu"
  fi
  if ! "$cxx" "${flags[@]}" "$tu" 2> "$tmpdir/err"; then
    echo "NOT STANDALONE: $header"
    sed 's/^/    /' "$tmpdir/err" | head -15
    fail=1
  fi
  count=$((count + 1))
done <<< "$headers"

if [ "$fail" -ne 0 ]; then
  echo "header check FAILED"
  exit 1
fi
echo "header check OK ($count headers compile standalone under -Werror)"
