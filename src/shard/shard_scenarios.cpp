#include "shard/shard_scenarios.h"

#include <algorithm>
#include <utility>

#include "api/capabilities.h"
#include "checkers/commit_checker.h"
#include "common/ensure.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/strings.h"
#include "shard/zipf.h"

namespace wfd {

namespace {

// Same scheduler shape the flat catalog uses (catalog.cpp baseConfig):
// Δ_t = 10, delays in [20, 40].
SimConfig shardBaseConfig(Time maxTime) {
  SimConfig cfg;
  cfg.maxTime = maxTime;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

}  // namespace

ShardScenarioRunResult runShardScenario(const ShardScenario& s,
                                        std::uint64_t seed) {
  const ShardWorkload& w = s.workload;
  WFD_ENSURE_MSG(w.keys > 0, "workload needs a non-empty key space");

  ShardedService svc(s.spec, seed);
  ShardRouter router(svc);

  UniformKeyGenerator uniform(w.keys, splitmix64(seed ^ 0x776b6c64ULL));
  ZipfianKeyGenerator zipf(w.keys, w.zipfian ? w.theta : 0.5,
                           splitmix64(seed ^ 0x776b6c64ULL));
  const auto nextKey = [&]() { return w.zipfian ? zipf.next() : uniform.next(); };

  std::vector<ShardFault> faults = s.faults;
  std::stable_sort(faults.begin(), faults.end(),
                   [](const ShardFault& a, const ShardFault& b) {
                     return a.at < b.at;
                   });
  std::size_t nextFault = 0;
  const auto injectThrough = [&](Time target) {
    while (nextFault < faults.size() && faults[nextFault].at <= target) {
      const ShardFault& f = faults[nextFault++];
      if (f.at > svc.now()) svc.advanceTo(f.at);
      if (f.kind == ShardFault::Kind::kCrash) {
        svc.crashReplica(f.shard, f.replica, svc.now());
      } else {
        svc.isolateReplica(f.shard, f.replica, svc.now(), f.until);
      }
    }
  };

  std::vector<std::uint64_t> written;
  written.reserve(w.puts);
  for (std::uint64_t i = 0; i < w.puts; ++i) {
    const Time target = svc.now() + w.interval;
    injectThrough(target);
    if (svc.now() < target) svc.advanceTo(target);
    const std::uint64_t key = nextKey();
    router.put(key, i + 1);  // values are 1-based op indices — unique
    written.push_back(key);
    router.poll();
    if (w.getEvery != 0 && (i + 1) % w.getEvery == 0) {
      const std::uint64_t pick =
          splitmix64(seed ^ (0x67657473ULL + i)) % written.size();
      router.get(written[pick]);
    }
  }
  injectThrough(s.spec.config.maxTime);

  svc.runUntilQuiescent();
  router.poll();

  // Final read pass: every distinct written key, ascending.
  std::sort(written.begin(), written.end());
  written.erase(std::unique(written.begin(), written.end()), written.end());
  for (const std::uint64_t key : written) router.get(key);

  ShardScenarioRunResult r;
  r.scenario = s.name;
  r.seed = seed;
  r.stack = algoStackName(s.spec.stack);
  r.shards = svc.shardCount();
  r.endTime = svc.now();
  r.refolds = router.refolds();
  r.rebalances = svc.rebalances();

  const ShardedKvReport kv = checkShardedKvRun(router.ops());
  r.puts = kv.puts;
  r.committedPuts = kv.committedPuts;
  r.gets = kv.gets;
  r.successfulGets = kv.successfulGets;
  if (s.checks.shardedKv) {
    if (kv.uncommittedReads > 0) r.failures.push_back("sharded_kv: committed-reads");
    if (kv.monotonicityViolations > 0) r.failures.push_back("sharded_kv: monotone-reads");
    if (kv.staleReads > 0) r.failures.push_back("sharded_kv: read-your-writes");
    for (const std::string& e : kv.errors) r.failures.push_back("sharded_kv: " + e);
  }
  if (s.checks.commitSafety) {
    for (std::size_t sh = 0; sh < svc.shardCount(); ++sh) {
      const CommitCheckReport c = checkCommitSafety(
          svc.shard(sh).sim().trace(), svc.shard(sh).pattern());
      if (!c.safetyOk()) {
        r.failures.push_back("commit: shard " + std::to_string(sh) +
                             " revoked a committed prefix");
      }
    }
  }
  if (s.checks.requireProgress && kv.committedPuts == 0) {
    r.failures.push_back("progress: no put was observed committed");
  }
  if (s.checks.requireRebalance && svc.rebalances() == 0) {
    r.failures.push_back("rebalance: crash schedule re-homed no keys");
  }
  r.pass = r.failures.empty();
  r.digest = shardedRunDigest(svc, router);
  return r;
}

std::string toJsonLine(const ShardScenarioRunResult& r) {
  // Stable key order, same contract as the flat result line
  // (docs/SCENARIOS.md documents both schemas).
  std::string out = "{";
  out += "\"scenario\":" + jsonQuoted(r.scenario);
  out += ",\"seed\":" + std::to_string(r.seed);
  out += ",\"pass\":" + std::string(r.pass ? "true" : "false");
  out += ",\"stack\":" + jsonQuoted(r.stack);
  out += ",\"shards\":" + std::to_string(r.shards);
  out += ",\"end_time\":" + std::to_string(r.endTime);
  out += ",\"puts\":" + std::to_string(r.puts);
  out += ",\"committed_puts\":" + std::to_string(r.committedPuts);
  out += ",\"gets\":" + std::to_string(r.gets);
  out += ",\"successful_gets\":" + std::to_string(r.successfulGets);
  out += ",\"refolds\":" + std::to_string(r.refolds);
  out += ",\"rebalances\":" + std::to_string(r.rebalances);
  out += ",\"digest\":" + jsonQuoted(hex64(r.digest));
  out += ",\"failures\":[";
  for (std::size_t i = 0; i < r.failures.size(); ++i) {
    if (i > 0) out += ",";
    out += jsonQuoted(r.failures[i]);
  }
  out += "]}";
  return out;
}

const std::vector<ShardScenario>& shardScenarioCatalog() {
  static const std::vector<ShardScenario> catalog = [] {
    std::vector<ShardScenario> entries;
    {
      ShardScenario s;
      s.name = "sharded-uniform-commit";
      s.description =
          "S=4 commit-eTOB shards x 3 replicas behind a consistent-hash "
          "router, uniform keys: every read serves committed state, "
          "per-shard monotone, read-your-writes after observed commit.";
      s.spec.shards = 4;
      s.spec.replicasPerShard = 3;
      s.spec.stack = AlgoStack::kCommitEtob;
      s.spec.config = shardBaseConfig(40'000);
      s.spec.omegaMode = OmegaPreStabilization::kStable;
      s.workload.puts = 120;
      s.workload.keys = 64;
      s.workload.interval = 10;
      s.workload.getEvery = 4;
      s.checks.shardedKv = true;
      s.checks.commitSafety = true;
      s.checks.requireProgress = true;
      entries.push_back(std::move(s));
    }
    {
      ShardScenario s;
      s.name = "sharded-zipf-hotkey";
      s.description =
          "S=4 shards under Zipfian(0.99) keys — one hot shard absorbs "
          "most writes — with split-brain Omega until tau_Omega=400: the "
          "service stays safe through leader disagreement and commits "
          "once Omega stabilizes.";
      s.spec.shards = 4;
      s.spec.replicasPerShard = 3;
      s.spec.stack = AlgoStack::kCommitEtob;
      s.spec.config = shardBaseConfig(40'000);
      s.spec.tauOmega = 400;
      s.spec.omegaMode = OmegaPreStabilization::kSplitBrain;
      s.workload.puts = 120;
      s.workload.keys = 64;
      s.workload.zipfian = true;
      s.workload.theta = 0.99;
      s.workload.interval = 10;
      s.workload.getEvery = 4;
      s.checks.shardedKv = true;
      s.checks.commitSafety = true;
      s.checks.requireProgress = true;
      entries.push_back(std::move(s));
    }
    {
      ShardScenario s;
      s.name = "sharded-rebalance-crash";
      s.description =
          "S=3 shards; shard 1 loses two of three replicas mid-run "
          "(below majority), is removed from the ring and its keys "
          "re-home to the survivors; reads stay committed and monotone "
          "throughout. Read replica 0 is never crashed.";
      s.spec.shards = 3;
      s.spec.replicasPerShard = 3;
      s.spec.stack = AlgoStack::kCommitEtob;
      s.spec.config = shardBaseConfig(40'000);
      s.spec.omegaMode = OmegaPreStabilization::kStable;
      s.workload.puts = 120;
      s.workload.keys = 48;
      s.workload.interval = 10;
      s.workload.getEvery = 4;
      s.faults.push_back({ShardFault::Kind::kCrash, 1, 1, 600, 0});
      s.faults.push_back({ShardFault::Kind::kCrash, 1, 2, 620, 0});
      s.checks.shardedKv = true;
      s.checks.commitSafety = true;
      s.checks.requireProgress = true;
      s.checks.requireRebalance = true;
      entries.push_back(std::move(s));
    }
    return entries;
  }();
  return catalog;
}

const ShardScenario* findShardScenario(const std::string& name) {
  for (const ShardScenario& s : shardScenarioCatalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace wfd
