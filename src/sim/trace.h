// Run trace: everything the property checkers and benches need to verify
// the abstractions' specifications over an admissible run.
//
// For every process the trace records (a) append-only outputs (EC
// decisions, extracted leaders, ...) and (b) the evolution of the
// delivery-sequence output variable d_i(t). Because ETOB may rewrite
// d_i before time τ, the trace additionally maintains per-message
// aggregates (first appearance, last change, prefix violations) so long
// benchmark runs don't need to keep every snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd {

/// One append-only output event of a process.
struct OutputEvent {
  Time time = 0;
  /// Per-process record order, shared with DeliverySnapshot::order: the
  /// simulated clock is coarse (several records can share one timestamp
  /// within a step), so checkers that care whether an output happened
  /// before or after a d_i update — the commit checker does — order by
  /// this instead of by time.
  std::uint64_t order = 0;
  Payload value;
};

/// One observed value of d_i (recorded only when it changes).
struct DeliverySnapshot {
  Time time = 0;
  /// Per-process record order (see OutputEvent::order).
  std::uint64_t order = 0;
  std::vector<MsgId> seq;
};

/// Per-(process, message) delivery aggregates.
struct MsgDeliveryStats {
  Time firstSeen = 0;
  /// Last time the message's presence or position in d_i changed. For a
  /// message present in the final sequence this is its stable-delivery
  /// time (it is never moved or removed afterwards).
  Time lastChange = 0;
  bool presentNow = false;
};

class Trace {
 public:
  /// If keepSnapshots is false, only aggregates are maintained (benches).
  explicit Trace(std::size_t processCount, bool keepSnapshots = true);

  std::size_t processCount() const { return outputs_.size(); }

  void recordOutput(ProcessId p, Time t, Payload value);
  /// Returns true iff the sequence actually changed (an unchanged d_i is
  /// not re-recorded; observers key off the same notion of "change").
  bool recordDelivered(ProcessId p, Time t, std::vector<MsgId> seq);
  /// Records one sent message of the given abstract weight (words).
  void countSend(std::uint64_t weight) {
    ++messagesSent_;
    weightSent_ += weight;
  }
  void countDelivery() { ++messagesDelivered_; }
  void countStep(ProcessId p) { ++stepsTaken_.at(p); }

  const std::vector<OutputEvent>& outputs(ProcessId p) const { return outputs_.at(p); }

  /// Full d_i history (empty when snapshots are disabled).
  const std::vector<DeliverySnapshot>& deliverySnapshots(ProcessId p) const {
    return snapshots_.at(p);
  }

  /// Latest value of d_i.
  const std::vector<MsgId>& currentDelivered(ProcessId p) const {
    return current_.at(p);
  }

  /// Aggregates for a message at a process; nullopt if never delivered.
  std::optional<MsgDeliveryStats> deliveryStats(ProcessId p, MsgId m) const;

  /// Number of d_i updates where the previous sequence was not a prefix
  /// of the new one (a revocation/reorder; forbidden in strong TOB, and
  /// forbidden after τ in ETOB).
  std::uint64_t prefixViolations(ProcessId p) const { return prefixViolations_.at(p); }

  /// Time of the last prefix violation at p (0 if none). An upper bound
  /// witness for the run's convergence time τ̂.
  Time lastPrefixViolation(ProcessId p) const { return lastViolationAt_.at(p); }

  /// Last time d_i changed at all at p (0 if never set).
  Time lastDeliveryChange(ProcessId p) const { return lastChangeAt_.at(p); }

  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t messagesDelivered() const { return messagesDelivered_; }
  /// Total abstract payload weight sent (the ablation benches' "bytes").
  std::uint64_t weightSent() const { return weightSent_; }
  std::uint64_t stepsTaken(ProcessId p) const { return stepsTaken_.at(p); }

 private:
  bool keepSnapshots_;
  std::vector<std::vector<OutputEvent>> outputs_;
  std::vector<std::vector<DeliverySnapshot>> snapshots_;
  std::vector<std::vector<MsgId>> current_;
  std::vector<std::unordered_map<MsgId, MsgDeliveryStats>> perMsg_;
  std::vector<std::uint64_t> prefixViolations_;
  std::vector<Time> lastViolationAt_;
  std::vector<Time> lastChangeAt_;
  std::vector<std::uint64_t> stepsTaken_;
  /// Per-process monotone record counter stamped on outputs + snapshots.
  std::vector<std::uint64_t> recordOrder_;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t messagesDelivered_ = 0;
  std::uint64_t weightSent_ = 0;
};

}  // namespace wfd
