#include "shard/sharded_service.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {

std::uint64_t shardSeed(std::uint64_t serviceSeed, std::size_t shard) {
  // Counter-mode splitmix64, domain-tagged ("shard") so a shard seed can
  // never collide with the key/point hash families of the ring.
  return splitmix64(serviceSeed ^
                    (0x7368617264ULL + shard * 0x9e3779b97f4a7c15ULL));
}

ShardedService::ShardedService(ShardedSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      seed_(seed),
      ring_(ConsistentHashRing::Config{spec_.virtualNodes, seed}) {
  WFD_ENSURE_MSG(spec_.shards > 0, "a sharded service needs >= 1 shard");
  WFD_ENSURE_MSG(spec_.replicasPerShard > 0,
                 "a shard needs >= 1 replica");
  shards_.reserve(spec_.shards);
  crashed_.assign(spec_.shards,
                  std::vector<bool>(spec_.replicasPerShard, false));
  for (std::size_t s = 0; s < spec_.shards; ++s) {
    ClusterSpec cs;
    cs.stack = spec_.stack;
    cs.config = spec_.config;
    cs.config.processCount = spec_.replicasPerShard;
    cs.tauOmega = spec_.tauOmega;
    cs.omegaMode = spec_.omegaMode;
    cs.kvReplica = true;
    // kvReplica clusters take writes through Client::put only — the
    // default scheduled broadcast workload is rejected there.
    cs.workload.perProcess = 0;
    if (spec_.network) {
      cs.network = [factory = spec_.network, s](const SimConfig& c) {
        return factory(s, c);
      };
    }
    shards_.push_back(
        std::make_unique<Cluster>(std::move(cs), shardSeed(seed, s)));
    ring_.addNode(static_cast<std::uint32_t>(s));
  }
}

Cluster& ShardedService::shard(std::size_t s) {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  return *shards_[s];
}

const Cluster& ShardedService::shard(std::size_t s) const {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  return *shards_[s];
}

std::size_t ShardedService::ownerOf(std::uint64_t key) const {
  return ring_.ownerOf(key);
}

ProcessId ShardedService::readReplicaOf(std::size_t s) const {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  for (std::size_t p = 0; p < spec_.replicasPerShard; ++p) {
    if (!crashed_[s][p]) return static_cast<ProcessId>(p);
  }
  WFD_ENSURE_MSG(false, "every replica of the shard is crashed");
  return 0;
}

std::size_t ShardedService::majorityOf(std::size_t s) const {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  return spec_.replicasPerShard / 2 + 1;
}

std::size_t ShardedService::correctReplicasOf(std::size_t s) const {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  return static_cast<std::size_t>(
      std::count(crashed_[s].begin(), crashed_[s].end(), false));
}

bool ShardedService::hasQuorum(std::size_t s) const {
  return correctReplicasOf(s) >= majorityOf(s);
}

ShardedStats ShardedService::stats() const {
  ShardedStats out;
  out.perShard.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardStats row;
    // Read the shard through its current read replica; a shard with no
    // correct replica left reports zeros (nothing is readable there).
    const bool readable =
        std::count(crashed_[s].begin(), crashed_[s].end(), false) > 0;
    if (readable) {
      // Client is a cheap value handle; const_cast is confined to
      // obtaining one (stats() mutates nothing).
      Client c = const_cast<Cluster&>(*shards_[s]).client(readReplicaOf(s));
      const Client::KvStats kv = c.kvStats();
      row.keys = kv.keys;
      row.applied = kv.applied;
      row.rebuilds = kv.rebuilds;
      row.committedLen = c.committedPrefix().size();
    }
    row.correctReplicas = static_cast<std::size_t>(
        std::count(crashed_[s].begin(), crashed_[s].end(), false));
    row.inRing = ring_.contains(static_cast<std::uint32_t>(s));
    out.keys += row.keys;
    out.applied += row.applied;
    out.rebuilds += row.rebuilds;
    out.committedLen += row.committedLen;
    if (row.inRing) ++out.shardsInRing;
    out.perShard.push_back(row);
  }
  return out;
}

bool ShardedService::advanceTo(Time t) {
  WFD_ENSURE_MSG(t >= now_, "the service clock is monotone");
  bool progress = false;
  for (auto& sh : shards_) {
    if (sh->advanceTo(t)) progress = true;
  }
  now_ = t;
  return progress;
}

bool ShardedService::advanceBy(Time d) { return advanceTo(now_ + d); }

Time ShardedService::runUntilQuiescent(Time window) {
  // Each shard settles independently — there are no cross-shard messages
  // to wake a quiescent shard, so one settle pass per shard plus a final
  // re-alignment on the latest stop time is a fixed point of the whole
  // service.
  Time stop = now_;
  for (auto& sh : shards_) {
    stop = std::max(stop, sh->runUntilQuiescent(window));
  }
  for (auto& sh : shards_) {
    if (sh->now() < stop) sh->advanceTo(stop);
  }
  now_ = stop;
  return now_;
}

void ShardedService::crashReplica(std::size_t s, ProcessId replica, Time t) {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  WFD_ENSURE_MSG(replica < spec_.replicasPerShard,
                 "replica index out of range");
  WFD_ENSURE_MSG(!crashed_[s][replica], "replica is already crashed");
  shards_[s]->crashAt(replica, t);
  crashed_[s][replica] = true;
  // Quorum accounting is eager: the crash is scheduled, so routing stops
  // trusting the shard now rather than at t (conservative, and what
  // keeps the ring a pure function of the injected-fault history).
  if (!hasQuorum(s) && spec_.rebalanceOnQuorumLoss &&
      ring_.contains(static_cast<std::uint32_t>(s)) && ring_.nodeCount() > 1) {
    ring_.removeNode(static_cast<std::uint32_t>(s));
    ++rebalances_;
  }
}

void ShardedService::isolateReplica(std::size_t s, ProcessId replica,
                                    Time start, Time end) {
  WFD_ENSURE_MSG(s < shards_.size(), "shard index out of range");
  WFD_ENSURE_MSG(replica < spec_.replicasPerShard,
                 "replica index out of range");
  shards_[s]->isolate(replica, start, end);
}

}  // namespace wfd
