// Failure patterns F : N -> 2^Pi and environments (sets of patterns).
//
// Processes fail only by crashing and never recover: F(t) ⊆ F(t+1).
// A pattern is represented by one crash time per process (kNever for
// correct processes), which encodes exactly the monotone F of the paper.
#pragma once

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace wfd {

/// A crash failure pattern over n processes.
class FailurePattern {
 public:
  /// Crash time meaning "never crashes" (process is correct).
  static constexpr Time kNever = std::numeric_limits<Time>::max();

  /// Pattern with n processes and no failures.
  explicit FailurePattern(std::size_t n);

  /// Convenience factories.
  static FailurePattern noFailures(std::size_t n);
  static FailurePattern crashesAt(std::size_t n,
                                  std::vector<std::pair<ProcessId, Time>> crashes);

  /// Marks p as crashing at time t (it takes no step at or after t).
  void setCrash(ProcessId p, Time t);

  std::size_t size() const { return crashTimes_.size(); }

  /// True iff p ∈ F(t).
  bool crashed(ProcessId p, Time t) const;

  /// True iff p ∈ faulty(F).
  bool faulty(ProcessId p) const;

  /// True iff p ∈ correct(F).
  bool correct(ProcessId p) const { return !faulty(p); }

  /// Crash time of p (kNever if correct).
  Time crashTime(ProcessId p) const;

  /// correct(F), ascending.
  std::vector<ProcessId> correctSet() const;

  /// faulty(F), ascending.
  std::vector<ProcessId> faultySet() const;

  /// Processes not crashed at time t, ascending.
  std::vector<ProcessId> aliveAt(Time t) const;

  /// Smallest-id correct process; kNoProcess if all faulty.
  ProcessId lowestCorrect() const;

  /// True iff |correct(F)| > n/2 — the environment assumption under which
  /// Omega alone suffices for strong consensus [2].
  bool hasCorrectMajority() const;

  /// Time by which all crashes have happened (0 if none).
  Time lastCrashTime() const;

 private:
  std::vector<Time> crashTimes_;
};

/// A (finite sample of an) environment: named generator of failure
/// patterns used by tests and benches.
struct Environments {
  /// All processes correct.
  static FailurePattern allCorrect(std::size_t n);
  /// A minority of processes crash at the given time (floor((n-1)/2)).
  static FailurePattern minorityCrash(std::size_t n, Time when);
  /// A majority of processes crash at the given time (correct set is a
  /// minority — outside the classical consensus environment).
  static FailurePattern majorityCrash(std::size_t n, Time when);
  /// Exactly the given number of crashes, staggered `spacing` apart
  /// starting at `firstAt`, crashing the highest ids first.
  static FailurePattern staggeredCrashes(std::size_t n, std::size_t count,
                                         Time firstAt, Time spacing);
};

}  // namespace wfd
