#!/usr/bin/env bash
# Checks that every relative markdown link target in the repo's *.md files
# exists. External (http/https/mailto) and pure-anchor links are skipped.
#
# Additionally cross-checks docs/SCENARIOS.md against the scenario
# registry: every scenario named in the catalog table (rows of the form
# "| `name` | ...") must appear in `wfd_scenarios --list`. The check runs
# when the wfd_scenarios binary is found (WFD_SCENARIOS_BIN overrides the
# search); set WFD_REQUIRE_SCENARIO_CHECK=1 to make a missing binary an
# error (CI does, after building).
#
# Also cross-checks the fuzz corpus both ways: every `tests/corpus/*.json`
# path named in any markdown file must exist on disk, and every committed
# corpus file must be documented in docs/FUZZING.md (an undocumented
# counterexample is a counterexample nobody will understand next year).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

fail=0
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Extract inline link targets: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"          # drop in-page anchors
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)[:space:]]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files --cached --others --exclude-standard '*.md')

# --- scenario registry cross-check ------------------------------------------
scenarios_md="docs/SCENARIOS.md"
scenarios_bin="${WFD_SCENARIOS_BIN:-}"
if [ -z "$scenarios_bin" ]; then
  for candidate in build/tools/wfd_scenarios \
                   build/release/tools/wfd_scenarios \
                   build/asan/tools/wfd_scenarios \
                   build/debug/tools/wfd_scenarios; do
    if [ -x "$candidate" ]; then
      scenarios_bin="$candidate"
      break
    fi
  done
fi
if [ -f "$scenarios_md" ] && [ -n "$scenarios_bin" ] && [ -x "$scenarios_bin" ]; then
  registry="$("$scenarios_bin" --list)"
  # `|| true`: zero table rows must reach the documented==0 guard below,
  # not abort the script via set -e + pipefail on grep's exit 1.
  documented_names="$(grep -oE '^\| `[a-z0-9-]+` \|' "$scenarios_md" | sed -E 's/^\| `//; s/` \|$//' || true)"
  documented=0
  # docs -> registry: every documented name must exist.
  while IFS= read -r name; do
    [ -n "$name" ] || continue
    documented=$((documented + 1))
    # Here-string, not printf|grep: under pipefail, grep -q exiting early
    # can SIGPIPE the printf and flip the pipeline status nondeterministically.
    if ! grep -qx -- "$name" <<< "$registry"; then
      echo "BROKEN: $scenarios_md documents scenario '$name' missing from the registry"
      fail=1
    fi
  done <<< "$documented_names"
  # A zero count means the catalog table stopped parsing (reformatted
  # rows?) — that would turn the whole check into a silent no-op.
  if [ "$documented" -eq 0 ]; then
    echo "BROKEN: no scenario names parsed from $scenarios_md's catalog table"
    fail=1
  fi
  # registry -> docs: every catalog entry must be documented.
  while IFS= read -r name; do
    [ -n "$name" ] || continue
    if ! grep -qx -- "$name" <<< "$documented_names"; then
      echo "BROKEN: registry scenario '$name' is undocumented in $scenarios_md"
      fail=1
    fi
  done <<< "$registry"
  echo "scenario registry check: $documented documented names verified against $scenarios_bin"
elif [ "${WFD_REQUIRE_SCENARIO_CHECK:-0}" = "1" ]; then
  echo "BROKEN: wfd_scenarios binary not found but WFD_REQUIRE_SCENARIO_CHECK=1"
  fail=1
else
  echo "note: wfd_scenarios binary not found — scenario-name check skipped (build it or set WFD_SCENARIOS_BIN)"
fi

# --- fuzz corpus cross-check ------------------------------------------------
fuzzing_md="docs/FUZZING.md"
corpus_mentions=0
# docs -> disk: every corpus path named anywhere in the docs must exist.
while IFS= read -r corpus_path; do
  [ -n "$corpus_path" ] || continue
  corpus_mentions=$((corpus_mentions + 1))
  if [ ! -f "$corpus_path" ]; then
    echo "BROKEN: docs name corpus file '$corpus_path' which does not exist"
    fail=1
  fi
done < <(git ls-files --cached --others --exclude-standard '*.md' |
         xargs grep -ohE 'tests/corpus/[A-Za-z0-9._-]+\.json' 2>/dev/null |
         sort -u)
# disk -> docs: every committed corpus file must be documented.
if [ -d tests/corpus ]; then
  while IFS= read -r corpus_file; do
    [ -n "$corpus_file" ] || continue
    name="$(basename "$corpus_file")"
    # -F: the filename is a literal, not a regex — '.' must not match
    # any character, or near-miss typos in the docs would pass.
    if ! grep -qF -- "$name" "$fuzzing_md" 2>/dev/null; then
      echo "BROKEN: corpus file '$corpus_file' is undocumented in $fuzzing_md"
      fail=1
    fi
  done < <(git ls-files --cached --others --exclude-standard 'tests/corpus/*.json')
fi
echo "fuzz corpus check: $corpus_mentions corpus paths named in docs verified"

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK"
