#include "fd/robust_fd.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {
namespace {

bool inAnyWindow(Time t, const std::vector<std::pair<Time, Time>>& windows) {
  for (const auto& w : windows) {
    if (t >= w.first && t < w.second) return true;
  }
  return false;
}

Time lastWindowEnd(const std::vector<std::pair<Time, Time>>& windows) {
  Time end = 0;
  for (const auto& w : windows) end = std::max(end, w.second);
  return end;
}

}  // namespace

// ---------------------------------------------------------- IntervalSuspectFd

void IntervalSuspectFd::init(std::vector<SuspicionHistory> histories) {
  histories_ = std::move(histories);
  for (const SuspicionHistory& h : histories_) {
    Time prevEnd = 0;
    for (const auto& iv : h.intervals) {
      WFD_ENSURE_MSG(iv.first < iv.second && iv.first >= prevEnd,
                     "suspicion intervals must be disjoint, sorted, non-empty");
      prevEnd = iv.second;
      boundaries_.push_back(iv.first);
      boundaries_.push_back(iv.second);
    }
    if (h.foreverFrom != FailurePattern::kNever) {
      boundaries_.push_back(h.foreverFrom);
    }
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
}

bool IntervalSuspectFd::suspectedAt(ProcessId q, Time t) const {
  const SuspicionHistory& h = histories_[q];
  if (t >= h.foreverFrom) return true;
  // Last interval starting at or before t, if any.
  auto it = std::upper_bound(
      h.intervals.begin(), h.intervals.end(), t,
      [](Time v, const std::pair<Time, Time>& iv) { return v < iv.first; });
  if (it == h.intervals.begin()) return false;
  --it;
  return t < it->second;
}

FdValue IntervalSuspectFd::valueAt(ProcessId p, Time t) const {
  WFD_ENSURE(p < histories_.size());
  FdValue v;
  // Ascending q: suspects stay sorted (OmegaFromEventuallyPerfect
  // binary-searches them). Like EventuallyPerfectFd, an observer never
  // FALSELY suspects itself — its own crash (foreverFrom) still counts.
  for (ProcessId q = 0; q < histories_.size(); ++q) {
    const bool suspected =
        q == p ? t >= histories_[q].foreverFrom : suspectedAt(q, t);
    if (suspected) v.suspects.push_back(q);
  }
  return v;
}

std::uint64_t IntervalSuspectFd::epochAt(ProcessId, Time t) const {
  // The global suspect set is constant between consecutive boundaries,
  // so the containing-segment index is a valid observer-independent
  // epoch (equal epochs => equal values).
  return static_cast<std::uint64_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), t) -
      boundaries_.begin());
}

Time IntervalSuspectFd::stableFrom(ProcessId q) const {
  WFD_ENSURE(q < histories_.size());
  const SuspicionHistory& h = histories_[q];
  if (h.foreverFrom != FailurePattern::kNever) return FailurePattern::kNever;
  return h.intervals.empty() ? 0 : h.intervals.back().second;
}

// --------------------------------------------------------- AdaptiveHeartbeatFd

AdaptiveHeartbeatFd::AdaptiveHeartbeatFd(FailurePattern pattern, Params params)
    : params_(std::move(params)) {
  WFD_ENSURE(params_.heartbeatPeriod >= 1);
  WFD_ENSURE_MSG(params_.initialTimeout > params_.heartbeatPeriod,
                 "timeout must exceed the heartbeat period");
  WFD_ENSURE(params_.maxTimeout >= params_.initialTimeout);
  std::sort(params_.burstWindows.begin(), params_.burstWindows.end());
  const Time quietFrom = lastWindowEnd(params_.burstWindows);

  std::vector<SuspicionHistory> histories(pattern.size());
  for (ProcessId q = 0; q < pattern.size(); ++q) {
    SuspicionHistory& hist = histories[q];
    hist.foreverFrom = FailurePattern::kNever;
    const Time crash = pattern.crashTime(q);
    Time timeout = params_.initialTimeout;
    Time lastRx = 0;  // the observer arms its timer at time 0
    for (Time h = 0;; h += params_.heartbeatPeriod) {
      if (h >= crash) {
        // q's heartbeats stop forever: suspected once the timer runs out.
        hist.foreverFrom = lastRx + timeout;
        break;
      }
      if (!inAnyWindow(h, params_.burstWindows)) {
        if (h > lastRx + timeout) {
          // The burst ate enough heartbeats to trip the timer: false
          // suspicion until this reception, then ADAPT — double the
          // timeout so an equal burst no longer fools the detector.
          hist.intervals.emplace_back(lastRx + timeout, h);
          timeout = std::min(timeout * 2, params_.maxTimeout);
        }
        lastRx = h;
        // Past the last burst every future gap is one period < timeout:
        // the history is settled, stop walking.
        if (h > quietFrom) break;
      }
    }
  }
  init(std::move(histories));
}

std::string AdaptiveHeartbeatFd::name() const {
  return "<>P-heartbeat(period=" + std::to_string(params_.heartbeatPeriod) +
         ",timeout=" + std::to_string(params_.initialTimeout) + ".." +
         std::to_string(params_.maxTimeout) + "," +
         std::to_string(params_.burstWindows.size()) + " bursts)";
}

// ----------------------------------------------------------------------SwimFd

SwimFd::SwimFd(FailurePattern pattern, Params params)
    : params_(std::move(params)) {
  WFD_ENSURE(params_.probePeriod >= 1);
  std::sort(params_.burstWindows.begin(), params_.burstWindows.end());
  const Time quietFrom = lastWindowEnd(params_.burstWindows);

  std::vector<SuspicionHistory> histories(pattern.size());
  for (ProcessId q = 0; q < pattern.size(); ++q) {
    SuspicionHistory& hist = histories[q];
    hist.foreverFrom = FailurePattern::kNever;
    const Time crash = pattern.crashTime(q);
    bool suspecting = false;
    Time suspectFrom = 0;
    for (Time r = params_.probePeriod;; r += params_.probePeriod) {
      const bool alive = r < crash;
      bool success = false;
      if (alive) {
        if (!inAnyWindow(r, params_.burstWindows)) {
          success = true;  // direct probe answered
        } else {
          // Direct probe lost in the burst; each indirect relay path
          // survives with hash-derived odds ~1/4 (some paths route
          // around the loss) — the SWIM trick that keeps rounds alive
          // through bursts and one-way cuts that kill direct probes.
          const std::uint64_t round = r / params_.probePeriod;
          for (std::uint32_t j = 0; j < params_.indirectRelays; ++j) {
            if (splitmix64(params_.seed ^ (q * 0x10001ULL) ^
                           (round * 0x101ULL) ^ (j + 1)) %
                    4 ==
                0) {
              success = true;
              break;
            }
          }
        }
      }
      if (success) {
        if (suspecting) {
          hist.intervals.emplace_back(suspectFrom, r);
          suspecting = false;
        }
        if (r > quietFrom) break;  // settled: no more bursts ahead
      } else if (!suspecting) {
        suspecting = true;
        suspectFrom = r;
      }
      if (!alive) {
        // Every future round fails too: suspected forever from the
        // first unanswered round.
        hist.foreverFrom = suspectFrom;
        break;
      }
    }
  }
  init(std::move(histories));
}

std::string SwimFd::name() const {
  return "<>P-swim(period=" + std::to_string(params_.probePeriod) +
         ",relays=" + std::to_string(params_.indirectRelays) + "," +
         std::to_string(params_.burstWindows.size()) + " bursts)";
}

}  // namespace wfd
