// Client-side router of the sharded KV service: hashes each op to its
// owning shard (shard/hash_ring.h via the service) and serves reads
// from a FOLD of the shard's §7 committed prefix.
//
// Write path: put(key, v) routes the command to the owner shard's read
// replica and remembers the (key, v) pair as pending. Read path: every
// poll() fetches each shard's committed prefix, decodes the NEW suffix
// of put commands (Client::findBody) into a per-shard key→value map,
// and resolves pending writes it sees commit. A committed prefix can
// only extend under the §7 proviso, so the fold is incremental; on the
// delivered()-fallback stacks (no commit indications) a rewrite triggers
// a full refold, counted in refolds(). Reads therefore return only
// COMMITTED state — the read-your-writes guarantee the sharded_kv
// checker verifies is "my write is visible once the router saw it
// commit", per shard, the strongest a client can ask of an eventually
// consistent store without blocking.
//
// Every op is appended to an op log (RouterOp) carrying the routing
// decision, the observed value, and the per-(shard, key) fold version —
// the full input to checkShardedKvRun (shard/sharded_kv_checker.h).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "shard/sharded_service.h"

namespace wfd {

/// One routed client operation, as the checker sees it.
struct RouterOp {
  enum class Kind : std::uint8_t { kPut, kGet };

  Kind kind = Kind::kPut;
  std::uint64_t key = 0;
  /// kPut: the written value. kGet: the observed value (valid when
  /// hasValue).
  std::uint64_t value = 0;
  bool hasValue = false;
  /// Service clock when the op was issued.
  Time time = 0;
  /// Shard the op was routed to (ring owner at issue time).
  std::size_t shard = 0;
  /// kPut: a later poll() saw this write in the shard's committed
  /// prefix, at service time commitTime.
  bool committed = false;
  Time commitTime = 0;
  /// kGet: number of put commands the fold had applied to this key on
  /// this shard when the read was served (0 = key unseen). Per
  /// (key, shard) this is non-decreasing across the log — the monotone
  /// clause of the checker.
  std::uint64_t version = 0;
};

class ShardRouter {
 public:
  /// The router borrows the service; one service can carry any number
  /// of routers (the ring is deterministic, so they agree on owners).
  explicit ShardRouter(ShardedService& service);

  /// Routes a put to the owner shard's read replica (scheduled at that
  /// shard's now() + 1). Returns the op-log index.
  std::size_t put(std::uint64_t key, std::uint64_t value);

  /// Serves a read of `key` from the owner shard's committed fold
  /// (poll()s first). nullopt while no committed put for the key has
  /// been observed on that shard.
  std::optional<std::uint64_t> get(std::uint64_t key);

  /// Folds every shard's newly committed commands and resolves pending
  /// writes. get() calls this; exposed so drivers can resolve commit
  /// times eagerly while stepping.
  void poll();

  const std::vector<RouterOp>& ops() const { return ops_; }
  /// Full refolds forced by a committed-prefix rewrite (always 0 on the
  /// commit-eTOB stack; the delivered() fallback may reorder).
  std::uint64_t refolds() const { return refolds_; }
  /// Put ops still unresolved (never observed committed).
  std::size_t pendingPuts() const;
  /// Committed commands folded so far on shard s.
  std::size_t foldedLen(std::size_t s) const;

 private:
  struct FoldState {
    /// The committed ids already folded (prefix-compare detects
    /// rewrites).
    std::vector<MsgId> folded;
    std::unordered_map<std::uint64_t, std::uint64_t> kv;
    /// Put commands folded per key — the version a get() reports.
    std::unordered_map<std::uint64_t, std::uint64_t> versions;
  };

  void foldShard(std::size_t s);

  ShardedService* service_;
  std::vector<RouterOp> ops_;
  std::vector<FoldState> folds_;
  /// Op-log indices of puts not yet seen committed.
  std::vector<std::size_t> pending_;
  std::uint64_t refolds_ = 0;
};

}  // namespace wfd
