// Flat encoding of application-message sequences into EC Values.
//
// Algorithm 1 proposes whole message sequences to EC; the sequences must
// carry message content so that any process adopting a decided sequence
// knows every message in it (its own push(m) copies may still be in
// flight).
#pragma once

#include <vector>

#include "common/ensure.h"
#include "common/types.h"
#include "sim/app_msg.h"

namespace wfd {

inline Value encodeAppMsgSeq(const std::vector<AppMsg>& seq) {
  Value out;
  out.push_back(seq.size());
  for (const AppMsg& m : seq) {
    out.push_back(m.id);
    out.push_back(m.origin);
    out.push_back(m.body.size());
    out.insert(out.end(), m.body.begin(), m.body.end());
  }
  return out;
}

inline std::vector<AppMsg> decodeAppMsgSeq(const Value& encoded) {
  WFD_ENSURE(!encoded.empty());
  std::size_t pos = 0;
  const std::uint64_t count = encoded[pos++];
  std::vector<AppMsg> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    WFD_ENSURE(pos + 3 <= encoded.size());
    AppMsg m;
    m.id = encoded[pos++];
    m.origin = static_cast<ProcessId>(encoded[pos++]);
    const std::uint64_t len = encoded[pos++];
    WFD_ENSURE(pos + len <= encoded.size());
    m.body.assign(encoded.begin() + pos, encoded.begin() + pos + len);
    pos += len;
    out.push_back(std::move(m));
  }
  WFD_ENSURE_MSG(pos == encoded.size(), "trailing bytes in encoded message sequence");
  return out;
}

}  // namespace wfd
