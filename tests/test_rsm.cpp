// Integration tests: replicated state machines over the two ordering
// services — the paper's "eventually consistent replicated service"
// (ETOB, eventually-linearizable universal construction, §6) vs the
// strongly consistent replica (TOB) — plus the gossip/LWW strawman.
#include <gtest/gtest.h>

#include <memory>

#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "helpers.h"
#include "rsm/gossip_lww.h"
#include "rsm/replica.h"
#include "rsm/state_machines.h"
#include "tob/tob_via_consensus.h"

namespace wfd {
namespace {

// --- State machines ----------------------------------------------------------

TEST(StateMachineTest, KvStorePutGetDel) {
  KvStore kv;
  kv.apply(makePut(1, 10));
  kv.apply(makePut(2, 20));
  EXPECT_EQ(kv.get(1), 10u);
  kv.apply(makePut(1, 11));
  EXPECT_EQ(kv.get(1), 11u);
  kv.apply(makeDel(1));
  EXPECT_FALSE(kv.get(1).has_value());
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv.appliedCount(), 4u);
}

TEST(StateMachineTest, KvStoreEqualityIsContentBased) {
  KvStore a, b;
  a.apply(makePut(1, 10));
  b.apply(makePut(1, 9));
  b.apply(makePut(1, 10));
  EXPECT_TRUE(a == b);
}

TEST(StateMachineTest, CounterAccumulates) {
  CounterSm c;
  c.apply(makeAdd(5));
  c.apply(makeAdd(7));
  EXPECT_EQ(c.value(), 12);
}

TEST(StateMachineTest, JournalOrderSensitive) {
  JournalSm a, b;
  a.apply(makeAppend(1));
  a.apply(makeAppend(2));
  b.apply(makeAppend(2));
  b.apply(makeAppend(1));
  EXPECT_FALSE(a == b);
}

TEST(StateMachineTest, MalformedCommandThrows) {
  KvStore kv;
  EXPECT_THROW(kv.apply(Command{}), InvariantError);
  EXPECT_THROW(kv.apply(Command{static_cast<std::uint64_t>(SmOp::kPut), 1}),
               InvariantError);
}

// --- Replicas ----------------------------------------------------------------

using EtobReplica = ReplicaAutomaton<EtobAutomaton, KvStore>;
using TobReplica = ReplicaAutomaton<TobViaConsensusAutomaton, KvStore>;
using JournalReplica = ReplicaAutomaton<EtobAutomaton, JournalSm>;

SimConfig rsmConfig(std::size_t n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 15;
  cfg.maxDelay = 30;
  return cfg;
}

template <typename Replica>
bool machinesConverged(const Simulator& sim, std::size_t expectApplied) {
  const auto correct = sim.failurePattern().correctSet();
  const auto& first =
      static_cast<const Replica&>(sim.automaton(correct.front())).machine();
  if (first.appliedCount() < expectApplied) return false;
  for (ProcessId p : correct) {
    const auto& replica = static_cast<const Replica&>(sim.automaton(p));
    if (!(replica.machine() == first)) return false;
  }
  return true;
}

TEST(ReplicaTest, EtobKvReplicasConverge) {
  auto cfg = rsmConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 800,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobReplica>(EtobAutomaton{}));
  }
  for (int i = 0; i < 5; ++i) {
    for (ProcessId p = 0; p < 3; ++p) {
      sim.scheduleInput(p, 100 + 50 * i + 7 * p,
                        Payload::of(ClientCommand{makePut(p * 10 + i, i)}));
    }
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 1500 && machinesConverged<EtobReplica>(s, 15);
  }));
  const auto& kv = static_cast<const EtobReplica&>(sim.automaton(0)).machine();
  EXPECT_EQ(kv.get(0), 0u);
  EXPECT_EQ(kv.get(24), 4u);
}

TEST(ReplicaTest, StrongReplicaNeverRebuilds) {
  auto cfg = rsmConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<TobReplica>(TobViaConsensusAutomaton(p, 3)));
  }
  for (int i = 0; i < 4; ++i) {
    sim.scheduleInput(i % 3, 100 + 60 * i,
                      Payload::of(ClientCommand{makePut(i, i)}));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return machinesConverged<TobReplica>(s, 4);
  }));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(static_cast<const TobReplica&>(sim.automaton(p)).rebuilds(), 0u)
        << "strong TOB never revokes, so no rebuilds at p" << p;
  }
}

TEST(ReplicaTest, EtobReplicaRebuildsOnlyBeforeTau) {
  auto cfg = rsmConfig(3);
  auto fp = FailurePattern::noFailures(3);
  const Time tauOmega = 1200;
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<JournalReplica>(EtobAutomaton{}));
  }
  for (int i = 0; i < 6; ++i) {
    for (ProcessId p = 0; p < 3; ++p) {
      sim.scheduleInput(p, 80 + 45 * i + 5 * p,
                        Payload::of(ClientCommand{makeAppend(i * 10 + p)}));
    }
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 1000 && machinesConverged<JournalReplica>(s, 18);
  }));
  // Divergence (rebuilds) may happen before τ but the journals converge —
  // identical entries in identical order at every replica.
  const auto& j0 = static_cast<const JournalReplica&>(sim.automaton(0)).machine();
  EXPECT_EQ(j0.entries().size(), 18u);
  for (ProcessId p = 0; p < 3; ++p) {
    // All delivery rewrites happened before stabilization + slack.
    EXPECT_LE(sim.trace().lastPrefixViolation(p),
              tauOmega + cfg.timeoutPeriod + cfg.maxDelay);
  }
}

TEST(ReplicaTest, EtobReplicaWorksWithMinorityCorrect) {
  auto cfg = rsmConfig(5);
  auto fp = Environments::staggeredCrashes(5, 3, 700, 60);
  auto omega = std::make_shared<OmegaFd>(fp, 1200,
                                         OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 5; ++p) {
    sim.addProcess(p, std::make_unique<EtobReplica>(EtobAutomaton{}));
  }
  // Commands from the two eventually-correct processes, after the crashes.
  for (int i = 0; i < 4; ++i) {
    sim.scheduleInput(0, 1300 + 50 * i, Payload::of(ClientCommand{makePut(i, i)}));
    sim.scheduleInput(1, 1320 + 50 * i,
                      Payload::of(ClientCommand{makePut(100 + i, i)}));
  }
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 3000 && machinesConverged<EtobReplica>(s, 8);
  })) << "eventually consistent replication must progress without a majority";
}

// --- Gossip LWW strawman -----------------------------------------------------

TEST(GossipLwwTest, ConvergesToSameTable) {
  auto cfg = rsmConfig(3);
  auto fp = FailurePattern::noFailures(3);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<GossipLwwStore>());
  }
  for (int i = 0; i < 4; ++i) {
    for (ProcessId p = 0; p < 3; ++p) {
      AppMsg m;
      m.id = makeMsgId(p, i);
      m.origin = p;
      m.body = makePut(i, p * 100 + i);
      sim.scheduleInput(p, 100 + 40 * i + 9 * p,
                        Payload::of(BroadcastInput{std::move(m)}));
    }
  }
  ASSERT_TRUE(sim.runUntil([](const Simulator& s) {
    if (s.now() < 1500) return false;
    const auto& a = static_cast<const GossipLwwStore&>(s.automaton(0));
    const auto& b = static_cast<const GossipLwwStore&>(s.automaton(1));
    const auto& c = static_cast<const GossipLwwStore&>(s.automaton(2));
    return a.sameTable(b) && a.sameTable(c) && a.table().size() == 4;
  }));
}

TEST(GossipLwwTest, LwwPicksHighestTimestamp) {
  GossipLwwStore store;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 2;
  Effects fx;
  AppMsg m1;
  m1.id = makeMsgId(0, 0);
  m1.origin = 0;
  m1.body = makePut(7, 1);
  store.onInput(ctx, Payload::of(BroadcastInput{m1}), fx);
  // A remote entry with a higher timestamp wins.
  GossipLwwStore::Entry remote;
  remote.value = 2;
  remote.timestamp = 99;
  remote.origin = 1;
  remote.sourceMsg = makeMsgId(1, 0);
  store.onMessage(ctx, 1, Payload::of(GossipStateMsg{{{7, remote}}}), fx);
  EXPECT_EQ(store.table().at(7).value, 2u);
  // A remote entry with a lower timestamp loses.
  GossipLwwStore::Entry stale = remote;
  stale.timestamp = 1;
  stale.value = 3;
  stale.sourceMsg = makeMsgId(1, 1);
  store.onMessage(ctx, 1, Payload::of(GossipStateMsg{{{7, stale}}}), fx);
  EXPECT_EQ(store.table().at(7).value, 2u);
}

TEST(GossipLwwTest, EmitsAppliedEventOncePerUpdate) {
  GossipLwwStore store;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 2;
  Effects fx;
  GossipLwwStore::Entry e;
  e.value = 1;
  e.timestamp = 5;
  e.origin = 1;
  e.sourceMsg = makeMsgId(1, 0);
  store.onMessage(ctx, 1, Payload::of(GossipStateMsg{{{1, e}}}), fx);
  store.onMessage(ctx, 1, Payload::of(GossipStateMsg{{{1, e}}}), fx);
  std::size_t applied = 0;
  for (const auto& out : fx.outputs()) {
    if (out.holds<GossipApplied>()) ++applied;
  }
  EXPECT_EQ(applied, 1u);
}

}  // namespace
}  // namespace wfd
