#include "link/reliable_link.h"

#include "common/ensure.h"

namespace wfd {

void ReliableLink::track(std::uint64_t uid, ProcessId from, ProcessId to,
                         std::uint32_t msgSlot) {
  WFD_ENSURE(msgSlot != kNoSlot);
  TxState st;
  st.msgSlot = msgSlot;
  st.ends = Endpoints{from, to};
  st.attempts = 0;
  st.rto = initialRto_;
  const bool inserted = pendingTx_.emplace(uid, st).second;
  WFD_ENSURE_MSG(inserted, "uid tracked twice");
}

std::uint32_t ReliableLink::acked(std::uint64_t uid) {
  const auto it = pendingTx_.find(uid);
  if (it == pendingTx_.end()) return kNoSlot;  // duplicate ack
  const std::uint32_t slot = it->second.msgSlot;
  pendingTx_.erase(it);
  ++acksReceived_;
  return slot;
}

const ReliableLink::Endpoints* ReliableLink::peek(std::uint64_t uid) const {
  const auto it = pendingTx_.find(uid);
  return it == pendingTx_.end() ? nullptr : &it->second.ends;
}

std::uint32_t ReliableLink::drain(std::uint64_t uid) {
  const auto it = pendingTx_.find(uid);
  WFD_ENSURE_MSG(it != pendingTx_.end(), "draining an untracked uid");
  const std::uint32_t slot = it->second.msgSlot;
  pendingTx_.erase(it);
  ++drained_;
  return slot;
}

ReliableLink::Retransmit ReliableLink::retransmitted(std::uint64_t uid) {
  const auto it = pendingTx_.find(uid);
  WFD_ENSURE_MSG(it != pendingTx_.end(), "retransmitting an untracked uid");
  TxState& st = it->second;
  ++st.attempts;
  ++retransmissions_;
  st.rto = nextBackoff(st.rto, rtoCap_);
  return Retransmit{st.msgSlot, st.rto};
}

}  // namespace wfd
