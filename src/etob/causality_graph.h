// The causality graph CG_i of Algorithm 5 (ET OB).
//
// Nodes are application messages; an edge (m', m) means m causally
// depends on m'. UpdateCG(m, C(m)) adds m with edges from C(m); UnionCG
// merges a peer's graph. The graph is acyclic by construction: every
// in-edge of m is created at m's broadcast, and C(m) only contains
// messages created strictly earlier in real time.
//
// Two edge modes with the same transitive closure:
//  * kFullPaper — edges from *every* element of C(m), as written in the
//    paper's UpdateCG;
//  * kFrontier — edges only from the causally-maximal elements of C(m)
//    (the graph's current sinks plus the explicit dependencies). Cheaper,
//    and provably closure-equivalent because every node reaches a sink.
//
// Layout: message bodies live in a flat vector parallel to the graph's
// insertion-index space (bodies_[i] is the content of node i once
// bodyKnown_[i]); approxWeight is maintained incrementally. The promote
// sequence of UpdatePromote is maintained incrementally too — see
// extendPromote() below.
#pragma once

#include <cstdint>
#include <vector>

#include "common/digraph.h"
#include "common/types.h"
#include "sim/app_msg.h"

namespace wfd {

enum class CgEdgeMode { kFullPaper, kFrontier };

class CausalityGraph {
 public:
  explicit CausalityGraph(CgEdgeMode mode = CgEdgeMode::kFullPaper) : mode_(mode) {}

  /// The paper's UpdateCG(m, C(m)): adds node m and edges {(m', m) |
  /// m' ∈ deps}. C(m) is supplied by the application and may reference
  /// messages whose content this process has not received yet (e.g. a
  /// client session that read m' at another replica): such dependencies
  /// become placeholder nodes — the edge is recorded, and m stays
  /// unpromotable until the placeholder's content arrives (see
  /// extendPromote). Idempotent per message id.
  void addMessage(const AppMsg& m, const std::vector<MsgId>& deps);

  /// The paper's UnionCG(CG_j). Fills in placeholder bodies known to the
  /// peer.
  void unionWith(const CausalityGraph& other);

  /// True iff the full content of the message is known (placeholder
  /// dependency nodes return false).
  bool contains(MsgId id) const {
    const auto idx = graph_.indexOf(id);
    return idx.has_value() && bodyKnown_[*idx] != 0;
  }
  std::size_t messageCount() const { return graph_.nodeCount(); }
  std::size_t edgeCount() const { return graph_.edgeCount(); }

  /// Message metadata (must be present).
  const AppMsg& message(MsgId id) const;

  /// All message ids, in insertion order.
  const std::vector<MsgId>& ids() const { return graph_.nodes(); }

  /// True iff `ancestor` causally precedes `descendant` in this graph.
  bool causallyPrecedes(MsgId ancestor, MsgId descendant) const {
    return graph_.reaches(ancestor, descendant);
  }

  /// Causally maximal messages (no outgoing edge).
  std::vector<MsgId> frontier() const { return graph_.sinks(); }

  /// Abstract serialized size in words (nodes + edges + message bodies) —
  /// what a full-graph update message costs on the wire. Maintained
  /// incrementally; O(1).
  std::size_t approxWeight() const {
    return 1 + graph_.nodeCount() + graph_.edgeCount() + bodyWeight_;
  }

  /// Deterministic topological order of all messages (ties by MsgId).
  /// The graph is acyclic by construction, so this always succeeds.
  std::vector<MsgId> topologicalOrder() const;

  /// The paper's UpdatePromote, batch form: returns an extension of
  /// `promote` that contains every PROMOTABLE message of this graph
  /// exactly once and respects every edge. A message is promotable when
  /// its content and the content of its whole causal ancestry are known —
  /// a placeholder dependency blocks its descendants (causal buffering),
  /// never the rest of the graph. `promote` must itself respect the
  /// graph's edges (invariant maintained by Algorithm 5; violations
  /// throw). This is the reference implementation (full topo walk); the
  /// automata drive the incremental engine below, which produces
  /// identical sequences (differentially tested).
  std::vector<MsgId> extendPromote(const std::vector<MsgId>& promote) const;

  // -- Incremental promote engine ----------------------------------------
  // addMessage/unionWith maintain per-node unmet-predecessor counts and a
  // ready frontier (nodes whose content and whole ancestry are known but
  // which are not yet in the maintained sequence). extendPromote() drains
  // that frontier in O(newly promotable + touched edges): when exactly one
  // node is ready at a time it is appended directly (the unique next
  // element of the canonical batch order); only when several become ready
  // in the same event does it fall back to the full topo walk. The
  // maintained sequence therefore equals replaying the batch
  // extendPromote after every event, without the per-update full toposort.

  /// Extends the maintained promote sequence with everything that became
  /// promotable since the last call. Returns the maintained sequence.
  const std::vector<MsgId>& extendPromote();

  /// The maintained promote sequence (what successive extendPromote()
  /// calls have produced).
  const std::vector<MsgId>& promoteSequence() const { return promoteSeq_; }

  /// Rebase: replaces the maintained sequence with `base` (which must be
  /// duplicate-free and respect the graph's edges — the committed prefix
  /// of the §7 extension) and extends it with everything promotable.
  /// Equivalent to the batch extendPromote(base).
  const std::vector<MsgId>& resetPromote(const std::vector<MsgId>& base);

  CgEdgeMode mode() const { return mode_; }

 private:
  /// Grows the per-node parallel arrays to the graph's node count.
  void syncNodeArrays();
  /// Recomputes unmetPreds_ for node i and queues it if it became ready.
  void refreshNode(std::uint32_t i);
  void pushReady(std::uint32_t i);
  /// Appends node i to the maintained sequence and releases its
  /// successors (decrementing unmet counts, queueing newly ready nodes).
  void emitNode(std::uint32_t i);
  /// Fallback: full topo walk appending every promotable node (exact
  /// batch order).
  void emitBatch();
  /// kFrontier dominance collapse: drops every dep that reaches another
  /// dep (it is implied transitively). One multi-source backward flood
  /// instead of the former O(deps²) pairwise reaches() scan.
  void collapseDominated(const std::vector<MsgId>& deps,
                         std::vector<MsgId>& out);
  /// Debug cross-check: the flood result must match the pairwise scan.
  bool noDominatedSource(const std::vector<MsgId>& deps,
                         const std::vector<MsgId>& sources) const;

  CgEdgeMode mode_;
  Digraph<MsgId> graph_;
  /// Content per node index; meaningful only where bodyKnown_[i] != 0
  /// (placeholder nodes keep a default-constructed slot).
  std::vector<AppMsg> bodies_;
  std::vector<char> bodyKnown_;
  /// Σ over known bodies of (2 + |body| + |causalDeps|): the body part of
  /// approxWeight, maintained on every body learn.
  std::size_t bodyWeight_ = 0;

  // Incremental promote state (all parallel to the graph's index space).
  std::vector<MsgId> promoteSeq_;
  std::vector<char> emitted_;
  std::vector<std::uint32_t> unmetPreds_;
  std::vector<std::uint32_t> ready_;
  std::vector<char> readyFlag_;

  // Reused scratch (dominance flood + union bookkeeping), stamp-versioned
  // so clears are O(touched) not O(nodes).
  std::vector<std::uint32_t> visitStamp_;
  std::uint32_t visitEpoch_ = 0;
  std::vector<std::uint32_t> floodStack_;
  std::vector<MsgId> sourcesScratch_;
  std::vector<std::uint32_t> unionMapScratch_;
};

}  // namespace wfd
