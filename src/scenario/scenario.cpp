#include "scenario/scenario.h"

#include <utility>

#include "checkers/commit_checker.h"
#include "checkers/ec_checker.h"
#include "checkers/tob_checker.h"
#include "common/ensure.h"
#include "common/json.h"
#include "common/strings.h"
#include "rsm/gossip_lww.h"
#include "scenario/trace_digest.h"

namespace wfd {

ClusterSpec clusterSpec(const Scenario& s, const SimConfig& overrides) {
  ClusterSpec spec;
  spec.stack = s.stack;
  spec.config = overrides;
  spec.pattern = s.pattern;
  spec.network = s.network;
  spec.detector = s.detector;
  spec.tauOmega = s.tauOmega;
  spec.omegaMode = s.omegaMode;
  spec.workload = s.workload;
  spec.ecInstances = s.ecInstances;
  return spec;
}

ClusterSpec clusterSpec(const Scenario& s) { return clusterSpec(s, s.config); }

ScenarioInstance instantiateScenario(const Scenario& s, std::uint64_t seed,
                                     const SimConfig& overrides) {
  return ScenarioInstance(
      std::make_unique<Cluster>(clusterSpec(s, overrides), seed));
}

ScenarioInstance instantiateScenario(const Scenario& s, std::uint64_t seed) {
  return instantiateScenario(s, seed, s.config);
}

ScenarioRunResult evaluateScenarioRun(const Scenario& s, std::uint64_t seed,
                                      const Cluster& cluster) {
  const Simulator& sim = cluster.sim();
  ScenarioRunResult r;
  r.scenario = s.name;
  r.seed = seed;
  r.stack = algoStackName(s.stack);
  r.network = sim.network().name();
  r.endTime = sim.now();
  r.eventsProcessed = sim.eventsProcessed();
  r.messagesSent = sim.trace().messagesSent();
  r.messagesDelivered = sim.trace().messagesDelivered();
  r.duplicatesSuppressed = sim.duplicatesSuppressed();

  const Trace& trace = sim.trace();
  const BroadcastLog& log = cluster.log();
  const FailurePattern& fp = sim.failurePattern();
  auto fail = [&r](std::string clause) { r.failures.push_back(std::move(clause)); };

  if (s.checks.broadcast || s.checks.requireStrongTob) {
    const BroadcastCheckReport rep = checkBroadcastRun(trace, log, fp);
    if (!rep.validityOk) fail("broadcast: validity");
    if (!rep.agreementOk) fail("broadcast: agreement");
    if (!rep.noCreationOk) fail("broadcast: no-creation");
    if (!rep.noDuplicationOk) fail("broadcast: no-duplication");
    if (!rep.causalOrderOk) fail("broadcast: causal-order");
    r.tauHat = rep.tau;
    if (s.checks.requireStrongTob && !rep.strongTobOk()) {
      fail("broadcast: strong-tob (tau-hat=" + std::to_string(rep.tau) + ")");
    }
  }
  if (s.checks.convergence && !broadcastConverged(sim, log)) {
    fail("convergence: correct processes did not agree on a complete d_i");
  }
  if (s.checks.commit) {
    const CommitCheckReport rep = checkCommitSafety(trace, fp);
    // Run-specific details stay behind " (" — the part before it is the
    // stable clause KEY the explorer's shrinker matches on (explorer.h).
    if (!rep.safetyOk()) {
      fail("commit: prefixes revoked (" + std::to_string(rep.revokedCommits) +
           ")");
    }
    if (s.checks.requireCommitProgress && rep.indications == 0) {
      fail("commit: no indications despite a stable majority");
    }
  }
  if (s.checks.ec) {
    const EcCheckReport rep = checkEcRun(trace, fp);
    if (!rep.integrityOk) fail("ec: integrity");
    if (!rep.validityOk) fail("ec: validity");
    if (!rep.terminationOk(s.ecInstances)) {
      fail("ec: termination (decided " + std::to_string(rep.decidedByAllCorrect) +
           " of " + std::to_string(s.ecInstances) + ")");
    }
    // Eventual agreement: a finite witness k̂ must fall INSIDE the decided
    // range — agreementFromK == ecInstances + 1 means the very last
    // instance still disagreed, i.e. no agreed suffix was ever observed.
    if (rep.agreementFromK > s.ecInstances) {
      fail("ec: agreement (no agreed suffix; k-hat=" +
           std::to_string(rep.agreementFromK) + " > " +
           std::to_string(s.ecInstances) + ")");
    }
  }
  if (s.checks.gossipConvergence) {
    const std::vector<ProcessId> correct = fp.correctSet();
    const auto* reference =
        correct.empty() ? nullptr
                        : dynamic_cast<const GossipLwwStore*>(
                              &sim.automaton(correct.front()));
    WFD_ENSURE_MSG(reference != nullptr,
                   "gossipConvergence requires the gossip-lww stack");
    for (ProcessId p : correct) {
      const auto* replica =
          dynamic_cast<const GossipLwwStore*>(&sim.automaton(p));
      if (!replica->sameTable(*reference)) {
        fail("gossip: divergence (replica " + std::to_string(p) + ")");
        break;
      }
    }
  }

  r.digest = traceDigest(trace);
  r.pass = r.failures.empty();
  return r;
}

ScenarioRunResult runScenario(const Scenario& s, std::uint64_t seed) {
  Cluster cluster(clusterSpec(s), seed);
  cluster.runToHorizon();
  return evaluateScenarioRun(s, seed, cluster);
}

std::string toJsonLine(const ScenarioRunResult& r) {
  // Key order is part of the CLI's documented output (docs/SCENARIOS.md),
  // so the line is assembled in order with the json.h writer doing the
  // string escaping — byte-identical to the legacy emission for
  // escape-free values, valid JSON for everything else.
  std::string out = "{";
  out += "\"scenario\":" + jsonQuoted(r.scenario);
  out += ",\"seed\":" + std::to_string(r.seed);
  out += ",\"pass\":" + std::string(r.pass ? "true" : "false");
  out += ",\"stack\":" + jsonQuoted(r.stack);
  out += ",\"network\":" + jsonQuoted(r.network);
  out += ",\"end_time\":" + std::to_string(r.endTime);
  out += ",\"events\":" + std::to_string(r.eventsProcessed);
  out += ",\"messages_sent\":" + std::to_string(r.messagesSent);
  out += ",\"messages_delivered\":" + std::to_string(r.messagesDelivered);
  out += ",\"duplicates_suppressed\":" + std::to_string(r.duplicatesSuppressed);
  out += ",\"tau_hat\":" + std::to_string(r.tauHat);
  out += ",\"digest\":" + jsonQuoted(hex64(r.digest));
  out += ",\"failures\":[";
  for (std::size_t i = 0; i < r.failures.size(); ++i) {
    if (i > 0) out += ",";
    out += jsonQuoted(r.failures[i]);
  }
  out += "]}";
  return out;
}

}  // namespace wfd
