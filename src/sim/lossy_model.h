// Fair-lossy link decorators: the adversaries the paper's "in any
// environment" liveness claims are actually about. Each decorator wraps
// an inner NetworkModel and may REMOVE copies from its schedule —
// something the base contract forbids (network_model.h) unless the model
// reports mayDrop(), in which case the simulator activates its stubborn
// retransmission layer (link/reliable_link.h) so delivery to correct
// processes stays eventually exactly-once.
//
// Design rules shared by all four models:
//  * Drop decisions are keyed at the copy's TENTATIVE ARRIVAL time, not
//    its send time. A partition wrapped outside a lossy layer defers the
//    post-loss schedule; a lossy layer wrapped outside a partition would
//    sample loss at post-heal times — genuinely different runs, which is
//    why compositionRank() pins loss INSIDE partitions and the
//    wrong-order mutation test is non-vacuous.
//  * All models rank kRankLossy and compose between PartitionModel and
//    ClockSkewModel.
//  * mayDrop() is a capability bit, not a rate: IidLossModel at rate 0
//    still reports true, engaging the retransmission path for the
//    loss=0 ≡ legacy differential test. A rate-0 config makes ZERO rng
//    draws, so it is also draw-sequence-neutral.
//  * Burst schedules (GilbertElliottLossModel) are derived by hashing
//    (seed, frame[, link]) — not by mutable Markov state and not from
//    the run Rng — because models are shared, const, and reused across
//    runs; the schedule must be a pure function of the config.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/network_model.h"

namespace wfd {

/// Independent per-copy drop with probability num/den on every affected
/// link, optionally only before `activeUntil` (0 = lossy forever). The
/// memoryless baseline adversary: ~rate fraction of copies vanish,
/// uncorrelated across links and time.
class IidLossModel final : public NetworkModel {
 public:
  struct Config {
    std::uint32_t num = 1;
    std::uint32_t den = 5;  ///< default 20% loss
    /// Copies arriving at or after this time are never dropped; 0 = no
    /// cutoff. Lets scenarios guarantee a clean tail for convergence.
    Time activeUntil = 0;
    /// nullptr = all links lossy.
    std::function<bool(ProcessId from, ProcessId to)> affects;
  };

  IidLossModel(std::shared_ptr<const NetworkModel> inner, Config config);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  bool mayDrop() const override { return true; }
  int compositionRank() const override { return kRankLossy; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
  Config config_;
};

/// Gilbert–Elliott two-state burst loss. Time is divided into frames of
/// `framePeriod` ticks; hashing (seed, frame[, link]) decides whether the
/// frame contains a burst window, where inside the frame it starts, and
/// how long it runs (always contained in its frame). Copies arriving
/// inside a burst drop with dropInNum/dropInDen (the "bad" state, e.g.
/// 9/10); copies outside drop with dropOutNum/dropOutDen (the "good"
/// state, usually 0). `correlated` selects one network-wide schedule
/// (radio interference) vs independent per-link schedules (per-path
/// congestion).
class GilbertElliottLossModel final : public NetworkModel {
 public:
  struct Config {
    Time framePeriod = 2000;
    /// Per-frame probability that a burst occurs: burstNum/burstDen.
    std::uint32_t burstNum = 1;
    std::uint32_t burstDen = 2;
    /// Burst window length; must be >= 1 and <= framePeriod.
    Time burstLen = 300;
    /// Drop probability inside a burst (the bad state).
    std::uint32_t dropInNum = 9;
    std::uint32_t dropInDen = 10;
    /// Drop probability outside bursts (the good state).
    std::uint32_t dropOutNum = 0;
    std::uint32_t dropOutDen = 1;
    /// Seeds the hash-derived burst schedule (independent of run seed).
    std::uint64_t seed = 0;
    /// true: one schedule for the whole network; false: per-link.
    bool correlated = true;
    /// Copies arriving at or after this time are never dropped; 0 = none.
    Time activeUntil = 0;
  };

  GilbertElliottLossModel(std::shared_ptr<const NetworkModel> inner,
                          Config config);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  bool mayDrop() const override { return true; }
  int compositionRank() const override { return kRankLossy; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

  /// True iff a copy arriving at `at` on (from, to) is inside a burst
  /// window (ignores activeUntil; from/to only matter when !correlated).
  bool inBurst(Time at, ProcessId from, ProcessId to) const;

  /// All burst windows [begin, end) with begin < horizon on (from, to),
  /// clipped to activeUntil when set. Shared with the adaptive failure
  /// detectors and the E13 bench so "the FD sees the same bursts the
  /// network produced" is true by construction, not by copy-paste.
  std::vector<std::pair<Time, Time>> burstWindowsUpTo(Time horizon,
                                                      ProcessId from,
                                                      ProcessId to) const;

 private:
  /// Burst window of frame `frame` on the (hashed) link, or {0,0} if the
  /// frame is burst-free.
  std::pair<Time, Time> frameWindow(std::uint64_t frame, ProcessId from,
                                    ProcessId to) const;

  std::shared_ptr<const NetworkModel> inner_;
  Config config_;
};

/// One directional outage window: copies from `from` to `to` arriving
/// inside an active window are dropped. kNoProcess wildcards a side, so
/// {from = 2, to = kNoProcess} kills everything 2 sends while 2 still
/// hears the world — the one-way partition that symmetric PartitionSpec
/// cannot express and that defeats naive ping-based detectors.
struct OutageSpec {
  Time start = 0;
  Time width = 0;
  /// Recurrence period; 0 = one-shot window [start, start + width).
  Time period = 0;
  ProcessId from = kNoProcess;  ///< kNoProcess = any sender
  ProcessId to = kNoProcess;    ///< kNoProcess = any receiver

  /// True iff this spec kills copies on (f, t) arriving at `at`.
  bool drops(ProcessId f, ProcessId t, Time at) const;
};

/// Decorator dropping copies per a set of OutageSpecs. Deterministic:
/// makes ZERO rng draws, so it is draw-sequence-neutral by construction.
class OneWayOutageModel final : public NetworkModel {
 public:
  OneWayOutageModel(std::shared_ptr<const NetworkModel> inner,
                    std::vector<OutageSpec> specs);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  bool mayDrop() const override { return true; }
  int compositionRank() const override { return kRankLossy; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
  std::vector<OutageSpec> specs_;
};

/// Gray failure: one process is degraded, not dead. Every copy touching
/// `process` has its delay inflated by delayNum/delayDen (>= 1 tick), the
/// process's λ-period is stretched by lambdaNum/lambdaDen, and its links
/// optionally drop copies with lossNum/lossDen. The process is correct by
/// the paper's definition — it keeps stepping — but slow and flaky, the
/// regime where FD timeouts either fire spuriously or adapt.
class GrayFailureModel final : public NetworkModel {
 public:
  struct Config {
    ProcessId process = 0;
    /// Delay inflation factor for links touching `process`.
    std::uint64_t delayNum = 3;
    std::uint64_t delayDen = 1;
    /// λ-period inflation factor for `process`.
    std::uint64_t lambdaNum = 2;
    std::uint64_t lambdaDen = 1;
    /// Mild loss on links touching `process`; 0/1 = lossless.
    std::uint32_t lossNum = 0;
    std::uint32_t lossDen = 1;
    /// Inflation and loss apply only to copies arriving before this
    /// time; 0 = degraded forever.
    Time activeUntil = 0;
  };

  GrayFailureModel(std::shared_ptr<const NetworkModel> inner, Config config);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  bool mayDrop() const override {
    return config_.lossNum > 0 || inner_->mayDrop();
  }
  int compositionRank() const override { return kRankLossy; }
  const NetworkModel* innerModel() const override { return inner_.get(); }
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
  Config config_;
};

}  // namespace wfd
