// Stubborn retransmission bookkeeping: the sender half of the reliable
// link the simulator layers under the automata whenever the network
// model reports mayDrop() (fair-lossy links, sim/lossy_model.h).
//
// Protocol, from the simulator's point of view:
//  * every data send is track()ed and a retry timer armed at the initial
//    RTO; the link layer holds one reference on the message envelope so
//    the payload survives until acked or drained;
//  * every copy the receiver gets — including duplicates suppressed at
//    the automaton boundary — triggers an ack back to the sender
//    (re-acking duplicates is load-bearing: the PREVIOUS ack may have
//    been the copy the network dropped);
//  * an ack erases the tx state; the retry timer then finds it gone and
//    stops (kStale);
//  * an unacked retry retransmits the same uid (receiver-side dedup makes
//    redelivery invisible to the automaton) and doubles the RTO up to a
//    cap — stubborn: it never gives up on a live peer;
//  * a retry that finds either endpoint crashed DRAINS the state instead
//    of retransmitting — retransmit buffers are bounded by the failure
//    detector's horizon, mirroring the PR-8 adoptedBodies_ drain.
//
// This class is pure bookkeeping (no clock, no queue, no randomness);
// the Simulator owns scheduling. Determinism therefore reduces to the
// caller's, and the backoff policy is exposed as pure helpers so tests
// can pin the schedule directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace wfd {

/// Initial retransmission timeout: one full send+ack round trip at the
/// configured worst-case delay plus a λ-period of slack, so under a
/// loss-free uniform-delay network the ack always beats the first retry
/// and the retransmission path schedules nothing (the loss=0 ≡ legacy
/// differential relies on this).
inline Time initialRto(Time maxDelay, Time timeoutPeriod) {
  return 2 * maxDelay + timeoutPeriod + 1;
}

/// Exponential backoff with a cap: doubles until `cap`, then stays.
inline Time nextBackoff(Time rto, Time cap) {
  const Time doubled = rto * 2;
  return doubled < cap ? doubled : cap;
}

/// Multiplier applied to the initial RTO to get the backoff cap.
inline constexpr Time kRtoCapFactor = 16;

/// Sender-side retransmission state for all in-flight uids of one
/// simulator.
class ReliableLink {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  ReliableLink(Time initialRto, Time rtoCap)
      : initialRto_(initialRto), rtoCap_(rtoCap) {}

  /// Registers a freshly sent uid. `msgSlot` is the caller's message
  /// arena slot; the caller must hold one reference on it for the link
  /// layer, released when acked() or drain() hands the slot back.
  void track(std::uint64_t uid, ProcessId from, ProcessId to,
             std::uint32_t msgSlot);

  /// Ack received for `uid`: erases the tx state and returns the message
  /// slot so the caller can release the link layer's reference, or
  /// kNoSlot when the uid is unknown (duplicate ack — idempotent).
  std::uint32_t acked(std::uint64_t uid);

  /// Endpoints of a tracked uid, or nullptr when already acked/drained
  /// (a stale retry timer). The caller uses this to evaluate crash state
  /// before choosing drain() or retransmitted().
  struct Endpoints {
    ProcessId from;
    ProcessId to;
  };
  const Endpoints* peek(std::uint64_t uid) const;

  /// Drops the tx state of `uid` without retransmitting (an endpoint
  /// crashed); returns the message slot for the caller to release.
  std::uint32_t drain(std::uint64_t uid);

  /// Records one retransmission of `uid` and returns the message slot to
  /// re-schedule plus the delay until the NEXT retry (current RTO after
  /// backoff doubling).
  struct Retransmit {
    std::uint32_t msgSlot;
    Time nextRetryDelay;
  };
  Retransmit retransmitted(std::uint64_t uid);

  Time initialRto() const { return initialRto_; }
  std::size_t pending() const { return pendingTx_.size(); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t drained() const { return drained_; }
  std::uint64_t acksReceived() const { return acksReceived_; }

 private:
  struct TxState {
    std::uint32_t msgSlot = kNoSlot;
    Endpoints ends{kNoProcess, kNoProcess};
    std::uint32_t attempts = 0;
    Time rto = 0;
  };

  Time initialRto_;
  Time rtoCap_;
  std::unordered_map<std::uint64_t, TxState> pendingTx_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t acksReceived_ = 0;
};

}  // namespace wfd
