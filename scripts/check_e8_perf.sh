#!/usr/bin/env bash
# E8 perf smoke: guards the eTOB per-message hot path against regression.
#
# Absolute times are useless across CI machines, so the gate is the
# RATIO of eTOB to TOB cpu_time on the same E8 workload (n = 5, same
# process, back to back): BM_EtobThroughput/5 / BM_TobThroughput/5.
# Before the hot-path rebuild (incremental promotes, delta-encoded
# promote messages, frontier deps, flat bodies, stable-pred unions) the
# ratio was ~41x (62.5 ms vs 1.5 ms, BENCH_pr7-scale.json); after it is
# ~4x (BENCH_pr8-etob.json). The threshold sits at 8x — double today's
# ratio, an order of magnitude under the old one — so noise passes and
# an accidental return of a per-update full toposort or full-sequence
# promote re-ship fails.
#
# Usage: scripts/check_e8_perf.sh [BUILD_DIR]   (default: build/release)
#
# Knobs:
#   WFD_E8_MAX_RATIO   override the failure threshold (default 8.0)
#   WFD_E8_MIN_TIME    benchmark min time in seconds (default 0.5)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build/release}"
max_ratio="${WFD_E8_MAX_RATIO:-8.0}"
min_time="${WFD_E8_MIN_TIME:-0.5}"

bench="$build_dir/bench/bench_e8_throughput"
if [ ! -x "$bench" ]; then
  echo "error: $bench not found — build the benches first" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

"$bench" \
  --benchmark_filter='BM_(Etob|Tob)Throughput/5$' \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$tmpdir/e8.json" \
  --benchmark_out_format=json

python3 - "$tmpdir/e8.json" "$max_ratio" <<'PY'
import json
import sys

path, max_ratio = sys.argv[1], float(sys.argv[2])
times = {}
for b in json.load(open(path))["benchmarks"]:
    times[b["name"]] = float(b["cpu_time"])

try:
    etob = times["BM_EtobThroughput/5"]
    tob = times["BM_TobThroughput/5"]
except KeyError as missing:
    sys.exit(f"e8 perf smoke: benchmark {missing} missing from output")

ratio = etob / tob
verdict = "OK" if ratio <= max_ratio else "FAILED"
print(
    f"e8 perf smoke {verdict}: eTOB {etob:.2f} ms / TOB {tob:.2f} ms "
    f"= {ratio:.1f}x (threshold {max_ratio:.1f}x)"
)
sys.exit(0 if ratio <= max_ratio else 1)
PY
