// Deterministic state machines replicated over a broadcast service.
//
// Commands are flat word sequences (they travel inside AppMsg bodies):
//   {kPut, key, value} | {kDel, key} | {kAdd, delta} | {kAppend, tag}
// Every machine is a regular value type so replicas can compare states
// for convergence checks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"

namespace wfd {

/// Command opcodes.
enum class SmOp : std::uint64_t { kPut = 1, kDel = 2, kAdd = 3, kAppend = 4 };

using Command = std::vector<std::uint64_t>;

inline Command makePut(std::uint64_t key, std::uint64_t value) {
  return {static_cast<std::uint64_t>(SmOp::kPut), key, value};
}
inline Command makeDel(std::uint64_t key) {
  return {static_cast<std::uint64_t>(SmOp::kDel), key};
}
inline Command makeAdd(std::uint64_t delta) {
  return {static_cast<std::uint64_t>(SmOp::kAdd), delta};
}
inline Command makeAppend(std::uint64_t tag) {
  return {static_cast<std::uint64_t>(SmOp::kAppend), tag};
}

/// Replicated key-value store (the Dynamo-style motivating service).
class KvStore {
 public:
  void apply(const Command& cmd);
  std::optional<std::uint64_t> get(std::uint64_t key) const;
  std::size_t size() const { return table_.size(); }
  std::uint64_t appliedCount() const { return applied_; }
  bool operator==(const KvStore& other) const { return table_ == other.table_; }

 private:
  std::map<std::uint64_t, std::uint64_t> table_;
  std::uint64_t applied_ = 0;
};

/// Replicated counter (order-insensitive for kAdd — useful to contrast
/// with order-sensitive machines).
class CounterSm {
 public:
  void apply(const Command& cmd);
  std::int64_t value() const { return value_; }
  std::uint64_t appliedCount() const { return applied_; }
  bool operator==(const CounterSm& other) const { return value_ == other.value_; }

 private:
  std::int64_t value_ = 0;
  std::uint64_t applied_ = 0;
};

/// Replicated append-only journal (maximally order-sensitive: equal states
/// imply identical command order).
class JournalSm {
 public:
  void apply(const Command& cmd);
  const std::vector<std::uint64_t>& entries() const { return entries_; }
  std::uint64_t appliedCount() const { return applied_; }
  bool operator==(const JournalSm& other) const { return entries_ == other.entries_; }

 private:
  std::vector<std::uint64_t> entries_;
  std::uint64_t applied_ = 0;
};

}  // namespace wfd
