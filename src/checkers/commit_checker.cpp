#include "checkers/commit_checker.h"

#include <algorithm>
#include <sstream>

#include "etob/commit_etob.h"

namespace wfd {

CommitCheckReport checkCommitSafety(const Trace& trace,
                                    const FailurePattern& pattern) {
  CommitCheckReport report;
  std::uint64_t minFinalLen = 0;
  bool sawAny = false;

  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    if (!pattern.correct(p)) continue;
    const auto& snapshots = trace.deliverySnapshots(p);
    std::uint64_t lastLen = 0;

    for (const OutputEvent& ev : trace.outputs(p)) {
      const auto* commit = ev.value.as<CommittedPrefix>();
      if (commit == nullptr) continue;
      ++report.indications;
      lastLen = std::max(lastLen, commit->length);

      // d_i at indication time: last snapshot RECORDED before the
      // indication. Ordering is by the per-process record order, not the
      // timestamp — several records share one simulated time within a
      // step (the automaton aligns d_i and then indicates at the same t),
      // and ordering by time alone would compare the indication against
      // the pre-alignment snapshot, flagging phantom revocations.
      const std::vector<MsgId>* at = nullptr;
      for (const DeliverySnapshot& snap : snapshots) {
        if (snap.order <= ev.order) {
          at = &snap.seq;
        } else {
          break;
        }
      }
      if (at == nullptr || at->size() < commit->length) {
        std::ostringstream os;
        os << "commit: p" << p << " indicated length " << commit->length
           << " at t=" << ev.time << " but d_i was shorter";
        report.errors.push_back(os.str());
        ++report.revokedCommits;
        continue;
      }
      const std::vector<MsgId> prefix(at->begin(), at->begin() + commit->length);
      // Every snapshot recorded after the indication must preserve the
      // prefix verbatim.
      for (const DeliverySnapshot& snap : snapshots) {
        if (snap.order < ev.order) continue;
        const bool ok =
            snap.seq.size() >= prefix.size() &&
            std::equal(prefix.begin(), prefix.end(), snap.seq.begin());
        if (!ok) {
          std::ostringstream os;
          os << "commit: prefix of length " << commit->length << " committed at p"
             << p << " (t=" << ev.time << ") changed at t=" << snap.time;
          report.errors.push_back(os.str());
          ++report.revokedCommits;
          break;
        }
      }
    }
    if (lastLen > 0) {
      minFinalLen = sawAny ? std::min(minFinalLen, lastLen) : lastLen;
      sawAny = true;
    }
  }
  report.committedLenAllCorrect = sawAny ? minFinalLen : 0;
  return report;
}

}  // namespace wfd
