// Scale-regression suite: pins the simulator's behavior across the
// big-cluster performance refactors.
//
// The digest matrix below was generated from the implementation BEFORE
// the lazy-event-queue / indexed-partition / FD-cache rewrites (PR 7),
// so every hot-path change since is proven behavior-preserving at small
// n: a refactor that reorders events, changes an FD value, or defers a
// message differently flips at least one of these 54 constants. The
// same scenario shapes then run at n=64 as smoke tests — the sizes the
// refactors exist for.
//
// If a digest here EVER changes, that is a behavior change, not a
// refactor. Do not re-pin without understanding exactly which event
// stream changed and why that is intended.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scenario/scale_scenarios.h"

namespace wfd {
namespace {

using scaletest::scalePartitionScenario;
using scaletest::scaleScenario;

constexpr std::size_t kNs[] = {3, 5, 8};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

// Generated from the pre-refactor implementation (PR 7 pin step);
// indexed [stack in kAllAlgoStacks order][n in kNs][seed in kSeeds].
constexpr std::uint64_t kPinnedMatrix[5][3][3] = {
    // etob
    {
        {0xe89cd3de1e8238a1ULL, 0x579307525c49954aULL, 0x01ca467859825468ULL},
        {0x287429266b17607eULL, 0xbbcb807c7fd9d25dULL, 0x5aaa8b3b5a09fed9ULL},
        {0xbe5657a4281197caULL, 0x406b81ecb1a109cfULL, 0x9cb41e3b785d6587ULL},
    },
    // commit-etob
    {
        {0x611a328f6950c477ULL, 0x7f548323fd6a5e1fULL, 0xbfcbeea1943d0674ULL},
        {0x7079872d6cc8a6e7ULL, 0xb2d937509afe4112ULL, 0x5033f1167ae85040ULL},
        {0xbb770401200cbb58ULL, 0x0e0201f9cc052688ULL, 0x87aa32570f388930ULL},
    },
    // tob-via-consensus
    {
        {0x1cda1272c7e8ba16ULL, 0x53062a8378f4614eULL, 0xda76c93c391e5052ULL},
        {0xb740483ca562f558ULL, 0x2c39e721ccc44928ULL, 0x8a3b5fea4b75b8ddULL},
        {0x7a9c766ce47fd8bcULL, 0x1111a8d128256866ULL, 0x4e4416dfaaf59db0ULL},
    },
    // gossip-lww
    {
        {0xdc040175422455b4ULL, 0xeef1b99d6c2bdef3ULL, 0xef4318c0e6be2ecfULL},
        {0x43bba940d595ca8dULL, 0x991b71eb45633395ULL, 0x1352d3d4c61c6831ULL},
        {0x6b9e5b0bb5da2614ULL, 0xd5018ac8b04d38e9ULL, 0xa3fe110c35b760dcULL},
    },
    // omega-ec
    {
        {0xf0f02ece9c95a7cdULL, 0xcc712804a0f0960eULL, 0x84cf68c2282f5366ULL},
        {0xe27ae3b71749f085ULL, 0x9cedddb4cc2c0109ULL, 0x646512e6551a15b1ULL},
        {0x4399dd321e2bbe9dULL, 0x63b900a7ab1bdc26ULL, 0xa4775ad492d0a600ULL},
    },
};

// Same pre-refactor pin for the periodic half/half partition variant
// (the indexed-connectivity rewrite's anchor); [n in kNs][seed in kSeeds].
constexpr std::uint64_t kPinnedPartition[3][3] = {
    {0x502f29b86a503ac9ULL, 0x077800129b585edfULL, 0x43ceaffd888d8c7fULL},
    {0x5ec10c468908c683ULL, 0x0997c784af415bbeULL, 0x3e36811f08566a50ULL},
    {0x98f1282b0ee94ebeULL, 0x579e143ee0caae9dULL, 0x9160e683ddb390cdULL},
};

TEST(ScalePinnedDigestTest, MatrixMatchesPreRefactorPins) {
  for (std::size_t si = 0; si < std::size(kAllAlgoStacks); ++si) {
    const AlgoStack stack = kAllAlgoStacks[si];
    for (std::size_t ni = 0; ni < std::size(kNs); ++ni) {
      for (std::size_t ki = 0; ki < std::size(kSeeds); ++ki) {
        const auto r =
            runScenario(scaleScenario(stack, kNs[ni]), kSeeds[ki]);
        EXPECT_TRUE(r.pass)
            << algoStackName(stack) << " n=" << kNs[ni]
            << " seed=" << kSeeds[ki]
            << (r.failures.empty() ? "" : ": " + r.failures.front());
        EXPECT_EQ(r.digest, kPinnedMatrix[si][ni][ki])
            << algoStackName(stack) << " n=" << kNs[ni]
            << " seed=" << kSeeds[ki];
      }
    }
  }
}

TEST(ScalePinnedDigestTest, PartitionVariantMatchesPreRefactorPins) {
  for (std::size_t ni = 0; ni < std::size(kNs); ++ni) {
    for (std::size_t ki = 0; ki < std::size(kSeeds); ++ki) {
      const auto r =
          runScenario(scalePartitionScenario(kNs[ni]), kSeeds[ki]);
      EXPECT_TRUE(r.pass)
          << "partition n=" << kNs[ni] << " seed=" << kSeeds[ki]
          << (r.failures.empty() ? "" : ": " + r.failures.front());
      EXPECT_EQ(r.digest, kPinnedPartition[ni][ki])
          << "partition n=" << kNs[ni] << " seed=" << kSeeds[ki];
    }
  }
}

// n=64 smoke: every stack runs its scale shape at a size where the
// O(n^2) bookkeeping used to dominate, and every checker still passes.
class LargeClusterSmokeTest : public ::testing::TestWithParam<AlgoStack> {};

TEST_P(LargeClusterSmokeTest, N64ShapePasses) {
  // Gossip-LWW at n=64 pays an O(n^2 * rounds * table) merge cost that
  // is protocol-inherent, not simulator overhead — a shorter horizon
  // (convergence happens by ~1500) keeps the smoke affordable under
  // sanitizers without weakening what it checks.
  const Time horizon = GetParam() == AlgoStack::kGossipLww ? 3000 : 6000;
  const auto r = runScenario(scaleScenario(GetParam(), 64, horizon), 1);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "" : r.failures.front());
  EXPECT_GT(r.messagesDelivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, LargeClusterSmokeTest, ::testing::ValuesIn(kAllAlgoStacks),
    [](const ::testing::TestParamInfo<AlgoStack>& info) {
      std::string name = algoStackName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LargeClusterSmokeTest, N64PartitionShapePasses) {
  const auto r = runScenario(scalePartitionScenario(64), 1);
  EXPECT_TRUE(r.pass) << (r.failures.empty() ? "" : r.failures.front());
}

// --- The large-cluster catalog family ---------------------------------------
//
// These entries are excluded from the exhaustive sweeps in
// tests/test_scenarios.cpp and tests/test_api.cpp (see
// isLargeClusterScenario); this suite is their single per-build coverage:
// each entry runs once through the same facade path the sweeps use, and
// one entry double-runs as the determinism spot check.

TEST(LargeClusterCatalogTest, FamilyIsRegisteredAndMarked) {
  std::size_t large = 0;
  for (const Scenario& s : scenarioCatalog()) {
    if (isLargeClusterScenario(s)) {
      ++large;
      EXPECT_GE(s.config.processCount, 64u) << s.name;
    }
  }
  EXPECT_GE(large, 4u);
  ASSERT_NE(findScenario("large-cluster-leader-256"), nullptr);
  EXPECT_EQ(findScenario("large-cluster-leader-256")->config.processCount,
            256u);
}

TEST(LargeClusterCatalogTest, EveryFamilyEntryPassesItsCheckerSet) {
  for (const Scenario& s : scenarioCatalog()) {
    if (!isLargeClusterScenario(s)) continue;
    const ScenarioRunResult r = runScenario(s, 1);
    EXPECT_TRUE(r.pass)
        << s.name << (r.failures.empty() ? "" : ": " + r.failures.front());
    EXPECT_GT(r.eventsProcessed, 0u) << s.name;
  }
}

TEST(LargeClusterCatalogTest, Leader256IsDeterministic) {
  const Scenario* s = findScenario("large-cluster-leader-256");
  ASSERT_NE(s, nullptr);
  const ScenarioRunResult a = runScenario(*s, 7);
  const ScenarioRunResult b = runScenario(*s, 7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
}

}  // namespace
}  // namespace wfd
