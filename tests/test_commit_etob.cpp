// Integration tests: the §7 extension — committed-prefix indications on
// top of ET OB. Under the paper's proviso (majority correct, leader
// eventually stable) indications must be produced and NEVER revoked; when
// the majority is gone indications must stop advancing (rather than lie).
#include <gtest/gtest.h>

#include <memory>

#include "checkers/commit_checker.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/commit_etob.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

SimConfig commitConfig(std::size_t n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

Simulator makeCommitSim(SimConfig cfg, FailurePattern fp, Time tauOmega,
                        OmegaPreStabilization mode) {
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega, mode);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, std::make_unique<CommitEtobAutomaton>());
  }
  return sim;
}

TEST(CommitEtobTest, StableLeaderCommitsEverythingSafely) {
  auto cfg = commitConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeCommitSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  BroadcastWorkload w;
  w.perProcess = 5;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    const auto commit = checkCommitSafety(s.trace(), s.failurePattern());
    return commit.committedLenAllCorrect >= log.size();
  }));
  const auto commit = checkCommitSafety(sim.trace(), fp);
  EXPECT_TRUE(commit.safetyOk())
      << (commit.errors.empty() ? "" : commit.errors[0]);
  EXPECT_EQ(commit.committedLenAllCorrect, log.size());
  // The underlying broadcast still satisfies the full spec.
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.strongTobOk());
}

TEST(CommitEtobTest, CommitsSafeAcrossLateStabilization) {
  auto cfg = commitConfig(3);
  auto fp = FailurePattern::noFailures(3);
  const Time tauOmega = 1500;
  auto sim = makeCommitSim(cfg, fp, tauOmega, OmegaPreStabilization::kRotating);
  BroadcastWorkload w;
  w.perProcess = 5;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    const auto commit = checkCommitSafety(s.trace(), s.failurePattern());
    return s.now() > tauOmega + 1000 &&
           commit.committedLenAllCorrect >= log.size();
  }));
  const auto commit = checkCommitSafety(sim.trace(), fp);
  EXPECT_TRUE(commit.safetyOk())
      << (commit.errors.empty() ? "" : commit.errors[0]);
  // Rotating pre-stabilization leaders may produce (safety-preserving)
  // conflicting commits — that is exactly the outside-the-proviso case §7
  // allows. What must hold is that NO NEW conflicts appear once Omega is
  // stable: keep running to maxTime and require the counters frozen.
  const auto totalConflicts = [&sim] {
    std::uint64_t total = 0;
    for (ProcessId p = 0; p < 3; ++p) {
      total += static_cast<const CommitEtobAutomaton&>(sim.automaton(p))
                   .commitConflicts();
    }
    return total;
  };
  const std::uint64_t atConvergence = totalConflicts();
  sim.run();
  EXPECT_EQ(totalConflicts(), atConvergence)
      << "conflicting commits after Omega stabilized";
  const auto late = checkCommitSafety(sim.trace(), fp);
  EXPECT_TRUE(late.safetyOk())
      << (late.errors.empty() ? "" : late.errors[0]);
}

TEST(CommitEtobTest, CommitsSafeAcrossLeaderCrash) {
  auto cfg = commitConfig(3);
  auto fp = FailurePattern::crashesAt(3, {{0, 2500}});
  auto sim = makeCommitSim(cfg, fp, 3500, OmegaPreStabilization::kRotating);
  BroadcastWorkload w;
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    const auto commit = checkCommitSafety(s.trace(), s.failurePattern());
    return s.now() > 5000 && commit.committedLenAllCorrect >= log.size();
  }));
  const auto commit = checkCommitSafety(sim.trace(), fp);
  EXPECT_TRUE(commit.safetyOk())
      << (commit.errors.empty() ? "" : commit.errors[0]);
}

TEST(CommitEtobTest, NoMajorityNoNewCommits) {
  auto cfg = commitConfig(5);
  cfg.maxTime = 15000;
  auto fp = Environments::majorityCrash(5, 2000);
  auto sim = makeCommitSim(cfg, fp, 2500, OmegaPreStabilization::kSplitBrain);
  BroadcastWorkload w;
  w.start = 3000;  // all broadcasts after the majority is gone
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.run();
  const auto commit = checkCommitSafety(sim.trace(), fp);
  // Deliveries still flow (eventual consistency needs only Omega)...
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  // ...but nothing can be committed: acks can never reach a majority.
  EXPECT_EQ(commit.committedLenAllCorrect, 0u)
      << "commit indications require a majority — the Sigma-like price";
  EXPECT_TRUE(commit.safetyOk());
}

TEST(CommitEtobTest, IndicationMonotonePerProcess) {
  auto cfg = commitConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeCommitSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  BroadcastWorkload w;
  w.perProcess = 6;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.runUntil([&](const Simulator& s) {
    return checkCommitSafety(s.trace(), s.failurePattern())
               .committedLenAllCorrect >= log.size();
  });
  for (ProcessId p = 0; p < 3; ++p) {
    std::uint64_t last = 0;
    for (const auto& ev : sim.trace().outputs(p)) {
      if (const auto* c = ev.value.as<CommittedPrefix>()) {
        EXPECT_GE(c->length, last) << "commit watermark must be monotone";
        last = c->length;
      }
    }
    EXPECT_GT(last, 0u);
  }
}

// Sweep: commit safety across seeds and environments with a majority.
class CommitSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(CommitSweepTest, CommitSafetyHolds) {
  const auto [seed, crashes] = GetParam();
  auto cfg = commitConfig(5, seed);
  auto fp = crashes == 0 ? FailurePattern::noFailures(5)
                         : Environments::staggeredCrashes(5, crashes, 1200, 100);
  auto sim = makeCommitSim(cfg, fp, 2000, OmegaPreStabilization::kRotating);
  BroadcastWorkload w;
  w.perProcess = 4;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.runUntil([&](const Simulator& s) {
    return s.now() > 4000 &&
           checkCommitSafety(s.trace(), s.failurePattern())
                   .committedLenAllCorrect >= log.size();
  });
  const auto commit = checkCommitSafety(sim.trace(), fp);
  EXPECT_TRUE(commit.safetyOk())
      << (commit.errors.empty() ? "" : commit.errors[0]);
  EXPECT_GT(commit.indications, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CommitSweepTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 7, 19, 43),
                       ::testing::Values<std::size_t>(0, 2)));

}  // namespace
}  // namespace wfd
