// Verifier for committed-prefix indications (the §7 extension):
// once a process outputs CommittedPrefix{L} at time t, the first L
// entries of its delivery sequence as of t must never change for the
// rest of the run.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/failure_pattern.h"
#include "sim/trace.h"

namespace wfd {

struct CommitCheckReport {
  /// Total CommittedPrefix indications across correct processes.
  std::uint64_t indications = 0;
  /// Largest committed length per the final indications (min over correct
  /// processes that produced any — 0 if none).
  std::uint64_t committedLenAllCorrect = 0;
  /// Indications whose prefix later changed (must be 0 under §7's proviso).
  std::uint64_t revokedCommits = 0;
  std::vector<std::string> errors;

  bool safetyOk() const { return revokedCommits == 0; }
};

/// Requires the trace to keep delivery snapshots.
CommitCheckReport checkCommitSafety(const Trace& trace,
                                    const FailurePattern& pattern);

}  // namespace wfd
