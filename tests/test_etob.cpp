// Integration tests: Algorithm 5 (ET OB) against the full ETOB
// specification, including the paper's three headline properties:
//  (P1) is benched in E1; here we verify the protocol machinery;
//  (P2) stable Omega from time 0 => strong TOB (τ̂ = 0, no revocations);
//  (P3) causal order always, even under split-brain Omega.
#include <gtest/gtest.h>

#include <memory>

#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "helpers.h"

namespace wfd {
namespace {

SimConfig etobConfig(std::size_t n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  return cfg;
}

Simulator makeEtobSim(SimConfig cfg, FailurePattern fp, Time tauOmega,
                      OmegaPreStabilization mode, EtobConfig protoCfg = {}) {
  auto omega = std::make_shared<OmegaFd>(fp, tauOmega, mode);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>(protoCfg));
  }
  return sim;
}

BroadcastWorkload defaultWorkload() {
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 60;
  w.perProcess = 5;
  return w;
}

TEST(EtobTest, StableLeaderYieldsStrongTob) {
  auto cfg = etobConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeEtobSim(cfg, fp, 0, OmegaPreStabilization::kStable);
  auto log = scheduleBroadcastWorkload(sim, defaultWorkload());
  sim.runUntil([&](const Simulator& s) { return broadcastConverged(s, log); });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.strongTobOk()) << "tau = " << report.tau;
  EXPECT_TRUE(report.causalOrderOk);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(sim.trace().prefixViolations(p), 0u);
  }
}

TEST(EtobTest, SplitBrainEventuallyConvergesWithFiniteTau) {
  auto cfg = etobConfig(3);
  auto fp = FailurePattern::noFailures(3);
  const Time tauOmega = 3000;
  auto sim = makeEtobSim(cfg, fp, tauOmega, OmegaPreStabilization::kSplitBrain);
  auto log = scheduleBroadcastWorkload(sim, defaultWorkload());
  sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 2000 && broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.causalOrderOk);
  // The paper's Lemma 3 bound: τ ≤ τ_Ω + Δ_t + Δ_c.
  EXPECT_LE(report.tau, tauOmega + cfg.timeoutPeriod + cfg.maxDelay);
}

TEST(EtobTest, WorksWithMinorityCorrect) {
  // 3 of 5 crash: no majority — consensus-based TOB would stall, ETOB
  // must still satisfy the spec (Theorem 2: any environment).
  auto cfg = etobConfig(5);
  auto fp = Environments::staggeredCrashes(5, 3, 1500, 100);
  auto sim = makeEtobSim(cfg, fp, 2500, OmegaPreStabilization::kSplitBrain);
  auto log = scheduleBroadcastWorkload(sim, defaultWorkload());
  sim.runUntil([&](const Simulator& s) {
    return s.now() > 4000 && broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.causalOrderOk);
}

TEST(EtobTest, CausalChainsRespectedUnderSplitBrain) {
  auto cfg = etobConfig(4);
  auto fp = FailurePattern::noFailures(4);
  auto sim = makeEtobSim(cfg, fp, 5000, OmegaPreStabilization::kSplitBrain);
  auto w = defaultWorkload();
  w.causalChainPerOrigin = true;
  w.crossProcessDeps = true;
  auto log = scheduleBroadcastWorkload(sim, w);
  sim.runUntil([&](const Simulator& s) {
    return s.now() > 7000 && broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.causalOrderOk)
      << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.coreOk());
}

TEST(EtobTest, LeaderCrashRecovers) {
  // The stable leader crashes mid-run; Omega re-stabilizes on p1.
  auto cfg = etobConfig(3);
  auto fp = FailurePattern::crashesAt(3, {{0, 2000}});
  auto omega = std::make_shared<OmegaFd>(
      fp, 3000, OmegaPreStabilization::kStable);  // pre-3000: trusts p1? no:
  // kStable outputs the eventual leader (p1, lowest correct) from time 0;
  // use rotating pre-phase so p0 actually leads for a while.
  omega = std::make_shared<OmegaFd>(fp, 3000, OmegaPreStabilization::kRotating, 400);
  Simulator sim(cfg, fp, omega);
  for (ProcessId p = 0; p < 3; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  auto log = scheduleBroadcastWorkload(sim, defaultWorkload());
  sim.runUntil([&](const Simulator& s) {
    return s.now() > 5000 && broadcastConverged(s, log);
  });
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(EtobTest, PromoteFromNonLeaderIgnored) {
  // Direct unit check of the adoption guard.
  EtobAutomaton a;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 3;
  ctx.fd.leader = 2;  // trusts p2
  Effects fx;
  AppMsg m;
  m.id = makeMsgId(1, 0);
  m.origin = 1;
  a.onMessage(ctx, 1, Payload::of(EtobPromoteMsg{{m}, 1}), fx);
  EXPECT_TRUE(a.delivered().empty());
  EXPECT_FALSE(fx.delivered().has_value());
  // From the trusted leader it is adopted.
  a.onMessage(ctx, 2, Payload::of(EtobPromoteMsg{{m}, 1}), fx);
  EXPECT_EQ(a.delivered(), (std::vector<MsgId>{m.id}));
  ASSERT_NE(a.findMessage(m.id), nullptr);
  EXPECT_EQ(a.findMessage(m.id)->origin, 1u);
}

TEST(EtobTest, OnlyLeaderPromotes) {
  EtobAutomaton a;
  StepContext ctx;
  ctx.self = 1;
  ctx.processCount = 3;
  ctx.fd.leader = 0;
  Effects fx;
  a.onTimeout(ctx, fx);
  EXPECT_TRUE(fx.sends().empty());
  ctx.fd.leader = 1;  // now it considers itself leader
  a.onTimeout(ctx, fx);
  ASSERT_EQ(fx.sends().size(), 1u);
  EXPECT_EQ(fx.sends()[0].to, kBroadcast);
  EXPECT_TRUE(fx.sends()[0].payload.holds<EtobPromoteMsg>());
}

TEST(EtobTest, StaleReorderedPromoteDoesNotRegressAdoption) {
  // Mutation guard on the epoch check in onMessage: remove it and this
  // test adopts the shorter stale sequence.
  EtobAutomaton a;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 3;
  ctx.fd.leader = 2;
  Effects fx;
  AppMsg m1;
  m1.id = makeMsgId(2, 0);
  m1.origin = 2;
  AppMsg m2;
  m2.id = makeMsgId(2, 1);
  m2.origin = 2;
  // Epoch 2 (a full snapshot) overtakes epoch 1 in the non-FIFO network.
  a.onMessage(ctx, 2, Payload::of(EtobPromoteMsg{{m1, m2}, 2}), fx);
  EXPECT_EQ(a.delivered(), (std::vector<MsgId>{m1.id, m2.id}));
  a.onMessage(ctx, 2, Payload::of(EtobPromoteMsg{{m1}, 1}), fx);
  EXPECT_EQ(a.delivered(), (std::vector<MsgId>{m1.id, m2.id}))
      << "stale reordered promote must not shrink d_i";
}

TEST(EtobTest, DeltaPromoteGapBuffersUntilBaseArrives) {
  EtobAutomaton a;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 3;
  ctx.fd.leader = 2;
  Effects fx;
  AppMsg m1;
  m1.id = makeMsgId(2, 0);
  m1.origin = 2;
  AppMsg m2;
  m2.id = makeMsgId(2, 1);
  m2.origin = 2;
  // The epoch-2 delta (suffix {m2} over a base of length 1) overtakes the
  // epoch-1 promote that carries its base: it must buffer, not adopt —
  // adopting {m2} alone would violate causal order, and the chain cannot
  // name m1 yet.
  a.onMessage(ctx, 2, Payload::of(EtobPromoteMsg{{m2}, 2, 1}), fx);
  EXPECT_TRUE(a.delivered().empty()) << "incomplete chain must not adopt";
  EXPECT_FALSE(fx.delivered().has_value());
  // The base arrives late; both epochs splice and the newest head wins.
  a.onMessage(ctx, 2, Payload::of(EtobPromoteMsg{{m1}, 1}), fx);
  EXPECT_EQ(a.delivered(), (std::vector<MsgId>{m1.id, m2.id}));
  // Bodies learned only from promote suffixes stay resolvable (the RSM
  // layer hard-requires content for every delivered id).
  ASSERT_NE(a.findMessage(m1.id), nullptr);
  ASSERT_NE(a.findMessage(m2.id), nullptr);
  EXPECT_EQ(a.findMessage(m2.id)->origin, 2u);
}

TEST(EtobTest, AdoptedBodiesDrainOnceUpdatesArrive) {
  // Regression: promote-learned bodies used to be retained forever; they
  // must drain as soon as the causality graph learns the same content.
  EtobAutomaton a;
  StepContext ctx;
  ctx.self = 0;
  ctx.processCount = 3;
  ctx.fd.leader = 2;
  Effects fx;
  AppMsg m;
  m.id = makeMsgId(2, 0);
  m.origin = 2;
  a.onMessage(ctx, 2, Payload::of(EtobPromoteMsg{{m}, 1}), fx);
  EXPECT_EQ(a.adoptedBodyCount(), 1u) << "promote-learned body buffered";
  ASSERT_NE(a.findMessage(m.id), nullptr);
  // The broadcaster's update arrives; the buffered copy drains and the
  // body stays resolvable through the graph.
  CausalityGraph peer;
  peer.addMessage(m, {});
  a.onMessage(ctx, 2, Payload::of(EtobUpdateMsg{peer}), fx);
  EXPECT_EQ(a.adoptedBodyCount(), 0u);
  ASSERT_NE(a.findMessage(m.id), nullptr);
  EXPECT_EQ(a.findMessage(m.id)->origin, 2u);
}

TEST(EtobTest, AdoptedBodiesDrainAfterConvergence) {
  // End-to-end form of the drain regression: rotating pre-stabilization
  // leaders make every process adopt ahead of its graph at some point;
  // once gossip converges no buffered body may remain.
  auto cfg = etobConfig(3);
  auto fp = FailurePattern::noFailures(3);
  auto sim = makeEtobSim(cfg, fp, 1500, OmegaPreStabilization::kRotating);
  auto log = scheduleBroadcastWorkload(sim, defaultWorkload());
  ASSERT_TRUE(sim.runUntil([&](const Simulator& s) {
    return s.now() > 3000 && broadcastConverged(s, log);
  }));
  sim.run();  // let all in-flight updates land
  for (ProcessId p = 0; p < 3; ++p) {
    const auto& a = static_cast<const EtobAutomaton&>(sim.automaton(p));
    EXPECT_EQ(a.adoptedBodyCount(), 0u) << "process " << p;
  }
}

// Property sweep: the ETOB spec holds across seeds, process counts,
// pre-stabilization modes and edge modes.
struct EtobSweepParam {
  std::uint64_t seed;
  std::size_t n;
  int mode;
  int edgeMode;
};

class EtobSweepTest : public ::testing::TestWithParam<EtobSweepParam> {};

TEST_P(EtobSweepTest, SpecHolds) {
  const auto param = GetParam();
  auto cfg = etobConfig(param.n, param.seed);
  auto fp = FailurePattern::noFailures(param.n);
  const Time tauOmega = 2500;
  EtobConfig protoCfg;
  protoCfg.edgeMode = static_cast<CgEdgeMode>(param.edgeMode);
  auto sim = makeEtobSim(cfg, fp, tauOmega,
                         static_cast<OmegaPreStabilization>(param.mode), protoCfg);
  auto w = defaultWorkload();
  w.perProcess = 4;
  w.causalChainPerOrigin = true;
  auto log = scheduleBroadcastWorkload(sim, w);
  const bool converged = sim.runUntil([&](const Simulator& s) {
    return s.now() > tauOmega + 1500 && broadcastConverged(s, log);
  });
  EXPECT_TRUE(converged);
  const auto report = checkBroadcastRun(sim.trace(), log, fp);
  EXPECT_TRUE(report.coreOk()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.causalOrderOk);
  EXPECT_LE(report.tau, tauOmega + cfg.timeoutPeriod + cfg.maxDelay);
}

std::vector<EtobSweepParam> sweepParams() {
  std::vector<EtobSweepParam> out;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    for (std::size_t n : {3u, 5u}) {
      for (int mode : {0, 1, 2}) {
        for (int edge : {0, 1}) {
          out.push_back({seed, n, mode, edge});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EtobSweepTest, ::testing::ValuesIn(sweepParams()));

}  // namespace
}  // namespace wfd
