// Loss-robust ◇P oracles: failure detectors whose histories are derived
// from an explicit message-loss model instead of an abstract
// stabilization time.
//
// The classic oracles (fd/detectors.h) parameterize "when does the
// detector become accurate" with a single tau. Under bursty loss that is
// the wrong shape: a heartbeat detector is accurate, then a burst eats
// its heartbeats and it falsely suspects everyone, then it re-stabilizes
// — with a LARGER timeout, so the next identical burst no longer fools
// it. These oracles compute that whole trajectory as a pure function of
// (pattern, loss windows, params): per-process suspicion intervals are
// precomputed at construction, making the history observer-independent,
// deterministic, and cheap to sample (binary search per query).
//
// The burst windows are meant to come from the SAME
// GilbertElliottLossModel the run's network uses
// (GilbertElliottLossModel::burstWindowsUpTo), so "the detector sees the
// bursts the network produced" holds by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/failure_pattern.h"
#include "sim/fd_interface.h"

namespace wfd {

/// Shared machinery: a suspicion-style detector fully described by, per
/// process q, a sorted list of disjoint false-suspicion intervals
/// [begin, end) plus an optional time from which q is suspected forever
/// (its detected crash). valueAt is the same at every observer, so
/// epochs are observer-independent: the epoch is the index of the
/// containing segment in the merged boundary list of ALL intervals.
class IntervalSuspectFd : public FailureDetector {
 public:
  FdValue valueAt(ProcessId p, Time t) const override;
  std::uint64_t epochAt(ProcessId p, Time t) const override;

  /// Earliest time >= from at which q is not suspected and never becomes
  /// falsely suspected again (kNever when q is suspected forever). Tests
  /// and the E13 bench use this as the measured re-stabilization time.
  Time stableFrom(ProcessId q) const;

 protected:
  struct SuspicionHistory {
    /// Disjoint, sorted false-suspicion windows [begin, end).
    std::vector<std::pair<Time, Time>> intervals;
    /// Suspected forever from here on (crash detection);
    /// FailurePattern::kNever when q never crashes.
    Time foreverFrom = 0;
  };

  /// `histories` must have one entry per process; foreverFrom defaults
  /// to kNever via init().
  void init(std::vector<SuspicionHistory> histories);

 private:
  bool suspectedAt(ProcessId q, Time t) const;

  std::vector<SuspicionHistory> histories_;
  /// Merged sorted boundary times of every interval and foreverFrom —
  /// the global suspect SET is constant between consecutive boundaries.
  std::vector<Time> boundaries_;
};

/// Heartbeat-based ◇P with an adaptive timeout. Every process sends
/// heartbeats every `heartbeatPeriod`; a heartbeat is lost when it falls
/// inside one of `burstWindows` (network-wide loss bursts). The observer
/// suspects q when the gap since the last received heartbeat exceeds the
/// current timeout, and doubles the timeout (capped at maxTimeout) after
/// every false suspicion — so it re-stabilizes after each burst and
/// bursts shorter than the learned timeout stop fooling it entirely.
/// Crashed processes are suspected forever once their heartbeats stop
/// answering (last pre-crash heartbeat + current timeout).
class AdaptiveHeartbeatFd final : public IntervalSuspectFd {
 public:
  struct Params {
    Time heartbeatPeriod = 50;
    /// Must be > heartbeatPeriod or everything is suspected always.
    Time initialTimeout = 150;
    Time maxTimeout = 4000;
    /// Loss bursts [begin, end): heartbeats timestamped inside are lost.
    std::vector<std::pair<Time, Time>> burstWindows;
  };

  AdaptiveHeartbeatFd(FailurePattern pattern, Params params);

  std::string name() const override;

 private:
  Params params_;
};

/// SWIM-style indirect-probe ◇P. Every `probePeriod` the observer probes
/// q directly; a probe during a loss burst fails. A failed direct probe
/// falls back to `indirectRelays` relay paths, each succeeding with
/// deterministic hash-derived odds (some paths route around the burst) —
/// so rounds usually survive bursts that kill every direct path, which
/// is exactly the robustness SWIM buys over plain heartbeating and what
/// makes it resilient to one-way link cuts. q is suspected from a fully
/// failed round until the next successful one; crashed processes fail
/// every round and are suspected forever.
class SwimFd final : public IntervalSuspectFd {
 public:
  struct Params {
    Time probePeriod = 100;
    std::uint32_t indirectRelays = 3;
    std::uint64_t seed = 11;
    /// Loss bursts [begin, end): direct probes inside always fail, relay
    /// paths survive with probability ~1/4 each (hash-derived).
    std::vector<std::pair<Time, Time>> burstWindows;
  };

  SwimFd(FailurePattern pattern, Params params);

  std::string name() const override;

 private:
  Params params_;
};

}  // namespace wfd
