#include "consensus/multi_paxos.h"

#include "common/ensure.h"
#include "sim/message.h"

namespace wfd {

MultiPaxosEngine::MultiPaxosEngine(ProcessId self, std::size_t processCount)
    : self_(self), processCount_(processCount) {
  WFD_ENSURE(processCount >= 2);
  WFD_ENSURE(self < processCount);
}

void MultiPaxosEngine::tick(bool isLeader, Outbox& out) {
  if (!isLeader) {
    // Losing leadership abandons the prepared state: a later reign starts
    // a fresh, higher ballot.
    if (prepared_ || myBallot_ != 0) {
      prepared_ = false;
      myBallot_ = 0;
      promisers_.clear();
      constrained_.clear();
      proposedByMe_.clear();
    }
    return;
  }
  if (prepared_) return;
  if (myBallot_ == 0) {
    ++round_;
    myBallot_ = ownBallot(round_);
    promisers_.clear();
    constrained_.clear();
  }
  // (Re-)issue the prepare each λ-step until a majority promises. Links
  // are reliable, so this retransmission only matters when a previous
  // reign's state was torn down mid-flight.
  out.sends.emplace_back(kBroadcast, Payload::of(PaxosPrepareMsg{myBallot_}));
}

void MultiPaxosEngine::propose(Instance instance, Value value, Outbox& out) {
  WFD_ENSURE_MSG(prepared_, "propose() requires a majority-promised ballot");
  if (decided(instance) || proposedByMe_.contains(instance)) return;
  auto it = constrained_.find(instance);
  const Value& v = it != constrained_.end() ? it->second.second : value;
  proposedByMe_.insert(instance);
  out.sends.emplace_back(kBroadcast, Payload::of(PaxosAcceptMsg{myBallot_, instance, v}));
}

bool MultiPaxosEngine::onMessage(ProcessId from, const Payload& msg, Outbox& out) {
  if (const auto* prepare = msg.as<PaxosPrepareMsg>()) {
    if (prepare->ballot > promisedBallot_) {
      promisedBallot_ = prepare->ballot;
      out.sends.emplace_back(from,
                             Payload::of(PaxosPromiseMsg{prepare->ballot, accepted_}));
    }
    return true;
  }
  if (const auto* promise = msg.as<PaxosPromiseMsg>()) {
    if (promise->ballot != myBallot_ || prepared_) return true;
    promisers_.insert(from);
    for (const auto& [inst, bv] : promise->accepted) {
      auto [it, inserted] = constrained_.try_emplace(inst, bv);
      if (!inserted && bv.first > it->second.first) it->second = bv;
    }
    if (promisers_.size() >= majority()) prepared_ = true;
    return true;
  }
  if (const auto* accept = msg.as<PaxosAcceptMsg>()) {
    if (accept->ballot >= promisedBallot_) {
      promisedBallot_ = accept->ballot;
      accepted_[accept->instance] = {accept->ballot, accept->value};
      out.sends.emplace_back(
          kBroadcast,
          Payload::of(PaxosAcceptedMsg{accept->ballot, accept->instance, accept->value}));
    }
    return true;
  }
  if (const auto* accepted = msg.as<PaxosAcceptedMsg>()) {
    if (decided(accepted->instance)) return true;
    auto& voters = votes_[accepted->instance][accepted->ballot];
    voters.insert(from);
    if (voters.size() >= majority()) {
      decisions_.emplace(accepted->instance, accepted->value);
      votes_.erase(accepted->instance);
      out.decisions.emplace_back(accepted->instance, accepted->value);
    }
    return true;
  }
  return false;
}

const Value* MultiPaxosEngine::decision(Instance instance) const {
  auto it = decisions_.find(instance);
  return it == decisions_.end() ? nullptr : &it->second;
}

Instance MultiPaxosEngine::contiguousDecided() const {
  Instance l = 0;
  while (decisions_.contains(l + 1)) ++l;
  return l;
}

}  // namespace wfd
