// Verifiers for the broadcast abstractions' specifications over a run
// trace:
//   strong TOB — Validity, No-creation, No-duplication, Agreement,
//                Stability (from time 0), Total-order (from time 0);
//   ETOB       — the same four core properties plus *eventual* Stability
//                and Total-order: the checker computes the earliest
//                witness τ̂ after which both hold for the rest of the run;
//   Causal     — TOB-Causal-Order with respect to declared dependencies.
#pragma once

#include <string>
#include <vector>

#include "checkers/broadcast_log.h"
#include "sim/failure_pattern.h"
#include "sim/trace.h"

namespace wfd {

/// Result of checking a broadcast run.
struct BroadcastCheckReport {
  bool validityOk = true;      // correct origins stably deliver their own msgs
  bool agreementOk = true;     // stably delivered at one correct => at all
  bool noCreationOk = true;    // only broadcast messages ever appear
  bool noDuplicationOk = true; // no id twice in any observed d_i
  bool causalOrderOk = true;   // declared deps respected in every snapshot

  /// Earliest time from which every correct process's d_i only grows by
  /// suffix extension (0 if that held from the start).
  Time tauStability = 0;
  /// Earliest time from which all correct processes' d_i agree on the
  /// relative order of common messages (0 if from the start).
  Time tauTotalOrder = 0;
  /// max(tauStability, tauTotalOrder) — the run's observed ETOB τ̂.
  Time tau = 0;

  /// Strong TOB = all core properties + τ̂ == 0.
  bool strongTobOk() const {
    return coreOk() && tau == 0;
  }
  /// ETOB = core properties (τ is finite by construction in a finite run;
  /// benches compare τ̂ against the paper's τ_Ω + Δ_t + Δ_c bound).
  bool coreOk() const {
    return validityOk && agreementOk && noCreationOk && noDuplicationOk;
  }

  std::vector<std::string> errors;
};

/// Checks a run. Requires the trace to have been recorded with
/// keepDeliverySnapshots = true. Only correct processes are constrained
/// (the paper's properties all quantify over correct processes).
///
/// `requireValidity` can be disabled for runs that crash message origins
/// (Validity only applies to correct broadcasters anyway, but workloads
/// sometimes schedule inputs for processes after their crash time; those
/// inputs never happen and must not be counted).
BroadcastCheckReport checkBroadcastRun(const Trace& trace, const BroadcastLog& log,
                                       const FailurePattern& pattern);

}  // namespace wfd
