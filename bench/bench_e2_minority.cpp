// E2 — Availability without a correct majority (paper §1, §4, §7).
//
// Claim: ETOB + Omega implements eventual consistency in ANY environment;
// consensus-based strong TOB additionally needs Sigma, realized here by
// majority quorums — so once a majority crashes it stalls forever, while
// ETOB keeps delivering. This is the Sigma gap made measurable.
//
// Method: n = 5, three processes crash at t = 2000; every broadcast is
// scheduled AFTER the crash. Count messages stably delivered at the
// correct processes by the end of the run.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "checkers/workload.h"

namespace wfd::bench {
namespace {

struct Outcome {
  std::size_t broadcast = 0;
  std::size_t delivered = 0;  // min over correct processes
};

SimConfig e2Config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = 5;
  cfg.seed = seed;
  cfg.maxTime = 30000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  cfg.keepDeliverySnapshots = false;
  return cfg;
}

template <typename MakeCluster>
Outcome run(std::uint64_t seed, MakeCluster make) {
  auto cfg = e2Config(seed);
  auto fp = Environments::majorityCrash(5, 2000);  // 3 of 5 crash
  auto cluster = make(cfg, fp);
  Simulator& sim = cluster.sim();
  BroadcastWorkload w;
  w.start = 3000;  // after the majority is gone
  w.interval = 50;
  w.perProcess = 10;
  cluster.scheduleWorkload(w);
  const BroadcastLog& log = cluster.log();
  cluster.runToHorizon();
  Outcome out;
  out.broadcast = log.size();
  std::size_t minDelivered = SIZE_MAX;
  for (ProcessId p : fp.correctSet()) {
    const auto& d = sim.trace().currentDelivered(p);
    std::size_t count = 0;
    for (MsgId id : log.ids()) {
      if (std::find(d.begin(), d.end(), id) != d.end()) ++count;
    }
    minDelivered = std::min(minDelivered, count);
  }
  out.delivered = minDelivered == SIZE_MAX ? 0 : minDelivered;
  return out;
}

Outcome etobRun(std::uint64_t seed) {
  return run(seed, [](SimConfig cfg, FailurePattern fp) {
    return makeEtobCluster(cfg, std::move(fp), 2500,
                           OmegaPreStabilization::kSplitBrain);
  });
}

Outcome tobRun(std::uint64_t seed) {
  return run(seed, [](SimConfig cfg, FailurePattern fp) {
    return makeTobCluster(cfg, std::move(fp), 2500,
                          OmegaPreStabilization::kSplitBrain);
  });
}

void printTable() {
  std::printf("E2: deliveries after a MAJORITY crash (n=5, 3 crash; all\n"
              "broadcasts post-crash; expect ETOB ~100%%, TOB 0%%)\n\n");
  Table t({"protocol", "broadcast", "delivered", "availability"});
  Outcome e{}, s{};
  int runs = 0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto a = etobRun(seed);
    auto b = tobRun(seed);
    e.broadcast += a.broadcast;
    e.delivered += a.delivered;
    s.broadcast += b.broadcast;
    s.delivered += b.delivered;
    ++runs;
  }
  t.row({"ETOB (Omega)", std::to_string(e.broadcast / runs),
         std::to_string(e.delivered / runs),
         fmt(100.0 * e.delivered / std::max<std::size_t>(e.broadcast, 1)) + "%"});
  t.row({"TOB (Paxos)", std::to_string(s.broadcast / runs),
         std::to_string(s.delivered / runs),
         fmt(100.0 * s.delivered / std::max<std::size_t>(s.broadcast, 1)) + "%"});
  std::printf("\n");
}

void BM_EtobUnderMajorityCrash(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto out = etobRun(seed++);
    benchmark::DoNotOptimize(out);
    state.counters["delivered"] = static_cast<double>(out.delivered);
  }
}
BENCHMARK(BM_EtobUnderMajorityCrash)->Unit(benchmark::kMillisecond);

void BM_TobUnderMajorityCrash(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto out = tobRun(seed++);
    benchmark::DoNotOptimize(out);
    state.counters["delivered"] = static_cast<double>(out.delivered);
  }
}
BENCHMARK(BM_TobUnderMajorityCrash)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
