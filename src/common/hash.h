// Hash helpers for aggregate keys (failure-detector values, DAG vertices)
// and the portable FNV-1a constants shared by every stable digest in the
// repo (trace digests, plan fingerprints).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string_view>
#include <vector>

namespace wfd {

/// FNV-1a 64-bit parameters — single-sourced so the portable digests in
/// scenario/trace_digest.h and explore/fuzz_plan.cpp stay one algorithm.
inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;

/// FNV-1a over a byte string (canonical-JSON fingerprints).
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = kFnv64OffsetBasis;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnv64Prime;
  }
  return h;
}

/// FNV-1a over a sequence of 64-bit words, each folded byte-by-byte
/// (little-endian) — the same word mixing scenario/trace_digest.h uses,
/// exposed for callers that hash a handful of fixed words (the
/// consistent-hash ring's point and key positions in shard/hash_ring.h).
inline std::uint64_t fnv1a64Words(std::initializer_list<std::uint64_t> words) {
  std::uint64_t h = kFnv64OffsetBasis;
  for (std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xffu;
      h *= kFnv64Prime;
    }
  }
  return h;
}

/// One splitmix64 output step: platform-independent 64-bit mixing, used
/// for deterministic seed derivation (explore/fuzz_plan.cpp) and
/// detector noise (fd/detectors.cpp). One copy so the constants cannot
/// silently diverge.
inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combines a hash value into a running seed (boost::hash_combine recipe).
inline void hashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements.
template <typename It>
std::size_t hashRange(It first, It last) {
  std::size_t seed = 0;
  for (; first != last; ++first) {
    hashCombine(seed, std::hash<std::decay_t<decltype(*first)>>{}(*first));
  }
  return seed;
}

/// Hashes a vector of hashable elements.
template <typename T>
std::size_t hashVector(const std::vector<T>& v) {
  return hashRange(v.begin(), v.end());
}

}  // namespace wfd
