// Unit tests: the simulation substrate — failure patterns, payloads,
// trace bookkeeping, scheduler admissibility (fairness + eventual
// delivery), crashes and partition windows.
#include <gtest/gtest.h>

#include <memory>

#include "fd/detectors.h"
#include "helpers.h"
#include "sim/composite.h"
#include "sim/failure_pattern.h"
#include "sim/payload.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wfd {
namespace {

// --- FailurePattern ---------------------------------------------------------

TEST(FailurePatternTest, NoFailuresEverybodyCorrect) {
  auto fp = FailurePattern::noFailures(5);
  EXPECT_EQ(fp.correctSet().size(), 5u);
  EXPECT_TRUE(fp.hasCorrectMajority());
  EXPECT_EQ(fp.lowestCorrect(), 0u);
  EXPECT_EQ(fp.lastCrashTime(), 0u);
}

TEST(FailurePatternTest, CrashMonotone) {
  FailurePattern fp(3);
  fp.setCrash(1, 100);
  EXPECT_FALSE(fp.crashed(1, 99));
  EXPECT_TRUE(fp.crashed(1, 100));
  EXPECT_TRUE(fp.crashed(1, 1000));  // F(t) ⊆ F(t+1)
  EXPECT_TRUE(fp.faulty(1));
  EXPECT_FALSE(fp.correct(1));
}

TEST(FailurePatternTest, AliveAtReflectsCrashTimes) {
  auto fp = FailurePattern::crashesAt(4, {{3, 10}, {2, 20}});
  EXPECT_EQ(fp.aliveAt(5).size(), 4u);
  EXPECT_EQ(fp.aliveAt(15).size(), 3u);
  EXPECT_EQ(fp.aliveAt(25).size(), 2u);
  EXPECT_EQ(fp.correctSet(), (std::vector<ProcessId>{0, 1}));
}

TEST(FailurePatternTest, MinorityCrashKeepsMajority) {
  auto fp = Environments::minorityCrash(5, 10);
  EXPECT_TRUE(fp.hasCorrectMajority());
  EXPECT_EQ(fp.correctSet().size(), 3u);
}

TEST(FailurePatternTest, MajorityCrashLosesMajority) {
  auto fp = Environments::majorityCrash(5, 10);
  EXPECT_FALSE(fp.hasCorrectMajority());
  EXPECT_EQ(fp.correctSet().size(), 2u);
  EXPECT_EQ(fp.lowestCorrect(), 0u);
}

TEST(FailurePatternTest, StaggeredCrashesHighIdsFirst) {
  auto fp = Environments::staggeredCrashes(5, 2, 100, 50);
  EXPECT_EQ(fp.crashTime(4), 100u);
  EXPECT_EQ(fp.crashTime(3), 150u);
  EXPECT_EQ(fp.crashTime(0), FailurePattern::kNever);
  EXPECT_EQ(fp.lastCrashTime(), 150u);
}

TEST(FailurePatternTest, RejectsTooFewProcesses) {
  EXPECT_THROW(FailurePattern(1), InvariantError);
}

// --- Payload ----------------------------------------------------------------

struct Ping {
  int n = 0;
};
struct Pong {
  int n = 0;
};

TEST(PayloadTest, TypedRoundTrip) {
  Payload p = Payload::of(Ping{7});
  ASSERT_NE(p.as<Ping>(), nullptr);
  EXPECT_EQ(p.as<Ping>()->n, 7);
  EXPECT_EQ(p.as<Pong>(), nullptr);
  EXPECT_TRUE(p.holds<Ping>());
  EXPECT_FALSE(p.holds<Pong>());
}

TEST(PayloadTest, EmptyPayload) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.as<Ping>(), nullptr);
}

TEST(PayloadTest, CopiesShareImmutableBox) {
  Payload a = Payload::of(Ping{1});
  Payload b = a;
  EXPECT_EQ(a.as<Ping>(), b.as<Ping>());  // same underlying object
}

TEST(TaggedTest, UnwrapChannelMatchesOnlyItsChannel) {
  Payload inner = Payload::of(Ping{5});
  Payload wrapped = Payload::of(Tagged{3, inner});
  EXPECT_EQ(unwrapChannel(wrapped, 4), nullptr);
  const Payload* got = unwrapChannel(wrapped, 3);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->as<Ping>()->n, 5);
  EXPECT_EQ(unwrapChannel(inner, 3), nullptr);  // not a Tagged payload
}

// --- Trace ------------------------------------------------------------------

TEST(TraceTest, RecordsOutputsPerProcess) {
  Trace t(2);
  t.recordOutput(0, 5, Payload::of(Ping{1}));
  t.recordOutput(0, 9, Payload::of(Ping{2}));
  ASSERT_EQ(t.outputs(0).size(), 2u);
  EXPECT_EQ(t.outputs(0)[1].time, 9u);
  EXPECT_TRUE(t.outputs(1).empty());
}

TEST(TraceTest, DeliverySnapshotsDedupUnchanged) {
  Trace t(2);
  t.recordDelivered(0, 1, {10});
  t.recordDelivered(0, 2, {10});  // unchanged — dropped
  t.recordDelivered(0, 3, {10, 11});
  EXPECT_EQ(t.deliverySnapshots(0).size(), 2u);
  EXPECT_EQ(t.currentDelivered(0), (std::vector<MsgId>{10, 11}));
}

TEST(TraceTest, PrefixViolationDetected) {
  Trace t(2);
  t.recordDelivered(0, 1, {10, 11});
  EXPECT_EQ(t.prefixViolations(0), 0u);
  t.recordDelivered(0, 2, {10, 11, 12});  // extension: fine
  EXPECT_EQ(t.prefixViolations(0), 0u);
  t.recordDelivered(0, 3, {11, 10, 12});  // reorder: violation
  EXPECT_EQ(t.prefixViolations(0), 1u);
  EXPECT_EQ(t.lastPrefixViolation(0), 3u);
}

TEST(TraceTest, RemovalIsPrefixViolation) {
  Trace t(2);
  t.recordDelivered(0, 1, {10, 11});
  t.recordDelivered(0, 2, {10});
  EXPECT_EQ(t.prefixViolations(0), 1u);
}

TEST(TraceTest, DeliveryStatsTrackStability) {
  Trace t(2);
  t.recordDelivered(0, 1, {10});
  t.recordDelivered(0, 5, {10, 11});
  auto s10 = t.deliveryStats(0, 10);
  ASSERT_TRUE(s10.has_value());
  EXPECT_EQ(s10->firstSeen, 1u);
  EXPECT_EQ(s10->lastChange, 1u);  // appending 11 did not move 10
  EXPECT_TRUE(s10->presentNow);
  // Now 10 moves (reorder) — lastChange updates.
  t.recordDelivered(0, 9, {11, 10});
  s10 = t.deliveryStats(0, 10);
  EXPECT_EQ(s10->lastChange, 9u);
  EXPECT_FALSE(t.deliveryStats(0, 999).has_value());
}

TEST(TraceTest, StatsTrackRemovalAndReappearance) {
  Trace t(2);
  t.recordDelivered(0, 1, {10});
  t.recordDelivered(0, 2, {});
  auto s = t.deliveryStats(0, 10);
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(s->presentNow);
  EXPECT_EQ(s->lastChange, 2u);
  t.recordDelivered(0, 7, {10});
  s = t.deliveryStats(0, 10);
  EXPECT_TRUE(s->presentNow);
  EXPECT_EQ(s->lastChange, 7u);
}

// --- Simulator --------------------------------------------------------------

/// Echo automaton: replies pong(n+1) to ping(n); counts timeouts.
class EchoAutomaton final : public CloneableAutomaton<EchoAutomaton> {
 public:
  void onInput(const StepContext&, const Payload& input, Effects& fx) override {
    if (const auto* ping = input.as<Ping>()) {
      fx.broadcast(Payload::of(*ping));
    }
  }
  void onMessage(const StepContext&, ProcessId, const Payload& msg,
                 Effects& fx) override {
    if (const auto* ping = msg.as<Ping>()) {
      fx.output(Payload::of(Pong{ping->n + 1}));
    }
  }
  void onTimeout(const StepContext&, Effects& fx) override {
    fx.output(Payload::of(Ping{-1}));  // marks a λ-step
  }
};

SimConfig smallConfig(std::size_t n = 3) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.maxTime = 2000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 5;
  cfg.maxDelay = 15;
  return cfg;
}

TEST(SimulatorTest, BroadcastReachesEveryProcessIncludingSelf) {
  auto cfg = smallConfig();
  auto fp = FailurePattern::noFailures(3);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 3; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  sim.scheduleInput(0, 100, Payload::of(Ping{1}));
  sim.run();
  for (ProcessId p = 0; p < 3; ++p) {
    int pongs = 0;
    for (const auto& ev : sim.trace().outputs(p)) {
      if (const auto* pong = ev.value.as<Pong>()) {
        EXPECT_EQ(pong->n, 2);
        ++pongs;
      }
    }
    EXPECT_EQ(pongs, 1) << "process " << p;
  }
}

TEST(SimulatorTest, EveryCorrectProcessTakesManySteps) {
  auto cfg = smallConfig();
  auto fp = FailurePattern::noFailures(3);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 3; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  sim.run();
  for (ProcessId p = 0; p < 3; ++p) {
    // maxTime / timeoutPeriod λ-steps expected, up to staggering.
    EXPECT_GT(sim.trace().stepsTaken(p), 150u);
  }
}

TEST(SimulatorTest, CrashedProcessStopsSteppingAndReceiving) {
  auto cfg = smallConfig();
  auto fp = FailurePattern::crashesAt(3, {{2, 500}});
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 3; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  sim.scheduleInput(0, 1000, Payload::of(Ping{5}));  // after the crash
  sim.run();
  // p2 must have no outputs after t=500.
  for (const auto& ev : sim.trace().outputs(2)) {
    EXPECT_LT(ev.time, 500u);
  }
  // Correct processes still got the post-crash ping.
  bool sawPong = false;
  for (const auto& ev : sim.trace().outputs(1)) {
    if (ev.value.holds<Pong>()) sawPong = true;
  }
  EXPECT_TRUE(sawPong);
}

TEST(SimulatorTest, MessageDelayWithinBounds) {
  auto cfg = smallConfig(2);
  cfg.minDelay = 20;
  cfg.maxDelay = 30;
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 2; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  sim.scheduleInput(0, 100, Payload::of(Ping{1}));
  // First pong can only appear within [100+20, 100+30].
  sim.runUntil([](const Simulator& s) {
    for (const auto& ev : s.trace().outputs(1)) {
      if (ev.value.holds<Pong>()) return true;
    }
    return false;
  }, 1);
  for (const auto& ev : sim.trace().outputs(1)) {
    if (ev.value.holds<Pong>()) {
      EXPECT_GE(ev.time, 120u);
      EXPECT_LE(ev.time, 130u);
    }
  }
}

TEST(SimulatorTest, FixedDelayIsExactlyMaxDelay) {
  auto cfg = smallConfig(2);
  cfg.minDelay = 20;
  cfg.maxDelay = 25;
  cfg.fixedDelay = true;
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 2; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  sim.scheduleInput(0, 100, Payload::of(Ping{1}));
  sim.run();
  for (const auto& ev : sim.trace().outputs(1)) {
    if (ev.value.holds<Pong>()) {
      EXPECT_EQ(ev.time, 125u);
    }
  }
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  auto runOnce = [](std::uint64_t seed) {
    auto cfg = smallConfig();
    cfg.seed = seed;
    auto fp = FailurePattern::noFailures(3);
    Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
    for (ProcessId p = 0; p < 3; ++p) {
      sim.addProcess(p, std::make_unique<EchoAutomaton>());
    }
    sim.scheduleInput(1, 57, Payload::of(Ping{3}));
    sim.run();
    return sim.trace().messagesDelivered();
  };
  EXPECT_EQ(runOnce(42), runOnce(42));
}

TEST(SimulatorTest, DisruptionDefersButDelivers) {
  auto cfg = smallConfig(2);
  cfg.minDelay = 5;
  cfg.maxDelay = 10;
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 2; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  LinkDisruption d;
  d.start = 100;
  d.end = 800;
  d.affects = [](ProcessId from, ProcessId) { return from == 0; };
  sim.addDisruption(d);
  sim.scheduleInput(0, 150, Payload::of(Ping{1}));
  sim.run();
  bool delivered = false;
  for (const auto& ev : sim.trace().outputs(1)) {
    if (ev.value.holds<Pong>()) {
      delivered = true;
      EXPECT_GE(ev.time, 800u);  // deferred past the window
    }
  }
  EXPECT_TRUE(delivered);  // reliable links: delivery still happens
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  auto cfg = smallConfig(2);
  cfg.maxTime = 100000;
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 2; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  const bool hit = sim.runUntil(
      [](const Simulator& s) { return s.now() > 500; }, 8);
  EXPECT_TRUE(hit);
  EXPECT_LT(sim.now(), 2000u);
}

TEST(SimulatorTest, RunUntilCheckEveryOneStopsAtEarliestSatisfyingEvent) {
  // Contract regression (see runUntil's header comment): with
  // checkEvery == 1 the predicate is evaluated after EVERY processed
  // event, so now() is pinned to the first event boundary at which the
  // predicate holds — it must not overshoot. This run schedules no
  // inputs and the echo automata send no messages from λ-steps, so the
  // event sequence is exactly the staggered timeouts at 1+p, 11+p,
  // 21+p, ...: the first event at time >= 500 is process 0's λ-step at
  // 501.
  auto cfg = smallConfig(2);
  cfg.maxTime = 100000;
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  for (ProcessId p = 0; p < 2; ++p) sim.addProcess(p, std::make_unique<EchoAutomaton>());
  const bool hit = sim.runUntil(
      [](const Simulator& s) { return s.now() >= 500; }, 1);
  EXPECT_TRUE(hit);
  EXPECT_EQ(sim.now(), 501u);
}

TEST(SimulatorTest, RunUntilCoarseCheckEveryMayOvershoot) {
  // The flip side of the contract: with a large checkEvery the run may
  // process up to checkEvery - 1 further events before noticing, so
  // now() can legitimately overshoot the earliest satisfying time. Both
  // runs see identical schedules (same seed); the coarse one must never
  // stop EARLIER than the precise one.
  auto runWith = [](std::uint64_t checkEvery) {
    SimConfig cfg;
    cfg.processCount = 2;
    cfg.maxTime = 100000;
    cfg.timeoutPeriod = 10;
    cfg.minDelay = 5;
    cfg.maxDelay = 15;
    auto fp = FailurePattern::noFailures(2);
    Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
    for (ProcessId p = 0; p < 2; ++p) {
      sim.addProcess(p, std::make_unique<EchoAutomaton>());
    }
    sim.runUntil([](const Simulator& s) { return s.now() >= 777; }, checkEvery);
    return sim.now();
  };
  EXPECT_EQ(runWith(1), 781u);  // first event at or past 777: λ-step at 781
  EXPECT_GE(runWith(64), runWith(1));
}

TEST(SimulatorTest, DuplicateProcessRejected) {
  auto cfg = smallConfig(2);
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  sim.addProcess(0, std::make_unique<EchoAutomaton>());
  EXPECT_THROW(sim.addProcess(0, std::make_unique<EchoAutomaton>()),
               InvariantError);
}

TEST(SimulatorTest, MissingAutomatonRejectedAtRun) {
  auto cfg = smallConfig(2);
  auto fp = FailurePattern::noFailures(2);
  Simulator sim(cfg, fp, std::make_shared<PerfectFd>(fp));
  sim.addProcess(0, std::make_unique<EchoAutomaton>());
  EXPECT_THROW(sim.run(), InvariantError);
}

}  // namespace
}  // namespace wfd
