// Small string helpers for diagnostics and bench tables.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace wfd {

/// Joins elements with a separator using operator<<.
template <typename Range>
std::string join(const Range& range, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

}  // namespace wfd
