// Multi-shard replicated KV service: a consistent-hash ring over
// INDEPENDENT eTOB replica groups.
//
// The paper's availability result is per replica group: eventual
// consistency needs only Omega, so one group stays live through
// failures that stall a linearizable store. This layer is how that
// building block becomes a service an operator would recognize: keys
// hash onto a ring of S shards, each shard is its own wfd::Cluster
// running the (commit-)eTOB stack wrapped in a KvStore replica, and a
// ShardedService owns the S clusters and steps them under ONE logical
// clock. The shards share nothing — no messages, no detector, no
// scheduler state — so a partitioned or crashed shard cannot stall the
// others by construction (the cross-shard-independence tests pin this
// with byte-identical per-shard digests).
//
// Rebalancing: the service tracks injected crashes per shard; when a
// shard's correct replicas drop below its majority quorum, the §7
// commit path can no longer advance there, so the shard is removed from
// the ring (spec.rebalanceOnQuorumLoss) and its keys re-home to the
// surviving shards — E[migration] = 1/S of the key space, exactly the
// dead shard's share, while every other key keeps its owner. Routing is
// client-side (shard/shard_router.h); the ring is a pure function of
// (seed, live shard set), so every router sharing the service agrees.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/cluster.h"
#include "shard/hash_ring.h"

namespace wfd {

/// Declarative description of a sharded deployment. Like ClusterSpec,
/// every field is data or a pure factory: (spec, seed) fully determines
/// the service (per-shard seeds are derived from the service seed by
/// splitmix64, the ring from the seed and the live shard set).
struct ShardedSpec {
  /// Number of independent replica groups.
  std::size_t shards = 4;
  /// Processes per shard cluster (majority quorum = half + 1).
  std::size_t replicasPerShard = 3;
  /// Per-shard ordering stack; must be kvReplica-capable (eTOB,
  /// commit-eTOB, TOB). kCommitEtob is the service default: its §7
  /// committed prefixes are what the router serves reads from.
  AlgoStack stack = AlgoStack::kCommitEtob;
  /// Per-shard scheduler parameters (processCount is overridden with
  /// replicasPerShard).
  SimConfig config;
  Time tauOmega = 0;
  OmegaPreStabilization omegaMode = OmegaPreStabilization::kStable;
  /// Ring points per shard (see ConsistentHashRing::Config).
  std::size_t virtualNodes = 64;
  /// Optional per-shard network model factory; nullptr = uniform delay
  /// from the config on every shard.
  std::function<std::shared_ptr<const NetworkModel>(std::size_t shard,
                                                    const SimConfig&)>
      network;
  /// Remove a shard from the ring when its correct replicas drop below
  /// majority. Off = keys keep routing to the dead shard (the mutation
  /// tests use this to prove the rebalance path matters).
  bool rebalanceOnQuorumLoss = true;
};

/// Per-shard service counters, read from the shard's current read
/// replica (lowest-id replica not crashed).
struct ShardStats {
  std::size_t keys = 0;
  std::uint64_t applied = 0;
  std::uint64_t rebuilds = 0;
  /// Length of the read replica's §7 committed prefix (0 on stacks
  /// without commit indications).
  std::uint64_t committedLen = 0;
  std::size_t correctReplicas = 0;
  bool inRing = true;
};

/// Aggregated service counters: per-shard rows plus totals. This is the
/// service-level answer to Client::kvStats, which is replica-group-local
/// and silently undercounts once keys hash off-process.
struct ShardedStats {
  std::vector<ShardStats> perShard;
  std::size_t keys = 0;
  std::uint64_t applied = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t committedLen = 0;
  std::size_t shardsInRing = 0;
};

class ShardedService {
 public:
  ShardedService(ShardedSpec spec, std::uint64_t seed);

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  // --- Introspection --------------------------------------------------------

  const ShardedSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t shardCount() const { return shards_.size(); }
  /// The shard's underlying cluster (fault injection, checkers, tests).
  Cluster& shard(std::size_t s);
  const Cluster& shard(std::size_t s) const;
  const ConsistentHashRing& ring() const { return ring_; }
  /// The service's logical clock: every shard has been stepped to here.
  Time now() const { return now_; }

  /// Shard currently owning `key` (ring lookup over live shards).
  std::size_t ownerOf(std::uint64_t key) const;
  /// Lowest-id replica of `s` with no injected crash — where routers
  /// read and write.
  ProcessId readReplicaOf(std::size_t s) const;
  /// True while >= majority of the shard's replicas have no injected
  /// crash (the §7 proviso's quorum precondition).
  bool hasQuorum(std::size_t s) const;
  std::size_t majorityOf(std::size_t s) const;
  /// Replicas of `s` with no injected crash.
  std::size_t correctReplicasOf(std::size_t s) const;
  /// Ring removals performed so far (quorum-loss rebalances).
  std::size_t rebalances() const { return rebalances_; }

  ShardedStats stats() const;

  // --- One logical clock over S simulators ----------------------------------

  /// Steps EVERY shard cluster to time t (monotone). Returns true while
  /// at least one shard can still make progress.
  bool advanceTo(Time t);
  bool advanceBy(Time d);
  /// Runs every shard to quiescence (Cluster::runUntilQuiescent), then
  /// re-aligns all shards on the latest stop time and re-probes until
  /// the common clock is stable. Returns the aligned stop time.
  Time runUntilQuiescent(Time window = 0);

  // --- Fault injection and rebalancing --------------------------------------

  /// Crashes `replica` of shard `s` at time t (>= now). Accounted
  /// against the shard's quorum immediately — routing is conservative
  /// about a crash already scheduled — and, when the quorum is lost and
  /// spec.rebalanceOnQuorumLoss holds, removes the shard from the ring
  /// (never the last one).
  void crashReplica(std::size_t s, ProcessId replica, Time t);

  /// Partitions `replica` of shard `s` from its own group during
  /// [start, end) — shard-local by construction; no other shard can
  /// notice. Does NOT touch the ring: partitions heal, crashes do not.
  void isolateReplica(std::size_t s, ProcessId replica, Time start, Time end);

 private:
  ShardedSpec spec_;
  std::uint64_t seed_ = 0;
  Time now_ = 0;
  std::vector<std::unique_ptr<Cluster>> shards_;
  /// crashed_[s][p]: an injected crash exists for replica p of shard s.
  std::vector<std::vector<bool>> crashed_;
  ConsistentHashRing ring_;
  std::size_t rebalances_ = 0;
};

/// Per-shard seed derivation — exposed so tests can pin that shard
/// schedules are independent draws from the service seed.
std::uint64_t shardSeed(std::uint64_t serviceSeed, std::size_t shard);

}  // namespace wfd
