// Declarative scenario subsystem: one Scenario value names everything a
// run needs — process count, failure pattern, network model, detector,
// protocol stack, workload and checker set — so that tests, benches and
// the wfd_scenarios CLI all execute the same catalog instead of
// hand-rolling simulator setup.
//
// Since the api facade landed, a Scenario is a named, checker-annotated
// ClusterSpec: instantiateScenario/runScenario are thin adapters that
// lower the entry through clusterSpec() and drive a wfd::Cluster (the
// golden digest-equivalence suite in tests/test_api.cpp pins that the
// lowering reproduces the pre-facade instantiation bit-for-bit).
//
// A scenario is deterministic modulo its seed: runScenario(s, seed)
// always produces the same trace digest for the same (scenario, seed)
// pair, which is what the seed-determinism regression tests pin.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "checkers/broadcast_log.h"
#include "checkers/workload.h"
#include "fd/detectors.h"
#include "sim/failure_pattern.h"
#include "sim/network_model.h"
#include "sim/simulator.h"

namespace wfd {

/// Which trace verifiers run after the simulation, and which extra
/// outcome clauses the scenario asserts.
struct CheckerSet {
  /// checkBroadcastRun core properties (validity, agreement, no-creation,
  /// no-duplication, causal order).
  bool broadcast = false;
  /// Additionally require tau-hat == 0 (strong TOB; paper property (2)).
  bool requireStrongTob = false;
  /// broadcastConverged at the end of the run: every correct process's
  /// d_i holds every correct-origin message and all sequences agree.
  bool convergence = false;
  /// checkCommitSafety: no committed prefix is ever revoked.
  bool commit = false;
  /// Additionally require at least one commit indication (stable-majority
  /// scenarios must make progress, not just stay vacuously safe).
  bool requireCommitProgress = false;
  /// checkEcRun: EC integrity/validity always, termination up to the
  /// scenario's ecInstances, eventual agreement witnessed.
  bool ec = false;
  /// All correct gossip replicas hold identical LWW tables at the end.
  bool gossipConvergence = false;
};

/// A named, declarative run description. Every field is data (or a pure
/// factory), so a (scenario, seed) pair fully determines the run.
struct Scenario {
  std::string name;
  std::string description;

  /// Base scheduler parameters. The per-run seed overrides config.seed.
  SimConfig config;

  /// Failure pattern factory (receives config.processCount).
  std::function<FailurePattern(std::size_t n)> pattern;

  /// Network model factory; nullptr = uniform delay from the config
  /// (the legacy scheduling, bit-for-bit).
  std::function<std::shared_ptr<const NetworkModel>(const SimConfig&)> network;

  /// Failure detector factory; nullptr = OmegaFd(pattern, tauOmega,
  /// omegaMode).
  std::function<std::shared_ptr<const FailureDetector>(const FailurePattern&)>
      detector;
  Time tauOmega = 0;
  OmegaPreStabilization omegaMode = OmegaPreStabilization::kSplitBrain;

  AlgoStack stack = AlgoStack::kEtob;

  /// Broadcast workload (ignored by kOmegaEc, which drives proposals).
  BroadcastWorkload workload;
  /// kOmegaEc: number of EC instances each process proposes.
  Instance ecInstances = 0;

  CheckerSet checks;
};

/// Lowers the scenario to the facade's deployment description (every
/// field except name/description/checks, which are evaluation-side).
/// `overrides` replaces the base SimConfig (keeping pattern/model/stack).
ClusterSpec clusterSpec(const Scenario& s);
ClusterSpec clusterSpec(const Scenario& s, const SimConfig& overrides);

/// A scenario instantiated for one seed, ready to run (or to be driven
/// further by a bench that sweeps a knob on top of the catalog entry).
/// The failure pattern is reachable via sim->failurePattern().
struct ScenarioInstance {
  /// The facade cluster driving this run (owns the simulator).
  std::unique_ptr<Cluster> cluster;
  /// Borrowed from *cluster — kept so pre-facade call sites
  /// (inst.sim->run(), *inst.sim) read unchanged.
  Simulator* sim = nullptr;
  /// Input history of the scheduled broadcast workload; empty for
  /// kOmegaEc (the driver records proposals in the trace instead).
  /// Snapshot taken at instantiation — later Client submissions land in
  /// cluster->log(), not here.
  BroadcastLog log;

  explicit ScenarioInstance(std::unique_ptr<Cluster> c)
      : cluster(std::move(c)), sim(&cluster->sim()), log(cluster->log()) {}
};

/// Builds the cluster + workload for (scenario, seed). Thin adapter over
/// Cluster(clusterSpec(s), seed); the per-run seed is applied on top in
/// both forms.
ScenarioInstance instantiateScenario(const Scenario& s, std::uint64_t seed);
ScenarioInstance instantiateScenario(const Scenario& s, std::uint64_t seed,
                                     const SimConfig& overrides);

/// Outcome of one (scenario, seed) run: checker verdicts + metrics.
struct ScenarioRunResult {
  std::string scenario;
  std::uint64_t seed = 0;
  bool pass = false;
  /// One entry per failed clause, e.g. "broadcast: agreement".
  std::vector<std::string> failures;

  std::string stack;
  std::string network;
  Time endTime = 0;
  std::uint64_t eventsProcessed = 0;
  std::uint64_t messagesSent = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t duplicatesSuppressed = 0;
  /// Broadcast checker's observed convergence witness (0 otherwise).
  Time tauHat = 0;
  /// Portable digest of the full trace (seed-determinism tests pin it).
  std::uint64_t digest = 0;
};

/// Evaluates the scenario's checker set over a cluster that has already
/// been driven (to its horizon, or incrementally — the checkers only see
/// the trace). The explorer drives Clusters itself and calls this.
ScenarioRunResult evaluateScenarioRun(const Scenario& s, std::uint64_t seed,
                                      const Cluster& cluster);

/// Runs the scenario to its horizon and evaluates its checker set.
ScenarioRunResult runScenario(const Scenario& s, std::uint64_t seed);

/// Serializes a result as one JSON object (single line, stable key order,
/// strings escaped by the common/json.h writer).
std::string toJsonLine(const ScenarioRunResult& r);

/// The named catalog. Entries are registered in catalog.cpp; names are
/// unique, listed in registration order.
const std::vector<Scenario>& scenarioCatalog();

/// Catalog lookup; nullptr when the name is unknown.
const Scenario* findScenario(const std::string& name);

/// True for the big-n (n = 64..256) catalog family. The exhaustive
/// per-entry sweeps (tests/test_scenarios.cpp, tests/test_api.cpp) skip
/// these — each sweep entry runs ~10x per build and again under
/// ASan/TSan — and tests/test_large_cluster.cpp covers them once per
/// build instead. Keep the two sides in sync through this predicate.
inline bool isLargeClusterScenario(const Scenario& s) {
  return s.name.rfind("large-cluster-", 0) == 0;
}

}  // namespace wfd
