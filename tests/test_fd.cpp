// Unit tests: failure detector oracles — each oracle's histories must
// satisfy its abstraction's specification by construction.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/ensure.h"
#include "fd/detectors.h"
#include "sim/failure_pattern.h"

namespace wfd {
namespace {

// --- Omega ------------------------------------------------------------------

TEST(OmegaTest, StabilizesOnSameCorrectLeaderEverywhere) {
  auto fp = FailurePattern::crashesAt(4, {{0, 50}});
  OmegaFd omega(fp, 300, OmegaPreStabilization::kSplitBrain);
  // Eventual leader defaults to lowest correct = p1.
  EXPECT_EQ(omega.eventualLeader(), 1u);
  for (Time t = 300; t < 600; t += 7) {
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(omega.valueAt(p, t).leader, 1u);
    }
  }
}

TEST(OmegaTest, SplitBrainDisagreesBeforeStabilization) {
  auto fp = FailurePattern::noFailures(4);
  OmegaFd omega(fp, 10000, OmegaPreStabilization::kSplitBrain, 97);
  bool disagreed = false;
  for (Time t = 0; t < 500 && !disagreed; t += 13) {
    std::set<ProcessId> leaders;
    for (ProcessId p = 0; p < 4; ++p) leaders.insert(omega.valueAt(p, t).leader);
    disagreed = leaders.size() > 1;
  }
  EXPECT_TRUE(disagreed);
}

TEST(OmegaTest, RotatingAgreesButChurns) {
  auto fp = FailurePattern::noFailures(3);
  OmegaFd omega(fp, 10000, OmegaPreStabilization::kRotating, 50);
  std::set<ProcessId> leadersOverTime;
  for (Time t = 0; t < 400; t += 10) {
    std::set<ProcessId> now;
    for (ProcessId p = 0; p < 3; ++p) now.insert(omega.valueAt(p, t).leader);
    EXPECT_EQ(now.size(), 1u) << "rotating mode must agree at each instant";
    leadersOverTime.insert(*now.begin());
  }
  EXPECT_GT(leadersOverTime.size(), 1u);
}

TEST(OmegaTest, StableModeConstantFromZero) {
  auto fp = FailurePattern::noFailures(3);
  OmegaFd omega(fp, 0, OmegaPreStabilization::kStable);
  for (Time t = 0; t < 100; ++t) {
    for (ProcessId p = 0; p < 3; ++p) {
      EXPECT_EQ(omega.valueAt(p, t).leader, 0u);
    }
  }
}

TEST(OmegaTest, ExplicitLeaderRespected) {
  auto fp = FailurePattern::noFailures(3);
  OmegaFd omega(fp, 0, OmegaPreStabilization::kStable, 97, 2);
  EXPECT_EQ(omega.valueAt(1, 5).leader, 2u);
}

TEST(OmegaTest, FaultyEventualLeaderRejected) {
  auto fp = FailurePattern::crashesAt(3, {{2, 10}});
  EXPECT_THROW(OmegaFd(fp, 0, OmegaPreStabilization::kStable, 97, 2),
               InvariantError);
}

// --- Sigma ------------------------------------------------------------------

TEST(SigmaTest, QuorumsAlwaysIntersect) {
  auto fp = FailurePattern::crashesAt(5, {{4, 100}, {3, 200}});
  SigmaFd sigma(fp, 400);
  // Any two quorums output at any processes/times intersect.
  std::vector<std::vector<ProcessId>> quorums;
  for (Time t : {0u, 50u, 150u, 399u, 400u, 1000u}) {
    for (ProcessId p = 0; p < 5; ++p) quorums.push_back(sigma.valueAt(p, t).quorum);
  }
  for (const auto& a : quorums) {
    for (const auto& b : quorums) {
      bool intersect = false;
      for (ProcessId x : a) {
        for (ProcessId y : b) intersect |= x == y;
      }
      EXPECT_TRUE(intersect);
    }
  }
}

TEST(SigmaTest, EventuallyOnlyCorrect) {
  auto fp = FailurePattern::crashesAt(5, {{4, 100}});
  SigmaFd sigma(fp, 400);
  for (ProcessId p = 0; p < 5; ++p) {
    const auto q = sigma.valueAt(p, 500).quorum;
    EXPECT_EQ(q, fp.correctSet());
  }
}

// --- Perfect / eventually perfect -------------------------------------------

TEST(PerfectTest, StrongAccuracyAndCompleteness) {
  auto fp = FailurePattern::crashesAt(3, {{2, 100}});
  PerfectFd p(fp, 10);
  EXPECT_TRUE(p.valueAt(0, 50).suspects.empty());      // nobody crashed
  EXPECT_TRUE(p.valueAt(0, 105).suspects.empty());     // lag not elapsed
  EXPECT_EQ(p.valueAt(0, 110).suspects, (std::vector<ProcessId>{2}));
}

TEST(EventuallyPerfectTest, ExactAfterStabilization) {
  auto fp = FailurePattern::crashesAt(3, {{2, 100}});
  EventuallyPerfectFd fd(fp, 500);
  for (Time t = 500; t < 700; t += 11) {
    for (ProcessId p = 0; p < 3; ++p) {
      EXPECT_EQ(fd.valueAt(p, t).suspects, (std::vector<ProcessId>{2}));
    }
  }
}

TEST(EventuallyPerfectTest, MakesFalseSuspicionsBefore) {
  auto fp = FailurePattern::noFailures(4);
  EventuallyPerfectFd fd(fp, 100000, 7);
  bool falseSuspicion = false;
  for (Time t = 0; t < 4000 && !falseSuspicion; t += 17) {
    for (ProcessId p = 0; p < 4; ++p) {
      falseSuspicion |= !fd.valueAt(p, t).suspects.empty();
    }
  }
  EXPECT_TRUE(falseSuspicion);
}

TEST(EventuallyPerfectTest, AlwaysSuspectsActuallyCrashed) {
  auto fp = FailurePattern::crashesAt(3, {{1, 10}});
  EventuallyPerfectFd fd(fp, 100000);
  for (Time t = 10; t < 300; t += 13) {
    const auto s = fd.valueAt(0, t).suspects;
    EXPECT_TRUE(std::binary_search(s.begin(), s.end(), ProcessId{1}));
  }
}

// --- Composites / derived ----------------------------------------------------

TEST(OmegaSigmaTest, CombinesBothComponents) {
  auto fp = FailurePattern::noFailures(3);
  auto omega = std::make_shared<OmegaFd>(fp, 0, OmegaPreStabilization::kStable);
  auto sigma = std::make_shared<SigmaFd>(fp, 0);
  OmegaSigmaFd both(omega, sigma);
  const FdValue v = both.valueAt(1, 10);
  EXPECT_EQ(v.leader, 0u);
  EXPECT_EQ(v.quorum, fp.correctSet());
}

TEST(ScriptedTest, ReturnsScriptedValues) {
  ScriptedFd fd(
      [](ProcessId p, Time t) {
        FdValue v;
        v.leader = (p + t) % 2;
        return v;
      },
      "test");
  EXPECT_EQ(fd.valueAt(0, 0).leader, 0u);
  EXPECT_EQ(fd.valueAt(1, 0).leader, 1u);
  EXPECT_EQ(fd.name(), "test");
}

TEST(OmegaFromEventuallyPerfectTest, EventuallyAgreesOnLowestAlive) {
  auto fp = FailurePattern::crashesAt(3, {{0, 50}});
  auto inner = std::make_shared<EventuallyPerfectFd>(fp, 200);
  OmegaFromEventuallyPerfect omega(inner, 3);
  for (Time t = 200; t < 400; t += 9) {
    for (ProcessId p = 0; p < 3; ++p) {
      EXPECT_EQ(omega.valueAt(p, t).leader, 1u);  // lowest non-suspected
    }
  }
}

// Property sweep: every Omega history satisfies the Omega specification
// (eventually the same correct leader at all correct processes, forever)
// across modes and stabilization times.
class OmegaSpecTest
    : public ::testing::TestWithParam<std::tuple<int, Time>> {};

TEST_P(OmegaSpecTest, HistorySatisfiesOmegaSpec) {
  const auto [modeInt, tau] = GetParam();
  const auto mode = static_cast<OmegaPreStabilization>(modeInt);
  auto fp = FailurePattern::crashesAt(4, {{3, 40}});
  OmegaFd omega(fp, tau, mode);
  const ProcessId leader = omega.eventualLeader();
  EXPECT_TRUE(fp.correct(leader));
  for (Time t = tau; t < tau + 500; t += 23) {
    for (ProcessId p : fp.correctSet()) {
      EXPECT_EQ(omega.valueAt(p, t).leader, leader);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAndTaus, OmegaSpecTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<Time>(0, 100, 1000, 50000)));

}  // namespace
}  // namespace wfd
