#include "api/cluster.h"

#include <algorithm>
#include <utility>

#include "common/ensure.h"
#include "common/hash.h"
#include "ec/ec_driver.h"
#include "ec/ec_types.h"
#include "ec/omega_ec.h"
#include "etob/commit_etob.h"
#include "etob/etob_automaton.h"
#include "rsm/gossip_lww.h"
#include "rsm/replica.h"
#include "rsm/state_machines.h"
#include "tob/tob_via_consensus.h"

namespace wfd {

const char* algoStackName(AlgoStack stack) {
  switch (stack) {
    case AlgoStack::kEtob:
      return "etob";
    case AlgoStack::kCommitEtob:
      return "commit-etob";
    case AlgoStack::kTobViaConsensus:
      return "tob-via-consensus";
    case AlgoStack::kGossipLww:
      return "gossip-lww";
    case AlgoStack::kOmegaEc:
      return "omega-ec";
  }
  return "?";
}

bool parseAlgoStack(const std::string& name, AlgoStack* out) {
  for (AlgoStack stack : kAllAlgoStacks) {
    if (name == algoStackName(stack)) {
      *out = stack;
      return true;
    }
  }
  return false;
}

Capabilities stackCapabilities(AlgoStack stack) {
  Capabilities caps;
  switch (stack) {
    case AlgoStack::kEtob:
    case AlgoStack::kTobViaConsensus:
      caps.submits = true;
      caps.deliverySequence = true;
      break;
    case AlgoStack::kCommitEtob:
      caps.submits = true;
      caps.deliverySequence = true;
      caps.committedPrefix = true;
      break;
    case AlgoStack::kGossipLww:
      caps.submits = true;  // LWW put bodies; non-put bodies are ignored
      caps.kv = true;
      break;
    case AlgoStack::kOmegaEc:
      caps.selfProposing = true;
      break;
  }
  return caps;
}

namespace {

using EtobKvReplica = ReplicaAutomaton<EtobAutomaton, KvStore>;
using CommitEtobKvReplica = ReplicaAutomaton<CommitEtobAutomaton, KvStore>;
using TobKvReplica = ReplicaAutomaton<TobViaConsensusAutomaton, KvStore>;

/// The canonical stack lowering: one automaton per process. This is THE
/// place protocol stacks are instantiated — the scenario runner, the
/// explorer, the benches and the examples all arrive here.
std::unique_ptr<Automaton> makeStackAutomaton(const ClusterSpec& spec,
                                              const SimConfig& cfg,
                                              ProcessId p) {
  if (spec.automaton) return spec.automaton(cfg, p);
  switch (spec.stack) {
    case AlgoStack::kEtob:
      if (spec.kvReplica) {
        return std::make_unique<EtobKvReplica>(EtobAutomaton{});
      }
      return std::make_unique<EtobAutomaton>();
    case AlgoStack::kCommitEtob:
      if (spec.kvReplica) {
        return std::make_unique<CommitEtobKvReplica>(CommitEtobAutomaton{});
      }
      return std::make_unique<CommitEtobAutomaton>();
    case AlgoStack::kTobViaConsensus:
      if (spec.kvReplica) {
        return std::make_unique<TobKvReplica>(
            TobViaConsensusAutomaton(p, cfg.processCount));
      }
      return std::make_unique<TobViaConsensusAutomaton>(p, cfg.processCount);
    case AlgoStack::kGossipLww:
      return std::make_unique<GossipLwwStore>();
    case AlgoStack::kOmegaEc:
      // Salt the proposal stream with the seed so different seeds exercise
      // different proposal histories, deterministically.
      return std::make_unique<EcDriverAutomaton<OmegaEcAutomaton>>(
          OmegaEcAutomaton{}, binaryProposals(cfg.seed), spec.ecInstances);
  }
  WFD_ENSURE_MSG(false, "unknown algorithm stack");
  return nullptr;
}

/// The uniform read surface of a process automaton, resolved in ONE
/// place: every Client accessor (kvGet, kvStats, committedPrefix) reads
/// through this view, so a new wrapped stack cannot update one accessor
/// and silently miss another.
struct AutomatonView {
  const GossipLwwStore* gossip = nullptr;
  const KvStore* kv = nullptr;                    // replica-wrapped machine
  const std::vector<MsgId>* committed = nullptr;  // §7 committed prefix
  std::uint64_t rebuilds = 0;                     // replica state rebuilds
  /// Ordering-layer message lookup (id -> body), when the stack has one.
  const AppMsg* (*findMessage)(const Automaton&, MsgId) = nullptr;
};

template <typename Replica>
const AppMsg* findReplicaMessage(const Automaton& a, MsgId id) {
  return static_cast<const Replica&>(a).ordering().findMessage(id);
}

AutomatonView viewOf(const Automaton& a) {
  AutomatonView v;
  if (const auto* g = dynamic_cast<const GossipLwwStore*>(&a)) {
    v.gossip = g;
  } else if (const auto* r = dynamic_cast<const EtobKvReplica*>(&a)) {
    v.kv = &r->machine();
    v.rebuilds = r->rebuilds();
    v.findMessage = &findReplicaMessage<EtobKvReplica>;
  } else if (const auto* r = dynamic_cast<const CommitEtobKvReplica*>(&a)) {
    v.kv = &r->machine();
    v.committed = &r->ordering().committedPrefix();
    v.rebuilds = r->rebuilds();
    v.findMessage = &findReplicaMessage<CommitEtobKvReplica>;
  } else if (const auto* r = dynamic_cast<const TobKvReplica*>(&a)) {
    v.kv = &r->machine();
    v.rebuilds = r->rebuilds();
    v.findMessage = &findReplicaMessage<TobKvReplica>;
  } else if (const auto* c = dynamic_cast<const CommitEtobAutomaton*>(&a)) {
    v.committed = &c->committedPrefix();
  }
  return v;
}

}  // namespace

Cluster::Cluster(ClusterSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  WFD_ENSURE_MSG(!spec_.kvReplica || spec_.stack == AlgoStack::kEtob ||
                     spec_.stack == AlgoStack::kCommitEtob ||
                     spec_.stack == AlgoStack::kTobViaConsensus,
                 "kvReplica wraps the broadcast stacks only");
  WFD_ENSURE_MSG(spec_.ecInstances == 0 || spec_.stack == AlgoStack::kOmegaEc,
                 "ecInstances is an omega-ec knob");
  WFD_ENSURE_MSG(!spec_.automaton || spec_.workload.perProcess == 0,
                 "a custom-automaton cluster schedules no workload — clear "
                 "workload.perProcess and drive inputs explicitly");

  // This construction sequence (seed override, pattern, detector,
  // network, simulator, automata, workload) is the pre-facade
  // instantiateScenario path verbatim — the digest-equivalence tests
  // rely on it drawing from the Rng in exactly the same order.
  SimConfig cfg = spec_.config;
  cfg.seed = seed;
  FailurePattern fp = spec_.pattern
                          ? spec_.pattern(cfg.processCount)
                          : FailurePattern::noFailures(cfg.processCount);
  WFD_ENSURE_MSG(fp.size() == cfg.processCount,
                 "cluster pattern size != processCount");
  std::shared_ptr<const FailureDetector> detector =
      spec_.detector
          ? spec_.detector(fp)
          : std::make_shared<OmegaFd>(fp, spec_.tauOmega, spec_.omegaMode);
  std::shared_ptr<const NetworkModel> network =
      spec_.network ? spec_.network(cfg) : nullptr;
  sim_ = std::make_unique<Simulator>(cfg, fp, std::move(detector),
                                     std::move(network));
  for (ProcessId p = 0; p < cfg.processCount; ++p) {
    sim_->addProcess(p, makeStackAutomaton(spec_, cfg, p));
  }
  nextClientSeq_.assign(cfg.processCount, 0);
  if (spec_.stack != AlgoStack::kOmegaEc && !spec_.automaton) {
    scheduleWorkload(spec_.workload);
  }

  caps_ = spec_.automaton ? Capabilities{} : stackCapabilities(spec_.stack);
  if (spec_.kvReplica) caps_.kv = true;

  // Observer fan-out. Hooks never affect scheduling, so installing them
  // unconditionally keeps hook-free and hook-bearing runs identical.
  sim_->setDeliveryHook(
      [this](ProcessId p, Time t, const std::vector<MsgId>& seq) {
        for (const DeliveryObserver& obs : deliveryObservers_) obs(p, t, seq);
      });
  sim_->setOutputHook([this](ProcessId p, Time t, const Payload& out) {
    for (const OutputObserver& obs : outputObservers_) obs(p, t, out);
  });
}

void Cluster::scheduleWorkload(const BroadcastWorkload& w) {
  // A kvReplica cluster's inputs are ClientCommands (Client::put); the
  // workload generator schedules raw BroadcastInputs, which the replica
  // would silently drop while log() still records them — reject instead
  // of producing phantom checker failures.
  WFD_ENSURE_MSG(w.perProcess == 0 || !spec_.kvReplica,
                 "a kvReplica cluster takes writes through Client::put, "
                 "not a broadcast workload");
  // The workload generator always uses per-origin ids 0..perProcess-1;
  // client ids are allocated ABOVE the workload's. Either a second
  // workload or a workload after the first client submission would
  // therefore re-issue ids already in play — both are rejected.
  WFD_ENSURE_MSG(w.perProcess == 0 ||
                     (!workloadScheduled_ && !clientIdsIssued_),
                 "one workload per cluster, before any client submission");
  // Same temporal rule as submitAt/crashAt/partitionLinks: scheduling
  // into the past would log broadcastAt times the run never saw.
  WFD_ENSURE_MSG(w.perProcess == 0 || w.start >= sim_->now(),
                 "workloads are scheduled at >= now");
  if (w.perProcess > 0) workloadScheduled_ = true;
  const BroadcastLog scheduled = scheduleBroadcastWorkload(*sim_, w);
  for (MsgId id : scheduled.ids()) {
    const BroadcastRecord* rec = scheduled.find(id);
    AppMsg m;
    m.id = rec->id;
    m.origin = rec->origin;
    m.body = rec->body;
    m.causalDeps = rec->deps;
    log_.record(m, rec->broadcastAt);
  }
  // Workload ids use per-origin sequences 0..perProcess-1; client
  // submissions continue above them.
  for (std::uint32_t& next : nextClientSeq_) {
    next = std::max<std::uint32_t>(
        next, static_cast<std::uint32_t>(w.perProcess));
  }
}

bool Cluster::advanceTo(Time t) {
  WFD_ENSURE_MSG(t >= sim_->now(), "advanceTo goes forward only");
  return sim_->runUntilTime(t);
}

bool Cluster::advanceBy(Time d) { return advanceTo(sim_->now() + d); }

void Cluster::runToHorizon() { sim_->run(); }

bool Cluster::runUntil(const std::function<bool(const Simulator&)>& pred,
                       std::uint64_t checkEvery) {
  return sim_->runUntil(pred, checkEvery);
}

std::uint64_t Cluster::observableFingerprint() const {
  const Trace& trace = sim_->trace();
  std::uint64_t h = kFnv64OffsetBasis;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnv64Prime;
    }
  };
  for (ProcessId p = 0; p < processCount(); ++p) {
    mix(trace.outputs(p).size());
    const std::vector<MsgId>& d = trace.currentDelivered(p);
    mix(d.size());
    for (MsgId id : d) mix(id);
  }
  return h;
}

Time Cluster::runUntilQuiescent(Time window) {
  const SimConfig& cfg = sim_->config();
  if (window == 0) window = 4 * (cfg.maxDelay + cfg.timeoutPeriod);
  std::uint64_t before = observableFingerprint();
  while (true) {
    // Each probe runs a full window AND past every message arrival known
    // so far — a partition can hold a message in flight far beyond the
    // window with nothing moving meanwhile, and "quiet until the
    // deferred work lands" is not quiescence.
    const Time target =
        std::max(sim_->now(), sim_->latestScheduledArrival()) + window;
    const bool more = sim_->runUntilTime(target);
    const std::uint64_t after = observableFingerprint();
    const bool changed = after != before;
    before = after;
    if (!more) return sim_->now();  // horizon / limits: as settled as it gets
    // Quiescent only when (a) nothing observable moved for a whole
    // window, (b) no application input is still scheduled, and (c) no
    // message sent during the probe was deferred beyond the window.
    if (!changed && sim_->pendingInputs() == 0 &&
        sim_->latestScheduledArrival() <= sim_->now() + window) {
      return sim_->now();
    }
  }
}

void Cluster::rebuildDetector(Time injectionTime) {
  const FailurePattern& fp = sim_->failurePattern();
  if (spec_.detector) {
    sim_->setDetector(spec_.detector(fp));
    return;
  }
  // A live crash reopens the leader-election window: the default Omega
  // re-stabilizes (in the spec's pre-stabilization mode) once the crash
  // is in effect, on the lowest process still correct.
  sim_->setDetector(std::make_shared<OmegaFd>(
      fp, std::max(spec_.tauOmega, injectionTime), spec_.omegaMode));
}

void Cluster::crashAt(ProcessId p, Time t) {
  WFD_ENSURE(p < processCount());
  // Validate BEFORE mutating: a rejected injection must leave the
  // cluster exactly as it was (pattern untouched, detector not rebuilt).
  const FailurePattern& fp = sim_->failurePattern();
  const std::size_t correctAfter =
      fp.correctSet().size() - (fp.correct(p) ? 1 : 0);
  WFD_ENSURE_MSG(correctAfter >= 1,
                 "at least one process must remain correct");
  sim_->setCrash(p, t);
  rebuildDetector(t);
}

void Cluster::partitionLinks(
    Time start, Time end,
    std::function<bool(ProcessId from, ProcessId to)> affects) {
  WFD_ENSURE_MSG(start >= sim_->now(), "partition windows start at >= now");
  LinkDisruption d;
  d.start = start;
  d.end = end;
  d.affects = std::move(affects);
  sim_->addDisruption(std::move(d));
}

void Cluster::isolate(ProcessId p, Time start, Time end) {
  WFD_ENSURE(p < processCount());
  partitionLinks(start, end,
                 [p](ProcessId from, ProcessId to) { return from == p || to == p; });
}

Client Cluster::client(ProcessId p) {
  WFD_ENSURE(p < processCount());
  return Client(this, p);
}

void Cluster::observeDeliveries(DeliveryObserver cb) {
  WFD_ENSURE(static_cast<bool>(cb));
  deliveryObservers_.push_back(std::move(cb));
}

void Cluster::observeOutputs(OutputObserver cb) {
  WFD_ENSURE(static_cast<bool>(cb));
  outputObservers_.push_back(std::move(cb));
}

MsgId Cluster::submitAt(ProcessId p, Time t,
                        std::vector<std::uint64_t> body,
                        std::vector<MsgId> causalDeps) {
  WFD_ENSURE_MSG(t >= sim_->now(), "submissions are scheduled at >= now");
  if (spec_.kvReplica) {
    // The replica turns commands into broadcasts itself (allocating ids
    // from its own counter in processing order).
    WFD_ENSURE_MSG(causalDeps.empty(),
                   "a kvReplica cluster derives causality from the command log");
    sim_->scheduleInput(p, t, Payload::of(ClientCommand{std::move(body)}));
    return kNoMsgId;
  }
  AppMsg m;
  m.id = makeMsgId(p, nextClientSeq_[p]++);
  clientIdsIssued_ = true;
  m.origin = p;
  m.body = std::move(body);
  m.causalDeps = std::move(causalDeps);
  log_.record(m, t);
  const MsgId id = m.id;
  sim_->scheduleInput(p, t, Payload::of(BroadcastInput{std::move(m)}));
  return id;
}

// --- Client ------------------------------------------------------------------

const Capabilities& Client::capabilities() const { return cluster_->caps_; }

MsgId Client::submitAt(Time t, std::vector<std::uint64_t> body,
                       std::vector<MsgId> causalDeps) {
  WFD_ENSURE_MSG(capabilities().submits, "stack accepts no client broadcasts");
  return cluster_->submitAt(process_, t, std::move(body), std::move(causalDeps));
}

MsgId Client::submit(std::vector<std::uint64_t> body,
                     std::vector<MsgId> causalDeps) {
  return submitAt(cluster_->now() + 1, std::move(body), std::move(causalDeps));
}

MsgId Client::putAt(Time t, std::uint64_t key, std::uint64_t value) {
  WFD_ENSURE_MSG(capabilities().kv, "stack exposes no replicated KV store");
  return cluster_->submitAt(process_, t, makePut(key, value), {});
}

MsgId Client::put(std::uint64_t key, std::uint64_t value) {
  return putAt(cluster_->now() + 1, key, value);
}

const std::vector<MsgId>& Client::delivered() const {
  return cluster_->sim_->trace().currentDelivered(process_);
}

std::vector<MsgId> Client::committedPrefix() const {
  const AutomatonView v = viewOf(cluster_->sim_->automaton(process_));
  return v.committed ? *v.committed : std::vector<MsgId>{};
}

std::optional<std::uint64_t> Client::kvGet(std::uint64_t key) const {
  const AutomatonView v = viewOf(cluster_->sim_->automaton(process_));
  if (v.gossip) {
    auto it = v.gossip->table().find(key);
    if (it == v.gossip->table().end()) return std::nullopt;
    return it->second.value;
  }
  if (v.kv) return v.kv->get(key);
  return std::nullopt;
}

Client::KvStats Client::kvStats() const {
  const AutomatonView v = viewOf(cluster_->sim_->automaton(process_));
  if (v.gossip) {
    return {v.gossip->table().size(), v.gossip->appliedCount(), 0};
  }
  if (v.kv) return {v.kv->size(), v.kv->appliedCount(), v.rebuilds};
  return {};
}

const std::vector<std::uint64_t>* Client::findBody(MsgId id) const {
  const Automaton& a = cluster_->sim_->automaton(process_);
  const AutomatonView v = viewOf(a);
  if (v.findMessage == nullptr) return nullptr;
  const AppMsg* m = v.findMessage(a, id);
  return m == nullptr ? nullptr : &m->body;
}

std::vector<std::pair<Instance, Value>> Client::decisions() const {
  std::vector<std::pair<Instance, Value>> out;
  for (const OutputEvent& ev : cluster_->sim_->trace().outputs(process_)) {
    if (const auto* d = ev.value.as<EcDecision>()) {
      out.emplace_back(d->instance, d->value);
    }
  }
  return out;
}

void Client::onDeliver(std::function<void(Time, const std::vector<MsgId>&)> cb) {
  WFD_ENSURE(static_cast<bool>(cb));
  const ProcessId self = process_;
  cluster_->observeDeliveries(
      [self, cb = std::move(cb)](ProcessId p, Time t,
                                 const std::vector<MsgId>& seq) {
        if (p == self) cb(t, seq);
      });
}

const Automaton& Client::automaton() const {
  return cluster_->sim_->automaton(process_);
}

}  // namespace wfd
