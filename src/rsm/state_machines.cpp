#include "rsm/state_machines.h"

#include "common/ensure.h"

namespace wfd {

void KvStore::apply(const Command& cmd) {
  WFD_ENSURE(!cmd.empty());
  ++applied_;
  switch (static_cast<SmOp>(cmd[0])) {
    case SmOp::kPut:
      WFD_ENSURE(cmd.size() == 3);
      table_[cmd[1]] = cmd[2];
      break;
    case SmOp::kDel:
      WFD_ENSURE(cmd.size() == 2);
      table_.erase(cmd[1]);
      break;
    default:
      break;  // foreign opcodes are ignored, not errors (mixed workloads)
  }
}

std::optional<std::uint64_t> KvStore::get(std::uint64_t key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void CounterSm::apply(const Command& cmd) {
  WFD_ENSURE(!cmd.empty());
  ++applied_;
  if (static_cast<SmOp>(cmd[0]) == SmOp::kAdd) {
    WFD_ENSURE(cmd.size() == 2);
    value_ += static_cast<std::int64_t>(cmd[1]);
  }
}

void JournalSm::apply(const Command& cmd) {
  WFD_ENSURE(!cmd.empty());
  ++applied_;
  if (static_cast<SmOp>(cmd[0]) == SmOp::kAppend) {
    WFD_ENSURE(cmd.size() == 2);
    entries_.push_back(cmd[1]);
  }
}

}  // namespace wfd
