// FuzzPlan: a plain-data genome describing one sampled admissible run —
// the unit the explorer generates, runs, shrinks and persists.
//
// Where a Scenario (src/scenario/) is a hand-written run family with
// factory closures, a FuzzPlan is pure data: every field is a number or
// an enum, so a plan can be (a) sampled from a single 64-bit seed,
// (b) serialized to portable JSON (plan_codec.h), (c) mutated by the
// shrinker one field at a time, and (d) lowered to a Scenario
// (planScenario) that reuses the whole PR-2 NetworkModel / checker
// machinery unchanged.
//
// Admissibility: the paper's results quantify over admissible runs only,
// so the sampler must stay inside that space — crashes leave at least
// one correct process (a correct majority for the consensus-based TOB
// stack), partitions always heal (width < period for recurring windows,
// at most one recurring spec so joint windows cannot cover all time),
// delays are finite with minDelay >= 1, clock skews keep every process
// stepping forever, and the horizon leaves enough settle time after the
// last scheduled disturbance for the liveness clauses (convergence,
// EC termination) to be fair assertions. planAdmissibilityViolations()
// is the executable form of that contract; docs/FUZZING.md is the prose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "scenario/scenario.h"

namespace wfd {

/// One crash of the plan's failure pattern.
struct PlanCrash {
  ProcessId process = kNoProcess;
  Time time = 0;
};

/// One partition window family. `isolate` == kNoProcess partitions every
/// link (a total blackout); otherwise only links touching that process.
struct PlanPartition {
  Time start = 0;
  Time width = 0;
  /// 0 = one-shot window [start, start + width); else recurring.
  Time period = 0;
  ProcessId isolate = kNoProcess;
};

/// Duplication + reordering knobs; dupNum == 0 disables the layer.
struct PlanChaos {
  std::uint32_t dupNum = 0;
  std::uint32_t dupDen = 1;
  std::uint32_t maxExtraCopies = 0;
  Time reorderJitter = 0;
  /// kNoProcess = all links; otherwise only links touching this process.
  ProcessId onlyTouching = kNoProcess;
};

/// Per-process λ-period scaling factor num/den (1/1 = no skew).
struct PlanSkew {
  std::uint64_t num = 1;
  std::uint64_t den = 1;
};

/// Per-link slowdown: every link touching `process` is `factor`x slower.
/// process == kNoProcess disables the layer.
struct PlanSlowLink {
  ProcessId process = kNoProcess;
  Time factor = 1;
};

/// Fair-lossy genome (PR-9). All layers ride the retransmission layer —
/// a plan with any of them enabled makes the lowered network mayDrop(),
/// so the simulator arms ReliableLink and delivery stays guaranteed.
/// Admissibility keeps the loss fair: the i.i.d. rate is capped at 1/4,
/// bursts cover at most a third of each frame, and the i.i.d./burst
/// layers must go quiet at `activeUntil` so liveness clauses get a
/// loss-free tail (one-way cuts are bounded windows already).
struct PlanLoss {
  /// I.i.d. per-copy drop probability lossNum/lossDen; 0 disables.
  std::uint32_t lossNum = 0;
  std::uint32_t lossDen = 1;
  /// Gilbert–Elliott frame period; 0 disables the burst layer.
  Time burstPeriod = 0;
  Time burstLen = 0;
  /// Quiet time for the i.i.d. and burst layers (required when either is
  /// on): drops only hit copies arriving before this.
  Time activeUntil = 0;
  /// One-way cut: every send FROM this process inside the window is
  /// dropped (acks still flow back). kNoProcess disables.
  ProcessId oneWayFrom = kNoProcess;
  Time oneWayStart = 0;
  Time oneWayWidth = 0;
  /// 0 = one-shot window; else recurring (must heal: period > width).
  Time oneWayPeriod = 0;

  bool enabled() const {
    return lossNum > 0 || burstPeriod > 0 || oneWayFrom != kNoProcess;
  }
};

/// Broadcast workload shape (ignored by the omega-ec stack).
struct PlanWorkload {
  Time start = 100;
  Time interval = 50;
  std::size_t perProcess = 4;
  bool causalChain = false;
  bool crossDeps = false;
  /// 0 = every process broadcasts; otherwise only the first `writers`
  /// do (BroadcastWorkload::writers). The big-cluster sampler sets this
  /// so a 64-process plan's message volume stays O(writers), not O(n).
  std::size_t writers = 0;
};

/// A complete sampled run description. (plan) fully determines the run:
/// the simulator is seeded with simSeed and all other nondeterminism is
/// data here.
struct FuzzPlan {
  AlgoStack stack = AlgoStack::kEtob;
  std::size_t processCount = 3;
  std::uint64_t simSeed = 1;

  Time timeoutPeriod = 10;
  Time minDelay = 20;
  Time maxDelay = 40;

  Time tauOmega = 0;
  OmegaPreStabilization omegaMode = OmegaPreStabilization::kSplitBrain;

  std::vector<PlanCrash> crashes;
  std::vector<PlanPartition> partitions;
  PlanChaos chaos;
  /// Either empty (no skew layer) or exactly processCount entries.
  std::vector<PlanSkew> skews;
  PlanSlowLink slowLink;
  PlanLoss loss;

  PlanWorkload workload;
  /// Only meaningful for AlgoStack::kOmegaEc (must be 0 otherwise).
  Instance ecInstances = 0;

  /// Run horizon; sampler and shrinker always set planHorizon(*this).
  Time maxTime = 0;
};

// AlgoStack names are parsed/printed by algoStackName/parseAlgoStack
// (api/capabilities.h — plans, scenarios and both CLIs share them).

const char* omegaModeName(OmegaPreStabilization mode);
bool parseOmegaMode(const std::string& name, OmegaPreStabilization* out);

/// Deterministic per-run seed derivation (splitmix64 over the tuple), so
/// run i of `wfd_explore --seed S` is the same plan in every invocation
/// of the same build. (The derivation itself is platform-independent,
/// but the sampler's draws go through std::uniform_int_distribution,
/// whose algorithm is implementation-defined — plans only replay
/// identically as serialized DATA, which is what the corpus relies on.)
std::uint64_t derivePlanSeed(std::uint64_t masterSeed, AlgoStack stack,
                             std::uint64_t runIndex);

/// Samples one admissible plan for the stack from the derived seed.
/// Postcondition: planAdmissibilityViolations(plan).empty().
///
/// `bigClusterMaxN` opts the sampler into the big-cluster genome: 0
/// (the default) draws nothing extra, so the legacy plan stream is
/// byte-identical. When > 6, one plan in four is sampled at deployment
/// scale — processCount in [16, min(bigClusterMaxN, cap)] where the cap
/// is 256 for omega-ec and 64 for the broadcast/gossip stacks (whose
/// per-run cost is protocol-inherent in n), with the workload capped to
/// a few writers so message volume stays O(writers).
///
/// `lossGenome` opts the sampler into the fair-lossy genome (PR-9):
/// false (the default) draws nothing extra — the legacy plan stream
/// stays byte-identical. When true, one plan in three gains an i.i.d.
/// loss layer (rate 1/5..1/16), optionally a Gilbert–Elliott burst
/// schedule and a one-way outbound cut; all loss draws come AFTER every
/// legacy draw, so the loss-free prefix of each plan is unchanged too.
FuzzPlan sampleFuzzPlan(AlgoStack stack, std::uint64_t masterSeed,
                        std::uint64_t runIndex,
                        std::size_t bigClusterMaxN = 0,
                        bool lossGenome = false);

/// The horizon the sampler assigns: last scheduled disturbance (workload
/// end, crashes, tau_Omega, partition windows) plus a settle margin
/// scaled by delays, skew and the EC instance count. Deterministic in the
/// plan's other fields; the shrinker re-derives it after every mutation
/// so shrunken plans also shrink in wall-clock cost.
Time planHorizon(const FuzzPlan& plan);

/// Executable admissibility contract. Empty = admissible. Each entry is
/// one human-readable violated invariant.
std::vector<std::string> planAdmissibilityViolations(const FuzzPlan& plan);

/// Lowers the plan to a runnable Scenario (pattern, RandomScheduleModel
/// network, default Omega detector, per-stack spec checker set). The
/// scenario's name is "fuzz-<stack>"; run it with
/// runScenario(planScenario(p), p.simSeed).
Scenario planScenario(const FuzzPlan& plan);

/// Stable 64-bit fingerprint of the plan: FNV-1a over the canonical JSON
/// encoding, so equal fingerprints mean equal plans on every platform.
std::uint64_t planFingerprint(const FuzzPlan& plan);

}  // namespace wfd
