// Registry of every broadcastTOB/broadcastETOB input of a run — the
// input history H_I of the broadcast problem, against which the checkers
// verify No-creation, Validity and Causal-order.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/app_msg.h"

namespace wfd {

struct BroadcastRecord {
  MsgId id = 0;
  ProcessId origin = kNoProcess;
  Time broadcastAt = 0;
  /// Declared causal dependencies C(m) (explicit ones only; protocols may
  /// strengthen C(m) internally, which the checker need not know).
  std::vector<MsgId> deps;
  std::vector<std::uint64_t> body;
};

class BroadcastLog {
 public:
  void record(const AppMsg& m, Time at) {
    records_.emplace(m.id, BroadcastRecord{m.id, m.origin, at, m.causalDeps, m.body});
    order_.push_back(m.id);
  }

  const BroadcastRecord* find(MsgId id) const {
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
  }

  bool contains(MsgId id) const { return records_.contains(id); }
  std::size_t size() const { return order_.size(); }
  const std::vector<MsgId>& ids() const { return order_; }

 private:
  std::unordered_map<MsgId, BroadcastRecord> records_;
  std::vector<MsgId> order_;
};

}  // namespace wfd
