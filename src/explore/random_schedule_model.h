// RandomScheduleModel: the network half of a FuzzPlan, realized as one
// NetworkModel composed from the PR-2 decorators.
//
// The plan's network genome (base delays, optional slow-process links,
// optional duplication+reordering, optional per-process clock skew,
// partition windows) is lowered to the decorator stack
//
//     PartitionModel( ClockSkewModel( ChaosLinkModel( base ) ) )
//
// with PartitionModel outermost, per the composition-order warning in
// sim/network_model.h (jitter applied outside a partition could move a
// deferred arrival back inside a later window). Every layer is omitted
// when the plan disables it, so a fully quiet genome is exactly the
// legacy UniformDelayModel. Because all randomness still flows through
// the simulator's Rng, a (plan) value fully determines the run.
#pragma once

#include <memory>
#include <string>

#include "explore/fuzz_plan.h"
#include "sim/network_model.h"

namespace wfd {

class RandomScheduleModel final : public NetworkModel {
 public:
  /// Requires planAdmissibilityViolations(plan).empty() for the network
  /// fields (WFD_ENSUREs the structural ones it depends on).
  explicit RandomScheduleModel(const FuzzPlan& plan);

  void schedule(const LinkSend& send, Rng& rng,
                std::vector<Time>& arrivals) const override;
  Time lambdaPeriod(ProcessId p, Time basePeriod) const override;
  bool mayDuplicate() const override;
  /// "random[<composed stack name>]" — diagnostics show the genome.
  std::string name() const override;

 private:
  std::shared_ptr<const NetworkModel> inner_;
};

}  // namespace wfd
