// Eventual consensus (EC) vocabulary: inputs, decisions, value encoding.
//
// EC exports proposeEC_1, proposeEC_2, ... — each process is assumed to
// invoke proposeEC_{l+1} as soon as proposeEC_l returns. The abstraction
// guarantees termination/integrity/validity always, and agreement for all
// instances l >= k for some finite k (paper §3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd {

/// Input event: invocation of proposeEC_instance(value) — multivalued
/// (the binary abstraction is the restriction to values {0} and {1}).
struct ProposeInput {
  Instance instance = 0;
  Value value;
};

/// Output event: proposeEC_instance returned `value`.
struct EcDecision {
  Instance instance = 0;
  Value value;
};

/// Input event for eventual irrevocable consensus (Appendix A).
struct ProposeEicInput {
  Instance instance = 0;
  Value value;
};

/// Output event of EIC: a (possibly revised) response to
/// proposeEIC_instance. The response "at time t" is the last one before t.
struct EicDecision {
  Instance instance = 0;
  Value value;
};

/// Bookkeeping output emitted by the proposal drivers: records the input
/// history H_I (which value this process proposed for which instance), so
/// checkers can verify EC-Validity without reconstructing proposals.
struct ProposalMade {
  Instance instance = 0;
  Value value;
};

/// Encodes a sequence of Values into one Value (length-prefixed flat
/// encoding) — Algorithm 6 proposes its whole decision sequence to EC.
Value encodeValueSeq(const std::vector<Value>& seq);

/// Inverse of encodeValueSeq. Malformed input is an invariant error (the
/// only producers are this library's own protocols).
std::vector<Value> decodeValueSeq(const Value& encoded);

}  // namespace wfd
