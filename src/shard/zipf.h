// Deterministic key-distribution generators for the sharded KV
// workloads: uniform and Zipfian(theta), the two shapes bench E14 and
// the sharded-* scenarios sample keys from.
//
// Both generators draw from a counter-mode splitmix64 stream — the i-th
// sample is a pure function of (seed, i) — so a workload is replayable
// from its seed alone and independent of call-site interleaving on
// other generators. The Zipfian CDF is precomputed with doubles
// (rank weight 1/i^theta); like every pinned digest in the repo the
// resulting key streams are stable per standard-library/libm build,
// which is what the scenario digest pins assume (scenario/trace_digest.h
// spells out the same caveat).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {

/// Uniform keys over [0, items).
class UniformKeyGenerator {
 public:
  UniformKeyGenerator(std::uint64_t items, std::uint64_t seed)
      : items_(items), seed_(seed) {
    WFD_ENSURE_MSG(items > 0, "empty key space");
  }

  std::uint64_t next() {
    // Modulo bias is < items/2^64 — irrelevant for key spaces of a few
    // thousand, and bias-free rejection would break the pure (seed, i)
    // indexing.
    return splitmix64(seed_ ^ (0x756e69666f726dULL + counter_++)) % items_;
  }

 private:
  std::uint64_t items_;
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

/// Zipfian keys over [0, items): rank r is drawn with probability
/// proportional to 1/(r+1)^theta. theta ~ 0.99 is the classical YCSB
/// "hot key" skew (the top rank absorbs a fifth of all traffic at 64
/// keys). Rank order is the identity — key 0 is the hottest — which
/// keeps hot-shard placement a pure function of the ring seed.
class ZipfianKeyGenerator {
 public:
  ZipfianKeyGenerator(std::uint64_t items, double theta, std::uint64_t seed)
      : seed_(seed) {
    WFD_ENSURE_MSG(items > 0, "empty key space");
    WFD_ENSURE_MSG(theta > 0.0 && theta < 1.0,
                   "theta in (0,1) — 1 needs the harmonic special case");
    cdf_.reserve(items);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < items; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  std::uint64_t next() {
    const std::uint64_t z =
        splitmix64(seed_ ^ (0x7a697066ULL + counter_++));  // "zipf"
    // 53 mantissa bits -> u in [0, 1).
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    std::uint64_t lo = 0;
    std::uint64_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

}  // namespace wfd
