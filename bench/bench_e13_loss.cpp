// E13 — Lossy links: eTOB goodput and τ̂ stabilization vs loss rate,
// and failure-detector re-stabilization after loss bursts.
//
// Claim (PR-9): the stubborn retransmission layer turns fair-lossy links
// into reliable ones at a throughput cost only — every sweep point below
// passes the full broadcast checker (validity/agreement/no-creation/
// no-duplication), and what grows with the loss rate is wall time,
// retransmit traffic and the observed stabilization time τ̂, never a
// safety violation. The second table shows the adaptive-timeout ◇P
// learning its way out of loss bursts: each false suspicion doubles the
// learned timeout, so the detector stabilizes after the first burst it
// can out-wait — longer bursts take more doublings — while SWIM never
// learns but never stays fooled: indirect probes recover it within
// about one round of each burst's end, so its stabilization tracks the
// last burst regardless of width.
//
// Method:
//   loss sweep   eTOB, n=3, 15 broadcasts, loss era [0, 8000), horizon
//                20000. Points: clean, i.i.d. 5/10/20% (20% is the
//                admissibility ceiling: fair-lossy needs rate <= 1/4),
//                and a Gilbert–Elliott burst regime (300-tick bursts
//                every 2000 ticks, 90% in-burst drop). Reported: wall
//                time, delivered msgs/sec (45 deliveries / wall), the
//                checker's τ̂, dropped copies, retransmissions.
//   fd recovery  AdaptiveHeartbeatFd vs SwimFd over a burst train at
//                2000/5000/8000 of width L: stableFrom(q) = measured
//                re-stabilization time; the adaptive detector needs
//                ceil(log2(L / initialTimeout)) + 1 false suspicions
//                before its timeout out-waits L.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "checkers/tob_checker.h"
#include "checkers/workload.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "fd/robust_fd.h"
#include "sim/lossy_model.h"
#include "sim/simulator.h"

namespace wfd::bench {
namespace {

constexpr std::size_t kN = 3;
constexpr Time kLossEra = 8000;
constexpr Time kHorizon = 20000;
constexpr std::size_t kPerProcess = 5;

struct LossPoint {
  const char* name;
  std::uint32_t num;  // i.i.d. drop rate num/den; 0 = no i.i.d. layer
  std::uint32_t den;
  bool burst;  // add the Gilbert–Elliott regime
};

constexpr LossPoint kSweep[] = {
    {"clean", 0, 1, false},     {"iid-5%", 1, 20, false},
    {"iid-10%", 1, 10, false},  {"iid-20%", 1, 5, false},
    {"ge-burst", 1, 20, true},
};

std::shared_ptr<const NetworkModel> lossyNet(const LossPoint& p) {
  std::shared_ptr<const NetworkModel> net =
      std::make_shared<UniformDelayModel>(20, 40);
  if (p.num > 0) {
    IidLossModel::Config iid;
    iid.num = p.num;
    iid.den = p.den;
    iid.activeUntil = kLossEra;
    net = std::make_shared<IidLossModel>(std::move(net), iid);
  }
  if (p.burst) {
    GilbertElliottLossModel::Config ge;
    ge.framePeriod = 2000;
    ge.burstNum = 1;
    ge.burstDen = 1;  // a burst in every frame
    ge.burstLen = 300;
    ge.dropInNum = 9;
    ge.dropInDen = 10;
    ge.seed = 13;
    ge.activeUntil = kLossEra;
    net = std::make_shared<GilbertElliottLossModel>(std::move(net), ge);
  }
  return net;
}

struct LossRun {
  double seconds = 0.0;
  Time tau = 0;
  bool pass = false;
  std::uint64_t dropped = 0;
  std::uint64_t retransmissions = 0;
};

LossRun runPoint(const LossPoint& p, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = kN;
  cfg.seed = seed;
  cfg.maxTime = kHorizon;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  const FailurePattern fp = FailurePattern::noFailures(kN);
  auto omega =
      std::make_shared<OmegaFd>(fp, 1000, OmegaPreStabilization::kSplitBrain);
  Simulator sim(cfg, fp, omega, lossyNet(p));
  for (ProcessId q = 0; q < kN; ++q) {
    sim.addProcess(q, std::make_unique<EtobAutomaton>());
  }
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 50;
  w.perProcess = kPerProcess;
  const BroadcastLog log = scheduleBroadcastWorkload(sim, w);

  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto end = std::chrono::steady_clock::now();

  LossRun r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  const BroadcastCheckReport check =
      checkBroadcastRun(sim.trace(), log, sim.failurePattern());
  r.tau = check.tau;
  r.pass = check.coreOk();
  r.dropped = sim.linkDroppedSends();
  r.retransmissions = sim.linkRetransmissions();
  return r;
}

constexpr std::size_t deliveries() { return kN * kPerProcess * kN; }

// --- FD re-stabilization ----------------------------------------------------

std::vector<std::pair<Time, Time>> burstTrain(Time width) {
  return {{2000, 2000 + width}, {5000, 5000 + width}, {8000, 8000 + width}};
}

Time adaptiveStableFrom(Time width) {
  AdaptiveHeartbeatFd::Params params;
  params.heartbeatPeriod = 50;
  params.initialTimeout = 150;
  params.maxTimeout = 4000;
  params.burstWindows = burstTrain(width);
  const AdaptiveHeartbeatFd fd(FailurePattern::noFailures(kN), params);
  Time stable = 0;
  for (ProcessId q = 0; q < kN; ++q) stable = std::max(stable, fd.stableFrom(q));
  return stable;
}

Time swimStableFrom(Time width) {
  SwimFd::Params params;
  params.probePeriod = 100;
  params.indirectRelays = 3;
  params.seed = 11;
  params.burstWindows = burstTrain(width);
  const SwimFd fd(FailurePattern::noFailures(kN), params);
  Time stable = 0;
  for (ProcessId q = 0; q < kN; ++q) stable = std::max(stable, fd.stableFrom(q));
  return stable;
}

void printTables() {
  std::printf(
      "E13: eTOB through lossy links, loss era [0, %llu), horizon %llu\n"
      "(expect: every point PASSES the checker — loss costs goodput and\n"
      " stabilization time, never safety; retransmissions and tau grow\n"
      " with the drop rate and vanish at clean)\n\n",
      static_cast<unsigned long long>(kLossEra),
      static_cast<unsigned long long>(kHorizon));
  Table t({"loss", "pass", "wall_ms", "msgs/sec", "tau_hat", "dropped",
           "retransmits"});
  for (const LossPoint& p : kSweep) {
    const LossRun r = runPoint(p, 1);
    t.row({p.name, r.pass ? "yes" : "NO", fmt(r.seconds * 1e3, 1),
           fmt(deliveries() / r.seconds, 0), std::to_string(r.tau),
           std::to_string(r.dropped), std::to_string(r.retransmissions)});
  }

  std::printf(
      "\nFD re-stabilization after a burst train at 2000/5000/8000\n"
      "(expect: adaptive ◇P stabilizes after the first burst its learned\n"
      " timeout out-waits — short bursts stop fooling it entirely, long\n"
      " ones take more doublings; SWIM recovers within ~one probe round\n"
      " of every burst's end, so it tracks the LAST burst at any width)\n\n");
  Table f({"burst_len", "adaptive", "swim"});
  for (Time width : {Time{200}, Time{400}, Time{800}, Time{1600}}) {
    f.row({std::to_string(width), std::to_string(adaptiveStableFrom(width)),
           std::to_string(swimStableFrom(width))});
  }
  std::printf("\n");
}

void BM_LossPoint(benchmark::State& state, const LossPoint& p) {
  std::uint64_t seed = 1;
  double seconds = 0.0;
  std::uint64_t runs = 0;
  Time tau = 0;
  std::uint64_t retransmissions = 0;
  for (auto _ : state) {
    const LossRun r = runPoint(p, seed++);
    benchmark::DoNotOptimize(r);
    seconds += r.seconds;
    tau = r.tau;
    retransmissions = r.retransmissions;
    ++runs;
  }
  state.counters["delivered_per_sec"] =
      static_cast<double>(runs * deliveries()) / seconds;
  state.counters["tau_hat"] = static_cast<double>(tau);
  state.counters["retransmissions"] = static_cast<double>(retransmissions);
}

void BM_LossClean(benchmark::State& state) { BM_LossPoint(state, kSweep[0]); }
void BM_LossIid5(benchmark::State& state) { BM_LossPoint(state, kSweep[1]); }
void BM_LossIid10(benchmark::State& state) { BM_LossPoint(state, kSweep[2]); }
void BM_LossIid20(benchmark::State& state) { BM_LossPoint(state, kSweep[3]); }
void BM_LossGeBurst(benchmark::State& state) { BM_LossPoint(state, kSweep[4]); }

void BM_AdaptiveFdRecovery(benchmark::State& state) {
  const Time width = static_cast<Time>(state.range(0));
  Time stable = 0;
  for (auto _ : state) {
    stable = adaptiveStableFrom(width);
    benchmark::DoNotOptimize(stable);
  }
  state.counters["stable_from"] = static_cast<double>(stable);
}

BENCHMARK(BM_LossClean)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LossIid5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LossIid10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LossIid20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LossGeBurst)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdaptiveFdRecovery)
    ->Arg(200)->Arg(400)->Arg(800)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
